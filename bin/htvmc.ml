(* htvmc — the HTVM command-line compiler driver.

   Subcommands:
     export    write an MLPerf Tiny zoo model to a .htvm file
     inspect   print a model's graph and statistics
     compile   compile a model for a DIANA configuration; optionally emit C
     run       compile and execute on the simulated SoC
     profile   compile + run with tracing on; write a Perfetto-loadable trace
     check     differential conformance fuzzing with automatic shrinking;
               also records the golden snapshots (--bless)
     chaos     fuzzing under randomized fault-injection campaigns
     serve     batched inference serving on a fleet of simulated SoCs

   Examples:
     htvmc export resnet8 --policy mixed -o resnet8.htvm
     htvmc inspect resnet8.htvm
     htvmc compile resnet8.htvm --config both --emit-c resnet8.c
     htvmc run resnet8.htvm --config both
     htvmc run resnet8.htvm --config both --inject seed=42,dma_in@every=5:drop
     htvmc run resnet8.htvm --config both --degrade diana_analog
     htvmc profile resnet8.htvm --config both --trace out.json
     htvmc report resnet8.htvm --config both --json
     htvmc check --seeds 500 -j 4
     htvmc check --replay-seed 173
     htvmc check --bless
     htvmc chaos --seeds 300 -j 4
     htvmc chaos --replay-seed 57
     htvmc serve resnet8.htvm --config both --workers 4 --batch 8 --requests 64
     htvmc serve resnet8.htvm --arrival poisson --queue-depth 4 --inject \
       seed=9,dma_in@every=40:flip --degrade-after 3 *)

open Cmdliner

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let load_graph path =
  match Ir.Text.load path with
  | Ok g -> g
  | Error e ->
      Printf.eprintf "htvmc: cannot load %s: %s\n" path e;
      exit 1

(* The library defaults read HTVM_JOBS eagerly; diagnose a malformed
   value here instead of surfacing an uncaught Invalid_argument. *)
let config_of_name name =
  try
    match name with
    | "cpu" -> Htvm.Compile.tvm_baseline_config Arch.Diana.cpu_only
    | "digital" -> Htvm.Compile.default_config Arch.Diana.digital_only
    | "analog" -> Htvm.Compile.default_config Arch.Diana.analog_only
    | "both" -> Htvm.Compile.default_config Arch.Diana.platform
    | other ->
        Printf.eprintf "htvmc: unknown config %S (cpu|digital|analog|both)\n" other;
        exit 1
  with Invalid_argument msg ->
    Printf.eprintf "htvmc: %s\n" msg;
    exit 1

(* An explicit --jobs N forces N. Otherwise HTVM_JOBS applies, capped at
   the machine's recommended domain count (an ambient default inherited
   from a beefier box must not oversubscribe this one), falling back to
   that count when unset. The engine is deterministic at every job
   count, so this is purely a compile-speed knob. *)
let resolve_jobs = function
  | None -> (
      try Util.Pool.jobs_from_env ~default:(Util.Pool.available ()) ()
      with Invalid_argument msg ->
        Printf.eprintf "htvmc: %s\n" msg;
        exit 1)
  | Some n when n >= 1 -> n
  | Some n ->
      Printf.eprintf "htvmc: --jobs must be >= 1 (got %d)\n" n;
      exit 1

let config_for name jobs =
  { (config_of_name name) with Htvm.Compile.jobs = resolve_jobs jobs }

let compile_or_die ?trace ?metrics ?store cfg g =
  match Htvm.Compile.compile ?trace ?metrics ?store cfg g with
  | Ok a -> a
  | Error e ->
      Printf.eprintf "htvmc: compilation failed: %s\n" (Htvm.Compile.error_to_string e);
      exit 1

(* Every result file (--tally/--metrics/--trace-out/--json/...) goes
   through here: the atomic temp+rename write means an interrupted run
   can never leave a truncated file for downstream diffs to misread. *)
let write_file path contents =
  try Util.File.write_atomic path contents
  with Sys_error e ->
    Printf.eprintf "htvmc: cannot write %s\n" e;
    exit 1

(* --- persistent store plumbing --- *)

(* Resolve --cache / --cache-dir DIR / --no-cache into an optional store
   handle. Default off: runs without a cache flag behave exactly as
   before. --cache-dir implies --cache; --no-cache wins over both (so a
   script can append it to override an aliased default). *)
let store_of_args cache cache_dir no_cache =
  if no_cache then None
  else
    match cache_dir with
    | Some dir -> Some (Store.open_root dir)
    | None -> if cache then Some (Store.open_root (Store.default_root ())) else None

(* Store traffic counters ride the cycles track next to the compile
   counters. Call this after the compiles and before any serve run (the
   serve report snapshots the registry itself). *)
let export_store_metrics reg store =
  match (reg, store) with
  | Some reg, Some st ->
      let c name help v = Metrics.inc (Metrics.counter reg ~help name) v in
      c "htvm_store_hits_total" "Persistent-store lookups served from disk."
        (Store.hits st);
      c "htvm_store_misses_total" "Persistent-store lookups finding no entry."
        (Store.misses st);
      c "htvm_store_rejects_total"
        "Persistent-store entries failing verified replay (recomputed)."
        (Store.rejects st);
      c "htvm_store_evictions_total" "Persistent-store entries evicted by GC."
        (Store.evictions st)
  | _ -> ()

let print_store_summary = function
  | None -> ()
  | Some st ->
      Printf.printf "store: hits=%d misses=%d rejects=%d dir=%s\n"
        (Store.hits st) (Store.misses st) (Store.rejects st) (Store.root st)

(* --- metrics plumbing --- *)

let metrics_format_of fmt =
  match Metrics.format_of_string fmt with
  | Ok f -> f
  | Error e ->
      Printf.eprintf "htvmc: %s\n" e;
      exit 1

(* A registry is only allocated when --metrics names a file, so runs
   without the flag skip instrumentation entirely (the null sink). *)
let metrics_registry metrics_out =
  Option.map (fun _ -> Metrics.create ()) metrics_out

let write_metrics metrics_out fmt snapshot =
  match metrics_out with
  | None -> ()
  | Some path ->
      write_file path (Metrics.render (metrics_format_of fmt) snapshot);
      Printf.printf "wrote %s (%d metrics)\n" path (List.length snapshot)

(* Per-request simulator counters and fault-session stats, exported via
   the canonical field enumerations. *)
let export_sim_metrics reg (totals : Sim.Counters.t) session =
  List.iter
    (fun (name, v) ->
      Metrics.inc
        (Metrics.counter reg
           ~help:("Simulator counter " ^ name ^ ".")
           ("htvm_sim_" ^ name ^ "_total"))
        v)
    (Sim.Counters.fields totals);
  match session with
  | None -> ()
  | Some s ->
      List.iter
        (fun (name, v) ->
          Metrics.inc
            (Metrics.counter reg
               ~help:("Fault-session stat " ^ name ^ ".")
               ("htvm_fault_" ^ name ^ "_total"))
            v)
        (Fault.Session.stats_fields (Fault.Session.stats s))

(* When --trace names a file, collect events and write Chrome trace-event
   JSON there on exit (load it at https://ui.perfetto.dev). *)
let with_trace trace_out f =
  match trace_out with
  | None -> f None
  | Some path ->
      let t = Trace.create () in
      let r = f (Some t) in
      write_file path (Trace.to_chrome_json t);
      Printf.printf "wrote %s (%d trace events)\n" path (List.length (Trace.events t));
      r

(* --- fault-injection plumbing --- *)

(* Resolve --inject SPEC / --faults FILE into an optional plan. "none"
   (or an empty spec) is an explicit empty campaign: a session is still
   threaded through the simulator — and is a strict no-op. *)
let plan_of_args inject faults_file =
  match (inject, faults_file) with
  | Some _, Some _ ->
      Printf.eprintf "htvmc: --inject and --faults are mutually exclusive\n";
      exit 1
  | Some spec, None -> (
      match Fault.Plan.of_string spec with
      | Ok p -> Some p
      | Error e ->
          Printf.eprintf "htvmc: bad --inject spec: %s\n" e;
          exit 1)
  | None, Some path -> (
      match Fault.Plan.load path with
      | Ok p -> Some p
      | Error e ->
          Printf.eprintf "htvmc: cannot load fault file %s: %s\n" path e;
          exit 1)
  | None, None -> None

let degrade_config cfg = function
  | [] -> cfg
  | ts -> { cfg with Htvm.Compile.degraded_targets = ts }

let print_fault_summary = function
  | None -> ()
  | Some s ->
      let st = Fault.Session.stats s in
      Printf.printf
        "faults: %d injected (%d detected, %d silent), %d retry(ies) costing \
         %d cycles, %d stall cycles\n"
        st.Fault.Session.injected st.Fault.Session.detected
        st.Fault.Session.silent st.Fault.Session.retries
        st.Fault.Session.retry_cycles st.Fault.Session.stall_cycles

let print_demotions (artifact : Htvm.Compile.artifact) =
  List.iter
    (fun (d : Htvm.Compile.demotion) ->
      Printf.printf "demoted %s: %s -> %s (%s)\n" d.Htvm.Compile.d_layer
        d.Htvm.Compile.d_from d.Htvm.Compile.d_to
        (Htvm.Compile.demotion_reason_to_string d.Htvm.Compile.d_reason))
    artifact.Htvm.Compile.demotions

(* --- export --- *)

let export model policy out =
  let entry =
    try Models.Zoo.find model
    with Not_found ->
      Printf.eprintf "htvmc: unknown model %S; known: %s\n" model
        (String.concat ", " (List.map (fun e -> e.Models.Zoo.model_name) Models.Zoo.all));
      exit 1
  in
  let policy =
    match policy with
    | "int8" -> Models.Policy.All_int8
    | "ternary" -> Models.Policy.All_ternary
    | "mixed" -> Models.Policy.Mixed
    | other ->
        Printf.eprintf "htvmc: unknown policy %S (int8|ternary|mixed)\n" other;
        exit 1
  in
  let g = entry.Models.Zoo.build policy in
  Ir.Text.save out g;
  Printf.printf "wrote %s (%d ops, %.2f M MACs)\n" out (Ir.Graph.app_count g)
    (float_of_int (Models.Zoo.macs g) /. 1.0e6)

(* --- inspect --- *)

let inspect path verbose =
  let g = load_graph path in
  Printf.printf "%s: %d nodes, %d ops, %.2f M MACs\n" path (Ir.Graph.length g)
    (Ir.Graph.app_count g)
    (float_of_int (Models.Zoo.macs g) /. 1.0e6);
  List.iter
    (fun (_, name, dtype, shape) ->
      Printf.printf "input %s : %s[%s]\n" name
        (Tensor.Dtype.to_string dtype)
        (Array.to_list shape |> List.map string_of_int |> String.concat "x"))
    (Ir.Graph.inputs g);
  let ty = Ir.Infer.output_ty g in
  Format.printf "output : %a@." Ir.Infer.pp_ty ty;
  if verbose then print_string (Ir.Graph.to_string g ^ "\n")

(* --- compile --- *)

let compile path config jobs emit_c trace_out cache cache_dir no_cache =
  let g = load_graph path in
  let cfg = config_for config jobs in
  let store = store_of_args cache cache_dir no_cache in
  let artifact =
    with_trace trace_out (fun trace -> compile_or_die ?trace ?store cfg g)
  in
  Printf.printf "compiled %s for %s\n" path
    cfg.Htvm.Compile.platform.Arch.Platform.platform_name;
  List.iter
    (fun (li : Htvm.Compile.layer_info) ->
      Printf.printf "  [%s] %s%s\n" li.Htvm.Compile.li_target li.Htvm.Compile.li_desc
        (if li.Htvm.Compile.li_tiled then " (tiled)" else ""))
    artifact.Htvm.Compile.layers;
  Format.printf "%a@." Codegen.Size.pp artifact.Htvm.Compile.size;
  Printf.printf "L2: %d B weights resident, %d B activation arena\n"
    artifact.Htvm.Compile.l2_static_bytes artifact.Htvm.Compile.l2_arena_bytes;
  Printf.printf "artifact digest: %s\n" (Htvm.Compile.artifact_digest artifact);
  print_store_summary store;
  match emit_c with
  | None -> ()
  | Some out ->
      write_file out artifact.Htvm.Compile.c_source;
      Printf.printf "wrote %s\n" out

(* --- run --- *)

let run path config jobs seed trace_out inject faults_file retry_budget degrade
    no_plan metrics_out metrics_format cache cache_dir no_cache =
  let g = load_graph path in
  let cfg = degrade_config (config_for config jobs) degrade in
  let session = Option.map Fault.Session.create (plan_of_args inject faults_file) in
  let reg = metrics_registry metrics_out in
  let store = store_of_args cache cache_dir no_cache in
  match
    with_trace trace_out (fun trace ->
        let artifact = compile_or_die ?trace ?metrics:reg ?store cfg g in
        print_demotions artifact;
        let inputs = Models.Zoo.random_input ~seed g in
        Htvm.Compile.run ?trace ?faults:session ~retry_budget
          ~use_plan:(not no_plan) artifact ~inputs)
  with
  | exception Fault.Session.Unrecovered { site; attempts } ->
      print_fault_summary session;
      Printf.eprintf
        "htvmc: inference aborted: fault at %s persisted past the retry \
         budget (%d attempts)\n"
        site attempts;
      exit 1
  | out, report ->
  let inputs = Models.Zoo.random_input ~seed g in
  let reference = Ir.Eval.run g ~inputs in
  Printf.printf "bit-exact vs interpreter: %b\n" (Tensor.equal out reference);
  print_fault_summary session;
  let full = Htvm.Compile.full_cycles report in
  let peak = Htvm.Compile.peak_cycles report in
  Printf.printf "latency: %.3f ms (peak %.3f ms) at %d MHz — %d cycles\n"
    (Htvm.Compile.latency_ms cfg full)
    (Htvm.Compile.latency_ms cfg peak)
    cfg.Htvm.Compile.platform.Arch.Platform.freq_mhz full;
  Printf.printf "output: %s\n" (Tensor.to_string out);
  print_store_summary store;
  match reg with
  | None -> ()
  | Some reg ->
      export_sim_metrics reg report.Sim.Machine.totals session;
      export_store_metrics (Some reg) store;
      write_metrics metrics_out metrics_format (Metrics.snapshot reg)

(* --- report --- *)

let report path config jobs out json =
  let g = load_graph path in
  let cfg = config_for config jobs in
  let artifact = compile_or_die cfg g in
  let run_report = snd (Htvm.Compile.run artifact ~inputs:(Models.Zoo.random_input g)) in
  let doc =
    if json then Htvm.Report.to_json artifact run_report ^ "\n"
    else Htvm.Report.to_markdown artifact run_report
  in
  match out with
  | None -> print_string doc
  | Some path ->
      write_file path doc;
      Printf.printf "wrote %s\n" path

(* --- profile --- *)

let profile path config jobs seed trace_out json_out inject faults_file
    retry_budget degrade no_plan metrics_out metrics_format cache cache_dir
    no_cache =
  let g = load_graph path in
  let cfg = degrade_config (config_for config jobs) degrade in
  let session = Option.map Fault.Session.create (plan_of_args inject faults_file) in
  let reg = metrics_registry metrics_out in
  let store = store_of_args cache cache_dir no_cache in
  let trace = Trace.create () in
  let artifact = compile_or_die ~trace ?metrics:reg ?store cfg g in
  print_demotions artifact;
  let inputs = Models.Zoo.random_input ~seed g in
  let out, report =
    try
      Htvm.Compile.run ~trace ?faults:session ~retry_budget
        ~use_plan:(not no_plan) artifact ~inputs
    with Fault.Session.Unrecovered { site; attempts } ->
      print_fault_summary session;
      Printf.eprintf
        "htvmc: inference aborted: fault at %s persisted past the retry \
         budget (%d attempts)\n"
        site attempts;
      exit 1
  in
  let silent =
    match session with
    | Some s -> (Fault.Session.stats s).Fault.Session.silent
    | None -> 0
  in
  if not (Tensor.equal out (Ir.Eval.run g ~inputs)) then
    if silent > 0 then
      Printf.printf
        "output diverged from the reference (%d silent fault(s) injected)\n"
        silent
    else begin
      Printf.eprintf "htvmc: profiled run diverged from the reference interpreter\n";
      exit 1
    end;
  print_fault_summary session;
  let totals = report.Sim.Machine.totals in
  Printf.printf "profiled %s on %s (%d steps, %d trace events)\n" path
    cfg.Htvm.Compile.platform.Arch.Platform.platform_name
    (List.length report.Sim.Machine.per_step)
    (List.length (Trace.events trace));
  Printf.printf "wall: %d cycles (%.3f ms) — accel %d, wload %d, dma %d+%d, host %d, cpu %d, stall %d\n"
    totals.Sim.Counters.wall
    (Htvm.Compile.latency_ms cfg totals.Sim.Counters.wall)
    totals.Sim.Counters.accel_compute totals.Sim.Counters.weight_load
    totals.Sim.Counters.dma_in totals.Sim.Counters.dma_out
    totals.Sim.Counters.host_overhead totals.Sim.Counters.cpu_compute
    totals.Sim.Counters.stall;
  Printf.printf "dma traffic: %d B in, %d B out; utilization %.1f%%\n"
    totals.Sim.Counters.dma_bytes_in totals.Sim.Counters.dma_bytes_out
    (100.0 *. Sim.Counters.utilization totals);
  print_newline ();
  print_string (Trace.summary trace);
  print_store_summary store;
  (match trace_out with
  | None -> ()
  | Some p ->
      write_file p (Trace.to_chrome_json trace);
      Printf.printf "wrote %s (open in https://ui.perfetto.dev)\n" p);
  (match reg with
  | None -> ()
  | Some reg ->
      export_sim_metrics reg totals session;
      export_store_metrics (Some reg) store;
      write_metrics metrics_out metrics_format (Metrics.snapshot reg));
  match json_out with
  | None -> ()
  | Some p ->
      write_file p (Htvm.Report.to_json artifact report ^ "\n");
      Printf.printf "wrote %s\n" p

(* --- quantize --- *)

let quantize path ternary samples out =
  match Quant.Ftext.load path with
  | Error e ->
      Printf.eprintf "htvmc: cannot load float model %s: %s\n" path e;
      exit 1
  | Ok model ->
      let rng = Util.Rng.create 1 in
      let calibration =
        List.init samples (fun _ ->
            Quant.Ftensor.random rng model.Quant.Fmodel.f_input_shape)
      in
      (match Quant.Quantize.quantize ~ternary ~calibration model with
      | Error e ->
          Printf.eprintf "htvmc: quantization failed: %s\n" e;
          exit 1
      | Ok (g, meta) ->
          Ir.Text.save out g;
          Printf.printf
            "wrote %s (%d ops; input scale %gx, output scale %gx, %s weights)\n" out
            (Ir.Graph.app_count g) meta.Quant.Quantize.input_scale
            meta.Quant.Quantize.output_scale
            (if ternary then "ternary" else "int8"))

let export_float which out =
  let model =
    match which with
    | "small-cnn" -> Quant.Fmodel.random_cnn ()
    | "dae-mlp" -> Quant.Fmodel.random_mlp ()
    | other ->
        Printf.eprintf "htvmc: unknown float model %S (small-cnn|dae-mlp)\n" other;
        exit 1
  in
  Quant.Ftext.save out model;
  Printf.printf "wrote %s\n" out

(* --- verify --- *)

let verify path config jobs trials =
  let g = load_graph path in
  let cfg = config_for config jobs in
  let artifact = compile_or_die cfg g in
  let failures = ref 0 in
  for seed = 1 to trials do
    let inputs = Models.Zoo.random_input ~seed g in
    let out, _ = Htvm.Compile.run artifact ~inputs in
    if not (Tensor.equal out (Ir.Eval.run g ~inputs)) then begin
      incr failures;
      Printf.printf "seed %d: MISMATCH\n" seed
    end
  done;
  if !failures = 0 then
    Printf.printf "verified: %d random inputs bit-exact vs the reference interpreter\n"
      trials
  else begin
    Printf.printf "%d/%d inputs mismatched\n" !failures trials;
    exit 1
  end

(* --- check --- *)

let bless_goldens golden_dir =
  List.iter
    (fun (model, config) ->
      match Check.Golden.compute ~model ~config with
      | Error e ->
          Printf.eprintf "htvmc: %s\n" e;
          exit 1
      | Ok entry ->
          Check.Golden.bless ~dir:golden_dir entry;
          Printf.printf "blessed %s/%s\n%!" golden_dir
            (Check.Golden.filename ~model ~config))
    Check.Golden.cases;
  Printf.printf "blessed %d golden snapshots\n" (List.length Check.Golden.cases)

(* Minimize a failing case and write the replayable reproducer. *)
let shrink_and_write ~max_checks ~out (c : Check.case) =
  let g = Check.Gen.generate c.Check.seed in
  let cfg = Check.Gen.random_config c.Check.seed in
  Printf.printf "shrinking seed %d (class %s) ...\n%!" c.Check.seed
    (Check.class_of c.Check.verdict);
  let o =
    Check.Shrink.shrink_failure ~max_checks ~input_seed:c.Check.seed cfg g
      c.Check.verdict
  in
  Printf.printf "minimized: %d -> %d ops (%d reductions, %d re-checks)\n"
    (Ir.Graph.app_count g)
    (Ir.Graph.app_count o.Check.Shrink.graph)
    o.Check.Shrink.accepted o.Check.Shrink.checks;
  let verdict =
    Check.run_case ~input_seed:c.Check.seed o.Check.Shrink.config o.Check.Shrink.graph
  in
  write_file out
    (Check.reproducer ~seed:c.Check.seed ~config:o.Check.Shrink.config
       ~graph:o.Check.Shrink.graph ~verdict ());
  Printf.printf "wrote %s — minimized verdict: %s\n" out (Check.describe verdict)

let check seeds start jobs golden_dir bless replay_seed out max_shrink_checks =
  if bless then bless_goldens golden_dir
  else
    match replay_seed with
    | Some seed ->
        let verdict = Check.run_seed seed in
        Printf.printf "seed %d: %s\n" seed (Check.describe verdict);
        if Check.is_failure verdict then begin
          shrink_and_write ~max_checks:max_shrink_checks ~out
            { Check.seed; verdict };
          exit 1
        end
    | None ->
        let jobs = resolve_jobs jobs in
        Printf.printf "check: seeds [%d, %d) on %d job%s\n%!" start (start + seeds)
          jobs
          (if jobs = 1 then "" else "s");
        let cases =
          Check.fuzz ~jobs
            ~progress:(fun ~completed ~total ->
              Printf.printf "\r  %d/%d cases%!" completed total)
            ~start ~count:seeds ()
        in
        print_newline ();
        List.iter
          (fun (cls, n) -> Printf.printf "  %-24s %d\n" cls n)
          (Check.tally cases);
        let failures =
          List.filter (fun c -> Check.is_failure c.Check.verdict) cases
        in
        List.iter
          (fun c ->
            Printf.printf "seed %d: %s\n" c.Check.seed (Check.describe c.Check.verdict))
          failures;
        (match Check.first_failure cases with
        | None -> Printf.printf "check: %d cases, no failures\n" seeds
        | Some c ->
            Printf.printf "check: %d of %d cases FAILED\n" (List.length failures)
              seeds;
            shrink_and_write ~max_checks:max_shrink_checks ~out c;
            exit 1)

(* --- chaos --- *)

(* Minimize a failing chaos case under the same fault plan it failed
   with, and write a reproducer whose header embeds the plan. *)
let shrink_and_write_chaos ~max_checks ~retry_budget ~out seed verdict =
  let g = Check.Gen.generate seed in
  let cfg = Check.Gen.chaos_config seed in
  let plan = Check.Gen.random_fault_plan seed in
  Printf.printf "shrinking chaos seed %d (class %s) ...\n%!" seed
    (Check.class_of verdict);
  let o =
    Check.Shrink.shrink_failure ~max_checks ~input_seed:seed ~faults:plan
      ~retry_budget cfg g verdict
  in
  Printf.printf "minimized: %d -> %d ops (%d reductions, %d re-checks)\n"
    (Ir.Graph.app_count g)
    (Ir.Graph.app_count o.Check.Shrink.graph)
    o.Check.Shrink.accepted o.Check.Shrink.checks;
  let verdict =
    Check.run_case ~input_seed:seed ~faults:plan ~retry_budget
      o.Check.Shrink.config o.Check.Shrink.graph
  in
  write_file out
    (Check.reproducer ~faults:plan ~seed ~config:o.Check.Shrink.config
       ~graph:o.Check.Shrink.graph ~verdict ());
  Printf.printf "wrote %s (fault plan embedded) — minimized verdict: %s\n" out
    (Check.describe verdict)

let chaos seeds start jobs retry_budget replay_seed out max_shrink_checks
    metrics_out metrics_format =
  match replay_seed with
  | Some seed ->
      Printf.printf "seed %d: plan %s\n" seed
        (Fault.Plan.to_string (Check.Gen.random_fault_plan seed));
      let verdict = Check.run_chaos_seed ~retry_budget seed in
      Printf.printf "seed %d: %s\n" seed (Check.describe verdict);
      if Check.is_failure verdict then begin
        shrink_and_write_chaos ~max_checks:max_shrink_checks ~retry_budget ~out
          seed verdict;
        exit 1
      end
  | None ->
      let jobs = resolve_jobs jobs in
      Printf.printf "chaos: seeds [%d, %d) on %d job%s (retry budget %d)\n%!"
        start (start + seeds) jobs
        (if jobs = 1 then "" else "s")
        retry_budget;
      let cases =
        Check.fuzz ~jobs
          ~run:(Check.run_chaos_seed ~retry_budget)
          ~progress:(fun ~completed ~total ->
            Printf.printf "\r  %d/%d campaigns%!" completed total)
          ~start ~count:seeds ()
      in
      print_newline ();
      List.iter
        (fun (cls, n) -> Printf.printf "  %-24s %d\n" cls n)
        (Check.tally cases);
      (match metrics_registry metrics_out with
      | None -> ()
      | Some reg ->
          Metrics.inc
            (Metrics.counter reg ~help:"Chaos campaigns run."
               "htvm_chaos_campaigns_total")
            seeds;
          List.iter
            (fun (cls, n) ->
              Metrics.inc
                (Metrics.counter reg
                   ~labels:[ ("class", cls) ]
                   ~help:"Chaos campaign verdicts by class."
                   "htvm_chaos_verdicts_total")
                n)
            (Check.tally cases);
          write_metrics metrics_out metrics_format (Metrics.snapshot reg));
      let failures =
        List.filter (fun c -> Check.is_failure c.Check.verdict) cases
      in
      List.iter
        (fun c ->
          Printf.printf "seed %d: %s\n" c.Check.seed (Check.describe c.Check.verdict))
        failures;
      (match Check.first_failure cases with
      | None -> Printf.printf "chaos: %d campaigns, no failures\n" seeds
      | Some c ->
          Printf.printf "chaos: %d of %d campaigns FAILED\n"
            (List.length failures) seeds;
          shrink_and_write_chaos ~max_checks:max_shrink_checks ~retry_budget
            ~out c.Check.seed c.Check.verdict;
          exit 1)

(* --- serve --- *)

(* Parse --model NAME=PATH. *)
let parse_model_flag s =
  match String.index_opt s '=' with
  | Some i when i > 0 && i < String.length s - 1 ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | _ ->
      Printf.eprintf "htvmc: bad --model %S (expected NAME=PATH)\n" s;
      exit 1

(* Parse --class NAME=MODEL[:SLO[:WEIGHT]]; SLO 0 means none. *)
let parse_class_flag s =
  let die () =
    Printf.eprintf
      "htvmc: bad --class %S (expected NAME=MODEL[:SLO[:WEIGHT]])\n" s;
    exit 1
  in
  match String.index_opt s '=' with
  | Some i when i > 0 && i < String.length s - 1 ->
      let name = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let model, slo, weight =
        match String.split_on_char ':' rest with
        | [ m ] -> (m, None, 1)
        | [ m; slo ] -> (
            match int_of_string_opt slo with
            | Some 0 -> (m, None, 1)
            | Some t -> (m, Some t, 1)
            | None -> die ())
        | [ m; slo; w ] -> (
            match (int_of_string_opt slo, int_of_string_opt w) with
            | Some t, Some w -> (m, (if t = 0 then None else Some t), w)
            | _ -> die ())
        | _ -> die ()
      in
      { Serve.k_name = name; k_model = model; k_slo = slo; k_weight = weight }
  | _ -> die ()

(* Assemble the optional health-lifecycle config from its flags. The
   0 / -1 defaults are the auto sentinels Serve resolves against the
   probe request's service time. *)
let health_config_of_args enabled threshold probation interval cost passes cap
    fail seed =
  if not enabled then None
  else
    Some
      {
        Health.fault_threshold = threshold;
        probation_window = probation;
        probe_interval = interval;
        probe_cost = cost;
        pass_threshold = passes;
        backoff_cap = cap;
        probe_fail_prob = fail;
        probe_seed = seed;
      }

(* The multi-tenant serve path: a model registry (the positional
   artifact is model "main", --model adds more), per-class SLOs, and a
   fleet that pins or hot-swaps models. All failures are typed
   [Serve.mt_error]s, printed and mapped to exit 1. *)
let serve_mt path config jobs workers batch queue_depth requests seed arrival
    gap window overhead no_plan degraded health model_flags class_flags
    placement swap_overhead period burst replay arrival_trace_out trace_out
    json_out tally_out metrics_out metrics_format store =
  let cfg = config_for config (Some jobs) in
  let model_paths = ("main", path) :: List.map parse_model_flag model_flags in
  (* Fleet warmup: every model compiles through the shared store, so a
     registry that was compiled anywhere before — or earlier in this
     list — comes out of the artifact tier, and fresh models still share
     layer-tier solves with each other. *)
  let models =
    List.map
      (fun (name, p) ->
        let g = load_graph p in
        {
          Serve.m_name = name;
          m_artifact = compile_or_die ?store cfg g;
          m_graph = g;
        })
      model_paths
  in
  let classes = List.map parse_class_flag class_flags in
  let mt_arrival =
    match replay with
    | Some file -> (
        match Serve.load_arrival_trace file with
        | Ok entries -> Serve.Mt_replay entries
        | Error e ->
            Printf.eprintf "htvmc: %s\n" (Serve.mt_error_to_string e);
            exit 1)
    | None -> (
        match arrival with
        | "closed" -> Serve.Mt_closed
        | "poisson" -> Serve.Mt_poisson { mean_gap = gap }
        | "diurnal" -> Serve.Mt_diurnal { mean_gap = gap; period }
        | "bursty" -> Serve.Mt_bursty { mean_gap = gap; burst }
        | other ->
            Printf.eprintf
              "htvmc: unknown arrival process %S \
               (closed|poisson|diurnal|bursty)\n"
              other;
            exit 1)
  in
  let placement =
    match placement with
    | "pinned" -> Serve.Pinned
    | "swap" -> Serve.Swap
    | other ->
        Printf.eprintf "htvmc: unknown placement %S (pinned|swap)\n" other;
        exit 1
  in
  let mcfg =
    {
      Serve.mt_workers = workers;
      mt_max_batch = batch;
      mt_queue_depth = queue_depth;
      mt_requests = requests;
      mt_seed = seed;
      mt_arrival;
      mt_window = window;
      mt_dispatch_overhead = overhead;
      mt_swap_overhead = swap_overhead;
      mt_placement = placement;
      mt_jobs = jobs;
      mt_use_plan = not no_plan;
      mt_degraded_instances = degraded;
      mt_health = health;
    }
  in
  (* Unlike the single-model path the registry is serve-only: the
     compile-side metrics register strictly, and compiling several
     models into one registry would collide. *)
  let reg = metrics_registry metrics_out in
  (* Before mt_run: the report snapshots the registry itself, and store
     traffic stops accruing once the fleet is compiled. *)
  export_store_metrics reg store;
  match
    with_trace trace_out (fun trace ->
        Serve.mt_run ?trace ?metrics:reg mcfg ~models ~classes)
  with
  | Error e ->
      Printf.eprintf "htvmc: %s\n" (Serve.mt_error_to_string e);
      exit 1
  | Ok report ->
      Printf.printf "serving %d model(s), %d class(es) on %s x%d\n"
        (List.length models) (List.length classes)
        cfg.Htvm.Compile.platform.Arch.Platform.platform_name workers;
      print_store_summary store;
      print_string (Serve.mt_summary report);
      write_metrics metrics_out metrics_format report.Serve.mt_metrics;
      (match arrival_trace_out with
      | None -> ()
      | Some p ->
          write_file p (Serve.render_arrival_trace report);
          Printf.printf "wrote %s\n" p);
      (match tally_out with
      | None -> ()
      | Some p ->
          write_file p (Serve.mt_tally report);
          Printf.printf "wrote %s\n" p);
      match json_out with
      | None -> ()
      | Some p ->
          write_file p (Trace.Json.to_string (Serve.mt_to_json report) ^ "\n");
          Printf.printf "wrote %s\n" p

let serve path config jobs workers batch queue_depth requests seed arrival gap
    window overhead inject faults_file retry_budget degrade_after degraded
    health slo_sojourn no_plan memoize input_mix model_flags class_flags
    placement swap_overhead period burst replay arrival_trace_out trace_out
    json_out tally_out metrics_out metrics_format cache cache_dir no_cache =
  let jobs = resolve_jobs jobs in
  let store = store_of_args cache cache_dir no_cache in
  if model_flags <> [] || class_flags <> [] || replay <> None then begin
    (* Multi-tenant mode. The single-model knobs that tenancy does not
       model are rejected loudly rather than silently ignored. *)
    List.iter
      (fun (set, flag) ->
        if set then begin
          Printf.eprintf
            "htvmc: %s is not supported with --model/--class/--replay\n" flag;
          exit 1
        end)
      [
        (inject <> None, "--inject");
        (faults_file <> None, "--faults");
        (degrade_after <> None, "--degrade-after");
        (slo_sojourn <> None, "--slo-sojourn (use per-class SLOs)");
        (memoize, "--memoize");
        (input_mix <> 0, "--input-mix");
      ];
    ignore retry_budget;
    serve_mt path config jobs workers batch queue_depth requests seed arrival
      gap window overhead no_plan degraded health model_flags class_flags
      placement swap_overhead period burst replay arrival_trace_out trace_out
      json_out tally_out metrics_out metrics_format store
  end
  else begin
  (match arrival_trace_out with
  | Some _ ->
      Printf.eprintf "htvmc: --trace-out requires --class (multi-tenant mode)\n";
      exit 1
  | None -> ());
  let g = load_graph path in
  let cfg = config_for config (Some jobs) in
  (* One registry spans compile and serve, so a single --metrics dump
     carries the wall-clock compile phases alongside the cycle-domain
     serving telemetry (in separate tracks). *)
  let reg = metrics_registry metrics_out in
  let artifact = compile_or_die ?metrics:reg ?store cfg g in
  export_store_metrics reg store;
  let plan =
    Option.value ~default:Fault.Plan.empty (plan_of_args inject faults_file)
  in
  let arrival =
    match arrival with
    | "closed" -> Serve.Closed
    | "poisson" -> Serve.Poisson { mean_gap = gap }
    | "diurnal" | "bursty" ->
        Printf.eprintf
          "htvmc: arrival %S needs multi-tenant mode (add --class)\n" arrival;
        exit 1
    | other ->
        Printf.eprintf "htvmc: unknown arrival process %S (closed|poisson)\n" other;
        exit 1
  in
  let scfg =
    {
      Serve.workers;
      max_batch = batch;
      queue_depth;
      requests;
      seed;
      arrival;
      window;
      dispatch_overhead = overhead;
      plan;
      retry_budget;
      degrade_after;
      degraded_instances = degraded;
      jobs;
      slo_sojourn;
      use_plan = not no_plan;
      memoize;
      input_mix;
      health;
    }
  in
  (* Diagnose bad flag combinations (e.g. --memoize with --inject) as a
     typed config error before the run: one clear line and exit 1, not a
     backtrace. The Invalid_argument catch below stays for violations
     only the run itself can detect (health field ranges). *)
  (match Serve.validate scfg with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "htvmc: %s\n" (Serve.mt_error_to_string e);
      exit 1);
  let report =
    match
      with_trace trace_out (fun trace ->
          Serve.run ?trace ?metrics:reg scfg artifact ~graph:g)
    with
    | r -> r
    | exception Invalid_argument msg ->
        Printf.eprintf "htvmc: %s\n" msg;
        exit 1
  in
  Printf.printf "serving %s on %s x%d\n" path
    cfg.Htvm.Compile.platform.Arch.Platform.platform_name workers;
  print_store_summary store;
  print_string (Serve.summary report);
  write_metrics metrics_out metrics_format report.Serve.r_metrics;
  (match tally_out with
  | None -> ()
  | Some p ->
      write_file p (Serve.tally report);
      Printf.printf "wrote %s\n" p);
  (match json_out with
  | None -> ()
  | Some p ->
      write_file p (Trace.Json.to_string (Serve.to_json report) ^ "\n");
      Printf.printf "wrote %s\n" p)
  end

(* --- campaign: fault-rate sweep under sustained load --- *)

let parse_rates s =
  let parts =
    List.filter (fun p -> p <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  let rates =
    List.map
      (fun p ->
        match float_of_string_opt p with
        | Some f -> f
        | None ->
            Printf.eprintf "htvmc: bad --rates entry %S (expected a float)\n" p;
            exit 1)
      parts
  in
  if rates = [] then begin
    Printf.eprintf "htvmc: --rates must name at least one fault rate\n";
    exit 1
  end;
  rates

let campaign path config jobs workers batch queue_depth requests seed arrival
    gap window overhead retry_budget slo_sojourn no_plan health rates site kind
    fault_seed json_out tally_out metrics_out metrics_format =
  let jobs = resolve_jobs jobs in
  let g = load_graph path in
  let cfg = config_for config (Some jobs) in
  let reg = metrics_registry metrics_out in
  let artifact = compile_or_die ?metrics:reg cfg g in
  let arrival =
    match arrival with
    | "closed" -> Serve.Closed
    | "poisson" -> Serve.Poisson { mean_gap = gap }
    | other ->
        Printf.eprintf "htvmc: unknown arrival process %S (closed|poisson)\n"
          other;
        exit 1
  in
  let serve_cfg =
    {
      Serve.default with
      Serve.workers;
      max_batch = batch;
      queue_depth;
      requests;
      seed;
      arrival;
      window;
      dispatch_overhead = overhead;
      retry_budget;
      jobs;
      slo_sojourn;
      use_plan = not no_plan;
      health;
    }
  in
  let ccfg =
    {
      Campaign.c_serve = serve_cfg;
      c_rates = parse_rates rates;
      c_site = site;
      c_kind = kind;
      c_fault_seed = fault_seed;
    }
  in
  match Campaign.run ?metrics:reg ccfg artifact ~graph:g with
  | Error msg ->
      Printf.eprintf "htvmc: %s\n" msg;
      exit 1
  | Ok t ->
      Printf.printf "campaign %s on %s x%d\n" path
        cfg.Htvm.Compile.platform.Arch.Platform.platform_name workers;
      print_string (Campaign.summary t);
      write_metrics metrics_out metrics_format
        (match reg with
        | Some r -> Metrics.snapshot r
        | None -> Metrics.snapshot (Metrics.create ()));
      (match tally_out with
      | None -> ()
      | Some p ->
          write_file p (Campaign.tally t);
          Printf.printf "wrote %s\n" p);
      (match json_out with
      | None -> ()
      | Some p ->
          write_file p (Trace.Json.to_string (Campaign.to_json t) ^ "\n");
          Printf.printf "wrote %s\n" p)

(* --- dot --- *)

let dot path config out =
  let g = load_graph path in
  let highlight =
    match config with
    | None -> fun _ -> None
    | Some name ->
        let cfg = config_of_name name in
        let simplified = Ir.Rewrite.simplify g in
        let plan =
          Byoc.Partition.run simplified
            ~targets:
              (List.map
                 (fun (a : Arch.Accel.t) ->
                   {
                     Byoc.Partition.name = a.Arch.Accel.accel_name;
                     patterns = Byoc.Library.all;
                     accept = a.Arch.Accel.supports;
                     priority = 1;
                     estimate = None;
                   })
                 cfg.Htvm.Compile.platform.Arch.Platform.accels)
        in
        let color_of = Hashtbl.create 16 in
        List.iter
          (fun seg ->
            match seg with
            | Byoc.Partition.Offload { target; output; _ } ->
                let color =
                  if contains target "analog" then "lightsalmon" else "lightblue"
                in
                List.iter
                  (fun p -> Hashtbl.replace color_of p color)
                  (Byoc.Partition.segment_inputs simplified seg @ [ output ])
            | Byoc.Partition.Host _ -> ())
          plan.Byoc.Partition.segments;
        fun id -> Hashtbl.find_opt color_of id
  in
  let src = Ir.Dot.to_dot ~highlight g in
  match out with
  | None -> print_string src
  | Some p ->
      write_file p src;
      Printf.printf "wrote %s\n" p

(* --- cache: persistent-store maintenance --- *)

let human_bytes n =
  if n >= 1_048_576 then Printf.sprintf "%.1f MiB" (float_of_int n /. 1048576.0)
  else if n >= 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.0)
  else Printf.sprintf "%d B" n

let cache_action action cache_dir max_bytes =
  let root =
    match cache_dir with Some d -> d | None -> Store.default_root ()
  in
  let st =
    try Store.open_root root
    with Sys_error e ->
      Printf.eprintf "htvmc: cannot open cache: %s\n" e;
      exit 1
  in
  match action with
  | "stats" ->
      let es = Store.entries st in
      let count tier =
        List.filter (fun (e : Store.entry) -> e.Store.e_tier = tier) es
      in
      let layer = count Store.Layer and artifact = count Store.Artifact in
      Printf.printf "cache %s\n" root;
      Printf.printf "  layer: %d entr(ies), %s\n" (List.length layer)
        (human_bytes (Store.total_bytes layer));
      Printf.printf "  artifact: %d entr(ies), %s\n" (List.length artifact)
        (human_bytes (Store.total_bytes artifact));
      Printf.printf "  total: %d entr(ies), %s\n" (List.length es)
        (human_bytes (Store.total_bytes es));
      Store.write_index st
  | "verify" ->
      let ok, removed = Store.verify st in
      Printf.printf "verified %d entr(ies): %d ok, %d rejected and removed\n"
        (ok + removed) ok removed
  | "gc" -> (
      match max_bytes with
      | None ->
          Printf.eprintf "htvmc: cache gc requires --max-bytes\n";
          exit 1
      | Some cap when cap < 0 ->
          Printf.eprintf "htvmc: --max-bytes must be >= 0\n";
          exit 1
      | Some cap ->
          let evicted = Store.gc st ~max_bytes:cap in
          let left = Store.entries st in
          Printf.printf
            "gc: evicted %d entr(ies); %d entr(ies), %s retained under a %s \
             cap\n"
            evicted (List.length left)
            (human_bytes (Store.total_bytes left))
            (human_bytes cap))
  | other ->
      Printf.eprintf "htvmc: unknown cache action %S (stats|verify|gc)\n" other;
      exit 1

(* --- cmdliner wiring --- *)

let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL.htvm")
let config_arg =
  Arg.(value & opt string "digital" & info [ "config"; "c" ] ~doc:"cpu|digital|analog|both")
let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace-event JSON (Perfetto-loadable) here.")
let jobs_arg =
  (* HTVM_JOBS is resolved by hand in [resolve_jobs] rather than via
     Cmd.Env: cmdliner would fold the variable into the flag's value,
     and the cap below applies only to the ambient default — an explicit
     --jobs N must still force N. *)
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the compilation engine (tiling solves and \
                 autotune trials); must be >= 1 and is taken as given. When \
                 absent, $(b,HTVM_JOBS) applies, capped at the machine's \
                 recommended domain count; then that count itself. \
                 Compilation results are bit-identical at every job count.")

let metrics_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write a metrics dump here (counters, gauges, histograms, \
                 per-window series). Cycle-domain metrics are byte-identical \
                 at any $(b,--workers)/$(b,--jobs); host wall-clock gauges \
                 live in a separate track rendered last.")
let metrics_format_arg =
  Arg.(value & opt string "prom"
       & info [ "metrics-format" ] ~docv:"FMT"
           ~doc:"Metrics dump format: $(b,prom) (Prometheus text), \
                 $(b,json) or $(b,csv).")

let inject_arg =
  Arg.(value & opt (some string) None
       & info [ "inject" ] ~docv:"SPEC"
           ~doc:"Run under a fault-injection campaign, e.g. \
                 $(b,seed=42,dma_in\\@every=5:drop,l2\\@nth=3:flip). \
                 $(b,none) is an explicit empty campaign (a strict no-op).")
let faults_file_arg =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"FILE"
           ~doc:"Load the fault plan from FILE (same grammar as \
                 $(b,--inject), one or more rules per line).")
let retry_budget_arg =
  Arg.(value & opt int 3
       & info [ "retry-budget" ] ~docv:"N"
           ~doc:"Detected-fault retries allowed per operation before the \
                 modeled runtime aborts the inference.")
let degrade_arg =
  Arg.(value & opt_all string []
       & info [ "degrade" ] ~docv:"TARGET"
           ~doc:"Treat accelerator TARGET as degraded: the compiler's \
                 fallback ladder re-lowers its segments to the next-best \
                 target. Repeatable.")
let no_plan_arg =
  Arg.(value & flag
       & info [ "no-plan" ]
           ~doc:"Execute on the slow interpretive simulator path instead of \
                 the artifact's compiled execution plan. Outputs, cycle \
                 counts and traces are byte-identical either way (the slow \
                 path is the conformance oracle).")

let cache_arg =
  Arg.(value & flag
       & info [ "cache" ]
           ~doc:"Read and write the persistent compilation store (default \
                 $(b,~/.cache/htvm), see $(b,--cache-dir)). Warm compiles \
                 are byte-identical to cold ones; corrupt entries are \
                 recomputed, never served.")
let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persistent-store directory (implies $(b,--cache)).")
let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the persistent store even if $(b,--cache) or \
                 $(b,--cache-dir) is given.")

let export_cmd =
  let model = Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL") in
  let policy = Arg.(value & opt string "int8" & info [ "policy"; "p" ] ~doc:"int8|ternary|mixed") in
  let out = Arg.(value & opt string "model.htvm" & info [ "o" ] ~doc:"Output path.") in
  Cmd.v (Cmd.info "export" ~doc:"Export a zoo model to a .htvm file")
    Term.(const export $ model $ policy $ out)

let inspect_cmd =
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full graph.") in
  Cmd.v (Cmd.info "inspect" ~doc:"Print a model's statistics")
    Term.(const inspect $ path_arg $ verbose)

let compile_cmd =
  let emit_c =
    Arg.(value & opt (some string) None & info [ "emit-c" ] ~doc:"Write generated C here.")
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a model for DIANA")
    Term.(const compile $ path_arg $ config_arg $ jobs_arg $ emit_c $ trace_arg
          $ cache_arg $ cache_dir_arg $ no_cache_arg)

let run_cmd =
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Input seed.") in
  Cmd.v (Cmd.info "run" ~doc:"Compile and simulate a model")
    Term.(const run $ path_arg $ config_arg $ jobs_arg $ seed $ trace_arg
          $ inject_arg $ faults_file_arg $ retry_budget_arg $ degrade_arg
          $ no_plan_arg $ metrics_arg $ metrics_format_arg $ cache_arg
          $ cache_dir_arg $ no_cache_arg)

let profile_cmd =
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Input seed.") in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Also write the JSON report here.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Compile and simulate with tracing on; print a profile summary")
    Term.(const profile $ path_arg $ config_arg $ jobs_arg $ seed $ trace_arg
          $ json_out $ inject_arg $ faults_file_arg $ retry_budget_arg
          $ degrade_arg $ no_plan_arg $ metrics_arg $ metrics_format_arg
          $ cache_arg $ cache_dir_arg $ no_cache_arg)

let dot_cmd =
  let out = Arg.(value & opt (some string) None & info [ "o" ] ~doc:"Write DOT here.") in
  let config =
    Arg.(value & opt (some string) None
         & info [ "config"; "c" ] ~doc:"Color offloaded regions for this config.")
  in
  Cmd.v (Cmd.info "dot" ~doc:"Export a model as Graphviz DOT")
    Term.(const dot $ path_arg $ config $ out)

let quantize_cmd =
  let ternary = Arg.(value & flag & info [ "ternary" ] ~doc:"Ternarize conv weights.") in
  let samples = Arg.(value & opt int 8 & info [ "samples" ] ~doc:"Calibration samples.") in
  let out = Arg.(value & opt string "model.htvm" & info [ "o" ] ~doc:"Output path.") in
  Cmd.v (Cmd.info "quantize" ~doc:"Post-training quantize a .fhtvm float model")
    Term.(const quantize $ path_arg $ ternary $ samples $ out)

let export_float_cmd =
  let which = Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL") in
  let out = Arg.(value & opt string "model.fhtvm" & info [ "o" ] ~doc:"Output path.") in
  Cmd.v (Cmd.info "export-float" ~doc:"Write a sample float model to a .fhtvm file")
    Term.(const export_float $ which $ out)

let verify_cmd =
  let trials = Arg.(value & opt int 10 & info [ "trials"; "n" ] ~doc:"Random inputs to check.") in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Differentially verify the compiled artifact against the interpreter")
    Term.(const verify $ path_arg $ config_arg $ jobs_arg $ trials)

let check_cmd =
  let seeds =
    Arg.(value & opt int 100
         & info [ "seeds"; "n" ] ~docv:"N" ~doc:"Number of fuzz seeds to run.")
  in
  let start =
    Arg.(value & opt int 0 & info [ "start" ] ~docv:"S" ~doc:"First seed of the range.")
  in
  let golden_dir =
    Arg.(value & opt string "test/golden"
         & info [ "golden-dir" ] ~docv:"DIR" ~doc:"Golden snapshot directory.")
  in
  let bless =
    Arg.(value & flag
         & info [ "bless" ]
             ~doc:"Re-record the golden snapshots (model zoo x deployment \
                   configs) instead of fuzzing.")
  in
  let replay_seed =
    Arg.(value & opt (some int) None
         & info [ "replay-seed" ] ~docv:"SEED"
             ~doc:"Run exactly one fuzz case (from a reproducer header) instead \
                   of a range.")
  in
  let out =
    Arg.(value & opt string "htvm-repro.htvm"
         & info [ "o"; "repro" ] ~docv:"FILE"
             ~doc:"Where to write the minimized reproducer on failure.")
  in
  let max_shrink_checks =
    Arg.(value & opt int 400
         & info [ "max-shrink-checks" ] ~docv:"N"
             ~doc:"Budget of failure-predicate re-checks for the shrinker.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Differential conformance check: fuzz random (graph, config) cases \
             against the reference interpreter, auto-shrink the first failure \
             to a minimal reproducer; --bless records golden snapshots")
    Term.(const check $ seeds $ start $ jobs_arg $ golden_dir $ bless $ replay_seed
          $ out $ max_shrink_checks)

let chaos_cmd =
  let seeds =
    Arg.(value & opt int 100
         & info [ "seeds"; "n" ] ~docv:"N"
             ~doc:"Number of chaos campaigns to run.")
  in
  let start =
    Arg.(value & opt int 0 & info [ "start" ] ~docv:"S" ~doc:"First seed of the range.")
  in
  let replay_seed =
    Arg.(value & opt (some int) None
         & info [ "replay-seed" ] ~docv:"SEED"
             ~doc:"Replay exactly one chaos campaign (from a reproducer \
                   header) instead of a range.")
  in
  let out =
    Arg.(value & opt string "htvm-chaos-repro.htvm"
         & info [ "o"; "repro" ] ~docv:"FILE"
             ~doc:"Where to write the minimized reproducer (fault plan \
                   embedded) on failure.")
  in
  let max_shrink_checks =
    Arg.(value & opt int 400
         & info [ "max-shrink-checks" ] ~docv:"N"
             ~doc:"Budget of failure-predicate re-checks for the shrinker.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fuzz under randomized fault-injection campaigns: each seed pairs \
             a random case with a random recoverable fault plan; any \
             detected-uncorrected or silent-corruption verdict fails and is \
             shrunk to a replayable reproducer")
    Term.(const chaos $ seeds $ start $ jobs_arg $ retry_budget_arg
          $ replay_seed $ out $ max_shrink_checks $ metrics_arg
          $ metrics_format_arg)

(* Health-lifecycle knobs shared by `serve` and `campaign`. [enable] is
   the command's on/off term (`--health` for serve, `--no-health` for
   campaign, which defaults to on). *)
let health_knobs enable =
  let threshold =
    Arg.(value & opt int Health.default.Health.fault_threshold
         & info [ "health-threshold" ] ~docv:"N"
             ~doc:"Faults accumulated during one healthy tenure before an \
                   instance degrades.")
  in
  let probation =
    Arg.(value & opt int 0
         & info [ "probation" ] ~docv:"CYCLES"
             ~doc:"Base cooldown between degrading and the first health \
                   probe; escalates exponentially on relapse. 0 = auto \
                   (twice a probe request's service time).")
  in
  let interval =
    Arg.(value & opt int (-1)
         & info [ "probe-interval" ] ~docv:"CYCLES"
             ~doc:"Idle gap between probes while on probation; 0 = \
                   back-to-back, -1 = auto (a quarter of a probe request's \
                   service time).")
  in
  let cost =
    Arg.(value & opt int 0
         & info [ "probe-cost" ] ~docv:"CYCLES"
             ~doc:"Cycles each health probe occupies the probed instance; \
                   0 = auto (a tenth of a probe request's service time).")
  in
  let passes =
    Arg.(value & opt int Health.default.Health.pass_threshold
         & info [ "probe-passes" ] ~docv:"N"
             ~doc:"Consecutive probe passes required for readmission.")
  in
  let cap =
    Arg.(value & opt int 0
         & info [ "health-cap" ] ~docv:"CYCLES"
             ~doc:"Ceiling for the escalated probation cooldown; 0 = auto \
                   (eight probation windows).")
  in
  let fail =
    Arg.(value & opt float Health.default.Health.probe_fail_prob
         & info [ "probe-fail" ] ~docv:"P"
             ~doc:"Per-probe Bernoulli failure probability (seeded, \
                   deterministic).")
  in
  let hseed =
    Arg.(value & opt int Health.default.Health.probe_seed
         & info [ "health-seed" ] ~docv:"S"
             ~doc:"Base seed for the per-instance probe-outcome streams.")
  in
  Term.(const health_config_of_args $ enable $ threshold $ probation $ interval
        $ cost $ passes $ cap $ fail $ hseed)

let serve_cmd =
  let workers =
    Arg.(value & opt int Serve.default.Serve.workers
         & info [ "workers"; "w" ] ~docv:"N"
             ~doc:"Fleet size: independent simulated SoC instances.")
  in
  let batch =
    Arg.(value & opt int Serve.default.Serve.max_batch
         & info [ "batch"; "b" ] ~docv:"N"
             ~doc:"Maximum requests per dispatched batch; in multi-tenant \
                   mode 0 = autotune against the dispatch overhead.")
  in
  let queue_depth =
    Arg.(value & opt int Serve.default.Serve.queue_depth
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Ingress buffer capacity per dispatch window; requests \
                   arriving into a full window are shed (poisson mode).")
  in
  let requests =
    Arg.(value & opt int Serve.default.Serve.requests
         & info [ "requests"; "n" ] ~docv:"N" ~doc:"Synthetic requests to generate.")
  in
  let seed =
    Arg.(value & opt int Serve.default.Serve.seed
         & info [ "seed" ] ~docv:"S"
             ~doc:"Seeds the arrival process and every request payload. The \
                   per-request tally is bit-identical at any $(b,--workers) \
                   and $(b,--jobs) for a fixed seed.")
  in
  let arrival =
    Arg.(value & opt string "closed"
         & info [ "arrival" ] ~docv:"MODE"
             ~doc:"$(b,closed) (saturating backlog, the throughput experiment) \
                   or $(b,poisson) (open loop with exponential gaps); \
                   multi-tenant mode adds $(b,diurnal) (gap mean sweeps \
                   peak-to-trough over --period) and $(b,bursty) (--burst \
                   requests at a time).")
  in
  let gap =
    Arg.(value & opt int 0
         & info [ "gap" ] ~docv:"CYCLES"
             ~doc:"Mean Poisson inter-arrival gap in cycles; 0 = auto (half a \
                   probe request's service time).")
  in
  let window =
    Arg.(value & opt int 0
         & info [ "window" ] ~docv:"CYCLES"
             ~doc:"Dispatch window length in cycles (poisson mode); 0 = auto \
                   (one probe request's service time).")
  in
  let overhead =
    Arg.(value & opt int Serve.default.Serve.dispatch_overhead
         & info [ "dispatch-overhead" ] ~docv:"CYCLES"
             ~doc:"Cycles charged once per dispatched batch.")
  in
  let degrade_after =
    Arg.(value & opt (some int) None
         & info [ "degrade-after" ] ~docv:"N"
             ~doc:"Route around an instance once the requests it served have \
                   reported N faults (detected + silent).")
  in
  let degraded =
    Arg.(value & opt_all int []
         & info [ "degraded" ] ~docv:"ID"
             ~doc:"Instance id degraded from cycle 0 (repeatable). Ids must \
                   be distinct and in [0, workers). With $(b,--health) the \
                   instance walks the probation/readmission lifecycle; \
                   without it it stays out of rotation for the whole run.")
  in
  let health =
    health_knobs
      Arg.(value & flag
           & info [ "health" ]
               ~doc:"Enable the per-instance health lifecycle: degraded \
                     instances re-enter probation after a cooldown, run \
                     seeded probes (each costing cycles on the probed \
                     instance) and are readmitted to the rotation after \
                     consecutive passes. Mutually exclusive with \
                     $(b,--degrade-after).")
  in
  let slo_sojourn =
    Arg.(value & opt (some int) None
         & info [ "slo-sojourn" ] ~docv:"CYCLES"
             ~doc:"Sojourn (arrival-to-completion) SLO target in cycles. \
                   Violations are counted against the predicted \
                   queueing-free sojourn (worker-invariant, in the tally) \
                   and against the observed sojourn (fleet-dependent, \
                   report only).")
  in
  let memoize =
    Arg.(value & flag
         & info [ "memoize" ]
             ~doc:"Reuse one execution across requests with identical input \
                   digests (deduplicated before the worker fan-out). \
                   Requires a fault-free run; the tally is byte-identical \
                   with and without it, only hit/miss telemetry and wall \
                   time move.")
  in
  let input_mix =
    Arg.(value & opt int Serve.default.Serve.input_mix
         & info [ "input-mix" ] ~docv:"K"
             ~doc:"Fold per-request input seeds into a pool of K distinct \
                   payloads (0 = every request unique, the default). \
                   Arrival times are unaffected. Gives $(b,--memoize) \
                   something to hit.")
  in
  let model_flags =
    Arg.(value & opt_all string []
         & info [ "model" ] ~docv:"NAME=PATH"
             ~doc:"Register an additional model (repeatable). The positional \
                   MODEL.htvm is always registered as $(b,main). Any --model \
                   or --class flag switches serve into multi-tenant mode.")
  in
  let class_flags =
    Arg.(value & opt_all string []
         & info [ "class" ] ~docv:"NAME=MODEL[:SLO[:WEIGHT]]"
             ~doc:"Define a request class (repeatable): which registered \
                   model it runs, an optional per-class sojourn SLO in \
                   cycles (0 = none; requests whose predicted sojourn \
                   exceeds it are shed), and its share of synthetic traffic \
                   (default weight 1).")
  in
  let placement =
    Arg.(value & opt string "swap"
         & info [ "placement" ] ~docv:"MODE"
             ~doc:"$(b,swap) (any instance serves any batch, paying \
                   --swap-overhead per model change) or $(b,pinned) \
                   (instance i permanently hosts model i mod n; needs \
                   workers >= distinct models).")
  in
  let swap_overhead =
    Arg.(value & opt int Serve.mt_default.Serve.mt_swap_overhead
         & info [ "swap-overhead" ] ~docv:"CYCLES"
             ~doc:"Model reload cost when an instance switches models.")
  in
  let period =
    Arg.(value & opt int 0
         & info [ "period" ] ~docv:"CYCLES"
             ~doc:"Diurnal arrival period; 0 = auto (8 dispatch windows).")
  in
  let burst =
    Arg.(value & opt int 4
         & info [ "burst" ] ~docv:"N"
             ~doc:"Requests per burst for $(b,--arrival bursty).")
  in
  let replay =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay a recorded arrival trace (cycles, classes, payload \
                   seeds) instead of generating arrivals; implies \
                   multi-tenant mode and requires matching --class flags.")
  in
  let arrival_trace_out =
    Arg.(value & opt (some string) None
         & info [ "trace-out" ] ~docv:"FILE"
             ~doc:"Record the run's arrival stream in the replayable \
                   $(b,htvm-serve-trace v1) format (multi-tenant mode).")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the JSON serving report here.")
  in
  let tally_out =
    Arg.(value & opt (some string) None
         & info [ "tally" ] ~docv:"FILE"
             ~doc:"Write the canonical per-request tally here (byte-identical \
                   across worker counts for a fixed seed).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a seeded synthetic request stream on a fleet of simulated \
             SoC instances: windowed admission with shedding, batched \
             dispatch, routing around degraded instances, latency/throughput \
             aggregation. With --model/--class, a multi-tenant fleet hosting \
             several artifacts under per-class latency SLOs.")
    Term.(const serve $ path_arg $ config_arg $ jobs_arg $ workers $ batch
          $ queue_depth $ requests $ seed $ arrival $ gap $ window $ overhead
          $ inject_arg $ faults_file_arg $ retry_budget_arg $ degrade_after
          $ degraded $ health $ slo_sojourn $ no_plan_arg $ memoize $ input_mix
          $ model_flags $ class_flags $ placement $ swap_overhead $ period
          $ burst $ replay $ arrival_trace_out $ trace_arg $ json_out
          $ tally_out $ metrics_arg $ metrics_format_arg $ cache_arg
          $ cache_dir_arg $ no_cache_arg)

let campaign_cmd =
  let workers =
    Arg.(value & opt int Serve.default.Serve.workers
         & info [ "workers"; "w" ] ~docv:"N"
             ~doc:"Fleet size. The campaign tally is byte-identical at any \
                   value.")
  in
  let batch =
    Arg.(value & opt int Serve.default.Serve.max_batch
         & info [ "batch"; "b" ] ~docv:"N"
             ~doc:"Maximum requests per dispatched batch.")
  in
  let queue_depth =
    Arg.(value & opt int Serve.default.Serve.queue_depth
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Ingress buffer capacity per dispatch window.")
  in
  let requests =
    Arg.(value & opt int Serve.default.Serve.requests
         & info [ "requests"; "n" ] ~docv:"N"
             ~doc:"Synthetic requests per rate point.")
  in
  let seed =
    Arg.(value & opt int Serve.default.Serve.seed
         & info [ "seed" ] ~docv:"S"
             ~doc:"Seeds the arrival process and request payloads (shared by \
                   every rate point).")
  in
  let arrival =
    Arg.(value & opt string "poisson"
         & info [ "arrival" ] ~docv:"MODE"
             ~doc:"$(b,closed) or $(b,poisson) (default: the open-loop \
                   experiment, so shedding has meaning).")
  in
  let gap =
    Arg.(value & opt int 0
         & info [ "gap" ] ~docv:"CYCLES"
             ~doc:"Mean Poisson inter-arrival gap; 0 = auto.")
  in
  let window =
    Arg.(value & opt int 0
         & info [ "window" ] ~docv:"CYCLES"
             ~doc:"Dispatch window length; 0 = auto.")
  in
  let overhead =
    Arg.(value & opt int Serve.default.Serve.dispatch_overhead
         & info [ "dispatch-overhead" ] ~docv:"CYCLES"
             ~doc:"Cycles charged once per dispatched batch.")
  in
  let slo_sojourn =
    Arg.(value & opt (some int) None
         & info [ "slo-sojourn" ] ~docv:"CYCLES"
             ~doc:"Sojourn SLO target; predicted violations per rate point \
                   form the campaign's SLO curve.")
  in
  let health =
    health_knobs
      Term.(const not
            $ Arg.(value & flag
                   & info [ "no-health" ]
                       ~doc:"Disable the health lifecycle (campaigns default \
                             to running it, so readmission counts appear in \
                             the curve)."))
  in
  let rates =
    Arg.(value & opt string "0.002,0.01,0.05"
         & info [ "rates" ] ~docv:"P,P,..."
             ~doc:"Comma-separated fault injection probabilities to sweep, \
                   each in [0, 1].")
  in
  let site =
    Arg.(value & opt string "dma_in"
         & info [ "site" ] ~docv:"SITE"
             ~doc:"Fault site to inject at (plan grammar: dma_in, dma_out, \
                   weight_load, compute[=ENGINE], l1, l2).")
  in
  let kind =
    Arg.(value & opt string "flip"
         & info [ "fault-kind" ] ~docv:"KIND"
             ~doc:"Fault kind per injection (plan grammar: flip[=BIT], drop, \
                   stall=CYCLES).")
  in
  let fault_seed =
    Arg.(value & opt int 7
         & info [ "fault-seed" ] ~docv:"S"
             ~doc:"Seed shared by every generated fault plan.")
  in
  let json_out =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the JSON campaign report here.")
  in
  let tally_out =
    Arg.(value & opt (some string) None
         & info [ "tally" ] ~docv:"FILE"
             ~doc:"Write the campaign tally here (byte-identical across \
                   worker and job counts for a fixed seed).")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Sustained chaos-under-load campaign: sweep a fault site's \
             injection probability across rate points, serving the full \
             request stream at each, and report SLO-violation / shed-rate / \
             readmission curves. The health lifecycle is on by default so \
             degraded instances re-enter rotation mid-run.")
    Term.(const campaign $ path_arg $ config_arg $ jobs_arg $ workers $ batch
          $ queue_depth $ requests $ seed $ arrival $ gap $ window $ overhead
          $ retry_budget_arg $ slo_sojourn $ no_plan_arg $ health $ rates
          $ site $ kind $ fault_seed $ json_out $ tally_out $ metrics_arg
          $ metrics_format_arg)

let cache_cmd =
  let action =
    Arg.(value & pos 0 string "stats"
         & info [] ~docv:"ACTION"
             ~doc:"$(b,stats) (inventory per tier), $(b,verify) (re-check \
                   every entry's header and digest, deleting invalid ones) \
                   or $(b,gc) (LRU-by-mtime eviction down to \
                   $(b,--max-bytes)).")
  in
  let max_bytes =
    Arg.(value & opt (some int) None
         & info [ "max-bytes" ] ~docv:"N"
             ~doc:"Size cap for $(b,gc): least-recently-used entries are \
                   evicted until the store fits.")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Inspect and maintain the persistent compilation store \
             (stats / verify / gc).")
    Term.(const cache_action $ action $ cache_dir_arg $ max_bytes)

let report_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~doc:"Write the report here.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the machine-readable JSON report instead of markdown.")
  in
  Cmd.v (Cmd.info "report" ~doc:"Compile, simulate and print a deployment report")
    Term.(const report $ path_arg $ config_arg $ jobs_arg $ out $ json)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "htvmc" ~version:"1.0"
             ~doc:"HTVM compiler driver for heterogeneous TinyML platforms")
          [ export_cmd; export_float_cmd; quantize_cmd; inspect_cmd; compile_cmd;
            run_cmd; profile_cmd; verify_cmd; check_cmd; chaos_cmd; serve_cmd;
            campaign_cmd; report_cmd; cache_cmd; dot_cmd ]))
