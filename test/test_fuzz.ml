(* Differential fuzzing: random graphs x random deployment configurations.
   Every graph that compiles must execute bit-identically to the reference
   interpreter; compile errors must be typed resource diagnoses, never
   crashes. This is the strongest whole-stack correctness check in the
   repository. Cases run through the Check library, so the suite exercises
   exactly the machinery [htvmc check] ships. *)

let run_one seed =
  let g = Check.Gen.generate seed in
  (match Ir.Graph.validate g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed %d: generator produced invalid graph: %s" seed e);
  match Check.run_seed seed with
  | Check.Pass _ | Check.Resource _ ->
      (* Resource exhaustion is a legitimate outcome on shrunken L1/L2 —
         and it is recognised by variant, not by message substring. *)
      ()
  | verdict ->
      Alcotest.failf "seed %d: %s (%d ops)" seed (Check.describe verdict)
        (Ir.Graph.app_count g)

let test_fuzz_range lo hi () =
  for seed = lo to hi do
    run_one seed
  done

let test_parallel_fuzz_matches_sequential () =
  (* The pooled driver must see exactly the sequential verdicts, in seed
     order, at any job count. *)
  let seq = Check.fuzz ~jobs:1 ~start:0 ~count:24 () in
  let par = Check.fuzz ~jobs:4 ~chunk:5 ~start:0 ~count:24 () in
  Alcotest.(check int) "same case count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Check.case) (b : Check.case) ->
      Alcotest.(check int) "seed order" a.Check.seed b.Check.seed;
      Alcotest.(check string)
        (Printf.sprintf "seed %d verdict" a.Check.seed)
        (Check.class_of a.Check.verdict)
        (Check.class_of b.Check.verdict))
    seq par

let test_generator_diversity () =
  (* The generator must actually produce ternary layers, depthwise layers,
     residual adds and classifier heads across a seed range. *)
  let seen_ternary = ref false
  and seen_dw = ref false
  and seen_add = ref false
  and seen_dense = ref false in
  for seed = 0 to 80 do
    let g = Check.Gen.generate seed in
    List.iter
      (fun id ->
        match Ir.Graph.node g id with
        | Ir.Graph.App { op = Ir.Op.Conv2d p; args } ->
            if p.Nn.Kernels.groups > 1 then seen_dw := true;
            (match Ir.Graph.node g (List.nth args 1) with
            | Ir.Graph.Const t ->
                if Tensor.dtype t = Tensor.Dtype.Ternary then seen_ternary := true
            | _ -> ())
        | Ir.Graph.App { op = Ir.Op.Add; _ } -> seen_add := true
        | Ir.Graph.App { op = Ir.Op.Dense; _ } -> seen_dense := true
        | _ -> ())
      (Ir.Graph.node_ids g)
  done;
  Alcotest.(check bool) "ternary layers generated" true !seen_ternary;
  Alcotest.(check bool) "depthwise generated" true !seen_dw;
  Alcotest.(check bool) "residual adds generated" true !seen_add;
  Alcotest.(check bool) "dense heads generated" true !seen_dense

let suites =
  [ ( "fuzz",
      [ Alcotest.test_case "generator diversity" `Quick test_generator_diversity;
        Alcotest.test_case "differential seeds 0-39" `Quick (test_fuzz_range 0 39);
        Alcotest.test_case "differential seeds 40-79" `Quick (test_fuzz_range 40 79);
        Alcotest.test_case "differential seeds 80-119" `Quick (test_fuzz_range 80 119);
        Alcotest.test_case "parallel driver matches sequential" `Quick
          test_parallel_fuzz_matches_sequential;
        Alcotest.test_case "differential seeds 120-199" `Slow (test_fuzz_range 120 199);
      ] )
  ]
