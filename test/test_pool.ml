(* Tests for Util.Pool: order preservation, sequential equivalence,
   deterministic exception propagation, reuse across batches. *)

exception Boom of int

let test_map_preserves_order () =
  Util.Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 (fun i -> i) in
      Alcotest.(check (list int))
        "parallel map = sequential map"
        (List.map (fun x -> (x * x) + 1) xs)
        (Util.Pool.map p (fun x -> (x * x) + 1) xs))

let test_jobs1_is_list_map () =
  Util.Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "jobs clamps to >= 1" 1 (Util.Pool.jobs p);
      let xs = List.init 20 (fun i -> i) in
      Alcotest.(check (list int)) "identical" (List.map succ xs)
        (Util.Pool.map p succ xs));
  (* jobs below 1 degenerates to 1 rather than failing *)
  Util.Pool.with_pool ~jobs:0 (fun p ->
      Alcotest.(check int) "0 clamps" 1 (Util.Pool.jobs p))

let test_exception_is_lowest_index () =
  Util.Pool.with_pool ~jobs:4 (fun p ->
      let completed = Atomic.make 0 in
      let raised =
        try
          ignore
            (Util.Pool.map p
               (fun i ->
                 if i = 3 || i = 7 then raise (Boom i)
                 else begin
                   Atomic.incr completed;
                   i
                 end)
               (List.init 10 (fun i -> i)));
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int)) "lowest failing index wins" (Some 3) raised;
      (* every non-failing task still ran to completion *)
      Alcotest.(check int) "all other tasks completed" 8 (Atomic.get completed))

let test_reuse_across_batches () =
  Util.Pool.with_pool ~jobs:3 (fun p ->
      for round = 1 to 5 do
        let xs = List.init (10 * round) (fun i -> i) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map (fun x -> x * round) xs)
          (Util.Pool.map p (fun x -> x * round) xs)
      done)

let test_iter_runs_everything () =
  Util.Pool.with_pool ~jobs:4 (fun p ->
      let sum = Atomic.make 0 in
      Util.Pool.iter p (fun i -> ignore (Atomic.fetch_and_add sum i))
        (List.init 101 (fun i -> i));
      Alcotest.(check int) "all tasks observed" 5050 (Atomic.get sum))

let test_shutdown_idempotent () =
  let p = Util.Pool.create ~jobs:2 in
  ignore (Util.Pool.map p succ [ 1; 2; 3 ]);
  Util.Pool.shutdown p;
  Util.Pool.shutdown p

let test_parse_jobs () =
  Alcotest.(check (result int string)) "4" (Ok 4) (Util.Pool.parse_jobs "4");
  Alcotest.(check (result int string)) "padded" (Ok 2) (Util.Pool.parse_jobs " 2 ");
  Alcotest.(check bool) "0 rejected" true (Result.is_error (Util.Pool.parse_jobs "0"));
  Alcotest.(check bool) "negative rejected" true
    (Result.is_error (Util.Pool.parse_jobs "-3"));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Util.Pool.parse_jobs "four"))

let test_stress_many_small_batches () =
  Util.Pool.with_pool ~jobs:4 (fun p ->
      for n = 0 to 40 do
        let xs = List.init n (fun i -> i) in
        Alcotest.(check (list int))
          (Printf.sprintf "n=%d" n)
          (List.map (fun x -> x * x) xs)
          (Util.Pool.map p (fun x -> x * x) xs)
      done)

let suites =
  [ ( "pool",
      [ Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
        Alcotest.test_case "jobs=1 is List.map" `Quick test_jobs1_is_list_map;
        Alcotest.test_case "lowest-index exception" `Quick test_exception_is_lowest_index;
        Alcotest.test_case "reuse across batches" `Quick test_reuse_across_batches;
        Alcotest.test_case "iter runs everything" `Quick test_iter_runs_everything;
        Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        Alcotest.test_case "parse_jobs" `Quick test_parse_jobs;
        Alcotest.test_case "stress small batches" `Slow test_stress_many_small_batches;
      ] )
  ]
