(* Tests for Util.Pool: order preservation, sequential equivalence,
   deterministic exception propagation, reuse across batches. *)

exception Boom of int

let test_map_preserves_order () =
  Util.Pool.with_pool ~jobs:4 (fun p ->
      let xs = List.init 100 (fun i -> i) in
      Alcotest.(check (list int))
        "parallel map = sequential map"
        (List.map (fun x -> (x * x) + 1) xs)
        (Util.Pool.map p (fun x -> (x * x) + 1) xs))

let test_jobs1_is_list_map () =
  Util.Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check int) "jobs clamps to >= 1" 1 (Util.Pool.jobs p);
      let xs = List.init 20 (fun i -> i) in
      Alcotest.(check (list int)) "identical" (List.map succ xs)
        (Util.Pool.map p succ xs));
  (* jobs below 1 degenerates to 1 rather than failing *)
  Util.Pool.with_pool ~jobs:0 (fun p ->
      Alcotest.(check int) "0 clamps" 1 (Util.Pool.jobs p))

let test_exception_is_lowest_index () =
  Util.Pool.with_pool ~jobs:4 (fun p ->
      let completed = Atomic.make 0 in
      let raised =
        try
          ignore
            (Util.Pool.map p
               (fun i ->
                 if i = 3 || i = 7 then raise (Boom i)
                 else begin
                   Atomic.incr completed;
                   i
                 end)
               (List.init 10 (fun i -> i)));
          None
        with Boom i -> Some i
      in
      Alcotest.(check (option int)) "lowest failing index wins" (Some 3) raised;
      (* every non-failing task still ran to completion *)
      Alcotest.(check int) "all other tasks completed" 8 (Atomic.get completed))

(* The serve workload shape: one batch, several raising tasks. The
   documented contract — remaining tasks still complete, lowest-indexed
   exception wins — must hold at jobs = 1 (the sequential path used to
   abandon the tail at the first raise) exactly as at jobs = 4. *)
let test_exception_contract_jobs_1_vs_4 () =
  List.iter
    (fun jobs ->
      Util.Pool.with_pool ~jobs (fun p ->
          let completed = Atomic.make 0 in
          let raised =
            try
              ignore
                (Util.Pool.map p
                   (fun i ->
                     if i mod 3 = 1 then raise (Boom i)
                     else begin
                       Atomic.incr completed;
                       i
                     end)
                   (List.init 9 (fun i -> i)));
              None
            with Boom i -> Some i
          in
          Alcotest.(check (option int))
            (Printf.sprintf "jobs=%d: lowest failing index" jobs)
            (Some 1) raised;
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d: remaining tasks completed" jobs)
            6 (Atomic.get completed)))
    [ 1; 4 ];
  (* Single-task batches bypass the worker fan-out even on a multi-job
     pool; the contract still applies. *)
  Util.Pool.with_pool ~jobs:4 (fun p ->
      match Util.Pool.map p (fun i -> raise (Boom i)) [ 5 ] with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 5 -> ())

(* HTVM_JOBS handling: valid values parse but are capped at the
   machine's recommended domain count (an ambient default must not
   oversubscribe a smaller box), unset/empty fall back to the — uncapped
   — default, and malformed values fail loudly with parse_jobs's
   message, the same diagnosis a rejected --jobs flag gets. *)
let with_jobs_env value f =
  let old = Sys.getenv_opt "HTVM_JOBS" in
  Unix.putenv "HTVM_JOBS" value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv "HTVM_JOBS" (Option.value old ~default:""))
    f

let test_jobs_from_env_valid () =
  let avail = Util.Pool.available () in
  with_jobs_env "3" (fun () ->
      Alcotest.(check int) "3 parses, capped at available" (min 3 avail)
        (Util.Pool.jobs_from_env ()));
  with_jobs_env " 2 " (fun () ->
      Alcotest.(check int) "padded parses, capped at available" (min 2 avail)
        (Util.Pool.jobs_from_env ()));
  with_jobs_env "1" (fun () ->
      Alcotest.(check int) "1 survives any cap" 1 (Util.Pool.jobs_from_env ()));
  with_jobs_env (string_of_int (avail * 64)) (fun () ->
      Alcotest.(check int) "oversubscription capped at available" avail
        (Util.Pool.jobs_from_env ()));
  with_jobs_env "" (fun () ->
      (* The default is the caller's own choice and is deliberately not
         capped. *)
      Alcotest.(check int) "empty = unset, default uncapped"
        ((avail * 8) + 5)
        (Util.Pool.jobs_from_env ~default:((avail * 8) + 5) ()))

let test_jobs_from_env_rejects_malformed () =
  let expect_invalid value =
    with_jobs_env value (fun () ->
        match Util.Pool.jobs_from_env () with
        | n -> Alcotest.failf "HTVM_JOBS=%S silently yielded %d" value n
        | exception Invalid_argument msg ->
            (* The env path carries the flag path's diagnosis verbatim. *)
            let flag_msg =
              match Util.Pool.parse_jobs value with
              | Error m -> m
              | Ok n -> Alcotest.failf "parse_jobs accepted %S as %d" value n
            in
            Alcotest.(check string)
              (Printf.sprintf "HTVM_JOBS=%S message" value)
              ("HTVM_JOBS: " ^ flag_msg) msg)
  in
  expect_invalid "0";
  expect_invalid "-3";
  expect_invalid "four";
  expect_invalid "2.5"

let test_reuse_across_batches () =
  Util.Pool.with_pool ~jobs:3 (fun p ->
      for round = 1 to 5 do
        let xs = List.init (10 * round) (fun i -> i) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map (fun x -> x * round) xs)
          (Util.Pool.map p (fun x -> x * round) xs)
      done)

let test_iter_runs_everything () =
  Util.Pool.with_pool ~jobs:4 (fun p ->
      let sum = Atomic.make 0 in
      Util.Pool.iter p (fun i -> ignore (Atomic.fetch_and_add sum i))
        (List.init 101 (fun i -> i));
      Alcotest.(check int) "all tasks observed" 5050 (Atomic.get sum))

let test_shutdown_idempotent () =
  let p = Util.Pool.create ~jobs:2 in
  ignore (Util.Pool.map p succ [ 1; 2; 3 ]);
  Util.Pool.shutdown p;
  Util.Pool.shutdown p

let test_parse_jobs () =
  Alcotest.(check (result int string)) "4" (Ok 4) (Util.Pool.parse_jobs "4");
  Alcotest.(check (result int string)) "padded" (Ok 2) (Util.Pool.parse_jobs " 2 ");
  Alcotest.(check bool) "0 rejected" true (Result.is_error (Util.Pool.parse_jobs "0"));
  Alcotest.(check bool) "negative rejected" true
    (Result.is_error (Util.Pool.parse_jobs "-3"));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Util.Pool.parse_jobs "four"))

let test_stress_many_small_batches () =
  Util.Pool.with_pool ~jobs:4 (fun p ->
      for n = 0 to 40 do
        let xs = List.init n (fun i -> i) in
        Alcotest.(check (list int))
          (Printf.sprintf "n=%d" n)
          (List.map (fun x -> x * x) xs)
          (Util.Pool.map p (fun x -> x * x) xs)
      done)

let suites =
  [ ( "pool",
      [ Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
        Alcotest.test_case "jobs=1 is List.map" `Quick test_jobs1_is_list_map;
        Alcotest.test_case "lowest-index exception" `Quick test_exception_is_lowest_index;
        Alcotest.test_case "exception contract jobs 1 vs 4" `Quick
          test_exception_contract_jobs_1_vs_4;
        Alcotest.test_case "HTVM_JOBS valid/unset" `Quick test_jobs_from_env_valid;
        Alcotest.test_case "HTVM_JOBS malformed fails loudly" `Quick
          test_jobs_from_env_rejects_malformed;
        Alcotest.test_case "reuse across batches" `Quick test_reuse_across_batches;
        Alcotest.test_case "iter runs everything" `Quick test_iter_runs_everything;
        Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        Alcotest.test_case "parse_jobs" `Quick test_parse_jobs;
        Alcotest.test_case "stress small batches" `Slow test_stress_many_small_batches;
      ] )
  ]
