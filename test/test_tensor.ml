(* Tests for lib/tensor: dtype ranges, indexing, validation, packing. *)

module Dtype = Tensor.Dtype

let test_dtype_ranges () =
  Alcotest.(check int) "i8 min" (-128) (Dtype.min_value Dtype.I8);
  Alcotest.(check int) "i8 max" 127 (Dtype.max_value Dtype.I8);
  Alcotest.(check int) "u7 min" 0 (Dtype.min_value Dtype.U7);
  Alcotest.(check int) "u7 max" 127 (Dtype.max_value Dtype.U7);
  Alcotest.(check int) "ternary min" (-1) (Dtype.min_value Dtype.Ternary);
  Alcotest.(check bool) "i32 holds big" true (Dtype.in_range Dtype.I32 2_000_000_000);
  Alcotest.(check bool) "i8 rejects 200" false (Dtype.in_range Dtype.I8 200)

let test_dtype_clamp () =
  Alcotest.(check int) "i8 clamp" 127 (Dtype.clamp Dtype.I8 3000);
  Alcotest.(check int) "ternary clamp +" 1 (Dtype.clamp Dtype.Ternary 57);
  Alcotest.(check int) "ternary clamp -" (-1) (Dtype.clamp Dtype.Ternary (-3));
  Alcotest.(check int) "ternary clamp 0" 0 (Dtype.clamp Dtype.Ternary 0)

let test_dtype_sizes () =
  Alcotest.(check int) "i8 sim byte" 1 (Dtype.sim_bytes Dtype.I8);
  Alcotest.(check int) "i32 sim bytes" 4 (Dtype.sim_bytes Dtype.I32);
  Alcotest.(check int) "ternary packs 2 bits" 2 (Dtype.packed_bits Dtype.Ternary)

let test_create_and_index () =
  let t = Tensor.create Dtype.I8 [| 2; 3; 4 |] in
  Alcotest.(check int) "numel" 24 (Tensor.numel t);
  Alcotest.(check int) "rank" 3 (Tensor.rank t);
  Tensor.set t [| 1; 2; 3 |] (-5);
  Alcotest.(check int) "roundtrip" (-5) (Tensor.get t [| 1; 2; 3 |]);
  (* Row-major: [1;2;3] = 1*12 + 2*4 + 3 = 23. *)
  Alcotest.(check int) "row-major flat" (-5) (Tensor.get_flat t 23)

let test_bounds_checked () =
  let t = Tensor.create Dtype.I8 [| 2; 2 |] in
  Alcotest.check_raises "oob index" (Invalid_argument "Tensor: index out of bounds")
    (fun () -> ignore (Tensor.get t [| 0; 2 |]));
  Alcotest.check_raises "rank mismatch" (Invalid_argument "Tensor: index rank mismatch")
    (fun () -> ignore (Tensor.get t [| 0 |]));
  Alcotest.check_raises "range violation"
    (Invalid_argument "Tensor: value 300 out of range for i8") (fun () ->
      Tensor.set t [| 0; 0 |] 300)

let test_of_array_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Tensor.of_array: data length does not match shape") (fun () ->
      ignore (Tensor.of_array Dtype.I8 [| 2; 2 |] [| 1; 2; 3 |]));
  Alcotest.check_raises "range check"
    (Invalid_argument "Tensor: value 999 out of range for i8") (fun () ->
      ignore (Tensor.of_array Dtype.I8 [| 2 |] [| 1; 999 |]))

let test_nonpositive_dims_rejected () =
  Alcotest.check_raises "zero dim" (Invalid_argument "Tensor: dimensions must be positive")
    (fun () -> ignore (Tensor.create Dtype.I8 [| 2; 0 |]))

let test_scalar () =
  let s = Tensor.scalar Dtype.I32 12345 in
  Alcotest.(check int) "rank 0" 0 (Tensor.rank s);
  Alcotest.(check int) "numel 1" 1 (Tensor.numel s);
  Alcotest.(check int) "value" 12345 (Tensor.get s [||])

let test_reshape () =
  let t = Tensor.of_array Dtype.I8 [| 2; 3 |] [| 1; 2; 3; 4; 5; 6 |] in
  let r = Tensor.reshape t [| 3; 2 |] in
  Alcotest.(check int) "data preserved" 4 (Tensor.get r [| 1; 1 |]);
  Alcotest.check_raises "bad reshape"
    (Invalid_argument "Tensor.reshape: element count mismatch") (fun () ->
      ignore (Tensor.reshape t [| 5 |]))

let test_reshape_shares_storage () =
  let t = Tensor.create Dtype.I8 [| 4 |] in
  let r = Tensor.reshape t [| 2; 2 |] in
  Tensor.set t [| 0 |] 9;
  Alcotest.(check int) "view sees write" 9 (Tensor.get r [| 0; 0 |])

let test_cast_saturates () =
  let t = Tensor.of_array Dtype.I32 [| 3 |] [| -500; 12; 500 |] in
  let c = Tensor.cast Dtype.I8 t in
  Alcotest.(check (list int)) "saturated" [ -128; 12; 127 ]
    (Array.to_list (Tensor.blit_data c))

let test_fill_and_map () =
  let t = Tensor.create Dtype.I8 [| 3 |] in
  Tensor.fill t 7;
  let m = Tensor.map (fun v -> v * 2) t in
  Alcotest.(check (list int)) "mapped" [ 14; 14; 14 ] (Array.to_list (Tensor.blit_data m))

let test_map2_shape_mismatch () =
  let a = Tensor.create Dtype.I8 [| 2 |] and b = Tensor.create Dtype.I8 [| 3 |] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Tensor.map2: shape mismatch")
    (fun () -> ignore (Tensor.map2 Dtype.I32 ( + ) a b))

let test_packed_bytes () =
  let w8 = Tensor.create Dtype.I8 [| 10; 10 |] in
  Alcotest.(check int) "i8 1B/elt" 100 (Tensor.packed_bytes w8);
  let wt = Tensor.create Dtype.Ternary [| 10; 10 |] in
  (* 100 elements * 2 bits = 200 bits = 25 bytes. *)
  Alcotest.(check int) "ternary packs" 25 (Tensor.packed_bytes wt);
  let w3 = Tensor.create Dtype.Ternary [| 3 |] in
  Alcotest.(check int) "rounds up" 1 (Tensor.packed_bytes w3)

let test_equal () =
  let a = Tensor.of_array Dtype.I8 [| 2 |] [| 1; 2 |] in
  let b = Tensor.of_array Dtype.I8 [| 2 |] [| 1; 2 |] in
  let c = Tensor.of_array Dtype.I8 [| 2 |] [| 1; 3 |] in
  Alcotest.(check bool) "equal" true (Tensor.equal a b);
  Alcotest.(check bool) "not equal" false (Tensor.equal a c);
  let d = Tensor.of_array Dtype.I32 [| 2 |] [| 1; 2 |] in
  Alcotest.(check bool) "dtype matters" false (Tensor.equal a d)

let test_max_abs_diff () =
  let a = Tensor.of_array Dtype.I32 [| 3 |] [| 0; 10; -5 |] in
  let b = Tensor.of_array Dtype.I32 [| 3 |] [| 1; 4; -5 |] in
  Alcotest.(check int) "diff" 6 (Tensor.max_abs_diff a b)

(* Flat accessors are the execution plan's hot path: bounds stay checked
   (OCaml array semantics) and set_flat still range-checks the value. *)
let test_flat_bounds () =
  let t = Tensor.create Dtype.I8 [| 2; 3 |] in
  let expect_oob name f =
    match f () with
    | _ -> Alcotest.failf "%s out of bounds accepted" name
    | exception Invalid_argument _ -> ()
  in
  expect_oob "get_flat past end" (fun () -> Tensor.get_flat t 6);
  expect_oob "get_flat negative" (fun () -> Tensor.get_flat t (-1));
  expect_oob "set_flat past end" (fun () -> Tensor.set_flat t 6 0);
  expect_oob "set_flat negative" (fun () -> Tensor.set_flat t (-1) 0);
  Alcotest.check_raises "set_flat range-checks the value"
    (Invalid_argument "Tensor: value 300 out of range for i8") (fun () ->
      Tensor.set_flat t 0 300);
  Tensor.set_flat t 5 (-7);
  Alcotest.(check int) "last element round-trips" (-7) (Tensor.get_flat t 5)

(* Every dtype round-trips its extremes through the flat accessors and
   through Mem's bulk flat codecs (the plan's decode/encode primitives),
   which must agree with the per-tensor codec. *)
let test_dtype_flat_roundtrips () =
  List.iter
    (fun dtype ->
      let name = Dtype.to_string dtype in
      let lo = Dtype.min_value dtype and hi = Dtype.max_value dtype in
      let t = Tensor.create dtype [| 4 |] in
      List.iteri
        (fun i v ->
          Tensor.set_flat t i v;
          Alcotest.(check int) (name ^ " flat round-trip") v (Tensor.get_flat t i))
        [ lo; hi; 0; Dtype.clamp dtype 1 ];
      (* Mem codecs: write_tensor / read_flat_into and write_flat_from /
         read_tensor are inverses, at a non-zero offset. *)
      let src = Tensor.random (Util.Rng.create 17) dtype [| 3; 5 |] in
      let mem = Sim.Mem.create "scratch" 256 in
      Sim.Mem.write_tensor mem 32 src;
      let dst = Array.make (Tensor.numel src + 2) 0 in
      Sim.Mem.read_flat_into mem dtype 32 dst ~pos:2 ~len:(Tensor.numel src);
      Array.iteri
        (fun i v ->
          Alcotest.(check int)
            (Printf.sprintf "%s bulk decode [%d]" name i)
            v
            dst.(i + 2))
        (Tensor.blit_data src);
      let mem2 = Sim.Mem.create "scratch2" 256 in
      Sim.Mem.write_flat_from mem2 dtype 32 dst ~pos:2 ~len:(Tensor.numel src);
      Alcotest.(check bool) (name ^ " bulk encode") true
        (Tensor.equal src (Sim.Mem.read_tensor mem2 32 dtype (Tensor.shape src))))
    [ Dtype.I8; Dtype.U7; Dtype.I16; Dtype.I32; Dtype.Ternary ]

let test_fill_reset_for_reuse () =
  let t = Tensor.create Dtype.I16 [| 2; 2 |] in
  Tensor.fill t (-123);
  Alcotest.(check (list int)) "filled" [ -123; -123; -123; -123 ]
    (Array.to_list (Tensor.blit_data t));
  Tensor.reset t;
  Alcotest.(check bool) "reset = fresh" true
    (Tensor.equal t (Tensor.create Dtype.I16 [| 2; 2 |]));
  Alcotest.check_raises "fill range-checks"
    (Invalid_argument "Tensor: value 200 out of range for i8") (fun () ->
      Tensor.fill (Tensor.create Dtype.I8 [| 1 |]) 200)

(* The arena-reuse contract: a scratch tensor that lived through an
   arbitrary previous request and was reset is indistinguishable from a
   freshly created one after the same writes land in it. *)
let prop_reused_scratch_equals_fresh =
  Helpers.qtest "arena-reused tensor = fresh tensor"
    QCheck.(pair (Helpers.arbitrary_chw Dtype.I8) int)
    (fun (payload, seed) ->
      let garbage =
        Tensor.random (Util.Rng.create seed) Dtype.I8 (Tensor.shape payload)
      in
      let reused = Tensor.create Dtype.I8 (Tensor.shape payload) in
      (* a previous request's leftovers... *)
      Array.iteri (fun i v -> Tensor.set_flat reused i v)
        (Tensor.blit_data garbage);
      (* ...erased by the arena reset... *)
      Tensor.reset reused;
      Tensor.equal reused (Tensor.create Dtype.I8 (Tensor.shape payload))
      && begin
           (* ...and the next request's writes land identically. *)
           let fresh = Tensor.create Dtype.I8 (Tensor.shape payload) in
           Array.iteri (fun i v -> Tensor.set_flat reused i v)
             (Tensor.blit_data payload);
           Array.iteri (fun i v -> Tensor.set_flat fresh i v)
             (Tensor.blit_data payload);
           Tensor.equal reused fresh && Tensor.equal reused payload
         end)

let prop_random_in_range dtype =
  Helpers.qtest
    (Printf.sprintf "random %s in range" (Dtype.to_string dtype))
    QCheck.int
    (fun seed ->
      let t = Tensor.random (Util.Rng.create seed) dtype [| 4; 4 |] in
      Tensor.fold (fun ok v -> ok && Dtype.in_range dtype v) true t)

let prop_reshape_roundtrip =
  Helpers.qtest "reshape roundtrip preserves payload" (Helpers.arbitrary_chw Dtype.I8)
    (fun t ->
      let flat = Tensor.reshape t [| Tensor.numel t |] in
      let back = Tensor.reshape flat (Tensor.shape t) in
      Tensor.equal t back)

let prop_cast_identity_when_in_range =
  Helpers.qtest "i8 -> i32 -> i8 identity" (Helpers.arbitrary_chw Dtype.I8)
    (fun t -> Tensor.equal t (Tensor.cast Dtype.I8 (Tensor.cast Dtype.I32 t)))

let suites =
  [ ( "tensor",
      [ Alcotest.test_case "dtype ranges" `Quick test_dtype_ranges;
        Alcotest.test_case "dtype clamp" `Quick test_dtype_clamp;
        Alcotest.test_case "dtype sizes" `Quick test_dtype_sizes;
        Alcotest.test_case "create/index" `Quick test_create_and_index;
        Alcotest.test_case "bounds checked" `Quick test_bounds_checked;
        Alcotest.test_case "of_array validation" `Quick test_of_array_validation;
        Alcotest.test_case "nonpositive dims" `Quick test_nonpositive_dims_rejected;
        Alcotest.test_case "scalar" `Quick test_scalar;
        Alcotest.test_case "reshape" `Quick test_reshape;
        Alcotest.test_case "reshape shares storage" `Quick test_reshape_shares_storage;
        Alcotest.test_case "cast saturates" `Quick test_cast_saturates;
        Alcotest.test_case "fill/map" `Quick test_fill_and_map;
        Alcotest.test_case "map2 mismatch" `Quick test_map2_shape_mismatch;
        Alcotest.test_case "packed bytes" `Quick test_packed_bytes;
        Alcotest.test_case "equal" `Quick test_equal;
        Alcotest.test_case "max_abs_diff" `Quick test_max_abs_diff;
        Alcotest.test_case "flat accessor bounds" `Quick test_flat_bounds;
        Alcotest.test_case "dtype flat round-trips" `Quick
          test_dtype_flat_roundtrips;
        Alcotest.test_case "fill/reset for reuse" `Quick test_fill_reset_for_reuse;
        prop_reused_scratch_equals_fresh;
        prop_random_in_range Dtype.I8;
        prop_random_in_range Dtype.Ternary;
        prop_random_in_range Dtype.U7;
        prop_reshape_roundtrip;
        prop_cast_identity_when_in_range;
      ] )
  ]
