(* Tests for the lib/trace subsystem: span nesting, the Chrome
   trace-event exporter, agreement between the simulated timeline and the
   counters, and the null sink's zero-impact guarantee. *)

let resnet_graph () =
  (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8

let traced_run () =
  let g = resnet_graph () in
  let trace = Trace.create () in
  let artifact =
    Result.get_ok
      (Htvm.Compile.compile ~trace
         (Htvm.Compile.default_config Arch.Diana.digital_only)
         g)
  in
  let out, report =
    Htvm.Compile.run ~trace artifact ~inputs:(Models.Zoo.random_input g)
  in
  (trace, artifact, out, report)

(* --- (a) span nesting ---------------------------------------------------- *)

let test_span_nesting () =
  (* Explicit nested/sequential spans... *)
  let t = Trace.create () in
  let trace = Some t in
  Trace.span trace "outer" (fun () ->
      Trace.span trace "inner1" (fun () -> ());
      Trace.span trace "inner2" (fun () ->
          Trace.span trace "leaf" (fun () -> ())));
  Trace.span trace "after" (fun () -> ());
  Alcotest.(check bool) "explicit spans nest" true (Trace.well_nested t);
  Alcotest.(check int) "all spans recorded" 5 (List.length (Trace.events t));
  (* ...a span closes even when its body raises... *)
  (try Trace.span trace "raises" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "raising span recorded" 6 (List.length (Trace.events t));
  Alcotest.(check bool) "still nested" true (Trace.well_nested t);
  (* ...and a full compile + run trace is well-formed on every track. *)
  let trace, _, _, _ = traced_run () in
  Alcotest.(check bool) "compile+run trace nests" true (Trace.well_nested trace);
  Alcotest.(check bool) "has compiler track" true
    (List.mem "compiler" (Trace.tracks trace));
  Alcotest.(check bool) "has steps track" true
    (List.mem "steps" (Trace.tracks trace))

(* --- (b) Chrome JSON export ---------------------------------------------- *)

(* A minimal JSON reader — just enough to check the exporter emits a
   syntactically valid document without external dependencies. *)
module Json_reader = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  exception Bad of string

  let parse (s : string) =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      then (advance (); skip_ws ())
    in
    let expect c =
      if peek () <> c then raise (Bad (Printf.sprintf "expected %c at %d" c !pos));
      advance ()
    in
    let literal word v =
      String.iter (fun c -> expect c) word;
      v
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance (); Buffer.contents buf
        | '\\' ->
            advance ();
            (match peek () with
            | 'u' ->
                advance ();
                if !pos + 4 > n then raise (Bad "bad \\u escape");
                let hex = String.sub s !pos 4 in
                String.iter
                  (fun c ->
                    match c with
                    | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                    | _ -> raise (Bad "bad hex digit"))
                  hex;
                pos := !pos + 4;
                Buffer.add_char buf '?'
            | c -> advance (); Buffer.add_char buf c);
            go ()
        | c when Char.code c < 0x20 -> raise (Bad "raw control char in string")
        | c -> advance (); Buffer.add_char buf c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do advance () done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> raise (Bad ("bad number at " ^ string_of_int start))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (advance (); Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); members ((k, v) :: acc)
              | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
              | _ -> raise (Bad "expected , or } in object")
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (advance (); Arr [])
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); elements (v :: acc)
              | ']' -> advance (); Arr (List.rev (v :: acc))
              | _ -> raise (Bad "expected , or ] in array")
            in
            elements []
      | '"' -> Str (parse_string ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> parse_number ()
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise (Bad "trailing garbage");
    v
end

let test_chrome_export () =
  let trace, _, _, _ = traced_run () in
  let json = Trace.to_chrome_json trace in
  let doc =
    try Json_reader.parse json
    with Json_reader.Bad e -> Alcotest.failf "exporter emitted invalid JSON: %s" e
  in
  let events =
    match doc with
    | Json_reader.Obj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Json_reader.Arr evs) -> evs
        | _ -> Alcotest.fail "no traceEvents array")
    | _ -> Alcotest.fail "top level is not an object"
  in
  Alcotest.(check bool) "has events" true (List.length events > 0);
  (* Non-metadata events carry monotonically non-decreasing timestamps. *)
  let ts =
    List.filter_map
      (fun ev ->
        match ev with
        | Json_reader.Obj fields -> (
            match (List.assoc_opt "ph" fields, List.assoc_opt "ts" fields) with
            | Some (Json_reader.Str "M"), _ -> None
            | _, Some (Json_reader.Num t) -> Some t
            | _ -> Alcotest.fail "event without ts")
        | _ -> Alcotest.fail "event is not an object")
      events
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "timestamps monotone" true (monotone ts);
  (* Every track referenced by an event is declared by a process_name
     metadata record. *)
  let pids_of pred =
    List.filter_map
      (fun ev ->
        match ev with
        | Json_reader.Obj fields when pred fields -> (
            match List.assoc_opt "pid" fields with
            | Some (Json_reader.Num p) -> Some p
            | _ -> None)
        | _ -> None)
      events
  in
  let is_meta fields =
    List.assoc_opt "ph" fields = Some (Json_reader.Str "M")
  in
  let declared = pids_of is_meta in
  Alcotest.(check bool) "all pids declared" true
    (List.for_all (fun p -> List.mem p declared) (pids_of (fun f -> not (is_meta f))))

(* --- (c) trace agrees with Machine.report -------------------------------- *)

let test_step_totals_match_report () =
  let trace, _, _, report = traced_run () in
  let steps =
    List.filter
      (fun (e : Trace.event) -> e.Trace.ev_track = "steps" && e.Trace.ev_kind = Trace.Span)
      (Trace.events trace)
  in
  Alcotest.(check int) "one interval per step"
    (List.length report.Sim.Machine.per_step)
    (List.length steps);
  List.iter2
    (fun (name, (c : Sim.Counters.t)) (e : Trace.event) ->
      Alcotest.(check string) "step name" name e.Trace.ev_name;
      Alcotest.(check int) ("wall of " ^ name) c.Sim.Counters.wall e.Trace.ev_dur)
    report.Sim.Machine.per_step steps;
  let summed = List.fold_left (fun acc (e : Trace.event) -> acc + e.Trace.ev_dur) 0 steps in
  Alcotest.(check int) "steps track sums to wall total"
    report.Sim.Machine.totals.Sim.Counters.wall summed;
  (* Engine + DMA + host intervals account for every counted cycle. *)
  let track_sum tr =
    List.fold_left
      (fun acc (e : Trace.event) ->
        if e.Trace.ev_track = tr && e.Trace.ev_kind = Trace.Span then acc + e.Trace.ev_dur
        else acc)
      0 (Trace.events trace)
  in
  let t = report.Sim.Machine.totals in
  Alcotest.(check int) "dma track"
    (t.Sim.Counters.dma_in + t.Sim.Counters.dma_out)
    (track_sum "dma");
  Alcotest.(check int) "engine track" (Sim.Counters.peak t) (track_sum "diana_digital");
  Alcotest.(check int) "host track"
    (t.Sim.Counters.host_overhead + t.Sim.Counters.cpu_compute)
    (track_sum "host")

(* --- (d) the null sink changes nothing ----------------------------------- *)

let test_null_sink_bit_identical () =
  let g = resnet_graph () in
  let cfg = Htvm.Compile.default_config Arch.Diana.digital_only in
  let plain = Result.get_ok (Htvm.Compile.compile cfg g) in
  let trace = Trace.create () in
  let traced = Result.get_ok (Htvm.Compile.compile ~trace cfg g) in
  let inputs = Models.Zoo.random_input g in
  let out_plain, rep_plain = Htvm.Compile.run plain ~inputs in
  let out_traced, rep_traced = Htvm.Compile.run ~trace traced ~inputs in
  let out_null, rep_null = Htvm.Compile.run ?trace:None plain ~inputs in
  Helpers.check_tensor "traced output identical" out_plain out_traced;
  Helpers.check_tensor "null-sink output identical" out_plain out_null;
  let show c = Format.asprintf "%a" Sim.Counters.pp c in
  Alcotest.(check string) "null-sink counters identical"
    (show rep_plain.Sim.Machine.totals)
    (show rep_null.Sim.Machine.totals);
  Alcotest.(check string) "traced counters identical"
    (show rep_plain.Sim.Machine.totals)
    (show rep_traced.Sim.Machine.totals)

let suites =
  [ ( "trace",
      [ Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "chrome export" `Quick test_chrome_export;
        Alcotest.test_case "step totals match report" `Quick
          test_step_totals_match_report;
        Alcotest.test_case "null sink bit-identical" `Quick
          test_null_sink_bit_identical;
      ] )
  ]
