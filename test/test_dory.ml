(* Tests for lib/dory: the tiling solver, schedules, the L2 planner and
   the C emitter. Layer fixtures come from Test_arch. *)

module Tile = Arch.Tile
module T = Tiling_fixtures

let digital = Arch.Diana.digital
let analog = Arch.Diana.analog
let l1 = Util.Ints.kib 256

let cfg ?(budget = l1) ?(pe = true) ?(dma = true) ?(db = true) () =
  {
    Dory.Tiling.alpha = 1.0;
    use_pe_heuristics = pe;
    use_dma_heuristic = dma;
    double_buffer = db;
    l1_budget = budget;
  }

let solve_exn c accel layer =
  match Dory.Tiling.solve c accel layer with
  | Ok s -> s
  | Error e ->
      Alcotest.failf "expected a solution: %s" (Dory.Tiling.infeasible_to_string e)

let test_untiled_when_l1_large () =
  let layer = T.conv_layer ~c:16 ~k:16 ~hw:16 () in
  let s = solve_exn (cfg ()) digital layer in
  Alcotest.(check bool) "fits whole" false s.Dory.Tiling.tiled;
  Alcotest.(check int) "one tile" 1 s.Dory.Tiling.tile_count

let test_tiled_when_l1_small () =
  let layer = T.conv_layer ~c:16 ~k:32 ~hw:32 () in
  let budget = Util.Ints.kib 16 in
  let c = cfg ~budget () in
  let s = solve_exn c digital layer in
  Alcotest.(check bool) "tiled" true s.Dory.Tiling.tiled;
  Alcotest.(check bool) "respects budget" true
    (Dory.Tiling.l1_bytes_needed c layer s.Dory.Tiling.tile <= budget)

let test_no_feasible_tile () =
  (* Even a 1x1x1-output tile of this dense layer needs the whole input
     row in L1; make the budget absurdly small. *)
  let layer = T.dense_layer ~c:4096 ~k:8 () in
  match Dory.Tiling.solve (cfg ~budget:512 ()) digital layer with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected no feasible tile"

let test_heuristics_prefer_aligned_tiles () =
  (* Constrained budget on a 32x32 layer: with PE heuristics the solver
     should pick 16-aligned tiles, making the array at least as busy. *)
  let layer = T.conv_layer ~c:16 ~k:32 ~hw:32 () in
  let budget = Util.Ints.kib 12 in
  let s_on = solve_exn (cfg ~budget ()) digital layer in
  let s_off = solve_exn (cfg ~budget ~pe:false ~dma:false ()) digital layer in
  let busy (s : Dory.Tiling.solution) =
    digital.Arch.Accel.compute_cycles layer s.Dory.Tiling.tile
    * Tile.count layer s.Dory.Tiling.tile
  in
  Alcotest.(check bool) "heuristics never slower" true (busy s_on <= busy s_off)

let test_dense_weight_memory_tiling () =
  (* 128x640 i8 weights (81.9 kB) exceed the 64 kB weight SRAM: the tiler
     must split output neurons. *)
  let layer = T.dense_layer ~c:640 ~k:128 () in
  let s = solve_exn (cfg ()) digital layer in
  Alcotest.(check bool) "k tiled" true (s.Dory.Tiling.tile.Tile.k < 128);
  Alcotest.(check bool) "weight slice fits" true
    (Tile.bytes_weights layer s.Dory.Tiling.tile <= Util.Ints.kib 64)

let test_analog_k_capped_at_macro_columns () =
  let layer = T.conv_layer ~c:16 ~k:600 ~hw:8 ~wdtype:Tensor.Dtype.Ternary () in
  let s = solve_exn (cfg ()) analog layer in
  Alcotest.(check bool) "k <= 512" true (s.Dory.Tiling.tile.Tile.k <= 512)

let test_solver_keeps_input_channels_whole () =
  let layer = T.conv_layer ~c:48 ~k:16 ~hw:16 () in
  let s = solve_exn (cfg ~budget:(Util.Ints.kib 24) ()) digital layer in
  Alcotest.(check int) "c untiled" 48 s.Dory.Tiling.tile.Tile.c

let test_solver_matches_brute_force () =
  (* Exhaustively enumerate every tile of a small layer and check the
     solver's pick attains the maximum objective (validating the
     tallest-feasible-oy monotonicity argument in lib/dory/tiling.ml). *)
  let layer = T.conv_layer ~c:8 ~k:6 ~hw:7 ~f:3 ~pad:1 () in
  (* Budget below the full tile's 942 B working set, so the search runs
     (a feasible full tile always wins outright by design). *)
  let budget = 700 in
  let c = cfg ~budget () in
  let full = Tile.full layer in
  let best = ref neg_infinity in
  for k = 1 to full.Tile.k do
    for oy = 1 to full.Tile.oy do
      for ox = 1 to full.Tile.ox do
        let tile = Tile.for_layer layer ~c:8 ~k ~oy ~ox in
        if Dory.Tiling.feasible c digital layer tile then
          best := Float.max !best (Dory.Tiling.objective c digital layer tile)
      done
    done
  done;
  let s = solve_exn c digital layer in
  Alcotest.(check bool) "tiled regime" true s.Dory.Tiling.tiled;
  Alcotest.(check (float 1e-9)) "solver attains the brute-force optimum" !best
    s.Dory.Tiling.objective;
  (* And in the untiled regime it short-circuits to the full tile. *)
  let c_big = cfg ~budget:(Util.Ints.kib 64) () in
  let s_big = solve_exn c_big digital layer in
  Alcotest.(check bool) "full tile when it fits" true
    (Tile.is_full layer s_big.Dory.Tiling.tile)

(* --- schedules --- *)

let build_schedule ?(budget = l1) layer accel =
  let c = cfg ~budget () in
  let s = solve_exn c accel layer in
  Dory.Schedule.build layer ~accel_name:accel.Arch.Accel.accel_name
    ~tile:s.Dory.Tiling.tile ~double_buffer:true

let test_schedule_valid_untiled () =
  let layer = T.conv_layer ~c:16 ~k:16 ~hw:16 () in
  let s = build_schedule layer digital in
  Alcotest.(check int) "single instance" 1 (Dory.Schedule.tile_count s);
  match Dory.Schedule.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid schedule: %s" e

let test_schedule_valid_tiled () =
  let layer = T.conv_layer ~c:16 ~k:32 ~hw:32 () in
  let s = build_schedule ~budget:(Util.Ints.kib 8) layer digital in
  Alcotest.(check bool) "multiple tiles" true (Dory.Schedule.tile_count s > 1);
  match Dory.Schedule.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid schedule: %s" e

let test_schedule_padding_at_borders () =
  let layer = T.conv_layer ~c:4 ~k:4 ~hw:8 ~f:3 ~pad:1 () in
  let tile = Tile.for_layer layer ~c:4 ~k:4 ~oy:4 ~ox:8 in
  let s = Dory.Schedule.build layer ~accel_name:"d" ~tile ~double_buffer:false in
  match s.Dory.Schedule.instances with
  | [ top; bottom ] ->
      Alcotest.(check int) "top tile pads above" 1 top.Dory.Schedule.pad_top;
      Alcotest.(check int) "top tile reads rows 0.." 0 top.Dory.Schedule.iy0;
      Alcotest.(check int) "no bottom pad on top tile" 0 top.Dory.Schedule.pad_bottom;
      Alcotest.(check int) "bottom tile pads below" 1 bottom.Dory.Schedule.pad_bottom;
      (* Bottom tile outputs rows 4..7 -> input rows 7..10 clipped at 7. *)
      Alcotest.(check int) "bottom tile origin" 3 bottom.Dory.Schedule.iy0;
      Alcotest.(check int) "halo rows transferred" 5 bottom.Dory.Schedule.dims.Tile.iy
  | l -> Alcotest.failf "expected 2 instances, got %d" (List.length l)

let test_schedule_weight_reload_per_k_block () =
  let layer = T.conv_layer ~c:16 ~k:32 ~hw:16 () in
  let tile = Tile.for_layer layer ~c:16 ~k:16 ~oy:8 ~ox:16 in
  let s = Dory.Schedule.build layer ~accel_name:"d" ~tile ~double_buffer:true in
  let reloads =
    List.length (List.filter (fun i -> i.Dory.Schedule.load_weights) s.instances)
  in
  Alcotest.(check int) "4 instances" 4 (Dory.Schedule.tile_count s);
  Alcotest.(check int) "one reload per k block" 2 reloads

let test_schedule_dense () =
  let layer = T.dense_layer ~c:640 ~k:128 () in
  let tile = Tile.for_layer layer ~c:640 ~k:50 ~oy:1 ~ox:1 in
  let s = Dory.Schedule.build layer ~accel_name:"d" ~tile ~double_buffer:true in
  Alcotest.(check int) "ceil(128/50)" 3 (Dory.Schedule.tile_count s);
  (match Dory.Schedule.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" e);
  let last = List.nth s.instances 2 in
  Alcotest.(check int) "remainder tile" 28 last.Dory.Schedule.dims.Tile.k

let test_schedule_add () =
  let layer = T.add_layer ~c:8 ~hw:10 () in
  let tile = Tile.for_layer layer ~c:8 ~k:8 ~oy:4 ~ox:10 in
  let s = Dory.Schedule.build layer ~accel_name:"a" ~tile ~double_buffer:false in
  Alcotest.(check int) "ceil(10/4)" 3 (Dory.Schedule.tile_count s);
  match Dory.Schedule.validate s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid: %s" e

let prop_schedule_always_valid =
  Helpers.qtest ~count:150 "random tilings give valid schedules"
    QCheck.(
      quad (int_range 1 16) (int_range 1 12) (pair (int_range 1 12) (int_range 1 12))
        (pair (int_range 1 2) (int_range 0 2)))
    (fun (k, kt, (oyt, oxt), (stride, pad)) ->
      let layer = T.conv_layer ~c:8 ~k ~hw:12 ~f:3 ~stride ~pad () in
      let full = Tile.full layer in
      let tile =
        Tile.for_layer layer ~c:8 ~k:(min kt full.Tile.k) ~oy:(min oyt full.Tile.oy)
          ~ox:(min oxt full.Tile.ox)
      in
      let s = Dory.Schedule.build layer ~accel_name:"d" ~tile ~double_buffer:true in
      Dory.Schedule.validate s = Ok ())

(* --- memory planner --- *)

let req id bytes birth death = { Dory.Memplan.buffer_id = id; bytes; birth; death }

let test_memplan_reuse_disjoint_lifetimes () =
  let r =
    Dory.Memplan.plan Dory.Memplan.Reuse ~capacity:1000 ~align:4
      [ req 0 600 0 1; req 1 600 2 3 ]
  in
  match r with
  | Error e -> Alcotest.failf "plan failed: %s" (Dory.Memplan.error_to_string e)
  | Ok plan ->
      let p0 = Dory.Memplan.find plan 0 and p1 = Dory.Memplan.find plan 1 in
      Alcotest.(check int) "same slot" p0.Dory.Memplan.offset p1.Dory.Memplan.offset;
      Alcotest.(check int) "peak is one buffer" 600 plan.Dory.Memplan.peak_bytes

let test_memplan_no_reuse_stacks () =
  let r =
    Dory.Memplan.plan Dory.Memplan.No_reuse ~capacity:2000 ~align:4
      [ req 0 600 0 1; req 1 600 2 3 ]
  in
  match r with
  | Error e -> Alcotest.failf "plan failed: %s" (Dory.Memplan.error_to_string e)
  | Ok plan -> Alcotest.(check int) "stacked" 1200 plan.Dory.Memplan.peak_bytes

let test_memplan_oom () =
  match
    Dory.Memplan.plan Dory.Memplan.Reuse ~capacity:1000 ~align:4
      [ req 0 600 0 2; req 1 600 1 3 ]
  with
  | Error
      (Dory.Memplan.Out_of_memory { oom_buffer_id; oom_bytes; oom_offset; oom_capacity })
    ->
      (* The typed diagnosis names the second buffer: it overlaps the
         first in time, so it must stack above it and overflow. *)
      Alcotest.(check int) "failing buffer" 1 oom_buffer_id;
      Alcotest.(check int) "its size" 600 oom_bytes;
      Alcotest.(check int) "capacity" 1000 oom_capacity;
      Alcotest.(check bool) "allocation exceeds capacity" true
        (oom_offset + oom_bytes > oom_capacity)
  | Error e -> Alcotest.failf "expected OoM, got: %s" (Dory.Memplan.error_to_string e)
  | Ok _ -> Alcotest.fail "expected out of memory"

let test_memplan_malformed () =
  (match
     Dory.Memplan.plan Dory.Memplan.Reuse ~capacity:1000 ~align:4 [ req 3 (-1) 0 1 ]
   with
  | Error (Dory.Memplan.Malformed_request { bad_buffer_id }) ->
      Alcotest.(check int) "negative size rejected" 3 bad_buffer_id
  | _ -> Alcotest.fail "expected Malformed_request for negative size");
  match
    Dory.Memplan.plan Dory.Memplan.No_reuse ~capacity:1000 ~align:4 [ req 5 16 4 2 ]
  with
  | Error (Dory.Memplan.Malformed_request { bad_buffer_id }) ->
      Alcotest.(check int) "death before birth rejected" 5 bad_buffer_id
  | _ -> Alcotest.fail "expected Malformed_request for death < birth"

let test_memplan_alignment () =
  let r =
    Dory.Memplan.plan Dory.Memplan.Reuse ~capacity:100 ~align:8 [ req 0 3 0 1; req 1 3 0 1 ]
  in
  match r with
  | Error e -> Alcotest.failf "plan failed: %s" (Dory.Memplan.error_to_string e)
  | Ok plan ->
      let p1 = Dory.Memplan.find plan 1 in
      Alcotest.(check int) "aligned second buffer" 8 p1.Dory.Memplan.offset

let prop_memplan_no_overlap =
  Helpers.qtest ~count:200 "live buffers never overlap in space"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 15) (triple (int_range 1 400) (int_range 0 9) (int_range 0 9)))
    (fun specs ->
      let reqs =
        List.mapi
          (fun i (bytes, a, b) -> req i bytes (min a b) (max a b))
          specs
      in
      match Dory.Memplan.plan Dory.Memplan.Reuse ~capacity:1_000_000 ~align:4 reqs with
      | Error _ -> false
      | Ok plan ->
          List.for_all
            (fun r1 ->
              List.for_all
                (fun r2 ->
                  r1.Dory.Memplan.buffer_id >= r2.Dory.Memplan.buffer_id
                  || (not
                        (r1.Dory.Memplan.birth <= r2.Dory.Memplan.death
                        && r2.Dory.Memplan.birth <= r1.Dory.Memplan.death))
                  ||
                  let p1 = Dory.Memplan.find plan r1.Dory.Memplan.buffer_id in
                  let p2 = Dory.Memplan.find plan r2.Dory.Memplan.buffer_id in
                  p1.Dory.Memplan.offset + p1.Dory.Memplan.size <= p2.Dory.Memplan.offset
                  || p2.Dory.Memplan.offset + p2.Dory.Memplan.size <= p1.Dory.Memplan.offset)
                reqs)
            reqs)

(* The full planner invariant set, under both strategies: every placement
   is aligned and inside the arena, the peak is exactly the high-water
   mark, and no two time-overlapping buffers share bytes. *)
let prop_memplan_invariants =
  Helpers.qtest ~count:200 "placements aligned, in-arena, peak exact"
    QCheck.(
      pair bool
        (list_of_size (QCheck.Gen.int_range 1 15)
           (triple (int_range 0 400) (int_range 0 9) (int_range 0 9))))
    (fun (reuse, specs) ->
      let strategy = if reuse then Dory.Memplan.Reuse else Dory.Memplan.No_reuse in
      let align = 8 and capacity = 1_000_000 in
      let reqs =
        List.mapi (fun i (bytes, a, b) -> req i bytes (min a b) (max a b)) specs
      in
      match Dory.Memplan.plan strategy ~capacity ~align reqs with
      | Error _ -> false
      | Ok plan ->
          let tops =
            List.map
              (fun (p : Dory.Memplan.placement) ->
                p.Dory.Memplan.offset + p.Dory.Memplan.size)
              plan.Dory.Memplan.placements
          in
          List.for_all
            (fun (p : Dory.Memplan.placement) ->
              p.Dory.Memplan.offset mod align = 0
              && p.Dory.Memplan.offset >= 0
              && p.Dory.Memplan.offset + p.Dory.Memplan.size <= capacity)
            plan.Dory.Memplan.placements
          && plan.Dory.Memplan.peak_bytes = List.fold_left max 0 tops
          && List.length plan.Dory.Memplan.placements = List.length reqs)

(* --- emitter --- *)

(* --- Tiling_cache: signature sensitivity and collision behaviour --- *)

let test_cache_signature_keys () =
  let c = cfg () in
  let sg = Dory.Tiling_cache.signature in
  let base = T.conv_layer () in
  (* Same geometry, different weight/bias values: the solver never
     observes tensor contents, so the keys must collide by design. *)
  Alcotest.(check string) "contents never keyed"
    (sg c ~accel:"diana_digital" base)
    (sg c ~accel:"diana_digital" (T.conv_layer ~seed:99 ()));
  (* Every observable the solver can react to must change the key. *)
  let keys =
    [ sg c ~accel:"diana_digital" base;
      sg c ~accel:"diana_analog" base;
      sg { c with Dory.Tiling.l1_budget = c.Dory.Tiling.l1_budget / 2 }
        ~accel:"diana_digital" base;
      sg { c with Dory.Tiling.double_buffer = false } ~accel:"diana_digital" base;
      sg { c with Dory.Tiling.use_pe_heuristics = false } ~accel:"diana_digital" base;
      sg c ~accel:"diana_digital" (T.conv_layer ~k:16 ());
      sg c ~accel:"diana_digital" (T.conv_layer ~hw:16 ());
      sg c ~accel:"diana_digital" (T.conv_layer ~stride:2 ());
      sg c ~accel:"diana_digital" (T.conv_layer ~wdtype:Tensor.Dtype.Ternary ());
      sg c ~accel:"diana_digital" (T.dense_layer ());
      sg c ~accel:"diana_digital" (T.dw_layer ());
    ]
  in
  Alcotest.(check int) "all observables keyed"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_cache_collision_replays_outcome () =
  (* Two layers with colliding signatures share one cached outcome, and
     the replayed outcome — solution *and* search statistics — is exactly
     what a cold solve of the second layer would have produced. This is
     the property that keeps cached compilations bit-identical. *)
  let c = cfg ~budget:(Util.Ints.kib 16) () in
  let a = T.conv_layer () and b = T.conv_layer ~seed:99 () in
  let cache = Dory.Tiling_cache.create () in
  let key_a = Dory.Tiling_cache.signature c ~accel:"diana_digital" a in
  let key_b = Dory.Tiling_cache.signature c ~accel:"diana_digital" b in
  Alcotest.(check string) "signatures collide" key_a key_b;
  Alcotest.(check bool) "cold cache misses" true
    (Dory.Tiling_cache.find cache key_a = None);
  let outcome_a = Dory.Tiling.solve_stats c digital a in
  Dory.Tiling_cache.add cache key_a outcome_a;
  (match Dory.Tiling_cache.find cache key_b with
  | None -> Alcotest.fail "expected a cache hit on the colliding key"
  | Some cached ->
      let cold = Dory.Tiling.solve_stats c digital b in
      Alcotest.(check bool) "replayed outcome = cold solve" true (cached = cold));
  Alcotest.(check int) "one distinct signature" 1 (Dory.Tiling_cache.length cache);
  Dory.Tiling_cache.note cache ~hit:false;
  Dory.Tiling_cache.note cache ~hit:true;
  Dory.Tiling_cache.note cache ~hit:true;
  Alcotest.(check int) "hits" 2 (Dory.Tiling_cache.hits cache);
  Alcotest.(check int) "misses" 1 (Dory.Tiling_cache.misses cache);
  Dory.Tiling_cache.clear cache;
  Alcotest.(check int) "cleared" 0 (Dory.Tiling_cache.length cache);
  Alcotest.(check int) "counters reset" 0 (Dory.Tiling_cache.hits cache)

let test_cache_keeps_infeasible_outcomes () =
  (* Infeasibility is an outcome too: memoizing it avoids re-searching a
     budget no tile can meet, and the typed diagnosis survives the trip. *)
  let c = cfg ~budget:512 () in
  let layer = T.dense_layer ~c:4096 ~k:8 () in
  let cache = Dory.Tiling_cache.create () in
  let key = Dory.Tiling_cache.signature c ~accel:"diana_digital" layer in
  let outcome = Dory.Tiling.solve_stats c digital layer in
  (match outcome.Dory.Tiling.result with
  | Error inf ->
      Alcotest.(check int) "diagnosis carries the budget" 512
        inf.Dory.Tiling.inf_l1_budget
  | Ok _ -> Alcotest.fail "expected an infeasible outcome");
  Dory.Tiling_cache.add cache key outcome;
  match Dory.Tiling_cache.find cache key with
  | Some { Dory.Tiling.result = Error inf; _ } ->
      Alcotest.(check string) "accel name survives" "diana_digital"
        inf.Dory.Tiling.inf_accel
  | _ -> Alcotest.fail "expected the cached infeasible outcome"

let test_cache_signature_adversarial_names () =
  (* Regression: the signature used to be plain concatenation with
     '|'/';'/':' separators, so an accelerator name containing a
     separator could shift field boundaries and collide two distinct
     (config, accel, layer) triples. The length-prefixed encoding makes
     every adversarial name produce its own key. *)
  let c = cfg () in
  let sg = Dory.Tiling_cache.signature in
  let layer = T.conv_layer () in
  let names =
    [ "a"; "a|"; "|a"; "a|b"; "a;b"; "a:b"; "|"; ";"; ""; "a|b;c:d";
      "diana_digital"; "diana_digital|" ]
  in
  let keys = List.map (fun accel -> sg c ~accel layer) names in
  Alcotest.(check int) "adversarial accel names all keyed apart"
    (List.length keys)
    (List.length (List.sort_uniq compare keys));
  (* Cross-field injection: a name that textually contains the start of
     the config rendering still cannot impersonate a different config. *)
  let smuggled = sg c ~accel:"a|1.0;true" layer in
  List.iter
    (fun k ->
      Alcotest.(check bool) "no cross-field impersonation" false (k = smuggled))
    keys;
  (* The encoding is decodable, so the accel field survives verbatim. *)
  List.iter2
    (fun accel key ->
      match Util.Key.decode key with
      | Some (first :: _) -> Alcotest.(check string) "accel field" accel first
      | _ -> Alcotest.fail "signature is not a well-formed key encoding")
    names keys

let test_emit_layer_mentions_structure () =
  let layer = T.conv_layer ~c:16 ~k:32 ~hw:32 () in
  let s = build_schedule ~budget:(Util.Ints.kib 8) layer digital in
  let src = Dory.Emit.emit_layer ~index:3 s in
  List.iter
    (fun needle ->
      if not (Helpers.contains src needle) then Alcotest.failf "emitted C lacks %s" needle)
    [ "htvm_layer_3"; "dma_in"; "dma_out"; "diana_digital_conv2d"; "load_weights" ]

let test_emit_network () =
  let layer = T.conv_layer ~c:8 ~k:8 ~hw:8 () in
  let s = build_schedule layer digital in
  let src = Dory.Emit.emit_network [ (0, s); (1, s) ] in
  Alcotest.(check bool) "run function" true (Helpers.contains src "htvm_network_run");
  Alcotest.(check bool) "calls layer 1" true (Helpers.contains src "htvm_layer_1")

let suites =
  [ ( "dory",
      [ Alcotest.test_case "untiled when L1 large" `Quick test_untiled_when_l1_large;
        Alcotest.test_case "tiled when L1 small" `Quick test_tiled_when_l1_small;
        Alcotest.test_case "no feasible tile" `Quick test_no_feasible_tile;
        Alcotest.test_case "heuristics help" `Quick test_heuristics_prefer_aligned_tiles;
        Alcotest.test_case "dense weight tiling" `Quick test_dense_weight_memory_tiling;
        Alcotest.test_case "analog k cap" `Quick test_analog_k_capped_at_macro_columns;
        Alcotest.test_case "c kept whole" `Quick test_solver_keeps_input_channels_whole;
        Alcotest.test_case "solver vs brute force" `Quick test_solver_matches_brute_force;
        Alcotest.test_case "schedule untiled" `Quick test_schedule_valid_untiled;
        Alcotest.test_case "schedule tiled" `Quick test_schedule_valid_tiled;
        Alcotest.test_case "schedule border padding" `Quick test_schedule_padding_at_borders;
        Alcotest.test_case "weight reload per k" `Quick test_schedule_weight_reload_per_k_block;
        Alcotest.test_case "schedule dense" `Quick test_schedule_dense;
        Alcotest.test_case "schedule add" `Quick test_schedule_add;
        prop_schedule_always_valid;
        Alcotest.test_case "memplan reuse" `Quick test_memplan_reuse_disjoint_lifetimes;
        Alcotest.test_case "memplan no-reuse" `Quick test_memplan_no_reuse_stacks;
        Alcotest.test_case "memplan oom" `Quick test_memplan_oom;
        Alcotest.test_case "memplan malformed" `Quick test_memplan_malformed;
        Alcotest.test_case "memplan alignment" `Quick test_memplan_alignment;
        prop_memplan_no_overlap;
        prop_memplan_invariants;
        Alcotest.test_case "cache signature keys" `Quick test_cache_signature_keys;
        Alcotest.test_case "cache signature adversarial names" `Quick
          test_cache_signature_adversarial_names;
        Alcotest.test_case "cache collision replay" `Quick
          test_cache_collision_replays_outcome;
        Alcotest.test_case "cache keeps infeasible" `Quick
          test_cache_keeps_infeasible_outcomes;
        Alcotest.test_case "emit layer" `Quick test_emit_layer_mentions_structure;
        Alcotest.test_case "emit network" `Quick test_emit_network;
      ] )
  ]
