(* Tests for lib/sim: byte memories, and the key soundness property of the
   whole reproduction — executing a DORY schedule through simulated L1/L2
   memories is bit-identical to the reference layer semantics. *)

module Dtype = Tensor.Dtype
module L = Ir.Layer
module T = Tiling_fixtures

let kib = Util.Ints.kib

(* --- Mem --- *)

let test_mem_roundtrip_dtypes () =
  let m = Sim.Mem.create "m" 64 in
  List.iter
    (fun (dt, v) ->
      Sim.Mem.write_elt m dt 8 v;
      Alcotest.(check int) (Dtype.to_string dt) v (Sim.Mem.read_elt m dt 8))
    [ (Dtype.I8, -77); (Dtype.U7, 99); (Dtype.I16, -30000); (Dtype.I32, -2000000000);
      (Dtype.Ternary, -1) ]

let test_mem_little_endian () =
  let m = Sim.Mem.create "m" 8 in
  Sim.Mem.write_elt m Dtype.I32 0 0x0A0B0C0D;
  Alcotest.(check int) "low byte first" 0x0D (Sim.Mem.read_byte m 0);
  Alcotest.(check int) "high byte last" 0x0A (Sim.Mem.read_byte m 3)

let test_mem_fault () =
  let m = Sim.Mem.create "little" 16 in
  (try
     ignore (Sim.Mem.read_elt m Dtype.I32 14);
     Alcotest.fail "expected fault"
   with Sim.Mem.Fault msg ->
     Alcotest.(check bool) "names the memory" true (Helpers.contains msg "little"));
  try
    Sim.Mem.write_byte m (-1) 0;
    Alcotest.fail "expected fault"
  with Sim.Mem.Fault _ -> ()

let test_mem_range_check () =
  let m = Sim.Mem.create "m" 8 in
  try
    Sim.Mem.write_elt m Dtype.I8 0 300;
    Alcotest.fail "expected fault"
  with Sim.Mem.Fault _ -> ()

let test_mem_tensor_roundtrip () =
  let m = Sim.Mem.create "m" 1024 in
  let t = Tensor.random (Util.Rng.create 3) Dtype.I8 [| 4; 5; 3 |] in
  Sim.Mem.write_tensor m 100 t;
  Helpers.check_tensor "roundtrip" t (Sim.Mem.read_tensor m 100 Dtype.I8 [| 4; 5; 3 |]);
  let t32 = Tensor.random (Util.Rng.create 4) Dtype.I32 [| 7 |] in
  Sim.Mem.write_tensor m 200 t32;
  Helpers.check_tensor "i32 roundtrip" t32 (Sim.Mem.read_tensor m 200 Dtype.I32 [| 7 |])

let test_counters () =
  let a = Sim.Counters.create () and b = Sim.Counters.create () in
  a.Sim.Counters.accel_compute <- 10;
  a.Sim.Counters.weight_load <- 5;
  b.Sim.Counters.dma_in <- 3;
  Sim.Counters.add a b;
  Alcotest.(check int) "peak" 15 (Sim.Counters.peak a);
  Alcotest.(check int) "total" 18 (Sim.Counters.total_parts a)

(* --- Differential layer execution --- *)

(* Run one layer through the simulator: place buffers in L2, execute the
   schedule, read the result back. Returns (output, counters). *)
let run_layer ?(budget = kib 256) ?(db = true) ?(pe = true) accel (layer : L.t) inputs =
  let cfg =
    {
      Dory.Tiling.alpha = 1.0;
      use_pe_heuristics = pe;
      use_dma_heuristic = pe;
      double_buffer = db;
      l1_budget = budget;
    }
  in
  let sol =
    match Dory.Tiling.solve cfg accel layer with
    | Ok s -> s
    | Error e ->
        Alcotest.failf "tiling failed: %s" (Dory.Tiling.infeasible_to_string e)
  in
  let schedule =
    Dory.Schedule.build layer ~accel_name:accel.Arch.Accel.accel_name
      ~tile:sol.Dory.Tiling.tile ~double_buffer:db
  in
  let l2 = Sim.Mem.create "L2" (kib 512) in
  let l1 = Sim.Mem.create "L1" (kib 256) in
  Sim.Mem.fill l1 0x77;
  let numel shape = Array.fold_left ( * ) 1 shape in
  let in_bytes = numel layer.L.in_shape * Dtype.sim_bytes layer.L.in_dtype in
  let in_offsets, next =
    match inputs with
    | [ a ] ->
        Sim.Mem.write_tensor l2 0 a;
        ([ 0 ], in_bytes)
    | [ a; b ] ->
        Sim.Mem.write_tensor l2 0 a;
        Sim.Mem.write_tensor l2 in_bytes b;
        ([ 0; in_bytes ], 2 * in_bytes)
    | _ -> Alcotest.fail "run_layer: 1 or 2 inputs"
  in
  let out_offset = next in
  let out_bytes = numel layer.L.out_shape * Dtype.sim_bytes layer.L.out_dtype in
  let weights_offset, bias_offset =
    let woff = out_offset + out_bytes in
    match layer.L.weights with
    | None -> (-1, -1)
    | Some w ->
        Sim.Mem.write_tensor l2 woff w;
        let boff = woff + Tensor.sim_bytes w in
        (match layer.L.bias with
        | None -> ()
        | Some b -> Sim.Mem.write_tensor l2 boff b);
        (woff, if layer.L.bias = None then -1 else boff)
  in
  let buffers = { Sim.Exec_accel.in_offsets; out_offset; weights_offset; bias_offset } in
  let counters =
    Sim.Exec_accel.run ~platform:Arch.Diana.platform ~accel ~l2 ~l1 ~buffers schedule
  in
  let out =
    Sim.Mem.read_tensor l2 out_offset layer.L.out_dtype layer.L.out_shape
  in
  (out, counters, schedule)

let check_layer_differential ?(budget = kib 256) ?db accel layer inputs =
  let reference =
    match inputs with
    | [ a ] -> L.execute layer a
    | [ a; b ] -> L.execute layer ~second:b a
    | _ -> Alcotest.fail "bad inputs"
  in
  let out, _, schedule = run_layer ~budget ?db accel layer inputs in
  if not (Tensor.equal reference out) then
    Alcotest.failf "tiled execution differs for %s (%d tiles): max diff %d"
      (L.describe layer)
      (Dory.Schedule.tile_count schedule)
      (Tensor.max_abs_diff reference out)

let input_for (layer : L.t) seed = Tensor.random (Util.Rng.create seed) layer.L.in_dtype layer.L.in_shape

let test_conv_untiled_exact () =
  let layer = T.conv_layer ~c:8 ~k:8 ~hw:12 () in
  check_layer_differential Arch.Diana.digital layer [ input_for layer 1 ]

let test_conv_tiled_exact () =
  let layer = T.conv_layer ~c:16 ~k:32 ~hw:32 () in
  check_layer_differential ~budget:(kib 8) Arch.Diana.digital layer [ input_for layer 2 ]

let test_conv_tiled_strided_exact () =
  let layer = T.conv_layer ~c:16 ~k:32 ~hw:32 ~stride:2 ~pad:1 () in
  check_layer_differential ~budget:(kib 6) Arch.Diana.digital layer [ input_for layer 3 ]

let test_conv_single_buffered_exact () =
  let layer = T.conv_layer ~c:8 ~k:16 ~hw:24 () in
  check_layer_differential ~budget:(kib 6) ~db:false Arch.Diana.digital layer
    [ input_for layer 4 ]

let test_dw_tiled_exact () =
  let layer = T.dw_layer ~c:32 ~hw:24 () in
  check_layer_differential ~budget:(kib 4) Arch.Diana.digital layer [ input_for layer 5 ]

let test_dense_tiled_exact () =
  let layer = T.dense_layer ~c:640 ~k:128 () in
  check_layer_differential Arch.Diana.digital layer [ input_for layer 6 ]

let test_add_tiled_exact () =
  let layer = T.add_layer ~c:16 ~hw:24 () in
  check_layer_differential ~budget:(kib 4) Arch.Diana.digital layer
    [ input_for layer 7; input_for layer 8 ]

let test_analog_conv_exact () =
  let layer = T.conv_layer ~c:16 ~k:32 ~hw:16 ~wdtype:Dtype.Ternary () in
  check_layer_differential Arch.Diana.analog layer [ input_for layer 9 ]

let test_analog_conv_k_tiled_exact () =
  let layer = T.conv_layer ~c:8 ~k:600 ~hw:8 ~wdtype:Dtype.Ternary () in
  check_layer_differential Arch.Diana.analog layer [ input_for layer 10 ]

let prop_tiled_equals_reference =
  Helpers.qtest ~count:60 "tiled == reference over random geometry"
    QCheck.(
      quad (int_range 1 12) (int_range 1 20) (pair (int_range 1 2) (int_range 0 2))
        (pair (int_range 2 14) int))
    (fun (c, k, (stride, pad), (hw, seed)) ->
      let f = 3 in
      let hw = max hw (f + (2 * 0)) in
      let layer = T.conv_layer ~c ~k ~hw ~f ~stride ~pad ~seed () in
      if not (Arch.Diana.digital.Arch.Accel.supports layer) then true
      else
        let input = input_for layer seed in
        let reference = L.execute layer input in
        let budget = kib 2 in
        let cfg = Dory.Tiling.default_config ~l1_budget:budget in
        match Dory.Tiling.solve cfg Arch.Diana.digital layer with
        | Error _ -> true (* no feasible tile at this tiny budget *)
        | Ok _ ->
            let out, _, _ = run_layer ~budget Arch.Diana.digital layer [ input ] in
            Tensor.equal reference out)

let test_counters_sane () =
  let layer = T.conv_layer ~c:16 ~k:32 ~hw:32 () in
  let _, c, schedule = run_layer ~budget:(kib 8) Arch.Diana.digital layer [ input_for layer 11 ] in
  Alcotest.(check bool) "tiled" true (Dory.Schedule.tile_count schedule > 1);
  Alcotest.(check bool) "compute > 0" true (c.Sim.Counters.accel_compute > 0);
  Alcotest.(check bool) "weight load > 0" true (c.Sim.Counters.weight_load > 0);
  Alcotest.(check bool) "dma in > 0" true (c.Sim.Counters.dma_in > 0);
  Alcotest.(check bool) "dma out > 0" true (c.Sim.Counters.dma_out > 0);
  Alcotest.(check bool) "wall >= peak" true (c.Sim.Counters.wall >= Sim.Counters.peak c);
  Alcotest.(check bool) "wall <= sum of parts" true
    (c.Sim.Counters.wall <= Sim.Counters.total_parts c)

(* Execute a fixed schedule (same tiles) with and without DMA/compute
   overlap: overlap must never be slower. *)
let run_fixed_schedule layer schedule input =
  let l2 = Sim.Mem.create "L2" (kib 512) in
  let l1 = Sim.Mem.create "L1" (kib 256) in
  Sim.Mem.write_tensor l2 0 input;
  let numel shape = Array.fold_left ( * ) 1 shape in
  let out_offset = numel layer.L.in_shape in
  let woff = out_offset + numel layer.L.out_shape in
  Sim.Mem.write_tensor l2 woff (Option.get layer.L.weights);
  let boff = woff + Tensor.sim_bytes (Option.get layer.L.weights) in
  Sim.Mem.write_tensor l2 boff (Option.get layer.L.bias);
  Sim.Exec_accel.run ~platform:Arch.Diana.platform ~accel:Arch.Diana.digital ~l2 ~l1
    ~buffers:
      { Sim.Exec_accel.in_offsets = [ 0 ]; out_offset; weights_offset = woff;
        bias_offset = boff }
    schedule

let test_double_buffering_helps () =
  let layer = T.conv_layer ~c:16 ~k:32 ~hw:32 () in
  let input = input_for layer 12 in
  let tile = Arch.Tile.for_layer layer ~c:16 ~k:8 ~oy:8 ~ox:32 in
  let sched db =
    Dory.Schedule.build layer ~accel_name:"diana_digital" ~tile ~double_buffer:db
  in
  let c_db = run_fixed_schedule layer (sched true) input in
  let c_sb = run_fixed_schedule layer (sched false) input in
  Alcotest.(check bool) "overlap no slower" true
    (c_db.Sim.Counters.wall <= c_sb.Sim.Counters.wall);
  Alcotest.(check int) "same busy cycles" (Sim.Counters.peak c_sb) (Sim.Counters.peak c_db)

(* --- Machine: a hand-built program over one accel step + one CPU step --- *)

let test_machine_end_to_end () =
  let rng = Util.Rng.create 40 in
  let b = Ir.Graph.Builder.create () in
  let x = Ir.Graph.Builder.input b ~name:"x" Dtype.I8 [| 4; 8; 8 |] in
  let w = Ir.Graph.Builder.const b (Tensor.random rng Dtype.I8 [| 8; 4; 3; 3 |]) in
  let bias = Ir.Graph.Builder.const b (Tiling_fixtures.bias_tensor rng 8) in
  let conv = Ir.Graph.Builder.conv2d b ~padding:(1, 1) x ~weights:w in
  let biased = Ir.Graph.Builder.bias_add b conv ~bias in
  let q = Ir.Graph.Builder.requantize b ~relu:true ~shift:8 ~out_dtype:Dtype.I8 biased in
  let pool = Ir.Graph.Builder.max_pool b ~pool:(2, 2) ~stride:(2, 2) q in
  let g = Ir.Graph.Builder.finish b ~output:pool in
  let tys = Ir.Infer.infer g in
  (* Layer for the conv block. *)
  let m = List.hd (Byoc.Pattern.find_all g Byoc.Library.conv2d_pattern) in
  let layer = Result.get_ok (Byoc.Extract.to_layer g tys m) in
  let accel = Arch.Diana.digital in
  let sol =
    Result.get_ok
      (Dory.Tiling.solve (Dory.Tiling.default_config ~l1_budget:(kib 256)) accel layer)
  in
  let schedule =
    Dory.Schedule.build layer ~accel_name:"diana_digital" ~tile:sol.Dory.Tiling.tile
      ~double_buffer:true
  in
  let wt = Option.get layer.Ir.Layer.weights and bt = Option.get layer.Ir.Layer.bias in
  let buffers =
    [
      { Sim.Program.buf_id = 0; b_dtype = Dtype.I8; b_shape = [| 4; 8; 8 |]; l2_offset = 0 };
      { Sim.Program.buf_id = 1; b_dtype = Dtype.I8; b_shape = [| 8; 8; 8 |]; l2_offset = 256 };
      { Sim.Program.buf_id = 2; b_dtype = Dtype.I8; b_shape = [| 8; 4; 4 |]; l2_offset = 1024 };
    ]
  in
  let weights_offset = 4096 in
  let bias_offset = weights_offset + Tensor.sim_bytes wt in
  let prog =
    {
      Sim.Program.graph = g;
      buffers;
      steps =
        [
          Sim.Program.Accel
            {
              accel_name = "diana_digital";
              schedule;
              ins = [ 0 ];
              out = 1;
              weights_offset;
              bias_offset;
            };
          Sim.Program.Cpu
            { kernel_name = "fused_maxpool"; nodes = [ pool ]; ins = [ (q, 1) ]; out = 2;
              cycles = 123 };
        ];
      input_buffers = [ ("x", 0) ];
      output_buffer = 2;
      weight_images = [ (weights_offset, wt); (bias_offset, bt) ];
      l2_activation_peak = 1536;
    }
  in
  (match Sim.Program.validate prog with
  | Ok () -> ()
  | Error e -> Alcotest.failf "program invalid: %s" e);
  let input = Tensor.random (Util.Rng.create 41) Dtype.I8 [| 4; 8; 8 |] in
  let out, report =
    Sim.Machine.run ~platform:Arch.Diana.platform prog ~inputs:[ ("x", input) ]
  in
  Helpers.check_tensor "machine == interpreter" (Ir.Eval.run g ~inputs:[ ("x", input) ]) out;
  Alcotest.(check int) "two steps reported" 2 (List.length report.Sim.Machine.per_step);
  Alcotest.(check bool) "cpu cycles counted" true
    (report.Sim.Machine.totals.Sim.Counters.cpu_compute = 123);
  Alcotest.(check bool) "accel peak positive" true (Sim.Machine.accel_steps_peak report > 0)

let test_machine_missing_input () =
  let b = Ir.Graph.Builder.create () in
  let x = Ir.Graph.Builder.input b ~name:"x" Dtype.I8 [| 2 |] in
  let r = Ir.Graph.Builder.relu b x in
  let g = Ir.Graph.Builder.finish b ~output:r in
  let prog =
    {
      Sim.Program.graph = g;
      buffers =
        [
          { Sim.Program.buf_id = 0; b_dtype = Dtype.I8; b_shape = [| 2 |]; l2_offset = 0 };
          { Sim.Program.buf_id = 1; b_dtype = Dtype.I8; b_shape = [| 2 |]; l2_offset = 8 };
        ];
      steps =
        [ Sim.Program.Cpu { kernel_name = "relu"; nodes = [ r ]; ins = [ (x, 0) ]; out = 1; cycles = 1 } ];
      input_buffers = [ ("x", 0) ];
      output_buffer = 1;
      weight_images = [];
      l2_activation_peak = 16;
    }
  in
  Alcotest.check_raises "missing input" (Invalid_argument "Machine: missing input x")
    (fun () -> ignore (Sim.Machine.run ~platform:Arch.Diana.platform prog ~inputs:[]))

let suites =
  [ ( "sim",
      [ Alcotest.test_case "mem dtypes" `Quick test_mem_roundtrip_dtypes;
        Alcotest.test_case "mem little endian" `Quick test_mem_little_endian;
        Alcotest.test_case "mem fault" `Quick test_mem_fault;
        Alcotest.test_case "mem range check" `Quick test_mem_range_check;
        Alcotest.test_case "mem tensor roundtrip" `Quick test_mem_tensor_roundtrip;
        Alcotest.test_case "counters" `Quick test_counters;
        Alcotest.test_case "conv untiled exact" `Quick test_conv_untiled_exact;
        Alcotest.test_case "conv tiled exact" `Quick test_conv_tiled_exact;
        Alcotest.test_case "conv strided tiled exact" `Quick test_conv_tiled_strided_exact;
        Alcotest.test_case "conv single-buffered exact" `Quick test_conv_single_buffered_exact;
        Alcotest.test_case "dw tiled exact" `Quick test_dw_tiled_exact;
        Alcotest.test_case "dense tiled exact" `Quick test_dense_tiled_exact;
        Alcotest.test_case "add tiled exact" `Quick test_add_tiled_exact;
        Alcotest.test_case "analog conv exact" `Quick test_analog_conv_exact;
        Alcotest.test_case "analog k-tiled exact" `Quick test_analog_conv_k_tiled_exact;
        prop_tiled_equals_reference;
        Alcotest.test_case "counters sane" `Quick test_counters_sane;
        Alcotest.test_case "double buffering helps" `Quick test_double_buffering_helps;
        Alcotest.test_case "machine end to end" `Quick test_machine_end_to_end;
        Alcotest.test_case "machine missing input" `Quick test_machine_missing_input;
      ] )
  ]
