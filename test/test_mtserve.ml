(* The multi-tenant serving layer: tally/metrics determinism across
   fleet shapes for every arrival source, per-class SLO shedding and
   accounting, pinned vs hot-swap placement, batch-size autotuning, the
   replayable arrival-trace format, and the typed error surface. *)

module B = Ir.Graph.Builder
module Dtype = Tensor.Dtype

(* Two small digital models of different costs, compiled once: "alpha"
   is the test_serve conv fixture, "beta" a cheaper single-channel
   variant — cheap enough for sweeps, distinct enough that routing the
   wrong artifact would change every digest. *)
let fixture =
  lazy
    (let compile g =
       Result.get_ok
         (Htvm.Compile.compile
            (Htvm.Compile.default_config Arch.Diana.digital_only)
            g)
     in
     let conv_model ~seed ~channels =
       let b = B.create () in
       let rng = Util.Rng.create seed in
       let x = B.input b ~name:"x" Dtype.I8 [| 4; 8; 8 |] in
       let w = B.const b (Tensor.random rng Dtype.I8 [| channels; 4; 3; 3 |]) in
       let conv = B.conv2d b ~padding:(1, 1) x ~weights:w in
       let q = B.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 conv in
       B.finish b ~output:q
     in
     let ga = conv_model ~seed:8 ~channels:8 in
     let gb = conv_model ~seed:9 ~channels:2 in
     [
       { Serve.m_name = "alpha"; m_artifact = compile ga; m_graph = ga };
       { Serve.m_name = "beta"; m_artifact = compile gb; m_graph = gb };
     ])

let classes =
  [
    { Serve.k_name = "interactive"; k_model = "alpha"; k_slo = None; k_weight = 2 };
    { Serve.k_name = "batch"; k_model = "beta"; k_slo = None; k_weight = 1 };
  ]

let base =
  {
    Serve.mt_default with
    Serve.mt_requests = 12;
    mt_max_batch = 3;
    mt_workers = 2;
  }

let run ?(models = Lazy.force fixture) ?(classes = classes) cfg =
  Serve.mt_run cfg ~models ~classes

let run_ok ?models ?classes cfg =
  match run ?models ?classes cfg with
  | Ok r -> r
  | Error e -> Alcotest.failf "mt_run failed: %s" (Serve.mt_error_to_string e)

let expect_error name pred = function
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: got %s" name (Serve.mt_error_to_string e))
        true (pred e)

(* The tally body with the config header stripped: record-vs-replay
   comparisons legitimately differ in the arrival descriptor line. *)
let tally_body r =
  let t = Serve.mt_tally r in
  match String.index_opt t '\n' with
  | Some i -> (
      match String.index_from_opt t (i + 1) '\n' with
      | Some j -> String.sub t (j + 1) (String.length t - j - 1)
      | None -> t)
  | None -> t

let cycles_track r =
  Metrics.cycles_section (Metrics.to_prometheus r.Serve.mt_metrics)

(* The headline invariant, per arrival source: tally and cycles-track
   metrics are byte-identical at any fleet size / host parallelism. *)
let test_tally_invariant () =
  let modes =
    [
      ("closed", Serve.Mt_closed);
      ("poisson", Serve.Mt_poisson { mean_gap = 0 });
      ("diurnal", Serve.Mt_diurnal { mean_gap = 0; period = 0 });
      ("bursty", Serve.Mt_bursty { mean_gap = 0; burst = 3 });
    ]
  in
  List.iter
    (fun (name, mt_arrival) ->
      let at w j =
        run_ok { base with Serve.mt_arrival; mt_workers = w; mt_jobs = j }
      in
      let reference = at 1 1 in
      let ref_tally = Serve.mt_tally reference in
      let ref_cycles = cycles_track reference in
      List.iter
        (fun (w, j) ->
          let r = at w j in
          Alcotest.(check string)
            (Printf.sprintf "%s: tally at workers %d jobs %d" name w j)
            ref_tally (Serve.mt_tally r);
          Alcotest.(check string)
            (Printf.sprintf "%s: cycles track at workers %d jobs %d" name w j)
            ref_cycles (cycles_track r))
        [ (2, 1); (4, 1); (4, 4); (7, 2) ])
    modes

(* Per-class accounting: class stats partition the request stream, books
   balance per class and in total, and every class sees traffic under
   its configured weight. *)
let test_class_books () =
  let r =
    run_ok
      { base with Serve.mt_requests = 30; mt_arrival = Serve.Mt_poisson { mean_gap = 0 } }
  in
  let total f = List.fold_left (fun acc cs -> acc + f cs) 0 r.Serve.mt_class_stats in
  Alcotest.(check int) "class requests partition the stream" 30
    (total (fun cs -> cs.Serve.cs_requests));
  Alcotest.(check int) "served totals agree" r.Serve.mt_served
    (total (fun cs -> cs.Serve.cs_served));
  Alcotest.(check int) "shed-queue totals agree" r.Serve.mt_shed_queue
    (total (fun cs -> cs.Serve.cs_shed_queue));
  Alcotest.(check int) "shed-slo totals agree" r.Serve.mt_shed_slo
    (total (fun cs -> cs.Serve.cs_shed_slo));
  List.iter
    (fun cs ->
      Alcotest.(check int)
        (Printf.sprintf "class %s books balance" cs.Serve.cs_name)
        cs.Serve.cs_requests
        (cs.Serve.cs_served + cs.Serve.cs_shed_queue + cs.Serve.cs_shed_slo);
      Alcotest.(check bool)
        (Printf.sprintf "class %s sees traffic" cs.Serve.cs_name)
        true
        (cs.Serve.cs_requests > 0))
    r.Serve.mt_class_stats;
  Alcotest.(check int) "books balance overall" 30
    (r.Serve.mt_served + r.Serve.mt_shed_queue + r.Serve.mt_shed_slo)

(* SLO shedding: an unmeetable target sheds a class entirely (the shed
   decision quotes the predicted sojourn that broke it), a generous one
   sheds nothing, and every served request of an SLO class fits its
   target by construction. *)
let test_slo_shedding () =
  let with_slo slo =
    let classes =
      [
        { Serve.k_name = "tight"; k_model = "alpha"; k_slo = slo; k_weight = 1 };
        { Serve.k_name = "lax"; k_model = "beta"; k_slo = None; k_weight = 1 };
      ]
    in
    run_ok ~classes base
  in
  let r = with_slo (Some 1) in
  let stat name r =
    List.find (fun cs -> cs.Serve.cs_name = name) r.Serve.mt_class_stats
  in
  Alcotest.(check int) "slo 1 sheds the whole class"
    (stat "tight" r).Serve.cs_requests (stat "tight" r).Serve.cs_shed_slo;
  Alcotest.(check int) "the no-slo class is untouched" 0
    (stat "lax" r).Serve.cs_shed_slo;
  Alcotest.(check int) "lax class fully served"
    (stat "lax" r).Serve.cs_requests (stat "lax" r).Serve.cs_served;
  List.iter
    (fun (q, o) ->
      match o with
      | Serve.Mt_shed_slo { mo_pred_sojourn } ->
          Alcotest.(check bool) "shed quotes a violating prediction" true
            (mo_pred_sojourn > 1 && q.Serve.q_class = 0)
      | _ -> ())
    r.Serve.mt_outcomes;
  let generous = with_slo (Some 1_000_000_000) in
  Alcotest.(check int) "a generous slo sheds nothing" 0 generous.Serve.mt_shed_slo;
  List.iter
    (fun (_, o) ->
      match o with
      | Serve.Mt_served { mo_pred_sojourn; _ } ->
          Alcotest.(check bool) "served predictions fit the target" true
            (mo_pred_sojourn <= 1_000_000_000)
      | _ -> ())
    generous.Serve.mt_outcomes

(* Placement: pinned instances never swap and end the run hosting their
   assigned model; hot-swap on one instance pays the reload exactly at
   model changes, so the makespan moves by swaps * overhead. *)
let test_placement_and_swaps () =
  let pinned =
    run_ok { base with Serve.mt_placement = Serve.Pinned; mt_workers = 2 }
  in
  Alcotest.(check int) "pinned fleet never swaps" 0 pinned.Serve.mt_swaps;
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d hosts its pinned model" i.Serve.mi_id)
        true
        (i.Serve.mi_model = Some (if i.Serve.mi_id mod 2 = 0 then "alpha" else "beta")))
    pinned.Serve.mt_instances;
  let swap overhead =
    run_ok
      {
        base with
        Serve.mt_placement = Serve.Swap;
        mt_workers = 1;
        mt_max_batch = 1;
        mt_swap_overhead = overhead;
      }
  in
  let r0 = swap 0 and r9 = swap 9_000 in
  Alcotest.(check bool) "alternating classes force swaps" true
    (r9.Serve.mt_swaps > 0);
  Alcotest.(check int) "swap count is overhead-independent" r0.Serve.mt_swaps
    r9.Serve.mt_swaps;
  Alcotest.(check int) "makespan moves by swaps * overhead"
    (r0.Serve.mt_makespan + (r9.Serve.mt_swaps * 9_000))
    r9.Serve.mt_makespan;
  expect_error "pinned needs enough workers"
    (function Serve.Bad_config _ -> true | _ -> false)
    (run { base with Serve.mt_placement = Serve.Pinned; mt_workers = 1 })

(* Record -> parse -> replay reproduces the tally body (per-request
   outcomes, shed set, class stats) byte-for-byte, at any fleet shape. *)
let test_trace_roundtrip () =
  let original =
    run_ok
      {
        base with
        Serve.mt_arrival = Serve.Mt_poisson { mean_gap = 0 };
        mt_queue_depth = 2;
      }
  in
  let text = Serve.render_arrival_trace original in
  let entries =
    match Serve.parse_arrival_trace text with
    | Ok es -> es
    | Error e -> Alcotest.failf "parse failed: %s" (Serve.mt_error_to_string e)
  in
  Alcotest.(check int) "every request round-trips" 12 (List.length entries);
  List.iter
    (fun (w, j) ->
      let replayed =
        run_ok
          {
            base with
            Serve.mt_arrival = Serve.Mt_replay entries;
            mt_queue_depth = 2;
            mt_seed = 999;
            mt_requests = 0;
            mt_workers = w;
            mt_jobs = j;
          }
      in
      Alcotest.(check string)
        (Printf.sprintf "replay tally body at workers %d jobs %d" w j)
        (tally_body original) (tally_body replayed);
      (* the shed set (which requests, why, at what predicted cost) is
         fleet-invariant; served outcomes keep only their invariant
         fields here — instance/batch/start legitimately move. *)
      let invariant r =
        List.map
          (fun (q, o) ->
            ( q.Serve.q_id,
              match o with
              | Serve.Mt_served { mo_digest; mo_service; mo_pred_sojourn; _ } ->
                  Printf.sprintf "served %s %d %d" mo_digest mo_service
                    mo_pred_sojourn
              | Serve.Mt_shed_queue { mo_window } ->
                  Printf.sprintf "shed-queue %d" mo_window
              | Serve.Mt_shed_slo { mo_pred_sojourn } ->
                  Printf.sprintf "shed-slo %d" mo_pred_sojourn ))
          r.Serve.mt_outcomes
      in
      Alcotest.(check bool) "replay reproduces the shed set" true
        (invariant replayed = invariant original))
    [ (1, 1); (4, 4) ];
  Alcotest.(check bool) "second render is stable" true
    (Serve.render_arrival_trace
       (run_ok
          {
            base with
            Serve.mt_arrival = Serve.Mt_replay entries;
            mt_queue_depth = 2;
          })
    = text)

(* The checked-in golden trace parses (comments, blank lines and all)
   and serves cleanly under the class names it references. *)
let test_golden_trace () =
  let entries =
    match Serve.load_arrival_trace "golden/mtserve.trace" with
    | Ok es -> es
    | Error e -> Alcotest.failf "golden trace: %s" (Serve.mt_error_to_string e)
  in
  Alcotest.(check int) "golden trace entries" 8 (List.length entries);
  let r = run_ok { base with Serve.mt_arrival = Serve.Mt_replay entries } in
  Alcotest.(check int) "every golden request accounted" 8
    (List.length r.Serve.mt_outcomes);
  Alcotest.(check bool) "golden trace serves" true (r.Serve.mt_served > 0)

(* Malformed traces are rejected with a typed [Bad_trace] naming the
   offending line; traces referencing unconfigured classes are typed
   [Unknown_class] at run time. *)
let test_trace_malformed () =
  let expect_bad name text want_line =
    match Serve.parse_arrival_trace text with
    | Ok _ -> Alcotest.failf "%s: parsed" name
    | Error (Serve.Bad_trace { line; _ }) ->
        Alcotest.(check int) (name ^ ": line") want_line line
    | Error e ->
        Alcotest.failf "%s: wrong error %s" name (Serve.mt_error_to_string e)
  in
  expect_bad "wrong header" "htvm-serve-trace v9\n1 a 2\n" 1;
  expect_bad "token count" "htvm-serve-trace v1\n1 a\n" 2;
  expect_bad "bad cycle" "htvm-serve-trace v1\nx a 2\n" 2;
  expect_bad "bad seed" "htvm-serve-trace v1\n1 a x\n" 2;
  expect_bad "negative cycle" "htvm-serve-trace v1\n-1 a 2\n" 2;
  expect_bad "decreasing cycles"
    "htvm-serve-trace v1\n# ok\n9 a 2\n3 a 2\n" 4;
  let ghost =
    Result.get_ok
      (Serve.parse_arrival_trace "htvm-serve-trace v1\n1 ghost 2\n")
  in
  expect_error "unknown class in trace"
    (function
      | Serve.Unknown_class { class_name = "ghost"; _ } -> true | _ -> false)
    (run { base with Serve.mt_arrival = Serve.Mt_replay ghost })

(* Batch autotune: [mt_max_batch = 0] resolves to a candidate size, the
   choice is fleet-shape-invariant, and a dispatch overhead dwarfing
   the per-request service pushes it above singleton batches. *)
let test_autotune () =
  let cfg w j =
    {
      base with
      Serve.mt_max_batch = 0;
      mt_workers = w;
      mt_jobs = j;
      mt_dispatch_overhead = 10_000_000;
    }
  in
  let r1 = run_ok (cfg 1 1) in
  Alcotest.(check bool) "resolved from the candidate set" true
    (List.mem r1.Serve.mt_batch [ 1; 2; 4; 8; 16; 32 ]);
  Alcotest.(check bool) "heavy dispatch overhead favors batching" true
    (r1.Serve.mt_batch > 1);
  let r4 = run_ok (cfg 4 4) in
  Alcotest.(check int) "choice is fleet-invariant" r1.Serve.mt_batch
    r4.Serve.mt_batch;
  Alcotest.(check string) "and so is the tally" (Serve.mt_tally r1)
    (Serve.mt_tally r4)

(* An empty request stream is a clean no-op at every layer. *)
let test_requests_zero () =
  List.iter
    (fun mt_arrival ->
      let r = run_ok { base with Serve.mt_requests = 0; mt_arrival } in
      Alcotest.(check int) "no outcomes" 0 (List.length r.Serve.mt_outcomes);
      Alcotest.(check int) "zero makespan" 0 r.Serve.mt_makespan;
      Alcotest.(check int) "empty percentiles" 0 r.Serve.mt_service.Serve.p_count;
      Alcotest.(check bool) "summary still renders" true
        (String.length (Serve.mt_summary r) > 0);
      ignore (Serve.mt_tally r);
      ignore (Trace.Json.to_string (Serve.mt_to_json r)))
    [ Serve.Mt_closed; Serve.Mt_poisson { mean_gap = 0 } ]

(* Every misconfiguration surfaces as a typed error, never an
   exception. *)
let test_typed_errors () =
  let bad_config name cfg_classes =
    let cfg, classes = cfg_classes in
    expect_error name
      (function Serve.Bad_config _ -> true | _ -> false)
      (run ~classes cfg)
  in
  expect_error "unknown model"
    (function
      | Serve.Unknown_model { class_name = "a"; model = "nope" } -> true
      | _ -> false)
    (run
       ~classes:
         [ { Serve.k_name = "a"; k_model = "nope"; k_slo = None; k_weight = 1 } ]
       base);
  bad_config "workers 0" ({ base with Serve.mt_workers = 0 }, classes);
  bad_config "queue_depth 0" ({ base with Serve.mt_queue_depth = 0 }, classes);
  bad_config "requests -1" ({ base with Serve.mt_requests = -1 }, classes);
  bad_config "negative batch" ({ base with Serve.mt_max_batch = -1 }, classes);
  bad_config "negative swap overhead"
    ({ base with Serve.mt_swap_overhead = -1 }, classes);
  bad_config "no classes" (base, []);
  bad_config "zero weight"
    ( base,
      [ { Serve.k_name = "a"; k_model = "alpha"; k_slo = None; k_weight = 0 } ] );
  bad_config "zero slo"
    ( base,
      [ { Serve.k_name = "a"; k_model = "alpha"; k_slo = Some 0; k_weight = 1 } ]
    );
  bad_config "class name with space"
    ( base,
      [ { Serve.k_name = "a b"; k_model = "alpha"; k_slo = None; k_weight = 1 } ]
    );
  bad_config "duplicate class names"
    ( base,
      [
        { Serve.k_name = "a"; k_model = "alpha"; k_slo = None; k_weight = 1 };
        { Serve.k_name = "a"; k_model = "beta"; k_slo = None; k_weight = 1 };
      ] );
  bad_config "bad burst"
    ({ base with Serve.mt_arrival = Serve.Mt_bursty { mean_gap = 0; burst = 0 } },
     classes);
  let dup = Lazy.force fixture in
  expect_error "duplicate model names"
    (function Serve.Bad_config _ -> true | _ -> false)
    (run ~models:(dup @ dup) base)

(* The renderers agree with the outcome list: one tally line per
   request, per-class sections, and JSON that mentions every class. *)
let test_renderings () =
  let r = run_ok base in
  let tally = Serve.mt_tally r in
  let lines = String.split_on_char '\n' (String.trim tally) in
  (* header + config + 2 class headers + 12 requests + totals
     + 2 * (class stats + class percentiles) + service percentiles *)
  Alcotest.(check int) "tally line count" (2 + 2 + 12 + 1 + 4 + 1)
    (List.length lines);
  Alcotest.(check bool) "tally starts with the format tag" true
    (Helpers.contains (List.hd lines) "htvm-mtserve-tally v1");
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "tally mentions class %s" k.Serve.k_name)
        true
        (Helpers.contains tally ("class " ^ k.Serve.k_name)))
    classes;
  let json = Trace.Json.to_string (Serve.mt_to_json r) in
  Alcotest.(check bool) "json lists classes" true
    (Helpers.contains json "\"classes\":");
  Alcotest.(check bool) "json lists outcomes" true
    (Helpers.contains json "\"outcomes\":");
  Alcotest.(check bool) "summary mentions placement" true
    (Helpers.contains (Serve.mt_summary r) "placement")

(* Generator-driven determinism: random multi-tenant configs (fleet
   shape, arrival mode, placement, SLOs, autotune on/off) all produce
   tally + cycles-track metrics identical to the 1-worker/1-job run. *)
let prop_invariance =
  let gen =
    QCheck.Gen.(
      let* workers = int_range 1 4 in
      let* jobs = oneofl [ 1; 4 ] in
      let* mode = int_range 0 3 in
      let* burst = int_range 1 4 in
      let* placement = oneofl [ Serve.Pinned; Serve.Swap ] in
      let* max_batch = oneofl [ 0; 1; 2; 4 ] in
      let* queue_depth = int_range 1 4 in
      let* requests = int_range 0 10 in
      let* slo = oneofl [ None; Some 1_000_000; Some 100_000_000 ] in
      let* seed = int_range 0 10_000 in
      return
        (workers, jobs, mode, burst, placement, max_batch, queue_depth,
         requests, slo, seed))
  in
  let print (w, j, m, b, p, mb, qd, n, slo, seed) =
    Printf.sprintf
      "workers=%d jobs=%d mode=%d burst=%d placement=%s batch=%d depth=%d \
       requests=%d slo=%s seed=%d"
      w j m b
      (match p with Serve.Pinned -> "pinned" | Serve.Swap -> "swap")
      mb qd n
      (match slo with None -> "none" | Some t -> string_of_int t)
      seed
  in
  Helpers.qtest ~count:8 "mt tally/metrics invariant over fleet shape"
    (QCheck.make ~print gen)
    (fun (workers, jobs, mode, burst, placement, max_batch, queue_depth,
          requests, slo, seed) ->
      let arrival =
        match mode with
        | 0 -> Serve.Mt_closed
        | 1 -> Serve.Mt_poisson { mean_gap = 0 }
        | 2 -> Serve.Mt_diurnal { mean_gap = 0; period = 0 }
        | _ -> Serve.Mt_bursty { mean_gap = 0; burst }
      in
      let classes =
        [
          { Serve.k_name = "interactive"; k_model = "alpha"; k_slo = slo;
            k_weight = 2 };
          { Serve.k_name = "batch"; k_model = "beta"; k_slo = None;
            k_weight = 1 };
        ]
      in
      let at w j =
        run_ok ~classes
          {
            Serve.mt_default with
            Serve.mt_workers = w;
            mt_jobs = j;
            mt_arrival = arrival;
            mt_placement = placement;
            mt_max_batch = max_batch;
            mt_queue_depth = queue_depth;
            mt_requests = requests;
            mt_seed = seed;
          }
      in
      let reference = at (max workers 2) 1 in
      let other = at (max workers 2) jobs in
      (* vary only jobs at the drawn fleet size, then the fleet size at
         the reference job count: both must leave the books alone.
         (Pinned placement needs >= 2 workers for the two models.) *)
      let again = at 2 1 in
      Serve.mt_tally reference = Serve.mt_tally other
      && cycles_track reference = cycles_track other
      && Serve.mt_tally reference = Serve.mt_tally again
      && cycles_track reference = cycles_track again)

let suites =
  [ ( "mtserve",
      [ Alcotest.test_case "tally invariant over fleet shape" `Quick
          test_tally_invariant;
        Alcotest.test_case "per-class books balance" `Quick test_class_books;
        Alcotest.test_case "slo shedding" `Quick test_slo_shedding;
        Alcotest.test_case "placement and swaps" `Quick
          test_placement_and_swaps;
        Alcotest.test_case "trace round-trip" `Quick test_trace_roundtrip;
        Alcotest.test_case "golden trace" `Quick test_golden_trace;
        Alcotest.test_case "malformed traces rejected" `Quick
          test_trace_malformed;
        Alcotest.test_case "batch autotune" `Quick test_autotune;
        Alcotest.test_case "zero requests" `Quick test_requests_zero;
        Alcotest.test_case "typed errors" `Quick test_typed_errors;
        Alcotest.test_case "renderings" `Quick test_renderings;
        prop_invariance;
      ] )
  ]
