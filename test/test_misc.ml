(* Cross-cutting invariants that no single-module suite owns: compile
   determinism, counter bookkeeping, planner/liveness consistency, and
   report/energy integration corners. *)

module C = Htvm.Compile
module P = Sim.Program

let compile_resnet platform =
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  (g, Result.get_ok (C.compile (C.default_config platform) g))

let test_compile_deterministic () =
  let _, a1 = compile_resnet Arch.Diana.digital_only in
  let _, a2 = compile_resnet Arch.Diana.digital_only in
  Alcotest.(check int) "same program size"
    (List.length a1.C.program.P.steps)
    (List.length a2.C.program.P.steps);
  let offsets (a : C.artifact) =
    List.map (fun (b : P.buffer) -> (b.P.buf_id, b.P.l2_offset)) a.C.program.P.buffers
  in
  Alcotest.(check bool) "same buffer plan" true (offsets a1 = offsets a2);
  Alcotest.(check int) "same size" a1.C.size.Codegen.Size.total_bytes
    a2.C.size.Codegen.Size.total_bytes

let test_run_deterministic () =
  let g, artifact = compile_resnet Arch.Diana.digital_only in
  let inputs = Models.Zoo.random_input g in
  let o1, r1 = C.run artifact ~inputs in
  let o2, r2 = C.run artifact ~inputs in
  Helpers.check_tensor "same output" o1 o2;
  Alcotest.(check int) "same cycles" (C.full_cycles r1) (C.full_cycles r2)

let test_totals_equal_per_step_sum () =
  let g, artifact = compile_resnet Arch.Diana.digital_only in
  let _, report = C.run artifact ~inputs:(Models.Zoo.random_input g) in
  let summed = Sim.Counters.create () in
  List.iter (fun (_, c) -> Sim.Counters.add summed c) report.Sim.Machine.per_step;
  Alcotest.(check int) "wall" report.Sim.Machine.totals.Sim.Counters.wall
    summed.Sim.Counters.wall;
  Alcotest.(check int) "dma"
    (report.Sim.Machine.totals.Sim.Counters.dma_in
    + report.Sim.Machine.totals.Sim.Counters.dma_out)
    (summed.Sim.Counters.dma_in + summed.Sim.Counters.dma_out)

let test_buffer_plan_respects_liveness () =
  (* No two buffers whose producing/consuming step ranges overlap may
     overlap in L2 — checked directly on a compiled MobileNet (the most
     buffer-hungry model). *)
  let g = (Models.Zoo.find "mobilenet_v1_025").Models.Zoo.build Models.Policy.All_int8 in
  let artifact =
    Result.get_ok (C.compile (C.default_config Arch.Diana.digital_only) g)
  in
  let prog = artifact.C.program in
  let extent (b : P.buffer) = (b.P.l2_offset, b.P.l2_offset + P.buffer_bytes b) in
  (* Conservative: the network input and the output of every step are live
     through at least one step; we verify statically that buffers sharing
     space are never both written by overlapping steps by re-running and
     checking exactness — plus a direct pairwise disjointness check of
     buffers used by the same step. *)
  List.iter
    (fun step ->
      let ids =
        match step with
        | P.Accel { ins; out; _ } -> out :: ins
        | P.Cpu { ins; out; _ } -> out :: List.map snd ins
      in
      let bufs = List.map (P.buffer prog) (List.sort_uniq compare ids) in
      List.iteri
        (fun i b1 ->
          List.iteri
            (fun j b2 ->
              if i < j then begin
                let s1, e1 = extent b1 and s2, e2 = extent b2 in
                if not (e1 <= s2 || e2 <= s1) then
                  Alcotest.failf "buffers %d and %d of one step overlap" b1.P.buf_id
                    b2.P.buf_id
              end)
            bufs)
        bufs)
    prog.P.steps

let test_arena_peak_within_capacity () =
  List.iter
    (fun (e : Models.Zoo.entry) ->
      let g = e.Models.Zoo.build Models.Policy.All_int8 in
      match C.compile (C.default_config Arch.Diana.digital_only) g with
      | Error err ->
          Alcotest.failf "%s: %s" e.Models.Zoo.model_name (C.error_to_string err)
      | Ok a ->
          Alcotest.(check bool) "peak within arena" true
            (a.C.program.P.l2_activation_peak <= a.C.l2_arena_bytes))
    Models.Zoo.all

let test_report_mentions_tuning () =
  let g = (Models.Zoo.find "toyadmos_dae").Models.Zoo.build Models.Policy.All_int8 in
  let cfg =
    { (C.default_config Arch.Diana.cpu_only) with C.autotune_budget = Some 32 }
  in
  let artifact = Result.get_ok (C.compile cfg g) in
  let _, report = C.run artifact ~inputs:(Models.Zoo.random_input g) in
  let md = Htvm.Report.to_markdown artifact report in
  Alcotest.(check bool) "tuning line" true (Helpers.contains md "autotuning: on");
  Alcotest.(check bool) "trials mentioned" true
    (Helpers.contains md (string_of_int artifact.C.tuning_trials))

let test_energy_unknown_accel_falls_back () =
  let params =
    { Sim.Energy.diana_defaults with Sim.Energy.accel_pj_per_cycle = [ ("other", 7.0) ] }
  in
  let g, artifact = compile_resnet Arch.Diana.digital_only in
  let _, report = C.run artifact ~inputs:(Models.Zoo.random_input g) in
  let b = Sim.Energy.of_report params report in
  Alcotest.(check bool) "fallback power applied" true (b.Sim.Energy.accel_uj > 0.0)

let test_nova_vs_diana_same_results () =
  (* Functional equivalence across platforms: the platform changes cycles,
     never values. *)
  let g = (Models.Zoo.find "ds_cnn").Models.Zoo.build Models.Policy.All_int8 in
  let inputs = Models.Zoo.random_input g in
  let out_of platform =
    let a = Result.get_ok (C.compile (C.default_config platform) g) in
    fst (C.run a ~inputs)
  in
  Helpers.check_tensor "diana == nova"
    (out_of Arch.Diana.digital_only)
    (out_of Arch.Nova.platform)

let test_zoo_export_all_policies () =
  (* Every zoo model serializes and reloads under every policy. *)
  List.iter
    (fun (e : Models.Zoo.entry) ->
      List.iter
        (fun policy ->
          let g = e.Models.Zoo.build policy in
          match Ir.Text.of_string (Ir.Text.to_string g) with
          | Ok _ -> ()
          | Error err ->
              Alcotest.failf "%s/%s: %s" e.Models.Zoo.model_name
                (Models.Policy.to_string policy) err)
        [ Models.Policy.All_int8; Models.Policy.All_ternary; Models.Policy.Mixed ])
    Models.Zoo.all

let test_peak_leq_full_everywhere () =
  List.iter
    (fun (e : Models.Zoo.entry) ->
      let g = e.Models.Zoo.build Models.Policy.All_int8 in
      let a = Result.get_ok (C.compile (C.default_config Arch.Diana.digital_only) g) in
      let _, report = C.run a ~inputs:(Models.Zoo.random_input g) in
      Alcotest.(check bool) e.Models.Zoo.model_name true
        (C.peak_cycles report <= C.full_cycles report))
    Models.Zoo.all

let suites =
  [ ( "misc-invariants",
      [ Alcotest.test_case "compile deterministic" `Quick test_compile_deterministic;
        Alcotest.test_case "run deterministic" `Quick test_run_deterministic;
        Alcotest.test_case "totals = sum of steps" `Quick test_totals_equal_per_step_sum;
        Alcotest.test_case "step buffers disjoint" `Quick test_buffer_plan_respects_liveness;
        Alcotest.test_case "arena peak within capacity" `Quick
          test_arena_peak_within_capacity;
        Alcotest.test_case "report mentions tuning" `Quick test_report_mentions_tuning;
        Alcotest.test_case "energy fallback" `Quick test_energy_unknown_accel_falls_back;
        Alcotest.test_case "platforms agree on values" `Quick test_nova_vs_diana_same_results;
        Alcotest.test_case "zoo exports all policies" `Quick test_zoo_export_all_policies;
        Alcotest.test_case "peak <= full" `Quick test_peak_leq_full_everywhere;
      ] )
  ]
