(* Tests for output-stage pool fusion (DIANA executes "some pooling
   operations at the output", Sec. III-C): pattern capture, tiled
   execution exactness through the pooled-space window composition, and
   dispatch rules. *)

module Dtype = Tensor.Dtype
module B = Ir.Graph.Builder
module L = Ir.Layer
module T = Tiling_fixtures

let fused_layer ?(c = 8) ?(k = 16) ?(hw = 16) ?(f = 3) ?(pad = 1) ?(stride = 1)
    ?(pool = 2) ?(seed = 51) () =
  let base = T.conv_layer ~c ~k ~hw ~f ~pad ~stride ~seed () in
  let oh = base.L.out_shape.(1) and ow = base.L.out_shape.(2) in
  {
    base with
    L.fused_pool = Some { Ir.Op.pool = (pool, pool); pool_stride = (pool, pool) };
    out_shape = [| k; ((oh - pool) / pool) + 1; ((ow - pool) / pool) + 1 |];
  }

let input_for (l : L.t) seed = Tensor.random (Util.Rng.create seed) l.L.in_dtype l.L.in_shape

let run_fused ?(budget = Util.Ints.kib 256) layer =
  let tiling = Dory.Tiling.default_config ~l1_budget:budget in
  match Htvm.Lab.run_single_layer ~accel:Arch.Diana.digital ~tiling layer with
  | Ok r -> r
  | Error e -> Alcotest.failf "fused layer failed: %s" (Htvm.Lab.failure_to_string e)

let test_layer_semantics () =
  let l = fused_layer () in
  (match L.validate l with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid fused layer: %s" e);
  let x = input_for l 1 in
  let manual =
    Nn.Kernels.max_pool ~pool:(2, 2) ~stride:(2, 2)
      (L.execute { l with L.fused_pool = None; out_shape = [| 16; 16; 16 |] } x)
  in
  Helpers.check_tensor "pool after requant" manual (L.execute l x)

let test_describe_and_macs () =
  let l = fused_layer () in
  Alcotest.(check bool) "describe mentions pool" true
    (Helpers.contains (L.describe l) "+maxpool");
  (* MACs counted in pre-pool space: 16x16 conv output. *)
  Alcotest.(check int) "macs" (16 * 16 * 16 * 8 * 9) (L.macs l)

let test_tile_geometry () =
  let l = fused_layer () in
  let t = Arch.Tile.for_layer l ~c:8 ~k:16 ~oy:2 ~ox:2 in
  (* 2 pooled rows -> 4 conv rows -> 6 input rows (k3 s1). *)
  Alcotest.(check int) "iy through pool" 6 t.Arch.Tile.iy;
  Alcotest.(check (pair int int)) "conv extent" (4, 4)
    (Arch.Tile.conv_extent l t.Arch.Tile.oy t.Arch.Tile.ox)

let test_untiled_exact () =
  ignore (run_fused (fused_layer ()))

let test_tiled_exact () =
  (* Small L1 forces tiling; Lab asserts bit-exactness internally. *)
  let r = run_fused ~budget:(Util.Ints.kib 2) (fused_layer ~c:8 ~k:16 ~hw:16 ()) in
  Alcotest.(check bool) "actually tiled" true
    (Dory.Schedule.tile_count r.Htvm.Lab.schedule > 1)

let test_tiled_exact_strided_conv () =
  let r =
    run_fused ~budget:(Util.Ints.kib 2) (fused_layer ~hw:17 ~stride:2 ~pad:1 ~pool:2 ())
  in
  ignore r

let test_odd_geometry_exact () =
  (* Conv output 15x15 pooled 2x2 -> 7x7: the last conv row/col is unused
     by any complete pool window. *)
  let r = run_fused ~budget:(Util.Ints.kib 2) (fused_layer ~hw:15 ~pad:1 ()) in
  Alcotest.(check (list int)) "pooled dims"
    [ 16; 7; 7 ]
    (Array.to_list (Tensor.shape r.Htvm.Lab.output))

let test_pattern_matches_and_compiles () =
  let b = B.create () in
  let rng = Util.Rng.create 3 in
  let x = B.input b ~name:"x" Dtype.I8 [| 4; 12; 12 |] in
  let w = B.const b (Tensor.random rng Dtype.I8 [| 8; 4; 3; 3 |]) in
  let conv = B.conv2d b ~padding:(1, 1) x ~weights:w in
  let biased = B.bias_add b conv ~bias:(T.bias_tensor rng 8 |> B.const b) in
  let q = B.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 biased in
  let pooled = B.max_pool b ~pool:(2, 2) ~stride:(2, 2) q in
  let g = B.finish b ~output:pooled in
  (* The fused pattern matches rooted at the pool. *)
  let found = Byoc.Pattern.find_all g Byoc.Library.conv2d_pool_pattern in
  Alcotest.(check int) "one fused match" 1 (List.length found);
  (* End to end: one offloaded step, no CPU pool kernel. *)
  let cfg = Htvm.Compile.default_config Arch.Diana.digital_only in
  let artifact = Result.get_ok (Htvm.Compile.compile cfg g) in
  Alcotest.(check int) "single step" 1 (List.length artifact.Htvm.Compile.layers);
  let inputs = [ ("x", Tensor.random (Util.Rng.create 5) Dtype.I8 [| 4; 12; 12 |]) ] in
  let out, _ = Htvm.Compile.run artifact ~inputs in
  Helpers.check_tensor "fused == interpreter" (Ir.Eval.run g ~inputs) out

let test_avg_pool_not_fused () =
  (* Only max pooling commutes with requantization; avg stays on the host. *)
  let b = B.create () in
  let rng = Util.Rng.create 4 in
  let x = B.input b ~name:"x" Dtype.I8 [| 4; 8; 8 |] in
  let w = B.const b (Tensor.random rng Dtype.I8 [| 4; 4; 3; 3 |]) in
  let conv = B.conv2d b ~padding:(1, 1) x ~weights:w in
  let q = B.requantize b ~shift:9 ~out_dtype:Dtype.I8 conv in
  let pooled = B.avg_pool b ~pool:(2, 2) ~stride:(2, 2) q in
  let g = B.finish b ~output:pooled in
  let cfg = Htvm.Compile.default_config Arch.Diana.digital_only in
  let artifact = Result.get_ok (Htvm.Compile.compile cfg g) in
  Alcotest.(check int) "conv offloaded, pool on host" 2
    (List.length artifact.Htvm.Compile.layers)

let test_rules_reject_overlapping_pool () =
  let l = fused_layer () in
  let overlapping =
    { l with L.fused_pool = Some { Ir.Op.pool = (3, 3); pool_stride = (2, 2) } }
  in
  Alcotest.(check bool) "digital accepts non-overlap" true
    (Arch.Diana.digital.Arch.Accel.supports l);
  Alcotest.(check bool) "digital rejects overlap" false
    (Arch.Diana.digital.Arch.Accel.supports overlapping);
  Alcotest.(check bool) "nova rejects fused pool" false
    (Arch.Nova.gemm16.Arch.Accel.supports l)

let prop_fused_pool_exact =
  Helpers.qtest ~count:40 "fused conv+pool exact over random geometry"
    QCheck.(quad (int_range 1 6) (int_range 1 12) (int_range 6 18) (pair (int_range 0 1) int))
    (fun (c, k, hw, (pad, seed)) ->
      let l = fused_layer ~c ~k ~hw ~pad ~seed () in
      match L.validate l with
      | Error _ -> true (* degenerate pooled dims *)
      | Ok () -> (
          let tiling = Dory.Tiling.default_config ~l1_budget:(Util.Ints.kib 2) in
          match Htvm.Lab.run_single_layer ~accel:Arch.Diana.digital ~tiling l with
          | Ok _ -> true (* Lab checks exactness internally *)
          | Error (Htvm.Lab.Infeasible _) -> true
          | Error (Htvm.Lab.Diverged _) -> false))

let suites =
  [ ( "fused-pool",
      [ Alcotest.test_case "layer semantics" `Quick test_layer_semantics;
        Alcotest.test_case "describe and macs" `Quick test_describe_and_macs;
        Alcotest.test_case "tile geometry" `Quick test_tile_geometry;
        Alcotest.test_case "untiled exact" `Quick test_untiled_exact;
        Alcotest.test_case "tiled exact" `Quick test_tiled_exact;
        Alcotest.test_case "strided conv exact" `Quick test_tiled_exact_strided_conv;
        Alcotest.test_case "odd geometry exact" `Quick test_odd_geometry_exact;
        Alcotest.test_case "pattern + compile" `Quick test_pattern_matches_and_compiles;
        Alcotest.test_case "avg pool stays on host" `Quick test_avg_pool_not_fused;
        Alcotest.test_case "overlap rejected" `Quick test_rules_reject_overlapping_pool;
        prop_fused_pool_exact;
      ] )
  ]
