(* Aggregated test runner: every [Test_*] module exposes [suites]. *)

let () =
  Alcotest.run "htvm"
    (List.concat
       [ Test_util.suites;
         Test_tensor.suites;
         Test_nn.suites;
         Test_ir.suites;
         Test_byoc.suites;
         Test_arch.suites;
         Test_dory.suites;
         Test_sim.suites;
         Test_models.suites;
         Test_htvm.suites;
         Test_fuzz.suites;
         Test_rewrite.suites;
         Test_text.suites;
         Test_quant.suites;
         Test_extensions.suites;
         Test_tune.suites;
         Test_fused_pool.suites;
         Test_faults.suites;
         Test_chain.suites;
         Test_report.suites;
         Test_concat.suites;
         Test_misc.suites;
         Test_props.suites;
         Test_trace.suites;
         Test_pool.suites;
         Test_parallel.suites;
         Test_check.suites;
         Test_shrink.suites;
         Test_golden.suites;
         Test_plan.suites;
         Test_size.suites;
         Test_fault.suites;
         Test_serve.suites;
         Test_mtserve.suites;
         Test_health.suites;
         Test_metrics.suites;
         Test_store.suites;
       ])
