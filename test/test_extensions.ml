(* Tests for the extension subsystems: the NOVA portability target, the
   energy model and the Graphviz export. *)

module C = Htvm.Compile

let resnet () = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8

(* --- NOVA platform --- *)

let test_nova_compiles_bit_exact () =
  let g = resnet () in
  let cfg = C.default_config Arch.Nova.platform in
  match C.compile cfg g with
  | Error e -> Alcotest.failf "nova compile failed: %s" (C.error_to_string e)
  | Ok artifact ->
      let inputs = Models.Zoo.random_input g in
      let out, _ = C.run artifact ~inputs in
      Helpers.check_tensor "exact on nova" (Ir.Eval.run g ~inputs) out

let test_nova_partial_offload () =
  let g = resnet () in
  let cfg = C.default_config Arch.Nova.platform in
  let artifact = Result.get_ok (C.compile cfg g) in
  let on_accel, on_cpu =
    List.partition
      (fun (li : C.layer_info) -> li.C.li_target = "nova_gemm16")
      artifact.C.layers
  in
  Alcotest.(check bool) "some offloaded" true (List.length on_accel > 0);
  (* The stride-2 convolutions must be among the CPU kernels (fused CPU
     kernels are named after their anchor operator). *)
  Alcotest.(check bool) "conv kernels on host" true
    (List.exists (fun (li : C.layer_info) -> Helpers.contains li.C.li_desc "conv2d") on_cpu);
  Alcotest.(check bool) "no strided conv on accel" true
    (List.for_all
       (fun (li : C.layer_info) -> not (Helpers.contains li.C.li_desc "s2x2"))
       on_accel)

let test_nova_rules () =
  let a = Arch.Nova.gemm16 in
  let fixtures = Tiling_fixtures.conv_layer in
  Alcotest.(check bool) "stride 1 ok" true (a.Arch.Accel.supports (fixtures ~stride:1 ()));
  Alcotest.(check bool) "stride 2 rejected" false
    (a.Arch.Accel.supports (fixtures ~stride:2 ()));
  Alcotest.(check bool) "5x5 rejected" false
    (a.Arch.Accel.supports (fixtures ~f:5 ~pad:2 ()));
  Alcotest.(check bool) "dw rejected" false
    (a.Arch.Accel.supports (Tiling_fixtures.dw_layer ()));
  Alcotest.(check bool) "add rejected" false
    (a.Arch.Accel.supports (Tiling_fixtures.add_layer ()))

let test_nova_weights_count_against_l1 () =
  (* No dedicated weight memory: a big dense layer's weight tile must be
     part of the L1 budget, forcing smaller k tiles than on DIANA. *)
  let layer = Tiling_fixtures.dense_layer ~c:640 ~k:128 () in
  let budget = Util.Ints.kib 16 in
  let cfg = Dory.Tiling.default_config ~l1_budget:budget in
  let sol = Result.get_ok (Dory.Tiling.solve cfg Arch.Nova.gemm16 layer) in
  let tile = sol.Dory.Tiling.tile in
  Alcotest.(check bool) "k tiled" true (tile.Arch.Tile.k < 128);
  Alcotest.(check bool) "weights + activations fit" true
    (Dory.Tiling.l1_bytes_needed cfg layer tile
     + Arch.Tile.bytes_weights layer tile
    <= budget)

(* --- Energy --- *)

let energy_of platform policy =
  let g = (Models.Zoo.find "ds_cnn").Models.Zoo.build policy in
  let cfg = C.default_config platform in
  let artifact = Result.get_ok (C.compile cfg g) in
  let _, report = C.run artifact ~inputs:(Models.Zoo.random_input g) in
  Sim.Energy.of_report Sim.Energy.diana_defaults report

let test_energy_breakdown_sums () =
  let b = energy_of Arch.Diana.digital_only Models.Policy.All_int8 in
  let parts =
    b.Sim.Energy.cpu_uj +. b.Sim.Energy.accel_uj +. b.Sim.Energy.weight_load_uj
    +. b.Sim.Energy.dma_uj +. b.Sim.Energy.idle_uj
  in
  Alcotest.(check (float 1e-6)) "total = sum of parts" parts b.Sim.Energy.total_uj;
  Alcotest.(check bool) "positive" true (b.Sim.Energy.total_uj > 0.0)

let test_energy_accelerator_saves () =
  (* The paper's motivation: accelerated inference costs far less energy
     than running the same network on the host. *)
  let cpu = energy_of Arch.Diana.cpu_only Models.Policy.All_int8 in
  let dig = energy_of Arch.Diana.digital_only Models.Policy.All_int8 in
  Alcotest.(check bool) "digital saves >3x energy" true
    (cpu.Sim.Energy.total_uj > 3.0 *. dig.Sim.Energy.total_uj)

let test_energy_components_follow_dispatch () =
  let cpu = energy_of Arch.Diana.cpu_only Models.Policy.All_int8 in
  Alcotest.(check (float 1e-9)) "no accel energy on cpu-only" 0.0 cpu.Sim.Energy.accel_uj;
  let dig = energy_of Arch.Diana.digital_only Models.Policy.All_int8 in
  Alcotest.(check bool) "accel dominates digital config" true
    (dig.Sim.Energy.accel_uj > dig.Sim.Energy.cpu_uj)

(* --- Dot export --- *)

let test_dot_export () =
  let g = resnet () in
  let dot = Ir.Dot.to_dot g in
  List.iter
    (fun needle ->
      if not (Helpers.contains dot needle) then Alcotest.failf "dot lacks %s" needle)
    [ "digraph"; "nn.conv2d"; "doublecircle"; "->" ];
  (* One node statement per graph node. *)
  let count =
    List.length
      (List.filter (fun l -> Helpers.contains l "shape=")
         (String.split_on_char '\n' dot))
  in
  Alcotest.(check bool) "all nodes present" true (count > Ir.Graph.length g)

let test_dot_highlight () =
  let g = resnet () in
  let dot = Ir.Dot.to_dot ~highlight:(fun i -> if i = 3 then Some "lightblue" else None) g in
  Alcotest.(check bool) "highlight applied" true (Helpers.contains dot "lightblue")

let suites =
  [ ( "extensions",
      [ Alcotest.test_case "nova bit exact" `Quick test_nova_compiles_bit_exact;
        Alcotest.test_case "nova partial offload" `Quick test_nova_partial_offload;
        Alcotest.test_case "nova rules" `Quick test_nova_rules;
        Alcotest.test_case "nova weights in L1" `Quick test_nova_weights_count_against_l1;
        Alcotest.test_case "energy sums" `Quick test_energy_breakdown_sums;
        Alcotest.test_case "energy accelerator saves" `Quick test_energy_accelerator_saves;
        Alcotest.test_case "energy follows dispatch" `Quick
          test_energy_components_follow_dispatch;
        Alcotest.test_case "dot export" `Quick test_dot_export;
        Alcotest.test_case "dot highlight" `Quick test_dot_highlight;
      ] )
  ]
