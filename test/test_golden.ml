(* Golden conformance snapshots: the compiler's observable behaviour on
   every zoo model x deployment config must match the committed
   test/golden/*.golden files bit for bit. A failure here means the
   change altered outputs, cycles or binary sizes — if intentional,
   re-record with: dune exec bin/htvmc.exe -- check --bless *)

module Golden = Check.Golden

(* The dune rule copies test/golden/ next to the test binary. *)
let dir = "golden"

let check_case (model, config) () =
  match Golden.load ~dir ~model ~config with
  | Error e -> Alcotest.failf "%s (re-record with: htvmc check --bless)" e
  | Ok expected -> (
      match Golden.compute ~model ~config with
      | Error e -> Alcotest.fail e
      | Ok actual -> (
          match Golden.diff ~expected ~actual with
          | [] -> ()
          | diffs ->
              Alcotest.failf
                "behaviour drifted from the blessed snapshot:\n  %s\n\
                 If intentional, re-record with: htvmc check --bless"
                (String.concat "\n  " diffs)))

let test_all_snapshots_exist () =
  Alcotest.(check int) "4 models x 4 configs" 16 (List.length Golden.cases);
  List.iter
    (fun (model, config) ->
      if not (Sys.file_exists (Filename.concat dir (Golden.filename ~model ~config)))
      then
        Alcotest.failf "missing snapshot %s — record it with: htvmc check --bless"
          (Golden.filename ~model ~config))
    Golden.cases

let test_roundtrip () =
  let e =
    {
      Golden.ge_model = "m";
      ge_config = "c";
      ge_output_digest = "00112233445566778899aabbccddeeff";
      ge_wall_cycles = 123;
      ge_binary_bytes = 456;
      ge_l2_static_bytes = 7;
      ge_l2_arena_bytes = 8;
    }
  in
  match Golden.of_string (Golden.to_string e) with
  | Ok e' -> Alcotest.(check bool) "round trip" true (e = e')
  | Error msg -> Alcotest.fail msg

let test_diff_names_the_field () =
  match Golden.load ~dir ~model:"resnet8" ~config:"both" with
  | Error e -> Alcotest.fail e
  | Ok e ->
      let tampered = { e with Golden.ge_wall_cycles = e.Golden.ge_wall_cycles + 1 } in
      (match Golden.diff ~expected:e ~actual:tampered with
      | [ d ] ->
          Alcotest.(check bool) "names wall_cycles" true
            (Helpers.contains d "wall_cycles")
      | ds -> Alcotest.failf "expected exactly one diff, got %d" (List.length ds));
      Alcotest.(check (list string)) "identical entries don't diff" []
        (Golden.diff ~expected:e ~actual:e)

let test_malformed_rejected () =
  (match Golden.of_string "not a golden file" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted");
  match Golden.of_string "htvm-golden v1\nmodel: m\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated file accepted"

let suites =
  [ ( "golden",
      Alcotest.test_case "all snapshots exist" `Quick test_all_snapshots_exist
      :: Alcotest.test_case "entry round-trip" `Quick test_roundtrip
      :: Alcotest.test_case "diff names the field" `Quick test_diff_names_the_field
      :: Alcotest.test_case "malformed rejected" `Quick test_malformed_rejected
      :: List.map
           (fun (model, config) ->
             Alcotest.test_case
               (Printf.sprintf "%s/%s matches snapshot" model config)
               `Quick
               (check_case (model, config)))
           Golden.cases )
  ]
