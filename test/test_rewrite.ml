(* Tests for the optimization passes added on top of constant folding and
   DCE: value numbering (CSE) and the exact peephole rewrites. Semantics
   preservation is additionally fuzzed over the random-graph corpus. *)

module Dtype = Tensor.Dtype
module G = Ir.Graph
module B = Ir.Graph.Builder

let test_cse_shares_identical_apps () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 4 |] in
  let r1 = B.relu b x in
  let r2 = B.relu b x in
  let g = B.finish b ~output:(B.add b r1 r2) in
  let g' = Ir.Rewrite.common_subexpression_elimination g in
  Alcotest.(check int) "one relu left" 2 (G.app_count g')

let test_cse_unifies_equal_constants () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2; 4; 4 |] in
  let w () = Tensor.random (Util.Rng.create 3) Dtype.I8 [| 2; 2; 1; 1 |] in
  let c1 = B.const b (w ()) and c2 = B.const b (w ()) in
  let y1 = B.conv2d b x ~weights:c1 in
  let y2 = B.conv2d b x ~weights:c2 in
  let g = B.finish b ~output:(B.add b y1 y2) in
  let g' = Ir.Rewrite.common_subexpression_elimination g in
  (* Equal weight tensors unify, then the two convs unify too. *)
  Alcotest.(check int) "conv shared" 2 (G.app_count g');
  let consts =
    List.filter (fun i -> match G.node g' i with G.Const _ -> true | _ -> false)
      (G.node_ids g')
  in
  Alcotest.(check int) "one const" 1 (List.length consts)

let test_cse_keeps_different_ops () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2; 4; 4 |] in
  let p1 = B.max_pool b ~pool:(2, 2) ~stride:(2, 2) x in
  let p2 = B.avg_pool b ~pool:(2, 2) ~stride:(2, 2) x in
  let g = B.finish b ~output:(B.add b p1 p2) in
  let g' = Ir.Rewrite.common_subexpression_elimination g in
  Alcotest.(check int) "nothing shared" 3 (G.app_count g')

let test_peephole_merges_shifts () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I32 [| 4 |] in
  let s1 = B.const b (Tensor.scalar Dtype.I32 3) in
  let a = B.app b Ir.Op.Right_shift [ x; s1 ] in
  let s2 = B.const b (Tensor.scalar Dtype.I32 2) in
  let g = B.finish b ~output:(B.app b Ir.Op.Right_shift [ a; s2 ]) in
  let g' = Ir.Rewrite.simplify g in
  Alcotest.(check int) "one shift" 1 (G.app_count g');
  let input = Tensor.of_array Dtype.I32 [| 4 |] [| -1000; -31; 31; 1000 |] in
  Helpers.check_tensor "exact"
    (Ir.Eval.run g ~inputs:[ ("x", input) ])
    (Ir.Eval.run g' ~inputs:[ ("x", input) ])

let test_peephole_relu_idempotent () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 4 |] in
  let g = B.finish b ~output:(B.relu b (B.relu b x)) in
  let g' = Ir.Rewrite.simplify g in
  Alcotest.(check int) "one relu" 1 (G.app_count g')

let test_peephole_merges_reshapes () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2; 3; 4 |] in
  let r1 = B.reshape b [| 24 |] x in
  let g = B.finish b ~output:(B.reshape b [| 4; 6 |] r1) in
  let g' = Ir.Rewrite.simplify g in
  Alcotest.(check int) "one reshape" 1 (G.app_count g');
  Alcotest.(check (list int)) "outer shape kept" [ 4; 6 ]
    (Array.to_list (Ir.Infer.output_ty g').Ir.Infer.shape)

let test_peephole_drops_redundant_clip () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I32 [| 4 |] in
  let inner = B.app b (Ir.Op.Clip { lo = 0; hi = 100 }) [ x ] in
  let g = B.finish b ~output:(B.app b (Ir.Op.Clip { lo = -128; hi = 127 }) [ inner ]) in
  let g' = Ir.Rewrite.simplify g in
  Alcotest.(check int) "outer clip dropped" 1 (G.app_count g')

let test_peephole_keeps_narrowing_clip () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I32 [| 4 |] in
  let inner = B.app b (Ir.Op.Clip { lo = -128; hi = 127 }) [ x ] in
  let g = B.finish b ~output:(B.app b (Ir.Op.Clip { lo = 0; hi = 10 }) [ inner ]) in
  let g' = Ir.Rewrite.simplify g in
  Alcotest.(check int) "both clips kept" 2 (G.app_count g')

let test_peephole_drops_identity_cast () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 4 |] in
  let g = B.finish b ~output:(B.relu b (B.app b (Ir.Op.Cast Dtype.I8) [ x ])) in
  let g' = Ir.Rewrite.simplify g in
  Alcotest.(check int) "cast dropped" 1 (G.app_count g')

let prop_simplify_preserves_random_graphs =
  Helpers.qtest ~count:60 "simplify preserves semantics on random graphs"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Check.Gen.generate seed in
      let g' = Ir.Rewrite.simplify g in
      let inputs = Models.Zoo.random_input ~seed g in
      Tensor.equal (Ir.Eval.run g ~inputs) (Ir.Eval.run g' ~inputs))

let prop_simplify_never_grows =
  Helpers.qtest ~count:60 "simplify never grows the graph"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Check.Gen.generate seed in
      G.app_count (Ir.Rewrite.simplify g) <= G.app_count g)

let prop_simplify_idempotent =
  Helpers.qtest ~count:30 "simplify is idempotent" QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Ir.Rewrite.simplify (Check.Gen.generate seed) in
      G.app_count (Ir.Rewrite.simplify g) = G.app_count g)

let suites =
  [ ( "rewrite",
      [ Alcotest.test_case "cse shares apps" `Quick test_cse_shares_identical_apps;
        Alcotest.test_case "cse unifies constants" `Quick test_cse_unifies_equal_constants;
        Alcotest.test_case "cse keeps different ops" `Quick test_cse_keeps_different_ops;
        Alcotest.test_case "peephole shift merge" `Quick test_peephole_merges_shifts;
        Alcotest.test_case "peephole relu" `Quick test_peephole_relu_idempotent;
        Alcotest.test_case "peephole reshape merge" `Quick test_peephole_merges_reshapes;
        Alcotest.test_case "peephole clip drop" `Quick test_peephole_drops_redundant_clip;
        Alcotest.test_case "peephole clip keep" `Quick test_peephole_keeps_narrowing_clip;
        Alcotest.test_case "peephole cast drop" `Quick test_peephole_drops_identity_cast;
        prop_simplify_preserves_random_graphs;
        prop_simplify_never_grows;
        prop_simplify_idempotent;
      ] )
  ]
