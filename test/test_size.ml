(* Unit tests for the binary-size accounting (Codegen.Size): section
   arithmetic, per-layer driver/tile-loop code costs, and the analog
   macro's zero-padding rule for ternary spatial convolutions. *)

module Size = Codegen.Size

let size_model =
  {
    Arch.Platform.runtime_base_bytes = 1000;
    cpu_kernel_bytes = 100;
    cpu_op_bytes = 10;
    accel_call_bytes = 40;
    accel_tile_loop_bytes = 25;
  }

let conv_layer ?(f = 3) ~wdtype ~k ~c () =
  {
    Ir.Layer.kind = Ir.Layer.Conv { Nn.Kernels.conv_default with padding = (f / 2, f / 2) };
    fused_pool = None;
    weights = Some (Tensor.create wdtype [| k; c; f; f |]);
    bias = Some (Tensor.create Tensor.Dtype.I32 [| k |]);
    shift = Some 6;
    relu = true;
    in_shape = [| c; 8; 8 |];
    in2_shape = None;
    out_shape = [| k; 8; 8 |];
    in_dtype = Tensor.Dtype.I8;
    out_dtype = Tensor.Dtype.I8;
  }

let cpu_kernel name bytes =
  { Codegen.Fuse.kernel_name = name; nodes = []; cycles = 1; code_bytes = bytes }

let test_sections_sum_to_total () =
  let l = conv_layer ~wdtype:Tensor.Dtype.I8 ~k:4 ~c:3 () in
  let r =
    Size.report ~size_model
      ~cpu_kernels:[ cpu_kernel "k0" 120; cpu_kernel "k1" 130 ]
      ~accel_layers:[ (l, "diana_digital", true); (l, "diana_digital", false) ]
      ~cpu_const_bytes:77
  in
  let sum = List.fold_left (fun a (s : Size.section) -> a + s.Size.bytes) 0 r.Size.sections in
  Alcotest.(check int) "total is the section sum" sum r.Size.total_bytes;
  let sec name =
    (List.find (fun (s : Size.section) -> s.Size.section_name = name) r.Size.sections)
      .Size.bytes
  in
  Alcotest.(check int) "runtime base" 1000 (sec "runtime");
  Alcotest.(check int) "cpu kernel code" 250 (sec "cpu kernels");
  (* one tiled layer (call + loop) + one untiled (call only) *)
  Alcotest.(check int) "accel driver code" ((40 + 25) + 40) (sec "accelerator drivers");
  Alcotest.(check int) "cpu constants" 77 (sec "cpu constants")

let test_int8_consts_pack_tight () =
  let l = conv_layer ~wdtype:Tensor.Dtype.I8 ~k:4 ~c:3 () in
  let expected =
    Tensor.packed_bytes (Option.get l.Ir.Layer.weights)
    + Tensor.packed_bytes (Option.get l.Ir.Layer.bias)
  in
  Alcotest.(check int) "int8 conv consts"
    expected
    (Size.accel_const_bytes l ~accel_name:"diana_digital")

let test_ternary_spatial_pads_to_macro () =
  (* A 3x3 ternary conv on the analog array stores each output channel as
     a full macro column: ceil(imc_rows * 2 bits / 8) bytes per channel,
     regardless of how few rows c*3*3 actually uses. *)
  let k = 8 in
  let l = conv_layer ~wdtype:Tensor.Dtype.Ternary ~k ~c:3 () in
  let bias = Tensor.packed_bytes (Option.get l.Ir.Layer.bias) in
  let col = Util.Ints.ceil_div (Arch.Diana.imc_rows * 2) 8 in
  Alcotest.(check int) "padded to macro height"
    ((col * k) + bias)
    (Size.accel_const_bytes l ~accel_name:"diana_analog");
  (* The same tensor deployed anywhere else packs tight. *)
  Alcotest.(check int) "tight elsewhere"
    (Tensor.packed_bytes (Option.get l.Ir.Layer.weights) + bias)
    (Size.accel_const_bytes l ~accel_name:"diana_digital")

let test_ternary_1x1_packs_tight () =
  (* FC-like (1x1) ternary layers pack tight even on the analog array. *)
  let l = conv_layer ~f:1 ~wdtype:Tensor.Dtype.Ternary ~k:8 ~c:16 () in
  let expected =
    Tensor.packed_bytes (Option.get l.Ir.Layer.weights)
    + Tensor.packed_bytes (Option.get l.Ir.Layer.bias)
  in
  Alcotest.(check int) "1x1 ternary consts"
    expected
    (Size.accel_const_bytes l ~accel_name:"diana_analog")

let test_biasless_layer () =
  let l = { (conv_layer ~wdtype:Tensor.Dtype.I8 ~k:4 ~c:3 ()) with Ir.Layer.bias = None } in
  Alcotest.(check int) "no bias section"
    (Tensor.packed_bytes (Option.get l.Ir.Layer.weights))
    (Size.accel_const_bytes l ~accel_name:"diana_digital")

let suites =
  [ ( "size",
      [ Alcotest.test_case "sections sum to total" `Quick test_sections_sum_to_total;
        Alcotest.test_case "int8 consts pack tight" `Quick test_int8_consts_pack_tight;
        Alcotest.test_case "ternary spatial pads to macro" `Quick
          test_ternary_spatial_pads_to_macro;
        Alcotest.test_case "ternary 1x1 packs tight" `Quick test_ternary_1x1_packs_tight;
        Alcotest.test_case "biasless layer" `Quick test_biasless_layer;
      ] )
  ]
