(* The instance health lifecycle: state-machine unit walks (probation
   backoff escalation, probe-cost accounting, relapse paths), the
   determinism property (transition logs are pure functions of (seed,
   plan, config) at any fleet size / job count), the serve integration
   (mid-run degrade -> probation -> readmission with the tally still
   workers/jobs-invariant), and the chaos campaign sweep. *)

module B = Ir.Graph.Builder
module Dtype = Tensor.Dtype

(* --- unit: the state machine ------------------------------------------ *)

(* Deterministic small config: probes always pass. *)
let hcfg =
  {
    Health.fault_threshold = 2;
    probation_window = 100;
    probe_interval = 10;
    probe_cost = 5;
    pass_threshold = 2;
    backoff_cap = 1_600;
    probe_fail_prob = 0.0;
    probe_seed = 1;
  }

let test_backoff_escalation () =
  let b r = Health.probation_backoff hcfg ~relapse:r in
  Alcotest.(check int) "relapse 1 = base" 100 (b 1);
  Alcotest.(check int) "relapse 2 doubles" 200 (b 2);
  Alcotest.(check int) "relapse 3 doubles again" 400 (b 3);
  Alcotest.(check int) "relapse 5 hits the cap" 1_600 (b 5);
  Alcotest.(check int) "relapse 9 stays at the cap" 1_600 (b 9);
  Alcotest.(check int) "huge relapse saturates (no shift overflow)" 1_600
    (b 10_000);
  (* The retry backoff is the same shape with the historical base/cap. *)
  Alcotest.(check int) "Fault.Session.backoff base" 8 (Fault.Session.backoff 1);
  Alcotest.(check int) "Fault.Session.backoff cap" 256 (Fault.Session.backoff 99);
  Alcotest.(check int) "backoff_with is min cap (base lsl (n-1))" 64
    (Fault.Session.backoff_with ~base:8 ~cap:256 4)

let test_lifecycle_walkthrough () =
  let t = Health.create hcfg ~instance:0 in
  Alcotest.(check bool) "starts eligible" true (Health.eligible t);
  Health.observe_faults t ~now:10 1;
  Alcotest.(check bool) "below threshold stays eligible" true (Health.eligible t);
  Health.observe_faults t ~now:20 1;
  Alcotest.(check bool) "threshold crossed degrades" false (Health.eligible t);
  Alcotest.(check int) "no probes before probation" 0 (Health.advance t ~now:119);
  (* Probation opens at 20 + 100; two 5-cycle probes, 10 apart, pass and
     readmit at 140. *)
  Alcotest.(check int) "two probes consumed" 10 (Health.advance t ~now:200);
  Alcotest.(check bool) "readmitted is eligible" true (Health.eligible t);
  Alcotest.(check int) "one readmission" 1 (Health.readmissions t);
  Alcotest.(check int) "one relapse" 1 (Health.relapses t);
  Alcotest.(check int) "both probes passed" 2 (Health.probes_passed t);
  Alcotest.(check int) "probe cycles accounted" 10 (Health.probe_cycles t);
  let labels = List.map Health.transition_label (Health.transitions t) in
  Alcotest.(check (list string)) "exact transition log"
    [
      "@20 healthy->degraded (faults=2)";
      "@120 degraded->probation (window)";
      "@140 probation->readmitted (probe-pass)";
    ]
    labels

let test_probe_failure_escalates () =
  let t =
    Health.create ~degraded_at_start:true
      { hcfg with Health.probe_fail_prob = 1.0 }
      ~instance:0
  in
  Alcotest.(check bool) "boot-degraded" false (Health.eligible t);
  (* Probation at 100; every probe fails, so each relapse doubles the
     cooldown: probes finish at 105, 310, 715; the next window (1515)
     is past the horizon. *)
  let consumed = Health.advance t ~now:1_000 in
  Alcotest.(check int) "three failed probes consumed" 15 consumed;
  Alcotest.(check int) "three probe failures" 3 (Health.probes_failed t);
  Alcotest.(check int) "boot + three probe relapses" 4 (Health.relapses t);
  Alcotest.(check int) "no readmission" 0 (Health.readmissions t);
  let labels = List.map Health.transition_label (Health.transitions t) in
  Alcotest.(check (list string)) "escalating windows in the log"
    [
      "@0 healthy->degraded (boot)";
      "@100 degraded->probation (window)";
      "@105 probation->degraded (probe-fail)";
      "@305 degraded->probation (window)";
      "@310 probation->degraded (probe-fail)";
      "@710 degraded->probation (window)";
      "@715 probation->degraded (probe-fail)";
    ]
    labels

let test_fault_during_probation_relapses () =
  let t = Health.create hcfg ~instance:0 in
  Health.observe_faults t ~now:0 2;
  ignore (Health.advance t ~now:100);
  Alcotest.(check string) "on probation" "probation"
    (Health.state_label (Health.state t));
  Health.observe_faults t ~now:100 1;
  Alcotest.(check string) "fault on probation re-degrades" "degraded"
    (Health.state_label (Health.state t));
  Alcotest.(check int) "relapse counted" 2 (Health.relapses t);
  (* The escalated cooldown: back on probation only at 100 + 200. *)
  ignore (Health.advance t ~now:299);
  Alcotest.(check string) "still cooling down" "degraded"
    (Health.state_label (Health.state t));
  ignore (Health.advance t ~now:300);
  Alcotest.(check string) "escalated window elapsed" "probation"
    (Health.state_label (Health.state t))

let test_faults_while_degraded_ignored () =
  let t = Health.create hcfg ~instance:0 in
  Health.observe_faults t ~now:0 2;
  let transitions_before = List.length (Health.transitions t) in
  Health.observe_faults t ~now:50 7;
  Alcotest.(check int) "no new transition" transitions_before
    (List.length (Health.transitions t));
  Alcotest.(check int) "relapse count unchanged" 1 (Health.relapses t);
  Alcotest.(check int) "observations still tallied" 9 (Health.faults_seen t);
  (* The cooldown was not extended: probation still opens at 100. *)
  ignore (Health.advance t ~now:100);
  Alcotest.(check string) "probation on schedule" "probation"
    (Health.state_label (Health.state t))

let test_validate_rejections () =
  let expect field cfg =
    match Health.validate cfg with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "%s accepted" field
  in
  expect "threshold 0" { hcfg with Health.fault_threshold = 0 };
  expect "window 0" { hcfg with Health.probation_window = 0 };
  expect "interval -1" { hcfg with Health.probe_interval = -1 };
  expect "cost 0" { hcfg with Health.probe_cost = 0 };
  expect "passes 0" { hcfg with Health.pass_threshold = 0 };
  expect "cap < window" { hcfg with Health.backoff_cap = 99 };
  expect "prob 1.5" { hcfg with Health.probe_fail_prob = 1.5 };
  expect "prob nan" { hcfg with Health.probe_fail_prob = Float.nan };
  Alcotest.(check bool) "default validates" true
    (Health.validate Health.default = Ok ());
  match Health.create { hcfg with Health.fault_threshold = 0 } ~instance:0 with
  | _ -> Alcotest.fail "create accepted an invalid config"
  | exception Invalid_argument _ -> ()

(* --- property: pure function of (seed, plan, config) ------------------ *)

let sim_plan = Result.get_ok (Fault.Plan.of_string "seed=11,dma_in@p=0.5:flip")

let prop_simulate_determinism =
  let gen =
    QCheck.Gen.(
      let* seed = int_range 0 10_000 in
      let* fail = oneofl [ 0.0; 0.3; 1.0 ] in
      let* instances = int_range 1 6 in
      let* windows = int_range 1 20 in
      return (seed, fail, instances, windows))
  in
  let print (seed, fail, instances, windows) =
    Printf.sprintf "seed=%d fail=%g instances=%d windows=%d" seed fail
      instances windows
  in
  Helpers.qtest ~count:25 "health transition logs invariant over jobs and fleet"
    (QCheck.make ~print gen)
    (fun (seed, fail, instances, windows) ->
      let cfg =
        { hcfg with Health.probe_seed = seed; probe_fail_prob = fail }
      in
      let plan = { sim_plan with Fault.Plan.seed } in
      let sim ~instances ~jobs =
        Health.simulate cfg ~plan ~instances ~windows ~window:37 ~jobs
      in
      let j1 = sim ~instances ~jobs:1 in
      (* jobs are a wall-clock knob *)
      j1 = sim ~instances ~jobs:4
      (* and instance streams are independent: instance 0's line is the
         same whatever the fleet size *)
      && List.hd (String.split_on_char '\n' j1)
         = List.hd (String.split_on_char '\n' (sim ~instances:1 ~jobs:1)))

(* --- serve integration ------------------------------------------------ *)

let fixture =
  lazy
    (let g =
       let b = B.create () in
       let rng = Util.Rng.create 8 in
       let x = B.input b ~name:"x" Dtype.I8 [| 4; 8; 8 |] in
       let w = B.const b (Tensor.random rng Dtype.I8 [| 8; 4; 3; 3 |]) in
       let conv = B.conv2d b ~padding:(1, 1) x ~weights:w in
       let q = B.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 conv in
       B.finish b ~output:q
     in
     let artifact =
       Result.get_ok
         (Htvm.Compile.compile (Htvm.Compile.default_config Arch.Diana.digital_only) g)
     in
     (artifact, g))

let serve cfg =
  let artifact, g = Lazy.force fixture in
  Serve.run cfg artifact ~graph:g

let flip_plan = Result.get_ok (Fault.Plan.of_string "seed=3,dma_in@p=0.4:flip")
let base = { Serve.default with Serve.requests = 12; max_batch = 3 }

(* Small explicit lifecycle relative to the fixture's ~100k-cycle
   service time: readmission lands well inside a batch gap. *)
let serve_hcfg =
  {
    Health.fault_threshold = 3;
    probation_window = 2_000;
    probe_interval = 0;
    probe_cost = 100;
    pass_threshold = 2;
    backoff_cap = 16_000;
    probe_fail_prob = 0.0;
    probe_seed = 1;
  }

(* The acceptance scenario: an instance degrading mid-run re-enters the
   healthy rotation, with the readmission visible in the report, the
   tally footer and the cycles-track health counters. *)
let test_degrade_then_readmit () =
  let cfg =
    {
      base with
      Serve.workers = 2;
      requests = 16;
      plan = flip_plan;
      retry_budget = 4;
      health = Some serve_hcfg;
    }
  in
  let reg = Metrics.create () in
  let artifact, g = Lazy.force fixture in
  let r = Serve.run ~metrics:reg cfg artifact ~graph:g in
  let h = Option.get r.Serve.r_health in
  Alcotest.(check bool) "pred plane relapsed" true (h.Serve.h_pred_relapses >= 1);
  Alcotest.(check bool) "pred plane readmitted" true
    (h.Serve.h_pred_readmissions >= 1);
  let observed_readmissions =
    List.fold_left
      (fun acc i ->
        match i.Serve.i_health with
        | Some hs -> acc + hs.Serve.hs_readmissions
        | None -> acc)
      0 r.Serve.r_instances
  in
  Alcotest.(check bool) "an instance re-entered the rotation" true
    (observed_readmissions >= 1);
  let degraded_instance =
    List.exists (fun i -> i.Serve.i_degraded_at <> None) r.Serve.r_instances
  in
  Alcotest.(check bool) "the degrade moment is recorded" true degraded_instance;
  let tally = Serve.tally r in
  Alcotest.(check bool) "tally carries the health header" true
    (Helpers.contains tally "health threshold=");
  Alcotest.(check bool) "tally carries the pred footer" true
    (Helpers.contains tally "health pred-state=");
  let prom = Metrics.to_prometheus r.Serve.r_metrics in
  Alcotest.(check bool) "pred transition counters on the cycles track" true
    (Helpers.contains
       (Metrics.cycles_section prom)
       "htvm_health_pred_transitions_total");
  Alcotest.(check bool) "readmission counter present" true
    (Helpers.contains prom "htvm_health_pred_readmissions_total");
  let json = Trace.Json.to_string (Serve.to_json r) in
  Alcotest.(check bool) "per-instance health in json" true
    (Helpers.contains json "\"readmissions\":")

(* The headline invariance survives the lifecycle: tally and cycles
   track byte-identical across fleet shapes with health + faults +
   boot-degraded instances all enabled. *)
let test_tally_invariant_with_health () =
  let cfg w j =
    {
      base with
      Serve.workers = w;
      jobs = j;
      requests = 14;
      plan = flip_plan;
      retry_budget = 4;
      degraded_instances = [ 0 ];
      health = Some serve_hcfg;
    }
  in
  let artifact, g = Lazy.force fixture in
  let at w j =
    let reg = Metrics.create () in
    let r = Serve.run ~metrics:reg (cfg w j) artifact ~graph:g in
    (Serve.tally r, Metrics.cycles_section (Metrics.to_prometheus r.Serve.r_metrics))
  in
  let reference = at 1 1 in
  List.iter
    (fun (w, j) ->
      let tally, cycles = at w j in
      Alcotest.(check string)
        (Printf.sprintf "tally workers %d jobs %d" w j)
        (fst reference) tally;
      Alcotest.(check string)
        (Printf.sprintf "cycles track workers %d jobs %d" w j)
        (snd reference) cycles)
    [ (1, 4); (2, 1); (4, 4); (5, 2) ]

let test_rejects_bad_health_config () =
  let expect field cfg =
    match serve cfg with
    | _ -> Alcotest.failf "%s accepted" field
    | exception Invalid_argument _ -> ()
  in
  expect "degraded id out of range"
    { base with Serve.workers = 2; degraded_instances = [ 2 ] };
  expect "degraded id negative"
    { base with Serve.workers = 2; degraded_instances = [ -1 ] };
  expect "duplicate degraded ids"
    { base with Serve.workers = 4; degraded_instances = [ 1; 1 ] };
  expect "health + degrade_after"
    {
      base with
      Serve.degrade_after = Some 2;
      health = Some serve_hcfg;
      plan = flip_plan;
    };
  (* probe_cost = 0 is the auto-resolution sentinel at the serve layer,
     so pick a field that has no auto form. *)
  expect "invalid health field"
    {
      base with
      Serve.health = Some { serve_hcfg with Health.probe_fail_prob = 2.0 };
    }

(* Every instance out of rotation: the router fails open (keeps
   serving) and says so in the dedicated counter. *)
let test_fail_open_counter () =
  let r =
    serve { base with Serve.workers = 1; degraded_instances = [ 0 ] }
  in
  Alcotest.(check int) "all requests still served" 12 r.Serve.r_served;
  Alcotest.(check bool) "observed fail-open counted" true (r.Serve.r_fail_open >= 1);
  Alcotest.(check bool) "sched counter exported" true
    (Helpers.contains
       (Metrics.to_prometheus r.Serve.r_metrics)
       "htvm_sched_fail_open_total");
  Alcotest.(check bool) "cycles-track fail-open counter exported" true
    (Helpers.contains
       (Metrics.cycles_section (Metrics.to_prometheus r.Serve.r_metrics))
       "htvm_serve_fail_open_total");
  (* A healthy fleet reports zero. *)
  let healthy = serve { base with Serve.workers = 2 } in
  Alcotest.(check int) "healthy fleet never fails open" 0
    healthy.Serve.r_fail_open

(* --- campaign --------------------------------------------------------- *)

let campaign_cfg rates =
  {
    Campaign.c_serve =
      {
        base with
        Serve.requests = 10;
        retry_budget = 4;
        health = Some serve_hcfg;
      };
    c_rates = rates;
    c_site = "dma_in";
    c_kind = "flip";
    c_fault_seed = 3;
  }

let run_campaign cfg =
  let artifact, g = Lazy.force fixture in
  Campaign.run cfg artifact ~graph:g

let test_campaign_curve () =
  match run_campaign (campaign_cfg [ 0.0; 0.08; 0.4 ]) with
  | Error msg -> Alcotest.failf "campaign failed: %s" msg
  | Ok t ->
      let points = t.Campaign.t_points in
      Alcotest.(check int) "one point per rate" 3 (List.length points);
      let stress pt =
        let r = pt.Campaign.pt_report in
        let h = Option.get r.Serve.r_health in
        r.Serve.r_aborted + h.Serve.h_pred_relapses + h.Serve.h_pred_fail_open
      in
      (match points with
      | [ zero; _; hot ] ->
          Alcotest.(check int) "zero rate is fault-free" 0 (stress zero);
          Alcotest.(check bool) "high rate stresses the fleet" true
            (stress hot > 0)
      | _ -> assert false);
      let tally = Campaign.tally t in
      Alcotest.(check bool) "tally header" true
        (Helpers.contains tally "htvm-campaign-tally v1");
      Alcotest.(check int) "tally has one rate line per point" 3
        (List.length
           (List.filter
              (fun l -> String.length l > 5 && String.sub l 0 5 = "rate ")
              (String.split_on_char '\n' tally)))

let test_campaign_tally_invariant () =
  let with_fleet w j =
    let cfg = campaign_cfg [ 0.0; 0.08; 0.4 ] in
    let cfg =
      { cfg with Campaign.c_serve = { cfg.Campaign.c_serve with Serve.workers = w; jobs = j } }
    in
    match run_campaign cfg with
    | Ok t -> Campaign.tally t
    | Error msg -> Alcotest.failf "campaign failed: %s" msg
  in
  Alcotest.(check string) "w1/j1 = w4/j4" (with_fleet 1 1) (with_fleet 4 4)

let test_campaign_rejections () =
  let expect field cfg =
    match run_campaign cfg with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s accepted" field
  in
  expect "empty rates" (campaign_cfg []);
  expect "rate > 1" (campaign_cfg [ 0.5; 1.5 ]);
  expect "negative rate" (campaign_cfg [ -0.1 ]);
  expect "duplicate rates" (campaign_cfg [ 0.1; 0.1 ]);
  expect "bad site" { (campaign_cfg [ 0.1 ]) with Campaign.c_site = "nope" };
  expect "bad kind" { (campaign_cfg [ 0.1 ]) with Campaign.c_kind = "nope" }

(* --- multi-tenant ----------------------------------------------------- *)

let mt_fixture =
  lazy
    (let artifact, g = Lazy.force fixture in
     let models = [ { Serve.m_name = "main"; m_artifact = artifact; m_graph = g } ] in
     let classes =
       [ { Serve.k_name = "c"; k_model = "main"; k_slo = None; k_weight = 1 } ]
     in
     (models, classes))

let mt_base = { Serve.mt_default with Serve.mt_requests = 12; mt_max_batch = 3 }

let test_mt_health_lifecycle () =
  let models, classes = Lazy.force mt_fixture in
  let cfg =
    {
      mt_base with
      Serve.mt_workers = 2;
      mt_degraded_instances = [ 1 ];
      mt_health = Some serve_hcfg;
    }
  in
  match Serve.mt_run cfg ~models ~classes with
  | Error e -> Alcotest.failf "mt_run failed: %s" (Serve.mt_error_to_string e)
  | Ok r ->
      let i1 = List.nth r.Serve.mt_instances 1 in
      let hs = Option.get i1.Serve.mi_health in
      Alcotest.(check bool) "boot-degraded instance readmitted" true
        (hs.Serve.hs_readmissions >= 1);
      Alcotest.(check bool) "probe cycles charged" true (hs.Serve.hs_probe_cycles > 0);
      (* The mt tally never sees the fleet: health on/off is invisible. *)
      let plain =
        match Serve.mt_run mt_base ~models ~classes with
        | Ok r -> Serve.mt_tally r
        | Error e -> Alcotest.failf "mt_run failed: %s" (Serve.mt_error_to_string e)
      in
      Alcotest.(check string) "mt tally untouched by the lifecycle" plain
        (Serve.mt_tally r)

let test_mt_fail_open_and_validation () =
  let models, classes = Lazy.force mt_fixture in
  (match
     Serve.mt_run
       { mt_base with Serve.mt_workers = 1; mt_degraded_instances = [ 0 ] }
       ~models ~classes
   with
  | Error e -> Alcotest.failf "mt_run failed: %s" (Serve.mt_error_to_string e)
  | Ok r ->
      Alcotest.(check bool) "fail-open counted" true (r.Serve.mt_fail_open >= 1);
      Alcotest.(check int) "everything still served" 12 r.Serve.mt_served);
  let expect field cfg =
    match Serve.mt_run cfg ~models ~classes with
    | Error (Serve.Bad_config _) -> ()
    | Error e ->
        Alcotest.failf "%s: wrong error %s" field (Serve.mt_error_to_string e)
    | Ok _ -> Alcotest.failf "%s accepted" field
  in
  expect "id out of range"
    { mt_base with Serve.mt_workers = 2; mt_degraded_instances = [ 2 ] };
  expect "duplicate ids"
    { mt_base with Serve.mt_workers = 4; mt_degraded_instances = [ 0; 0 ] };
  expect "invalid health"
    {
      mt_base with
      Serve.mt_health = Some { serve_hcfg with Health.pass_threshold = 0 };
    }

let suites =
  [ ( "health",
      [ Alcotest.test_case "probation backoff escalation" `Quick
          test_backoff_escalation;
        Alcotest.test_case "lifecycle walkthrough" `Quick
          test_lifecycle_walkthrough;
        Alcotest.test_case "probe failures escalate the window" `Quick
          test_probe_failure_escalates;
        Alcotest.test_case "fault during probation relapses" `Quick
          test_fault_during_probation_relapses;
        Alcotest.test_case "faults while degraded ignored" `Quick
          test_faults_while_degraded_ignored;
        Alcotest.test_case "validate rejections" `Quick test_validate_rejections;
        prop_simulate_determinism;
      ] );
    ( "health:serve",
      [ Alcotest.test_case "degrade then readmit mid-run" `Quick
          test_degrade_then_readmit;
        Alcotest.test_case "tally invariant with health" `Quick
          test_tally_invariant_with_health;
        Alcotest.test_case "rejects bad health config" `Quick
          test_rejects_bad_health_config;
        Alcotest.test_case "fail-open counter" `Quick test_fail_open_counter;
        Alcotest.test_case "mt health lifecycle" `Quick test_mt_health_lifecycle;
        Alcotest.test_case "mt fail-open and validation" `Quick
          test_mt_fail_open_and_validation;
      ] );
    ( "health:campaign",
      [ Alcotest.test_case "curve over rate points" `Quick test_campaign_curve;
        Alcotest.test_case "tally invariant over fleet shape" `Quick
          test_campaign_tally_invariant;
        Alcotest.test_case "rejections" `Quick test_campaign_rejections;
      ] );
  ]
