(* Tests for depth-first fused layer pairs: planning arithmetic, peak-L2
   accounting, and bit-exactness of the striped executor against the
   sequential two-layer reference. *)

module Dtype = Tensor.Dtype
module L = Ir.Layer
module T = Tiling_fixtures

(* A chained pair: conv1 c->k1 (3x3 pad1), conv2 k1->k2 (3x3 pad1, optional
   stride). *)
let pair ?(c = 4) ?(k1 = 8) ?(k2 = 8) ?(hw = 16) ?(stride2 = 1) ?(seed = 61) () =
  let first = T.conv_layer ~c ~k:k1 ~hw ~f:3 ~pad:1 ~seed () in
  let second =
    T.conv_layer ~c:k1 ~k:k2 ~hw ~f:3 ~pad:1 ~stride:stride2 ~seed:(seed + 1) ()
  in
  (first, second)

(* Lay out input / output / weight / bias regions for a fused pair in a
   fresh L2, returning the memories and buffer map. *)
let setup_chain plan (first : L.t) =
  let l2 = Sim.Mem.create "L2" (Util.Ints.kib 512) in
  let l1 = Sim.Mem.create "L1" (Util.Ints.kib 256) in
  Sim.Mem.fill l1 0x3C;
  let numel s = Array.fold_left ( * ) 1 s in
  let out_off = numel first.L.in_shape in
  let w1_off = out_off + numel plan.Dory.Chain.second.L.out_shape in
  Sim.Mem.write_tensor l2 w1_off (Option.get first.L.weights);
  let b1_off = w1_off + Tensor.sim_bytes (Option.get first.L.weights) in
  Sim.Mem.write_tensor l2 b1_off (Option.get first.L.bias);
  let w2_off = b1_off + Tensor.sim_bytes (Option.get first.L.bias) in
  Sim.Mem.write_tensor l2 w2_off (Option.get plan.Dory.Chain.second.L.weights);
  let b2_off = w2_off + Tensor.sim_bytes (Option.get plan.Dory.Chain.second.L.weights) in
  Sim.Mem.write_tensor l2 b2_off (Option.get plan.Dory.Chain.second.L.bias);
  let buffers =
    { Sim.Exec_chain.in_offset = 0; out_offset = out_off; w1_offset = w1_off;
      b1_offset = b1_off; w2_offset = w2_off; b2_offset = b2_off }
  in
  (l2, l1, buffers)

let run_chain plan (first : L.t) _second input =
  let l2, l1, buffers = setup_chain plan first in
  Sim.Mem.write_tensor l2 0 input;
  let counters =
    Sim.Exec_chain.run ~platform:Arch.Diana.platform ~accel:Arch.Diana.digital ~l2 ~l1
      ~buffers plan
  in
  let out =
    Sim.Mem.read_tensor l2 buffers.Sim.Exec_chain.out_offset
      plan.Dory.Chain.second.L.out_dtype plan.Dory.Chain.second.L.out_shape
  in
  (out, counters)

let check_exact ?stripe_budget (first, second) seed =
  let budget = Option.value stripe_budget ~default:(Util.Ints.kib 256) in
  match Dory.Chain.plan ~l1_budget:budget first second with
  | Error e -> Alcotest.failf "plan failed: %s" e
  | Ok plan ->
      let input = Tensor.random (Util.Rng.create seed) first.L.in_dtype first.L.in_shape in
      let reference = L.execute second (L.execute first input) in
      let out, counters = run_chain plan first second input in
      if not (Tensor.equal reference out) then
        Alcotest.failf "fused pair differs (stripe=%d, %d stripes): max diff %d"
          plan.Dory.Chain.stripe_rows plan.Dory.Chain.stripes
          (Tensor.max_abs_diff reference out);
      (plan, counters)

let test_compatible () =
  let first, second = pair () in
  (match Dory.Chain.compatible first second with
  | Ok () -> ()
  | Error e -> Alcotest.failf "pair should chain: %s" e);
  let bad = T.conv_layer ~c:5 ~k:8 ~hw:16 () in
  (match Dory.Chain.compatible first bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "mismatched shapes accepted");
  match Dory.Chain.compatible first (T.dense_layer ()) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dense accepted in a conv chain"

let test_plan_stripe_fits_budget () =
  let first, second = pair ~hw:32 () in
  let budget = Util.Ints.kib 8 in
  let plan = Result.get_ok (Dory.Chain.plan ~l1_budget:budget first second) in
  Alcotest.(check bool) "stripe fits" true (Dory.Chain.l1_stripe_bytes plan <= budget);
  Alcotest.(check bool) "striped" true (plan.Dory.Chain.stripes > 1)

let test_plan_rejects_tiny_budget () =
  let first, second = pair ~hw:32 () in
  match Dory.Chain.plan ~l1_budget:128 first second with
  | Error e -> Alcotest.(check bool) "diagnosed" true (Helpers.contains e "no stripe")
  | Ok _ -> Alcotest.fail "expected no feasible stripe"

let test_exact_single_stripe () = ignore (check_exact (pair ()) 1)

let test_exact_striped () =
  let plan, _ = check_exact ~stripe_budget:(Util.Ints.kib 4) (pair ()) 2 in
  Alcotest.(check bool) "multiple stripes" true (plan.Dory.Chain.stripes > 1)

let test_exact_strided_second_layer () =
  ignore (check_exact ~stripe_budget:(Util.Ints.kib 4) (pair ~stride2:2 ()) 3)

let test_l2_peak_reduction () =
  let first, second = pair ~c:4 ~k1:32 ~k2:4 ~hw:16 () in
  let plan = Result.get_ok (Dory.Chain.plan ~l1_budget:(Util.Ints.kib 16) first second) in
  (* The fat 32-channel intermediate disappears from L2. *)
  Alcotest.(check bool) "fused peak smaller" true
    (Dory.Chain.l2_peak_fused plan < Dory.Chain.l2_peak_sequential plan);
  Alcotest.(check int) "fused peak = in + out"
    ((4 * 16 * 16) + (4 * 16 * 16))
    (Dory.Chain.l2_peak_fused plan)

let test_recompute_factor () =
  let first, second = pair ~hw:16 () in
  (* Tall stripes: no halo recompute. *)
  let whole = Result.get_ok (Dory.Chain.plan ~l1_budget:(Util.Ints.kib 256) first second) in
  Alcotest.(check (float 1e-9)) "single stripe has no recompute" 1.0
    (Dory.Chain.recompute_factor whole);
  (* Narrow stripes recompute halo rows. *)
  let striped = Result.get_ok (Dory.Chain.plan ~l1_budget:(Util.Ints.kib 3) first second) in
  Alcotest.(check bool) "striped recomputes" true
    (Dory.Chain.recompute_factor striped > 1.0)

(* A prep built once per chain must leave every run byte-identical to
   the fresh-allocation path — outputs and all counters — across
   repeated requests with different inputs (the arena-reuse contract),
   and must refuse to combine with fault injection or a foreign chain. *)
let test_prep_matches_fresh () =
  let first, second = pair ~hw:16 () in
  let plan = Result.get_ok (Dory.Chain.plan ~l1_budget:(Util.Ints.kib 4) first second) in
  Alcotest.(check bool) "striped (scratch actually reused)" true
    (plan.Dory.Chain.stripes > 1);
  let l2, l1, buffers = setup_chain plan first in
  let run ?prep input =
    Sim.Mem.write_tensor l2 0 input;
    let counters =
      Sim.Exec_chain.run ~platform:Arch.Diana.platform ~accel:Arch.Diana.digital
        ~l2 ~l1 ~buffers ?prep plan
    in
    let out =
      Sim.Mem.read_tensor l2 buffers.Sim.Exec_chain.out_offset
        plan.Dory.Chain.second.L.out_dtype plan.Dory.Chain.second.L.out_shape
    in
    (out, counters)
  in
  let prep = Sim.Exec_chain.prepare ~l2 ~buffers plan in
  List.iter
    (fun seed ->
      let input =
        Tensor.random (Util.Rng.create seed) first.L.in_dtype first.L.in_shape
      in
      let out_fresh, c_fresh = run input in
      let out_prep, c_prep = run ~prep input in
      if not (Tensor.equal out_fresh out_prep) then
        Alcotest.failf "prep output differs at seed %d: max diff %d" seed
          (Tensor.max_abs_diff out_fresh out_prep);
      List.iter2
        (fun (name, fresh) (_, prepped) ->
          Alcotest.(check int) (Printf.sprintf "seed %d: %s" seed name) fresh prepped)
        (Sim.Counters.fields c_fresh)
        (Sim.Counters.fields c_prep))
    [ 11; 12; 13 ];
  (* prep + faults: the slow path stays the fault oracle. *)
  let session =
    Fault.Session.create
      (Result.get_ok (Fault.Plan.of_string "seed=1,dma_in@every=2:flip"))
  in
  (match
     Sim.Exec_chain.run ~platform:Arch.Diana.platform ~accel:Arch.Diana.digital
       ~l2 ~l1 ~buffers ~faults:session ~prep plan
   with
  | _ -> Alcotest.fail "prep combined with faults was accepted"
  | exception Invalid_argument _ -> ());
  (* prep from another chain: physical identity enforced. *)
  let other =
    Result.get_ok (Dory.Chain.plan ~l1_budget:(Util.Ints.kib 4) first second)
  in
  match
    Sim.Exec_chain.run ~platform:Arch.Diana.platform ~accel:Arch.Diana.digital
      ~l2 ~l1 ~buffers ~prep other
  with
  | _ -> Alcotest.fail "foreign prep was accepted"
  | exception Invalid_argument _ -> ()

let prop_chain_exact =
  Helpers.qtest ~count:30 "fused pair exact over random geometry"
    QCheck.(quad (int_range 1 6) (int_range 1 10) (pair (int_range 1 10) (int_range 8 18)) int)
    (fun (c, k1, (k2, hw), seed) ->
      let first, second = pair ~c ~k1 ~k2 ~hw ~seed:(abs seed mod 1000) () in
      match Dory.Chain.plan ~l1_budget:(Util.Ints.kib 3) first second with
      | Error _ -> true
      | Ok plan ->
          let input =
            Tensor.random (Util.Rng.create seed) first.L.in_dtype first.L.in_shape
          in
          let reference = L.execute second (L.execute first input) in
          let out, _ = run_chain plan first second input in
          Tensor.equal reference out)

let suites =
  [ ( "depth-first-chain",
      [ Alcotest.test_case "compatible" `Quick test_compatible;
        Alcotest.test_case "plan fits budget" `Quick test_plan_stripe_fits_budget;
        Alcotest.test_case "plan rejects tiny budget" `Quick test_plan_rejects_tiny_budget;
        Alcotest.test_case "exact single stripe" `Quick test_exact_single_stripe;
        Alcotest.test_case "exact striped" `Quick test_exact_striped;
        Alcotest.test_case "exact strided second" `Quick test_exact_strided_second_layer;
        Alcotest.test_case "L2 peak reduction" `Quick test_l2_peak_reduction;
        Alcotest.test_case "recompute factor" `Quick test_recompute_factor;
        Alcotest.test_case "prep matches fresh allocation" `Quick
          test_prep_matches_fresh;
        prop_chain_exact;
      ] )
  ]
