(* The persistent content-addressed store: verified replay under every
   corruption we can synthesize (truncation, bit flips, version skew,
   foreign bytes), atomic concurrent writers, LRU gc, and the headline
   compile-level invariant — a warm compile is byte-identical to a cold
   one, and a corrupted entry is recomputed and overwritten, never
   served and never a crash. *)

let with_store f =
  let dir = Filename.temp_file "htvm-test-store" "" in
  Sys.remove dir;
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun n -> rm (Filename.concat path n)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm dir)
    (fun () -> f dir)

(* The on-disk file behind a key, located without touching the handle's
   counters: tier dir -> 2-hex shard -> digest file. *)
let entry_file root tier key =
  let digest = Digest.to_hex (Digest.string key) in
  Filename.concat
    (Filename.concat (Filename.concat (Filename.concat root "v1") tier)
       (String.sub digest 0 2))
    digest

let read_raw path = In_channel.with_open_bin path In_channel.input_all

let write_raw path contents =
  Out_channel.with_open_bin path (fun oc -> output_string oc contents)

let test_roundtrip_and_counters () =
  with_store (fun root ->
      let st = Store.open_root root in
      Alcotest.(check bool) "cold lookup misses" true
        (Store.find st Store.Layer ~key:"k" = None);
      Store.put st Store.Layer ~key:"k" "payload bytes\x00\xff";
      Alcotest.(check (option string)) "roundtrip"
        (Some "payload bytes\x00\xff")
        (Store.find st Store.Layer ~key:"k");
      (* Tiers are separate key spaces. *)
      Alcotest.(check bool) "other tier misses" true
        (Store.find st Store.Artifact ~key:"k" = None);
      Store.put st Store.Layer ~key:"k" "replaced";
      Alcotest.(check (option string)) "overwrite wins" (Some "replaced")
        (Store.find st Store.Layer ~key:"k");
      Alcotest.(check int) "hits" 2 (Store.hits st);
      Alcotest.(check int) "misses" 2 (Store.misses st);
      Alcotest.(check int) "rejects" 0 (Store.rejects st);
      (* A second handle on the same root sees the same entries: the
         store is shared across processes by construction. *)
      let st2 = Store.open_root root in
      Alcotest.(check (option string)) "second handle hits" (Some "replaced")
        (Store.find st2 Store.Layer ~key:"k"))

(* Each corruption must read as a reject (entry deleted), after which
   the key misses — the recompute-and-overwrite path. *)
let corruption_case name corrupt =
  ( name,
    fun () ->
      with_store (fun root ->
          let st = Store.open_root root in
          Store.put st Store.Artifact ~key:"model" "the artifact payload";
          let path = entry_file root "artifact" "model" in
          Alcotest.(check bool) (name ^ ": entry exists") true
            (Sys.file_exists path);
          corrupt path;
          Alcotest.(check bool) (name ^ ": rejected, not served") true
            (Store.find st Store.Artifact ~key:"model" = None);
          Alcotest.(check int) (name ^ ": reject counted") 1 (Store.rejects st);
          Alcotest.(check bool) (name ^ ": entry deleted") false
            (Sys.file_exists path);
          (* The caller recomputes and overwrites; the store serves the
             fresh entry again. *)
          Store.put st Store.Artifact ~key:"model" "recomputed";
          Alcotest.(check (option string)) (name ^ ": overwritten")
            (Some "recomputed")
            (Store.find st Store.Artifact ~key:"model")) )

let corruption_cases =
  [
    corruption_case "truncated" (fun path ->
        let raw = read_raw path in
        write_raw path (String.sub raw 0 (String.length raw - 3)));
    corruption_case "flipped byte" (fun path ->
        let raw = read_raw path in
        let b = Bytes.of_string raw in
        let i = String.length raw - 1 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        write_raw path (Bytes.to_string b));
    corruption_case "stale version header" (fun path ->
        let raw = read_raw path in
        (* Pretend the entry was written by an older format. *)
        let nl = String.index raw '\n' in
        let body = String.sub raw nl (String.length raw - nl) in
        write_raw path ("htvm-store v0 artifact deadbeef 20" ^ body));
    corruption_case "wrong tier header" (fun path ->
        let raw = read_raw path in
        let nl = String.index raw '\n' in
        let head = String.sub raw 0 nl in
        let body = String.sub raw nl (String.length raw - nl) in
        let swapped =
          String.split_on_char ' ' head
          |> List.map (fun w -> if w = "artifact" then "layer" else w)
          |> String.concat " "
        in
        write_raw path (swapped ^ body));
    corruption_case "foreign file" (fun path ->
        write_raw path "not a store entry at all\n");
    corruption_case "empty file" (fun path -> write_raw path "");
  ]

(* Concurrent writers racing the same key (separate domains, each with
   its own handle, like independent CLI invocations sharing a cache
   dir): writes are temp+rename atomic, so any interleaving leaves a
   complete, digest-valid entry — a reader never sees a torn one. *)
let test_concurrent_writers () =
  with_store (fun root ->
      let st = Store.open_root root in
      let payload = String.make 65536 'p' in
      let spawn () =
        Domain.spawn (fun () ->
            let writer = Store.open_root root in
            for _ = 1 to 25 do
              Store.put writer Store.Layer ~key:"raced" payload
            done)
      in
      let a = spawn () and b = spawn () in
      (* Read while both writers are racing: every observation must be
         absent or complete — never a torn entry. *)
      for _ = 1 to 50 do
        match Store.find st Store.Layer ~key:"raced" with
        | None -> ()
        | Some got ->
            Alcotest.(check bool) "mid-race read is complete" true
              (got = payload)
      done;
      Domain.join a;
      Domain.join b;
      Alcotest.(check int) "no rejects under race" 0 (Store.rejects st);
      Alcotest.(check (option string)) "settled entry valid" (Some payload)
        (Store.find st Store.Layer ~key:"raced"))

let test_verify_scan () =
  with_store (fun root ->
      let st = Store.open_root root in
      Store.put st Store.Layer ~key:"a" "aa";
      Store.put st Store.Layer ~key:"b" "bb";
      Store.put st Store.Artifact ~key:"c" "cc";
      let raw = read_raw (entry_file root "layer" "b") in
      write_raw (entry_file root "layer" "b")
        (String.sub raw 0 (String.length raw - 1));
      let ok, removed = Store.verify st in
      Alcotest.(check int) "ok" 2 ok;
      Alcotest.(check int) "removed" 1 removed;
      Alcotest.(check int) "reject counted" 1 (Store.rejects st);
      let index = read_raw (Filename.concat (Filename.concat root "v1") "index") in
      Alcotest.(check bool) "index header" true
        (String.length index >= 19
        && String.sub index 0 19 = "htvm-store-index v1");
      Alcotest.(check int) "index lists survivors" 2
        (List.length
           (List.filter
              (fun l -> l <> "" && not (String.length l > 10 && l.[0] = 'h'))
              (String.split_on_char '\n' index))))

let test_gc_lru () =
  with_store (fun root ->
      let st = Store.open_root root in
      let payload i = String.make 100 (Char.chr (Char.code 'a' + i)) in
      List.iteri
        (fun i key -> Store.put st Store.Layer ~key (payload i))
        [ "old"; "mid"; "new" ];
      (* Pin explicit mtimes so LRU order is deterministic. *)
      List.iteri
        (fun i key ->
          let t = float_of_int (1_000_000 + (i * 1000)) in
          Unix.utimes (entry_file root "layer" key) t t)
        [ "old"; "mid"; "new" ];
      let total = Store.total_bytes (Store.entries st) in
      (* Cap at just under the total: exactly one (the oldest) must go. *)
      let evicted = Store.gc st ~max_bytes:(total - 1) in
      Alcotest.(check int) "one evicted" 1 evicted;
      Alcotest.(check int) "eviction counted" 1 (Store.evictions st);
      Alcotest.(check bool) "oldest gone" true
        (Store.find st Store.Layer ~key:"old" = None);
      Alcotest.(check bool) "newer kept" true
        (Store.find st Store.Layer ~key:"mid" <> None
        && Store.find st Store.Layer ~key:"new" <> None);
      (* A hit refreshes recency: touch "mid", then shrink to one entry —
         "new" (now least recently used) is evicted, "mid" survives. *)
      Unix.utimes (entry_file root "layer" "new") 2_000_000. 2_000_000.;
      ignore (Store.find st Store.Layer ~key:"mid");
      let one = Store.total_bytes (Store.entries st) / 2 in
      ignore (Store.gc st ~max_bytes:one);
      Alcotest.(check bool) "LRU respects hit recency" true
        (Store.find st Store.Layer ~key:"mid" <> None
        && Store.find st Store.Layer ~key:"new" = None);
      ignore (Store.gc st ~max_bytes:0);
      Alcotest.(check bool) "cap 0 empties the store" true
        (Store.entries st = []))

(* --- compile-level integration --- *)

let zoo_graph name = (Models.Zoo.find name).Models.Zoo.build Models.Policy.Mixed

let compile_with store cfg g =
  match Htvm.Compile.compile ?store cfg g with
  | Ok a -> a
  | Error e -> Alcotest.failf "compile failed: %s" (Htvm.Compile.error_to_string e)

let test_warm_compile_byte_identical () =
  with_store (fun root ->
      let g = zoo_graph "resnet8" in
      let cfg = Htvm.Compile.default_config Arch.Diana.platform in
      let cold_st = Store.open_root root in
      let cold = compile_with (Some cold_st) cfg g in
      Alcotest.(check int) "cold run hits nothing" 0 (Store.hits cold_st);
      let warm_st = Store.open_root root in
      let warm = compile_with (Some warm_st) cfg g in
      Alcotest.(check bool) "warm run hit the artifact tier" true
        (Store.hits warm_st > 0);
      Alcotest.(check string) "byte-identical artifact digest"
        (Htvm.Compile.artifact_digest cold)
        (Htvm.Compile.artifact_digest warm);
      Alcotest.(check bool) "same solver stats" true
        (cold.Htvm.Compile.solver = warm.Htvm.Compile.solver);
      (* The replayed artifact must also *run* identically. *)
      let inputs = Models.Zoo.random_input ~seed:5 g in
      let out_c, rep_c = Htvm.Compile.run cold ~inputs in
      let out_w, rep_w = Htvm.Compile.run warm ~inputs in
      Alcotest.(check bool) "same output" true (Tensor.equal out_c out_w);
      Alcotest.(check int) "same cycles"
        (Htvm.Compile.full_cycles rep_c)
        (Htvm.Compile.full_cycles rep_w);
      (* An uncached compile agrees too: the store changes nothing. *)
      let plain = compile_with None cfg g in
      Alcotest.(check string) "store changes nothing"
        (Htvm.Compile.artifact_digest plain)
        (Htvm.Compile.artifact_digest cold))

let test_warm_compile_across_zoo () =
  with_store (fun root ->
      List.iter
        (fun (entry : Models.Zoo.entry) ->
          let g = entry.Models.Zoo.build Models.Policy.Mixed in
          let cfg = Htvm.Compile.default_config Arch.Diana.platform in
          match Htvm.Compile.compile ~store:(Store.open_root root) cfg g with
          | Error _ -> ()  (* a legitimate resource rejection is not cached *)
          | Ok cold ->
              let warm_st = Store.open_root root in
              let warm = compile_with (Some warm_st) cfg g in
              Alcotest.(check bool)
                (entry.Models.Zoo.model_name ^ ": warm hit") true
                (Store.hits warm_st > 0);
              Alcotest.(check string)
                (entry.Models.Zoo.model_name ^ ": digest")
                (Htvm.Compile.artifact_digest cold)
                (Htvm.Compile.artifact_digest warm))
        Models.Zoo.all)

(* Corrupt every stored entry between a cold and a warm compile: the
   warm compile must silently recompute (rejects counted), produce the
   identical artifact, and leave the store repaired. *)
let test_corrupt_entries_recomputed () =
  with_store (fun root ->
      let g = zoo_graph "resnet8" in
      let cfg = Htvm.Compile.default_config Arch.Diana.platform in
      let cold = compile_with (Some (Store.open_root root)) cfg g in
      let st = Store.open_root root in
      let entries = Store.entries st in
      Alcotest.(check bool) "store populated" true (List.length entries > 1);
      List.iter
        (fun (e : Store.entry) ->
          let tier =
            match e.Store.e_tier with
            | Store.Layer -> "layer"
            | Store.Artifact -> "artifact"
          in
          let path =
            Filename.concat
              (Filename.concat
                 (Filename.concat (Filename.concat root "v1") tier)
                 (String.sub e.Store.e_digest 0 2))
              e.Store.e_digest
          in
          let raw = read_raw path in
          let b = Bytes.of_string raw in
          let i = Bytes.length b / 2 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
          write_raw path (Bytes.to_string b))
        entries;
      let warm_st = Store.open_root root in
      let warm = compile_with (Some warm_st) cfg g in
      Alcotest.(check bool) "corruption rejected" true
        (Store.rejects warm_st > 0);
      Alcotest.(check string) "recomputed artifact byte-identical"
        (Htvm.Compile.artifact_digest cold)
        (Htvm.Compile.artifact_digest warm);
      (* Overwritten: a third compile is a clean artifact-tier hit. *)
      let third_st = Store.open_root root in
      let third = compile_with (Some third_st) cfg g in
      Alcotest.(check bool) "store repaired" true (Store.hits third_st > 0);
      Alcotest.(check int) "no rejects after repair" 0 (Store.rejects third_st);
      Alcotest.(check string) "repaired artifact byte-identical"
        (Htvm.Compile.artifact_digest cold)
        (Htvm.Compile.artifact_digest third))

(* Version skew: a different code version must never serve this one's
   entries — the key embeds the version, so it reads as a plain miss. *)
let test_version_skew_is_a_miss () =
  with_store (fun root ->
      let g = zoo_graph "resnet8" in
      let cfg = Htvm.Compile.default_config Arch.Diana.platform in
      let key = Htvm.Compile.artifact_store_key cfg g in
      let st = Store.open_root root in
      Store.put st Store.Artifact ~key:("skewed-version:" ^ key) "old bytes";
      let warm_st = Store.open_root root in
      let a = compile_with (Some warm_st) cfg g in
      Alcotest.(check bool) "skewed entry never consulted as a hit" true
        (Store.hits warm_st = 0);
      ignore a)

(* qcheck: cold vs warm byte-identity over fuzzed graph/config pairs,
   including configs with the in-process solver cache on. *)
let prop_cold_warm_identical =
  Helpers.qtest ~count:12 "cold vs warm compile byte-identical (fuzzed)"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      with_store (fun root ->
          let g = Check.Gen.generate seed in
          let cfg = Check.Gen.random_config seed in
          match Htvm.Compile.compile ~store:(Store.open_root root) cfg g with
          | Error _ -> true
          | Ok cold -> (
              let warm_st = Store.open_root root in
              match Htvm.Compile.compile ~store:warm_st cfg g with
              | Error _ -> false
              | Ok warm ->
                  Store.hits warm_st > 0
                  && Htvm.Compile.artifact_digest cold
                     = Htvm.Compile.artifact_digest warm)))

let suites =
  [ ( "store",
      [
        Alcotest.test_case "roundtrip and counters" `Quick
          test_roundtrip_and_counters;
      ]
      @ List.map
          (fun (name, f) ->
            Alcotest.test_case ("corrupt entry: " ^ name) `Quick f)
          corruption_cases
      @ [
          Alcotest.test_case "concurrent writers" `Quick test_concurrent_writers;
          Alcotest.test_case "verify scan" `Quick test_verify_scan;
          Alcotest.test_case "gc is LRU by mtime" `Quick test_gc_lru;
          Alcotest.test_case "warm compile byte-identical" `Quick
            test_warm_compile_byte_identical;
          Alcotest.test_case "warm compile across the zoo" `Quick
            test_warm_compile_across_zoo;
          Alcotest.test_case "corrupt entries recomputed" `Quick
            test_corrupt_entries_recomputed;
          Alcotest.test_case "version skew is a miss" `Quick
            test_version_skew_is_a_miss;
          prop_cold_warm_identical;
        ] )
  ]
