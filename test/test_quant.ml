(* Tests for lib/quant: float reference semantics, power-of-two PTQ,
   accuracy (SQNR) of the quantized graphs, and end-to-end deployment of a
   quantized float model through the whole HTVM flow. *)

let sample_inputs m n seed =
  let rng = Util.Rng.create seed in
  List.init n (fun _ -> Quant.Ftensor.random rng ~scale:1.0 m.Quant.Fmodel.f_input_shape)

let quantize_exn ?ternary m ~seed =
  let calibration = sample_inputs m 8 seed in
  match Quant.Quantize.quantize ?ternary ~calibration m with
  | Ok r -> r
  | Error e -> Alcotest.failf "quantize failed: %s" e

(* --- Ftensor --- *)

let test_ftensor_basics () =
  let t = Quant.Ftensor.of_array [| 2; 2 |] [| 1.0; -2.0; 3.0; -4.5 |] in
  Alcotest.(check (float 1e-9)) "get" (-4.5) (Quant.Ftensor.get t [| 1; 1 |]);
  Alcotest.(check (float 1e-9)) "abs max" 4.5 (Quant.Ftensor.abs_max t);
  let m = Quant.Ftensor.map (fun v -> v *. 2.0) t in
  Alcotest.(check (float 1e-9)) "map" 6.0 (Quant.Ftensor.get m [| 1; 0 |])

let test_sqnr () =
  let a = Quant.Ftensor.of_array [| 3 |] [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check bool) "identical = inf" true
    (Quant.Ftensor.sqnr_db ~reference:a a = infinity);
  let b = Quant.Ftensor.of_array [| 3 |] [| 1.1; 2.0; 3.0 |] in
  let db = Quant.Ftensor.sqnr_db ~reference:a b in
  Alcotest.(check bool) "noisy is finite positive" true (db > 0.0 && db < 100.0)

(* --- Fmodel --- *)

let test_fmodel_infer_shapes () =
  let m = Quant.Fmodel.random_cnn () in
  (match Quant.Fmodel.validate m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid model: %s" e);
  let x = Quant.Ftensor.random (Util.Rng.create 1) m.Quant.Fmodel.f_input_shape in
  let y = Quant.Fmodel.infer m x in
  Alcotest.(check (list int)) "5 classes" [ 5 ] (Array.to_list (Quant.Ftensor.dims y));
  let all = Quant.Fmodel.infer_all m x in
  Alcotest.(check int) "one activation per layer" 6 (List.length all)

let test_fmodel_relu_applied () =
  let w = Quant.Ftensor.of_array [| 1; 1 |] [| -1.0 |] in
  let m =
    {
      Quant.Fmodel.f_input_shape = [| 1 |];
      f_layers = [ Quant.Fmodel.Dense { w; bias = [| 0.0 |]; relu = true } ];
    }
  in
  let y = Quant.Fmodel.infer m (Quant.Ftensor.of_array [| 1 |] [| 5.0 |]) in
  Alcotest.(check (float 1e-9)) "relu clamps" 0.0 (Quant.Ftensor.get_flat y 0)

(* --- Quantizer --- *)

let test_quantized_graph_is_valid_and_matchable () =
  let m = Quant.Fmodel.random_cnn () in
  let g, _ = quantize_exn m ~seed:3 in
  (match Ir.Graph.validate g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid graph: %s" e);
  (* The quantizer must emit the Listing-1 idiom the pattern matcher
     understands: all convs and denses end up offloadable. *)
  let plan =
    Byoc.Partition.run (Ir.Rewrite.simplify g)
      ~targets:
        [
          {
            Byoc.Partition.name = "diana_digital";
            patterns = Byoc.Library.all;
            accept = Arch.Diana.digital.Arch.Accel.supports;
            priority = 1;
            estimate = None;
          };
        ]
  in
  Alcotest.(check int) "3 offloadable layers" 3 (Byoc.Partition.offload_count plan)

let accuracy_check ?ternary m ~seed ~min_db =
  let g, meta = quantize_exn ?ternary m ~seed in
  let x = Quant.Ftensor.random (Util.Rng.create (seed + 99)) m.Quant.Fmodel.f_input_shape in
  let reference = Quant.Fmodel.infer m x in
  let qout = Ir.Eval.run g ~inputs:[ ("input", Quant.Quantize.quantize_input meta x) ] in
  let deq = Quant.Quantize.dequantize_output meta qout in
  let db = Quant.Ftensor.sqnr_db ~reference deq in
  if db < min_db then Alcotest.failf "SQNR too low: %.1f dB < %.1f dB" db min_db

let test_int8_cnn_accuracy () =
  accuracy_check (Quant.Fmodel.random_cnn ()) ~seed:5 ~min_db:15.0

let test_int8_mlp_accuracy () =
  accuracy_check (Quant.Fmodel.random_mlp ()) ~seed:6 ~min_db:15.0

let test_ternary_cnn_accuracy () =
  (* Ternary weights are lossy; just require usable signal. *)
  accuracy_check ~ternary:true (Quant.Fmodel.random_cnn ()) ~seed:7 ~min_db:2.0

let test_meta_scales_power_of_two () =
  let _, meta = quantize_exn (Quant.Fmodel.random_cnn ()) ~seed:8 in
  let is_pow2 v = Float.log2 v = Float.round (Float.log2 v) in
  Alcotest.(check bool) "input scale 2^n" true (is_pow2 meta.Quant.Quantize.input_scale);
  Alcotest.(check bool) "output scale 2^n" true (is_pow2 meta.Quant.Quantize.output_scale)

let test_empty_calibration_rejected () =
  match Quant.Quantize.quantize ~calibration:[] (Quant.Fmodel.random_cnn ()) with
  | Error e -> Alcotest.(check bool) "diagnosed" true (Helpers.contains e "calibration")
  | Ok _ -> Alcotest.fail "expected error"

let test_zero_calibration_rejected () =
  let m = Quant.Fmodel.random_mlp () in
  let zero = Quant.Ftensor.create m.Quant.Fmodel.f_input_shape in
  match Quant.Quantize.quantize ~calibration:[ zero ] m with
  | Error e -> Alcotest.(check bool) "diagnosed" true (Helpers.contains e "zero")
  | Ok _ -> Alcotest.fail "expected error"

let test_quantized_model_deploys_end_to_end () =
  (* Float model -> PTQ -> HTVM compile -> simulated DIANA, bit-exact
     against the interpreter: the whole paper pipeline from a float net. *)
  let m = Quant.Fmodel.random_cnn () in
  let g, meta = quantize_exn m ~seed:10 in
  let cfg = Htvm.Compile.default_config Arch.Diana.digital_only in
  match Htvm.Compile.compile cfg g with
  | Error e -> Alcotest.failf "compile failed: %s" (Htvm.Compile.error_to_string e)
  | Ok artifact ->
      let x = Quant.Ftensor.random (Util.Rng.create 11) m.Quant.Fmodel.f_input_shape in
      let qx = Quant.Quantize.quantize_input meta x in
      let out, _ = Htvm.Compile.run artifact ~inputs:[ ("input", qx) ] in
      Helpers.check_tensor "simulated == interpreted"
        (Ir.Eval.run g ~inputs:[ ("input", qx) ])
        out

let prop_quantizer_monotone_requants =
  (* Every emitted right_shift amount is non-negative (shifts can only
     divide) — required for exactness of the asr requant idiom. *)
  Helpers.qtest ~count:20 "all shifts non-negative" QCheck.(int_range 0 1000)
    (fun seed ->
      let m = Quant.Fmodel.random_cnn ~seed () in
      let g, _ = quantize_exn m ~seed in
      List.for_all
        (fun id ->
          match Ir.Graph.node g id with
          | Ir.Graph.App { op = Ir.Op.Right_shift; args = [ _; s ] } -> (
              match Ir.Graph.node g s with
              | Ir.Graph.Const t -> Tensor.get_flat t 0 >= 0
              | _ -> false)
          | _ -> true)
        (Ir.Graph.node_ids g))

let test_ftext_roundtrip () =
  List.iter
    (fun m ->
      match Quant.Ftext.of_string (Quant.Ftext.to_string m) with
      | Error e -> Alcotest.failf "float model round-trip failed: %s" e
      | Ok m' ->
          (* Bit-exact float payloads: inference agrees exactly. *)
          let x = Quant.Ftensor.random (Util.Rng.create 9) m.Quant.Fmodel.f_input_shape in
          let a = Quant.Fmodel.infer m x and b = Quant.Fmodel.infer m' x in
          let db = Quant.Ftensor.sqnr_db ~reference:a b in
          if db <> infinity then Alcotest.failf "payload not bit-exact (%.1f dB)" db)
    [ Quant.Fmodel.random_cnn (); Quant.Fmodel.random_mlp () ]

let test_ftext_diagnostics () =
  (match Quant.Ftext.of_string "nope" with
  | Error e -> Alcotest.(check bool) "header" true (Helpers.contains e "header")
  | Ok _ -> Alcotest.fail "bad header accepted");
  match Quant.Ftext.of_string "htvm-fmodel v1\ninput 4\nwarp 9\n" with
  | Error e -> Alcotest.(check bool) "unknown layer" true (Helpers.contains e "unknown layer")
  | Ok _ -> Alcotest.fail "unknown layer accepted"

let suites =
  [ ( "quant",
      [ Alcotest.test_case "ftensor basics" `Quick test_ftensor_basics;
        Alcotest.test_case "sqnr" `Quick test_sqnr;
        Alcotest.test_case "fmodel shapes" `Quick test_fmodel_infer_shapes;
        Alcotest.test_case "fmodel relu" `Quick test_fmodel_relu_applied;
        Alcotest.test_case "quantized graph matchable" `Quick
          test_quantized_graph_is_valid_and_matchable;
        Alcotest.test_case "int8 cnn accuracy" `Quick test_int8_cnn_accuracy;
        Alcotest.test_case "int8 mlp accuracy" `Quick test_int8_mlp_accuracy;
        Alcotest.test_case "ternary cnn accuracy" `Quick test_ternary_cnn_accuracy;
        Alcotest.test_case "pow2 scales" `Quick test_meta_scales_power_of_two;
        Alcotest.test_case "empty calibration" `Quick test_empty_calibration_rejected;
        Alcotest.test_case "zero calibration" `Quick test_zero_calibration_rejected;
        Alcotest.test_case "float->PTQ->DIANA end to end" `Quick
          test_quantized_model_deploys_end_to_end;
        Alcotest.test_case "ftext roundtrip" `Quick test_ftext_roundtrip;
        Alcotest.test_case "ftext diagnostics" `Quick test_ftext_diagnostics;
        prop_quantizer_monotone_requants;
      ] )
  ]
