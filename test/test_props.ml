(* Additional cross-module property tests: solver feasibility/determinism,
   schedule weight-reload arithmetic, planner strategy ordering, fusion
   coverage, and serialization fixpoints. *)

module Tile = Arch.Tile
module T = Tiling_fixtures

let digital = Arch.Diana.digital

let prop_solution_always_feasible =
  Helpers.qtest ~count:80 "solver output is feasible"
    QCheck.(quad (int_range 1 24) (int_range 1 24) (int_range 4 24) (int_range 2 64))
    (fun (c, k, hw, budget_kib) ->
      let layer = T.conv_layer ~c ~k ~hw ~f:3 ~pad:1 () in
      let cfg = Dory.Tiling.default_config ~l1_budget:(Util.Ints.kib budget_kib) in
      match Dory.Tiling.solve cfg digital layer with
      | Error _ -> true
      | Ok s -> Dory.Tiling.feasible cfg digital layer s.Dory.Tiling.tile)

let prop_solver_deterministic =
  Helpers.qtest ~count:40 "solver is deterministic"
    QCheck.(pair (int_range 1 16) (int_range 2 32))
    (fun (k, budget_kib) ->
      let layer = T.conv_layer ~c:8 ~k ~hw:16 () in
      let cfg = Dory.Tiling.default_config ~l1_budget:(Util.Ints.kib budget_kib) in
      Dory.Tiling.solve cfg digital layer = Dory.Tiling.solve cfg digital layer)

let prop_weight_reloads_match_k_blocks =
  Helpers.qtest ~count:60 "one weight reload per k block"
    QCheck.(quad (int_range 1 16) (int_range 1 16) (int_range 1 8) (int_range 1 8))
    (fun (k, kt, oyt, oxt) ->
      let layer = T.conv_layer ~c:4 ~k ~hw:8 () in
      let full = Tile.full layer in
      let tile =
        Tile.for_layer layer ~c:4 ~k:(min kt full.Tile.k) ~oy:(min oyt full.Tile.oy)
          ~ox:(min oxt full.Tile.ox)
      in
      let s = Dory.Schedule.build layer ~accel_name:"d" ~tile ~double_buffer:true in
      let reloads =
        List.length
          (List.filter (fun i -> i.Dory.Schedule.load_weights) s.Dory.Schedule.instances)
      in
      reloads = Util.Ints.ceil_div full.Tile.k tile.Tile.k)

let prop_no_reuse_peak_dominates =
  Helpers.qtest ~count:80 "no-reuse peak >= reuse peak"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 12) (triple (int_range 1 300) (int_range 0 7) (int_range 0 7)))
    (fun specs ->
      let reqs =
        List.mapi
          (fun i (bytes, a, b) ->
            { Dory.Memplan.buffer_id = i; bytes; birth = min a b; death = max a b })
          specs
      in
      match
        ( Dory.Memplan.plan Dory.Memplan.Reuse ~capacity:1_000_000 ~align:4 reqs,
          Dory.Memplan.plan Dory.Memplan.No_reuse ~capacity:1_000_000 ~align:4 reqs )
      with
      | Ok r, Ok n -> n.Dory.Memplan.peak_bytes >= r.Dory.Memplan.peak_bytes
      | _ -> false)

let prop_fusion_partitions_host_nodes =
  Helpers.qtest ~count:40 "fused kernels partition the host pool"
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let g = Check.Gen.generate seed in
      let tys = Ir.Infer.infer g in
      let host =
        List.filter
          (fun id -> match Ir.Graph.node g id with Ir.Graph.App _ -> true | _ -> false)
          (Ir.Graph.node_ids g)
      in
      let kernels =
        Codegen.Fuse.kernels ~cpu:Arch.Diana.cpu
          ~size:Arch.Diana.platform.Arch.Platform.size_model g tys ~host_nodes:host
      in
      let covered =
        List.concat_map (fun k -> k.Codegen.Fuse.nodes) kernels |> List.sort compare
      in
      covered = List.sort compare host)

let prop_text_print_parse_fixpoint =
  Helpers.qtest ~count:30 "print . parse . print is a fixpoint"
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let g = Check.Gen.generate seed in
      let s1 = Ir.Text.to_string g in
      match Ir.Text.of_string s1 with
      | Error _ -> false
      | Ok g' -> Ir.Text.to_string g' = s1)

let prop_chain_plan_fits =
  Helpers.qtest ~count:40 "chain stripes fit their budget"
    QCheck.(pair (int_range 2 12) (int_range 2 48))
    (fun (k, budget_kib) ->
      let first = T.conv_layer ~c:4 ~k ~hw:16 ~f:3 ~pad:1 () in
      let second = T.conv_layer ~c:k ~k:4 ~hw:16 ~f:3 ~pad:1 ~seed:99 () in
      match Dory.Chain.plan ~l1_budget:(Util.Ints.kib budget_kib) first second with
      | Error _ -> true
      | Ok plan -> Dory.Chain.l1_stripe_bytes plan <= Util.Ints.kib budget_kib)

let prop_tune_speedup_bounded =
  Helpers.qtest ~count:30 "tuning speedup is sane (1x..10x)"
    QCheck.(pair (int_range 2 24) (int_range 2 24))
    (fun (c, k) ->
      let layer = T.conv_layer ~c ~k ~hw:12 () in
      let r = Tune.Search.tune ~seed:(c + k) ~budget:48 ~device:Tune.Device.xpulpv2 layer in
      let s = Tune.Search.speedup r in
      s >= 1.0 && s < 10.0)

let suites =
  [ ( "cross-properties",
      [ prop_solution_always_feasible;
        prop_solver_deterministic;
        prop_weight_reloads_match_k_blocks;
        prop_no_reuse_peak_dominates;
        prop_fusion_partitions_host_nodes;
        prop_text_print_parse_fixpoint;
        prop_chain_plan_fits;
        prop_tune_speedup_bounded;
      ] )
  ]
