(* The engine determinism contract: parallel (jobs > 1), cached, and
   pruned compilation must be behaviorally invisible — artifacts, report
   JSON and trace payloads byte-identical to a sequential, uncached,
   run (and pruned search must choose the same tiles as exhaustive). *)

module C = Htvm.Compile

(* An 8 kB L1 forces the zoo's layers through the tiler, so the solver
   paths (pruning, fan-out, cache) actually run. *)
let constrained platform =
  {
    platform with
    Arch.Platform.l1 = { Arch.Memory.level_name = "L1"; size_bytes = Util.Ints.kib 8 };
  }

let compile_exn cfg g =
  match C.compile cfg g with
  | Ok a -> a
  | Error e -> Alcotest.failf "compile failed: %s" (C.error_to_string e)

(* Everything deterministic about a trace: payloads modulo timestamps. *)
let event_payloads trace =
  List.map
    (fun (e : Trace.event) -> (e.Trace.ev_name, e.Trace.ev_cat, e.Trace.ev_args))
    (Trace.events trace)

let solve_payloads trace =
  List.filter (fun (n, _, _) -> n = "tiling.solve") (event_payloads trace)

let report_of g artifact =
  let _, r = C.run artifact ~inputs:(Models.Zoo.random_input g) in
  Htvm.Report.to_json artifact r

(* jobs=2/4 with a cache vs sequential uncached, across the zoo: same C
   source, same report JSON, same tiling.solve trace payloads. *)
let test_zoo_parallel_identical () =
  List.iter
    (fun (e : Models.Zoo.entry) ->
      let g = e.Models.Zoo.build Models.Policy.Mixed in
      let base_cfg = C.default_config (constrained Arch.Diana.platform) in
      let trace_seq = Trace.create () in
      let seq = compile_exn { base_cfg with C.jobs = 1 } g in
      ignore (C.compile ~trace:trace_seq { base_cfg with C.jobs = 1 } g);
      List.iter
        (fun jobs ->
          let trace_par = Trace.create () in
          let cfg =
            {
              base_cfg with
              C.jobs;
              solver_cache = Some (Dory.Tiling_cache.create ());
            }
          in
          let par = compile_exn cfg g in
          ignore (C.compile ~trace:trace_par cfg g);
          Alcotest.(check string)
            (Printf.sprintf "%s: c_source at jobs=%d" e.Models.Zoo.model_name jobs)
            seq.C.c_source par.C.c_source;
          Alcotest.(check string)
            (Printf.sprintf "%s: report JSON at jobs=%d" e.Models.Zoo.model_name jobs)
            (report_of g seq) (report_of g par);
          Alcotest.(check bool)
            (Printf.sprintf "%s: tiling.solve payloads at jobs=%d"
               e.Models.Zoo.model_name jobs)
            true
            (solve_payloads trace_seq = solve_payloads trace_par))
        [ 2; 4 ])
    Models.Zoo.all

(* Pruned search must reproduce exhaustive search bit-for-bit: same tiles,
   same objectives, same artifact — with fewer candidates tested. *)
let test_pruned_matches_exhaustive () =
  List.iter
    (fun (e : Models.Zoo.entry) ->
      let g = e.Models.Zoo.build Models.Policy.Mixed in
      let base = C.default_config (constrained Arch.Diana.platform) in
      let trace_ex = Trace.create () in
      let ex =
        compile_exn { base with C.exhaustive_tiling = true } g
      in
      ignore (C.compile ~trace:trace_ex { base with C.exhaustive_tiling = true } g);
      let trace_pr = Trace.create () in
      let pr = compile_exn base g in
      ignore (C.compile ~trace:trace_pr base g);
      Alcotest.(check string)
        (e.Models.Zoo.model_name ^ ": same C source")
        ex.C.c_source pr.C.c_source;
      let choices tr =
        List.map
          (fun (_, _, args) ->
            (List.assoc_opt "tile" args, List.assoc_opt "objective" args))
          (solve_payloads tr)
      in
      Alcotest.(check bool)
        (e.Models.Zoo.model_name ^ ": same tiles and objectives")
        true
        (choices trace_ex = choices trace_pr);
      Alcotest.(check bool)
        (e.Models.Zoo.model_name ^ ": pruning explores no more than exhaustive")
        true
        (pr.C.solver.C.ss_explored <= ex.C.solver.C.ss_explored))
    Models.Zoo.all

(* The cache is a pure memo: a second compile through the same cache hits
   on every segment and still produces the identical artifact. *)
let test_cache_hits_and_identity () =
  let e = Models.Zoo.find Models.Resnet8.name in
  let g = e.Models.Zoo.build Models.Policy.Mixed in
  let cache = Dory.Tiling_cache.create () in
  let cfg =
    {
      (C.default_config (constrained Arch.Diana.platform)) with
      C.solver_cache = Some cache;
    }
  in
  let cold = compile_exn cfg g in
  let offloads = cold.C.solver.C.ss_cache_hits + cold.C.solver.C.ss_cache_misses in
  Alcotest.(check bool) "cold run has misses" true (cold.C.solver.C.ss_cache_misses > 0);
  let warm = compile_exn cfg g in
  Alcotest.(check int) "warm run all hits" offloads warm.C.solver.C.ss_cache_hits;
  Alcotest.(check int) "warm run no misses" 0 warm.C.solver.C.ss_cache_misses;
  Alcotest.(check string) "identical C source" cold.C.c_source warm.C.c_source;
  Alcotest.(check string) "identical report" (report_of g cold) (report_of g warm);
  (* The report JSON never leaks cache state, so cached and uncached
     compilations agree byte-for-byte too. *)
  let uncached = compile_exn { cfg with C.solver_cache = None } g in
  Alcotest.(check string) "cache invisible in report" (report_of g uncached)
    (report_of g warm)

(* Solver work (not per-solve stats) is what the cache eliminates. *)
let test_cache_skips_work () =
  let e = Models.Zoo.find Models.Resnet8.name in
  let g = e.Models.Zoo.build Models.Policy.Mixed in
  let cache = Dory.Tiling_cache.create () in
  let cfg =
    {
      (C.default_config (constrained Arch.Diana.platform)) with
      C.solver_cache = Some cache;
    }
  in
  ignore (compile_exn cfg g);
  Dory.Tiling.reset_solver_work ();
  ignore (compile_exn cfg g);
  let w = Dory.Tiling.solver_work () in
  Alcotest.(check int) "warm compile solves nothing" 0 w.Dory.Tiling.solves;
  Alcotest.(check int) "warm compile tests nothing" 0 w.Dory.Tiling.tests

(* Fuzzed graphs and configs: whatever engine knobs the generator picked,
   forcing jobs=4 + cache + pruning must not change the artifact. *)
let test_fuzz_graphs_identical () =
  for seed = 1 to 25 do
    let g = Check.Gen.generate seed in
    let cfg = Check.Gen.random_config seed in
    (* Vary only jobs and cache: the report surfaces solver search totals,
       which (by design) differ between exhaustive and pruned search, so
       the exhaustive flag stays whatever the generator picked. *)
    let seq_cfg = { cfg with C.jobs = 1; solver_cache = None } in
    let par_cfg =
      { cfg with C.jobs = 4; solver_cache = Some (Dory.Tiling_cache.create ()) }
    in
    match (C.compile seq_cfg g, C.compile par_cfg g) with
    | Ok a, Ok b ->
        Alcotest.(check string)
          (Printf.sprintf "seed %d: c_source" seed)
          a.C.c_source b.C.c_source;
        Alcotest.(check string)
          (Printf.sprintf "seed %d: report" seed)
          (report_of g a) (report_of g b)
    | Error ea, Error eb ->
        Alcotest.(check string)
          (Printf.sprintf "seed %d: same error" seed)
          (C.error_to_string ea) (C.error_to_string eb)
    | Ok _, Error e | Error e, Ok _ ->
        Alcotest.failf "seed %d: engines disagree on compilability: %s" seed
          (C.error_to_string e)
  done

let suites =
  [ ( "parallel-engine",
      [ Alcotest.test_case "zoo: parallel+cache identical" `Slow
          test_zoo_parallel_identical;
        Alcotest.test_case "pruned = exhaustive choices" `Slow
          test_pruned_matches_exhaustive;
        Alcotest.test_case "cache hits and identity" `Quick test_cache_hits_and_identity;
        Alcotest.test_case "cache skips solver work" `Quick test_cache_skips_work;
        Alcotest.test_case "fuzz: engines agree" `Slow test_fuzz_graphs_identical;
      ] )
  ]
