(* Tests for the conformance subsystem's plumbing: verdict taxonomy,
   resource classification, reproducer files, and the fuzz driver's
   bookkeeping. (The heavy differential sweeps live in test_fuzz.ml;
   shrinker behaviour in test_shrink.ml; snapshots in test_golden.ml.) *)

module B = Ir.Graph.Builder
module C = Htvm.Compile

(* input -> 3x3 conv -> requant: the smallest graph the whole flow
   accepts. *)
let tiny_graph () =
  let b = B.create () in
  let x = B.input b ~name:"x" Tensor.Dtype.I8 [| 2; 6; 6 |] in
  let rng = Util.Rng.create 3 in
  let w = B.const b (Tensor.random rng Tensor.Dtype.I8 [| 4; 2; 3; 3 |]) in
  let conv = B.conv2d b ~padding:(1, 1) x ~weights:w in
  let q = B.requantize b ~relu:true ~shift:8 ~out_dtype:Tensor.Dtype.I8 conv in
  B.finish b ~output:q

let test_pass_verdict () =
  let cfg = C.default_config Arch.Diana.platform in
  match Check.run_case cfg (tiny_graph ()) with
  | Check.Pass { wall_cycles } ->
      Alcotest.(check bool) "counted cycles" true (wall_cycles > 0)
  | v -> Alcotest.failf "expected Pass, got %s" (Check.describe v)

let test_resource_verdict_is_not_failure () =
  (* Starve L2 so compilation must produce a typed resource diagnosis. *)
  let p = Arch.Diana.platform in
  let platform =
    { p with Arch.Platform.l2 = { p.Arch.Platform.l2 with Arch.Memory.size_bytes = 64 } }
  in
  let cfg = C.default_config platform in
  match Check.run_case cfg (tiny_graph ()) with
  | Check.Resource e as v ->
      Alcotest.(check bool) "typed resource error" true (C.is_resource_error e);
      Alcotest.(check bool) "not a failure" false (Check.is_failure v);
      Alcotest.(check bool) "classed as resource" true
        (String.length (Check.class_of v) >= 9
        && String.sub (Check.class_of v) 0 9 = "resource:")
  | v -> Alcotest.failf "expected Resource, got %s" (Check.describe v)

let test_empty_graph_is_reject () =
  let b = B.create () in
  let x = B.input b ~name:"x" Tensor.Dtype.I8 [| 1; 4; 4 |] in
  let g = B.finish b ~output:x in
  let cfg = C.default_config Arch.Diana.platform in
  match Check.run_case cfg g with
  | Check.Reject C.Empty_graph as v ->
      Alcotest.(check bool) "is a failure" true (Check.is_failure v);
      Alcotest.(check string) "class" "reject:empty-graph" (Check.class_of v)
  | v -> Alcotest.failf "expected Reject Empty_graph, got %s" (Check.describe v)

let test_class_drops_volatile_detail () =
  Alcotest.(check string) "pass class" "pass"
    (Check.class_of (Check.Pass { wall_cycles = 123 }));
  Alcotest.(check string) "same class at different magnitudes"
    (Check.class_of (Check.Mismatch { max_abs_diff = 1 }))
    (Check.class_of (Check.Mismatch { max_abs_diff = 200 }));
  Alcotest.(check string) "crash stage kept" "crash:executing"
    (Check.class_of (Check.Crash { stage = Check.Executing; message = "boom" }))

let test_reproducer_roundtrips () =
  let seed = 11 in
  let g = Check.Gen.generate seed in
  let cfg = Check.Gen.random_config seed in
  let text =
    Check.reproducer ~seed ~config:cfg ~graph:g
      ~verdict:(Check.Crash { stage = Check.Executing; message = "injected" })
      ()
  in
  (* The commented preamble must not break the parser, and the graph must
     survive the round trip structurally intact. *)
  match Ir.Text.of_string text with
  | Error e -> Alcotest.failf "reproducer does not parse: %s" e
  | Ok g' ->
      Alcotest.(check int) "op count preserved" (Ir.Graph.app_count g)
        (Ir.Graph.app_count g');
      Alcotest.(check string) "graph preserved" (Ir.Graph.to_string g)
        (Ir.Graph.to_string g');
      Alcotest.(check bool) "replay command recorded" true
        (Helpers.contains text (Printf.sprintf "--replay-seed %d" seed))

let test_tally_and_first_failure () =
  let cases = Check.fuzz ~jobs:1 ~start:0 ~count:12 () in
  Alcotest.(check int) "one verdict per seed" 12 (List.length cases);
  Alcotest.(check (list int)) "ascending seed order"
    (List.init 12 (fun i -> i))
    (List.map (fun c -> c.Check.seed) cases);
  let total = List.fold_left (fun a (_, n) -> a + n) 0 (Check.tally cases) in
  Alcotest.(check int) "tally sums to case count" 12 total;
  (* Seeds 0-199 are a green range (test_fuzz); no failure to find. *)
  Alcotest.(check bool) "no failure in green range" true
    (Check.first_failure cases = None)

let test_progress_reporting () =
  let calls = ref [] in
  let _ =
    Check.fuzz ~jobs:1 ~chunk:4 ~start:0 ~count:10
      ~progress:(fun ~completed ~total -> calls := (completed, total) :: !calls)
      ()
  in
  Alcotest.(check (list (pair int int)))
    "chunked progress callbacks"
    [ (4, 10); (8, 10); (10, 10) ]
    (List.rev !calls)

let suites =
  [ ( "check",
      [ Alcotest.test_case "pass verdict" `Quick test_pass_verdict;
        Alcotest.test_case "resource is not failure" `Quick
          test_resource_verdict_is_not_failure;
        Alcotest.test_case "empty graph rejects" `Quick test_empty_graph_is_reject;
        Alcotest.test_case "class drops volatile detail" `Quick
          test_class_drops_volatile_detail;
        Alcotest.test_case "reproducer round-trips" `Quick test_reproducer_roundtrips;
        Alcotest.test_case "tally and first failure" `Quick
          test_tally_and_first_failure;
        Alcotest.test_case "progress reporting" `Quick test_progress_reporting;
      ] )
  ]
