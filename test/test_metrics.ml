(* The telemetry registry: instrument arithmetic, strict registration,
   histogram bucket boundaries, snapshot/merge algebra, the three
   exposition formats, and the end-to-end determinism contract — the
   serve-side cycles track is byte-identical across fleet shapes, and
   SLO accounting distinguishes predicted from observed violations. *)

module M = Metrics

let find name snap = List.find (fun m -> m.M.m_name = name) snap

let counter_value m =
  match m.M.m_value with
  | M.Counter n -> n
  | _ -> Alcotest.fail "expected a counter"

(* Instruments record what they were fed, and the snapshot preserves
   registration order within each track. *)
let test_registry_basics () =
  let t = M.create () in
  let c = M.counter t "requests_total" in
  let g = M.gauge t ~track:M.Sched "depth" in
  let h = M.histogram t ~buckets:[ 10; 20 ] "lat" in
  let s = M.series t ~columns:[ "a"; "b" ] "win" in
  M.inc c 3;
  M.inc c 0;
  M.inc c 4;
  M.set g 2.5;
  M.set_int g 7;
  M.observe h 5;
  M.sample s ~ts:100 [ 1.0; 2.0 ];
  M.sample s ~ts:200 [ 3.0; 4.0 ];
  let snap = M.snapshot t in
  Alcotest.(check int) "counter sums" 7 (counter_value (find "requests_total" snap));
  (match (find "depth" snap).M.m_value with
  | M.Gauge v -> Alcotest.(check (float 0.0)) "gauge last write" 7.0 v
  | _ -> Alcotest.fail "expected a gauge");
  (match (find "win" snap).M.m_value with
  | M.Series { columns; samples } ->
      Alcotest.(check (list string)) "columns" [ "a"; "b" ] columns;
      Alcotest.(check int) "two samples" 2 (List.length samples);
      Alcotest.(check bool) "samples in ts order" true
        (List.map fst samples = [ 100; 200 ])
  | _ -> Alcotest.fail "expected a series");
  Alcotest.(check (list string)) "registration order per track"
    [ "requests_total"; "lat"; "win" ]
    (List.filter_map
       (fun m -> if m.M.m_track = M.Cycles then Some m.M.m_name else None)
       snap)

(* Every registration mistake is an Invalid_argument at the call site,
   never a silently merged instrument. *)
let test_strict_registration () =
  let expect what f =
    match f () with
    | _ -> Alcotest.failf "%s accepted" what
    | exception Invalid_argument _ -> ()
  in
  let t = M.create () in
  let _ = M.counter t "dup_total" in
  expect "duplicate (name, labels)" (fun () -> M.counter t "dup_total");
  expect "duplicate even across kinds" (fun () -> M.gauge t "dup_total");
  (* same name with distinct labels is a legitimate family *)
  let _ = M.counter t ~labels:[ ("k", "a") ] "fam_total" in
  let _ = M.counter t ~labels:[ ("k", "b") ] "fam_total" in
  expect "duplicate labelled pair" (fun () ->
      M.counter t ~labels:[ ("k", "a") ] "fam_total");
  expect "invalid metric name" (fun () -> M.counter t "0bad");
  expect "invalid label name" (fun () ->
      M.counter t ~labels:[ ("0k", "v") ] "ok_total");
  expect "duplicate label name" (fun () ->
      M.counter t ~labels:[ ("k", "a"); ("k", "b") ] "ok_total");
  expect "non-increasing buckets" (fun () ->
      M.histogram t ~buckets:[ 10; 10 ] "h");
  expect "empty columns" (fun () -> M.series t ~columns:[] "s");
  expect "duplicate column" (fun () -> M.series t ~columns:[ "x"; "x" ] "s");
  let c = M.counter t "mono_total" in
  expect "negative increment" (fun () -> M.inc c (-1));
  let s = M.series t ~columns:[ "x" ] "s_ok" in
  expect "sample arity mismatch" (fun () -> M.sample s ~ts:0 [ 1.0; 2.0 ])

(* Bucket bounds are inclusive upper bounds: an observation equal to a
   bound lands in that bucket, one past it in the next, and anything
   beyond the last bound in the implicit +Inf bucket. *)
let test_histogram_bucket_boundaries () =
  let t = M.create () in
  let h = M.histogram t ~buckets:[ 10; 20; 30 ] "lat" in
  List.iter (M.observe h) [ 0; 10; 11; 20; 30; 31; 1000 ];
  match (find "lat" (M.snapshot t)).M.m_value with
  | M.Histogram { bounds; counts; sum; count } ->
      Alcotest.(check (list int)) "bounds" [ 10; 20; 30 ] bounds;
      Alcotest.(check (list int)) "per-bucket, +Inf last" [ 2; 2; 1; 2 ] counts;
      Alcotest.(check int) "sum" (0 + 10 + 11 + 20 + 30 + 31 + 1000) sum;
      Alcotest.(check int) "count" 7 count
  | _ -> Alcotest.fail "expected a histogram"

(* Merge is the aggregation story: counters add, gauges high-water,
   histograms add per bucket, series concatenate left-then-right, and
   the operation is associative on concrete snapshots. *)
let test_merge_semantics () =
  let mk cv gv hob (ts, xs) extra =
    let t = M.create () in
    let c = M.counter t "c_total" in
    M.inc c cv;
    let g = M.gauge t "g" in
    M.set g gv;
    let h = M.histogram t ~buckets:[ 10; 20 ] "h" in
    List.iter (M.observe h) hob;
    let s = M.series t ~columns:[ "x" ] "s" in
    M.sample s ~ts [ xs ];
    if extra then ignore (M.counter t ~track:M.Sched "only_right_total");
    M.snapshot t
  in
  let a = mk 1 5.0 [ 5 ] (10, 1.0) false in
  let b = mk 2 3.0 [ 15 ] (20, 2.0) false in
  let c = mk 4 9.0 [ 25 ] (30, 3.0) true in
  let ab = M.merge a b in
  Alcotest.(check int) "counters add" 3 (counter_value (find "c_total" ab));
  (match (find "g" ab).M.m_value with
  | M.Gauge v -> Alcotest.(check (float 0.0)) "gauges keep max" 5.0 v
  | _ -> Alcotest.fail "gauge");
  (match (find "h" ab).M.m_value with
  | M.Histogram { counts; sum; count; _ } ->
      Alcotest.(check (list int)) "buckets add" [ 1; 1; 0 ] counts;
      Alcotest.(check int) "sums add" 20 sum;
      Alcotest.(check int) "counts add" 2 count
  | _ -> Alcotest.fail "histogram");
  (match (find "s" ab).M.m_value with
  | M.Series { samples; _ } ->
      Alcotest.(check bool) "left samples first" true
        (List.map fst samples = [ 10; 20 ])
  | _ -> Alcotest.fail "series");
  let abc = M.merge ab c and abc' = M.merge a (M.merge b c) in
  Alcotest.(check bool) "associative" true (abc = abc');
  Alcotest.(check int) "right-only passes through" 0
    (counter_value (find "only_right_total" abc));
  (* disagreeing shapes are a plumbing bug, not an aggregation *)
  let bad_bounds =
    let t = M.create () in
    ignore (M.histogram t ~buckets:[ 10; 30 ] "h");
    M.snapshot t
  and bad_kind =
    let t = M.create () in
    ignore (M.gauge t "c_total");
    M.snapshot t
  in
  let expect what l r =
    match M.merge l r with
    | _ -> Alcotest.failf "%s merged" what
    | exception Invalid_argument _ -> ()
  in
  expect "bucket bound mismatch" a bad_bounds;
  expect "kind mismatch" a bad_kind

(* The Prometheus dump carries all three track markers even when empty,
   dedupes HELP/TYPE per family, renders histograms cumulatively and
   series samples with cycle timestamps; cycles_section cuts exactly at
   the first non-deterministic marker. *)
let test_prometheus_rendering () =
  let empty = M.to_prometheus [] in
  List.iter
    (fun marker ->
      Alcotest.(check bool) marker true (Helpers.contains empty marker))
    [ "# track cycles"; "# track sched"; "# track wall" ];
  let t = M.create () in
  let c = M.counter t ~help:"requests" "req_total" in
  M.inc c 2;
  let h = M.histogram t ~buckets:[ 10; 20 ] "lat" in
  List.iter (M.observe h) [ 5; 15; 99 ];
  let s = M.series t ~columns:[ "arr" ] "win" in
  M.sample s ~ts:123 [ 4.0 ];
  List.iter
    (fun ph -> M.set (M.gauge t ~track:M.Wall ~labels:[ ("p", ph) ] "wall_s") 1.0)
    [ "a"; "b" ];
  let dump = M.to_prometheus (M.snapshot t) in
  Alcotest.(check bool) "counter line" true (Helpers.contains dump "req_total 2");
  Alcotest.(check bool) "help text" true
    (Helpers.contains dump "# HELP req_total requests");
  Alcotest.(check bool) "cumulative le=10" true
    (Helpers.contains dump "lat_bucket{le=\"10\"} 1");
  Alcotest.(check bool) "cumulative le=20" true
    (Helpers.contains dump "lat_bucket{le=\"20\"} 2");
  Alcotest.(check bool) "cumulative +Inf" true
    (Helpers.contains dump "lat_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "series sample with ts" true
    (Helpers.contains dump "win_arr 4 123");
  (* one HELP/TYPE per family, not per label variant *)
  let occurrences needle =
    let nl = String.length needle and dl = String.length dump in
    let rec go i n =
      if i + nl > dl then n
      else if String.sub dump i nl = needle then go (i + 1) (n + 1)
      else go (i + 1) n
    in
    go 0 0
  in
  Alcotest.(check int) "TYPE deduped across label variants" 1
    (occurrences "# TYPE wall_s gauge");
  let cyc = M.cycles_section dump in
  Alcotest.(check bool) "cycles section keeps counters" true
    (Helpers.contains cyc "req_total 2");
  Alcotest.(check bool) "cycles section drops wall" false
    (Helpers.contains cyc "wall_s");
  Alcotest.(check bool) "cycles section stops before sched marker" false
    (Helpers.contains cyc "# track sched")

let test_csv_and_json () =
  let t = M.create () in
  let c = M.counter t ~labels:[ ("k", "a,b\"c") ] "c_total" in
  M.inc c 1;
  let s = M.series t ~columns:[ "x" ] "win" in
  M.sample s ~ts:7 [ 1.5 ];
  let snap = M.snapshot t in
  let csv = M.to_csv snap in
  (match String.split_on_char '\n' csv with
  | header :: _ ->
      Alcotest.(check string) "csv header" "track,name,labels,kind,field,ts,value"
        header
  | [] -> Alcotest.fail "empty csv");
  Alcotest.(check bool) "csv quotes label field" true
    (Helpers.contains csv "\"k=a,b\"\"c\"");
  Alcotest.(check bool) "csv series row" true
    (Helpers.contains csv "win,,series,x,7,1.5");
  let json = Trace.Json.to_string (M.to_json snap) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Helpers.contains json needle))
    [ "\"version\":1"; "\"cycles\":"; "\"sched\":"; "\"wall\":" ];
  (match M.format_of_string "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad format accepted");
  List.iter
    (fun (s, want) ->
      match M.format_of_string s with
      | Ok f -> Alcotest.(check bool) s true (f = want)
      | Error e -> Alcotest.fail e)
    [ ("prom", M.Prom); ("json", M.Json); ("csv", M.Csv) ]

(* Json.float_repr must round-trip: shortest of %.12g/%.15g/%.17g that
   parses back to the same float. %.6g (the old rendering) loses
   precision on e.g. 0.1 +. 0.2. *)
let prop_float_repr_round_trips =
  Helpers.qtest ~count:500 "float_repr round-trips"
    QCheck.(float)
    (fun f ->
      (not (Float.is_finite f))
      || float_of_string (Trace.Json.float_repr f) = f)

let test_float_repr_cases () =
  List.iter
    (fun f ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%h round-trips" f)
        f
        (float_of_string (Trace.Json.float_repr f)))
    [ 0.1; 0.1 +. 0.2; 1.0 /. 3.0; 1e-7; 1.000000119; 6.02214076e23;
      Float.max_float; Float.min_float; -0.0; 4.9e-324 ];
  Alcotest.(check string) "integers render bare" "42"
    (Trace.Json.float_repr 42.0);
  Alcotest.(check string) "non-finite is null" "null"
    (Trace.Json.float_repr Float.nan)

(* Percentiles against the naive definition: sort, then take the value
   at the smallest 1-based rank k with 100*k >= p*n. *)
let naive_percentile p l =
  let a = Array.of_list l in
  Array.sort compare a;
  let n = Array.length a in
  let rec go k = if 100 * k >= p * n then a.(k - 1) else go (k + 1) in
  go 1

let prop_percentiles_match_naive =
  Helpers.qtest ~count:300 "percentiles match the naive rank definition"
    QCheck.(list_of_size (QCheck.Gen.int_range 1 150) (int_range 0 1000))
    (fun l ->
      let sorted = List.sort compare l in
      let p = Serve.percentiles_of l in
      p.Serve.p50 = naive_percentile 50 l
      && p.Serve.p95 = naive_percentile 95 l
      && p.Serve.p99 = naive_percentile 99 l
      && p.Serve.p_min = List.hd sorted
      && p.Serve.p_max = List.hd (List.rev sorted))

let test_percentile_edges () =
  let check name l =
    let p = Serve.percentiles_of l in
    List.iter
      (fun (pc, got) ->
        Alcotest.(check int)
          (Printf.sprintf "%s p%d" name pc)
          (naive_percentile pc l) got)
      [ (50, p.Serve.p50); (95, p.Serve.p95); (99, p.Serve.p99) ]
  in
  check "singleton" [ 17 ];
  check "two" [ 9; 3 ];
  check "all ties" (List.init 50 (fun _ -> 7));
  check "n=99" (List.init 99 (fun i -> i * 3));
  check "n=100" (List.init 100 (fun i -> 100 - i));
  check "n=101" (List.init 101 (fun i -> i));
  (* the documented closed forms at n=100 *)
  let p = Serve.percentiles_of (List.init 100 (fun i -> i + 1)) in
  Alcotest.(check int) "n=100 p50 = 50th value" 50 p.Serve.p50;
  Alcotest.(check int) "n=100 p99 = 99th value" 99 p.Serve.p99

(* ---- serve integration: SLO accounting and the determinism contract. *)

let serve ?metrics ?trace cfg =
  let artifact, g = Lazy.force Test_serve.fixture in
  Serve.run ?metrics ?trace cfg artifact ~graph:g

let base = { Serve.default with Serve.requests = 12; max_batch = 3 }

let test_slo_accounting () =
  let r = serve { base with Serve.slo_sojourn = Some 1 } in
  (match r.Serve.r_slo with
  | None -> Alcotest.fail "slo_sojourn set but no slo block"
  | Some s ->
      Alcotest.(check int) "impossible target: every served violates"
        r.Serve.r_served s.Serve.s_pred_violations;
      Alcotest.(check bool) "observed >= predicted" true
        (s.Serve.s_observed_violations >= s.Serve.s_pred_violations);
      Alcotest.(check (float 1e-9)) "rate = pred / served" 1.0
        s.Serve.s_pred_violation_rate);
  let loose = serve { base with Serve.slo_sojourn = Some max_int } in
  (match loose.Serve.r_slo with
  | Some s ->
      Alcotest.(check int) "loose target: none" 0 s.Serve.s_pred_violations;
      Alcotest.(check int) "loose observed: none" 0 s.Serve.s_observed_violations
  | None -> Alcotest.fail "no slo block");
  Alcotest.(check bool) "no slo, no block" true
    ((serve base).Serve.r_slo = None);
  (match serve { base with Serve.slo_sojourn = Some 0 } with
  | _ -> Alcotest.fail "slo_sojourn 0 accepted"
  | exception Invalid_argument _ -> ());
  let tally = Serve.tally (serve { base with Serve.slo_sojourn = Some 1 }) in
  Alcotest.(check bool) "tally carries the slo line" true
    (Helpers.contains tally "slo target=1 pred-violations=");
  let json =
    Trace.Json.to_string (Serve.to_json (serve { base with Serve.slo_sojourn = Some 1 }))
  in
  Alcotest.(check bool) "json carries slo" true (Helpers.contains json "\"slo\":");
  Alcotest.(check bool) "json carries metrics" true
    (Helpers.contains json "\"metrics\":")

(* Predicted sojourn is a worker-invariant lower bound on the observed
   one: batch assembly precedes routing, and no queueing model can beat
   a queueing-free fleet. *)
let test_pred_sojourn_lower_bound () =
  let r =
    serve
      { base with
        Serve.workers = 1;
        arrival = Serve.Poisson { mean_gap = 0 };
        queue_depth = 4 }
  in
  List.iter
    (fun (req, o) ->
      match o with
      | Serve.Served { o_finish; o_pred_sojourn; _ } ->
          Alcotest.(check bool) "pred <= observed" true
            (o_pred_sojourn <= o_finish - req.Serve.r_arrival)
      | _ -> ())
    r.Serve.r_outcomes

(* The acceptance criterion, in-process: the cycles section of the
   Prometheus dump is byte-identical across fleet shapes and host
   parallelism, SLO accounting included. *)
let test_cycles_track_worker_invariant () =
  let dump workers jobs =
    let cfg =
      { base with
        Serve.workers;
        jobs;
        arrival = Serve.Poisson { mean_gap = 0 };
        queue_depth = 4;
        slo_sojourn = Some 2_000_000 }
    in
    M.cycles_section (M.to_prometheus (serve cfg).Serve.r_metrics)
  in
  let reference = dump 1 1 in
  Alcotest.(check bool) "cycles section is non-trivial" true
    (Helpers.contains reference "htvm_serve_requests_total 12"
    && Helpers.contains reference "htvm_serve_window_arrivals"
    && Helpers.contains reference "htvm_sim_accel_compute_total");
  List.iter
    (fun (w, j) ->
      Alcotest.(check string)
        (Printf.sprintf "workers %d jobs %d" w j)
        reference (dump w j))
    [ (1, 4); (2, 1); (4, 4) ]

(* --trace in Poisson mode also emits the ingress occupancy as a
   queue-depth counter track. *)
let test_queue_depth_trace () =
  let trace = Trace.create () in
  let _ =
    serve ~trace
      { base with
        Serve.arrival = Serve.Poisson { mean_gap = 0 };
        queue_depth = 2 }
  in
  let depths =
    List.filter
      (fun e -> e.Trace.ev_name = "queue_depth" && e.Trace.ev_kind = Trace.Counter)
      (Trace.events trace)
  in
  Alcotest.(check bool) "queue_depth samples present" true (depths <> []);
  List.iter
    (fun e ->
      Alcotest.(check string) "on the queue track" "queue" e.Trace.ev_track;
      Alcotest.(check bool) "bounded by queue_depth" true
        (e.Trace.ev_dur = 0 && e.Trace.ev_ts >= 0))
    depths

(* Compile-side telemetry: solver totals land on the cycles track and
   agree with the artifact's own stats; phase timings are wall-track
   gauges, one per phase. *)
let test_compile_metrics () =
  let _, g = Lazy.force Test_serve.fixture in
  let reg = M.create () in
  let a =
    Result.get_ok
      (Htvm.Compile.compile ~metrics:reg
         (Htvm.Compile.default_config Arch.Diana.digital_only)
         g)
  in
  let snap = M.snapshot reg in
  Alcotest.(check int) "explored counter = solver stats"
    a.Htvm.Compile.solver.Htvm.Compile.ss_explored
    (counter_value (find "htvm_compile_solver_explored_total" snap));
  let phases =
    List.filter
      (fun m ->
        m.M.m_name = "htvm_wall_compile_phase_seconds" && m.M.m_track = M.Wall)
      snap
  in
  Alcotest.(check int) "eight phase gauges" 8 (List.length phases)

let suites =
  [ ( "metrics",
      [ Alcotest.test_case "registry basics" `Quick test_registry_basics;
        Alcotest.test_case "strict registration" `Quick test_strict_registration;
        Alcotest.test_case "histogram bucket boundaries" `Quick
          test_histogram_bucket_boundaries;
        Alcotest.test_case "merge semantics + associativity" `Quick
          test_merge_semantics;
        Alcotest.test_case "prometheus rendering" `Quick
          test_prometheus_rendering;
        Alcotest.test_case "csv and json rendering" `Quick test_csv_and_json;
        Alcotest.test_case "float_repr cases" `Quick test_float_repr_cases;
        prop_float_repr_round_trips;
      ] );
    ( "metrics:percentiles",
      [ prop_percentiles_match_naive;
        Alcotest.test_case "edge sizes vs naive" `Quick test_percentile_edges;
      ] );
    ( "metrics:serve",
      [ Alcotest.test_case "slo accounting" `Quick test_slo_accounting;
        Alcotest.test_case "predicted sojourn lower-bounds observed" `Quick
          test_pred_sojourn_lower_bound;
        Alcotest.test_case "cycles track worker-invariant" `Quick
          test_cycles_track_worker_invariant;
        Alcotest.test_case "queue-depth trace track" `Quick
          test_queue_depth_trace;
        Alcotest.test_case "compile metrics" `Quick test_compile_metrics;
      ] );
  ]
