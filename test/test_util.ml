(* Tests for lib/util: PRNG determinism, integer helpers, table layout. *)

let test_rng_deterministic () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.next_int64 a) (Util.Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  Alcotest.(check bool) "different seeds diverge"
    true
    (Util.Rng.next_int64 a <> Util.Rng.next_int64 b)

let test_rng_split_independent () =
  let a = Util.Rng.create 7 in
  let b = Util.Rng.split a in
  let xs = List.init 10 (fun _ -> Util.Rng.next_int64 a) in
  let ys = List.init 10 (fun _ -> Util.Rng.next_int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_bounds () =
  let r = Util.Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Util.Rng.int r 17 in
    Alcotest.(check bool) "int in bound" true (v >= 0 && v < 17);
    let w = Util.Rng.int_in r (-5) 9 in
    Alcotest.(check bool) "int_in in range" true (w >= -5 && w <= 9);
    let t = Util.Rng.ternary r in
    Alcotest.(check bool) "ternary in {-1,0,1}" true (t >= -1 && t <= 1);
    let i8 = Util.Rng.int8 r in
    Alcotest.(check bool) "int8 range" true (i8 >= -128 && i8 <= 127)
  done

let test_rng_ternary_distribution () =
  let r = Util.Rng.create 11 in
  let zeros = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Util.Rng.ternary r = 0 then incr zeros
  done;
  (* Zero is drawn with probability 1/2: allow a generous band. *)
  Alcotest.(check bool) "about half zeros" true (!zeros > n * 4 / 10 && !zeros < n * 6 / 10)

let test_ceil_div () =
  Alcotest.(check int) "7/2" 4 (Util.Ints.ceil_div 7 2);
  Alcotest.(check int) "8/2" 4 (Util.Ints.ceil_div 8 2);
  Alcotest.(check int) "0/5" 0 (Util.Ints.ceil_div 0 5);
  Alcotest.(check int) "1/5" 1 (Util.Ints.ceil_div 1 5)

let test_round_up () =
  Alcotest.(check int) "13 to 16" 16 (Util.Ints.round_up 13 16);
  Alcotest.(check int) "16 to 16" 16 (Util.Ints.round_up 16 16);
  Alcotest.(check int) "0 to 16" 0 (Util.Ints.round_up 0 16)

let expect_assert name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Assert_failure" name
  | exception Assert_failure _ -> ()

let test_ceil_div_round_up_boundaries () =
  (* Exact boundaries around zero: the smallest legal numerator. *)
  Alcotest.(check int) "0/1" 0 (Util.Ints.ceil_div 0 1);
  Alcotest.(check int) "0 up to 1" 0 (Util.Ints.round_up 0 1);
  Alcotest.(check int) "1/1" 1 (Util.Ints.ceil_div 1 1);
  Alcotest.(check int) "1 up to 8" 8 (Util.Ints.round_up 1 8);
  (* Negative numerators used to truncate toward zero silently
     (ceil_div (-1) 4 was 0, round_up (-3) 8 was 0); now asserted. *)
  expect_assert "ceil_div -1 4" (fun () -> Util.Ints.ceil_div (-1) 4);
  expect_assert "ceil_div min_int" (fun () -> Util.Ints.ceil_div min_int 4);
  expect_assert "round_up -3 8" (fun () -> Util.Ints.round_up (-3) 8);
  expect_assert "ceil_div by 0" (fun () -> Util.Ints.ceil_div 4 0);
  expect_assert "ceil_div by -2" (fun () -> Util.Ints.ceil_div 4 (-2))

let test_clamp () =
  Alcotest.(check int) "below" (-3) (Util.Ints.clamp ~lo:(-3) ~hi:9 (-100));
  Alcotest.(check int) "above" 9 (Util.Ints.clamp ~lo:(-3) ~hi:9 100);
  Alcotest.(check int) "inside" 4 (Util.Ints.clamp ~lo:(-3) ~hi:9 4)

let test_pow2_log2 () =
  Alcotest.(check bool) "16 pow2" true (Util.Ints.is_pow2 16);
  Alcotest.(check bool) "17 not" false (Util.Ints.is_pow2 17);
  Alcotest.(check bool) "0 not" false (Util.Ints.is_pow2 0);
  Alcotest.(check int) "log2 1" 0 (Util.Ints.log2_ceil 1);
  Alcotest.(check int) "log2 9" 4 (Util.Ints.log2_ceil 9)

let test_divisors () =
  Alcotest.(check (list int)) "12" [ 1; 2; 3; 4; 6; 12 ] (Util.Ints.divisors 12);
  Alcotest.(check (list int)) "1" [ 1 ] (Util.Ints.divisors 1);
  Alcotest.(check (list int)) "7" [ 1; 7 ] (Util.Ints.divisors 7)

let test_divisors_edge_cases () =
  (* perfect squares: the root appears exactly once *)
  Alcotest.(check (list int)) "36" [ 1; 2; 3; 4; 6; 9; 12; 18; 36 ]
    (Util.Ints.divisors 36);
  Alcotest.(check (list int)) "49" [ 1; 7; 49 ] (Util.Ints.divisors 49);
  Alcotest.(check (list int)) "4" [ 1; 2; 4 ] (Util.Ints.divisors 4);
  (* primes: exactly the two trivial divisors, even for large inputs the
     O(sqrt n) scan must terminate quickly on *)
  Alcotest.(check (list int)) "9973" [ 1; 9973 ] (Util.Ints.divisors 9973);
  Alcotest.(check (list int)) "big prime" [ 1; 104729 ] (Util.Ints.divisors 104729)

let prop_divisors_complete_sorted =
  Helpers.qtest "divisors = sorted naive scan" QCheck.(int_range 1 2000) (fun n ->
      let naive = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1)) in
      Util.Ints.divisors n = naive)

let test_kib () = Alcotest.(check int) "256 KiB" 262144 (Util.Ints.kib 256)

let test_table_render () =
  let s =
    Util.Table.render
      ~align:[ Util.Table.Left; Util.Table.Right ]
      ~header:[ "name"; "cycles" ]
      [ [ "conv1"; "120" ]; [ "fc"; "8" ] ]
  in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "4 lines + trailing" 5 (List.length lines);
  (* All non-empty lines share the same width (padded columns). *)
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  List.iter (fun w -> Alcotest.(check int) "aligned" (List.hd widths) w) widths

let test_table_right_alignment () =
  let s =
    Util.Table.render ~align:[ Util.Table.Right ] ~header:[ "n" ] [ [ "7" ]; [ "1234" ] ]
  in
  (match String.split_on_char '\n' s with
  | _header :: _rule :: short :: long :: _ ->
      Alcotest.(check int) "padded to width" (String.length long) (String.length short);
      Alcotest.(check bool) "right aligned" true (short.[0] = ' ')
  | _ -> Alcotest.fail "unexpected table shape");
  ()

let test_table_markdown () =
  let s = Util.Table.render_markdown ~header:[ "a"; "b" ] [ [ "1" ] ] in
  Alcotest.(check bool) "has rule" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "|---|---|"));
  Alcotest.(check bool) "pads short row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "| 1 |  |"))

let prop_ceil_div_round_up =
  Helpers.qtest "round_up = ceil_div * b"
    QCheck.(pair (int_range 0 10000) (int_range 1 64))
    (fun (a, b) -> Util.Ints.round_up a b = Util.Ints.ceil_div a b * b)

let prop_divisors_divide =
  Helpers.qtest "divisors all divide" QCheck.(int_range 1 500)
    (fun n -> List.for_all (fun d -> n mod d = 0) (Util.Ints.divisors n))

let prop_clamp_in_range =
  Helpers.qtest "clamp lands inside" QCheck.(triple int (int_range (-100) 0) (int_range 1 100))
    (fun (v, lo, hi) ->
      let r = Util.Ints.clamp ~lo ~hi v in
      r >= lo && r <= hi)

(* --- Util.Key: injective field encoding --- *)

let test_key_roundtrip () =
  let cases =
    [
      [];
      [ "" ];
      [ ""; "" ];
      [ "a" ];
      [ "a"; "b" ];
      [ "a:b"; "3:c" ];
      [ "12:"; ":" ];
      [ "\x00\xff"; "5" ];
      [ String.make 300 'x'; "" ];
    ]
  in
  List.iter
    (fun fields ->
      match Util.Key.decode (Util.Key.encode fields) with
      | Some got ->
          Alcotest.(check (list string)) "decode (encode l) = l" fields got
      | None -> Alcotest.fail "decode failed on a well-formed encoding")
    cases

let test_key_rejects_malformed () =
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ String.escaped s) true
        (Util.Key.decode s = None))
    [ "x"; "1"; "2:a"; "1:ab"; ":a"; "01x"; "1:a2"; "-1:" ]

let prop_key_injective =
  let field = QCheck.Gen.(string_size ~gen:printable (int_bound 6)) in
  let fields = QCheck.Gen.(list_size (int_bound 4) field) in
  Helpers.qtest "Key.encode is injective"
    (QCheck.make QCheck.Gen.(pair fields fields))
    (fun (a, b) ->
      if a = b then Util.Key.encode a = Util.Key.encode b
      else Util.Key.encode a <> Util.Key.encode b)

(* --- Util.File: atomic writes --- *)

let in_temp_dir f =
  let dir = Filename.temp_file "htvm-test-file" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_atomic_write_roundtrip () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "out.txt" in
      Util.File.write_atomic path "first";
      Alcotest.(check string) "written" "first"
        (In_channel.with_open_bin path In_channel.input_all);
      Util.File.write_atomic path "second, longer";
      Alcotest.(check string) "replaced" "second, longer"
        (In_channel.with_open_bin path In_channel.input_all);
      Alcotest.(check (list string)) "no temp litter" [ "out.txt" ]
        (Array.to_list (Sys.readdir dir)))

exception Boom

let test_atomic_write_aborts_cleanly () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "out.txt" in
      Util.File.write_atomic path "intact";
      (* A writer that dies mid-stream must leave the old contents
         visible and no temp file behind. *)
      (match
         Util.File.with_atomic_out path (fun oc ->
             output_string oc "partial garbage";
             raise Boom)
       with
      | () -> Alcotest.fail "expected the writer exception to propagate"
      | exception Boom -> ());
      Alcotest.(check string) "old contents intact" "intact"
        (In_channel.with_open_bin path In_channel.input_all);
      Alcotest.(check (list string)) "no temp litter" [ "out.txt" ]
        (Array.to_list (Sys.readdir dir)))

(* Kill a forked writer with SIGKILL while it is blocked mid-write —
   after it has written payload bytes into its temp file but before the
   rename — and assert the destination never becomes visible. The child
   signals readiness through a pipe so the parent never kills too
   early. *)
let test_atomic_write_survives_kill () =
  in_temp_dir (fun dir ->
      let path = Filename.concat dir "out.txt" in
      let r, w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
          Unix.close r;
          (try
             Util.File.with_atomic_out path (fun oc ->
                 output_string oc (String.make 4096 'x');
                 flush oc;
                 ignore (Unix.write w (Bytes.of_string "!") 0 1);
                 (* Block until killed; the rename is never reached. *)
                 Unix.sleep 600)
           with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.close w;
          ignore (Unix.read r (Bytes.create 1) 0 1);
          Unix.kill pid Sys.sigkill;
          ignore (Unix.waitpid [] pid);
          Unix.close r;
          Alcotest.(check bool) "no partial file visible" false
            (Sys.file_exists path))

let suites =
  [ ( "util",
      [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "rng split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng ternary distribution" `Quick test_rng_ternary_distribution;
        Alcotest.test_case "ceil_div" `Quick test_ceil_div;
        Alcotest.test_case "round_up" `Quick test_round_up;
        Alcotest.test_case "ceil_div/round_up boundaries" `Quick
          test_ceil_div_round_up_boundaries;
        Alcotest.test_case "clamp" `Quick test_clamp;
        Alcotest.test_case "pow2/log2" `Quick test_pow2_log2;
        Alcotest.test_case "divisors" `Quick test_divisors;
        Alcotest.test_case "divisors edge cases" `Quick test_divisors_edge_cases;
        Alcotest.test_case "kib" `Quick test_kib;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "table right align" `Quick test_table_right_alignment;
        Alcotest.test_case "table markdown" `Quick test_table_markdown;
        prop_ceil_div_round_up;
        prop_divisors_divide;
        prop_divisors_complete_sorted;
        prop_clamp_in_range;
        Alcotest.test_case "key roundtrip" `Quick test_key_roundtrip;
        Alcotest.test_case "key rejects malformed" `Quick
          test_key_rejects_malformed;
        prop_key_injective;
        Alcotest.test_case "atomic write roundtrip" `Quick
          test_atomic_write_roundtrip;
        Alcotest.test_case "atomic write aborts cleanly" `Quick
          test_atomic_write_aborts_cleanly;
        Alcotest.test_case "atomic write survives kill" `Quick
          test_atomic_write_survives_kill;
      ] )
  ]
