(* Differential conformance for compiled execution plans (Sim.Plan): the
   fast path must be byte-identical to the slow oracle — output bytes,
   per-step counters, aggregate counters and trace events — on zoo models
   and randomly generated graphs/configs. Plans are silently dropped
   under fault injection (the slow path stays the fault oracle) and
   rejected for programs they were not built for. *)

module C = Htvm.Compile

let compare_counters label a b =
  List.iter2
    (fun (n, x) (_, y) -> Alcotest.(check int) (label ^ ": " ^ n) x y)
    (Sim.Counters.fields a) (Sim.Counters.fields b)

let compare_reports label (slow : Sim.Machine.report) (fast : Sim.Machine.report) =
  Alcotest.(check int)
    (label ^ ": step count")
    (List.length slow.Sim.Machine.per_step)
    (List.length fast.Sim.Machine.per_step);
  List.iter2
    (fun (n1, c1) (n2, c2) ->
      Alcotest.(check string) (label ^ ": step name") n1 n2;
      compare_counters (label ^ "/" ^ n1) c1 c2)
    slow.Sim.Machine.per_step fast.Sim.Machine.per_step;
  compare_counters (label ^ ": totals") slow.Sim.Machine.totals
    fast.Sim.Machine.totals

let compare_outputs label slow fast =
  if not (Tensor.equal slow fast) then
    Alcotest.failf "%s: plan output differs (max diff %d)" label
      (Tensor.max_abs_diff slow fast)

(* Trace events carry name/cat/track/ts/dur/kind/args; both paths are
   deterministic, so the full event lists must match structurally. *)
let compare_traces label slow fast =
  Alcotest.(check int)
    (label ^ ": trace event count")
    (List.length (Trace.events slow))
    (List.length (Trace.events fast));
  Alcotest.(check bool) (label ^ ": trace events identical") true
    (Trace.events slow = Trace.events fast)

(* One zoo model per deployment configuration — every accelerator payload
   shape (cpu-only, digital, analog ternary, mixed) crosses the plan path
   on a real network. The 16-case golden suite already runs the plan path
   end to end; this test pins the *differential* against the slow oracle
   including counters and traces, which digests cannot see. *)
let zoo_cases =
  [ ("ds_cnn", "cpu"); ("mobilenet_v1_025", "digital");
    ("toyadmos_dae", "analog"); ("resnet8", "both") ]

let test_zoo_differential () =
  List.iter
    (fun (model, config) ->
      let entry = Models.Zoo.find model in
      let _, platform, policy =
        List.find (fun (c, _, _) -> c = config) Check.Golden.configurations
      in
      let g = entry.Models.Zoo.build policy in
      let cfg =
        { (C.default_config platform) with C.jobs = 1; C.solver_cache = None }
      in
      let artifact =
        match C.compile cfg g with
        | Ok a -> a
        | Error e -> Alcotest.failf "%s/%s: %s" model config (C.error_to_string e)
      in
      let inputs = Models.Zoo.random_input ~seed:Check.Golden.input_seed g in
      let label = model ^ "/" ^ config in
      let tr_slow = Trace.create () and tr_fast = Trace.create () in
      let out_slow, rep_slow =
        C.run ~trace:tr_slow ~use_plan:false artifact ~inputs
      in
      let out_fast, rep_fast = C.run ~trace:tr_fast artifact ~inputs in
      compare_outputs label out_slow out_fast;
      compare_reports label rep_slow rep_fast;
      compare_traces label tr_slow tr_fast;
      (* Arena reuse across requests must not leak state: a second request
         with a different input still matches its own slow run. *)
      let inputs2 = Models.Zoo.random_input ~seed:(Check.Golden.input_seed + 1) g in
      let out_slow2, rep_slow2 = C.run ~use_plan:false artifact ~inputs:inputs2 in
      let out_fast2, rep_fast2 = C.run artifact ~inputs:inputs2 in
      compare_outputs (label ^ " (2nd request)") out_slow2 out_fast2;
      compare_reports (label ^ " (2nd request)") rep_slow2 rep_fast2)
    zoo_cases

(* Random graphs x random deployment configs: the fuzz generator's whole
   operator vocabulary (depthwise, strides, residual adds, concats,
   pooling, softmax heads, shrunken-L1 tilings) through both paths. *)
let test_random_differential () =
  let ran = ref 0 in
  for seed = 0 to 39 do
    let g = Check.Gen.generate seed in
    let cfg = { (Check.Gen.random_config seed) with C.solver_cache = None } in
    match C.compile cfg g with
    | Error _ -> () (* infeasible deployments are the fuzz suite's business *)
    | Ok artifact -> (
        let label = Printf.sprintf "seed %d" seed in
        let inputs = Models.Zoo.random_input ~seed g in
        match C.run ~use_plan:false artifact ~inputs with
        | exception e -> (
            (* If the slow oracle rejects the run, the plan path must fail
               identically — never silently produce bytes. *)
            match C.run artifact ~inputs with
            | exception e' ->
                Alcotest.(check string)
                  (label ^ ": same failure")
                  (Printexc.to_string e) (Printexc.to_string e')
            | _ ->
                Alcotest.failf "%s: slow path raised %s but plan path succeeded"
                  label (Printexc.to_string e))
        | out_slow, rep_slow ->
            incr ran;
            let out_fast, rep_fast = C.run artifact ~inputs in
            compare_outputs label out_slow out_fast;
            compare_reports label rep_slow rep_fast)
  done;
  Alcotest.(check bool) "enough random deployments actually ran" true (!ran >= 10)

let digital_artifact =
  lazy
    (let entry = Models.Zoo.find "resnet8" in
     let g = entry.Models.Zoo.build Models.Policy.All_int8 in
     let cfg =
       { (C.default_config Arch.Diana.digital_only) with
         C.jobs = 1; C.solver_cache = None }
     in
     (Result.get_ok (C.compile cfg g), g))

(* Plan stats agree with the program they were compiled from. *)
let test_stats () =
  let artifact, _ = Lazy.force digital_artifact in
  let stats = Sim.Plan.stats artifact.C.plan in
  let accel_steps =
    List.length
      (List.filter
         (function Sim.Program.Accel _ -> true | Sim.Program.Cpu _ -> false)
         artifact.C.program.Sim.Program.steps)
  in
  Alcotest.(check int) "accel steps" accel_steps stats.Sim.Plan.accel_steps;
  Alcotest.(check bool) "at least one tile per step" true
    (stats.Sim.Plan.tiles >= stats.Sim.Plan.accel_steps);
  Alcotest.(check bool) "scratch allocated" true (stats.Sim.Plan.scratch_words > 0);
  Alcotest.(check bool) "weight image captured" true (stats.Sim.Plan.image_bytes > 0);
  Alcotest.(check bool) "program identity" true
    (Sim.Plan.program artifact.C.plan == artifact.C.program)

(* The per-domain arena is cached across checkouts; [~fresh] discards it. *)
let test_arena_reuse () =
  let artifact, g = Lazy.force digital_artifact in
  let plan = artifact.C.plan in
  let l2a, l1a = Sim.Plan.checkout plan in
  let l2b, l1b = Sim.Plan.checkout plan in
  Alcotest.(check bool) "L2 reused" true (l2a == l2b);
  Alcotest.(check bool) "L1 reused" true (l1a == l1b);
  let l2c, _ = Sim.Plan.checkout ~fresh:true plan in
  Alcotest.(check bool) "fresh discards the cache" true (not (l2c == l2a));
  (* plan_fresh_arena reaches the same bytes through new allocations. *)
  let inputs = Models.Zoo.random_input ~seed:3 g in
  let out_reuse, rep_reuse = C.run artifact ~inputs in
  let out_fresh, rep_fresh =
    Sim.Machine.run ~platform:artifact.C.cfg.C.platform ~plan
      ~plan_fresh_arena:true artifact.C.program ~inputs
  in
  compare_outputs "fresh arena" out_reuse out_fresh;
  compare_reports "fresh arena" rep_reuse rep_fresh

(* A plan passed alongside a fault session is ignored, not consulted:
   the run is byte-identical to the plain slow path under the same
   session, and detected faults still cost retry cycles. *)
let test_plan_dropped_under_faults () =
  let artifact, g = Lazy.force digital_artifact in
  let inputs = Models.Zoo.random_input ~seed:5 g in
  let plan_spec = "seed=11,dma_in@every=3:flip" in
  let session () =
    Fault.Session.create (Result.get_ok (Fault.Plan.of_string plan_spec))
  in
  let out_slow, rep_slow =
    Sim.Machine.run ~platform:artifact.C.cfg.C.platform ~faults:(session ())
      artifact.C.program ~inputs
  in
  let out_plan, rep_plan =
    Sim.Machine.run ~platform:artifact.C.cfg.C.platform ~faults:(session ())
      ~plan:artifact.C.plan artifact.C.program ~inputs
  in
  compare_outputs "faults" out_slow out_plan;
  compare_reports "faults" rep_slow rep_plan;
  Alcotest.(check bool) "faults were actually injected" true
    (rep_slow.Sim.Machine.totals.Sim.Counters.faults_detected > 0)

(* Physical identity between plan and program is enforced. *)
let test_foreign_plan_rejected () =
  let artifact, g = Lazy.force digital_artifact in
  let cfg =
    { (C.default_config Arch.Diana.digital_only) with
      C.jobs = 1; C.solver_cache = None }
  in
  let artifact2 = Result.get_ok (C.compile cfg g) in
  let inputs = Models.Zoo.random_input ~seed:3 g in
  match
    Sim.Machine.run ~platform:artifact.C.cfg.C.platform ~plan:artifact.C.plan
      artifact2.C.program ~inputs
  with
  | _ -> Alcotest.fail "a foreign plan was accepted"
  | exception Invalid_argument _ -> ()

let suites =
  [ ( "plan",
      [ Alcotest.test_case "zoo differential" `Quick test_zoo_differential;
        Alcotest.test_case "random differential" `Quick test_random_differential;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "arena reuse" `Quick test_arena_reuse;
        Alcotest.test_case "plan dropped under faults" `Quick
          test_plan_dropped_under_faults;
        Alcotest.test_case "foreign plan rejected" `Quick
          test_foreign_plan_rejected;
      ] )
  ]
