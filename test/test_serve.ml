(* The batched serving runtime: determinism of the functional tally
   across fleet sizes and host parallelism, batching arithmetic,
   admission shedding, degraded-instance routing, abort handling under
   exhausted retry budgets, and the percentile helper. *)

module B = Ir.Graph.Builder
module Dtype = Tensor.Dtype

(* One small digital conv model, compiled once: serving tests need many
   simulated inferences, not a big network. *)
let fixture =
  lazy
    (let g =
       let b = B.create () in
       let rng = Util.Rng.create 8 in
       let x = B.input b ~name:"x" Dtype.I8 [| 4; 8; 8 |] in
       let w = B.const b (Tensor.random rng Dtype.I8 [| 8; 4; 3; 3 |]) in
       let conv = B.conv2d b ~padding:(1, 1) x ~weights:w in
       let q = B.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 conv in
       B.finish b ~output:q
     in
     let artifact =
       Result.get_ok
         (Htvm.Compile.compile (Htvm.Compile.default_config Arch.Diana.digital_only) g)
     in
     (artifact, g))

let serve ?(cfg = Serve.default) () =
  let artifact, g = Lazy.force fixture in
  Serve.run cfg artifact ~graph:g

(* Probability rules fit per-request fault sessions: each request's
   session reseeds, so occurrence-counted [every=] rules would restart
   counting at every request; [p=] draws fire regardless. *)
let flip_plan = Result.get_ok (Fault.Plan.of_string "seed=3,dma_in@p=0.4:flip")

let base = { Serve.default with Serve.requests = 12; max_batch = 3 }

(* The headline invariant: the functional tally (outcomes, digests,
   service cycles, fault counts) is byte-identical at any worker count
   and any host job count — fleet size only moves scheduling metrics. *)
let test_tally_worker_invariant () =
  let run workers jobs cfg =
    Serve.tally (serve ~cfg:{ cfg with Serve.workers; jobs } ())
  in
  let sweep cfg name =
    let reference = run 1 1 cfg in
    List.iter
      (fun (w, j) ->
        Alcotest.(check string)
          (Printf.sprintf "%s: workers %d jobs %d" name w j)
          reference (run w j cfg))
      [ (1, 4); (2, 1); (4, 1); (4, 4); (7, 2) ]
  in
  sweep base "closed";
  sweep
    { base with Serve.arrival = Serve.Poisson { mean_gap = 0 }; queue_depth = 2 }
    "poisson+shed";
  sweep
    { base with Serve.plan = flip_plan; retry_budget = 2; degrade_after = Some 2 }
    "faulty+degrading"

(* Scheduling metrics are allowed — required — to move with the fleet:
   a 4-instance closed-loop run finishes strictly earlier than 1. *)
let test_throughput_scales () =
  let r1 = serve ~cfg:{ base with Serve.workers = 1; max_batch = 1 } () in
  let r4 = serve ~cfg:{ base with Serve.workers = 4; max_batch = 1 } () in
  Alcotest.(check bool) "makespan shrinks" true
    (r4.Serve.r_makespan < r1.Serve.r_makespan);
  Alcotest.(check bool) "throughput grows" true
    (r4.Serve.r_throughput_rps > r1.Serve.r_throughput_rps)

(* Batching arithmetic on one instance: every batch costs the dispatch
   overhead exactly once, so batch size b saves (n - ceil(n/b)) * overhead
   over unbatched dispatch. *)
let test_batching_amortizes_overhead () =
  let cfg b =
    { base with Serve.workers = 1; max_batch = b; dispatch_overhead = 1_000 }
  in
  let batched = serve ~cfg:(cfg 3) () in
  let unbatched = serve ~cfg:(cfg 1) () in
  let batches r =
    List.fold_left (fun acc i -> acc + i.Serve.i_batches) 0 r.Serve.r_instances
  in
  Alcotest.(check int) "ceil(12/3) batches" 4 (batches batched);
  Alcotest.(check int) "12 singleton batches" 12 (batches unbatched);
  Alcotest.(check int) "gap = saved dispatches"
    ((12 - 4) * 1_000)
    (unbatched.Serve.r_makespan - batched.Serve.r_makespan)

(* Closed mode never sheds; an overloaded Poisson window sheds a typed
   Rejected outcome and the books still balance. *)
let test_admission_shedding () =
  let closed = serve ~cfg:base () in
  Alcotest.(check int) "closed mode never sheds" 0 closed.Serve.r_rejected;
  let r =
    serve
      ~cfg:
        {
          base with
          Serve.workers = 2;
          arrival = Serve.Poisson { mean_gap = 0 };
          queue_depth = 1;
        }
      ()
  in
  Alcotest.(check bool) "overload sheds" true (r.Serve.r_rejected > 0);
  Alcotest.(check int) "books balance" r.Serve.r_config.Serve.requests
    (r.Serve.r_served + r.Serve.r_rejected + r.Serve.r_aborted);
  Alcotest.(check bool) "shed rate matches" true
    (Float.abs
       (r.Serve.r_shed_rate
       -. (float_of_int r.Serve.r_rejected /. float_of_int 12))
    < 1e-9);
  List.iter
    (fun (req, o) ->
      match o with
      | Serve.Rejected { o_window } ->
          Alcotest.(check int) "rejected in its arrival window"
            (req.Serve.r_arrival / r.Serve.r_window)
            o_window
      | _ -> ())
    r.Serve.r_outcomes

(* A statically degraded instance serves nothing while any healthy peer
   exists; an all-degraded fleet fails open and keeps serving. *)
let test_degraded_routing () =
  let r =
    serve ~cfg:{ base with Serve.workers = 2; degraded_instances = [ 0 ] } ()
  in
  let stat id = List.nth r.Serve.r_instances id in
  Alcotest.(check int) "instance 0 routed around" 0 (stat 0).Serve.i_batches;
  Alcotest.(check int) "instance 1 took everything" 12 (stat 1).Serve.i_served;
  Alcotest.(check int) "all served" 12 r.Serve.r_served;
  let fail_open =
    serve ~cfg:{ base with Serve.workers = 2; degraded_instances = [ 0; 1 ] } ()
  in
  Alcotest.(check int) "fail-open still serves" 12 fail_open.Serve.r_served

(* Accumulated faults push an instance out of the rotation mid-run. *)
let test_degrade_after_faults () =
  let r =
    serve
      ~cfg:
        {
          base with
          Serve.workers = 2;
          plan = flip_plan;
          retry_budget = 5;
          degrade_after = Some 1;
        }
      ()
  in
  let degraded =
    List.filter (fun i -> i.Serve.i_degraded_at <> None) r.Serve.r_instances
  in
  Alcotest.(check bool) "at least one instance degraded" true (degraded <> []);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d degraded only after faults" i.Serve.i_id)
        true
        (i.Serve.i_faults >= 1))
    degraded;
  Alcotest.(check bool) "most requests survive via retries" true
    (r.Serve.r_served > 0);
  Alcotest.(check int) "books balance" 12 (r.Serve.r_served + r.Serve.r_aborted)

(* A zero retry budget turns every detected fault into a typed abort:
   the modeled runtime returns an error, never corrupt data. *)
let test_abort_on_exhausted_retries () =
  let r =
    serve
      ~cfg:
        {
          base with
          Serve.plan =
            Result.get_ok (Fault.Plan.of_string "seed=3,dma_in@every=1:flip");
          retry_budget = 0;
        }
      ()
  in
  Alcotest.(check int) "every request aborts" 12 r.Serve.r_aborted;
  Alcotest.(check int) "none served" 0 r.Serve.r_served;
  List.iter
    (fun (_, o) ->
      match o with
      | Serve.Aborted { o_site; o_attempts; _ } ->
          Alcotest.(check string) "failing site" "dma_in" o_site;
          Alcotest.(check int) "one attempt" 1 o_attempts
      | _ -> Alcotest.fail "expected an aborted outcome")
    r.Serve.r_outcomes

(* Served requests carry the digest of the simulated output, which must
   match running the artifact directly on the same payload. *)
let test_digest_matches_direct_run () =
  let artifact, g = Lazy.force fixture in
  let r = serve ~cfg:{ base with Serve.requests = 3 } () in
  List.iter
    (fun (req, o) ->
      match o with
      | Serve.Served { o_digest; o_service; _ } ->
          let inputs = Models.Zoo.random_input ~seed:req.Serve.r_input_seed g in
          let _, rep = Htvm.Compile.run artifact ~inputs in
          Alcotest.(check int)
            "service cycles = a dedicated machine's cycles"
            (Htvm.Compile.full_cycles rep)
            o_service;
          Alcotest.(check bool) "digest well-formed" true
            (String.length o_digest = 32)
      | _ -> Alcotest.fail "expected served")
    r.Serve.r_outcomes

(* The compiled-plan fast path is invisible at the serve level: the
   functional tally is byte-identical with plans disabled. *)
let test_tally_plan_invariant () =
  let on = Serve.tally (serve ~cfg:base ()) in
  let off = Serve.tally (serve ~cfg:{ base with Serve.use_plan = false } ()) in
  Alcotest.(check string) "plan on/off tallies identical" on off;
  let faulty = { base with Serve.plan = flip_plan; retry_budget = 2 } in
  Alcotest.(check string) "under faults too"
    (Serve.tally (serve ~cfg:faulty ()))
    (Serve.tally (serve ~cfg:{ faulty with Serve.use_plan = false } ()))

(* input_mix folds request seeds onto a small pool without disturbing the
   arrival stream: scheduling is unchanged at any mix, and the tally's
   distinct-input count collapses to at most the pool size. *)
let test_input_mix () =
  let run mix = serve ~cfg:{ base with Serve.input_mix = mix } () in
  let r0 = run 0 and r3 = run 3 in
  List.iter2
    (fun (a, _) (b, _) ->
      Alcotest.(check int) "arrival stream invariant under mix"
        a.Serve.r_arrival b.Serve.r_arrival)
    r0.Serve.r_outcomes r3.Serve.r_outcomes;
  let distinct_seeds r =
    List.sort_uniq compare
      (List.map (fun (req, _) -> req.Serve.r_input_seed) r.Serve.r_outcomes)
  in
  Alcotest.(check bool) "12 unmixed requests draw >3 distinct seeds" true
    (List.length (distinct_seeds r0) > 3);
  Alcotest.(check bool) "mix=3 collapses to <=3 seeds" true
    (List.length (distinct_seeds r3) <= 3);
  Alcotest.(check bool) "tally reports the collapse" true
    (Helpers.contains (Serve.tally r3) "digests distinct-inputs=");
  match serve ~cfg:{ base with Serve.input_mix = -1 } () with
  | _ -> Alcotest.fail "negative input_mix accepted"
  | exception Invalid_argument _ -> ()

(* Memoization dedupes admitted requests by input digest before the pool
   fan-out: the functional tally must not move (only telemetry does), the
   hit/miss books must balance against the served count, and it refuses
   to run under fault injection (executions must be input-pure). *)
let test_memoize () =
  let mixed = { base with Serve.input_mix = 3 } in
  let plain = serve ~cfg:mixed () in
  let memo = serve ~cfg:{ mixed with Serve.memoize = true } () in
  Alcotest.(check string) "memoize leaves the tally byte-identical"
    (Serve.tally plain) (Serve.tally memo);
  Alcotest.(check int) "plain run counts no hits" 0 plain.Serve.r_memo_hits;
  Alcotest.(check bool) "shared inputs hit the memo" true
    (memo.Serve.r_memo_hits > 0);
  Alcotest.(check bool) "misses = distinct executions <= pool size" true
    (memo.Serve.r_memo_misses <= 3);
  Alcotest.(check int) "hits + misses cover every served request"
    memo.Serve.r_served
    (memo.Serve.r_memo_hits + memo.Serve.r_memo_misses);
  Alcotest.(check bool) "summary mentions the memo" true
    (Helpers.contains (Serve.summary memo) "memoize");
  match serve ~cfg:{ mixed with Serve.memoize = true; plan = flip_plan } () with
  | _ -> Alcotest.fail "memoize accepted a fault plan"
  | exception Invalid_argument _ -> ()

let test_percentiles () =
  let p = Serve.percentiles_of [] in
  Alcotest.(check int) "empty count" 0 p.Serve.p_count;
  Alcotest.(check int) "empty max" 0 p.Serve.p_max;
  let p = Serve.percentiles_of [ 5 ] in
  Alcotest.(check int) "singleton p99" 5 p.Serve.p99;
  let p = Serve.percentiles_of (List.init 100 (fun i -> 100 - i)) in
  Alcotest.(check int) "min" 1 p.Serve.p_min;
  Alcotest.(check int) "p50" 50 p.Serve.p50;
  Alcotest.(check int) "p95" 95 p.Serve.p95;
  Alcotest.(check int) "p99" 99 p.Serve.p99;
  Alcotest.(check int) "max" 100 p.Serve.p_max;
  Alcotest.(check (float 1e-9)) "mean" 50.5 p.Serve.p_mean

(* Boundary-condition sweep for admission and batching: empty request
   streams, batches wider than the stream, a zero queue depth, the
   single-instance all-degraded fail-open, and the mean_gap <= 0 auto
   mode must all either serve cleanly or reject loudly. *)
let test_boundary_conditions () =
  (* requests = 0: a clean no-op in both arrival modes. *)
  List.iter
    (fun arrival ->
      let r = serve ~cfg:{ base with Serve.requests = 0; arrival } () in
      Alcotest.(check int) "no outcomes" 0 (List.length r.Serve.r_outcomes);
      Alcotest.(check int) "empty percentiles" 0 r.Serve.r_service.Serve.p_count;
      Alcotest.(check int) "zero makespan" 0 r.Serve.r_makespan;
      ignore (Serve.tally r);
      ignore (Serve.summary r);
      ignore (Trace.Json.to_string (Serve.to_json r)))
    [ Serve.Closed; Serve.Poisson { mean_gap = 0 } ];
  (* max_batch wider than the stream: one batch takes everything. *)
  let wide = serve ~cfg:{ base with Serve.requests = 3; max_batch = 64 } () in
  Alcotest.(check int) "one wide batch" 1
    (List.fold_left (fun acc i -> acc + i.Serve.i_batches) 0 wide.Serve.r_instances);
  Alcotest.(check int) "all served" 3 wide.Serve.r_served;
  (* queue_depth = 0 cannot admit anything: rejected loudly. *)
  (match serve ~cfg:{ base with Serve.queue_depth = 0 } () with
  | _ -> Alcotest.fail "queue_depth 0 accepted"
  | exception Invalid_argument _ -> ());
  (* a single degraded instance is the whole fleet: fail open. *)
  let alone =
    serve ~cfg:{ base with Serve.workers = 1; degraded_instances = [ 0 ] } ()
  in
  Alcotest.(check int) "all-degraded singleton fleet fails open" 12
    alone.Serve.r_served;
  (* mean_gap <= 0 means auto, identically for any non-positive value. *)
  let gap g =
    Serve.tally
      (serve ~cfg:{ base with Serve.arrival = Serve.Poisson { mean_gap = g } } ())
  in
  Alcotest.(check string) "gap 0 and -5 both resolve to auto" (gap 0) (gap (-5))

(* The hand-picked sweep above, promoted to a generator: any workers,
   jobs, arrival mode, queue depth, input mix and fault-plan toggle
   leave the tally and the cycles-track metrics byte-identical to the
   1-worker/1-job run. *)
let prop_tally_invariance =
  let gen =
    QCheck.Gen.(
      let* workers = int_range 1 4 in
      let* jobs = oneofl [ 1; 4 ] in
      let* poisson = bool in
      let* queue_depth = int_range 1 4 in
      let* input_mix = oneofl [ 0; 2 ] in
      let* faulty = bool in
      let* requests = int_range 0 10 in
      let* seed = int_range 0 10_000 in
      return (workers, jobs, poisson, queue_depth, input_mix, faulty, requests, seed))
  in
  let print (w, j, p, qd, mix, f, n, seed) =
    Printf.sprintf
      "workers=%d jobs=%d poisson=%b depth=%d mix=%d faulty=%b requests=%d seed=%d"
      w j p qd mix f n seed
  in
  Helpers.qtest ~count:8 "serve tally/metrics invariant over fleet shape"
    (QCheck.make ~print gen)
    (fun (workers, jobs, poisson, queue_depth, input_mix, faulty, requests, seed) ->
      let cfg w j =
        {
          base with
          Serve.workers = w;
          jobs = j;
          arrival =
            (if poisson then Serve.Poisson { mean_gap = 0 } else Serve.Closed);
          queue_depth;
          input_mix;
          plan = (if faulty then flip_plan else Fault.Plan.empty);
          retry_budget = 2;
          requests;
          seed;
        }
      in
      let artifact, g = Lazy.force fixture in
      let at w j =
        let reg = Metrics.create () in
        let r = Serve.run ~metrics:reg (cfg w j) artifact ~graph:g in
        ( Serve.tally r,
          Metrics.cycles_section (Metrics.to_prometheus r.Serve.r_metrics) )
      in
      at 1 1 = at workers jobs)

let test_rejects_bad_config () =
  let expect field cfg =
    match serve ~cfg () with
    | _ -> Alcotest.failf "%s accepted" field
    | exception Invalid_argument _ -> ()
  in
  expect "workers 0" { base with Serve.workers = 0 };
  expect "max_batch 0" { base with Serve.max_batch = 0 };
  expect "queue_depth 0" { base with Serve.queue_depth = 0 };
  expect "requests -1" { base with Serve.requests = -1 }

(* [validate] diagnoses the same violations [run] raises on, as typed
   [Bad_config] values — what `htvmc serve` prints before exiting 1
   instead of surfacing a backtrace. *)
let test_validate_typed_errors () =
  let expect_bad field cfg =
    match Serve.validate cfg with
    | Error (Serve.Bad_config msg) ->
        Alcotest.(check bool)
          (field ^ ": message names the violation")
          true
          (Helpers.contains msg "Serve.run:")
    | Error e ->
        Alcotest.failf "%s: expected Bad_config, got %s" field
          (Serve.mt_error_to_string e)
    | Ok () -> Alcotest.failf "%s: accepted" field
  in
  Alcotest.(check bool) "default config validates" true
    (Serve.validate base = Ok ());
  expect_bad "memoize under faults"
    { base with Serve.memoize = true; plan = flip_plan };
  expect_bad "workers 0" { base with Serve.workers = 0 };
  expect_bad "duplicate degraded ids"
    { base with Serve.workers = 4; degraded_instances = [ 1; 1 ] };
  (* The diagnosis matches what [run] would raise, message for message. *)
  let bad = { base with Serve.memoize = true; plan = flip_plan } in
  match serve ~cfg:bad () with
  | _ -> Alcotest.fail "run accepted memoize under a fault plan"
  | exception Invalid_argument msg -> (
      match Serve.validate bad with
      | Error (Serve.Bad_config msg') ->
          Alcotest.(check string) "same message on both surfaces" msg msg'
      | _ -> Alcotest.fail "validate accepted what run rejected")

(* The report renderers agree with the outcome list they render. *)
let test_report_renderings () =
  let r = serve ~cfg:base () in
  let tally = Serve.tally r in
  Alcotest.(check bool) "tally has one line per request + header/footer" true
    (List.length (String.split_on_char '\n' (String.trim tally)) = 12 + 6);
  Alcotest.(check bool) "tally counts distinct digests" true
    (Helpers.contains tally "digests distinct-inputs=");
  let json = Trace.Json.to_string (Serve.to_json r) in
  Alcotest.(check bool) "json mentions outcomes" true
    (Helpers.contains json "\"outcomes\":");
  Alcotest.(check bool) "summary mentions throughput" true
    (Helpers.contains (Serve.summary r) "throughput")

let suites =
  [ ( "serve",
      [ Alcotest.test_case "tally invariant over workers/jobs" `Quick
          test_tally_worker_invariant;
        Alcotest.test_case "throughput scales with fleet" `Quick
          test_throughput_scales;
        Alcotest.test_case "batching amortizes dispatch" `Quick
          test_batching_amortizes_overhead;
        Alcotest.test_case "admission shedding" `Quick test_admission_shedding;
        Alcotest.test_case "degraded routing" `Quick test_degraded_routing;
        Alcotest.test_case "degrade after faults" `Quick test_degrade_after_faults;
        Alcotest.test_case "abort on exhausted retries" `Quick
          test_abort_on_exhausted_retries;
        Alcotest.test_case "digests match direct runs" `Quick
          test_digest_matches_direct_run;
        Alcotest.test_case "tally invariant over plan path" `Quick
          test_tally_plan_invariant;
        Alcotest.test_case "input mix" `Quick test_input_mix;
        Alcotest.test_case "memoize" `Quick test_memoize;
        Alcotest.test_case "percentiles" `Quick test_percentiles;
        Alcotest.test_case "boundary conditions" `Quick test_boundary_conditions;
        Alcotest.test_case "rejects bad config" `Quick test_rejects_bad_config;
        Alcotest.test_case "validate typed errors" `Quick
          test_validate_typed_errors;
        Alcotest.test_case "report renderings" `Quick test_report_renderings;
        prop_tally_invariance;
      ] )
  ]
