(* End-to-end integration tests: HTVM-compiled artifacts running on the
   simulated DIANA SoC must be bit-identical to the graph interpreter, in
   every Table-I configuration, and reproduce the paper's qualitative
   results (OoM, offload coverage, speedup orderings, binary size
   directions). *)

module C = Htvm.Compile

(* Table I configurations: (label, platform, weight-precision policy). *)
let configurations =
  [
    ("cpu", Arch.Diana.cpu_only, Models.Policy.All_int8);
    ("digital", Arch.Diana.digital_only, Models.Policy.All_int8);
    ("analog", Arch.Diana.analog_only, Models.Policy.All_ternary);
    ("both", Arch.Diana.platform, Models.Policy.Mixed);
  ]

let compile_exn cfg g =
  match C.compile cfg g with
  | Ok a -> a
  | Error e -> Alcotest.failf "compile failed: %s" (C.error_to_string e)

let check_model_config (e : Models.Zoo.entry) (label, platform, policy) =
  let g = e.Models.Zoo.build ?seed:None policy in
  let artifact = compile_exn (C.default_config platform) g in
  let inputs = Models.Zoo.random_input g in
  let reference = Ir.Eval.run g ~inputs in
  let out, report = C.run artifact ~inputs in
  if not (Tensor.equal reference out) then
    Alcotest.failf "%s/%s: simulated output differs from interpreter (max diff %d)"
      e.Models.Zoo.model_name label
      (Tensor.max_abs_diff reference out);
  report

let test_exact name =
  List.map
    (fun ((label, _, _) as config) ->
      Alcotest.test_case
        (Printf.sprintf "%s %s exact" name label)
        `Quick
        (fun () -> ignore (check_model_config (Models.Zoo.find name) config)))
    configurations

let test_tvm_baseline_mobilenet_oom () =
  (* Plain TVM (no buffer reuse) cannot fit MobileNet's activations plus
     weights in DIANA's 512 kB L2 — Table I's OoM entry. *)
  let g =
    (Models.Zoo.find "mobilenet_v1_025").Models.Zoo.build Models.Policy.All_int8
  in
  match C.compile (C.tvm_baseline_config Arch.Diana.cpu_only) g with
  | Error (C.Out_of_memory { oom_needed_bytes; oom_capacity_bytes; _ }) ->
      Alcotest.(check bool) "oom allocation exceeds capacity" true
        (oom_needed_bytes >= oom_capacity_bytes)
  | Error e -> Alcotest.failf "expected OoM, got: %s" (C.error_to_string e)
  | Ok _ -> Alcotest.fail "expected MobileNet to run out of memory under plain TVM"

let test_tvm_baseline_others_fit () =
  List.iter
    (fun name ->
      let g = (Models.Zoo.find name).Models.Zoo.build Models.Policy.All_int8 in
      match C.compile (C.tvm_baseline_config Arch.Diana.cpu_only) g with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "%s should fit under plain TVM: %s" name (C.error_to_string e))
    [ "ds_cnn"; "resnet8"; "toyadmos_dae" ]

let test_digital_offloads_everything_heavy () =
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  let artifact = compile_exn (C.default_config Arch.Diana.digital_only) g in
  (* No convolution or dense may remain on the CPU. *)
  List.iter
    (fun (li : C.layer_info) ->
      if li.C.li_target = "cpu" then
        if
          Helpers.contains li.C.li_desc "conv" || Helpers.contains li.C.li_desc "dense"
        then Alcotest.failf "heavy kernel on CPU: %s" li.C.li_desc)
    artifact.C.layers;
  let offloaded =
    List.length (List.filter (fun li -> li.C.li_target <> "cpu") artifact.C.layers)
  in
  (* 8 convs + 2 downsample convs... ResNet-8: stem + 3 stacks x (2 convs)
     + 2 downsamples + 3 adds + 1 dense = 13 offloaded layers. *)
  Alcotest.(check int) "13 offloaded layers" 13 offloaded

let test_mixed_uses_both_accelerators () =
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.Mixed in
  let artifact = compile_exn (C.default_config Arch.Diana.platform) g in
  let targets = List.map (fun li -> li.C.li_target) artifact.C.layers in
  Alcotest.(check bool) "digital used" true (List.mem "diana_digital" targets);
  Alcotest.(check bool) "analog used" true (List.mem "diana_analog" targets)

let run_cycles name (label, platform, policy) =
  let report = check_model_config (Models.Zoo.find name) (label, platform, policy) in
  (C.full_cycles report, C.peak_cycles report)

let test_speedup_orderings () =
  (* The paper's headline results, as orderings rather than exact factors:
     digital beats CPU by two orders of magnitude on ResNet; mixed beats
     analog-only substantially on DS-CNN (8x in the paper). *)
  let cpu_full, _ = run_cycles "resnet8" (List.nth configurations 0) in
  let dig_full, dig_peak = run_cycles "resnet8" (List.nth configurations 1) in
  Alcotest.(check bool) "resnet digital >50x over cpu" true (cpu_full > 50 * dig_full);
  Alcotest.(check bool) "peak <= full" true (dig_peak <= dig_full);
  let ana_full, _ = run_cycles "ds_cnn" (List.nth configurations 2) in
  let both_full, _ = run_cycles "ds_cnn" (List.nth configurations 3) in
  Alcotest.(check bool) "dscnn mixed >2x over analog-only" true
    (ana_full > 2 * both_full)

let binary_kb name (label, platform, policy) =
  ignore label;
  let g = (Models.Zoo.find name).Models.Zoo.build ?seed:None policy in
  let artifact = compile_exn (C.default_config platform) g in
  Codegen.Size.total_kb artifact.C.size

let test_binary_size_directions () =
  (* ResNet: the digital binary is smaller than the CPU one (coarse
     accelerator calls replace conv kernels, paper: -12.3%). *)
  let cpu = binary_kb "resnet8" (List.nth configurations 0) in
  let dig = binary_kb "resnet8" (List.nth configurations 1) in
  Alcotest.(check bool) "resnet digital smaller than cpu" true (dig < cpu);
  (* ToyAdmos: ternary weights store far smaller than int8 (171 vs 315 kB
     in the paper). *)
  let dig_t = binary_kb "toyadmos_dae" (List.nth configurations 1) in
  let ana_t = binary_kb "toyadmos_dae" (List.nth configurations 2) in
  Alcotest.(check bool) "toyadmos ternary smaller" true (ana_t < dig_t);
  (* DSCNN: IMC padding makes the analog binary bigger (93 vs 60 kB). *)
  let dig_d = binary_kb "ds_cnn" (List.nth configurations 1) in
  let ana_d = binary_kb "ds_cnn" (List.nth configurations 2) in
  Alcotest.(check bool) "dscnn analog bigger (IMC padding)" true (ana_d > dig_d)

let test_artifact_structure () =
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  let artifact = compile_exn (C.default_config Arch.Diana.digital_only) g in
  Alcotest.(check bool) "C source emitted" true
    (Helpers.contains artifact.C.c_source "htvm_network_run");
  Alcotest.(check bool) "static weights resident" true (artifact.C.l2_static_bytes > 0);
  Alcotest.(check bool) "arena positive" true (artifact.C.l2_arena_bytes > 0);
  Alcotest.(check bool) "arena + static within L2" true
    (artifact.C.l2_static_bytes + artifact.C.l2_arena_bytes
    <= Util.Ints.kib 512);
  match Sim.Program.validate artifact.C.program with
  | Ok () -> ()
  | Error e -> Alcotest.failf "program invalid: %s" e

let suites =
  [ ( "htvm-end-to-end",
      List.concat
        [
          test_exact "resnet8";
          test_exact "ds_cnn";
          test_exact "toyadmos_dae";
          test_exact "mobilenet_v1_025";
          [
            Alcotest.test_case "tvm baseline mobilenet OoM" `Quick
              test_tvm_baseline_mobilenet_oom;
            Alcotest.test_case "tvm baseline others fit" `Quick
              test_tvm_baseline_others_fit;
            Alcotest.test_case "digital offloads heavy ops" `Quick
              test_digital_offloads_everything_heavy;
            Alcotest.test_case "mixed uses both accels" `Quick
              test_mixed_uses_both_accelerators;
            Alcotest.test_case "speedup orderings" `Quick test_speedup_orderings;
            Alcotest.test_case "binary size directions" `Quick
              test_binary_size_directions;
            Alcotest.test_case "artifact structure" `Quick test_artifact_structure;
          ];
        ] )
  ]
