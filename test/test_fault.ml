(* The resilience layer: seeded fault injection, the runtime reliability
   model (checksums + bounded retry), the compiler's fallback ladder and
   the chaos checker. The two load-bearing invariants:

   - an empty plan is a strict no-op (identical output, cycles and trace
     event counts), so resilience support costs nothing when unused;
   - a recovered run is bit-identical to the fault-free run and its extra
     wall cycles are exactly the modeled retry cost — detected faults
     never mutate simulated memory. *)

module Dtype = Tensor.Dtype
module C = Htvm.Compile
module Plan = Fault.Plan
module Session = Fault.Session

(* One digital conv step, small enough to be untiled: its single dma_in
   transfer makes retry-cycle accounting exactly predictable. *)
let conv_graph ?(wdtype = Dtype.I8) () =
  let b = Ir.Graph.Builder.create () in
  let rng = Util.Rng.create 8 in
  let x = Ir.Graph.Builder.input b ~name:"x" Dtype.I8 [| 4; 8; 8 |] in
  let w = Ir.Graph.Builder.const b (Tensor.random rng wdtype [| 8; 4; 3; 3 |]) in
  let conv = Ir.Graph.Builder.conv2d b ~padding:(1, 1) x ~weights:w in
  let q =
    Ir.Graph.Builder.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 conv
  in
  Ir.Graph.Builder.finish b ~output:q

let compile_exn cfg g =
  match C.compile cfg g with
  | Ok a -> a
  | Error e -> Alcotest.failf "compile failed: %s" (C.error_to_string e)

let inputs_for _g =
  [ ("x", Tensor.random (Util.Rng.create 9) Dtype.I8 [| 4; 8; 8 |]) ]

let digital_artifact () =
  let g = conv_graph () in
  (g, compile_exn (C.default_config Arch.Diana.digital_only) g)

let plan_exn spec =
  match Plan.of_string spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad plan spec %S: %s" spec e

(* --- plan data model --- *)

let test_plan_roundtrip () =
  let spec = "seed=42,dma_in@every=5:drop,l2@nth=3:flip=2,compute(diana_analog)@p=0.25:stall=200" in
  let p = plan_exn spec in
  Alcotest.(check int) "seed" 42 p.Plan.seed;
  Alcotest.(check int) "rules" 3 (List.length p.Plan.rules);
  let p' = plan_exn (Plan.to_string p) in
  Alcotest.(check bool) "canonical round-trip" true (p = p');
  Alcotest.(check bool) "none is empty" true
    (Plan.is_empty (plan_exn "none") && Plan.is_empty (plan_exn ""));
  Alcotest.(check string) "empty renders as none" "none"
    (Plan.to_string Plan.empty);
  (match Plan.of_string "dma_in@always:explode" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad kind accepted");
  match Plan.of_string "warp_core@always:drop" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad site accepted"

(* --- empty plan is a strict no-op --- *)

let test_empty_plan_noop () =
  let g, artifact = digital_artifact () in
  let inputs = inputs_for g in
  let t_clean = Trace.create () in
  let out_clean, rep_clean = C.run ~trace:t_clean artifact ~inputs in
  let t_empty = Trace.create () in
  let session = Session.create Plan.empty in
  let out_empty, rep_empty =
    C.run ~trace:t_empty ~faults:session artifact ~inputs
  in
  Alcotest.(check bool) "output identical" true (Tensor.equal out_clean out_empty);
  Alcotest.(check int) "wall identical"
    rep_clean.Sim.Machine.totals.Sim.Counters.wall
    rep_empty.Sim.Machine.totals.Sim.Counters.wall;
  Alcotest.(check int) "trace event count identical"
    (List.length (Trace.events t_clean))
    (List.length (Trace.events t_empty));
  let st = Session.stats session in
  Alcotest.(check int) "nothing injected" 0 st.Session.injected;
  Alcotest.(check int) "no retry cycles" 0
    rep_empty.Sim.Machine.totals.Sim.Counters.retry_cycles

(* --- exact retry accounting (transient DMA fault) --- *)

let test_retry_accounting_exact () =
  let g, artifact = digital_artifact () in
  List.iter
    (fun (li : C.layer_info) ->
      if li.C.li_tiled then Alcotest.fail "expected an untiled single-transfer program")
    artifact.C.layers;
  let inputs = inputs_for g in
  let out_clean, rep_clean = C.run artifact ~inputs in
  let session = Session.create (plan_exn "seed=1,dma_in@nth=1:drop") in
  let out, rep = C.run ~faults:session ~retry_budget:3 artifact ~inputs in
  Alcotest.(check bool) "recovered run bit-identical" true
    (Tensor.equal out_clean out);
  let st = Session.stats session in
  Alcotest.(check int) "one fault injected" 1 st.Session.injected;
  Alcotest.(check int) "detected" 1 st.Session.detected;
  Alcotest.(check int) "one retry" 1 st.Session.retries;
  Alcotest.(check int) "silent none" 0 st.Session.silent;
  (* The dropped transfer is re-issued after the first back-off: the
     retry costs exactly backoff(1) + the transfer's own cycles, and the
     program has exactly one dma_in transfer, so that is the clean run's
     whole dma_in counter. *)
  let clean = rep_clean.Sim.Machine.totals and faulty = rep.Sim.Machine.totals in
  let expected = Session.backoff 1 + clean.Sim.Counters.dma_in in
  Alcotest.(check int) "retry cycles exact" expected
    faulty.Sim.Counters.retry_cycles;
  Alcotest.(check int) "wall = fault-free wall + retry cycles"
    (clean.Sim.Counters.wall + expected)
    faulty.Sim.Counters.wall;
  Alcotest.(check int) "base dma_in counter unchanged" clean.Sim.Counters.dma_in
    faulty.Sim.Counters.dma_in

let test_backoff_formula () =
  Alcotest.(check (list int)) "exponential, capped at 256"
    [ 8; 16; 32; 64; 128; 256; 256 ]
    (List.map Session.backoff [ 1; 2; 3; 4; 5; 6; 7 ])

(* --- stalls --- *)

let test_stall_accounting () =
  let g, artifact = digital_artifact () in
  let inputs = inputs_for g in
  let out_clean, rep_clean = C.run artifact ~inputs in
  let session = Session.create (plan_exn "seed=5,compute@always:stall=100") in
  let out, rep = C.run ~faults:session artifact ~inputs in
  Alcotest.(check bool) "stall does not corrupt" true (Tensor.equal out_clean out);
  Alcotest.(check int) "stall cycles counted" 100
    rep.Sim.Machine.totals.Sim.Counters.fault_stall;
  Alcotest.(check int) "wall extended by exactly the stall"
    (rep_clean.Sim.Machine.totals.Sim.Counters.wall + 100)
    rep.Sim.Machine.totals.Sim.Counters.wall

(* --- silent corruption --- *)

let test_silent_compute_flip () =
  let g, artifact = digital_artifact () in
  let inputs = inputs_for g in
  let out_clean, _ = C.run artifact ~inputs in
  let session = Session.create (plan_exn "seed=2,compute@always:flip") in
  let out, _ = C.run ~faults:session artifact ~inputs in
  let st = Session.stats session in
  Alcotest.(check int) "one silent fault" 1 st.Session.silent;
  Alcotest.(check int) "nothing detected" 0 st.Session.detected;
  Alcotest.(check bool) "output corrupted" false (Tensor.equal out_clean out)

let test_l2_bit_rot_is_silent_and_free () =
  let g, artifact = digital_artifact () in
  let inputs = inputs_for g in
  let _, rep_clean = C.run artifact ~inputs in
  let session = Session.create (plan_exn "seed=3,l2@always:flip=3") in
  let _, rep = C.run ~faults:session artifact ~inputs in
  let st = Session.stats session in
  Alcotest.(check bool) "rot recorded as silent" true (st.Session.silent > 0);
  Alcotest.(check int) "rot costs no cycles"
    rep_clean.Sim.Machine.totals.Sim.Counters.wall
    rep.Sim.Machine.totals.Sim.Counters.wall

(* Rot in a ternary weight region can leave a byte outside {-1,0,1} —
   something no fault-free flow ever stores. The read path must decode it
   tolerantly (silent corruption), not crash tensor validation. *)
let test_ternary_rot_does_not_crash () =
  let g = conv_graph ~wdtype:Dtype.Ternary () in
  let artifact = compile_exn (C.default_config Arch.Diana.platform) g in
  Alcotest.(check bool) "a layer actually runs on the analog engine" true
    (List.exists (fun (li : C.layer_info) -> li.C.li_target = "diana_analog")
       artifact.C.layers);
  let inputs = inputs_for g in
  let session = Session.create (plan_exn "seed=9,l2@always:flip=2") in
  let _out, _rep = C.run ~faults:session artifact ~inputs in
  let st = Session.stats session in
  Alcotest.(check bool) "rot recorded as silent" true (st.Session.silent > 0);
  Alcotest.(check int) "nothing detected" 0 st.Session.detected

(* --- retry budget exhaustion --- *)

let test_unrecovered_raises () =
  let g, artifact = digital_artifact () in
  let inputs = inputs_for g in
  let session = Session.create (plan_exn "seed=4,dma_in@always:drop") in
  match C.run ~faults:session ~retry_budget:2 artifact ~inputs with
  | _ -> Alcotest.fail "expected Unrecovered"
  | exception Session.Unrecovered { site; attempts } ->
      Alcotest.(check string) "failing site" "dma_in" site;
      (* budget 2 allows attempts 1 and 2 to retry; attempt 3 aborts *)
      Alcotest.(check int) "attempts" 3 attempts

(* --- compiler fallback ladder --- *)

let test_degraded_target_demotes () =
  let g = conv_graph ~wdtype:Dtype.Ternary () in
  let cfg =
    { (C.default_config Arch.Diana.platform) with
      C.degraded_targets = [ "diana_analog" ] }
  in
  let artifact = compile_exn cfg g in
  (match artifact.C.demotions with
  | [ d ] ->
      Alcotest.(check string) "left the degraded target" "diana_analog" d.C.d_from;
      Alcotest.(check bool) "reason" true (d.C.d_reason = C.Degraded_target)
  | ds -> Alcotest.failf "expected one demotion, got %d" (List.length ds));
  List.iter
    (fun (li : C.layer_info) ->
      Alcotest.(check bool) "nothing lowered on the degraded engine" true
        (li.C.li_target <> "diana_analog"))
    artifact.C.layers;
  let inputs = inputs_for g in
  let out, report = C.run artifact ~inputs in
  Alcotest.(check bool) "demoted artifact still bit-exact" true
    (Tensor.equal out (Ir.Eval.run g ~inputs));
  (* the demotion reason must be visible in the machine-readable report *)
  let json = Htvm.Report.to_json artifact report in
  Alcotest.(check bool) "report JSON carries the demotion" true
    (Helpers.contains json "\"demotions\""
    && Helpers.contains json "degraded_target")

let test_over_budget_demotes () =
  let g, clean_artifact = digital_artifact () in
  let cfg =
    { (C.default_config Arch.Diana.digital_only) with
      C.segment_budget_cycles = Some 1 }
  in
  let artifact = compile_exn cfg g in
  (match artifact.C.demotions with
  | [ d ] -> (
      Alcotest.(check string) "demoted to the host" "cpu" d.C.d_to;
      match d.C.d_reason with
      | C.Over_budget { estimated_cycles; budget_cycles } ->
          Alcotest.(check int) "budget recorded" 1 budget_cycles;
          Alcotest.(check bool) "estimate above budget" true (estimated_cycles > 1)
      | _ -> Alcotest.fail "expected an Over_budget reason")
  | ds -> Alcotest.failf "expected one demotion, got %d" (List.length ds));
  let inputs = inputs_for g in
  let out, _ = C.run artifact ~inputs in
  let clean_out, _ = C.run clean_artifact ~inputs in
  Alcotest.(check bool) "cpu fallback bit-exact" true (Tensor.equal out clean_out)

let test_memplan_never_fits () =
  let req = { Dory.Memplan.buffer_id = 0; bytes = 200; birth = 0; death = 1 } in
  match Dory.Memplan.plan Dory.Memplan.Reuse ~capacity:100 ~align:8 [ req ] with
  | Error (Dory.Memplan.Never_fits { nf_buffer_id; nf_bytes; nf_capacity }) ->
      Alcotest.(check int) "buffer id" 0 nf_buffer_id;
      Alcotest.(check int) "bytes" 200 nf_bytes;
      Alcotest.(check int) "capacity" 100 nf_capacity
  | Error e ->
      Alcotest.failf "expected Never_fits, got: %s" (Dory.Memplan.error_to_string e)
  | Ok _ -> Alcotest.fail "expected the oversized buffer to be rejected"

(* --- chaos checker --- *)

let test_chaos_deterministic_across_jobs () =
  let run = Check.run_chaos_seed ?retry_budget:None in
  let classes jobs =
    List.map
      (fun (c : Check.case) -> (c.Check.seed, Check.class_of c.Check.verdict))
      (Check.fuzz ~jobs ~run ~start:0 ~count:16 ())
  in
  let j1 = classes 1 and j4 = classes 4 in
  Alcotest.(check bool) "seed-order-identical verdicts at jobs 1 and 4" true
    (j1 = j4);
  List.iter
    (fun (seed, cls) ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d verdict %s is not a failure" seed cls)
        true
        (List.mem cls [ "pass"; "recovered"; "degraded"; "resource:out-of-memory";
                        "resource:no-feasible-tile" ]))
    j1

let test_chaos_reproducer_embeds_plan () =
  let seed = 57 in
  let g = Check.Gen.generate seed in
  let cfg = Check.Gen.chaos_config seed in
  let plan = Check.Gen.random_fault_plan seed in
  let text =
    Check.reproducer ~faults:plan ~seed ~config:cfg ~graph:g
      ~verdict:(Check.Pass { wall_cycles = 1 }) ()
  in
  Alcotest.(check bool) "fault plan line present" true
    (Helpers.contains text ("# faults: " ^ Plan.to_string plan));
  Alcotest.(check bool) "chaos replay command" true
    (Helpers.contains text (Printf.sprintf "htvmc chaos --replay-seed %d" seed));
  (* the embedded spec round-trips back to the exact plan *)
  let fault_line =
    List.find (fun l -> String.length l > 9 && String.sub l 0 9 = "# faults:")
      (String.split_on_char '\n' text)
  in
  let spec = String.sub fault_line 9 (String.length fault_line - 9) in
  (match Plan.of_string (String.trim spec) with
  | Ok p -> Alcotest.(check bool) "plan round-trips" true (p = plan)
  | Error e -> Alcotest.failf "embedded plan does not parse: %s" e);
  match Ir.Text.of_string text with
  | Ok g' ->
      Alcotest.(check int) "graph survives the preamble" (Ir.Graph.app_count g)
        (Ir.Graph.app_count g')
  | Error e -> Alcotest.failf "reproducer does not parse: %s" e

let suites =
  [ ( "fault",
      [ Alcotest.test_case "plan spec round-trips" `Quick test_plan_roundtrip;
        Alcotest.test_case "empty plan is a strict no-op" `Quick test_empty_plan_noop;
        Alcotest.test_case "exact retry accounting" `Quick test_retry_accounting_exact;
        Alcotest.test_case "backoff formula" `Quick test_backoff_formula;
        Alcotest.test_case "stall accounting" `Quick test_stall_accounting;
        Alcotest.test_case "silent compute flip corrupts" `Quick
          test_silent_compute_flip;
        Alcotest.test_case "L2 bit rot silent and free" `Quick
          test_l2_bit_rot_is_silent_and_free;
        Alcotest.test_case "ternary rot decodes tolerantly" `Quick
          test_ternary_rot_does_not_crash;
        Alcotest.test_case "unrecovered raises past budget" `Quick
          test_unrecovered_raises;
        Alcotest.test_case "degraded target demotes" `Quick
          test_degraded_target_demotes;
        Alcotest.test_case "over-budget segment demotes" `Quick
          test_over_budget_demotes;
        Alcotest.test_case "memplan never-fits diagnosis" `Quick
          test_memplan_never_fits;
        Alcotest.test_case "chaos deterministic across jobs" `Quick
          test_chaos_deterministic_across_jobs;
        Alcotest.test_case "chaos reproducer embeds plan" `Quick
          test_chaos_reproducer_embeds_plan;
      ] )
  ]
