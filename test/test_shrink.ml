(* Shrinker regression suite: known-bad predicates must converge to tiny
   reproducers, within a bounded number of predicate evaluations, and
   deterministically. Structural predicates (no compilation involved)
   keep these tests fast; the end-to-end path through Verdict runs once
   with a small check budget. *)

module G = Ir.Graph
module C = Htvm.Compile

let has_conv_k_div3 g =
  List.exists
    (fun id ->
      match G.node g id with
      | G.App { op = Ir.Op.Conv2d { groups = 1; _ }; args = [ _; w ] } -> (
          match G.node g w with
          | G.Const t -> (Tensor.shape t).(0) mod 3 = 0
          | _ -> false)
      | _ -> false)
    (G.node_ids g)

let has_depthwise g =
  List.exists
    (fun id ->
      match G.node g id with
      | G.App { op = Ir.Op.Conv2d { groups; _ }; _ } -> groups > 1
      | _ -> false)
    (G.node_ids g)

(* First generator seed whose graph satisfies [p] and has at least
   [min_ops] applications — deterministic, so the tests are too. *)
let find_seed ?(min_ops = 10) p =
  let rec go seed =
    if seed > 400 then Alcotest.fail "no seed satisfies the predicate"
    else
      let g = Check.Gen.generate seed in
      if p g && G.app_count g >= min_ops then (seed, g) else go (seed + 1)
  in
  go 0

let shrink_structural ?max_checks p g =
  Check.Shrink.shrink ?max_checks
    ~predicate:(fun _cfg g -> p g)
    (C.default_config Arch.Diana.platform)
    g

let test_converges_on_k_div3 () =
  let _, g = find_seed has_conv_k_div3 in
  let o = shrink_structural has_conv_k_div3 g in
  Alcotest.(check bool) "still fails" true (has_conv_k_div3 o.Check.Shrink.graph);
  Alcotest.(check bool) "valid graph" true
    (G.validate o.Check.Shrink.graph = Ok ());
  Alcotest.(check bool)
    (Printf.sprintf "converged to <= 5 ops (got %d)"
       (G.app_count o.Check.Shrink.graph))
    true
    (G.app_count o.Check.Shrink.graph <= 5);
  Alcotest.(check bool) "at least 5x smaller" true
    (G.app_count g >= 5 * G.app_count o.Check.Shrink.graph);
  Alcotest.(check bool) "bounded checks" true (o.Check.Shrink.checks <= 400)

let test_converges_on_depthwise () =
  let _, g = find_seed ~min_ops:6 has_depthwise in
  let o = shrink_structural has_depthwise g in
  Alcotest.(check bool) "still fails" true (has_depthwise o.Check.Shrink.graph);
  Alcotest.(check bool) "converged to <= 5 ops" true
    (G.app_count o.Check.Shrink.graph <= 5)

let test_deterministic () =
  let _, g = find_seed has_conv_k_div3 in
  let o1 = shrink_structural has_conv_k_div3 g in
  let o2 = shrink_structural has_conv_k_div3 g in
  Alcotest.(check string) "identical minimized graph"
    (Ir.Text.to_string o1.Check.Shrink.graph)
    (Ir.Text.to_string o2.Check.Shrink.graph);
  Alcotest.(check int) "identical check count" o1.Check.Shrink.checks
    o2.Check.Shrink.checks;
  Alcotest.(check int) "identical reduction count" o1.Check.Shrink.accepted
    o2.Check.Shrink.accepted

let test_respects_max_checks () =
  let _, g = find_seed has_conv_k_div3 in
  let o = shrink_structural ~max_checks:7 has_conv_k_div3 g in
  Alcotest.(check bool) "stops at the budget" true (o.Check.Shrink.checks <= 7);
  Alcotest.(check bool) "still fails" true (has_conv_k_div3 o.Check.Shrink.graph)

let test_simplifies_config_toward_default () =
  (* A pure-graph predicate lets every config knob reset: the minimized
     reproducer should carry the stock deployment, not the fuzzed one. *)
  let g = Check.Gen.generate 1 in
  let cfg =
    {
      (C.default_config Arch.Diana.platform) with
      C.memory_strategy = Dory.Memplan.No_reuse;
      jobs = 4;
      solver_cache = Some (Dory.Tiling_cache.create ());
      exhaustive_tiling = true;
      autotune_budget = Some 32;
    }
  in
  let o =
    Check.Shrink.shrink ~predicate:(fun _ g -> G.app_count g >= 1) cfg g
  in
  Alcotest.(check int) "graph fully minimized" 1 (G.app_count o.Check.Shrink.graph);
  Alcotest.(check int) "jobs reset" 1 o.Check.Shrink.config.C.jobs;
  Alcotest.(check bool) "cache dropped" true
    (o.Check.Shrink.config.C.solver_cache = None);
  Alcotest.(check bool) "exhaustive search off" false
    o.Check.Shrink.config.C.exhaustive_tiling;
  Alcotest.(check bool) "autotune off" true
    (o.Check.Shrink.config.C.autotune_budget = None);
  Alcotest.(check bool) "planner back to reuse" true
    (o.Check.Shrink.config.C.memory_strategy = Dory.Memplan.Reuse)

let test_shrink_failure_preserves_class () =
  (* End to end through Verdict: minimizing under the "same class"
     predicate keeps the class — here a green case stays green while the
     graph shrinks, exercising compile-and-run on every accepted step. *)
  let seed = 0 in
  let g = Check.Gen.generate seed in
  let cfg = Check.Gen.random_config seed in
  let verdict = Check.run_case ~input_seed:seed cfg g in
  Alcotest.(check string) "starting class" "pass" (Check.class_of verdict);
  let o = Check.Shrink.shrink_failure ~max_checks:60 ~input_seed:seed cfg g verdict in
  Alcotest.(check bool) "strictly smaller" true
    (G.app_count o.Check.Shrink.graph < G.app_count g);
  Alcotest.(check string) "class preserved" "pass"
    (Check.class_of
       (Check.run_case ~input_seed:seed o.Check.Shrink.config o.Check.Shrink.graph))

let suites =
  [ ( "shrink",
      [ Alcotest.test_case "converges on k mod 3" `Quick test_converges_on_k_div3;
        Alcotest.test_case "converges on depthwise" `Quick test_converges_on_depthwise;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "respects max_checks" `Quick test_respects_max_checks;
        Alcotest.test_case "simplifies config" `Quick
          test_simplifies_config_toward_default;
        Alcotest.test_case "shrink_failure preserves class" `Quick
          test_shrink_failure_preserves_class;
      ] )
  ]
