(* Tests for the textual model format: round-trips, payload encoding and
   parser diagnostics. *)

module Dtype = Tensor.Dtype
module B = Ir.Graph.Builder

let roundtrip g =
  match Ir.Text.of_string (Ir.Text.to_string g) with
  | Ok g' -> g'
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let test_roundtrip_small () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2; 4; 4 |] in
  let w = B.const b (Tensor.random (Util.Rng.create 3) Dtype.I8 [| 3; 2; 3; 3 |]) in
  let conv = B.conv2d b ~padding:(1, 1) x ~weights:w in
  let q = B.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 conv in
  let g = B.finish b ~output:q in
  let g' = roundtrip g in
  let input = Tensor.random (Util.Rng.create 4) Dtype.I8 [| 2; 4; 4 |] in
  Helpers.check_tensor "same semantics"
    (Ir.Eval.run g ~inputs:[ ("x", input) ])
    (Ir.Eval.run g' ~inputs:[ ("x", input) ])

let test_roundtrip_all_dtypes () =
  (* Payload codec check: a constant of each dtype survives serialization
     bit-for-bit. *)
  List.iter
    (fun dt ->
      let t = Tensor.random (Util.Rng.create 6) dt [| 3; 5 |] in
      let b = B.create () in
      let _ = B.input b ~name:"x" Dtype.I8 [| 1 |] in
      let cid = B.const b t in
      let g = B.finish b ~output:(B.app b (Ir.Op.Reshape [| 15 |]) [ cid ]) in
      let g' = roundtrip g in
      match Ir.Graph.node g' 1 with
      | Ir.Graph.Const t' -> Helpers.check_tensor (Dtype.to_string dt) t t'
      | _ -> Alcotest.fail "const lost")
    [ Dtype.I8; Dtype.U7; Dtype.I16; Dtype.I32; Dtype.Ternary ]

let test_roundtrip_mlperf_models () =
  List.iter
    (fun (e : Models.Zoo.entry) ->
      let g = e.Models.Zoo.build Models.Policy.Mixed in
      let g' = roundtrip g in
      let inputs = Models.Zoo.random_input g in
      Helpers.check_tensor e.Models.Zoo.model_name (Ir.Eval.run g ~inputs)
        (Ir.Eval.run g' ~inputs))
    Models.Zoo.all

let test_save_load_file () =
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  let path = Filename.temp_file "htvm_model" ".htvm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ir.Text.save path g;
      match Ir.Text.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok g' ->
          let inputs = Models.Zoo.random_input g in
          Helpers.check_tensor "file round-trip" (Ir.Eval.run g ~inputs)
            (Ir.Eval.run g' ~inputs))

let expect_error s needle =
  match Ir.Text.of_string s with
  | Ok _ -> Alcotest.failf "expected parse error mentioning %S" needle
  | Error e ->
      if not (Helpers.contains e needle) then
        Alcotest.failf "error %S does not mention %S" e needle

let test_parser_diagnostics () =
  expect_error "bogus" "header";
  expect_error "htvm-graph v1\nfrobnicate %0\n" "unknown directive";
  expect_error "htvm-graph v1\ninput %0 x i9 4\noutput %0\n" "unknown dtype";
  expect_error "htvm-graph v1\ninput %0 x i8 4\napp %1 nn.relu args %5\noutput %1\n"
    "before its definition";
  expect_error "htvm-graph v1\ninput %0 x i8 4\n" "no output";
  expect_error "htvm-graph v1\nconst %0 i8 2 ff\noutput %0\n" "hex digits";
  (* Line numbers point at the offender. *)
  expect_error "htvm-graph v1\ninput %0 x i8 4\napp %1 mystery args %0\noutput %1\n"
    "line 3"

let test_missing_file () =
  match Ir.Text.load "/nonexistent/path.htvm" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for missing file"

(* Names that would break the single-token textual encoding are rejected
   when the graph is built — an in-memory graph can no longer be
   unserializable — and the validator catches the same defect in parsed
   or hand-assembled graphs. *)
let test_input_name_validation () =
  let expect_invalid name =
    let b = B.create () in
    match B.input b ~name Dtype.I8 [| 1 |] with
    | _ -> Alcotest.failf "name %S accepted by the builder" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "a b";
  expect_invalid " lead";
  expect_invalid "trail ";
  expect_invalid "tab\tname";
  expect_invalid "line\nname";
  expect_invalid "";
  (* Space-adjacent characters stay legal: underscores, dots, colons,
     dashes — everything that stays one token. *)
  List.iter
    (fun name ->
      let b = B.create () in
      let x = B.input b ~name Dtype.I8 [| 2 |] in
      let g = B.finish b ~output:x in
      Alcotest.(check bool)
        (Printf.sprintf "%S validates" name)
        true
        (Result.is_ok (Ir.Graph.validate g));
      ignore (roundtrip g))
    [ "a_b"; "serving_default:0"; "x-y.z"; "_" ];
  (* The parser reports (not raises) the same defect: an empty name token. *)
  match Ir.Text.of_string "htvm-graph v1\ninput %0  i8 4\noutput %0\n" with
  | Ok _ -> Alcotest.fail "parser accepted an empty input name"
  | Error _ -> ()

(* Round trip over the space-adjacent corners called out in the issue:
   token-legal names, rank-0 ("scalar") shapes, and negative int8
   payload bytes (sign-extension through the hex codec). The printed
   form itself must be a fixpoint. *)
let prop_roundtrip_names_scalars_negatives =
  let gen =
    let open QCheck.Gen in
    let name_char =
      oneof [ char_range 'a' 'z'; oneofl [ '_'; '.'; ':'; '-'; '0'; '9' ] ]
    in
    let name = map (fun cs -> String.concat "" (List.map (String.make 1) cs))
        (list_size (int_range 1 8) name_char)
    in
    triple name (int_range (-128) (-1)) bool
  in
  Helpers.qtest ~count:60 "round-trip: names, scalar shapes, negative int8"
    (QCheck.make gen)
    (fun (name, neg, scalar_input) ->
      let b = B.create () in
      let x =
        B.input b ~name Dtype.I8 (if scalar_input then [||] else [| 2; 2 |])
      in
      let c = B.const b (Tensor.scalar Dtype.I8 neg) in
      let sum = B.add b x c in
      let g = B.finish b ~output:(if scalar_input then c else sum) in
      ignore x;
      let printed = Ir.Text.to_string g in
      match Ir.Text.of_string printed with
      | Error _ -> false
      | Ok g' -> Ir.Text.to_string g' = printed)

let prop_roundtrip_random_graphs =
  Helpers.qtest ~count:40 "text round-trip preserves semantics"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Check.Gen.generate seed in
      match Ir.Text.of_string (Ir.Text.to_string g) with
      | Error _ -> false
      | Ok g' ->
          let inputs = Models.Zoo.random_input ~seed g in
          Tensor.equal (Ir.Eval.run g ~inputs) (Ir.Eval.run g' ~inputs))

let suites =
  [ ( "text-format",
      [ Alcotest.test_case "roundtrip small" `Quick test_roundtrip_small;
        Alcotest.test_case "roundtrip dtypes" `Quick test_roundtrip_all_dtypes;
        Alcotest.test_case "roundtrip mlperf models" `Quick test_roundtrip_mlperf_models;
        Alcotest.test_case "save/load file" `Quick test_save_load_file;
        Alcotest.test_case "parser diagnostics" `Quick test_parser_diagnostics;
        Alcotest.test_case "missing file" `Quick test_missing_file;
        Alcotest.test_case "input name validation" `Quick test_input_name_validation;
        prop_roundtrip_names_scalars_negatives;
        prop_roundtrip_random_graphs;
      ] )
  ]
