(* Tests for the textual model format: round-trips, payload encoding and
   parser diagnostics. *)

module Dtype = Tensor.Dtype
module B = Ir.Graph.Builder

let roundtrip g =
  match Ir.Text.of_string (Ir.Text.to_string g) with
  | Ok g' -> g'
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let test_roundtrip_small () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2; 4; 4 |] in
  let w = B.const b (Tensor.random (Util.Rng.create 3) Dtype.I8 [| 3; 2; 3; 3 |]) in
  let conv = B.conv2d b ~padding:(1, 1) x ~weights:w in
  let q = B.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 conv in
  let g = B.finish b ~output:q in
  let g' = roundtrip g in
  let input = Tensor.random (Util.Rng.create 4) Dtype.I8 [| 2; 4; 4 |] in
  Helpers.check_tensor "same semantics"
    (Ir.Eval.run g ~inputs:[ ("x", input) ])
    (Ir.Eval.run g' ~inputs:[ ("x", input) ])

let test_roundtrip_all_dtypes () =
  (* Payload codec check: a constant of each dtype survives serialization
     bit-for-bit. *)
  List.iter
    (fun dt ->
      let t = Tensor.random (Util.Rng.create 6) dt [| 3; 5 |] in
      let b = B.create () in
      let _ = B.input b ~name:"x" Dtype.I8 [| 1 |] in
      let cid = B.const b t in
      let g = B.finish b ~output:(B.app b (Ir.Op.Reshape [| 15 |]) [ cid ]) in
      let g' = roundtrip g in
      match Ir.Graph.node g' 1 with
      | Ir.Graph.Const t' -> Helpers.check_tensor (Dtype.to_string dt) t t'
      | _ -> Alcotest.fail "const lost")
    [ Dtype.I8; Dtype.U7; Dtype.I16; Dtype.I32; Dtype.Ternary ]

let test_roundtrip_mlperf_models () =
  List.iter
    (fun (e : Models.Zoo.entry) ->
      let g = e.Models.Zoo.build Models.Policy.Mixed in
      let g' = roundtrip g in
      let inputs = Models.Zoo.random_input g in
      Helpers.check_tensor e.Models.Zoo.model_name (Ir.Eval.run g ~inputs)
        (Ir.Eval.run g' ~inputs))
    Models.Zoo.all

let test_save_load_file () =
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  let path = Filename.temp_file "htvm_model" ".htvm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Ir.Text.save path g;
      match Ir.Text.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok g' ->
          let inputs = Models.Zoo.random_input g in
          Helpers.check_tensor "file round-trip" (Ir.Eval.run g ~inputs)
            (Ir.Eval.run g' ~inputs))

let expect_error s needle =
  match Ir.Text.of_string s with
  | Ok _ -> Alcotest.failf "expected parse error mentioning %S" needle
  | Error e ->
      if not (Helpers.contains e needle) then
        Alcotest.failf "error %S does not mention %S" e needle

let test_parser_diagnostics () =
  expect_error "bogus" "header";
  expect_error "htvm-graph v1\nfrobnicate %0\n" "unknown directive";
  expect_error "htvm-graph v1\ninput %0 x i9 4\noutput %0\n" "unknown dtype";
  expect_error "htvm-graph v1\ninput %0 x i8 4\napp %1 nn.relu args %5\noutput %1\n"
    "before its definition";
  expect_error "htvm-graph v1\ninput %0 x i8 4\n" "no output";
  expect_error "htvm-graph v1\nconst %0 i8 2 ff\noutput %0\n" "hex digits";
  (* Line numbers point at the offender. *)
  expect_error "htvm-graph v1\ninput %0 x i8 4\napp %1 mystery args %0\noutput %1\n"
    "line 3"

let test_missing_file () =
  match Ir.Text.load "/nonexistent/path.htvm" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error for missing file"

let prop_roundtrip_random_graphs =
  Helpers.qtest ~count:40 "text round-trip preserves semantics"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let g = Check.Gen.generate seed in
      match Ir.Text.of_string (Ir.Text.to_string g) with
      | Error _ -> false
      | Ok g' ->
          let inputs = Models.Zoo.random_input ~seed g in
          Tensor.equal (Ir.Eval.run g ~inputs) (Ir.Eval.run g' ~inputs))

let suites =
  [ ( "text-format",
      [ Alcotest.test_case "roundtrip small" `Quick test_roundtrip_small;
        Alcotest.test_case "roundtrip dtypes" `Quick test_roundtrip_all_dtypes;
        Alcotest.test_case "roundtrip mlperf models" `Quick test_roundtrip_mlperf_models;
        Alcotest.test_case "save/load file" `Quick test_save_load_file;
        Alcotest.test_case "parser diagnostics" `Quick test_parser_diagnostics;
        Alcotest.test_case "missing file" `Quick test_missing_file;
        prop_roundtrip_random_graphs;
      ] )
  ]
