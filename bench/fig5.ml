(* Fig. 5: single-layer overhead characterization — peak accelerator
   throughput (trigger-to-completion, weight transfer included) vs the
   full HTVM kernel call (DMA + runtime overhead included), across layer
   geometries on both accelerators. *)

let tiling =
  Dory.Tiling.default_config ~l1_budget:(Util.Ints.kib 256)

let measure accel layer =
  match Htvm.Lab.run_single_layer ~accel ~tiling layer with
  | Error e -> failwith (Htvm.Lab.failure_to_string e)
  | Ok r ->
      let macs = Ir.Layer.macs layer in
      let peak = Htvm.Lab.peak_throughput layer r in
      let full = Htvm.Lab.full_throughput layer r in
      (macs, peak, full, 100.0 *. (1.0 -. (full /. peak)))

let series name accel layers =
  Printf.printf "\n%s\n" name;
  let rows =
    List.map
      (fun (label, layer) ->
        let macs, peak, full, loss = measure accel layer in
        [ label; string_of_int macs; Printf.sprintf "%.2f" peak;
          Printf.sprintf "%.2f" full; Printf.sprintf "%.1f%%" loss ])
      layers
  in
  print_string
    (Util.Table.render
       ~align:[ Util.Table.Left; Right; Right; Right; Right ]
       ~header:[ "geometry"; "MACs"; "peak MAC/cyc"; "full MAC/cyc"; "loss" ]
       rows)

let run () =
  print_endline "=== Fig. 5: single-layer overhead characterization ===";
  series "digital Conv2D (spatial scaling, C=K=16, k3x3)" Arch.Diana.digital
    (List.map
       (fun hw -> (Printf.sprintf "%dx%d" hw hw, Tiling_layers.conv ~c:16 ~k:16 ~hw ()))
       [ 4; 8; 16; 32; 48; 64 ]);
  series "digital FC (channel scaling, K=C)" Arch.Diana.digital
    (List.map
       (fun c -> (Printf.sprintf "%d->%d" c c, Tiling_layers.dense ~c ~k:c ()))
       [ 16; 32; 64; 128; 256; 512 ]);
  series "digital DWConv2D (channel scaling, 16x16, k3x3)" Arch.Diana.digital
    (List.map
       (fun c -> (Printf.sprintf "C=%d" c, Tiling_layers.depthwise ~c ~hw:16 ()))
       [ 16; 32; 64; 128 ]);
  series "analog Conv2D (channel scaling, 16x16, k3x3, ternary)" Arch.Diana.analog
    (List.map
       (fun c ->
         ( Printf.sprintf "C=K=%d" c,
           Tiling_layers.conv ~c ~k:c ~hw:16 ~wdtype:Tensor.Dtype.Ternary () ))
       [ 8; 16; 32; 64; 128 ]);
  series "analog Conv2D (spatial scaling, C=K=16, k3x3, ternary)" Arch.Diana.analog
    (List.map
       (fun hw ->
         ( Printf.sprintf "%dx%d" hw hw,
           Tiling_layers.conv ~c:16 ~k:16 ~hw ~wdtype:Tensor.Dtype.Ternary () ))
       [ 8; 16; 32; 48; 64 ]);
  print_endline
    "\npaper reference: analog Conv2D mean loss ~5.2% (min 0.51%); digital Conv2D";
  print_endline
    "best-case loss ~1.3%; small FC layers lose up to ~54%; DWConv2D <= 20.7%.\n"
