(* Table I: latency and binary size of the MLPerf Tiny suite on DIANA in
   the four deployment configurations. Paper numbers are printed alongside
   the measured ones so calibration error is visible. *)

module C = Htvm.Compile

type config_row = {
  label : string;
  platform : Arch.Platform.t;
  policy : Models.Policy.t;
  baseline : bool;  (* plain-TVM memory planner, no peak column *)
}

let configs =
  [
    { label = "CPU (TVM)"; platform = Arch.Diana.cpu_only; policy = Models.Policy.All_int8;
      baseline = true };
    { label = "CPU+Digital"; platform = Arch.Diana.digital_only;
      policy = Models.Policy.All_int8; baseline = false };
    { label = "CPU+Analog"; platform = Arch.Diana.analog_only;
      policy = Models.Policy.All_ternary; baseline = false };
    { label = "CPU+Both"; platform = Arch.Diana.platform; policy = Models.Policy.Mixed;
      baseline = false };
  ]

(* Paper Table I: (peak ms, htvm ms, size kB); latency None = OoM. *)
let paper : (string * (string * ((float * float) option * int)) list) list =
  [
    ( "ds_cnn",
      [ ("CPU (TVM)", (Some (48.24, 48.24), 59));
        ("CPU+Digital", (Some (1.70, 1.75), 60));
        ("CPU+Analog", (Some (13.51, 13.51), 93));
        ("CPU+Both", (Some (1.66, 1.69), 81)) ] );
    ( "mobilenet_v1_025",
      [ ("CPU (TVM)", (None, 289));
        ("CPU+Digital", (Some (5.42, 5.68), 306));
        ("CPU+Analog", (Some (40.67, 40.67), 239));
        ("CPU+Both", (Some (5.39, 5.82), 293)) ] );
    ( "resnet8",
      [ ("CPU (TVM)", (Some (134.11, 134.11), 122));
        ("CPU+Digital", (Some (0.66, 1.19), 107));
        ("CPU+Analog", (Some (1.52, 1.53), 129));
        ("CPU+Both", (Some (0.61, 1.12), 108)) ] );
    ( "toyadmos_dae",
      [ ("CPU (TVM)", (Some (4.70, 4.70), 287));
        ("CPU+Digital", (Some (0.30, 0.36), 315));
        ("CPU+Analog", (Some (0.80, 0.80), 171));
        ("CPU+Both", (Some (0.49, 0.52), 275)) ] );
  ]

let run_config (e : Models.Zoo.entry) cfg =
  let g = e.Models.Zoo.build ?seed:None cfg.policy in
  let compile_cfg =
    if cfg.baseline then C.tvm_baseline_config cfg.platform
    else C.default_config cfg.platform
  in
  match C.compile compile_cfg g with
  | Error e -> Error e
  | Ok artifact ->
      let inputs = Models.Zoo.random_input g in
      let _, report = C.run artifact ~inputs in
      let peak = C.latency_ms compile_cfg (C.peak_cycles report) in
      let full = C.latency_ms compile_cfg (C.full_cycles report) in
      Ok (peak, full, Codegen.Size.total_kb artifact.C.size)

let fmt_ms v = Printf.sprintf "%.2f" v
let fmt_kb v = Printf.sprintf "%.0f" v

let run () =
  print_endline "=== Table I: MLPerf(tm) Tiny on DIANA: latency & binary size ===";
  print_endline "(paper columns reproduced from Van Delm et al., DAC 2023)";
  List.iter
    (fun (e : Models.Zoo.entry) ->
      Printf.printf "\n%s (%s, %.2f M MACs)\n" e.Models.Zoo.display_name
        e.Models.Zoo.model_name
        (float_of_int (Models.Zoo.macs (e.Models.Zoo.build Models.Policy.All_int8))
        /. 1.0e6);
      let rows =
        List.map
          (fun cfg ->
            let paper_peak, paper_full, paper_size =
              match List.assoc_opt cfg.label (List.assoc e.Models.Zoo.model_name paper) with
              | Some (Some (p, f), s) -> (fmt_ms p, fmt_ms f, string_of_int s)
              | Some (None, s) -> ("OoM", "OoM", string_of_int s)
              | None -> ("-", "-", "-")
            in
            match run_config e cfg with
            | Error err ->
                let reason =
                  match err with C.Out_of_memory _ -> "OoM" | _ -> "error"
                in
                [ cfg.label; "-"; reason; "-"; paper_peak; paper_full; paper_size ]
            | Ok (peak, full, kb) ->
                let peak = if cfg.baseline then "-" else fmt_ms peak in
                [ cfg.label; peak; fmt_ms full; fmt_kb kb; paper_peak; paper_full;
                  paper_size ])
          configs
      in
      print_string
        (Util.Table.render
           ~align:[ Util.Table.Left; Right; Right; Right; Right; Right; Right ]
           ~header:
             [ "config"; "peak(ms)"; "htvm(ms)"; "size(kB)"; "paper peak"; "paper htvm";
               "paper kB" ]
           rows))
    Models.Zoo.all;
  print_newline ()
