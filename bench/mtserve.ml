(* "mtserve" experiment: multi-tenant serving over a simulated DIANA
   fleet hosting two compiled models under per-class latency SLOs.
   Measures throughput across fleet sizes and placements (pinned vs
   hot-swap), the swap-overhead cost of consolidation, SLO shedding
   under open-loop load, and batch-size autotuning — and checks the
   determinism invariants: the multi-tenant tally is byte-identical at
   every worker count, and a recorded arrival trace replays to the
   identical outcome set. Dumps BENCH_mtserve.json. *)

module J = Trace.Json

let out_file = "BENCH_mtserve.json"

let compile name =
  let g = (Models.Zoo.find name).Models.Zoo.build Models.Policy.Mixed in
  let cfg = Htvm.Compile.default_config Arch.Diana.platform in
  match Htvm.Compile.compile cfg g with
  | Ok a -> { Serve.m_name = name; m_artifact = a; m_graph = g }
  | Error e ->
      Printf.eprintf "mtserve bench: compile %s failed: %s\n" name
        (Htvm.Compile.error_to_string e);
      exit 1

let classes ~slo =
  [
    { Serve.k_name = "keyword"; k_model = Models.Ds_cnn.name; k_slo = slo;
      k_weight = 2 };
    { Serve.k_name = "vision"; k_model = Models.Resnet8.name; k_slo = None;
      k_weight = 1 };
  ]

let run_ok cfg ~models ~classes =
  match Serve.mt_run cfg ~models ~classes with
  | Ok r -> r
  | Error e ->
      Printf.eprintf "mtserve bench: %s\n" (Serve.mt_error_to_string e);
      exit 1

let tally_digest r = Digest.to_hex (Digest.string (Serve.mt_tally r))

let run_mtserve ~requests (worker_counts : int list) =
  let models = [ compile Models.Ds_cnn.name; compile Models.Resnet8.name ] in
  let base =
    {
      Serve.mt_default with
      Serve.mt_requests = requests;
      mt_arrival = Serve.Mt_poisson { mean_gap = 0 };
    }
  in
  Printf.printf "== mtserve: multi-tenant serving, two models, SLO classes ==\n%!";
  (* Fleet sweep under hot-swap placement: throughput moves, the
     functional books must not. *)
  let sweep =
    List.map
      (fun workers ->
        let r =
          run_ok { base with Serve.mt_workers = workers } ~models
            ~classes:(classes ~slo:None)
        in
        Printf.printf
          "  workers %d (swap): %7.1f req/s, makespan %d, %d swap(s)\n%!"
          workers r.Serve.mt_throughput_rps r.Serve.mt_makespan r.Serve.mt_swaps;
        (workers, r))
      worker_counts
  in
  let digests = List.map (fun (_, r) -> tally_digest r) sweep in
  let tally_identical =
    match digests with [] -> true | d :: rest -> List.for_all (( = ) d) rest
  in
  Printf.printf "  tally identical across worker counts: %b\n%!" tally_identical;
  (* Placement ablation at equal fleet size: pinning avoids every swap,
     consolidating onto swappable instances pays mt_swap_overhead per
     model change. *)
  let pinned =
    run_ok
      { base with Serve.mt_workers = 2; mt_placement = Serve.Pinned }
      ~models ~classes:(classes ~slo:None)
  in
  let swapping =
    run_ok
      { base with Serve.mt_workers = 2; mt_placement = Serve.Swap }
      ~models ~classes:(classes ~slo:None)
  in
  Printf.printf
    "  placement: pinned %d swaps makespan %d | swap %d swaps makespan %d\n%!"
    pinned.Serve.mt_swaps pinned.Serve.mt_makespan swapping.Serve.mt_swaps
    swapping.Serve.mt_makespan;
  (* SLO shedding: a tight keyword-class target sheds the predicted
     violators at admission; the vision batch class rides along
     untouched. *)
  let slo_target = 400_000 in
  let shed =
    run_ok
      { base with Serve.mt_workers = 2; mt_queue_depth = 4 }
      ~models ~classes:(classes ~slo:(Some slo_target))
  in
  Printf.printf "  slo %d: %d shed-slo, %d shed-queue, %d served\n%!" slo_target
    shed.Serve.mt_shed_slo shed.Serve.mt_shed_queue shed.Serve.mt_served;
  (* Batch autotune against two dispatch-overhead regimes: cheap
     dispatch favors narrow batches, expensive dispatch wide ones. *)
  let tuned overhead =
    run_ok
      { base with Serve.mt_max_batch = 0; mt_dispatch_overhead = overhead }
      ~models ~classes:(classes ~slo:None)
  in
  let cheap = tuned 1_000 and dear = tuned 20_000_000 in
  Printf.printf "  autotune: batch %d at overhead 1k, batch %d at overhead 20M\n%!"
    cheap.Serve.mt_batch dear.Serve.mt_batch;
  (* Trace record -> replay: the replayed run must reproduce the
     original outcome set exactly (the tally header legitimately
     differs in its arrival descriptor). *)
  let original = snd (List.hd sweep) in
  let replayed =
    match Serve.parse_arrival_trace (Serve.render_arrival_trace original) with
    | Error e ->
        Printf.eprintf "mtserve bench: re-parse failed: %s\n"
          (Serve.mt_error_to_string e);
        exit 1
    | Ok entries ->
        run_ok
          {
            base with
            Serve.mt_workers = List.hd (List.rev worker_counts);
            mt_arrival = Serve.Mt_replay entries;
          }
          ~models ~classes:(classes ~slo:None)
  in
  let body t =
    match String.index_opt t '\n' with
    | Some i -> (
        match String.index_from_opt t (i + 1) '\n' with
        | Some j -> String.sub t (j + 1) (String.length t - j - 1)
        | None -> t)
    | None -> t
  in
  let replay_identical =
    body (Serve.mt_tally original) = body (Serve.mt_tally replayed)
  in
  Printf.printf "  trace replay reproduces the tally body: %b\n%!"
    replay_identical;
  let doc =
    J.Obj
      [
        ("models", J.List (List.map (fun m -> J.Str m.Serve.m_name) models));
        ("platform", J.Str "diana (digital + analog)");
        ("requests", J.Int requests);
        ( "workers_sweep",
          J.Obj
            (List.map
               (fun (w, r) -> (string_of_int w, Serve.mt_to_json r))
               sweep) );
        ("tally_identical", J.Bool tally_identical);
        ("replay_identical", J.Bool replay_identical);
        ( "placement",
          J.Obj
            [
              ("pinned", Serve.mt_to_json pinned);
              ("swap", Serve.mt_to_json swapping);
            ] );
        ("slo_shedding", Serve.mt_to_json shed);
        ( "autotune",
          J.Obj
            [
              ("cheap_dispatch_batch", J.Int cheap.Serve.mt_batch);
              ("dear_dispatch_batch", J.Int dear.Serve.mt_batch);
            ] );
      ]
  in
  let oc = open_out out_file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" out_file;
  if not tally_identical then begin
    Printf.eprintf "mtserve bench: tally diverged across worker counts\n";
    exit 1
  end;
  if not replay_identical then begin
    Printf.eprintf "mtserve bench: trace replay diverged from the recording\n";
    exit 1
  end;
  if pinned.Serve.mt_swaps <> 0 then begin
    Printf.eprintf "mtserve bench: pinned placement swapped\n";
    exit 1
  end

let run () = run_mtserve ~requests:48 [ 1; 2; 4; 8 ]
let run_smoke () = run_mtserve ~requests:16 [ 1; 4 ]
