(* Fig. 2: time diagram of a network deployed with HTVM — kernels execute
   sequentially, alternating between accelerator calls (with their DMA and
   weight-load phases inside) and fused CPU kernels. Rendered as an ASCII
   Gantt chart over the simulator's per-step wall cycles. *)

module C = Htvm.Compile

let bar_width = 46

let run () =
  print_endline "=== Fig. 2: time diagram of DS-CNN on DIANA (CPU + both accelerators) ===";
  let g = (Models.Zoo.find "ds_cnn").Models.Zoo.build Models.Policy.Mixed in
  let cfg = C.default_config Arch.Diana.platform in
  match C.compile cfg g with
  | Error e -> print_endline ("compile error: " ^ C.error_to_string e)
  | Ok artifact ->
      let _, report = C.run artifact ~inputs:(Models.Zoo.random_input g) in
      let total = C.full_cycles report in
      let t = ref 0 in
      Printf.printf "total %d cycles = %.3f ms @260 MHz; bar spans the whole inference\n\n"
        total (C.latency_ms cfg total);
      List.iter
        (fun (name, (c : Sim.Counters.t)) ->
          let start = !t in
          let stop = !t + c.Sim.Counters.wall in
          t := stop;
          let pos n = n * bar_width / max 1 total in
          let a = pos start and b = max (pos start + 1) (pos stop) in
          let lane = if String.contains name ':' then '#' else '0' in
          let bar =
            String.init bar_width (fun i -> if i >= a && i < b then lane else '.')
          in
          Printf.printf "%8d |%s| %s\n" start bar
            (if String.length name > 60 then String.sub name 0 60 else name))
        report.Sim.Machine.per_step;
      print_endline "\nlegend: '#' accelerator kernel, '0' CPU kernel (paper Fig. 2's";
      print_endline "alternation of accelerator calls and CPU-fused operators)\n"
