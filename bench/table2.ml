(* Table II: comparison with MLPerf Tiny submissions on rival platforms,
   normalized to 260 MHz. Rival numbers come from calibrated cycle models
   (lib/arch/rivals.ml); the HTVM column is measured on the simulator in
   the CPU+Digital configuration. Published values are printed alongside. *)

module C = Htvm.Compile

(* Published Table II latencies in ms at 260 MHz. *)
let paper =
  [
    ("ds_cnn", (66.6, 46.1, 0.68, 1.75));
    ("mobilenet_v1_025", (155.0, 139.0, 1.61, 5.68));
    ("resnet8", (180.0, 180.0, 0.88, 1.19));
    ("toyadmos_dae", (5.4, 3.97, 0.256, 0.36));
  ]

let htvm_digital_ms (e : Models.Zoo.entry) =
  let g = e.Models.Zoo.build Models.Policy.All_int8 in
  let cfg = C.default_config Arch.Diana.digital_only in
  match C.compile cfg g with
  | Error msg -> failwith (C.error_to_string msg)
  | Ok artifact ->
      let _, report = C.run artifact ~inputs:(Models.Zoo.random_input g) in
      C.latency_ms cfg (C.full_cycles report)

let run () =
  print_endline "=== Table II: comparison with SotA tools and platforms (260 MHz) ===";
  print_endline "model columns: measured | (paper)";
  let rows =
    List.map
      (fun (e : Models.Zoo.entry) ->
        let g = e.Models.Zoo.build Models.Policy.All_int8 in
        let stm = Arch.Rivals.estimate_graph_ms Arch.Rivals.stm32_tvm g in
        let cmsis = Arch.Rivals.estimate_graph_ms Arch.Rivals.stm32_cmsis g in
        let gap9 = Arch.Rivals.estimate_graph_ms Arch.Rivals.gap9_gapflow g in
        let ours = htvm_digital_ms e in
        let p_stm, p_cmsis, p_gap9, p_ours =
          List.assoc e.Models.Zoo.model_name paper
        in
        let cell v p = Printf.sprintf "%.2f (%.2f)" v p in
        [ e.Models.Zoo.display_name; cell stm p_stm; cell cmsis p_cmsis;
          cell gap9 p_gap9; cell ours p_ours ])
      Models.Zoo.all
  in
  print_string
    (Util.Table.render
       ~align:[ Util.Table.Left; Right; Right; Right; Right ]
       ~header:
         [ "benchmark"; "TVM/STM32 ms"; "TVM+CMSIS/STM32 ms"; "GAPFlow/GAP9 ms";
           "HTVM/DIANA-dig ms" ]
       rows);
  print_newline ()
