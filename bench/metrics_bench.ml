(* "metrics" experiment: cost and determinism of the telemetry pipeline.
   Measures raw instrument throughput (counter/histogram/series ops per
   second), the null-sink overhead of compiling with a metrics registry
   attached versus without (must be ~zero: recording is a few integer
   stores per phase), and re-checks the headline contract in-process:
   the cycles section of a serve dump is byte-identical across fleet
   shapes and host parallelism. Dumps BENCH_metrics.json; exits nonzero
   when the determinism check or the overhead bound fails. *)

module J = Trace.Json
module M = Metrics

let out_file = "BENCH_metrics.json"

let time_s f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

(* Raw instrument cost: ops/s on a hot counter, histogram and series.
   These sit on the serving loop's per-request path, so they must stay
   cheap enough to be unconditional. *)
let instrument_rates ~ops =
  let t = M.create () in
  let c = M.counter t "bench_total" in
  let h = M.histogram t ~buckets:[ 10; 100; 1_000; 10_000 ] "bench_lat" in
  let s = M.series t ~columns:[ "a"; "b" ] "bench_win" in
  let rate name f =
    let (), dt = time_s f in
    let r = float_of_int ops /. Float.max dt 1e-9 in
    Printf.printf "  %-10s %10.0f ops/s\n%!" name r;
    (name, r)
  in
  let counter = rate "counter" (fun () -> for _ = 1 to ops do M.inc c 1 done) in
  let hist = rate "histogram" (fun () -> for i = 1 to ops do M.observe h i done) in
  let ser =
    rate "series" (fun () ->
        for i = 1 to ops do M.sample s ~ts:i [ 1.0; 2.0 ] done)
  in
  [ counter; hist; ser ]

let compile_once ~with_metrics g cfg =
  let metrics = if with_metrics then Some (M.create ()) else None in
  match Htvm.Compile.compile ?metrics cfg g with
  | Ok _ -> ()
  | Error e ->
      Printf.eprintf "metrics bench: compile failed: %s\n"
        (Htvm.Compile.error_to_string e);
      exit 1

let run_metrics ~requests ~reps ~ops () =
  Printf.printf "== metrics: telemetry cost and determinism ==\n%!";
  let rates = instrument_rates ~ops in
  (* Null-sink overhead: the same compile with and without a registry
     attached. The bound is deliberately lenient (2x + 10ms) — the point
     is catching an accidentally quadratic recording path, not
     micro-benchmarking the host. *)
  let g =
    (Models.Zoo.find Models.Resnet8.name).Models.Zoo.build Models.Policy.Mixed
  in
  let cfg = Htvm.Compile.default_config Arch.Diana.platform in
  let sample with_metrics =
    List.init reps (fun _ ->
        snd (time_s (fun () -> compile_once ~with_metrics g cfg)))
  in
  ignore (sample false);
  (* warm the caches once *)
  let without = median (sample false) in
  let with_m = median (sample true) in
  let overhead_ok = with_m <= (without *. 2.0) +. 0.01 in
  Printf.printf
    "  compile: %.4fs bare, %.4fs with metrics (overhead %+.1f%%, bound ok: %b)\n%!"
    without with_m
    (100.0 *. ((with_m -. without) /. Float.max without 1e-9))
    overhead_ok;
  (* Determinism: the serve dump's cycles section across fleet shapes,
     SLO accounting included — the same check tools/verify.sh runs on
     the CLI dumps, here without the process boundary. *)
  let artifact =
    match Htvm.Compile.compile cfg g with
    | Ok a -> a
    | Error e ->
        Printf.eprintf "metrics bench: compile failed: %s\n"
          (Htvm.Compile.error_to_string e);
        exit 1
  in
  let dump workers jobs =
    let scfg =
      {
        Serve.default with
        Serve.workers;
        jobs;
        requests;
        max_batch = 3;
        arrival = Serve.Poisson { mean_gap = 0 };
        queue_depth = 4;
        slo_sojourn = Some 2_000_000;
      }
    in
    let r = Serve.run scfg artifact ~graph:g in
    M.cycles_section (M.to_prometheus r.Serve.r_metrics)
  in
  let reference = dump 1 1 in
  let shapes = [ (1, 4); (4, 1); (4, 4) ] in
  let cycles_identical =
    List.for_all (fun (w, j) -> dump w j = reference) shapes
  in
  Printf.printf "  cycles section identical across %s: %b\n%!"
    (String.concat ", "
       (List.map (fun (w, j) -> Printf.sprintf "w%d/j%d" w j) shapes))
    cycles_identical;
  let doc =
    J.Obj
      [
        ("model", J.Str Models.Resnet8.name);
        ("requests", J.Int requests);
        ("instrument_ops", J.Int ops);
        ( "instrument_rates_per_s",
          J.Obj (List.map (fun (n, r) -> (n, J.Float r)) rates) );
        ("compile_bare_s", J.Float without);
        ("compile_with_metrics_s", J.Float with_m);
        ("overhead_ok", J.Bool overhead_ok);
        ("cycles_identical", J.Bool cycles_identical);
      ]
  in
  let oc = open_out out_file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" out_file;
  if not cycles_identical then begin
    Printf.eprintf "metrics bench: cycles section diverged across shapes\n";
    exit 1
  end;
  if not overhead_ok then begin
    Printf.eprintf "metrics bench: metrics overhead exceeded the bound\n";
    exit 1
  end

let run () = run_metrics ~requests:32 ~reps:5 ~ops:1_000_000 ()
let run_smoke () = run_metrics ~requests:12 ~reps:3 ~ops:100_000 ()
