(* "trace" experiment: profile the MLPerf Tiny suite on the full DIANA
   platform and dump per-model wall cycles plus the counter breakdown to
   BENCH_trace.json (machine-readable companion to the printed tables). *)

module C = Htvm.Compile
module J = Trace.Json

let out_file = "BENCH_trace.json"

let profile_model (entry : Models.Zoo.entry) =
  let g = entry.Models.Zoo.build Models.Policy.Mixed in
  let trace = Trace.create () in
  match C.compile ~trace (C.default_config Arch.Diana.platform) g with
  | Error e ->
      Printf.printf "  %-18s compile error: %s\n%!" entry.Models.Zoo.model_name
        (C.error_to_string e);
      (entry.Models.Zoo.model_name, J.Obj [ ("error", J.Str (C.error_to_string e)) ])
  | Ok artifact ->
      let _, report = C.run ~trace artifact ~inputs:(Models.Zoo.random_input g) in
      let t = report.Sim.Machine.totals in
      Printf.printf "  %-18s wall %8d cycles (%.3f ms), %d trace events\n%!"
        entry.Models.Zoo.model_name t.Sim.Counters.wall
        (C.latency_ms artifact.C.cfg t.Sim.Counters.wall)
        (List.length (Trace.events trace));
      ( entry.Models.Zoo.model_name,
        J.Obj
          [
            ("wall_cycles", J.Int t.Sim.Counters.wall);
            ("latency_ms", J.Float (C.latency_ms artifact.C.cfg t.Sim.Counters.wall));
            ( "breakdown",
              J.Obj
                [
                  ("accel_compute", J.Int t.Sim.Counters.accel_compute);
                  ("weight_load", J.Int t.Sim.Counters.weight_load);
                  ("dma_in", J.Int t.Sim.Counters.dma_in);
                  ("dma_out", J.Int t.Sim.Counters.dma_out);
                  ("host_overhead", J.Int t.Sim.Counters.host_overhead);
                  ("cpu_compute", J.Int t.Sim.Counters.cpu_compute);
                  ("stall", J.Int t.Sim.Counters.stall);
                ] );
            ("dma_bytes_in", J.Int t.Sim.Counters.dma_bytes_in);
            ("dma_bytes_out", J.Int t.Sim.Counters.dma_bytes_out);
            ("utilization", J.Float (Sim.Counters.utilization t));
            ("trace_events", J.Int (List.length (Trace.events trace)));
          ] )

let run () =
  Printf.printf "== trace: profiling the suite on diana (CPU+Both) ==\n%!";
  let rows = List.map profile_model Models.Zoo.all in
  let doc =
    J.Obj
      [
        ("platform", J.Str Arch.Diana.platform.Arch.Platform.platform_name);
        ("config", J.Str "default (reuse + double buffering + heuristics)");
        ("models", J.Obj rows);
      ]
  in
  let oc = open_out out_file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" out_file
