(* "campaign" experiment: sustained chaos-under-load sweeps. Drives the
   full serving pipeline (health lifecycle enabled) across a fault-rate
   ladder and reports the robustness curve — SLO violations, shed rate,
   aborts, readmissions and fail-open dispatches as a function of fault
   pressure — then checks the two campaign invariants: the tally is
   byte-identical at every fleet shape / job count, and the curve is
   monotone-plausible (a fault-free point is stress-free, the hottest
   point is not calmer than it). Dumps BENCH_campaign.json. *)

module J = Trace.Json

let out_file = "BENCH_campaign.json"

let artifact_and_graph () =
  let g = (Models.Zoo.find Models.Resnet8.name).Models.Zoo.build Models.Policy.Mixed in
  let cfg = Htvm.Compile.default_config Arch.Diana.platform in
  match Htvm.Compile.compile cfg g with
  | Ok a -> (a, g)
  | Error e ->
      Printf.eprintf "campaign bench: compile failed: %s\n"
        (Htvm.Compile.error_to_string e);
      exit 1

let campaign_cfg ~requests ~workers ~jobs ~rates =
  {
    Campaign.default with
    Campaign.c_rates = rates;
    c_serve =
      {
        Campaign.default.Campaign.c_serve with
        Serve.requests;
        workers;
        jobs;
        retry_budget = 4;
      };
  }

let stress (pt : Campaign.point) =
  let r = pt.Campaign.pt_report in
  let h =
    match r.Serve.r_health with
    | Some h -> h
    | None ->
        Printf.eprintf "campaign bench: point without a health summary\n";
        exit 1
  in
  r.Serve.r_aborted + h.Serve.h_pred_relapses + h.Serve.h_pred_fail_open
  + h.Serve.h_shed

let run_campaign ~requests ~rates (fleets : (int * int) list) =
  let artifact, g = artifact_and_graph () in
  Printf.printf "== campaign: chaos-under-load fault-rate sweep ==\n%!";
  let run_at (workers, jobs) =
    match
      Campaign.run (campaign_cfg ~requests ~workers ~jobs ~rates) artifact
        ~graph:g
    with
    | Ok t -> t
    | Error msg ->
        Printf.eprintf "campaign bench: %s\n" msg;
        exit 1
  in
  let reference = run_at (List.hd fleets) in
  print_string (Campaign.summary reference);
  let ref_tally = Campaign.tally reference in
  let tally_identical =
    List.for_all (fun fleet -> Campaign.tally (run_at fleet) = ref_tally)
      (List.tl fleets)
  in
  Printf.printf "  tally identical across fleet shapes %s: %b\n%!"
    (String.concat ", "
       (List.map (fun (w, j) -> Printf.sprintf "w%d/j%d" w j) fleets))
    tally_identical;
  (* Monotone plausibility on the predicted plane: the first point is
     rate 0 (stress-free by construction) and the last point must carry
     at least as much stress as the first. Intermediate points may
     wobble (retries absorb low rates), so only the endpoints gate. *)
  let points = reference.Campaign.t_points in
  let first = List.hd points and last = List.nth points (List.length points - 1) in
  let monotone = stress first = 0 && stress last >= stress first in
  Printf.printf "  curve plausible (stress %d at rate %g -> %d at rate %g): %b\n%!"
    (stress first) first.Campaign.pt_rate (stress last) last.Campaign.pt_rate
    monotone;
  let doc =
    J.Obj
      [
        ("model", J.Str Models.Resnet8.name);
        ("platform", J.Str "diana (digital + analog)");
        ("requests", J.Int requests);
        ( "fleets",
          J.List
            (List.map
               (fun (w, j) -> J.List [ J.Int w; J.Int j ])
               fleets) );
        ("tally_identical", J.Bool tally_identical);
        ("curve_plausible", J.Bool monotone);
        ("campaign", Campaign.to_json reference);
      ]
  in
  let oc = open_out out_file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" out_file;
  if not tally_identical then begin
    Printf.eprintf "campaign bench: tally diverged across fleet shapes\n";
    exit 1
  end;
  if not monotone then begin
    Printf.eprintf "campaign bench: robustness curve not plausible\n";
    exit 1
  end

let run () =
  run_campaign ~requests:48 ~rates:[ 0.0; 0.002; 0.01; 0.05; 0.2 ]
    [ (1, 1); (2, 2); (4, 4) ]

let run_smoke () =
  run_campaign ~requests:12 ~rates:[ 0.0; 0.01; 0.2 ] [ (1, 1); (4, 4) ]
