(* Resilience overhead sweep (DESIGN.md "Fault model"):
   - wall-cycle cost of the reliability model under increasing transient
     DMA fault rates (detected + retried, output always bit-exact);
   - latency cost of the compiler's fallback ladder when an accelerator
     is marked degraded and its segments are re-lowered. *)

module C = Htvm.Compile
module Plan = Fault.Plan
module Session = Fault.Session

let wall_under ?faults ?(retry_budget = 3) artifact ~inputs =
  let session = Option.map Session.create faults in
  let _, report = C.run ?faults:session ~retry_budget artifact ~inputs in
  (report.Sim.Machine.totals.Sim.Counters.wall, session)

let run () =
  print_endline "=== Resilience overhead ===";
  print_endline "\n-- detected transient DMA faults: retry cost vs fault rate --";
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  let cfg = C.default_config Arch.Diana.digital_only in
  let artifact = match C.compile cfg g with Ok a -> a | Error _ -> assert false in
  let inputs = Models.Zoo.random_input g in
  let clean, _ = wall_under artifact ~inputs in
  let rows =
    List.map
      (fun every ->
        let faults =
          {
            Plan.seed = 42;
            rules =
              [
                { Plan.site = Plan.Dma_in; trigger = Plan.Every every; kind = Plan.Drop };
              ];
          }
        in
        let wall, session = wall_under ~faults artifact ~inputs in
        let st = Session.stats (Option.get session) in
        [
          Printf.sprintf "every %d" every;
          string_of_int st.Session.detected;
          string_of_int st.Session.retry_cycles;
          Printf.sprintf "%.2f%%" (100.0 *. float_of_int (wall - clean) /. float_of_int clean);
        ])
      [ 50; 20; 10; 5; 2 ]
  in
  print_string
    (Util.Table.render
       ~align:[ Util.Table.Left; Right; Right; Right ]
       ~header:[ "dma_in drop"; "retries"; "retry cycles"; "wall overhead" ]
       rows);
  print_endline "\n-- fallback ladder: degraded accelerator vs healthy (mixed resnet8) --";
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.Mixed in
  let inputs = Models.Zoo.random_input g in
  let ms label cfg =
    match C.compile cfg g with
    | Error e -> Printf.printf "  %-24s %s\n" label (C.error_to_string e)
    | Ok artifact ->
        let _, report = C.run artifact ~inputs in
        Printf.printf "  %-24s %8.3f ms  (%d demotions)\n" label
          (C.latency_ms cfg (C.full_cycles report))
          (List.length artifact.C.demotions)
  in
  let base = C.default_config Arch.Diana.platform in
  ms "healthy" base;
  ms "analog degraded" { base with C.degraded_targets = [ "diana_analog" ] };
  ms "digital degraded" { base with C.degraded_targets = [ "diana_digital" ] }

let run_smoke () =
  (* Tier-1 smoke: one faulty run must stay bit-exact and cost exactly
     its accounted retry cycles. *)
  let g = (Models.Zoo.find "ds_cnn").Models.Zoo.build Models.Policy.All_int8 in
  let cfg = C.default_config Arch.Diana.digital_only in
  let artifact = match C.compile cfg g with Ok a -> a | Error _ -> assert false in
  let inputs = Models.Zoo.random_input g in
  let out_clean, rep_clean = C.run artifact ~inputs in
  let faults =
    {
      Plan.seed = 7;
      rules =
        [ { Plan.site = Plan.Dma_in; trigger = Plan.Every 5; kind = Plan.Drop } ];
    }
  in
  let session = Session.create faults in
  let out, rep = C.run ~faults:session artifact ~inputs in
  assert (Tensor.equal out_clean out);
  let clean = rep_clean.Sim.Machine.totals and faulty = rep.Sim.Machine.totals in
  assert (
    faulty.Sim.Counters.wall
    = clean.Sim.Counters.wall + faulty.Sim.Counters.retry_cycles);
  Printf.printf
    "resilience-smoke: OK (%d detected faults retried, %d cycles, bit-exact)\n"
    (Session.stats session).Session.detected
    faulty.Sim.Counters.retry_cycles
