(* "serve" experiment: the batched serving runtime over a simulated
   DIANA fleet. Measures throughput scaling with fleet size (closed
   loop), dispatch-overhead amortization from batching, admission
   shedding under open-loop Poisson load, and resilience under a fault
   campaign with degraded-instance routing — and checks the determinism
   invariant: the per-request tally is byte-identical at every worker
   count. Dumps BENCH_serve.json. *)

module J = Trace.Json

let out_file = "BENCH_serve.json"

let artifact_and_graph () =
  let g = (Models.Zoo.find Models.Resnet8.name).Models.Zoo.build Models.Policy.Mixed in
  let cfg = Htvm.Compile.default_config Arch.Diana.platform in
  match Htvm.Compile.compile cfg g with
  | Ok a -> (a, g)
  | Error e ->
      Printf.eprintf "serve bench: compile failed: %s\n"
        (Htvm.Compile.error_to_string e);
      exit 1

let serve_cfg ~requests ~workers =
  { Serve.default with Serve.workers; requests; jobs = 1 }

let tally_digest report = Digest.to_hex (Digest.string (Serve.tally report))

let mean_utilization (r : Serve.report) =
  match r.Serve.r_instances with
  | [] -> 0.0
  | is ->
      List.fold_left (fun acc i -> acc +. i.Serve.i_utilization) 0.0 is
      /. float_of_int (List.length is)

let run_serve ~requests (worker_counts : int list) =
  let artifact, g = artifact_and_graph () in
  Printf.printf "== serve: batched serving on a simulated DIANA fleet ==\n%!";
  (* Throughput sweep: closed-loop load at increasing fleet sizes. The
     functional tally must not move. *)
  let sweep =
    List.map
      (fun workers ->
        let r = Serve.run (serve_cfg ~requests ~workers) artifact ~graph:g in
        Printf.printf
          "  workers %d: %7.1f req/s, makespan %d cycles, %.1f%% mean \
           utilization\n\
           %!"
          workers r.Serve.r_throughput_rps r.Serve.r_makespan
          (100.0 *. mean_utilization r);
        (workers, r))
      worker_counts
  in
  let digests = List.map (fun (_, r) -> tally_digest r) sweep in
  let tally_identical =
    match digests with [] -> true | d :: rest -> List.for_all (( = ) d) rest
  in
  let monotone =
    let rec ok = function
      | (_, (a : Serve.report)) :: ((_, b) :: _ as rest) ->
          a.Serve.r_throughput_rps <= b.Serve.r_throughput_rps +. 1e-9 && ok rest
      | _ -> true
    in
    ok sweep
  in
  Printf.printf "  tally identical across worker counts: %b\n%!" tally_identical;
  (* Batching ablation on one instance (so the comparison isolates
     dispatch cost rather than fleet parallelism): batch 1 pays the
     overhead per request, the default batch amortizes it. *)
  let batched = Serve.run (serve_cfg ~requests ~workers:1) artifact ~graph:g in
  let unbatched =
    Serve.run
      { (serve_cfg ~requests ~workers:1) with Serve.max_batch = 1 }
      artifact ~graph:g
  in
  Printf.printf "  batching: makespan %d (batch %d) vs %d (batch 1)\n%!"
    batched.Serve.r_makespan Serve.default.Serve.max_batch
    unbatched.Serve.r_makespan;
  (* Open-loop overload: tight windows + a shallow ingress buffer shed a
     typed fraction of the stream instead of queueing unboundedly. *)
  let shed =
    Serve.run
      {
        (serve_cfg ~requests ~workers:2) with
        Serve.arrival = Serve.Poisson { mean_gap = 0 };
        queue_depth = 2;
        max_batch = 2;
      }
      artifact ~graph:g
  in
  Printf.printf "  overload: %.1f%% shed (%d of %d), %d served\n%!"
    (100.0 *. shed.Serve.r_shed_rate)
    shed.Serve.r_rejected requests shed.Serve.r_served;
  (* Fault campaign: detected DMA flips retried within budget; an
     instance that accumulates faults leaves the healthy rotation. *)
  let faulty =
    match Fault.Plan.of_string "seed=9,dma_in@every=5:flip" with
    | Ok p -> p
    | Error e ->
        Printf.eprintf "serve bench: bad plan: %s\n" e;
        exit 1
  in
  let resilient =
    Serve.run
      {
        (serve_cfg ~requests ~workers:4) with
        Serve.plan = faulty;
        retry_budget = 3;
        degrade_after = Some 16;
      }
      artifact ~graph:g
  in
  let degraded_count =
    List.length
      (List.filter
         (fun i -> i.Serve.i_degraded_at <> None)
         resilient.Serve.r_instances)
  in
  Printf.printf
    "  faults: %d served, %d aborted, %d instance(s) degraded mid-run\n%!"
    resilient.Serve.r_served resilient.Serve.r_aborted degraded_count;
  let report_json (r : Serve.report) = Serve.to_json r in
  let doc =
    J.Obj
      [
        ("model", J.Str Models.Resnet8.name);
        ("platform", J.Str "diana (digital + analog)");
        ("requests", J.Int requests);
        ( "workers_sweep",
          J.Obj
            (List.map
               (fun (w, r) -> (string_of_int w, report_json r))
               sweep) );
        ("tally_identical", J.Bool tally_identical);
        ("throughput_monotone", J.Bool monotone);
        ( "batching",
          J.Obj
            [
              ("batched_makespan", J.Int batched.Serve.r_makespan);
              ("unbatched_makespan", J.Int unbatched.Serve.r_makespan);
            ] );
        ("overload", report_json shed);
        ("fault_campaign", report_json resilient);
      ]
  in
  let oc = open_out out_file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" out_file;
  if not tally_identical then begin
    Printf.eprintf "serve bench: tally diverged across worker counts\n";
    exit 1
  end;
  if not monotone then
    (* informational: closed-loop throughput should not fall as the
       fleet grows, but tiny fleets can tie on batching boundaries *)
    Printf.printf "  note: throughput not monotone over %s\n%!"
      (String.concat "," (List.map string_of_int worker_counts))

let run () = run_serve ~requests:64 [ 1; 2; 4; 8 ]
let run_smoke () = run_serve ~requests:12 [ 1; 4 ]
