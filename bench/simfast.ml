(* "simfast" experiment: the compiled execution plan fast path
   (Sim.Plan) against the slow interpretive oracle. Measures per-request
   wall time with the plan off and on, with the scratch arena reused and
   discarded, and the serving memoization hit path — while asserting the
   byte-identity contract: output digests and simulated cycle counts
   must not move at all. Dumps BENCH_simfast.json. *)

module J = Trace.Json
module C = Htvm.Compile

let out_file = "BENCH_simfast.json"

let artifact_and_graph () =
  let g = (Models.Zoo.find Models.Resnet8.name).Models.Zoo.build Models.Policy.Mixed in
  let cfg = { (C.default_config Arch.Diana.platform) with C.jobs = 1 } in
  match C.compile cfg g with
  | Ok a -> (a, g)
  | Error e ->
      Printf.eprintf "simfast bench: compile failed: %s\n" (C.error_to_string e);
      exit 1

(* Milliseconds per call over [repeats] calls, plus the last result. *)
let time_ms ~repeats f =
  let result = ref (f ()) in
  let t0 = Unix.gettimeofday () in
  for _ = 2 to repeats do
    result := f ()
  done;
  let t1 = Unix.gettimeofday () in
  let calls = max 1 (repeats - 1) in
  ((t1 -. t0) *. 1000.0 /. float_of_int calls, !result)

let run_simfast ~smoke () =
  let repeats = if smoke then 3 else 20 in
  let artifact, g = artifact_and_graph () in
  let inputs = Models.Zoo.random_input ~seed:Check.Golden.input_seed g in
  Printf.printf "== simfast: compiled plans vs the slow oracle (%s, %d run(s)/variant) ==\n%!"
    Models.Resnet8.name repeats;
  let slow_ms, (out_slow, rep_slow) =
    time_ms ~repeats (fun () -> C.run ~use_plan:false artifact ~inputs)
  in
  let fast_ms, (out_fast, rep_fast) =
    time_ms ~repeats (fun () -> C.run artifact ~inputs)
  in
  let noarena_ms, (out_noarena, rep_noarena) =
    time_ms ~repeats (fun () ->
        Sim.Machine.run ~platform:artifact.C.cfg.C.platform ~plan:artifact.C.plan
          ~plan_fresh_arena:true artifact.C.program ~inputs)
  in
  (* The contract first: the fast paths are only fast if they are also
     byte-identical to the oracle. *)
  let digest = Check.Golden.digest_tensor in
  let check name out rep =
    if digest out <> digest out_slow then begin
      Printf.eprintf "simfast bench: %s output digest diverged from slow path\n" name;
      exit 1
    end;
    if C.full_cycles rep <> C.full_cycles rep_slow then begin
      Printf.eprintf "simfast bench: %s cycles diverged (%d vs %d)\n" name
        (C.full_cycles rep) (C.full_cycles rep_slow);
      exit 1
    end
  in
  check "plan" out_fast rep_fast;
  check "plan (fresh arena)" out_noarena rep_noarena;
  let speedup = slow_ms /. fast_ms in
  let arena_gain = noarena_ms /. fast_ms in
  Printf.printf "  slow oracle   : %8.2f ms/request\n%!" slow_ms;
  Printf.printf "  plan + arena  : %8.2f ms/request  (%.2fx)\n%!" fast_ms speedup;
  Printf.printf "  plan, no arena: %8.2f ms/request  (arena worth %.2fx)\n%!"
    noarena_ms arena_gain;
  Printf.printf "  digests + cycles byte-identical across all paths\n%!";
  (* Memoize hit path: every request shares one input, so all but the
     first execution per instance is a table lookup. The tally must not
     move — memoization is telemetry-visible only. *)
  let serve_cfg memoize =
    { Serve.default with
      Serve.requests = (if smoke then 12 else 48);
      workers = 1; jobs = 1; input_mix = 1; memoize }
  in
  let memo_off_ms, r_off =
    time_ms ~repeats:(if smoke then 2 else 5) (fun () ->
        Serve.run (serve_cfg false) artifact ~graph:g)
  in
  let memo_on_ms, r_on =
    time_ms ~repeats:(if smoke then 2 else 5) (fun () ->
        Serve.run (serve_cfg true) artifact ~graph:g)
  in
  let tally_identical = Serve.tally r_off = Serve.tally r_on in
  Printf.printf
    "  memoize: %8.2f ms -> %8.2f ms per run (%d hit(s), %d distinct), tally identical: %b\n%!"
    memo_off_ms memo_on_ms r_on.Serve.r_memo_hits r_on.Serve.r_memo_misses
    tally_identical;
  if not tally_identical then begin
    Printf.eprintf "simfast bench: memoization moved the functional tally\n";
    exit 1
  end;
  if r_on.Serve.r_memo_hits = 0 then begin
    Printf.eprintf "simfast bench: memoize hit path never taken\n";
    exit 1
  end;
  let stats = Sim.Plan.stats artifact.C.plan in
  let doc =
    J.Obj
      [ ("model", J.Str Models.Resnet8.name);
        ("platform", J.Str "diana (digital + analog)");
        ("repeats", J.Int repeats);
        ("slow_ms_per_request", J.Float slow_ms);
        ("plan_ms_per_request", J.Float fast_ms);
        ("plan_fresh_arena_ms_per_request", J.Float noarena_ms);
        ("speedup", J.Float speedup);
        ("arena_gain", J.Float arena_gain);
        ("output_digest", J.Str (digest out_slow));
        ("wall_cycles", J.Int (C.full_cycles rep_slow));
        ("digests_identical", J.Bool true);
        ( "plan_stats",
          J.Obj
            [ ("accel_steps", J.Int stats.Sim.Plan.accel_steps);
              ("tiles", J.Int stats.Sim.Plan.tiles);
              ("scratch_words", J.Int stats.Sim.Plan.scratch_words);
              ("image_bytes", J.Int stats.Sim.Plan.image_bytes) ] );
        ( "memoize",
          J.Obj
            [ ("off_ms_per_run", J.Float memo_off_ms);
              ("on_ms_per_run", J.Float memo_on_ms);
              ("hits", J.Int r_on.Serve.r_memo_hits);
              ("misses", J.Int r_on.Serve.r_memo_misses);
              ("tally_identical", J.Bool tally_identical) ] );
      ]
  in
  let oc = open_out out_file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s\n%!" out_file;
  (* The acceptance bar. Smoke runs (CI shared runners, 3 repeats) only
     sanity-check that the fast path did not regress outright. *)
  let bar = if smoke then 1.0 else 1.5 in
  if speedup < bar then begin
    Printf.eprintf "simfast bench: speedup %.2fx below the %.1fx bar\n" speedup bar;
    exit 1
  end

let run () = run_simfast ~smoke:false ()
let run_smoke () = run_simfast ~smoke:true ()
