(* Benchmark harness entry point. Regenerates every table and figure of
   the paper's evaluation plus the ablations; see DESIGN.md's experiment
   index. Usage: main.exe [fig4|fig5|table1|table2|ablation|micro|all]. *)

let experiments =
  [
    ("fig2", Fig2.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("table1", Table1.run);
    ("table2", Table2.run);
    ("ablation", Ablation.run);
    ("energy", Energy.run);
    ("quant", Quantization.run);
    ("micro", Micro.run);
    ("trace", Trace_bench.run);
    ("parallel", Parallel.run);
    ("parallel-smoke", Parallel.run_smoke);
    ("resilience", Resilience.run);
    ("resilience-smoke", Resilience.run_smoke);
    ("serve", Serve_bench.run);
    ("serve-smoke", Serve_bench.run_smoke);
    ("mtserve", Mtserve.run);
    ("mtserve-smoke", Mtserve.run_smoke);
    ("simfast", Simfast.run);
    ("simfast-smoke", Simfast.run_smoke);
    ("metrics", Metrics_bench.run);
    ("metrics-smoke", Metrics_bench.run_smoke);
    ("campaign", Campaign_bench.run);
    ("campaign-smoke", Campaign_bench.run_smoke);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | [] | _ :: [] | _ :: "all" :: _ -> List.map fst experiments
    | _ :: names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    requested
