(* "parallel" experiment: measure the compilation engine itself — domain
   pool fan-out of tiling solves and autotune trials, the shape-keyed
   solver cache, and the branch-and-bound pruning — and dump wall times
   and explored-candidate counts to BENCH_parallel.json.

   The MLPerf nets fit DIANA's 256 kB L1 untiled, so (as in the ablation
   experiment) the engine is exercised on an 8 kB-L1 variant of the SoC
   that forces every large layer through the tiler, with autotuning on so
   the host kernels contribute pool work too. *)

module C = Htvm.Compile
module J = Trace.Json

let out_file = "BENCH_parallel.json"

let constrained platform =
  {
    platform with
    Arch.Platform.l1 = { Arch.Memory.level_name = "L1"; size_bytes = Util.Ints.kib 8 };
  }

let engine_cfg ?cache ?(exhaustive = false) ~jobs () =
  {
    (C.default_config (constrained Arch.Diana.digital_only)) with
    C.jobs;
    solver_cache = cache;
    exhaustive_tiling = exhaustive;
    autotune_budget = Some 20_000;
  }

let compile_or_die cfg g =
  match C.compile cfg g with
  | Ok a -> a
  | Error e ->
      Printf.eprintf "parallel bench: compile failed: %s\n" (C.error_to_string e);
      exit 1

(* Wall time (not CPU time — the point is elapsed speedup from the pool),
   best of [repeats]. *)
let wall_ms ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    best := Float.min !best ((Unix.gettimeofday () -. t0) *. 1000.0)
  done;
  !best

(* The (tile, objective) choice of every "tiling.solve" event, in segment
   order — pruned search must reproduce the exhaustive choices exactly. *)
let solve_choices trace =
  List.filter_map
    (fun (e : Trace.event) ->
      if e.Trace.ev_name = "tiling.solve" then
        Some
          ( List.assoc_opt "tile" e.Trace.ev_args,
            List.assoc_opt "objective" e.Trace.ev_args )
      else None)
    (Trace.events trace)

let solver_tests f =
  Dory.Tiling.reset_solver_work ();
  let r = f () in
  (r, (Dory.Tiling.solver_work ()).Dory.Tiling.tests)

let bench_model ~repeats (entry : Models.Zoo.entry) =
  let name = entry.Models.Zoo.model_name in
  let g = entry.Models.Zoo.build Models.Policy.Mixed in
  (* Wall time at jobs = 1/2/4, cache off and (fresh per compile) on. *)
  let wall jobs cache_on =
    wall_ms ~repeats (fun () ->
        let cache = if cache_on then Some (Dory.Tiling_cache.create ()) else None in
        compile_or_die (engine_cfg ?cache ~jobs ()) g)
  in
  let walls = List.map (fun j -> (j, wall j false, wall j true)) [ 1; 2; 4 ] in
  let t1 = match walls with (_, t, _) :: _ -> t | [] -> nan in
  let t4 = match List.rev walls with (_, t, _) :: _ -> t | [] -> nan in
  let speedup_j4 = t1 /. t4 in
  (* Explored candidates: exhaustive baseline vs pruned vs pruned+cached,
     all at jobs = 1 so the work counters are easy to attribute. *)
  let trace_ex = Trace.create () in
  let art_ex, tests_ex =
    solver_tests (fun () ->
        match C.compile ~trace:trace_ex (engine_cfg ~exhaustive:true ~jobs:1 ()) g with
        | Ok a -> a
        | Error e ->
            Printf.eprintf "parallel bench: compile failed: %s\n" (C.error_to_string e);
            exit 1)
  in
  let trace_pr = Trace.create () in
  let art_pr, tests_pr =
    solver_tests (fun () ->
        match C.compile ~trace:trace_pr (engine_cfg ~jobs:1 ()) g with
        | Ok a -> a
        | Error e ->
            Printf.eprintf "parallel bench: compile failed: %s\n" (C.error_to_string e);
            exit 1)
  in
  let cache = Dory.Tiling_cache.create () in
  let art_ca, tests_cached =
    solver_tests (fun () -> compile_or_die (engine_cfg ~cache ~jobs:1 ()) g)
  in
  let _, tests_warm =
    solver_tests (fun () -> compile_or_die (engine_cfg ~cache ~jobs:1 ()) g)
  in
  let tiles_match = solve_choices trace_ex = solve_choices trace_pr in
  let reduction base now =
    if base = 0 then 0.0 else 1.0 -. (float_of_int now /. float_of_int base)
  in
  Printf.printf
    "  %-12s wall j1 %7.1f ms, j4 %7.1f ms (%.2fx); tests %d -> %d pruned -> %d \
     cached (warm %d); tiles match: %b\n\
     %!"
    name t1 t4 speedup_j4 tests_ex tests_pr tests_cached tests_warm tiles_match;
  ( name,
    J.Obj
      [
        ( "wall_ms",
          J.Obj
            (List.concat_map
               (fun (j, off, on) ->
                 [
                   (Printf.sprintf "jobs%d" j, J.Float off);
                   (Printf.sprintf "jobs%d_cached" j, J.Float on);
                 ])
               walls) );
        ("speedup_jobs4", J.Float speedup_j4);
        ( "solver",
          J.Obj
            [
              ("exhaustive_tests", J.Int tests_ex);
              ("pruned_tests", J.Int tests_pr);
              ("cached_tests", J.Int tests_cached);
              ("warm_cache_tests", J.Int tests_warm);
              ("pruning_reduction", J.Float (reduction tests_ex tests_pr));
              ("cache_reduction", J.Float (reduction tests_ex tests_cached));
              ("explored_exhaustive", J.Int art_ex.C.solver.C.ss_explored);
              ("explored_pruned", J.Int art_pr.C.solver.C.ss_explored);
              ("pruned_candidates", J.Int art_pr.C.solver.C.ss_pruned);
              ("cache_hits", J.Int art_ca.C.solver.C.ss_cache_hits);
              ("cache_misses", J.Int art_ca.C.solver.C.ss_cache_misses);
            ] );
        ("tiles_match_exhaustive", J.Bool tiles_match);
      ],
    (speedup_j4, reduction tests_ex tests_cached, tiles_match) )

let run_models ~repeats models =
  Printf.printf
    "== parallel: engine wall time & explored candidates (8 kB-L1 digital, autotune \
     on) ==\n\
     %!";
  let rows = List.map (bench_model ~repeats) models in
  let best_speedup =
    List.fold_left (fun acc (_, _, (s, _, _)) -> Float.max acc s) 0.0 rows
  in
  let best_reduction =
    List.fold_left (fun acc (_, _, (_, r, _)) -> Float.max acc r) 0.0 rows
  in
  let all_match = List.for_all (fun (_, _, (_, _, m)) -> m) rows in
  let cores = Util.Pool.available () in
  let doc =
    J.Obj
      [
        ("platform", J.Str "diana-digital (8 kB L1 variant)");
        ("config", J.Str "default engine + autotune budget 20000");
        ("cores", J.Int cores);
        ( "note",
          J.Str
            (if cores < 4 then
               Printf.sprintf
                 "only %d core(s) available: wall-clock scaling at jobs>1 is \
                  bounded by the machine, not the engine (OCaml's stop-the-world \
                  minor GC penalizes oversubscribed domains); the pruning and \
                  cache reductions below are machine-independent"
                 cores
             else "jobs sweep ran on real hardware parallelism") );
        ("jobs_measured", J.List [ J.Int 1; J.Int 2; J.Int 4 ]);
        ("best_speedup_jobs4", J.Float best_speedup);
        ("best_test_reduction", J.Float best_reduction);
        ("tiles_match_everywhere", J.Bool all_match);
        ("models", J.Obj (List.map (fun (n, j, _) -> (n, j)) rows));
      ]
  in
  let oc = open_out out_file in
  output_string oc (J.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  wrote %s (best j4 speedup %.2fx, best test reduction %.0f%%)\n%!"
    out_file best_speedup (100.0 *. best_reduction)

let run () = run_models ~repeats:3 Models.Zoo.all

(* One small model, single repeat: the verify.sh smoke. *)
let run_smoke () = run_models ~repeats:1 [ Models.Zoo.find Models.Resnet8.name ]
