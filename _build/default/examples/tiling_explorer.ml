(* Explore DORY's tiling decisions for a convolution as the L1 budget
   shrinks: which tile the Eq. 1 objective picks, its utilization, and
   the measured cycles on the digital accelerator.

   Run with: dune exec examples/tiling_explorer.exe -- [C] [K] [HW] *)

let () =
  let arg n default = if Array.length Sys.argv > n then int_of_string Sys.argv.(n) else default in
  let c = arg 1 32 and k = arg 2 32 and hw = arg 3 32 in
  let rng = Util.Rng.create 11 in
  let p = { Nn.Kernels.stride = (1, 1); padding = (1, 1); groups = 1 } in
  let bias = Tensor.create Tensor.Dtype.I32 [| k |] in
  Tensor.iteri_flat (fun i _ -> Tensor.set_flat bias i (Util.Rng.int_in rng (-9000) 9000)) bias;
  let layer =
    {
      Ir.Layer.kind = Ir.Layer.Conv p;
      fused_pool = None;
      weights = Some (Tensor.random rng Tensor.Dtype.I8 [| k; c; 3; 3 |]);
      bias = Some bias;
      shift = Some (Util.Ints.log2_ceil (c * 9) + 6);
      relu = true;
      in_shape = [| c; hw; hw |];
      in2_shape = None;
      out_shape = [| k; hw; hw |];
      in_dtype = Tensor.Dtype.I8;
      out_dtype = Tensor.Dtype.I8;
    }
  in
  Printf.printf "layer: %s (%d MACs)\n\n" (Ir.Layer.describe layer) (Ir.Layer.macs layer);
  let rows =
    List.filter_map
      (fun kib ->
        let tiling = Dory.Tiling.default_config ~l1_budget:(Util.Ints.kib kib) in
        match Htvm.Lab.run_single_layer ~accel:Arch.Diana.digital ~tiling layer with
        | Error _ -> Some [ Printf.sprintf "%d kB" kib; "-"; "-"; "-"; "-"; "-" ]
        | Ok r ->
            let s = r.Htvm.Lab.solution in
            Some
              [ Printf.sprintf "%d kB" kib;
                Arch.Tile.to_string s.Dory.Tiling.tile;
                string_of_int s.Dory.Tiling.tile_count;
                Printf.sprintf "%.0f%%"
                  (100.0
                  *. Arch.Accel.utilization Arch.Diana.digital layer s.Dory.Tiling.tile);
                string_of_int r.Htvm.Lab.counters.Sim.Counters.wall;
                Printf.sprintf "%.1f" (Htvm.Lab.full_throughput layer r) ])
      [ 256; 128; 64; 32; 16; 8; 4; 2 ]
  in
  print_string
    (Util.Table.render
       ~align:[ Util.Table.Right; Left; Right; Right; Right; Right ]
       ~header:[ "L1"; "chosen tile"; "tiles"; "PE util"; "cycles"; "MAC/cyc" ]
       rows)
