examples/tiling_explorer.mli:
