examples/tiling_explorer.ml: Arch Array Dory Htvm Ir List Nn Printf Sim Sys Tensor Util
