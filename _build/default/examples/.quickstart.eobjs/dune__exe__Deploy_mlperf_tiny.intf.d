examples/deploy_mlperf_tiny.mli:
