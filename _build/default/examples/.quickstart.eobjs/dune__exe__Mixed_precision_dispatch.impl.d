examples/mixed_precision_dispatch.ml: Arch Htvm List Models Printf
