examples/quickstart.ml: Arch Codegen Format Htvm Ir List Printf Tensor Util
