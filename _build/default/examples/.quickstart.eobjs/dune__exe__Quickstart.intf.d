examples/quickstart.mli:
