examples/float_to_diana.mli:
