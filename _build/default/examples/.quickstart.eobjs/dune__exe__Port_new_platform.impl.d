examples/port_new_platform.ml: Arch Htvm Ir List Models Printf Tensor
