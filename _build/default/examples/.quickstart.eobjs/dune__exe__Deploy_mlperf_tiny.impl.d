examples/deploy_mlperf_tiny.ml: Arch Arg Cmd Cmdliner Codegen Format Htvm Ir List Models Printf Sim String Tensor Term Util
