examples/float_to_diana.ml: Arch Format Htvm Ir List Printf Quant Sim Tensor Util
