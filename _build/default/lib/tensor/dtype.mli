(** Element types of the quantized tensor universe.

    DIANA's compute cores operate on narrow integer types: the digital
    accelerator on 8-bit activations/weights with 32-bit accumulators, the
    analog in-memory-compute array on 7-bit activations and ternary
    weights. The simulator stores every element as an OCaml [int]; the
    dtype fixes its legal range and its storage cost. *)

type t =
  | I8       (** signed 8-bit: activations and digital weights *)
  | U7       (** unsigned 7-bit: analog accelerator input port *)
  | I16      (** signed 16-bit: intermediate requantization *)
  | I32      (** signed 32-bit: accumulators and biases *)
  | Ternary  (** weights in [{-1;0;1}] for the analog IMC array *)

val equal : t -> t -> bool
val to_string : t -> string

val min_value : t -> int
(** Smallest representable value. *)

val max_value : t -> int
(** Largest representable value. *)

val in_range : t -> int -> bool
(** Whether a value is representable in the dtype. *)

val sim_bytes : t -> int
(** Bytes one element occupies in the simulator's byte memories. Ternary is
    stored one byte per cell in simulation (see DESIGN.md). *)

val packed_bits : t -> int
(** Bits per element in the deployed binary's weight sections: ternary
    weights pack to 2 bits, everything else to its natural width. *)

val clamp : t -> int -> int
(** Saturate a value into the dtype's range (ternary maps through sign). *)
