lib/tensor/dtype.mli:
