lib/tensor/tensor.ml: Array Dtype Format List Printf String Util
