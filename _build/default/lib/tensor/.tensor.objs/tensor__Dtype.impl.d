lib/tensor/dtype.ml: Util
