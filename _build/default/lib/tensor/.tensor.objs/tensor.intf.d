lib/tensor/tensor.mli: Dtype Format Util
