type t = I8 | U7 | I16 | I32 | Ternary

let equal (a : t) b = a = b

let to_string = function
  | I8 -> "i8"
  | U7 -> "u7"
  | I16 -> "i16"
  | I32 -> "i32"
  | Ternary -> "ternary"

let min_value = function
  | I8 -> -128
  | U7 -> 0
  | I16 -> -32768
  | I32 -> -2147483648
  | Ternary -> -1

let max_value = function
  | I8 -> 127
  | U7 -> 127
  | I16 -> 32767
  | I32 -> 2147483647
  | Ternary -> 1

let in_range t v = v >= min_value t && v <= max_value t

let sim_bytes = function
  | I8 | U7 | Ternary -> 1
  | I16 -> 2
  | I32 -> 4

let packed_bits = function
  | I8 -> 8
  | U7 -> 7
  | I16 -> 16
  | I32 -> 32
  | Ternary -> 2

let clamp t v =
  match t with
  | Ternary -> if v > 0 then 1 else if v < 0 then -1 else 0
  | _ -> Util.Ints.clamp ~lo:(min_value t) ~hi:(max_value t) v
