(** The "device" schedules are measured on.

    Autotuning measures candidate kernels on hardware; our hardware is a
    cycle model, so the device is a schedule-sensitive refinement of the
    host-CPU cost model: it prices SIMD efficiency (vector lanes vs
    available data parallelism), cache behaviour of the chosen blocking
    (a 32 kB L1-D model with weight and activation working sets), and
    loop/unroll bookkeeping overhead. The coarse {!Arch.Cpu_model} is the
    average this refines; tuned kernels beat the default schedule by
    realistic (1.2-2.5x) factors, not magic ones. *)

type t = {
  dcache_bytes : int;
  miss_penalty_cycles : float;  (** per missed line *)
  line_bytes : int;
  base_cycles_per_mac : float;  (** scalar issue rate *)
  loop_overhead_cycles : float;  (** per loop-nest iteration step *)
}

val xpulpv2 : t
(** Calibrated so the default schedule reproduces
    {!Arch.Diana.cpu}'s conv rate (~2.8 cycles/MAC). *)

val kernel_cycles : t -> Ir.Layer.t -> Sched.t -> int
(** Simulated cycles of one layer execution under a schedule. Pure and
    deterministic — the tuner's measurement oracle. *)
