(** CPU-kernel schedule space.

    TVM's primary optimization mechanism is autotuning: compiling many
    differently-scheduled but equivalent kernel variants and measuring
    them on the device (paper Sec. II-B). We reproduce the mechanism for
    the host-CPU convolution/dense kernels: a schedule fixes the loop
    order, cache-blocking tile sizes, the SIMD vectorization width and
    the innermost unroll factor. Semantics never change — only the cost
    model's opinion of the variant (and hence the simulated cycles). *)

type loop_order =
  | Khw_c  (** output channels outer, spatial, then reduction — weight-reuse friendly *)
  | Hw_kc  (** spatial outer, channels inner — activation-reuse friendly *)
  | C_khw  (** reduction outermost — pathological for accumulators *)

type t = {
  order : loop_order;
  tile_k : int;   (** output-channel cache block *)
  tile_x : int;   (** output-column cache block *)
  vector : int;   (** SIMD lanes used: 1, 2 or 4 (XpulpV2 dot-product units) *)
  unroll : int;   (** innermost unroll: 1, 2, 4 or 8 *)
}

val default : t
(** The untuned schedule TVM's fallback emits: Khw_c, modest blocks,
    vector 2, unroll 1. *)

val all_orders : loop_order list
val order_to_string : loop_order -> string
val to_string : t -> string

val random : Util.Rng.t -> Ir.Layer.t -> t
(** A random valid point of the space for the given layer (tile sizes are
    clamped to the layer's extents). *)

val neighbours : Ir.Layer.t -> t -> t list
(** Single-knob mutations of a schedule (for local search). *)
