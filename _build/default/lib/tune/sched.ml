type loop_order = Khw_c | Hw_kc | C_khw

type t = {
  order : loop_order;
  tile_k : int;
  tile_x : int;
  vector : int;
  unroll : int;
}

let default = { order = Khw_c; tile_k = 8; tile_x = 8; vector = 2; unroll = 1 }

let all_orders = [ Khw_c; Hw_kc; C_khw ]

let order_to_string = function
  | Khw_c -> "khw_c"
  | Hw_kc -> "hw_kc"
  | C_khw -> "c_khw"

let to_string s =
  Printf.sprintf "{%s k=%d x=%d vec=%d unroll=%d}" (order_to_string s.order) s.tile_k
    s.tile_x s.vector s.unroll

let layer_extents (l : Ir.Layer.t) =
  match l.Ir.Layer.kind with
  | Ir.Layer.Conv _ | Ir.Layer.Pool _ | Ir.Layer.Add ->
      (l.Ir.Layer.out_shape.(0), l.Ir.Layer.out_shape.(2))
  | Ir.Layer.Dense -> (l.Ir.Layer.out_shape.(0), 1)

let clamp_tiles l s =
  let kmax, xmax = layer_extents l in
  { s with tile_k = min s.tile_k kmax; tile_x = min s.tile_x xmax }

let tile_candidates = [ 1; 2; 4; 8; 16; 32; 64 ]
let vector_candidates = [ 1; 2; 4 ]
let unroll_candidates = [ 1; 2; 4; 8 ]

let pick rng l = List.nth l (Util.Rng.int rng (List.length l))

let random rng l =
  clamp_tiles l
    {
      order = pick rng all_orders;
      tile_k = pick rng tile_candidates;
      tile_x = pick rng tile_candidates;
      vector = pick rng vector_candidates;
      unroll = pick rng unroll_candidates;
    }

(* Previous and next values of [v] in a sorted candidate list. *)
let adjacent cands v =
  let rec go prev = function
    | [] -> []
    | x :: rest when x = v -> (
        let after = match rest with n :: _ -> [ n ] | [] -> [] in
        match prev with Some p -> p :: after | None -> after)
    | x :: rest -> go (Some x) rest
  in
  go None cands

let neighbours l s =
  let step = adjacent in
  let orders = List.filter (fun o -> o <> s.order) all_orders in
  List.concat
    [
      List.map (fun order -> { s with order }) orders;
      List.map (fun tile_k -> clamp_tiles l { s with tile_k }) (step tile_candidates s.tile_k);
      List.map (fun tile_x -> clamp_tiles l { s with tile_x }) (step tile_candidates s.tile_x);
      List.map (fun vector -> { s with vector }) (step vector_candidates s.vector);
      List.map (fun unroll -> { s with unroll }) (step unroll_candidates s.unroll);
    ]
  |> List.filter (fun n -> n <> s)
  |> List.sort_uniq compare
