(** The autotuner: random sampling plus greedy local refinement.

    Mirrors TVM's measure-and-select loop at small scale: draw random
    schedules, measure each on the device, then hill-climb from the best
    sample through single-knob neighbours. Deterministic given the seed.
    The returned trial count is the "cost of tuning" the paper's
    ahead-of-time argument is about (every trial would be a real on-device
    measurement in TVM). *)

type result = {
  best : Sched.t;
  best_cycles : int;
  default_cycles : int;  (** the untuned fallback schedule's cycles *)
  trials : int;  (** device measurements spent *)
}

val speedup : result -> float
(** [default_cycles / best_cycles]; >= 1 by construction (the default
    schedule is always among the candidates). *)

val tune :
  ?seed:int -> ?budget:int -> device:Device.t -> Ir.Layer.t -> result
(** Tune one layer. [budget] bounds the number of measurements
    (default 64). *)
