lib/tune/device.ml: Array Float Ir Nn Sched Util
