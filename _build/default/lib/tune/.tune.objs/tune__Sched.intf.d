lib/tune/sched.mli: Ir Util
