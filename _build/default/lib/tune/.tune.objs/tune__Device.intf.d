lib/tune/device.mli: Ir Sched
