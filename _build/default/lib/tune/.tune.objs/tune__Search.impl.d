lib/tune/search.ml: Device List Sched Util
