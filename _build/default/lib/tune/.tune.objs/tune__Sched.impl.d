lib/tune/sched.ml: Array Ir List Printf Util
