lib/tune/search.mli: Device Ir Sched
