type t = {
  dcache_bytes : int;
  miss_penalty_cycles : float;
  line_bytes : int;
  base_cycles_per_mac : float;
  loop_overhead_cycles : float;
}

let xpulpv2 =
  {
    dcache_bytes = Util.Ints.kib 32;
    miss_penalty_cycles = 8.0;
    line_bytes = 16;
    base_cycles_per_mac = 2.0;
    loop_overhead_cycles = 1.0;
  }

(* Geometry of the kernel as the cost model sees it. *)
type geom = {
  outputs : int;        (** output elements *)
  reduction : int;      (** MACs per output *)
  k : int;              (** output channels *)
  spatial : int;        (** output spatial positions *)
  weight_bytes : int;
  act_bytes : int;
}

let geom_of (l : Ir.Layer.t) =
  let fy, fx = Ir.Layer.kernel_dims l in
  let numel a = Array.fold_left ( * ) 1 a in
  match l.Ir.Layer.kind with
  | Ir.Layer.Conv p ->
      let k = l.Ir.Layer.out_shape.(0) in
      let spatial = l.Ir.Layer.out_shape.(1) * l.Ir.Layer.out_shape.(2) in
      let cg = l.Ir.Layer.in_shape.(0) / p.Nn.Kernels.groups in
      {
        outputs = k * spatial;
        reduction = cg * fy * fx;
        k;
        spatial;
        weight_bytes = k * cg * fy * fx;
        act_bytes = numel l.Ir.Layer.in_shape;
      }
  | Ir.Layer.Dense ->
      let k = l.Ir.Layer.out_shape.(0) and c = l.Ir.Layer.in_shape.(0) in
      {
        outputs = k;
        reduction = c;
        k;
        spatial = 1;
        weight_bytes = k * c;
        act_bytes = c;
      }
  | Ir.Layer.Add | Ir.Layer.Pool _ ->
      { outputs = numel l.Ir.Layer.out_shape; reduction = 1; k = 1; spatial = 1;
        weight_bytes = 0; act_bytes = numel l.Ir.Layer.in_shape }

(* Memory traffic (bytes) induced by the blocking, by loop order. When the
   whole working set fits the data cache everything is compulsory-only. *)
let traffic_bytes g (s : Sched.t) =
  if g.weight_bytes + g.act_bytes <= 0 then 0.0
  else
    let k_blocks = float_of_int (Util.Ints.ceil_div g.k (max 1 s.Sched.tile_k)) in
    let x_blocks =
      float_of_int (Util.Ints.ceil_div g.spatial (max 1 s.Sched.tile_x))
    in
    match s.Sched.order with
    | Sched.Khw_c ->
        (* weights streamed once; activations re-read per k block *)
        float_of_int g.weight_bytes +. (k_blocks *. float_of_int g.act_bytes)
    | Sched.Hw_kc ->
        (* activations streamed once; weights re-read per spatial block *)
        float_of_int g.act_bytes +. (x_blocks *. float_of_int g.weight_bytes)
    | Sched.C_khw ->
        (* reduction outermost: 4-byte partial sums spilled and reloaded
           every reduction step *)
        float_of_int g.weight_bytes +. float_of_int g.act_bytes
        +. (2.0 *. 4.0 *. float_of_int g.outputs *. float_of_int g.reduction /. 8.0)

let kernel_cycles d (l : Ir.Layer.t) (s : Sched.t) =
  let g = geom_of l in
  let red_steps = Util.Ints.ceil_div g.reduction (max 1 s.Sched.vector) in
  let compute =
    float_of_int g.outputs *. float_of_int red_steps
    *. d.base_cycles_per_mac /. 2.0
  in
  (* Reduction-outermost keeps no accumulator in registers: every step
     pays an extra load + store of the 32-bit partial sum, cache hit or
     not. *)
  let compute =
    match s.Sched.order with
    | Sched.C_khw -> compute +. (1.5 *. float_of_int g.outputs *. float_of_int red_steps)
    | Sched.Khw_c | Sched.Hw_kc -> compute
  in
  (* Working sets that fit in-cache only pay compulsory traffic. *)
  let ws_fits = g.weight_bytes + g.act_bytes <= d.dcache_bytes in
  let traffic =
    if ws_fits then float_of_int (g.weight_bytes + g.act_bytes)
    else traffic_bytes g s
  in
  let cache = traffic /. float_of_int d.line_bytes *. d.miss_penalty_cycles in
  let loop =
    float_of_int g.outputs *. float_of_int red_steps
    /. float_of_int (max 1 s.Sched.unroll)
    *. d.loop_overhead_cycles
  in
  (* Very aggressive unroll x vector combinations blow the icache/regfile. *)
  let bloat = if s.Sched.unroll * s.Sched.vector > 16 then 1.08 else 1.0 in
  int_of_float (Float.round ((compute +. cache +. loop) *. bloat)) + 200
