type result = {
  best : Sched.t;
  best_cycles : int;
  default_cycles : int;
  trials : int;
}

let speedup r = float_of_int r.default_cycles /. float_of_int (max 1 r.best_cycles)

let tune ?(seed = 0) ?(budget = 64) ~device layer =
  let rng = Util.Rng.create seed in
  let trials = ref 0 in
  let measure s =
    incr trials;
    Device.kernel_cycles device layer s
  in
  let default_cycles = measure Sched.default in
  let best = ref Sched.default and best_cycles = ref default_cycles in
  let consider s =
    if !trials < budget then begin
      let c = measure s in
      if c < !best_cycles then begin
        best := s;
        best_cycles := c
      end
    end
  in
  (* Phase 1: random sampling over the space. *)
  let random_budget = budget / 2 in
  while !trials < random_budget do
    consider (Sched.random rng layer)
  done;
  (* Phase 2: greedy descent through single-knob neighbours. *)
  let improved = ref true in
  while !improved && !trials < budget do
    improved := false;
    let here = !best_cycles in
    List.iter consider (Sched.neighbours layer !best);
    if !best_cycles < here then improved := true
  done;
  { best = !best; best_cycles = !best_cycles; default_cycles; trials = !trials }
