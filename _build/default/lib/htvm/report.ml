let to_markdown ?(energy = Sim.Energy.diana_defaults) (artifact : Compile.artifact)
    (report : Sim.Machine.report) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  let cfg = artifact.Compile.cfg in
  let platform = cfg.Compile.platform in
  add "# HTVM deployment report\n\n";
  add "- platform: **%s** @ %d MHz (accelerators: %s)\n"
    platform.Arch.Platform.platform_name platform.Arch.Platform.freq_mhz
    (match platform.Arch.Platform.accels with
    | [] -> "none"
    | accels ->
        String.concat ", " (List.map (fun a -> a.Arch.Accel.accel_name) accels));
  add "- memory plan: %s; double buffering: %b; heuristics: pe=%b dma=%b\n"
    (match cfg.Compile.memory_strategy with
    | Dory.Memplan.Reuse -> "liveness reuse"
    | Dory.Memplan.No_reuse -> "no reuse (TVM baseline)")
    cfg.Compile.double_buffer cfg.Compile.use_pe_heuristics cfg.Compile.use_dma_heuristic;
  (match cfg.Compile.autotune_budget with
  | None -> add "- autotuning: off (fully ahead-of-time)\n"
  | Some b ->
      add "- autotuning: on (budget %d, %d device trials spent)\n" b
        artifact.Compile.tuning_trials);
  let full = Compile.full_cycles report and peak = Compile.peak_cycles report in
  add "\n## Latency\n\n";
  add "- full kernel calls: **%.3f ms** (%d cycles)\n" (Compile.latency_ms cfg full) full;
  add "- accelerator peak + CPU: %.3f ms (%d cycles)\n" (Compile.latency_ms cfg peak) peak;
  add "\n## Steps\n\n";
  let rows =
    List.map2
      (fun (li : Compile.layer_info) (name, (c : Sim.Counters.t)) ->
        ignore name;
        [ string_of_int li.Compile.li_index;
          li.Compile.li_target;
          li.Compile.li_desc
          ^ (match li.Compile.li_tile with
            | Some t when li.Compile.li_tiled -> " " ^ Arch.Tile.to_string t
            | _ -> "");
          string_of_int c.Sim.Counters.wall;
          string_of_int (Sim.Counters.peak c);
          string_of_int (c.Sim.Counters.dma_in + c.Sim.Counters.dma_out) ])
      artifact.Compile.layers report.Sim.Machine.per_step
  in
  Buffer.add_string buf
    (Util.Table.render_markdown
       ~header:[ "#"; "target"; "kernel"; "wall"; "accel peak"; "dma" ]
       rows);
  add "\n## Binary size\n\n";
  Buffer.add_string buf
    (Util.Table.render_markdown ~header:[ "section"; "bytes" ]
       (List.map
          (fun (s : Codegen.Size.section) ->
            [ s.Codegen.Size.section_name; string_of_int s.Codegen.Size.bytes ])
          artifact.Compile.size.Codegen.Size.sections));
  add "\ntotal: **%.1f kB**\n" (Codegen.Size.total_kb artifact.Compile.size);
  add "\n## L2 memory\n\n";
  add "- resident weights: %d B\n" artifact.Compile.l2_static_bytes;
  add "- activation arena: %d B (peak use %d B)\n" artifact.Compile.l2_arena_bytes
    artifact.Compile.program.Sim.Program.l2_activation_peak;
  add "\n## Energy (modeled)\n\n";
  add "%s\n"
    (Format.asprintf "%a" Sim.Energy.pp (Sim.Energy.of_report energy report));
  Buffer.contents buf
