lib/htvm/report.mli: Compile Sim
