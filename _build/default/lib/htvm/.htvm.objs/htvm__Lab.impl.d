lib/htvm/lab.ml: Arch Array Dory Ir List Printf Sim Tensor Util
