lib/htvm/report.ml: Arch Buffer Codegen Compile Dory Format List Printf Sim String Util
