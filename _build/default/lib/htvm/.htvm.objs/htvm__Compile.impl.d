lib/htvm/compile.ml: Arch Array Byoc Codegen Dory Float Hashtbl Ir List Printf Result Sim Tensor Tune Util
