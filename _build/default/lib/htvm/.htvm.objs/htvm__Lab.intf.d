lib/htvm/lab.mli: Arch Dory Ir Sim Stdlib Tensor
