lib/htvm/compile.mli: Arch Codegen Dory Ir Sim Tensor
