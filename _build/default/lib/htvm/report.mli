(** Human-readable deployment reports.

    Renders everything a deployment engineer asks about an artifact — the
    dispatch decisions, tiling, per-step cycle breakdown, latency,
    binary-size sections, L2 memory plan and estimated energy — as one
    markdown document ([htvmc report] prints it). *)

val to_markdown :
  ?energy:Sim.Energy.params ->
  Compile.artifact ->
  Sim.Machine.report ->
  string
(** Defaults to {!Sim.Energy.diana_defaults} for the energy section. *)
