type layer =
  | Conv of {
      w : Ftensor.t;
      bias : float array;
      stride : int * int;
      padding : int * int;
      groups : int;
      relu : bool;
    }
  | Dense of { w : Ftensor.t; bias : float array; relu : bool }
  | Max_pool of { pool : int * int; stride : int * int }
  | Avg_pool of { pool : int * int; stride : int * int }
  | Global_avg_pool
  | Flatten

type t = { f_input_shape : int array; f_layers : layer list }

let conv_out ~h ~w ~fy ~fx ~stride:(sy, sx) ~padding:(py, px) =
  ((((h + (2 * py) - fy) / sy) + 1), (((w + (2 * px) - fx) / sx) + 1))

let infer_conv x ~w:wt ~bias ~stride ~padding ~groups ~relu =
  let dims = Ftensor.dims x in
  let c = dims.(0) and h = dims.(1) and wd = dims.(2) in
  let wdims = Ftensor.dims wt in
  let k = wdims.(0) and cg = wdims.(1) and fy = wdims.(2) and fx = wdims.(3) in
  if groups <= 0 || c mod groups <> 0 || cg <> c / groups || k mod groups <> 0 then
    invalid_arg "Fmodel: bad conv grouping";
  let sy, sx = stride and py, px = padding in
  let oh, ow = conv_out ~h ~w:wd ~fy ~fx ~stride ~padding in
  if oh <= 0 || ow <= 0 then invalid_arg "Fmodel: empty conv output";
  let out = Ftensor.create [| k; oh; ow |] in
  let kpg = k / groups in
  for ko = 0 to k - 1 do
    let grp = ko / kpg in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref bias.(ko) in
        for ci = 0 to cg - 1 do
          let cin = (grp * cg) + ci in
          for ky = 0 to fy - 1 do
            let iy = (oy * sy) + ky - py in
            if iy >= 0 && iy < h then
              for kx = 0 to fx - 1 do
                let ix = (ox * sx) + kx - px in
                if ix >= 0 && ix < wd then
                  acc :=
                    !acc
                    +. Ftensor.get x [| cin; iy; ix |]
                       *. Ftensor.get wt [| ko; ci; ky; kx |]
              done
          done
        done;
        Ftensor.set out [| ko; oy; ox |] (if relu then Float.max 0.0 !acc else !acc)
      done
    done
  done;
  out

let infer_dense x ~w:wt ~bias ~relu =
  let c = (Ftensor.dims x).(0) in
  let wdims = Ftensor.dims wt in
  if wdims.(1) <> c then invalid_arg "Fmodel: dense shape mismatch";
  let k = wdims.(0) in
  let out = Ftensor.create [| k |] in
  for ko = 0 to k - 1 do
    let acc = ref bias.(ko) in
    for ci = 0 to c - 1 do
      acc := !acc +. (Ftensor.get x [| ci |] *. Ftensor.get wt [| ko; ci |])
    done;
    Ftensor.set out [| ko |] (if relu then Float.max 0.0 !acc else !acc)
  done;
  out

let infer_pool x ~pool:(py, px) ~stride:(sy, sx) ~combine ~finish =
  let dims = Ftensor.dims x in
  let c = dims.(0) and h = dims.(1) and w = dims.(2) in
  let oh = ((h - py) / sy) + 1 and ow = ((w - px) / sx) + 1 in
  if oh <= 0 || ow <= 0 then invalid_arg "Fmodel: empty pool output";
  let out = Ftensor.create [| c; oh; ow |] in
  for ci = 0 to c - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref None in
        for ky = 0 to py - 1 do
          for kx = 0 to px - 1 do
            let v = Ftensor.get x [| ci; (oy * sy) + ky; (ox * sx) + kx |] in
            acc := Some (match !acc with None -> v | Some a -> combine a v)
          done
        done;
        Ftensor.set out [| ci; oy; ox |] (finish (Option.get !acc) (py * px))
      done
    done
  done;
  out

let infer_layer x = function
  | Conv { w; bias; stride; padding; groups; relu } ->
      infer_conv x ~w ~bias ~stride ~padding ~groups ~relu
  | Dense { w; bias; relu } -> infer_dense x ~w ~bias ~relu
  | Max_pool { pool; stride } ->
      infer_pool x ~pool ~stride ~combine:Float.max ~finish:(fun v _ -> v)
  | Avg_pool { pool; stride } ->
      infer_pool x ~pool ~stride ~combine:( +. ) ~finish:(fun v n -> v /. float_of_int n)
  | Global_avg_pool ->
      let d = Ftensor.dims x in
      infer_pool x ~pool:(d.(1), d.(2)) ~stride:(1, 1) ~combine:( +. )
        ~finish:(fun v n -> v /. float_of_int n)
  | Flatten -> Ftensor.of_array [| Ftensor.numel x |] (Array.init (Ftensor.numel x) (Ftensor.get_flat x))

let infer m x =
  if Ftensor.dims x <> m.f_input_shape then invalid_arg "Fmodel.infer: input shape";
  List.fold_left infer_layer x m.f_layers

let infer_all m x =
  if Ftensor.dims x <> m.f_input_shape then invalid_arg "Fmodel.infer_all: input shape";
  List.rev
    (fst
       (List.fold_left
          (fun (acc, v) layer ->
            let v = infer_layer v layer in
            (v :: acc, v))
          ([], x) m.f_layers))

let validate m =
  match infer m (Ftensor.create m.f_input_shape) with
  | _ -> Ok ()
  | exception Invalid_argument e -> Error e

let random_cnn ?(seed = 1) () =
  let rng = Util.Rng.create seed in
  let wscale = 0.5 in
  let conv ~c ~k ~f ~relu =
    Conv
      {
        w = Ftensor.random rng ~scale:wscale [| k; c; f; f |];
        bias = Array.init k (fun _ -> 0.1 *. float_of_int (Util.Rng.int_in rng (-5) 5));
        stride = (1, 1);
        padding = (f / 2, f / 2);
        groups = 1;
        relu;
      }
  in
  {
    f_input_shape = [| 3; 12; 12 |];
    f_layers =
      [
        conv ~c:3 ~k:8 ~f:3 ~relu:true;
        Max_pool { pool = (2, 2); stride = (2, 2) };
        conv ~c:8 ~k:16 ~f:3 ~relu:true;
        Global_avg_pool;
        Flatten;
        Dense
          {
            w = Ftensor.random rng ~scale:wscale [| 5; 16 |];
            bias = Array.make 5 0.0;
            relu = false;
          };
      ];
  }

let random_mlp ?(seed = 2) () =
  let rng = Util.Rng.create seed in
  let dense ~c ~k ~relu =
    Dense
      {
        w = Ftensor.random rng ~scale:0.4 [| k; c |];
        bias = Array.init k (fun _ -> 0.05 *. float_of_int (Util.Rng.int_in rng (-4) 4));
        relu;
      }
  in
  {
    f_input_shape = [| 32 |];
    f_layers = [ dense ~c:32 ~k:24 ~relu:true; dense ~c:24 ~k:8 ~relu:true; dense ~c:8 ~k:32 ~relu:false ];
  }
