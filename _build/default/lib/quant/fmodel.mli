(** Floating-point sequential models.

    The quantizer's input: a chain of float layers (the subset TinyML
    networks use). [infer] is the float reference the quantized graph is
    validated against. *)

type layer =
  | Conv of {
      w : Ftensor.t;  (** [|k; c/groups; fy; fx|] *)
      bias : float array;  (** length k *)
      stride : int * int;
      padding : int * int;
      groups : int;
      relu : bool;
    }
  | Dense of { w : Ftensor.t (** [|k; c|] *); bias : float array; relu : bool }
  | Max_pool of { pool : int * int; stride : int * int }
  | Avg_pool of { pool : int * int; stride : int * int }
  | Global_avg_pool
  | Flatten

type t = {
  f_input_shape : int array;  (** CHW, or [|c|] for dense-only models *)
  f_layers : layer list;
}

val infer : t -> Ftensor.t -> Ftensor.t
(** Float-exact forward pass.
    @raise Invalid_argument on shape mismatches. *)

val infer_all : t -> Ftensor.t -> Ftensor.t list
(** The activation after every layer, in layer order (used by the
    quantizer's calibration). *)

val validate : t -> (unit, string) result
(** Static shape check of the whole chain. *)

val random_cnn : ?seed:int -> unit -> t
(** A small random conv net (used by tests and the example). *)

val random_mlp : ?seed:int -> unit -> t
(** A small random dense autoencoder-style net. *)
