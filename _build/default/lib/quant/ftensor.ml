type t = { shape : int array; data : float array }

let product shape = Array.fold_left ( * ) 1 shape

let create shape =
  if Array.exists (fun d -> d <= 0) shape then invalid_arg "Ftensor: bad shape";
  { shape = Array.copy shape; data = Array.make (product shape) 0.0 }

let of_array shape data =
  if Array.length data <> product shape then invalid_arg "Ftensor.of_array: length";
  { shape = Array.copy shape; data = Array.copy data }

let dims t = Array.copy t.shape
let numel t = Array.length t.data
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v

let flat_index t idx =
  let n = Array.length t.shape in
  if Array.length idx <> n then invalid_arg "Ftensor: rank mismatch";
  let off = ref 0 in
  for i = 0 to n - 1 do
    if idx.(i) < 0 || idx.(i) >= t.shape.(i) then invalid_arg "Ftensor: out of bounds";
    off := (!off * t.shape.(i)) + idx.(i)
  done;
  !off

let get t idx = t.data.(flat_index t idx)
let set t idx v = t.data.(flat_index t idx) <- v
let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }

let abs_max t = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0 t.data

let random rng ?(scale = 1.0) shape =
  let n = product shape in
  {
    shape = Array.copy shape;
    data =
      Array.init n (fun _ ->
          scale *. ((2.0 *. (float_of_int (Util.Rng.int rng 1_000_001) /. 1_000_000.0)) -. 1.0));
  }

let sqnr_db ~reference t =
  if reference.shape <> t.shape then invalid_arg "Ftensor.sqnr_db: shape mismatch";
  let signal = ref 0.0 and noise = ref 0.0 in
  Array.iteri
    (fun i r ->
      signal := !signal +. (r *. r);
      let d = r -. t.data.(i) in
      noise := !noise +. (d *. d))
    reference.data;
  if !noise = 0.0 then infinity
  else 10.0 *. (Float.log10 (!signal /. !noise))
