(** Dense float tensors for the floating-point reference path.

    HTVM consumes already-quantized graphs; the quantizer in this library
    produces them from float models, the way TFLite's converter did for
    the paper's networks. This module is the float counterpart of
    {!Tensor}. *)

type t

val create : int array -> t
val of_array : int array -> float array -> t
val dims : t -> int array
val numel : t -> int
val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit
val get : t -> int array -> float
val set : t -> int array -> float -> unit
val map : (float -> float) -> t -> t
val abs_max : t -> float
(** Largest absolute element (0 for the all-zero tensor). *)

val random : Util.Rng.t -> ?scale:float -> int array -> t
(** Uniform values in [\[-scale, scale\]] (default 1.0). *)

val sqnr_db : reference:t -> t -> float
(** Signal-to-quantization-noise ratio in dB of a tensor against a float
    reference of the same shape; +inf when identical. *)
