module B = Ir.Graph.Builder
module Dtype = Tensor.Dtype

type meta = { input_scale : float; output_scale : float }

(* Largest power of two p with p * absmax <= target. *)
let pow2_scale ~target absmax =
  if absmax <= 1e-12 then 1.0
  else 2.0 ** Float.floor (Float.log2 (target /. absmax))

let quantize_tensor_i8 sw (w : Ftensor.t) =
  let t = Tensor.create Dtype.I8 (Ftensor.dims w) in
  for i = 0 to Ftensor.numel w - 1 do
    let q = int_of_float (Float.round (Ftensor.get_flat w i *. sw)) in
    Tensor.set_flat t i (Util.Ints.clamp ~lo:(-127) ~hi:127 q)
  done;
  t

(* TWN-style ternarization: threshold at 0.7 * mean |w|; the represented
   magnitude alpha is the mean |w| of the surviving weights. *)
let ternarize (w : Ftensor.t) =
  let n = Ftensor.numel w in
  let mean_abs = ref 0.0 in
  for i = 0 to n - 1 do
    mean_abs := !mean_abs +. Float.abs (Ftensor.get_flat w i)
  done;
  let mean_abs = !mean_abs /. float_of_int (max 1 n) in
  let thr = 0.7 *. mean_abs in
  let t = Tensor.create Dtype.Ternary (Ftensor.dims w) in
  let alpha_sum = ref 0.0 and alpha_n = ref 0 in
  for i = 0 to n - 1 do
    let v = Ftensor.get_flat w i in
    if Float.abs v > thr then begin
      Tensor.set_flat t i (if v > 0.0 then 1 else -1);
      alpha_sum := !alpha_sum +. Float.abs v;
      incr alpha_n
    end
  done;
  let alpha = if !alpha_n = 0 then mean_abs else !alpha_sum /. float_of_int !alpha_n in
  (t, Float.max alpha 1e-9)

let bias_tensor ~scale bias =
  let k = Array.length bias in
  let t = Tensor.create Dtype.I32 [| k |] in
  Array.iteri
    (fun i b ->
      let q = int_of_float (Float.round (b *. scale)) in
      Tensor.set_flat t i
        (Util.Ints.clamp ~lo:(Dtype.min_value Dtype.I32) ~hi:(Dtype.max_value Dtype.I32) q))
    bias;
  t

let quantize ?(ternary = false) ~calibration (m : Fmodel.t) =
  match calibration with
  | [] -> Error "quantize: empty calibration set"
  | first :: _ -> (
      match Fmodel.validate m with
      | Error e -> Error ("quantize: invalid model: " ^ e)
      | Ok () -> (
          (* Calibrate: per-layer activation magnitudes and shapes. *)
          let n_layers = List.length m.Fmodel.f_layers in
          let absmax = Array.make n_layers 0.0 in
          let input_absmax = ref 0.0 in
          List.iter
            (fun sample ->
              input_absmax := Float.max !input_absmax (Ftensor.abs_max sample);
              List.iteri
                (fun i out -> absmax.(i) <- Float.max absmax.(i) (Ftensor.abs_max out))
                (Fmodel.infer_all m sample))
            calibration;
          let shapes = List.map Ftensor.dims (Fmodel.infer_all m first) in
          if !input_absmax <= 1e-12 then Error "quantize: calibration inputs are all zero"
          else begin
            let input_scale = pow2_scale ~target:127.0 !input_absmax in
            let b = B.create () in
            let x = B.input b ~name:"input" Dtype.I8 m.Fmodel.f_input_shape in
            let emit_linear ~i ~scale ~emit_op ~w ~bias ~relu ~is_conv =
              (* [sw] is the TRUE weight scale (int weight ~ float * sw).
                 For ternary weights that is 1/alpha, not a power of two —
                 only the requantization shifts must be powers of two, the
                 tracked scales are bookkeeping and stay exact, so no
                 systematic gain error accumulates across layers. *)
              let wq, sw =
                if ternary && is_conv then
                  let t, alpha = ternarize w in
                  (t, 1.0 /. alpha)
                else
                  let sw = pow2_scale ~target:127.0 (Ftensor.abs_max w) in
                  (quantize_tensor_i8 sw w, sw)
              in
              let acc_scale = scale *. sw in
              (* Smallest shift that brings the calibrated activation range
                 inside int8. *)
              let shift =
                if absmax.(i) <= 1e-12 then 0
                else
                  max 0
                    (int_of_float
                       (Float.ceil (Float.log2 (acc_scale *. absmax.(i) /. 127.0))))
              in
              let out_scale = acc_scale /. (2.0 ** float_of_int shift) in
              let wc = B.const b wq in
              let acc = emit_op wc in
              let acc = B.bias_add b acc ~bias:(B.const b (bias_tensor ~scale:acc_scale bias)) in
              let q = B.requantize b ~relu ~shift ~out_dtype:Dtype.I8 acc in
              (q, out_scale)
            in
            let _, out_id, out_scale =
              List.fold_left2
                (fun (i, v, scale) layer shape ->
                  let v', scale' =
                    match (layer : Fmodel.layer) with
                    | Fmodel.Conv { w; bias; stride; padding; groups; relu } ->
                        emit_linear ~i ~scale
                          ~emit_op:(fun wc ->
                            B.app b (Ir.Op.Conv2d { stride; padding; groups }) [ v; wc ])
                          ~w ~bias ~relu ~is_conv:(groups = 1)
                    | Fmodel.Dense { w; bias; relu } when ternary ->
                        (* Ternary FCs are emitted as 1x1 convolutions so
                           the analog array can run them (paper Sec. IV-C). *)
                        let wd = Ftensor.dims w in
                        let cin = wd.(1) and k = wd.(0) in
                        let as_chw = B.reshape b [| cin; 1; 1 |] v in
                        let w4 =
                          Ftensor.of_array [| k; cin; 1; 1 |]
                            (Array.init (Ftensor.numel w) (Ftensor.get_flat w))
                        in
                        let q, scale' =
                          emit_linear ~i ~scale
                            ~emit_op:(fun wc ->
                              B.app b
                                (Ir.Op.Conv2d
                                   { stride = (1, 1); padding = (0, 0); groups = 1 })
                                [ as_chw; wc ])
                            ~w:w4 ~bias ~relu ~is_conv:true
                        in
                        (B.reshape b [| k |] q, scale')
                    | Fmodel.Dense { w; bias; relu } ->
                        emit_linear ~i ~scale
                          ~emit_op:(fun wc -> B.dense b v ~weights:wc)
                          ~w ~bias ~relu ~is_conv:false
                    | Fmodel.Max_pool { pool; stride } ->
                        (B.max_pool b ~pool ~stride v, scale)
                    | Fmodel.Avg_pool { pool; stride } ->
                        (B.avg_pool b ~pool ~stride v, scale)
                    | Fmodel.Global_avg_pool -> (B.global_avg_pool b v, scale)
                    | Fmodel.Flatten ->
                        (B.reshape b [| Array.fold_left ( * ) 1 shape |] v, scale)
                  in
                  (i + 1, v', scale'))
                (0, x, input_scale) m.Fmodel.f_layers shapes
            in
            let g = B.finish b ~output:out_id in
            Ok (g, { input_scale; output_scale = out_scale })
          end))

let quantize_input meta (x : Ftensor.t) =
  let t = Tensor.create Dtype.I8 (Ftensor.dims x) in
  for i = 0 to Ftensor.numel x - 1 do
    let q = int_of_float (Float.round (Ftensor.get_flat x i *. meta.input_scale)) in
    Tensor.set_flat t i (Util.Ints.clamp ~lo:(-128) ~hi:127 q)
  done;
  t

let dequantize_output meta (t : Tensor.t) =
  let out = Ftensor.create (Tensor.shape t) in
  Tensor.iteri_flat
    (fun i v -> Ftensor.set_flat out i (float_of_int v /. meta.output_scale))
    t;
  out
