let header = "htvm-fmodel v1"

exception Parse of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let dims_to_string shape =
  Array.to_list shape |> List.map string_of_int |> String.concat "x"

let dims_of_string s =
  String.split_on_char 'x' s
  |> List.map (fun d ->
         match int_of_string_opt d with
         | Some v when v > 0 -> v
         | _ -> fail "bad dimension %S" d)
  |> Array.of_list

let floats_to_hex values =
  let buf = Buffer.create (Array.length values * 16) in
  Array.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "%016Lx" (Int64.bits_of_float v)))
    values;
  Buffer.contents buf

let floats_of_hex n hex =
  if String.length hex <> n * 16 then
    fail "float payload is %d hex digits, expected %d" (String.length hex) (n * 16);
  Array.init n (fun i ->
      let chunk = String.sub hex (i * 16) 16 in
      match Int64.of_string_opt ("0x" ^ chunk) with
      | Some bits -> Int64.float_of_bits bits
      | None -> fail "bad float hex %S" chunk)

let ftensor_payload t = floats_to_hex (Array.init (Ftensor.numel t) (Ftensor.get_flat t))

let layer_to_line (l : Fmodel.layer) =
  match l with
  | Fmodel.Conv { w; bias; stride = sy, sx; padding = py, px; groups; relu } ->
      Printf.sprintf "conv %s stride %d %d pad %d %d groups %d relu %b w %s b %s"
        (dims_to_string (Ftensor.dims w))
        sy sx py px groups relu (ftensor_payload w) (floats_to_hex bias)
  | Fmodel.Dense { w; bias; relu } ->
      Printf.sprintf "dense %s relu %b w %s b %s"
        (dims_to_string (Ftensor.dims w))
        relu (ftensor_payload w) (floats_to_hex bias)
  | Fmodel.Max_pool { pool = py, px; stride = sy, sx } ->
      Printf.sprintf "maxpool %d %d stride %d %d" py px sy sx
  | Fmodel.Avg_pool { pool = py, px; stride = sy, sx } ->
      Printf.sprintf "avgpool %d %d stride %d %d" py px sy sx
  | Fmodel.Global_avg_pool -> "gap"
  | Fmodel.Flatten -> "flatten"

let to_string (m : Fmodel.t) =
  String.concat "\n"
    ([ header; Printf.sprintf "input %s" (dims_to_string m.Fmodel.f_input_shape) ]
    @ List.map layer_to_line m.Fmodel.f_layers
    @ [ "" ])

let bool_tok = function
  | "true" -> true
  | "false" -> false
  | s -> fail "expected bool, got %S" s

let int_tok s =
  match int_of_string_opt s with Some v -> v | None -> fail "expected integer, got %S" s

let weight_tensor dims hex =
  let n = Array.fold_left ( * ) 1 dims in
  Ftensor.of_array dims (floats_of_hex n hex)

let layer_of_line line =
  match String.split_on_char ' ' line with
  | "conv" :: dims :: "stride" :: sy :: sx :: "pad" :: py :: px :: "groups" :: g
    :: "relu" :: relu :: "w" :: whex :: "b" :: bhex :: [] ->
      let dims = dims_of_string dims in
      if Array.length dims <> 4 then fail "conv weights must be rank 4";
      Some
        (Fmodel.Conv
           {
             w = weight_tensor dims whex;
             bias = floats_of_hex dims.(0) bhex;
             stride = (int_tok sy, int_tok sx);
             padding = (int_tok py, int_tok px);
             groups = int_tok g;
             relu = bool_tok relu;
           })
  | "dense" :: dims :: "relu" :: relu :: "w" :: whex :: "b" :: bhex :: [] ->
      let dims = dims_of_string dims in
      if Array.length dims <> 2 then fail "dense weights must be rank 2";
      Some
        (Fmodel.Dense
           {
             w = weight_tensor dims whex;
             bias = floats_of_hex dims.(0) bhex;
             relu = bool_tok relu;
           })
  | [ "maxpool"; py; px; "stride"; sy; sx ] ->
      Some (Fmodel.Max_pool { pool = (int_tok py, int_tok px); stride = (int_tok sy, int_tok sx) })
  | [ "avgpool"; py; px; "stride"; sy; sx ] ->
      Some (Fmodel.Avg_pool { pool = (int_tok py, int_tok px); stride = (int_tok sy, int_tok sx) })
  | [ "gap" ] -> Some Fmodel.Global_avg_pool
  | [ "flatten" ] -> Some Fmodel.Flatten
  | [ "" ] -> None
  | tok :: _ -> fail "unknown layer %S" tok
  | [] -> None

let of_string s =
  match String.split_on_char '\n' s with
  | first :: input_line :: rest when String.trim first = header -> (
      try
        let input_shape =
          match String.split_on_char ' ' (String.trim input_line) with
          | [ "input"; dims ] -> dims_of_string dims
          | _ -> fail "expected 'input <dims>' on line 2"
        in
        let layers =
          List.filter_map (fun l -> layer_of_line (String.trim l)) rest
        in
        let m = { Fmodel.f_input_shape = input_shape; f_layers = layers } in
        match Fmodel.validate m with
        | Ok () -> Ok m
        | Error e -> Error ("invalid model: " ^ e)
      with Parse msg -> Error msg)
  | _ -> Error (Printf.sprintf "missing %S header" header)

let save path m =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string m))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> of_string contents
