(** Post-training quantization to HTVM's quantized graph IR.

    Power-of-two scales throughout, so every rescaling is an exact
    arithmetic right shift — precisely the
    [right_shift -> clip -> cast] requantization idiom the paper's
    pattern matcher (Listing 1) expects to find. Calibration runs the
    float model over sample inputs and sizes each activation's scale from
    its observed absolute maximum.

    Ternary mode sign-quantizes convolution weights with the
    0.7-mean-magnitude threshold (TWN-style) and folds the magnitude into
    the layer's shift, producing analog-dispatchable layers. *)

type meta = {
  input_scale : float;   (** int8 input = round(float * input_scale) *)
  output_scale : float;  (** float output ~= int8 output / output_scale *)
}

val quantize :
  ?ternary:bool ->
  calibration:Ftensor.t list ->
  Fmodel.t ->
  (Ir.Graph.t * meta, string) result
(** Quantize a float model. The graph's single input is named ["input"].
    [Error] on empty calibration sets or models that collapse to constant
    zero (no usable signal to calibrate on). *)

val quantize_input : meta -> Ftensor.t -> Tensor.t
(** Quantize a float input for the compiled graph. *)

val dequantize_output : meta -> Tensor.t -> Ftensor.t
(** Map the graph's int8 output back to float. *)
