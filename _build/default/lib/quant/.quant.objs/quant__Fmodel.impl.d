lib/quant/fmodel.ml: Array Float Ftensor List Option Util
