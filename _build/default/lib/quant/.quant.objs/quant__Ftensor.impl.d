lib/quant/ftensor.ml: Array Float Util
