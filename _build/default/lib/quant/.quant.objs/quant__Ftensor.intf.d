lib/quant/ftensor.mli: Util
