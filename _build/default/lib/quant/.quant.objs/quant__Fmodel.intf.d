lib/quant/fmodel.mli: Ftensor
