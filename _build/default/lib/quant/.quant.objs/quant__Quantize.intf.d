lib/quant/quantize.mli: Fmodel Ftensor Ir Tensor
