lib/quant/ftext.ml: Array Buffer Fmodel Ftensor Fun In_channel Int64 List Printf String
