lib/quant/ftext.mli: Fmodel
