lib/quant/quantize.ml: Array Float Fmodel Ftensor Ir List Tensor Util
