(** Textual float-model format (.fhtvm).

    The front half of the pipeline's interchange story: float models are
    saved/loaded in a line-oriented format (weights as IEEE-754 hex), so
    [htvmc quantize] can take a float model file to a quantized [.htvm]
    graph. Round-trips are bit-exact. *)

val to_string : Fmodel.t -> string
val of_string : string -> (Fmodel.t, string) result
val save : string -> Fmodel.t -> unit
val load : string -> (Fmodel.t, string) result
