(** Quantized layer-block builders shared by the model zoo.

    Every block emits the Listing-1 operator sequence (anchor op, bias
    add, right-shift requantization, optional ReLU clip) with seeded
    synthetic weights, so the pattern matcher sees exactly the graphs the
    paper's front end produces. Requantization shifts are sized from the
    receptive field so activations stay well-distributed. *)

type ctx

val create : ?seed:int -> Policy.t -> ctx
val builder : ctx -> Ir.Graph.Builder.t
val policy : ctx -> Policy.t

val input : ctx -> name:string -> int array -> Ir.Graph.id
(** int8 network input. *)

val conv :
  ctx ->
  role:Policy.role ->
  ?relu:bool ->
  ?stride:int * int ->
  ?padding:int * int ->
  in_channels:int ->
  out_channels:int ->
  kernel:int * int ->
  Ir.Graph.id ->
  Ir.Graph.id
(** conv + bias + requant(+relu) with policy-selected weight dtype. *)

val depthwise :
  ctx ->
  ?relu:bool ->
  ?stride:int * int ->
  ?padding:int * int ->
  channels:int ->
  kernel:int * int ->
  Ir.Graph.id ->
  Ir.Graph.id

val dense :
  ctx ->
  role:Policy.role ->
  ?relu:bool ->
  in_features:int ->
  out_features:int ->
  Ir.Graph.id ->
  Ir.Graph.id
(** Fully-connected block over a rank-1 input. When the policy demands
    FC-as-conv (ternary FCs for the analog core), the input is reshaped
    to [|c;1;1|], convolved 1x1 and reshaped back to rank 1. *)

val residual_add : ctx -> ?relu:bool -> Ir.Graph.id -> Ir.Graph.id -> Ir.Graph.id
(** add + requant (shift 1). *)

val finish : ctx -> output:Ir.Graph.id -> Ir.Graph.t
