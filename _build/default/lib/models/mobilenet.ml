module B = Ir.Graph.Builder

let name = "mobilenet_v1_025"

(* (depthwise stride, pointwise output channels) for the 13 blocks at
   width multiplier 0.25. *)
let block_plan =
  [ (1, 16); (2, 32); (1, 32); (2, 64); (1, 64); (2, 128); (1, 128); (1, 128);
    (1, 128); (1, 128); (1, 128); (2, 256); (1, 256) ]

let build ?seed policy =
  let ctx = Blocks.create ?seed policy in
  let x = Blocks.input ctx ~name:"image" [| 3; 96; 96 |] in
  let y =
    Blocks.conv ctx ~role:Policy.First ~stride:(2, 2) ~padding:(1, 1) ~in_channels:3
      ~out_channels:8 ~kernel:(3, 3) x
  in
  let _, y =
    List.fold_left
      (fun (cin, y) (stride, cout) ->
        let y =
          Blocks.depthwise ctx ~stride:(stride, stride) ~padding:(1, 1) ~channels:cin
            ~kernel:(3, 3) y
        in
        let y =
          Blocks.conv ctx ~role:Policy.Inner ~in_channels:cin ~out_channels:cout
            ~kernel:(1, 1) y
        in
        (cout, y))
      (8, y) block_plan
  in
  let b = Blocks.builder ctx in
  let pooled = B.global_avg_pool b y in
  let flat = B.reshape b [| 256 |] pooled in
  let logits = Blocks.dense ctx ~role:Policy.Last ~in_features:256 ~out_features:2 flat in
  let out = B.softmax b logits in
  Blocks.finish ctx ~output:out
