(** MLPerf Tiny anomaly detection: the ToyADMOS deep autoencoder.

    A 640-dimensional spectrogram window through a
    128-128-128-128-8-128-128-128-128 bottleneck back to 640 outputs, all
    fully connected. Under the ternary policy every FC layer is emitted
    as a 1x1 convolution so the analog array can run it (paper
    Sec. IV-C). *)

val build : ?seed:int -> Policy.t -> Ir.Graph.t
val name : string
