type t = All_int8 | All_ternary | Mixed

type role = First | Last | Inner | Dw | Fc

let weight_dtype policy role =
  match (policy, role) with
  | All_int8, _ -> Tensor.Dtype.I8
  | All_ternary, (First | Last | Inner) -> Tensor.Dtype.Ternary
  | All_ternary, Fc -> Tensor.Dtype.Ternary
  | All_ternary, Dw -> Tensor.Dtype.I8 (* unsupported on analog: CPU in 8-bit *)
  | Mixed, (First | Last | Dw | Fc) -> Tensor.Dtype.I8
  | Mixed, Inner -> Tensor.Dtype.Ternary

let fc_as_conv policy role =
  match (policy, role) with
  | All_ternary, (Fc | First | Last) -> true
  | All_ternary, (Inner | Dw) | (All_int8 | Mixed), _ -> false

let to_string = function
  | All_int8 -> "int8"
  | All_ternary -> "ternary"
  | Mixed -> "mixed"
