lib/models/toyadmos.mli: Ir Policy
