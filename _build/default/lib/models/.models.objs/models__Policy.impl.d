lib/models/policy.ml: Tensor
