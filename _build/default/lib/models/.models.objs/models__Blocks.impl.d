lib/models/blocks.ml: Ir Policy Tensor Util
