lib/models/toyadmos.ml: Blocks List Policy
