lib/models/policy.mli: Tensor
