lib/models/mobilenet.ml: Blocks Ir List Policy
