lib/models/zoo.mli: Ir Policy Tensor
