lib/models/ds_cnn.ml: Blocks Ir Policy
