lib/models/resnet8.mli: Ir Policy
