lib/models/ds_cnn.mli: Ir Policy
