lib/models/resnet8.ml: Blocks Ir Policy
