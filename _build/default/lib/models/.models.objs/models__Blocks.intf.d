lib/models/blocks.mli: Ir Policy
