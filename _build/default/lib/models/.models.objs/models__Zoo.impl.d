lib/models/zoo.ml: Array Ds_cnn Ir List Mobilenet Nn Policy Resnet8 Tensor Toyadmos Util
