lib/models/mobilenet.mli: Ir Policy
