(** MLPerf Tiny image classification: CIFAR-10 ResNet-8.

    Input [|3;32;32|]; a 16-channel 3x3 stem; three residual stacks at 16,
    32 and 64 channels (the latter two stride-2 with 1x1 downsample
    shortcuts); global average pooling; a 10-way classifier; softmax.
    About 12.5 M MACs per inference. *)

val build : ?seed:int -> Policy.t -> Ir.Graph.t
val name : string
