module B = Ir.Graph.Builder

let name = "resnet8"

(* One residual stack: conv-conv plus (optionally downsampled) shortcut. *)
let stack ctx ~in_channels ~out_channels ~stride x =
  let conv = Blocks.conv ctx ~role:Policy.Inner ~kernel:(3, 3) ~padding:(1, 1) in
  let y =
    conv ~stride:(stride, stride) ~in_channels ~out_channels ~relu:true x
  in
  let y = conv ~in_channels:out_channels ~out_channels ~relu:false y in
  let shortcut =
    if stride = 1 && in_channels = out_channels then x
    else
      Blocks.conv ctx ~role:Policy.Inner ~relu:false ~stride:(stride, stride)
        ~padding:(0, 0) ~in_channels ~out_channels ~kernel:(1, 1) x
  in
  Blocks.residual_add ctx ~relu:true y shortcut

let build ?seed policy =
  let ctx = Blocks.create ?seed policy in
  let x = Blocks.input ctx ~name:"image" [| 3; 32; 32 |] in
  let stem =
    Blocks.conv ctx ~role:Policy.First ~padding:(1, 1) ~in_channels:3 ~out_channels:16
      ~kernel:(3, 3) x
  in
  let s1 = stack ctx ~in_channels:16 ~out_channels:16 ~stride:1 stem in
  let s2 = stack ctx ~in_channels:16 ~out_channels:32 ~stride:2 s1 in
  let s3 = stack ctx ~in_channels:32 ~out_channels:64 ~stride:2 s2 in
  let b = Blocks.builder ctx in
  let pooled = B.global_avg_pool b s3 in
  let flat = B.reshape b [| 64 |] pooled in
  let logits = Blocks.dense ctx ~role:Policy.Last ~in_features:64 ~out_features:10 flat in
  let out = B.softmax b logits in
  Blocks.finish ctx ~output:out
