let name = "toyadmos_dae"

let widths = [ 128; 128; 128; 128; 8; 128; 128; 128; 128; 640 ]

let build ?seed policy =
  let ctx = Blocks.create ?seed policy in
  let x = Blocks.input ctx ~name:"spectrogram" [| 640 |] in
  let n = List.length widths in
  let _, _, out =
    List.fold_left
      (fun (i, cin, y) cout ->
        let role =
          if i = 0 then Policy.First else if i = n - 1 then Policy.Last else Policy.Fc
        in
        let y =
          Blocks.dense ctx ~role ~relu:(i < n - 1) ~in_features:cin ~out_features:cout y
        in
        (i + 1, cout, y))
      (0, 640, x) widths
  in
  Blocks.finish ctx ~output:out
