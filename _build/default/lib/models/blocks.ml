module B = Ir.Graph.Builder
module Dtype = Tensor.Dtype

type ctx = { b : B.t; rng : Util.Rng.t; pol : Policy.t }

let create ?(seed = 0xD1A) pol = { b = B.create (); rng = Util.Rng.create seed; pol }
let builder ctx = ctx.b
let policy ctx = ctx.pol

let input ctx ~name shape = B.input ctx.b ~name Dtype.I8 shape

(* i32 bias constants with i16-sized values, so accumulators stay sane. *)
let bias_const ctx n =
  let t = Tensor.create Dtype.I32 [| n |] in
  for i = 0 to n - 1 do
    Tensor.set_flat t i (Util.Rng.int_in ctx.rng (-16384) 16383)
  done;
  B.const ctx.b t

(* Requantization shift sized from the dot-product length so outputs use
   the int8 range without saturating everywhere. *)
let shift_for ~dtype ~taps =
  match (dtype : Dtype.t) with
  | Dtype.Ternary -> Util.Ints.log2_ceil (max taps 2) + 2
  | _ -> Util.Ints.log2_ceil (max taps 2) + 6

let conv ctx ~role ?(relu = true) ?(stride = (1, 1)) ?(padding = (0, 0)) ~in_channels
    ~out_channels ~kernel:(fy, fx) x =
  let dtype = Policy.weight_dtype ctx.pol role in
  let w =
    B.const ctx.b (Tensor.random ctx.rng dtype [| out_channels; in_channels; fy; fx |])
  in
  let bias = bias_const ctx out_channels in
  let y = B.conv2d ctx.b ~stride ~padding x ~weights:w in
  let y = B.bias_add ctx.b y ~bias in
  B.requantize ctx.b ~relu
    ~shift:(shift_for ~dtype ~taps:(in_channels * fy * fx))
    ~out_dtype:Dtype.I8 y

let depthwise ctx ?(relu = true) ?(stride = (1, 1)) ?(padding = (1, 1)) ~channels
    ~kernel:(fy, fx) x =
  let dtype = Policy.weight_dtype ctx.pol Policy.Dw in
  let w = B.const ctx.b (Tensor.random ctx.rng dtype [| channels; 1; fy; fx |]) in
  let bias = bias_const ctx channels in
  let y = B.app ctx.b (Ir.Op.Conv2d { stride; padding; groups = channels }) [ x; w ] in
  let y = B.bias_add ctx.b y ~bias in
  B.requantize ctx.b ~relu ~shift:(shift_for ~dtype ~taps:(fy * fx)) ~out_dtype:Dtype.I8 y

let dense ctx ~role ?(relu = false) ~in_features ~out_features x =
  let dtype = Policy.weight_dtype ctx.pol role in
  if Policy.fc_as_conv ctx.pol role then begin
    let as_chw = B.reshape ctx.b [| in_features; 1; 1 |] x in
    let y =
      conv ctx ~role:Policy.Inner ~relu ~in_channels:in_features
        ~out_channels:out_features ~kernel:(1, 1) as_chw
    in
    B.reshape ctx.b [| out_features |] y
  end
  else begin
    let w = B.const ctx.b (Tensor.random ctx.rng dtype [| out_features; in_features |]) in
    let bias = bias_const ctx out_features in
    let y = B.dense ctx.b x ~weights:w in
    let y = B.bias_add ctx.b y ~bias in
    B.requantize ctx.b ~relu ~shift:(shift_for ~dtype ~taps:in_features)
      ~out_dtype:Dtype.I8 y
  end

let residual_add ctx ?(relu = false) a b =
  let y = B.add ctx.b a b in
  B.requantize ctx.b ~relu ~shift:1 ~out_dtype:Dtype.I8 y

let finish ctx ~output = B.finish ctx.b ~output
