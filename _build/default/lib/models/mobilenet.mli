(** MLPerf Tiny visual wake words: MobileNetV1, width 0.25, 96x96 input.

    A 3x3 stride-2 stem to 8 channels followed by 13 depthwise-separable
    blocks climbing to 256 channels, global average pooling and a 2-way
    person / no-person classifier. About 7.5 M MACs per inference. *)

val build : ?seed:int -> Policy.t -> Ir.Graph.t
val name : string
