module B = Ir.Graph.Builder

let name = "ds_cnn"

let build ?seed policy =
  let ctx = Blocks.create ?seed policy in
  let x = Blocks.input ctx ~name:"mfcc" [| 1; 49; 10 |] in
  (* Stem: [7,5] kernel (DIANA-adapted), stride 2, "same"-ish padding:
     49 -> 25, 10 -> 5. *)
  let y =
    Blocks.conv ctx ~role:Policy.First ~stride:(2, 2) ~padding:(3, 2) ~in_channels:1
      ~out_channels:64 ~kernel:(7, 5) x
  in
  let rec blocks n y =
    if n = 0 then y
    else
      let y = Blocks.depthwise ctx ~channels:64 ~kernel:(3, 3) ~padding:(1, 1) y in
      let y =
        Blocks.conv ctx ~role:Policy.Inner ~in_channels:64 ~out_channels:64
          ~kernel:(1, 1) y
      in
      blocks (n - 1) y
  in
  let y = blocks 4 y in
  let b = Blocks.builder ctx in
  let pooled = B.global_avg_pool b y in
  let flat = B.reshape b [| 64 |] pooled in
  let logits = Blocks.dense ctx ~role:Policy.Last ~in_features:64 ~out_features:12 flat in
  let out = B.softmax b logits in
  Blocks.finish ctx ~output:out
