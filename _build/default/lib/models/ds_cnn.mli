(** MLPerf Tiny keyword spotting: DS-CNN.

    Input [|1;49;10|] MFCC features; a 64-channel stem convolution with
    the paper's DIANA-adapted [7,5] input filter (Table I footnote),
    stride 2; four depthwise-separable blocks at 64 channels; global
    average pooling; a 12-way classifier; softmax. *)

val build : ?seed:int -> Policy.t -> Ir.Graph.t
val name : string
