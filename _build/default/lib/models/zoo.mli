(** The MLPerf Tiny v1.0 benchmark suite (paper Sec. IV-C), with
    policy-selected per-layer weight precisions. *)

type entry = {
  model_name : string;
  display_name : string;  (** as printed in the paper's tables *)
  build : ?seed:int -> Policy.t -> Ir.Graph.t;
}

val all : entry list
(** DS-CNN, MobileNet, ResNet, ToyAdmos — Table I's row order. *)

val find : string -> entry
(** Look up by [model_name].
    @raise Not_found for unknown names. *)

val random_input : ?seed:int -> Ir.Graph.t -> (string * Tensor.t) list
(** A seeded random int8 binding for every graph input — the standard way
    benches and examples feed the networks. *)

val macs : Ir.Graph.t -> int
(** Total multiply-accumulates of one inference (convolutions and dense
    layers). *)
