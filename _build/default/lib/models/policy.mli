(** Per-layer weight-precision policies (paper Table I's configurations).

    DIANA dispatches on weight bit-width: 8-bit weights go to the digital
    accelerator, ternary weights to the analog one (Sec. III-C). The
    deployment configuration is therefore expressed by choosing each
    layer's weight dtype when the quantized graph is built. *)

type t =
  | All_int8
      (** every layer in int8 — the CPU-only and CPU+Digital configs *)
  | All_ternary
      (** convolutions in ternary for the analog array; depthwise stays
          int8 on the CPU (the analog core cannot run it) and
          fully-connected layers are emitted as ternary 1x1 convolutions
          (paper Sec. IV-C) *)
  | Mixed
      (** the paper's combined configuration: first and last
          accelerator-eligible layers and all depthwise layers digital
          (int8), remaining convolutions analog (ternary) *)

type role =
  | First  (** first accelerator-eligible layer of the network *)
  | Last   (** last accelerator-eligible layer *)
  | Inner  (** any other standard convolution *)
  | Dw     (** depthwise convolution *)
  | Fc     (** fully-connected layer *)

val weight_dtype : t -> role -> Tensor.Dtype.t
(** Weight dtype the policy assigns to a layer with the given role. *)

val fc_as_conv : t -> role -> bool
(** Whether a fully-connected layer must be emitted as a 1x1 convolution
    (ternary FCs, which only the analog core can run). *)

val to_string : t -> string
