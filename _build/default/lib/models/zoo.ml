type entry = {
  model_name : string;
  display_name : string;
  build : ?seed:int -> Policy.t -> Ir.Graph.t;
}

let all =
  [
    { model_name = Ds_cnn.name; display_name = "DSCNN"; build = Ds_cnn.build };
    { model_name = Mobilenet.name; display_name = "MobileNet"; build = Mobilenet.build };
    { model_name = Resnet8.name; display_name = "ResNet"; build = Resnet8.build };
    { model_name = Toyadmos.name; display_name = "ToyAdmos"; build = Toyadmos.build };
  ]

let find name = List.find (fun e -> e.model_name = name) all

let random_input ?(seed = 7) g =
  let rng = Util.Rng.create seed in
  List.map
    (fun (_, name, dtype, shape) -> (name, Tensor.random rng dtype shape))
    (Ir.Graph.inputs g)

let macs g =
  let tys = Ir.Infer.infer g in
  List.fold_left
    (fun acc id ->
      match Ir.Graph.node g id with
      | Ir.Graph.App { op = Ir.Op.Conv2d p; args } ->
          let data = tys.(List.nth args 0) and w = tys.(List.nth args 1) in
          let out = tys.(id) in
          acc
          + Array.fold_left ( * ) 1 out.Ir.Infer.shape
            * (data.Ir.Infer.shape.(0) / p.Nn.Kernels.groups)
            * w.Ir.Infer.shape.(2) * w.Ir.Infer.shape.(3)
      | Ir.Graph.App { op = Ir.Op.Dense; args } ->
          let w = tys.(List.nth args 1) in
          acc + (w.Ir.Infer.shape.(0) * w.Ir.Infer.shape.(1))
      | _ -> acc)
    0 (Ir.Graph.node_ids g)
