(** Deployable programs — the simulator-executable artifact HTVM emits.

    A program is the analogue of the single C function TVM generates in
    the HTVM flow (paper Fig. 1/2): a linear sequence of kernel calls over
    planned L2 buffers, where each call is either a DORY schedule driving
    an accelerator or a fused CPU kernel, plus the weight images to
    preload into L2. *)

type buffer = {
  buf_id : int;
  b_dtype : Tensor.Dtype.t;
  b_shape : int array;
  l2_offset : int;
}

val buffer_bytes : buffer -> int

type step =
  | Accel of {
      accel_name : string;
      schedule : Dory.Schedule.t;
      ins : int list;  (** input buffer ids (two for Add) *)
      out : int;
      weights_offset : int;  (** L2 offset of the preloaded weights; -1 if none *)
      bias_offset : int;
    }
  | Cpu of {
      kernel_name : string;
      nodes : Ir.Graph.id list;
          (** the fused operator applications, topologically ordered; the
              last one produces the kernel's result *)
      ins : (Ir.Graph.id * int) list;  (** external data node -> buffer id *)
      out : int;
      cycles : int;  (** host cycles charged for the kernel call *)
    }

val step_name : step -> string

type t = {
  graph : Ir.Graph.t;  (** source graph (consts for CPU kernels live here) *)
  buffers : buffer list;
  steps : step list;
  input_buffers : (string * int) list;  (** graph input name -> buffer id *)
  output_buffer : int;
  weight_images : (int * Tensor.t) list;
      (** (L2 offset, tensor) pairs preloaded before execution: accelerator
          weights and biases in their deployed layout *)
  l2_activation_peak : int;  (** planner high-water mark, for reports *)
}

val buffer : t -> int -> buffer
(** @raise Invalid_argument on an unknown buffer id. *)

val validate : t -> (unit, string) result
(** Structural checks: unique buffer ids, step references resolve, buffer
    extents and weight images inside a given L2 size are checked by the
    machine at run time. *)
