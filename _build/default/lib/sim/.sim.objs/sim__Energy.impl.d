lib/sim/energy.ml: Counters Float Format List Machine String
