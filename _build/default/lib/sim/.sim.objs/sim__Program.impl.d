lib/sim/program.ml: Array Dory Format Ir List Printf Tensor
