lib/sim/energy.mli: Format Machine
