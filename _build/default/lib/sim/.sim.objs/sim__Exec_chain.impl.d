lib/sim/exec_chain.ml: Arch Array Counters Dory Ir Mem Nn Option Tensor
