lib/sim/machine.ml: Arch Counters Exec_accel Hashtbl Ir List Mem Printf Program String Tensor
