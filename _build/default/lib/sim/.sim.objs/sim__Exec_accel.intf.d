lib/sim/exec_accel.mli: Arch Counters Dory Mem
