lib/sim/mem.mli: Tensor
