lib/sim/exec_chain.mli: Arch Counters Dory Mem
