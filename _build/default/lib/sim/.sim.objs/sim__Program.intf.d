lib/sim/program.mli: Dory Ir Tensor
