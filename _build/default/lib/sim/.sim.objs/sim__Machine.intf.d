lib/sim/machine.mli: Arch Counters Program Tensor
