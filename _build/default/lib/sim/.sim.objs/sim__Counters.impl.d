lib/sim/counters.ml: Format
