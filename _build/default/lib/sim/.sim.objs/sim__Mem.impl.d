lib/sim/mem.ml: Array Bytes Char Printf Sys Tensor
