lib/sim/exec_accel.ml: Arch Array Counters Dory Ir List Mem Nn Tensor
