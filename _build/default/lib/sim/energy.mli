(** Per-inference energy accounting.

    Energy efficiency is the paper's core motivation (Sec. I: accelerators
    cut inference energy by an order of magnitude vs general-purpose
    cores). The simulator's counters decompose cycles by component; this
    module folds them with per-component power parameters into an energy
    estimate and breakdown. Default parameters are set from DIANA's
    published efficiency class (ISSCC 2022): the digital array around a
    few TOPS/W, the analog array an order of magnitude better, a
    microwatt-class RISC-V host. *)

type params = {
  cpu_pj_per_cycle : float;
  accel_pj_per_cycle : (string * float) list;  (** by accelerator name *)
  weight_load_pj_per_cycle : float;
  dma_pj_per_cycle : float;
  idle_pj_per_cycle : float;  (** leakage etc. over the whole wall time *)
}

val diana_defaults : params

type breakdown = {
  cpu_uj : float;
  accel_uj : float;
  weight_load_uj : float;
  dma_uj : float;
  idle_uj : float;
  total_uj : float;
}

val of_report : params -> Machine.report -> breakdown
(** Fold a run's per-step counters into microjoules. Steps on unknown
    accelerators fall back to the highest registered accelerator power. *)

val pp : Format.formatter -> breakdown -> unit
