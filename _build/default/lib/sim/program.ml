type buffer = {
  buf_id : int;
  b_dtype : Tensor.Dtype.t;
  b_shape : int array;
  l2_offset : int;
}

let buffer_bytes b =
  Array.fold_left ( * ) 1 b.b_shape * Tensor.Dtype.sim_bytes b.b_dtype

type step =
  | Accel of {
      accel_name : string;
      schedule : Dory.Schedule.t;
      ins : int list;
      out : int;
      weights_offset : int;
      bias_offset : int;
    }
  | Cpu of {
      kernel_name : string;
      nodes : Ir.Graph.id list;
      ins : (Ir.Graph.id * int) list;
      out : int;
      cycles : int;
    }

let step_name = function
  | Accel { accel_name; schedule; _ } ->
      Printf.sprintf "%s:%s" accel_name (Ir.Layer.describe schedule.Dory.Schedule.layer)
  | Cpu { kernel_name; _ } -> kernel_name

type t = {
  graph : Ir.Graph.t;
  buffers : buffer list;
  steps : step list;
  input_buffers : (string * int) list;
  output_buffer : int;
  weight_images : (int * Tensor.t) list;
  l2_activation_peak : int;
}

let buffer t id =
  match List.find_opt (fun b -> b.buf_id = id) t.buffers with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Program.buffer: unknown buffer %d" id)

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let ids = List.map (fun b -> b.buf_id) t.buffers in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    err "duplicate buffer ids"
  else if List.exists (fun b -> b.l2_offset < 0) t.buffers then
    err "negative buffer offset"
  else
    let known id = List.mem id ids in
    let step_ok = function
      | Accel { ins; out; _ } -> List.for_all known ins && known out
      | Cpu { ins; out; _ } -> List.for_all (fun (_, b) -> known b) ins && known out
    in
    if not (List.for_all step_ok t.steps) then err "step references unknown buffer"
    else if not (known t.output_buffer) then err "unknown output buffer"
    else if not (List.for_all (fun (_, b) -> known b) t.input_buffers) then
      err "unknown input buffer"
    else Ok ()
