type params = {
  cpu_pj_per_cycle : float;
  accel_pj_per_cycle : (string * float) list;
  weight_load_pj_per_cycle : float;
  dma_pj_per_cycle : float;
  idle_pj_per_cycle : float;
}

(* Set from DIANA's published efficiency class: digital array ~4 TOPS/W at
   260 MHz (~130 pJ/cycle busy), analog array an order of magnitude
   better per operation but with comparable converter power per
   activation cycle, a small in-order RISC-V host (~15 pJ/cycle). *)
let diana_defaults =
  {
    cpu_pj_per_cycle = 15.0;
    accel_pj_per_cycle = [ ("diana_digital", 130.0); ("diana_analog", 60.0) ];
    weight_load_pj_per_cycle = 25.0;
    dma_pj_per_cycle = 20.0;
    idle_pj_per_cycle = 3.0;
  }

type breakdown = {
  cpu_uj : float;
  accel_uj : float;
  weight_load_uj : float;
  dma_uj : float;
  idle_uj : float;
  total_uj : float;
}

let accel_power params name =
  let registered = params.accel_pj_per_cycle in
  match List.find_opt (fun (n, _) -> n = name) registered with
  | Some (_, p) -> p
  | None ->
      List.fold_left (fun acc (_, p) -> Float.max acc p) params.cpu_pj_per_cycle
        registered

let of_report params (r : Machine.report) =
  let cpu = ref 0.0 and accel = ref 0.0 and wl = ref 0.0 and dma = ref 0.0 in
  List.iter
    (fun (name, (c : Counters.t)) ->
      let accel_name =
        match String.index_opt name ':' with
        | Some i -> Some (String.sub name 0 i)
        | None -> None
      in
      cpu := !cpu +. (float_of_int c.Counters.cpu_compute *. params.cpu_pj_per_cycle);
      (match accel_name with
      | Some a ->
          accel :=
            !accel +. (float_of_int c.Counters.accel_compute *. accel_power params a)
      | None -> ());
      wl := !wl +. (float_of_int c.Counters.weight_load *. params.weight_load_pj_per_cycle);
      dma :=
        !dma
        +. float_of_int (c.Counters.dma_in + c.Counters.dma_out) *. params.dma_pj_per_cycle)
    r.Machine.per_step;
  let idle =
    float_of_int r.Machine.totals.Counters.wall *. params.idle_pj_per_cycle
  in
  let to_uj v = v /. 1.0e6 in
  let cpu_uj = to_uj !cpu
  and accel_uj = to_uj !accel
  and weight_load_uj = to_uj !wl
  and dma_uj = to_uj !dma
  and idle_uj = to_uj idle in
  {
    cpu_uj;
    accel_uj;
    weight_load_uj;
    dma_uj;
    idle_uj;
    total_uj = cpu_uj +. accel_uj +. weight_load_uj +. dma_uj +. idle_uj;
  }

let pp fmt b =
  Format.fprintf fmt
    "%.1f uJ (cpu %.1f, accel %.1f, weight load %.1f, dma %.1f, idle %.1f)" b.total_uj
    b.cpu_uj b.accel_uj b.weight_load_uj b.dma_uj b.idle_uj
