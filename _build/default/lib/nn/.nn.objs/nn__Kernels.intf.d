lib/nn/kernels.mli: Tensor
