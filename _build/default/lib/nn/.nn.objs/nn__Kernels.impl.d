lib/nn/kernels.ml: Array Float Tensor Util
