type conv_params = {
  stride : int * int;
  padding : int * int;
  groups : int;
}

let conv_default = { stride = (1, 1); padding = (0, 0); groups = 1 }

let conv_out_dims ~in_dims:(h, w) ~kernel:(fy, fx) p =
  let sy, sx = p.stride and py, px = p.padding in
  let oh = ((h + (2 * py) - fy) / sy) + 1 in
  let ow = ((w + (2 * px) - fx) / sx) + 1 in
  (oh, ow)

let conv2d ~input ~weights p =
  let c = Tensor.dim input 0 and h = Tensor.dim input 1 and w = Tensor.dim input 2 in
  let k = Tensor.dim weights 0
  and cg = Tensor.dim weights 1
  and fy = Tensor.dim weights 2
  and fx = Tensor.dim weights 3 in
  let g = p.groups in
  if g <= 0 || c mod g <> 0 || k mod g <> 0 then invalid_arg "conv2d: bad group count";
  if cg <> c / g then invalid_arg "conv2d: weight channel dim does not match input/groups";
  let sy, sx = p.stride and py, px = p.padding in
  if sy <= 0 || sx <= 0 || py < 0 || px < 0 then invalid_arg "conv2d: bad stride/padding";
  let oh, ow = conv_out_dims ~in_dims:(h, w) ~kernel:(fy, fx) p in
  if oh <= 0 || ow <= 0 then invalid_arg "conv2d: empty output";
  let out = Tensor.create Tensor.Dtype.I32 [| k; oh; ow |] in
  let kpg = k / g in
  (* Flat-index hot loop: per-element [Tensor.get] would allocate an index
     array per access, which dominates whole-network simulations. *)
  for ko = 0 to k - 1 do
    let grp = ko / kpg in
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref 0 in
        for ci = 0 to cg - 1 do
          let c_in = (grp * cg) + ci in
          let in_ch_base = c_in * h * w in
          let w_base = (((ko * cg) + ci) * fy) * fx in
          for ky = 0 to fy - 1 do
            let iy = (oy * sy) + ky - py in
            if iy >= 0 && iy < h then begin
              let in_row_base = in_ch_base + (iy * w) in
              let w_row_base = w_base + (ky * fx) in
              for kx = 0 to fx - 1 do
                let ix = (ox * sx) + kx - px in
                if ix >= 0 && ix < w then
                  acc :=
                    !acc
                    + Tensor.get_flat input (in_row_base + ix)
                      * Tensor.get_flat weights (w_row_base + kx)
              done
            end
          done
        done;
        Tensor.set_flat out (((ko * oh) + oy) * ow + ox) !acc
      done
    done
  done;
  out

let depthwise_conv2d ~input ~weights p =
  let c = Tensor.dim input 0 in
  if Tensor.dim weights 1 <> 1 then invalid_arg "depthwise_conv2d: expected [|c;1;fy;fx|] weights";
  conv2d ~input ~weights { p with groups = c }

let dense ~input ~weights =
  let c = Tensor.dim input 0 and k = Tensor.dim weights 0 in
  if Tensor.dim weights 1 <> c then invalid_arg "dense: weight/input dim mismatch";
  let out = Tensor.create Tensor.Dtype.I32 [| k |] in
  for ko = 0 to k - 1 do
    let acc = ref 0 in
    for ci = 0 to c - 1 do
      acc := !acc + (Tensor.get input [| ci |] * Tensor.get weights [| ko; ci |])
    done;
    Tensor.set out [| ko |] !acc
  done;
  out

let bias_add acc bias =
  let k = Tensor.dim acc 0 in
  if Tensor.rank bias <> 1 || Tensor.dim bias 0 <> k then
    invalid_arg "bias_add: bias must be [|k|]";
  let spatial = Tensor.numel acc / k in
  let out = Tensor.create (Tensor.dtype acc) (Tensor.shape acc) in
  for ko = 0 to k - 1 do
    let b = Tensor.get bias [| ko |] in
    for s = 0 to spatial - 1 do
      let i = (ko * spatial) + s in
      Tensor.set_flat out i (Tensor.get_flat acc i + b)
    done
  done;
  out

let requantize ?(relu = false) ~shift ~out_dtype t =
  if shift < 0 then invalid_arg "requantize: negative shift";
  let lo = if relu then 0 else Tensor.Dtype.min_value out_dtype in
  let hi = Tensor.Dtype.max_value out_dtype in
  let out = Tensor.create out_dtype (Tensor.shape t) in
  Tensor.iteri_flat
    (fun i v -> Tensor.set_flat out i (Util.Ints.clamp ~lo ~hi (v asr shift)))
    t;
  out

let relu t = Tensor.map (fun v -> max 0 v) t

let add a b = Tensor.map2 Tensor.Dtype.I32 ( + ) a b

let pool_out ~pool:(py, px) ~stride:(sy, sx) h w =
  let oh = ((h - py) / sy) + 1 and ow = ((w - px) / sx) + 1 in
  if oh <= 0 || ow <= 0 then invalid_arg "pool: empty output";
  (oh, ow)

let pool_generic ~pool:(py, px) ~stride:(sy, sx) ~init ~step ~finish t =
  let c = Tensor.dim t 0 and h = Tensor.dim t 1 and w = Tensor.dim t 2 in
  let oh, ow = pool_out ~pool:(py, px) ~stride:(sy, sx) h w in
  let out = Tensor.create (Tensor.dtype t) [| c; oh; ow |] in
  for ci = 0 to c - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let acc = ref init in
        for ky = 0 to py - 1 do
          for kx = 0 to px - 1 do
            acc := step !acc (Tensor.get t [| ci; (oy * sy) + ky; (ox * sx) + kx |])
          done
        done;
        Tensor.set out [| ci; oy; ox |] (finish !acc)
      done
    done
  done;
  out

let max_pool ~pool ~stride t =
  pool_generic ~pool ~stride ~init:min_int ~step:max ~finish:(fun v -> v) t

let avg_pool ~pool ~stride t =
  let py, px = pool in
  let n = py * px in
  (* Truncating division towards minus infinity keeps the result in the
     input dtype's range for any window contents. *)
  let fdiv v = if v >= 0 then v / n else -(((-v) + n - 1) / n) in
  pool_generic ~pool ~stride ~init:0 ~step:( + ) ~finish:fdiv t

let global_avg_pool t =
  let h = Tensor.dim t 1 and w = Tensor.dim t 2 in
  avg_pool ~pool:(h, w) ~stride:(1, 1) t

(* Fixed-point exp table: exp(x/16) in Q8 for x in [-128, 0]. Generated once
   from floats; deterministic across runs and platforms for this range. *)
let exp_q8 =
  Array.init 129 (fun i ->
      let x = float_of_int (-i) /. 16.0 in
      int_of_float (Float.round (exp x *. 256.0)))

let softmax t =
  if Tensor.rank t <> 1 then invalid_arg "softmax: expected rank-1 input";
  let k = Tensor.dim t 0 in
  let m = Tensor.fold max min_int t in
  let weights =
    Array.init k (fun i ->
        let d = m - Tensor.get t [| i |] in
        (* Values are int8 so d <= 255; saturate the table index. *)
        exp_q8.(min d 128))
  in
  let total = Array.fold_left ( + ) 0 weights in
  let out = Tensor.create Tensor.Dtype.I8 [| k |] in
  Array.iteri (fun i wgt -> Tensor.set out [| i |] (wgt * 127 / total)) weights;
  out

let concat_channels a b =
  let da = Tensor.shape a and db = Tensor.shape b in
  if Array.length da <> 3 || Array.length db <> 3 || da.(1) <> db.(1) || da.(2) <> db.(2)
  then invalid_arg "concat_channels: CHW spatial dims must match";
  if not (Tensor.Dtype.equal (Tensor.dtype a) (Tensor.dtype b)) then
    invalid_arg "concat_channels: dtype mismatch";
  let out = Tensor.create (Tensor.dtype a) [| da.(0) + db.(0); da.(1); da.(2) |] in
  Tensor.iteri_flat (fun i v -> Tensor.set_flat out i v) a;
  let off = Tensor.numel a in
  Tensor.iteri_flat (fun i v -> Tensor.set_flat out (off + i) v) b;
  out

let flatten t = Tensor.reshape t [| Tensor.numel t |]
