(** Reference integer kernels.

    These are the ground truth of the whole reproduction: every lowering
    path — TVM-style fused CPU kernels and DORY-tiled accelerator schedules
    alike — must produce bit-identical results to these functions. They are
    written for clarity, not speed.

    Layout conventions (batch size is always 1):
    - activations: [|c; h; w|]
    - convolution weights: [|k; c_per_group; fy; fx|]
    - fully-connected weights: [|k; c|]
    - biases: [|k|] as I32. *)

type conv_params = {
  stride : int * int;      (** (stride_y, stride_x) *)
  padding : int * int;     (** symmetric (pad_y, pad_x), zero-padded *)
  groups : int;            (** 1 = dense conv, = channels for depthwise *)
}

val conv_default : conv_params
(** stride (1,1), padding (0,0), groups 1. *)

val conv_out_dims : in_dims:int * int -> kernel:int * int -> conv_params -> int * int
(** Output (height, width) of a convolution over an input of the given
    spatial size. *)

val conv2d : input:Tensor.t -> weights:Tensor.t -> conv_params -> Tensor.t
(** Exact int32-accumulated 2D convolution. [input] channels must equal
    [groups * c_per_group]; [k] must be a multiple of [groups]. Any integer
    input/weight dtypes are accepted (I8, U7, Ternary, ...). *)

val depthwise_conv2d : input:Tensor.t -> weights:Tensor.t -> conv_params -> Tensor.t
(** Depthwise convolution: weights [|c; 1; fy; fx|]; convenience wrapper
    over {!conv2d} with [groups = c]. *)

val dense : input:Tensor.t -> weights:Tensor.t -> Tensor.t
(** Fully-connected layer: input [|c|], weights [|k; c|], output [|k|] I32. *)

val bias_add : Tensor.t -> Tensor.t -> Tensor.t
(** [bias_add acc bias] adds a per-channel I32 bias ([|k|]) to an I32
    accumulator of shape [|k; ...|] (broadcast over trailing axes). *)

val requantize : ?relu:bool -> shift:int -> out_dtype:Tensor.Dtype.t -> Tensor.t -> Tensor.t
(** The paper's ReQuant sequence (Listing 1): arithmetic right shift by
    [shift], clip to the output dtype's range (to [\[0, max\]] when [relu]),
    cast. Operates on I32/I16 accumulators. *)

val relu : Tensor.t -> Tensor.t
(** Elementwise [max 0]. *)

val add : Tensor.t -> Tensor.t -> Tensor.t
(** Elementwise residual addition of two same-shaped tensors into an I32
    tensor (callers requantize afterwards). *)

val max_pool : pool:int * int -> stride:int * int -> Tensor.t -> Tensor.t
(** Max pooling over non-padded windows; output dtype equals input dtype. *)

val avg_pool : pool:int * int -> stride:int * int -> Tensor.t -> Tensor.t
(** Average pooling (sum then truncating division by window size), output
    dtype equals input dtype. *)

val global_avg_pool : Tensor.t -> Tensor.t
(** Spatial mean per channel: [|c; h; w|] -> [|c; 1; 1|]. *)

val softmax : Tensor.t -> Tensor.t
(** Integer softmax over a [|k|] I8 tensor: returns I8 scores in [\[0,127\]]
    computed via a deterministic fixed-point exponential; preserves argmax. *)

val concat_channels : Tensor.t -> Tensor.t -> Tensor.t
(** Concatenate two CHW activations of identical dtype and spatial dims
    along the channel axis. *)

val flatten : Tensor.t -> Tensor.t
(** View the tensor as rank-1. *)
