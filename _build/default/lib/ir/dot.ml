let escape s =
  String.concat "" (List.map (function '"' -> "\\\"" | c -> String.make 1 c)
                      (List.init (String.length s) (String.get s)))

let to_dot ?(highlight = fun _ -> None) g =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph htvm {\n  rankdir=TB;\n  node [fontsize=10];\n";
  List.iter
    (fun i ->
      let shape, label =
        match Graph.node g i with
        | Graph.Input { name; dtype; shape } ->
            ( "ellipse",
              Printf.sprintf "%s : %s[%s]" name
                (Tensor.Dtype.to_string dtype)
                (Array.to_list shape |> List.map string_of_int |> String.concat "x") )
        | Graph.Const t -> ("note", Tensor.to_string t)
        | Graph.App { op; _ } -> ("box", Op.to_string op)
      in
      let fill =
        match highlight i with
        | Some color -> Printf.sprintf ", style=filled, fillcolor=\"%s\"" color
        | None -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=%s, label=\"%%%d %s\"%s];\n" i shape i
           (escape label) fill))
    (Graph.node_ids g);
  List.iter
    (fun i ->
      match Graph.node g i with
      | Graph.App { args; _ } ->
          List.iter (fun a -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" a i)) args
      | Graph.Input _ | Graph.Const _ -> ())
    (Graph.node_ids g);
  Buffer.add_string buf (Printf.sprintf "  out [shape=doublecircle, label=\"output\"];\n");
  Buffer.add_string buf (Printf.sprintf "  n%d -> out;\n}\n" (Graph.output g));
  Buffer.contents buf
