type pool_attrs = {
  pool : int * int;
  pool_stride : int * int;
}

type t =
  | Conv2d of Nn.Kernels.conv_params
  | Dense
  | Bias_add
  | Right_shift
  | Clip of { lo : int; hi : int }
  | Cast of Tensor.Dtype.t
  | Relu
  | Add
  | Max_pool of pool_attrs
  | Avg_pool of pool_attrs
  | Global_avg_pool
  | Softmax
  | Reshape of int array
  | Concat

let name = function
  | Conv2d _ -> "nn.conv2d"
  | Dense -> "nn.dense"
  | Bias_add -> "nn.bias_add"
  | Right_shift -> "right_shift"
  | Clip _ -> "clip"
  | Cast _ -> "cast"
  | Relu -> "nn.relu"
  | Add -> "add"
  | Max_pool _ -> "nn.max_pool2d"
  | Avg_pool _ -> "nn.avg_pool2d"
  | Global_avg_pool -> "nn.global_avg_pool2d"
  | Softmax -> "nn.softmax"
  | Reshape _ -> "reshape"
  | Concat -> "concatenate"

let arity = function
  | Conv2d _ | Dense | Bias_add | Right_shift | Add | Concat -> 2
  | Clip _ | Cast _ | Relu | Max_pool _ | Avg_pool _ | Global_avg_pool | Softmax | Reshape _ -> 1

let equal (a : t) (b : t) = a = b

let pp fmt op =
  match op with
  | Conv2d { stride = sy, sx; padding = py, px; groups } ->
      Format.fprintf fmt "nn.conv2d{stride=%dx%d pad=%dx%d groups=%d}" sy sx py px groups
  | Clip { lo; hi } -> Format.fprintf fmt "clip{%d,%d}" lo hi
  | Cast dt -> Format.fprintf fmt "cast{%s}" (Tensor.Dtype.to_string dt)
  | Max_pool { pool = ph, pw; pool_stride = sy, sx } ->
      Format.fprintf fmt "nn.max_pool2d{%dx%d stride=%dx%d}" ph pw sy sx
  | Avg_pool { pool = ph, pw; pool_stride = sy, sx } ->
      Format.fprintf fmt "nn.avg_pool2d{%dx%d stride=%dx%d}" ph pw sy sx
  | Reshape shape ->
      Format.fprintf fmt "reshape{%s}"
        (Array.to_list shape |> List.map string_of_int |> String.concat "x")
  | op -> Format.pp_print_string fmt (name op)

let to_string op = Format.asprintf "%a" pp op
