(** Normalized accelerator-offloadable layers.

    The partitioner collapses a matched operator pattern (e.g.
    Conv2D-BiasAdd-ReQuant-ReLU) into one [Layer.t]: the coarse-grained
    unit an accelerator executes with a single instruction stream and the
    unit DORY tiles. Accelerator capability rules (lib/arch) judge layers,
    not raw graph nodes. *)

type kind =
  | Conv of Nn.Kernels.conv_params  (** includes depthwise via [groups] *)
  | Dense
  | Add  (** residual addition of two activations *)
  | Pool of { max : bool; attrs : Op.pool_attrs }

type t = {
  kind : kind;
  fused_pool : Op.pool_attrs option;
      (** a max pooling fused into the accelerator's output stage (DIANA
          executes "some pooling operations at the output", Sec. III-C);
          only valid on [Conv], with non-overlapping windows. [out_shape]
          is the pooled shape. Exact because requantization is monotone,
          so pool-after-requant equals the matched requant-then-pool. *)
  weights : Tensor.t option;  (** conv/dense weights *)
  bias : Tensor.t option;     (** per-channel i32 bias *)
  shift : int option;         (** requantization right-shift; [None] = raw i32 out *)
  relu : bool;                (** clip to [\[0, max\]] during requantization *)
  in_shape : int array;       (** primary data input *)
  in2_shape : int array option;  (** second input ([Add] only) *)
  out_shape : int array;
  in_dtype : Tensor.Dtype.t;
  out_dtype : Tensor.Dtype.t;
}

val weight_dtype : t -> Tensor.Dtype.t option
(** Dtype of the weights, when the layer has any — the paper's dispatch
    criterion (8-bit -> digital, ternary -> analog). *)

val is_depthwise : t -> bool
val macs : t -> int
(** Multiply-accumulate count of one execution — for fused-pool layers the
    convolution work in pre-pool space. [Add]/[Pool] count one MAC per
    produced element. *)

val pre_pool_dims : t -> int * int
(** Spatial output extent the convolution computes before any fused pool
    ((oh, ow) of [out_shape] when no pool is fused). *)

val kernel_dims : t -> int * int
(** Filter (fy, fx); (1, 1) for non-convolutions. *)

val describe : t -> string
(** Short human-readable summary, e.g. [conv2d 16x32x32 -> 32x16x16 k3x3 s2]. *)

val execute : t -> ?second:Tensor.t -> Tensor.t -> Tensor.t
(** Reference semantics of the whole fused layer (conv/dense/add/pool,
    bias, requantize). Differential tests compare every tiled accelerator
    execution against this. *)

val validate : t -> (unit, string) result
(** Internal-consistency checks: shape arithmetic, weights presence,
    bias/shift applicability. *)
