module Dtype = Tensor.Dtype
module K = Nn.Kernels

let eval_op (op : Op.t) (args : Tensor.t list) =
  match (op, args) with
  | Op.Conv2d p, [ input; weights ] -> K.conv2d ~input ~weights p
  | Op.Dense, [ input; weights ] -> K.dense ~input ~weights
  | Op.Bias_add, [ acc; bias ] -> K.bias_add acc bias
  | Op.Right_shift, [ acc; amount ] ->
      let s = Tensor.get amount [||] in
      if s < 0 then invalid_arg "eval: negative right_shift";
      Tensor.map (fun v -> v asr s) acc
  | Op.Clip { lo; hi }, [ t ] -> Tensor.map (Util.Ints.clamp ~lo ~hi) t
  | Op.Cast dt, [ t ] -> Tensor.cast dt t
  | Op.Relu, [ t ] -> K.relu t
  | Op.Add, [ a; b ] -> K.add a b
  | Op.Max_pool { pool; pool_stride }, [ t ] -> K.max_pool ~pool ~stride:pool_stride t
  | Op.Avg_pool { pool; pool_stride }, [ t ] -> K.avg_pool ~pool ~stride:pool_stride t
  | Op.Global_avg_pool, [ t ] -> K.global_avg_pool t
  | Op.Softmax, [ t ] -> K.softmax t
  | Op.Reshape shape, [ t ] -> Tensor.reshape t shape
  | Op.Concat, [ a; b ] -> K.concat_channels a b
  | _ -> invalid_arg (Printf.sprintf "eval: arity mismatch for %s" (Op.name op))

let run_all g ~inputs =
  let bound = Hashtbl.create 8 in
  List.iter
    (fun (name, t) ->
      if Hashtbl.mem bound name then invalid_arg ("eval: duplicate input binding " ^ name);
      Hashtbl.add bound name t)
    inputs;
  let needed = List.map (fun (_, name, _, _) -> name) (Graph.inputs g) in
  List.iter
    (fun name ->
      if not (Hashtbl.mem bound name) then invalid_arg ("eval: missing input " ^ name))
    needed;
  Hashtbl.iter
    (fun name _ ->
      if not (List.mem name needed) then invalid_arg ("eval: unknown input " ^ name))
    bound;
  let values = Array.make (Graph.length g) (Tensor.scalar Dtype.I32 0) in
  List.iter
    (fun i ->
      values.(i) <-
        (match Graph.node g i with
        | Graph.Input { name; dtype; shape } ->
            let t = Hashtbl.find bound name in
            if not (Dtype.equal (Tensor.dtype t) dtype) || Tensor.shape t <> shape then
              invalid_arg ("eval: input " ^ name ^ " has wrong type");
            t
        | Graph.Const t -> t
        | Graph.App { op; args } -> eval_op op (List.map (fun a -> values.(a)) args)))
    (Graph.node_ids g);
  values

let run g ~inputs = (run_all g ~inputs).(Graph.output g)
