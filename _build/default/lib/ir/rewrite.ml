(* Rebuild helpers: transformations construct a fresh node list while
   remapping argument ids through [map]. *)

let constant_fold g =
  let n = Graph.length g in
  let builder = Graph.Builder.create () in
  let map = Array.make n (-1) in
  let const_value = Array.make n None in
  for i = 0 to n - 1 do
    match Graph.node g i with
    | Graph.Input { name; dtype; shape } ->
        map.(i) <- Graph.Builder.input builder ~name dtype shape
    | Graph.Const t ->
        const_value.(i) <- Some t;
        map.(i) <- Graph.Builder.const builder t
    | Graph.App { op; args } ->
        let args_const = List.map (fun a -> const_value.(a)) args in
        if List.for_all Option.is_some args_const then begin
          let t = Eval.eval_op op (List.map Option.get args_const) in
          const_value.(i) <- Some t;
          map.(i) <- Graph.Builder.const builder t
        end
        else map.(i) <- Graph.Builder.app builder op (List.map (fun a -> map.(a)) args)
  done;
  Graph.Builder.finish builder ~output:map.(Graph.output g)

let dead_code_elimination g =
  let n = Graph.length g in
  let live = Array.make n false in
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      match Graph.node g i with
      | Graph.App { args; _ } -> List.iter mark args
      | Graph.Input _ | Graph.Const _ -> ()
    end
  in
  mark (Graph.output g);
  let builder = Graph.Builder.create () in
  let map = Array.make n (-1) in
  for i = 0 to n - 1 do
    if live.(i) then
      map.(i) <-
        (match Graph.node g i with
        | Graph.Input { name; dtype; shape } -> Graph.Builder.input builder ~name dtype shape
        | Graph.Const t -> Graph.Builder.const builder t
        | Graph.App { op; args } ->
            Graph.Builder.app builder op (List.map (fun a -> map.(a)) args))
  done;
  Graph.Builder.finish builder ~output:map.(Graph.output g)

(* Structural key for value numbering. Constants compare by payload, so
   equal weight tensors unify and their consumers can in turn unify. *)
type vn_key =
  | KInput of string
  | KConst of Tensor.t
  | KApp of Op.t * int list

let common_subexpression_elimination g =
  let n = Graph.length g in
  let builder = Graph.Builder.create () in
  let map = Array.make n (-1) in
  let seen : (vn_key, int) Hashtbl.t = Hashtbl.create 32 in
  let intern key fresh =
    match Hashtbl.find_opt seen key with
    | Some id -> id
    | None ->
        let id = fresh () in
        Hashtbl.add seen key id;
        id
  in
  for i = 0 to n - 1 do
    map.(i) <-
      (match Graph.node g i with
      | Graph.Input { name; dtype; shape } ->
          intern (KInput name) (fun () -> Graph.Builder.input builder ~name dtype shape)
      | Graph.Const t -> intern (KConst t) (fun () -> Graph.Builder.const builder t)
      | Graph.App { op; args } ->
          let args = List.map (fun a -> map.(a)) args in
          intern (KApp (op, args)) (fun () -> Graph.Builder.app builder op args))
  done;
  Graph.Builder.finish builder ~output:map.(Graph.output g)

let scalar_const g id =
  match Graph.node g id with
  | Graph.Const t when Tensor.numel t = 1 -> Some (Tensor.get_flat t 0)
  | Graph.Const _ | Graph.Input _ | Graph.App _ -> None

let peephole g =
  let tys = Infer.infer g in
  let n = Graph.length g in
  let builder = Graph.Builder.create () in
  let map = Array.make n (-1) in
  for i = 0 to n - 1 do
    let default () =
      match Graph.node g i with
      | Graph.Input { name; dtype; shape } -> Graph.Builder.input builder ~name dtype shape
      | Graph.Const t -> Graph.Builder.const builder t
      | Graph.App { op; args } ->
          Graph.Builder.app builder op (List.map (fun a -> map.(a)) args)
    in
    map.(i) <-
      (match Graph.node g i with
      | Graph.App { op = Op.Right_shift; args = [ a; s2 ] } -> (
          match (Graph.node g a, scalar_const g s2) with
          | Graph.App { op = Op.Right_shift; args = [ x; s1 ] }, Some v2 -> (
              match scalar_const g s1 with
              | Some v1 when v1 >= 0 && v2 >= 0 ->
                  (* asr composes additively. *)
                  let s =
                    Graph.Builder.const builder
                      (Tensor.scalar Tensor.Dtype.I32 (v1 + v2))
                  in
                  Graph.Builder.app builder Op.Right_shift [ map.(x); s ]
              | Some _ | None -> default ())
          | _ -> default ())
      | Graph.App { op = Op.Relu; args = [ a ] } -> (
          match Graph.node g a with
          | Graph.App { op = Op.Relu; _ } -> map.(a)
          | _ -> default ())
      | Graph.App { op = Op.Reshape shape; args = [ a ] } -> (
          match Graph.node g a with
          | Graph.App { op = Op.Reshape _; args = [ x ] } ->
              Graph.Builder.app builder (Op.Reshape shape) [ map.(x) ]
          | _ -> default ())
      | Graph.App { op = Op.Clip { lo = l2; hi = h2 }; args = [ a ] } -> (
          match Graph.node g a with
          | Graph.App { op = Op.Clip { lo = l1; hi = h1 }; _ }
            when l1 >= l2 && h1 <= h2 ->
              (* The inner clip already lands inside the outer range. *)
              map.(a)
          | _ -> default ())
      | Graph.App { op = Op.Cast dt; args = [ a ] }
        when Tensor.Dtype.equal tys.(a).Infer.dtype dt ->
          map.(a)
      | Graph.Input _ | Graph.Const _ | Graph.App _ -> default ())
  done;
  Graph.Builder.finish builder ~output:map.(Graph.output g)

let simplify g =
  dead_code_elimination (peephole (common_subexpression_elimination (constant_fold g)))
