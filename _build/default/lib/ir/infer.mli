(** Shape and dtype inference.

    Runs over a graph once and assigns every node a type (dtype + shape).
    The partitioner's accelerator rules, the DORY tiler and the memory
    planner all consume these types; networks that violate an operator's
    typing rule are rejected here, before any lowering. *)

type ty = { dtype : Tensor.Dtype.t; shape : int array }

exception Type_error of string
(** Raised with a node-indexed explanation when typing fails. *)

val ty_equal : ty -> ty -> bool
val pp_ty : Format.formatter -> ty -> unit

val infer : Graph.t -> ty array
(** Types for every node, indexed by node id.
    @raise Type_error on any ill-typed application. *)

val output_ty : Graph.t -> ty
(** Type of the graph output. *)
