lib/ir/op.mli: Format Nn Tensor
