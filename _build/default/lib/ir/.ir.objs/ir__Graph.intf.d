lib/ir/graph.mli: Format Op Tensor
