lib/ir/layer.mli: Nn Op Tensor
