lib/ir/op.ml: Array Format List Nn String Tensor
