lib/ir/rewrite.mli: Graph
