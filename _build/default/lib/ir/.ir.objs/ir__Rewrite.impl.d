lib/ir/rewrite.ml: Array Eval Graph Hashtbl Infer List Op Option Tensor
