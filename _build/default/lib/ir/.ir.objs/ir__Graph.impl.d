lib/ir/graph.ml: Array Format Hashtbl List Op Printf String Tensor
