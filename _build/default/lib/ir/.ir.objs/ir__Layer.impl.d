lib/ir/layer.ml: Array Format List Nn Op Option Printf String Tensor
