lib/ir/dot.mli: Graph
