lib/ir/text.ml: Array Buffer Char Fun Graph Hashtbl In_channel List Op Printf String Sys Tensor
