lib/ir/infer.ml: Array Format Graph List Nn Op Printf String Tensor
