lib/ir/infer.mli: Format Graph Tensor
