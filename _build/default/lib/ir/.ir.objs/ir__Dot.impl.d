lib/ir/dot.ml: Array Buffer Graph List Op Printf String Tensor
