lib/ir/eval.ml: Array Graph Hashtbl List Nn Op Printf Tensor Util
