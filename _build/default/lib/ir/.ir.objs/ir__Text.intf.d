lib/ir/text.mli: Graph
