lib/ir/eval.mli: Graph Op Tensor
