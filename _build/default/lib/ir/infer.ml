module Dtype = Tensor.Dtype

type ty = { dtype : Dtype.t; shape : int array }

exception Type_error of string

let ty_equal a b = Dtype.equal a.dtype b.dtype && a.shape = b.shape

let pp_ty fmt { dtype; shape } =
  Format.fprintf fmt "%s[%s]" (Dtype.to_string dtype)
    (Array.to_list shape |> List.map string_of_int |> String.concat "x")

let fail i fmt =
  Format.kasprintf (fun s -> raise (Type_error (Printf.sprintf "node %d: %s" i s))) fmt

let numel shape = Array.fold_left ( * ) 1 shape

let narrow_int = function
  | Dtype.I8 | Dtype.U7 -> true
  | Dtype.I16 | Dtype.I32 | Dtype.Ternary -> false

let infer_app i op (args : ty list) =
  let arg n = List.nth args n in
  match (op : Op.t) with
  | Op.Conv2d p ->
      let data = arg 0 and w = arg 1 in
      if Array.length data.shape <> 3 then fail i "conv2d: data must be rank 3 (CHW)";
      if Array.length w.shape <> 4 then fail i "conv2d: weights must be rank 4 (KCFyFx)";
      if not (narrow_int data.dtype) then
        fail i "conv2d: data dtype %s not supported" (Dtype.to_string data.dtype);
      let c = data.shape.(0) and h = data.shape.(1) and wdt = data.shape.(2) in
      let k = w.shape.(0) and cg = w.shape.(1) and fy = w.shape.(2) and fx = w.shape.(3) in
      let g = p.Nn.Kernels.groups in
      if g <= 0 || c mod g <> 0 || k mod g <> 0 || cg <> c / g then
        fail i "conv2d: groups=%d incompatible with c=%d k=%d cg=%d" g c k cg;
      let oh, ow = Nn.Kernels.conv_out_dims ~in_dims:(h, wdt) ~kernel:(fy, fx) p in
      if oh <= 0 || ow <= 0 then fail i "conv2d: empty output (%dx%d)" oh ow;
      { dtype = Dtype.I32; shape = [| k; oh; ow |] }
  | Op.Dense ->
      let data = arg 0 and w = arg 1 in
      if Array.length data.shape <> 1 then fail i "dense: data must be rank 1";
      if Array.length w.shape <> 2 then fail i "dense: weights must be rank 2";
      if w.shape.(1) <> data.shape.(0) then
        fail i "dense: weights expect %d inputs, data has %d" w.shape.(1) data.shape.(0);
      { dtype = Dtype.I32; shape = [| w.shape.(0) |] }
  | Op.Bias_add ->
      let data = arg 0 and bias = arg 1 in
      if Array.length data.shape < 1 then fail i "bias_add: data must have a channel axis";
      if Array.length bias.shape <> 1 || bias.shape.(0) <> data.shape.(0) then
        fail i "bias_add: bias must be [|%d|]" data.shape.(0);
      if not (Dtype.equal bias.dtype Dtype.I32) then fail i "bias_add: bias must be i32";
      data
  | Op.Right_shift ->
      let data = arg 0 and amount = arg 1 in
      if Array.length amount.shape <> 0 then fail i "right_shift: shift must be scalar";
      data
  | Op.Clip _ -> arg 0
  | Op.Cast dt -> { (arg 0) with dtype = dt }
  | Op.Relu -> arg 0
  | Op.Add ->
      let a = arg 0 and b = arg 1 in
      if a.shape <> b.shape then fail i "add: shape mismatch";
      { dtype = Dtype.I32; shape = a.shape }
  | Op.Max_pool { pool = ph, pw; pool_stride = sy, sx }
  | Op.Avg_pool { pool = ph, pw; pool_stride = sy, sx } ->
      let data = arg 0 in
      if Array.length data.shape <> 3 then fail i "pool: data must be rank 3 (CHW)";
      let h = data.shape.(1) and w = data.shape.(2) in
      let oh = ((h - ph) / sy) + 1 and ow = ((w - pw) / sx) + 1 in
      if oh <= 0 || ow <= 0 then fail i "pool: empty output";
      { data with shape = [| data.shape.(0); oh; ow |] }
  | Op.Global_avg_pool ->
      let data = arg 0 in
      if Array.length data.shape <> 3 then fail i "global_avg_pool: data must be rank 3";
      { data with shape = [| data.shape.(0); 1; 1 |] }
  | Op.Softmax ->
      let data = arg 0 in
      if Array.length data.shape <> 1 then fail i "softmax: data must be rank 1";
      { dtype = Dtype.I8; shape = data.shape }
  | Op.Concat ->
      let a = arg 0 and b = arg 1 in
      if Array.length a.shape <> 3 || Array.length b.shape <> 3 then
        fail i "concatenate: both inputs must be rank 3 (CHW)";
      if a.shape.(1) <> b.shape.(1) || a.shape.(2) <> b.shape.(2) then
        fail i "concatenate: spatial dims must match";
      if not (Dtype.equal a.dtype b.dtype) then fail i "concatenate: dtype mismatch";
      { a with shape = [| a.shape.(0) + b.shape.(0); a.shape.(1); a.shape.(2) |] }
  | Op.Reshape shape ->
      let data = arg 0 in
      if numel shape <> numel data.shape then
        fail i "reshape: element count mismatch (%d vs %d)" (numel shape) (numel data.shape);
      { data with shape }

let infer g =
  let n = Graph.length g in
  let tys = Array.make n { dtype = Dtype.I8; shape = [||] } in
  for i = 0 to n - 1 do
    tys.(i) <-
      (match Graph.node g i with
      | Graph.Input { dtype; shape; _ } -> { dtype; shape }
      | Graph.Const t -> { dtype = Tensor.dtype t; shape = Tensor.shape t }
      | Graph.App { op; args } -> infer_app i op (List.map (fun a -> tys.(a)) args))
  done;
  tys

let output_ty g = (infer g).(Graph.output g)
