(** Graph-level optimizations run before partitioning (TVM's "initial
    optimizations" in the HTVM flow, Sec. III). *)

val constant_fold : Graph.t -> Graph.t
(** Replace every application whose arguments are all constants by the
    constant it evaluates to. Iterates to a fixed point in one topological
    pass. *)

val dead_code_elimination : Graph.t -> Graph.t
(** Drop nodes not reachable from the output; remaining ids are compacted
    but keep their relative order. *)

val common_subexpression_elimination : Graph.t -> Graph.t
(** Share structurally identical applications of the same operator to the
    same arguments (weights dedup across reused constants comes out of
    this too, since equal constants unify first). *)

val peephole : Graph.t -> Graph.t
(** Local exact rewrites in one pass:
    - [right_shift(right_shift(x, a), b) -> right_shift(x, a + b)]
    - [relu(relu x) -> relu x]
    - [reshape(reshape x) -> reshape x] (outer shape wins)
    - drop a [clip] whose range contains its operand's clip range
    - drop a [cast] to the operand's own dtype.
    All rewrites preserve values exactly (tested by fuzzing). *)

val simplify : Graph.t -> Graph.t
(** [constant_fold], [common_subexpression_elimination], [peephole] and
    [dead_code_elimination], in that order. *)
