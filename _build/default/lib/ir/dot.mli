(** Graphviz export for visual inspection of graphs and partitions. *)

val to_dot : ?highlight:(Graph.id -> string option) -> Graph.t -> string
(** DOT source for the graph: operator nodes as boxes labelled with their
    attributes, inputs as ellipses, constants as small notes.
    [highlight] may assign a fill color (e.g. per dispatch target). *)
