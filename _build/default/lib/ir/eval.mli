(** Reference interpreter.

    Evaluates graphs with the {!Nn.Kernels} reference kernels. This is the
    semantic ground truth: the HTVM-compiled artifact running on the SoC
    simulator must produce bit-identical outputs (the end-to-end
    integration tests assert exactly that). Also powers constant folding. *)

val eval_op : Op.t -> Tensor.t list -> Tensor.t
(** Apply one operator to concrete tensors.
    @raise Invalid_argument on arity or shape violations. *)

val run : Graph.t -> inputs:(string * Tensor.t) list -> Tensor.t
(** Evaluate the whole graph. Every graph [Input] must be bound by name in
    [inputs]; extra bindings are an error, as are shape/dtype mismatches.
    @raise Invalid_argument on binding problems. *)

val run_all : Graph.t -> inputs:(string * Tensor.t) list -> Tensor.t array
(** Like {!run} but returns the value of every node (used by layer-level
    differential tests). *)
