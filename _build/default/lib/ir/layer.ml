module Dtype = Tensor.Dtype
module K = Nn.Kernels

type kind =
  | Conv of K.conv_params
  | Dense
  | Add
  | Pool of { max : bool; attrs : Op.pool_attrs }

type t = {
  kind : kind;
  fused_pool : Op.pool_attrs option;
  weights : Tensor.t option;
  bias : Tensor.t option;
  shift : int option;
  relu : bool;
  in_shape : int array;
  in2_shape : int array option;
  out_shape : int array;
  in_dtype : Dtype.t;
  out_dtype : Dtype.t;
}

let weight_dtype l = Option.map Tensor.dtype l.weights

let is_depthwise l =
  match l.kind with
  | Conv p -> p.K.groups > 1 && p.K.groups = l.in_shape.(0)
  | Dense | Add | Pool _ -> false

let numel shape = Array.fold_left ( * ) 1 shape

(* Spatial extent of one pre-pool axis for a pooled extent of [n]. *)
let pre_pool_extent ~pool ~stride n = ((n - 1) * stride) + pool

let pre_pool_dims l =
  match (l.kind, l.fused_pool) with
  | Conv _, Some { Op.pool = pwy, pwx; pool_stride = psy, psx } ->
      ( pre_pool_extent ~pool:pwy ~stride:psy l.out_shape.(1),
        pre_pool_extent ~pool:pwx ~stride:psx l.out_shape.(2) )
  | _ ->
      if Array.length l.out_shape = 3 then (l.out_shape.(1), l.out_shape.(2)) else (1, 1)

let kernel_dims l =
  match (l.kind, l.weights) with
  | Conv _, Some w -> (Tensor.dim w 2, Tensor.dim w 3)
  | _ -> (1, 1)

let macs l =
  match l.kind with
  | Conv p ->
      let fy, fx = kernel_dims l in
      let c = l.in_shape.(0) in
      let oh, ow = pre_pool_dims l in
      l.out_shape.(0) * oh * ow * (c / p.K.groups) * fy * fx
  | Dense -> l.in_shape.(0) * l.out_shape.(0)
  | Add | Pool _ -> numel l.out_shape

let describe l =
  let dims shape = Array.to_list shape |> List.map string_of_int |> String.concat "x" in
  match l.kind with
  | Conv p ->
      let fy, fx = kernel_dims l in
      let sy, sx = p.K.stride in
      Printf.sprintf "%s %s -> %s k%dx%d s%dx%d%s"
        (if is_depthwise l then "dwconv2d" else "conv2d")
        (dims l.in_shape) (dims l.out_shape) fy fx sy sx
        (if l.fused_pool = None then "" else "+maxpool")
  | Dense -> Printf.sprintf "dense %s -> %s" (dims l.in_shape) (dims l.out_shape)
  | Add -> Printf.sprintf "add %s" (dims l.out_shape)
  | Pool { max; attrs = { pool = py, px; _ } } ->
      Printf.sprintf "%spool %dx%d %s -> %s"
        (if max then "max" else "avg")
        py px (dims l.in_shape) (dims l.out_shape)

let apply_epilogue l acc =
  let biased =
    match l.bias with None -> acc | Some bias -> K.bias_add acc bias
  in
  let requanted =
    match l.shift with
    | Some shift -> K.requantize ~relu:l.relu ~shift ~out_dtype:l.out_dtype biased
    | None ->
        let biased = if l.relu then K.relu biased else biased in
        Tensor.cast l.out_dtype biased
  in
  match l.fused_pool with
  | None -> requanted
  | Some { Op.pool; pool_stride } -> K.max_pool ~pool ~stride:pool_stride requanted

let execute l ?second input =
  let acc =
    match l.kind with
    | Conv p ->
        let weights =
          match l.weights with
          | Some w -> w
          | None -> invalid_arg "Layer.execute: conv without weights"
        in
        K.conv2d ~input ~weights p
    | Dense ->
        let weights =
          match l.weights with
          | Some w -> w
          | None -> invalid_arg "Layer.execute: dense without weights"
        in
        K.dense ~input ~weights
    | Add ->
        let second =
          match second with
          | Some s -> s
          | None -> invalid_arg "Layer.execute: add needs a second input"
        in
        K.add input second
    | Pool { max = true; attrs = { pool; pool_stride } } ->
        K.max_pool ~pool ~stride:pool_stride input
    | Pool { max = false; attrs = { pool; pool_stride } } ->
        K.avg_pool ~pool ~stride:pool_stride input
  in
  apply_epilogue l acc

let validate l =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if l.fused_pool <> None && (match l.kind with Conv _ -> false | _ -> true) then
    err "fused pooling is only valid on convolutions"
  else
  match l.kind with
  | Conv p -> (
      match l.weights with
      | None -> err "conv layer without weights"
      | Some w ->
          if Tensor.rank w <> 4 then err "conv weights must be rank 4"
          else
            let fy = Tensor.dim w 2 and fx = Tensor.dim w 3 in
            let oh, ow =
              K.conv_out_dims
                ~in_dims:(l.in_shape.(1), l.in_shape.(2))
                ~kernel:(fy, fx) p
            in
            let expected =
              match l.fused_pool with
              | None -> [| Tensor.dim w 0; oh; ow |]
              | Some { Op.pool = pwy, pwx; pool_stride = psy, psx } ->
                  [| Tensor.dim w 0; ((oh - pwy) / psy) + 1; ((ow - pwx) / psx) + 1 |]
            in
            if l.out_shape <> expected then
              err "conv out_shape inconsistent with geometry"
            else Ok ())
  | Dense -> (
      match l.weights with
      | None -> err "dense layer without weights"
      | Some w ->
          if Tensor.rank w <> 2 then err "dense weights must be rank 2"
          else if Tensor.dim w 1 <> l.in_shape.(0) then err "dense weights/input mismatch"
          else if l.out_shape <> [| Tensor.dim w 0 |] then err "dense out_shape mismatch"
          else Ok ())
  | Add ->
      if l.in2_shape <> Some l.in_shape then err "add inputs must share a shape"
      else if l.out_shape <> l.in_shape then err "add out_shape mismatch"
      else Ok ()
  | Pool _ ->
      if l.weights <> None then err "pool layer cannot carry weights" else Ok ()
