(** Operator vocabulary of the graph IR.

    The set mirrors the quantized Relay operators HTVM's pattern matcher
    works over (paper Listing 1 and Sec. IV-C): convolutions, dense,
    bias-add, the right-shift/clip/cast requantization triple, ReLU,
    residual add, poolings, softmax and reshape. *)

type pool_attrs = {
  pool : int * int;         (** window (h, w) *)
  pool_stride : int * int;  (** stride (y, x) *)
}

type t =
  | Conv2d of Nn.Kernels.conv_params
      (** args: data [|c;h;w|], weights [|k;c/g;fy;fx|]; result I32 *)
  | Dense  (** args: data [|c|], weights [|k;c|]; result I32 *)
  | Bias_add  (** args: acc, bias [|k|] *)
  | Right_shift  (** args: acc, scalar shift constant *)
  | Clip of { lo : int; hi : int }  (** saturate accumulator values *)
  | Cast of Tensor.Dtype.t  (** saturating dtype conversion *)
  | Relu
  | Add  (** residual addition, widens to I32 *)
  | Max_pool of pool_attrs
  | Avg_pool of pool_attrs
  | Global_avg_pool
  | Softmax
  | Reshape of int array
  | Concat  (** channel-axis concatenation of two CHW activations *)

val name : t -> string
(** Relay-style operator name used by the pattern language, e.g.
    ["nn.conv2d"], ["right_shift"], ["clip"]. *)

val arity : t -> int
(** Number of graph arguments the operator consumes. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Operator with its attributes, e.g. [nn.conv2d{stride=2x2 pad=1x1}]. *)

val to_string : t -> string
