module G = Ir.Graph

let const_tensor g id =
  match G.node g id with G.Const t -> Some t | G.Input _ | G.App _ -> None

let to_layer g tys (m : Pattern.match_result) =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let anchors = ref [] in
  let pools = ref [] in
  let bias = ref None in
  let shift = ref None in
  let clip = ref None in
  let cast = ref None in
  let relu_op = ref false in
  let walk id =
    match G.node g id with
    | G.Input _ | G.Const _ -> ()
    | G.App { op; args } -> (
        match op with
        | Ir.Op.Conv2d _ | Ir.Op.Dense | Ir.Op.Add | Ir.Op.Global_avg_pool ->
            anchors := (id, op, args) :: !anchors
        | Ir.Op.Max_pool _ | Ir.Op.Avg_pool _ ->
            pools := (id, op, args) :: !pools
        | Ir.Op.Bias_add -> bias := Some (List.nth args 1)
        | Ir.Op.Right_shift -> shift := Some (List.nth args 1)
        | Ir.Op.Clip { lo; hi } -> clip := Some (lo, hi)
        | Ir.Op.Cast dt -> cast := Some dt
        | Ir.Op.Relu -> relu_op := true
        | Ir.Op.Softmax | Ir.Op.Reshape _ | Ir.Op.Concat -> ())
  in
  List.iter walk m.matched;
  (* A pooling matched together with a conv is a fused output-stage pool;
     standalone it is the region's anchor. *)
  let fused_pool = ref None in
  let pool_problem = ref None in
  (match (!anchors, !pools) with
  | _, [] -> ()
  | _ :: _, [ (_, Ir.Op.Max_pool attrs, _) ] -> fused_pool := Some attrs
  | _ :: _, _ -> pool_problem := Some "unsupported pooling fused into the region"
  | [], ps -> anchors := ps @ !anchors);
  match !pool_problem with
  | Some msg -> err "%s" msg
  | None -> (
  match !anchors with
  | [] -> err "region has no anchor operator"
  | _ :: _ :: _ -> err "region has several anchor operators"
  | [ (anchor_id, op, args) ] -> (
      let data_ty id = tys.(id) in
      let out_ty = data_ty m.root in
      let shift_value =
        match !shift with
        | None -> Ok None
        | Some id -> (
            match const_tensor g id with
            | Some t when Tensor.rank t = 0 -> Ok (Some (Tensor.get t [||]))
            | Some _ -> err "shift amount must be scalar"
            | None -> err "shift amount must be constant")
      in
      let bias_tensor =
        match !bias with
        | None -> Ok None
        | Some id -> (
            match const_tensor g id with
            | Some t -> Ok (Some t)
            | None -> err "bias must be constant")
      in
      let relu =
        !relu_op || (match !clip with Some (0, hi) -> hi > 0 | Some _ | None -> false)
      in
      match (shift_value, bias_tensor) with
      | Error e, _ | _, Error e -> Error e
      | Ok shift, Ok bias -> (
          let finish kind ~weights ~in_id ~in2_id =
            let in_ty = data_ty in_id in
            let layer =
              {
                Ir.Layer.kind;
                fused_pool = !fused_pool;
                weights;
                bias;
                shift;
                relu;
                in_shape = in_ty.Ir.Infer.shape;
                in2_shape =
                  Option.map (fun id -> (data_ty id).Ir.Infer.shape) in2_id;
                out_shape = out_ty.Ir.Infer.shape;
                in_dtype = in_ty.Ir.Infer.dtype;
                out_dtype = out_ty.Ir.Infer.dtype;
              }
            in
            match Ir.Layer.validate layer with
            | Ok () -> Ok layer
            | Error e -> Error ("extracted layer invalid: " ^ e)
          in
          ignore anchor_id;
          match (op, args) with
          | Ir.Op.Conv2d p, [ data; w ] -> (
              match const_tensor g w with
              | Some weights ->
                  finish (Ir.Layer.Conv p) ~weights:(Some weights) ~in_id:data ~in2_id:None
              | None -> err "conv weights must be constant")
          | Ir.Op.Dense, [ data; w ] -> (
              match const_tensor g w with
              | Some weights ->
                  finish Ir.Layer.Dense ~weights:(Some weights) ~in_id:data ~in2_id:None
              | None -> err "dense weights must be constant")
          | Ir.Op.Add, [ a; b ] ->
              finish Ir.Layer.Add ~weights:None ~in_id:a ~in2_id:(Some b)
          | Ir.Op.Max_pool attrs, [ data ] ->
              finish (Ir.Layer.Pool { max = true; attrs }) ~weights:None ~in_id:data
                ~in2_id:None
          | Ir.Op.Avg_pool attrs, [ data ] ->
              finish (Ir.Layer.Pool { max = false; attrs }) ~weights:None ~in_id:data
                ~in2_id:None
          | Ir.Op.Global_avg_pool, [ data ] ->
              let ty = data_ty data in
              let h = ty.Ir.Infer.shape.(1) and w = ty.Ir.Infer.shape.(2) in
              finish
                (Ir.Layer.Pool
                   { max = false; attrs = { Ir.Op.pool = (h, w); pool_stride = (1, 1) } })
                ~weights:None ~in_id:data ~in2_id:None
          | _ -> err "unsupported anchor arity")))
