lib/pattern/library.ml: Pattern
