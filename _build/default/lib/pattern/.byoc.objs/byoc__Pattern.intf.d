lib/pattern/pattern.mli: Format Ir
