lib/pattern/pattern.ml: Format Ir List Printf
