lib/pattern/partition.ml: Array Extract Format Ir List Pattern
