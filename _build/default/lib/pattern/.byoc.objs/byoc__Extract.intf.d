lib/pattern/extract.mli: Ir Pattern
