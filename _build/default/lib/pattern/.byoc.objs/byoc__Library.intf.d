lib/pattern/library.mli: Pattern
