lib/pattern/partition.mli: Format Ir Pattern
