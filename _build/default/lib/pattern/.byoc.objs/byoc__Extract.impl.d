lib/pattern/extract.ml: Array Format Ir List Option Pattern Tensor
