type t =
  | Wildcard
  | Is_constant
  | Is_op of { name : string; args : t list; preds : (Ir.Op.t -> bool) list }
  | Alt of t * t

let wildcard = Wildcard
let is_constant = Is_constant
let is_op name args = Is_op { name; args; preds = [] }

let has_attr pred = function
  | Is_op o -> Is_op { o with preds = pred :: o.preds }
  | Wildcard | Is_constant | Alt _ ->
      invalid_arg "Pattern.has_attr: expected an operator pattern"

let alt a b = Alt (a, b)
let optional f p = Alt (f p, p)

let rec pp fmt = function
  | Wildcard -> Format.pp_print_string fmt "*"
  | Is_constant -> Format.pp_print_string fmt "const"
  | Is_op { name; args; preds } ->
      Format.fprintf fmt "%s%s(%a)" name
        (if preds = [] then "" else "{attr}")
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
        args
  | Alt (a, b) -> Format.fprintf fmt "(%a | %a)" pp a pp b

type match_result = {
  root : Ir.Graph.id;
  matched : Ir.Graph.id list;
  inputs : Ir.Graph.id list;
  consts : Ir.Graph.id list;
}

(* Accumulator threaded through the recursive match; lists are reversed. *)
type acc = { m : Ir.Graph.id list; ins : Ir.Graph.id list; cs : Ir.Graph.id list }

let rec try_match g pat id acc =
  match pat with
  | Wildcard -> Some { acc with ins = id :: acc.ins }
  | Is_constant -> (
      match Ir.Graph.node g id with
      | Ir.Graph.Const _ -> Some { acc with cs = id :: acc.cs }
      | Ir.Graph.Input _ | Ir.Graph.App _ -> None)
  | Alt (a, b) -> (
      match try_match g a id acc with
      | Some _ as r -> r
      | None -> try_match g b id acc)
  | Is_op { name; args; preds } -> (
      match Ir.Graph.node g id with
      | Ir.Graph.App { op; args = actual } when Ir.Op.name op = name ->
          if not (List.for_all (fun p -> p op) preds) then None
          else if List.length args <> List.length actual then
            invalid_arg
              (Printf.sprintf "Pattern: %s written with %d args, operator has %d" name
                 (List.length args) (List.length actual))
          else
            let rec go pats ids acc =
              match (pats, ids) with
              | [], [] -> Some acc
              | p :: pats, i :: ids -> (
                  match try_match g p i acc with
                  | Some acc -> go pats ids acc
                  | None -> None)
              | _ -> None
            in
            go args actual { acc with m = id :: acc.m }
      | Ir.Graph.App _ | Ir.Graph.Input _ | Ir.Graph.Const _ -> None)

let matches g pat ~at =
  match try_match g pat at { m = []; ins = []; cs = [] } with
  | None -> None
  | Some { m; ins; cs } ->
      Some
        {
          root = at;
          matched = List.sort_uniq compare m;
          inputs = List.rev ins;
          consts = List.rev cs;
        }

let find_all g pat =
  Ir.Graph.node_ids g |> List.filter_map (fun id -> matches g pat ~at:id)
