(** Turn a successful pattern match into a normalized {!Ir.Layer.t}.

    The extraction is structural: it walks the matched operator nodes and
    classifies them into anchor (conv/dense/add/pool), bias, shift, clip
    and cast roles, so it works for every pattern in {!Library} and for
    user-written patterns of the same shape. *)

val to_layer :
  Ir.Graph.t -> Ir.Infer.ty array -> Pattern.match_result -> (Ir.Layer.t, string) result
(** [Error] explains which structural expectation failed (e.g. two anchors
    in one region, non-scalar shift, missing weights). *)
