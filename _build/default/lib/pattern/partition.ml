module G = Ir.Graph

type target = {
  name : string;
  patterns : Pattern.t list;
  accept : Ir.Layer.t -> bool;
  priority : int;
  estimate : (Ir.Layer.t -> int) option;
}

type segment =
  | Offload of {
      target : string;
      layer : Ir.Layer.t;
      inputs : G.id list;
      output : G.id;
    }
  | Host of { id : G.id }

type plan = {
  graph : G.t;
  tys : Ir.Infer.ty array;
  segments : segment list;
}

let segment_output = function
  | Offload { output; _ } -> output
  | Host { id } -> id

let segment_inputs g = function
  | Offload { inputs; _ } -> List.sort_uniq compare inputs
  | Host { id } -> (
      match G.node g id with
      | G.App { args; _ } ->
          List.filter
            (fun a -> match G.node g a with G.Const _ -> false | _ -> true)
            args
          |> List.sort_uniq compare
      | G.Input _ | G.Const _ -> [])

(* A region may only be fused if every interior node (everything matched
   except the root) is consumed exclusively inside the region. *)
let interior_nodes_private g (m : Pattern.match_result) =
  List.for_all
    (fun id ->
      id = m.root
      || List.for_all (fun c -> List.mem c m.matched) (G.consumers g id))
    m.matched

let try_target g tys claimed target ~at =
  let unclaimed (m : Pattern.match_result) =
    List.for_all (fun id -> not claimed.(id)) m.matched
  in
  let rec go = function
    | [] -> None
    | pat :: rest -> (
        match Pattern.matches g pat ~at with
        | Some m when unclaimed m && interior_nodes_private g m -> (
            match Extract.to_layer g tys m with
            | Ok layer when target.accept layer ->
                Some (Offload { target = target.name; layer; inputs = m.inputs; output = at }, m)
            | Ok _ | Error _ -> go rest)
        | Some _ | None -> go rest)
  in
  go target.patterns

let run g ~targets =
  let tys = Ir.Infer.infer g in
  let n = G.length g in
  let claimed = Array.make n false in
  let segments = ref [] in
  let targets = List.stable_sort (fun a b -> compare b.priority a.priority) targets in
  (* Among all targets accepting a candidate root, pick the best one: the
     lowest cost estimate when available, priority order otherwise. *)
  let pick_best candidates =
    let scored =
      List.map
        (fun (t, ((seg, _) as r)) ->
          let est =
            match (t.estimate, seg) with
            | Some f, Offload { layer; _ } -> f layer
            | _ -> max_int
          in
          (est, -t.priority, r))
        candidates
    in
    match List.sort compare scored with [] -> None | (_, _, r) :: _ -> Some r
  in
  (* Backwards pass: roots are the last op of a fused sequence, so visiting
     high ids first finds the longest fusions before their sub-patterns. *)
  for id = n - 1 downto 0 do
    if not claimed.(id) then
      match G.node g id with
      | G.Input _ | G.Const _ -> ()
      | G.App _ ->
          let candidates =
            List.filter_map
              (fun t ->
                match try_target g tys claimed t ~at:id with
                | Some r -> Some (t, r)
                | None -> None)
              targets
          in
          (match pick_best candidates with
          | Some (seg, m) ->
              List.iter (fun i -> claimed.(i) <- true) m.Pattern.matched;
              segments := (id, seg) :: !segments
          | None -> ())
  done;
  (* Remaining operator applications run on the host. *)
  List.iter
    (fun id ->
      match G.node g id with
      | G.App _ when not claimed.(id) -> segments := (id, Host { id }) :: !segments
      | _ -> ())
    (G.node_ids g);
  let segments =
    List.sort (fun (a, _) (b, _) -> compare a b) !segments |> List.map snd
  in
  { graph = g; tys; segments }

let offload_count plan =
  List.length (List.filter (function Offload _ -> true | Host _ -> false) plan.segments)

let host_count plan =
  List.length (List.filter (function Host _ -> true | Offload _ -> false) plan.segments)

let pp fmt plan =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun seg ->
      match seg with
      | Offload { target; layer; output; _ } ->
          Format.fprintf fmt "%%%d <- [%s] %s@," output target (Ir.Layer.describe layer)
      | Host { id } -> (
          match G.node plan.graph id with
          | G.App { op; _ } -> Format.fprintf fmt "%%%d <- [cpu] %a@," id Ir.Op.pp op
          | G.Input _ | G.Const _ -> ()))
    plan.segments;
  Format.fprintf fmt "@]"
