let requant_tail p =
  let shifted = Pattern.is_op "right_shift" [ p; Pattern.is_constant ] in
  let clipped = Pattern.is_op "clip" [ shifted ] in
  Pattern.is_op "cast" [ clipped ]

let conv2d_pattern =
  let conv = Pattern.is_op "nn.conv2d" [ Pattern.wildcard; Pattern.is_constant ] in
  let bias = Pattern.is_op "nn.bias_add" [ conv; Pattern.is_constant ] in
  requant_tail bias

let conv2d_no_bias_pattern =
  requant_tail (Pattern.is_op "nn.conv2d" [ Pattern.wildcard; Pattern.is_constant ])

let dense_pattern =
  let dense = Pattern.is_op "nn.dense" [ Pattern.wildcard; Pattern.is_constant ] in
  let bias = Pattern.is_op "nn.bias_add" [ dense; Pattern.is_constant ] in
  requant_tail bias

let conv2d_pool_pattern =
  (* Conv2D - BiasAdd - ReQuant - MaxPool: DIANA's accelerators execute
     some pooling at the output stage (Sec. III-C). *)
  Pattern.is_op "nn.max_pool2d" [ conv2d_pattern ]

let dense_no_bias_pattern =
  requant_tail (Pattern.is_op "nn.dense" [ Pattern.wildcard; Pattern.is_constant ])

let add_pattern = requant_tail (Pattern.is_op "add" [ Pattern.wildcard; Pattern.wildcard ])

let all =
  [ conv2d_pool_pattern; conv2d_pattern; conv2d_no_bias_pattern; dense_pattern;
    dense_no_bias_pattern; add_pattern ]
