(** BYOC graph partitioner (paper Sec. III-A).

    Walks the graph and dispatches each matched coarse-grained region to
    the best accelerator target whose rules accept it; everything left
    falls through to the host CPU path. The result is a linear execution
    plan over composite segments, preserving dataflow order. *)

type target = {
  name : string;  (** e.g. ["diana_digital"] *)
  patterns : Pattern.t list;  (** tried in order *)
  accept : Ir.Layer.t -> bool;
      (** accelerator-aware rules: final say on a matched candidate
          (bit-widths, geometry limits, stride support, ...) *)
  priority : int;  (** among tying estimates, higher wins *)
  estimate : (Ir.Layer.t -> int) option;
      (** expected execution cost on this target. When several targets
          accept the same candidate, the flow "selects the one best
          optimized for that given operation" (paper Sec. III-A): lowest
          estimate wins, priority breaks ties and orders targets without
          estimates. *)
}

type segment =
  | Offload of {
      target : string;
      layer : Ir.Layer.t;
      inputs : Ir.Graph.id list;  (** data inputs, pattern order *)
      output : Ir.Graph.id;  (** region root *)
    }
  | Host of { id : Ir.Graph.id }
      (** one unmatched operator application, lowered by the CPU codegen *)

type plan = {
  graph : Ir.Graph.t;
  tys : Ir.Infer.ty array;
  segments : segment list;  (** in execution (dataflow) order *)
}

val segment_output : segment -> Ir.Graph.id
val segment_inputs : Ir.Graph.t -> segment -> Ir.Graph.id list
(** Data-input node ids of a segment (constants excluded). *)

val run : Ir.Graph.t -> targets:target list -> plan
(** Partition the graph. Matching is greedy from the outputs backwards; a
    region is only committed when all its interior nodes are consumed
    exclusively inside the region (otherwise fusing would duplicate
    work), when layer extraction succeeds, and when the target's rules
    accept the layer.
    @raise Ir.Infer.Type_error if the graph does not type-check. *)

val offload_count : plan -> int
val host_count : plan -> int

val pp : Format.formatter -> plan -> unit
(** One line per segment: destination and layer/op description. *)
