(** Relay-style pattern language (paper Listing 1).

    Patterns describe rooted operator trees: the root is the last operator
    of the fused sequence (e.g. the final [cast] of a requantization) and
    pattern arguments reach backwards through the graph. [wildcard] leaves
    become the composite's data inputs, [is_constant] leaves its parameter
    tensors. *)

type t

val wildcard : t
(** Matches any node; the matched node becomes an external data input. *)

val is_constant : t
(** Matches a [Const] node. *)

val is_op : string -> t list -> t
(** [is_op name args] matches an application of the operator with that
    Relay-style name (see {!Ir.Op.name}) whose arguments match [args]
    pointwise.
    @raise Invalid_argument at match time if the arity disagrees. *)

val has_attr : (Ir.Op.t -> bool) -> t -> t
(** Refine an operator pattern with an attribute predicate, e.g.
    [has_attr (function Cast I8 -> true | _ -> false)].
    @raise Invalid_argument if applied to a non-operator pattern. *)

val optional : (t -> t) -> t -> t
(** [optional f p] matches [f p] when possible, else [p] — Listing 1's
    [cast.optional(is_op "clip")]. *)

val alt : t -> t -> t
(** First-match-wins alternative. *)

val pp : Format.formatter -> t -> unit

(** A successful match rooted at [root]. *)
type match_result = {
  root : Ir.Graph.id;
  matched : Ir.Graph.id list;  (** operator nodes consumed, ascending *)
  inputs : Ir.Graph.id list;   (** wildcard bindings in pattern order *)
  consts : Ir.Graph.id list;   (** constant bindings in pattern order *)
}

val matches : Ir.Graph.t -> t -> at:Ir.Graph.id -> match_result option
(** Try to match the pattern rooted at a node. A node may appear several
    times in [inputs] if several wildcards reach it. *)

val find_all : Ir.Graph.t -> t -> match_result list
(** All match roots in the graph, ascending by root id (matches may
    overlap; the partitioner resolves conflicts). *)
