(** Canonical accelerator patterns (paper Listing 1 and Sec. IV-C).

    Each pattern ends in the requantization tail
    [right_shift -> clip -> cast] the quantized graphs carry, so a match
    is a complete coarse-grained accelerator instruction. *)

val requant_tail : Pattern.t -> Pattern.t
(** [requant_tail p] wraps a producer pattern in
    [cast(clip(right_shift(p, const)))]. The ReLU variant is the same
    shape with a [\[0, max\]] clip range, so one pattern covers both. *)

val conv2d_pattern : Pattern.t
(** Listing 1: Conv2D - BiasAdd - ReQuant - (ReLU). Weights and bias bind
    as constants. *)

val conv2d_no_bias_pattern : Pattern.t
(** Conv2D - ReQuant without a bias add. *)

val conv2d_pool_pattern : Pattern.t
(** Conv2D - BiasAdd - ReQuant - MaxPool, fusing the pooling into the
    accelerator's output stage. *)

val dense_pattern : Pattern.t
(** Dense - BiasAdd - ReQuant - (ReLU). *)

val dense_no_bias_pattern : Pattern.t
(** Dense - ReQuant without a bias add. *)

val add_pattern : Pattern.t
(** Residual Add - ReQuant. *)

val all : Pattern.t list
(** Patterns in matching priority order (most specific first). *)
