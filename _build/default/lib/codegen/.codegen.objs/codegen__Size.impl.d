lib/codegen/size.ml: Arch Format Fuse Ir List Tensor Util
