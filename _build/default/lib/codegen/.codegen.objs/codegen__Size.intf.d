lib/codegen/size.mli: Arch Format Fuse Ir
