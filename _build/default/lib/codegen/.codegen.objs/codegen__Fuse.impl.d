lib/codegen/fuse.ml: Arch Array Hashtbl Ir List Printf String
