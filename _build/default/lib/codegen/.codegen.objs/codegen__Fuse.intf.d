lib/codegen/fuse.mli: Arch Ir
