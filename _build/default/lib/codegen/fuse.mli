(** TVM-style operator fusion for the host CPU path.

    Unmatched operators fall through to TVM's native lowering in HTVM,
    which emits operator-fused C kernels (paper Sec. III). We reproduce
    the standard fusion rule: a kernel is one optional "heavy" anchor
    (conv / dense / pool / softmax) followed by a chain of light
    elementwise or shape ops, fused as long as each intermediate value has
    a single in-kernel consumer. *)

type kernel = {
  kernel_name : string;
  nodes : Ir.Graph.id list;  (** fused applications, topological order *)
  cycles : int;  (** host cycles per invocation, incl. one call overhead *)
  code_bytes : int;  (** contribution to the binary's text section *)
}

val is_light : Ir.Op.t -> bool
(** Elementwise/shape operators that fuse into a preceding kernel. *)

val kernels :
  cpu:Arch.Cpu_model.t ->
  size:Arch.Platform.size_model ->
  Ir.Graph.t ->
  Ir.Infer.ty array ->
  host_nodes:Ir.Graph.id list ->
  kernel list
(** Group the given host-resident operator nodes (ascending ids) into
    fused kernels with modeled cycles and code size. Every node appears in
    exactly one kernel; kernels are returned in execution order. *)
