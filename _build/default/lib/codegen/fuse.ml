type kernel = {
  kernel_name : string;
  nodes : Ir.Graph.id list;
  cycles : int;
  code_bytes : int;
}

let is_light = function
  | Ir.Op.Bias_add | Ir.Op.Right_shift | Ir.Op.Clip _ | Ir.Op.Cast _ | Ir.Op.Relu
  | Ir.Op.Add | Ir.Op.Reshape _ ->
      true
  | Ir.Op.Conv2d _ | Ir.Op.Dense | Ir.Op.Max_pool _ | Ir.Op.Avg_pool _
  | Ir.Op.Global_avg_pool | Ir.Op.Softmax | Ir.Op.Concat ->
      false

let node_op g id =
  match Ir.Graph.node g id with
  | Ir.Graph.App { op; _ } -> op
  | Ir.Graph.Input _ | Ir.Graph.Const _ ->
      invalid_arg "Fuse: host node is not an operator application"

let kernel_label g nodes =
  match nodes with
  | [] -> "empty"
  | first :: rest ->
      let base = Ir.Op.name (node_op g first) in
      let short s =
        match String.rindex_opt s '.' with
        | Some i -> String.sub s (i + 1) (String.length s - i - 1)
        | None -> s
      in
      if rest = [] then short base
      else Printf.sprintf "%s_fused%d" (short base) (List.length rest)

let kernels ~cpu ~size g tys ~host_nodes =
  let host = List.sort_uniq compare host_nodes in
  let is_host id = List.mem id host in
  let taken = Hashtbl.create 16 in
  let groups = ref [] in
  (* Greedy forward pass: grow each group along the unique-consumer chain
     while the next op is light and host-resident. *)
  List.iter
    (fun id ->
      if not (Hashtbl.mem taken id) then begin
        let group = ref [ id ] in
        Hashtbl.add taken id ();
        let rec extend last =
          match Ir.Graph.consumers g last with
          | [ next ]
            when is_host next && (not (Hashtbl.mem taken next))
                 && is_light (node_op g next) ->
              Hashtbl.add taken next ();
              group := next :: !group;
              extend next
          | _ -> ()
        in
        extend id;
        groups := List.rev !group :: !groups
      end)
    host;
  let groups = List.rev !groups in
  let counter = ref (-1) in
  List.map
    (fun nodes ->
      incr counter;
      let cycles =
        List.fold_left
          (fun acc id ->
            match Ir.Graph.node g id with
            | Ir.Graph.App { op; args } ->
                let arg_tys = List.map (fun a -> tys.(a)) args in
                acc + Arch.Cpu_model.op_cycles cpu op arg_tys tys.(id)
            | Ir.Graph.Input _ | Ir.Graph.Const _ -> acc)
          cpu.Arch.Cpu_model.kernel_call_overhead nodes
      in
      let code_bytes =
        size.Arch.Platform.cpu_kernel_bytes
        + (size.Arch.Platform.cpu_op_bytes * (List.length nodes - 1))
      in
      {
        kernel_name = Printf.sprintf "cpu_%d_%s" !counter (kernel_label g nodes);
        nodes;
        cycles;
        code_bytes;
      })
    groups
