(** Binary-size model (Table I's "Size (kB)" column).

    A deployed HTVM binary is: the runtime base (startup, allocator,
    drivers), the generated text section (fused CPU kernels, accelerator
    driver calls and tile loops), and the constant sections (weights and
    biases). Coarse-grained accelerator instructions need far less code
    than equivalent CPU kernels — the effect that shrinks ResNet's binary
    by 12.3% in the paper — while ternary weights pack to 2 bits but pay
    zero-padding when a spatial convolution maps to the tall IMC macro. *)

type section = { section_name : string; bytes : int }

type report = {
  sections : section list;
  total_bytes : int;
}

val accel_const_bytes : Ir.Layer.t -> accel_name:string -> int
(** Deployed bytes of one offloaded layer's weights + bias. Ternary
    spatial convolutions pad their rows to the full IMC macro height
    (paper Sec. IV-C: "some layer dimensions require padding the L2
    memory with zeros"); 1x1 (FC-like) ternary layers pack tight. *)

val report :
  size_model:Arch.Platform.size_model ->
  cpu_kernels:Fuse.kernel list ->
  accel_layers:(Ir.Layer.t * string * bool) list ->
  (* (layer, accel name, is_tiled) *)
  cpu_const_bytes:int ->
  report

val total_kb : report -> float
val pp : Format.formatter -> report -> unit
