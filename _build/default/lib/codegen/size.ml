type section = { section_name : string; bytes : int }

type report = {
  sections : section list;
  total_bytes : int;
}

let accel_const_bytes (l : Ir.Layer.t) ~accel_name =
  let bias_bytes = match l.Ir.Layer.bias with None -> 0 | Some b -> Tensor.packed_bytes b in
  let weight_bytes =
    match l.Ir.Layer.weights with
    | None -> 0
    | Some w -> (
        let fy, fx = Ir.Layer.kernel_dims l in
        match Tensor.dtype w with
        | Tensor.Dtype.Ternary when fy * fx > 1 && accel_name = "diana_analog" ->
            (* Each output channel occupies a full macro column; unused
               rows are stored as zero padding. *)
            let k = Tensor.dim w 0 in
            Util.Ints.ceil_div (Arch.Diana.imc_rows * 2) 8 * k
        | _ -> Tensor.packed_bytes w)
  in
  weight_bytes + bias_bytes

let report ~size_model ~cpu_kernels ~accel_layers ~cpu_const_bytes =
  let sm = size_model in
  let cpu_code =
    List.fold_left (fun acc k -> acc + k.Fuse.code_bytes) 0 cpu_kernels
  in
  let accel_code =
    List.fold_left
      (fun acc (_, _, tiled) ->
        acc + sm.Arch.Platform.accel_call_bytes
        + if tiled then sm.Arch.Platform.accel_tile_loop_bytes else 0)
      0 accel_layers
  in
  let accel_consts =
    List.fold_left
      (fun acc (l, accel_name, _) -> acc + accel_const_bytes l ~accel_name)
      0 accel_layers
  in
  let sections =
    [
      { section_name = "runtime"; bytes = sm.Arch.Platform.runtime_base_bytes };
      { section_name = "cpu kernels"; bytes = cpu_code };
      { section_name = "accelerator drivers"; bytes = accel_code };
      { section_name = "accelerator constants"; bytes = accel_consts };
      { section_name = "cpu constants"; bytes = cpu_const_bytes };
    ]
  in
  let total_bytes = List.fold_left (fun acc s -> acc + s.bytes) 0 sections in
  { sections; total_bytes }

let total_kb r = float_of_int r.total_bytes /. 1024.0

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun s -> Format.fprintf fmt "%-22s %8d B@," s.section_name s.bytes)
    r.sections;
  Format.fprintf fmt "%-22s %8d B (%.1f kB)@]" "total" r.total_bytes (total_kb r)
