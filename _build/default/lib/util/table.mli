(** Plain-text table rendering for benchmark reports.

    The bench harness reproduces the paper's tables as aligned ASCII rows;
    this module owns the column layout logic. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the header and rows out in aligned columns
    separated by two spaces, with a rule under the header. [align] gives
    per-column alignment (default all [Left]; shorter lists are padded with
    [Left]). Rows shorter than the header are padded with empty cells. *)

val render_markdown : header:string list -> string list list -> string
(** Same data rendered as a GitHub-flavoured markdown table (used by
    EXPERIMENTS.md regeneration). *)
