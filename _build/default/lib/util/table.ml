type align = Left | Right

let pad_row width row =
  if List.length row >= width then row
  else row @ List.init (width - List.length row) (fun _ -> "")

let column_widths header rows =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let account row =
    List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row
  in
  account header;
  List.iter account rows;
  widths

let pad align width s =
  let fill = String.make (width - String.length s) ' ' in
  match align with Left -> s ^ fill | Right -> fill ^ s

let aligns_for ncols align =
  let provided = match align with None -> [] | Some l -> l in
  List.init ncols (fun i -> match List.nth_opt provided i with Some a -> a | None -> Left)

let render ?align ~header rows =
  let ncols = List.length header in
  let rows = List.map (pad_row ncols) rows in
  let widths = column_widths header rows in
  let aligns = aligns_for ncols align in
  let line row =
    List.mapi (fun i cell -> pad (List.nth aligns i) widths.(i) cell) row
    |> String.concat "  "
  in
  let rule = Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  " in
  String.concat "\n" (line header :: rule :: List.map line rows) ^ "\n"

let render_markdown ~header rows =
  let ncols = List.length header in
  let rows = List.map (pad_row ncols) rows in
  let line row = "| " ^ String.concat " | " row ^ " |" in
  let rule = "|" ^ String.concat "|" (List.init ncols (fun _ -> "---")) ^ "|" in
  String.concat "\n" (line header :: rule :: List.map line rows) ^ "\n"
