type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let ternary t =
  match int t 4 with
  | 0 -> -1
  | 1 -> 1
  | _ -> 0

let int8 t = int_in t (-128) 127

let split t =
  let seed = Int64.to_int (next_int64 t) in
  { state = Int64.of_int seed }
