let ceil_div a b =
  assert (b > 0);
  (a + b - 1) / b

let round_up a b = ceil_div a b * b

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2_ceil n =
  assert (n >= 1);
  let rec go k p = if p >= n then k else go (k + 1) (p * 2) in
  go 0 1

let divisors n =
  assert (n > 0);
  let rec go d acc = if d > n then List.rev acc else go (d + 1) (if n mod d = 0 then d :: acc else acc) in
  go 1 []

let kib n = n * 1024
