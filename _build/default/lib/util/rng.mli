(** Deterministic pseudo-random number generation.

    All synthetic data in this repository (weights, inputs, fuzz cases that
    are not driven by QCheck) flows through this SplitMix64 generator so
    that every experiment is reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the SplitMix64 sequence. *)

val int : t -> int -> int
(** [int t bound] draws a uniform integer in [\[0, bound)]. [bound] must be
    positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly in the inclusive range [\[lo, hi\]]. *)

val bool : t -> bool
(** Uniform boolean. *)

val ternary : t -> int
(** Draws a ternary weight in [{-1; 0; 1}], with zero twice as likely as
    either non-zero value (sparse-ish ternary networks). *)

val int8 : t -> int
(** Uniform int8 value in [\[-128, 127\]]. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)
