lib/util/table.mli:
