lib/util/rng.mli:
