lib/util/ints.mli:
