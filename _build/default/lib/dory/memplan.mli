(** L2 activation-memory planning.

    HTVM emits a static schedule for allocating and freeing intermediate
    activation tensors in main memory (paper Sec. III). Buffers are
    intervals over the segment index (birth = producing segment, death =
    last consuming segment); the planner packs them into a fixed-capacity
    arena. Two strategies:

    - [Reuse]: first-fit with liveness-based reuse — HTVM's planner.
    - [No_reuse]: every buffer gets a distinct region — models the plain
      TVM baseline whose MobileNet deployment runs out of memory in
      Table I. *)

type request = {
  buffer_id : int;
  bytes : int;
  birth : int;  (** index of the producing step *)
  death : int;  (** index of the last consuming step; >= birth *)
}

type placement = { p_buffer_id : int; offset : int; size : int }

type strategy = Reuse | No_reuse

type result = {
  placements : placement list;
  peak_bytes : int;  (** high-water mark of the arena *)
}

val plan :
  strategy -> capacity:int -> align:int -> request list ->
  (result, string) Stdlib.result
(** Pack all requests into [capacity] bytes. [Error] describes the first
    buffer that does not fit (the out-of-memory diagnosis). Placements of
    overlapping lifetimes never overlap in space — tested property. *)

val find : result -> int -> placement
(** Placement of a buffer id.
    @raise Not_found if the id was not planned. *)
