(** DORY-style C source emission.

    Renders a tiled schedule as the C driver function DORY would generate:
    weight-load calls, a tile loop with explicit DMA in/out transfers and
    accelerator invocations, using double-buffered L1 halves when enabled.
    The text is a faithful, inspectable artifact of the compilation (the
    simulator executes the schedule structure itself, so the two cannot
    drift apart). *)

val layer_function_name : int -> string
(** Name for the [n]-th generated layer function. *)

val emit_layer : index:int -> Schedule.t -> string
(** C source of one layer's driver function. *)

val emit_network : (int * Schedule.t) list -> string
(** Concatenated translation unit with a network run function calling each
    layer in order. *)
