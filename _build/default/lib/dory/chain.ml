module L = Ir.Layer

type t = {
  first : L.t;
  second : L.t;
  stripe_rows : int;
  stripes : int;
}

let conv_params (l : L.t) =
  match l.L.kind with L.Conv p -> Some p | _ -> None

let compatible (a : L.t) (b : L.t) =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  match (conv_params a, conv_params b) with
  | None, _ | _, None -> err "depth-first fusion needs two convolutions"
  | Some _, Some _ ->
      if a.L.fused_pool <> None || b.L.fused_pool <> None then
        err "fused output pooling is not supported in a chain"
      else if a.L.out_shape <> b.L.in_shape then err "layer shapes do not chain"
      else if Tensor.Dtype.sim_bytes a.L.out_dtype <> 1 then
        err "intermediate must be a 1-byte activation type"
      else Ok ()

(* Rows of the producer needed for rows [o0, o0+n) of a convolution's
   output, clipped against the producer's height. *)
let window ~o0 ~n ~stride ~kernel ~pad ~dim =
  let lo = (o0 * stride) - pad in
  let hi = ((o0 + n - 1) * stride) - pad + kernel - 1 in
  let lo_c = max 0 lo and hi_c = min (dim - 1) hi in
  (lo_c, hi_c - lo_c + 1, lo_c - lo, hi - hi_c)

let layer_window (l : L.t) ~o0 ~n =
  let p = Option.get (conv_params l) in
  let fy, _ = L.kernel_dims l in
  window ~o0 ~n
    ~stride:(fst p.Nn.Kernels.stride)
    ~kernel:fy
    ~pad:(fst p.Nn.Kernels.padding)
    ~dim:l.L.in_shape.(1)

let mid_rows_for t o0 =
  let n = min t.stripe_rows (t.second.L.out_shape.(1) - o0) in
  layer_window t.second ~o0 ~n

let in_rows_for t o0 =
  let mid_lo, mid_n, _, _ = mid_rows_for t o0 in
  layer_window t.first ~o0:mid_lo ~n:mid_n

let stripe_bytes_at t o0 =
  let n = min t.stripe_rows (t.second.L.out_shape.(1) - o0) in
  let _, in_n, _, _ = in_rows_for t o0 in
  let _, mid_n, _, _ = mid_rows_for t o0 in
  let w0 = t.first.L.in_shape.(2)
  and c0 = t.first.L.in_shape.(0)
  and k1 = t.first.L.out_shape.(0)
  and w1 = t.first.L.out_shape.(2)
  and k2 = t.second.L.out_shape.(0)
  and w2 = t.second.L.out_shape.(2) in
  (c0 * in_n * w0) + (k1 * mid_n * w1) + (k2 * n * w2)

let with_stripe first second stripe_rows =
  let oh = second.L.out_shape.(1) in
  { first; second; stripe_rows; stripes = Util.Ints.ceil_div oh stripe_rows }

let l1_stripe_bytes t =
  let rec worst o0 acc =
    if o0 >= t.second.L.out_shape.(1) then acc
    else worst (o0 + t.stripe_rows) (max acc (stripe_bytes_at t o0))
  in
  worst 0 0

let plan ~l1_budget first second =
  match compatible first second with
  | Error e -> Error e
  | Ok () ->
      let oh = second.L.out_shape.(1) in
      let rec down n =
        if n < 1 then
          Error
            (Printf.sprintf "no stripe of the fused pair fits %d B of L1" l1_budget)
        else
          let t = with_stripe first second n in
          if l1_stripe_bytes t <= l1_budget then Ok t else down (n - 1)
      in
      down oh

let recompute_factor t =
  let h1 = t.first.L.out_shape.(1) in
  let rec total o0 acc =
    if o0 >= t.second.L.out_shape.(1) then acc
    else
      let _, mid_n, _, _ = mid_rows_for t o0 in
      total (o0 + t.stripe_rows) (acc + mid_n)
  in
  float_of_int (total 0 0) /. float_of_int h1

let numel shape = Array.fold_left ( * ) 1 shape

let l2_peak_fused t = numel t.first.L.in_shape + numel t.second.L.out_shape

let l2_peak_sequential t =
  let a = numel t.first.L.in_shape
  and m = numel t.first.L.out_shape
  and b = numel t.second.L.out_shape in
  max (a + m) (m + b)
