lib/dory/schedule.ml: Arch Array Format Ir List Nn
