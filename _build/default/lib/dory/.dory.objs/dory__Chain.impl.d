lib/dory/chain.ml: Array Format Ir Nn Option Printf Tensor Util
