lib/dory/chain.mli: Ir
