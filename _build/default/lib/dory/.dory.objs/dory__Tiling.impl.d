lib/dory/tiling.ml: Arch Ir List Printf Util
