lib/dory/memplan.ml: List Printf Util
