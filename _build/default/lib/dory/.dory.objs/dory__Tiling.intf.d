lib/dory/tiling.mli: Arch Ir
