lib/dory/emit.mli: Schedule
