lib/dory/schedule.mli: Arch Ir
