lib/dory/emit.ml: Arch Buffer Ir List Printf Schedule
