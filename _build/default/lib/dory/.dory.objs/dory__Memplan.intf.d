lib/dory/memplan.mli: Stdlib
