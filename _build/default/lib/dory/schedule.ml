module L = Ir.Layer
module Tile = Arch.Tile

type instance = {
  k0 : int;
  oy0 : int;
  ox0 : int;
  dims : Tile.t;
  iy0 : int;
  ix0 : int;
  pad_top : int;
  pad_left : int;
  pad_bottom : int;
  pad_right : int;
  load_weights : bool;
}

type t = {
  layer : L.t;
  accel_name : string;
  nominal : Tile.t;
  instances : instance list;
  double_buffer : bool;
}

let grid total step =
  let rec go o acc = if o >= total then List.rev acc else go (o + step) (o :: acc) in
  go 0 []

(* Input window of an output span [o0, o0+n) along one axis: origin, valid
   extent and leading/trailing padding against a dimension of size [dim]. *)
let window ~o0 ~n ~stride ~kernel ~pad ~dim =
  let lo = (o0 * stride) - pad in
  let hi = ((o0 + n - 1) * stride) - pad + kernel - 1 in
  let lo_c = max 0 lo and hi_c = min (dim - 1) hi in
  let origin = lo_c in
  let valid = hi_c - lo_c + 1 in
  (origin, valid, lo_c - lo, hi - hi_c)

let conv_like_instances (l : L.t) ~kernel:(fy, fx) ~stride:(sy, sx) ~pad:(py, px)
    (nominal : Tile.t) =
  let kk = l.L.out_shape.(0) and oh = l.L.out_shape.(1) and ow = l.L.out_shape.(2) in
  let h = l.L.in_shape.(1) and w = l.L.in_shape.(2) in
  let dw = L.is_depthwise l in
  (* A fused output pool makes tile coordinates live in pooled space; the
     input window is computed through the pre-pool (convolution) span. *)
  let pool_params =
    match l.L.fused_pool with
    | None -> ((1, 1), (1, 1))
    | Some { Ir.Op.pool; pool_stride } -> (pool, pool_stride)
  in
  let (pwy, pwx), (psy, psx) = pool_params in
  List.concat_map
    (fun k0 ->
      let kdim = min nominal.Tile.k (kk - k0) in
      let first = ref true in
      List.concat_map
        (fun oy0 ->
          let oydim = min nominal.Tile.oy (oh - oy0) in
          let conv_oy0 = oy0 * psy and conv_ny = ((oydim - 1) * psy) + pwy in
          let iy0, iyv, pt, pb =
            window ~o0:conv_oy0 ~n:conv_ny ~stride:sy ~kernel:fy ~pad:py ~dim:h
          in
          List.map
            (fun ox0 ->
              let oxdim = min nominal.Tile.ox (ow - ox0) in
              let conv_ox0 = ox0 * psx and conv_nx = ((oxdim - 1) * psx) + pwx in
              let ix0, ixv, pl, pr =
                window ~o0:conv_ox0 ~n:conv_nx ~stride:sx ~kernel:fx ~pad:px ~dim:w
              in
              let load_weights = l.L.weights <> None && !first in
              first := false;
              {
                k0;
                oy0;
                ox0;
                dims =
                  {
                    Tile.c = (if dw then kdim else nominal.Tile.c);
                    k = kdim;
                    oy = oydim;
                    ox = oxdim;
                    iy = iyv;
                    ix = ixv;
                  };
                iy0;
                ix0;
                pad_top = pt;
                pad_left = pl;
                pad_bottom = pb;
                pad_right = pr;
                load_weights;
              })
            (grid ow nominal.Tile.ox))
        (grid oh nominal.Tile.oy))
    (grid kk nominal.Tile.k)

let build (l : L.t) ~accel_name ~tile ~double_buffer =
  let instances =
    match l.L.kind with
    | L.Conv p ->
        conv_like_instances l ~kernel:(L.kernel_dims l) ~stride:p.Nn.Kernels.stride
          ~pad:p.Nn.Kernels.padding tile
    | L.Pool { attrs = { Ir.Op.pool; pool_stride }; _ } ->
        conv_like_instances l ~kernel:pool ~stride:pool_stride ~pad:(0, 0) tile
    | L.Dense ->
        let kk = l.L.out_shape.(0) in
        List.map
          (fun k0 ->
            let kdim = min tile.Tile.k (kk - k0) in
            {
              k0;
              oy0 = 0;
              ox0 = 0;
              dims = { tile with Tile.k = kdim };
              iy0 = 0;
              ix0 = 0;
              pad_top = 0;
              pad_left = 0;
              pad_bottom = 0;
              pad_right = 0;
              load_weights = true;
            })
          (grid kk tile.Tile.k)
    | L.Add ->
        let oh = l.L.in_shape.(1) in
        List.map
          (fun oy0 ->
            let oydim = min tile.Tile.oy (oh - oy0) in
            {
              k0 = 0;
              oy0;
              ox0 = 0;
              dims = { tile with Tile.oy = oydim; Tile.iy = oydim };
              iy0 = oy0;
              ix0 = 0;
              pad_top = 0;
              pad_left = 0;
              pad_bottom = 0;
              pad_right = 0;
              load_weights = false;
            })
          (grid oh tile.Tile.oy)
  in
  { layer = l; accel_name; nominal = tile; instances; double_buffer }

let tile_count t = List.length t.instances
let is_tiled t = tile_count t > 1

let input_slice_dims t inst =
  match t.layer.L.kind with
  | L.Dense -> (inst.dims.Tile.c, 1, 1)
  | L.Conv _ | L.Pool _ | L.Add -> (inst.dims.Tile.c, inst.dims.Tile.iy, inst.dims.Tile.ix)

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let l = t.layer in
  let out_elems =
    List.fold_left
      (fun acc i -> acc + (i.dims.Tile.k * i.dims.Tile.oy * i.dims.Tile.ox))
      0 t.instances
  in
  let expected =
    match l.L.kind with
    | L.Dense -> l.L.out_shape.(0)
    | L.Conv _ | L.Pool _ | L.Add -> Array.fold_left ( * ) 1 l.L.out_shape
  in
  if out_elems <> expected then
    err "instances cover %d output elements, layer has %d" out_elems expected
  else
    let window_ok =
      match l.L.kind with
      | L.Conv _ ->
          let fy, fx = L.kernel_dims l in
          let sy, sx =
            match l.L.kind with L.Conv p -> p.Nn.Kernels.stride | _ -> (1, 1)
          in
          List.for_all
            (fun i ->
              let cy, cx = Tile.conv_extent l i.dims.Tile.oy i.dims.Tile.ox in
              i.pad_top + i.dims.Tile.iy + i.pad_bottom = ((cy - 1) * sy) + fy
              && i.pad_left + i.dims.Tile.ix + i.pad_right = ((cx - 1) * sx) + fx)
            t.instances
      | L.Dense | L.Add | L.Pool _ -> true
    in
    if not window_ok then err "an instance's input window does not cover its output"
    else Ok ()
