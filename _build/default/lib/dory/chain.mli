(** Depth-first (fused) execution of convolution layer pairs.

    The paper's background (Sec. II-B) contrasts DORY's layer-by-layer
    tiling with depth-first execution (MCUNetv2 [11], Goetschalckx's
    enhanced depth-first [12]) that trades recompute for peak-memory
    reduction. This module plans such a fusion for a pair of back-to-back
    convolution layers: the pair's intermediate activation never
    materializes in L2 — full-width row stripes of it live briefly in L1
    while the second layer consumes them, with halo rows recomputed per
    stripe.

    The executor lives in {!Sim.Exec_chain}; results are bit-exact against
    running the two layers sequentially (each output stripe is computed
    from the input alone). *)

type t = {
  first : Ir.Layer.t;
  second : Ir.Layer.t;
  stripe_rows : int;  (** rows of the second layer's output per stripe *)
  stripes : int;
}

val compatible : Ir.Layer.t -> Ir.Layer.t -> (unit, string) result
(** Both plain convolutions (no fused pools), shapes chained, int8-out
    intermediate. *)

(* Planning: *)

val l1_stripe_bytes : t -> int
(** L1 bytes one stripe needs: input window + intermediate window + output
    stripe. *)

val plan : l1_budget:int -> Ir.Layer.t -> Ir.Layer.t -> (t, string) result
(** Choose the tallest stripe whose working set fits the budget. *)

val mid_rows_for : t -> int -> int * int * int * int
(** [(mid_lo, mid_valid, pad_top, pad_bottom)] of the intermediate rows
    the stripe starting at final-output row [o0] consumes. *)

val in_rows_for : t -> int -> int * int * int * int
(** Same for the input rows the stripe's intermediate rows require. *)

val recompute_factor : t -> float
(** Intermediate rows computed (with halo overlap) divided by the
    intermediate's true height — the depth-first recompute overhead. *)

val l2_peak_fused : t -> int
(** Peak L2 activation bytes with the fused pair (input + final output —
    the intermediate is gone). *)

val l2_peak_sequential : t -> int
(** Peak L2 activation bytes of the layer-by-layer schedule of the pair. *)
