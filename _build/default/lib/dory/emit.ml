module L = Ir.Layer
module Tile = Arch.Tile

let layer_function_name i = Printf.sprintf "htvm_layer_%d" i

let kind_name (l : L.t) =
  match l.L.kind with
  | L.Conv _ when L.is_depthwise l -> "dwconv2d"
  | L.Conv _ -> "conv2d"
  | L.Dense -> "dense"
  | L.Add -> "add"
  | L.Pool { max = true; _ } -> "maxpool"
  | L.Pool { max = false; _ } -> "avgpool"

let emit_layer ~index (s : Schedule.t) =
  let b = Buffer.create 1024 in
  let l = s.layer in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  add "// %s on %s — %d tile(s), nominal %s\n" (L.describe l) s.accel_name
    (Schedule.tile_count s) (Tile.to_string s.nominal);
  add "void %s(const int8_t *l2_in, int8_t *l2_out, const uint8_t *l2_weights) {\n"
    (layer_function_name index);
  if s.double_buffer && Schedule.is_tiled s then
    add "  l1_buffers_t buf = l1_double_buffers(%d);\n"
      (Tile.bytes_in l s.nominal + Tile.bytes_out l s.nominal)
  else add "  l1_buffers_t buf = l1_single_buffers();\n";
  List.iteri
    (fun ti (inst : Schedule.instance) ->
      let c, iy, ix = Schedule.input_slice_dims s inst in
      if inst.Schedule.load_weights then
        add "  %s_load_weights(l2_weights + w_off_k%d, /*k=*/%d);\n" s.accel_name
          inst.Schedule.k0 inst.Schedule.dims.Tile.k;
      add "  dma_in(buf.in[%d], l2_in, /*c=%d iy=%d ix=%d at (%d,%d)*/);\n" (ti land 1) c
        iy ix inst.Schedule.iy0 inst.Schedule.ix0;
      add "  %s_%s(buf.in[%d], buf.out[%d], /*k=%d oy=%d ox=%d pad=%d%d%d%d*/);\n"
        s.accel_name (kind_name l) (ti land 1) (ti land 1) inst.Schedule.dims.Tile.k
        inst.Schedule.dims.Tile.oy inst.Schedule.dims.Tile.ox inst.Schedule.pad_top
        inst.Schedule.pad_left inst.Schedule.pad_bottom inst.Schedule.pad_right;
      add "  dma_out(l2_out, buf.out[%d], /*k=%d oy=%d ox=%d at (%d,%d,%d)*/);\n"
        (ti land 1) inst.Schedule.dims.Tile.k inst.Schedule.dims.Tile.oy
        inst.Schedule.dims.Tile.ox inst.Schedule.k0 inst.Schedule.oy0 inst.Schedule.ox0)
    s.instances;
  add "}\n";
  Buffer.contents b

let emit_network schedules =
  let b = Buffer.create 4096 in
  Buffer.add_string b "#include \"htvm_runtime.h\"\n\n";
  List.iter (fun (i, s) -> Buffer.add_string b (emit_layer ~index:i s); Buffer.add_char b '\n')
    schedules;
  Buffer.add_string b "void htvm_network_run(void) {\n";
  List.iter
    (fun (i, _) -> Buffer.add_string b (Printf.sprintf "  %s(...);\n" (layer_function_name i)))
    schedules;
  Buffer.add_string b "}\n";
  Buffer.contents b
