(** Tiled execution schedules — the structured equivalent of DORY's
    generated C.

    A schedule unrolls a tiling solution into concrete tile instances:
    which output slice each tile produces, which (clipped) input window it
    needs, how much zero padding the window carries at the layer borders,
    and whether the accelerator's weight memory must be refilled before
    the tile runs. The SoC simulator executes schedules directly; the C
    emitter prints them as DORY-style driver code. *)

type instance = {
  k0 : int;  (** first output channel of the tile *)
  oy0 : int;
  ox0 : int;  (** output-space origin *)
  dims : Arch.Tile.t;  (** clipped dims of this instance *)
  iy0 : int;
  ix0 : int;  (** input-window origin in valid-input coordinates *)
  pad_top : int;
  pad_left : int;
  pad_bottom : int;
  pad_right : int;  (** zero rows/cols the window extends past the edges *)
  load_weights : bool;  (** weight memory refill needed (k-tile changed) *)
}

type t = {
  layer : Ir.Layer.t;
  accel_name : string;
  nominal : Arch.Tile.t;
  instances : instance list;  (** k-major, then rows, then columns *)
  double_buffer : bool;
}

val build : Ir.Layer.t -> accel_name:string -> tile:Arch.Tile.t -> double_buffer:bool -> t
(** Unroll a tiling solution over the layer's full output space. *)

val tile_count : t -> int
val is_tiled : t -> bool

val input_slice_dims : t -> instance -> int * int * int
(** (channels, rows, cols) of the valid input data the instance reads
    (padding excluded) — the extent of its DMA-in transfer. *)

val validate : t -> (unit, string) result
(** Coverage check: instances partition the output space exactly (no gaps,
    no overlaps) and all windows stay within the padded input. *)
