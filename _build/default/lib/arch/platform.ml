type size_model = {
  runtime_base_bytes : int;
  cpu_kernel_bytes : int;
  cpu_op_bytes : int;
  accel_call_bytes : int;
  accel_tile_loop_bytes : int;
}

type t = {
  platform_name : string;
  freq_mhz : int;
  l1 : Memory.level;
  l2 : Memory.level;
  dma : Memory.dma;
  cpu : Cpu_model.t;
  accels : Accel.t list;
  size_model : size_model;
}

let find_accel t name =
  match List.find_opt (fun a -> a.Accel.accel_name = name) t.accels with
  | Some a -> a
  | None -> raise Not_found

let with_accels t names =
  let accels = List.map (find_accel t) names in
  { t with accels }

let ms_of_cycles t cycles =
  float_of_int cycles /. (float_of_int t.freq_mhz *. 1000.0)
