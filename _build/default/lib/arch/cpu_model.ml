type t = {
  cpu_name : string;
  conv_cycles_per_mac : float;
  dense_cycles_per_mac : float;
  depthwise_cycles_per_mac : float;
  elementwise_cycles_per_elt : float;
  pool_cycles_per_elt : float;
  softmax_cycles_per_elt : float;
  data_move_cycles_per_byte : float;
  kernel_call_overhead : int;
}

let numel shape = Array.fold_left ( * ) 1 shape

let op_cycles m (op : Ir.Op.t) (args : Ir.Infer.ty list) (out : Ir.Infer.ty) =
  let f2i f = int_of_float (Float.round f) in
  match op with
  | Ir.Op.Conv2d p ->
      let data = List.nth args 0 and w = List.nth args 1 in
      let macs =
        numel out.Ir.Infer.shape
        * (data.Ir.Infer.shape.(0) / p.Nn.Kernels.groups)
        * w.Ir.Infer.shape.(2) * w.Ir.Infer.shape.(3)
      in
      let per_mac =
        if p.Nn.Kernels.groups > 1 then m.depthwise_cycles_per_mac
        else m.conv_cycles_per_mac
      in
      f2i (float_of_int macs *. per_mac)
  | Ir.Op.Dense ->
      let w = List.nth args 1 in
      let macs = w.Ir.Infer.shape.(0) * w.Ir.Infer.shape.(1) in
      f2i (float_of_int macs *. m.dense_cycles_per_mac)
  | Ir.Op.Bias_add | Ir.Op.Right_shift | Ir.Op.Clip _ | Ir.Op.Cast _ | Ir.Op.Relu
  | Ir.Op.Add ->
      f2i (float_of_int (numel out.Ir.Infer.shape) *. m.elementwise_cycles_per_elt)
  | Ir.Op.Max_pool { pool = py, px; _ } | Ir.Op.Avg_pool { pool = py, px; _ } ->
      f2i (float_of_int (numel out.Ir.Infer.shape * py * px) *. m.pool_cycles_per_elt)
  | Ir.Op.Global_avg_pool ->
      let data = List.nth args 0 in
      f2i (float_of_int (numel data.Ir.Infer.shape) *. m.pool_cycles_per_elt)
  | Ir.Op.Softmax ->
      f2i (float_of_int (numel out.Ir.Infer.shape) *. m.softmax_cycles_per_elt)
  | Ir.Op.Concat ->
      (* A pure data movement: both operands are copied once. *)
      f2i (float_of_int (numel out.Ir.Infer.shape) *. m.data_move_cycles_per_byte)
  | Ir.Op.Reshape _ ->
      (* Lowered to a pointer rebind; charged as a pure call overhead. *)
      0

let layer_cycles m (l : Ir.Layer.t) =
  let f2i f = int_of_float (Float.round f) in
  let macs = Ir.Layer.macs l in
  let compute =
    match l.Ir.Layer.kind with
    | Ir.Layer.Conv _ when Ir.Layer.is_depthwise l ->
        f2i (float_of_int macs *. m.depthwise_cycles_per_mac)
    | Ir.Layer.Conv _ -> f2i (float_of_int macs *. m.conv_cycles_per_mac)
    | Ir.Layer.Dense -> f2i (float_of_int macs *. m.dense_cycles_per_mac)
    | Ir.Layer.Add -> f2i (float_of_int macs *. m.elementwise_cycles_per_elt)
    | Ir.Layer.Pool _ -> f2i (float_of_int macs *. m.pool_cycles_per_elt)
  in
  let epilogue =
    let outs = numel l.Ir.Layer.out_shape in
    f2i (float_of_int outs *. m.elementwise_cycles_per_elt)
  in
  m.kernel_call_overhead + compute + epilogue
