lib/arch/memory.ml: Array Ir Tile Util
