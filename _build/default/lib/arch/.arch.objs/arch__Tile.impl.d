lib/arch/tile.ml: Array Format Ir Nn Tensor Util
