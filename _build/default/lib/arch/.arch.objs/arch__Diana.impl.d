lib/arch/diana.ml: Accel Array Cpu_model Ir Memory Nn Platform Tensor Tile Util
