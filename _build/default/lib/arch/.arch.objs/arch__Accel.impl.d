lib/arch/accel.ml: Ir Tile
