lib/arch/tile.mli: Format Ir
