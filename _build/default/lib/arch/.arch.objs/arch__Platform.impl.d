lib/arch/platform.ml: Accel Cpu_model List Memory
