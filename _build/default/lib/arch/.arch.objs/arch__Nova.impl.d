lib/arch/nova.ml: Accel Array Cpu_model Ir Memory Nn Platform Tensor Tile Util
