lib/arch/memory.mli: Ir Tile
