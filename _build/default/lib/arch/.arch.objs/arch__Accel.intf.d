lib/arch/accel.mli: Ir Tile
