lib/arch/cpu_model.ml: Array Float Ir List Nn
