lib/arch/cpu_model.mli: Ir
