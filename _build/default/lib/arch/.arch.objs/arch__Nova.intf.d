lib/arch/nova.mli: Accel Cpu_model Platform
