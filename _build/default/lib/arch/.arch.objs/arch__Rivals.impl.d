lib/arch/rivals.ml: Array Cpu_model Ir List
