lib/arch/platform.mli: Accel Cpu_model Memory
