lib/arch/rivals.mli: Cpu_model Ir
