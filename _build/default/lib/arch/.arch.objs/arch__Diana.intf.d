lib/arch/diana.mli: Accel Cpu_model Platform
