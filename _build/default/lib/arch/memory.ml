type level = { level_name : string; size_bytes : int }

type dma = {
  setup_cycles : int;
  per_chunk_cycles : int;
  bytes_per_cycle : int;
}

let transfer_cycles dma ~chunks ~bytes =
  if bytes = 0 then 0
  else
    dma.setup_cycles + (chunks * dma.per_chunk_cycles)
    + Util.Ints.ceil_div bytes dma.bytes_per_cycle

let tile_chunks (l : Ir.Layer.t) (t : Tile.t) ~input =
  match l.Ir.Layer.kind with
  | Ir.Layer.Dense -> 1
  | Ir.Layer.Conv _ | Ir.Layer.Pool _ | Ir.Layer.Add ->
      let full_w, rows, chans =
        if input then (l.in_shape.(2), t.iy, t.c) else (l.out_shape.(2), t.oy, t.k)
      in
      let cols = if input then t.ix else t.ox in
      (* A full-width slab is contiguous across its rows within a channel;
         a narrower window needs one chunk per row. *)
      let per_operand = if cols >= full_w then chans else chans * rows in
      let operands =
        match l.Ir.Layer.kind with Ir.Layer.Add when input -> 2 | _ -> 1
      in
      operands * per_operand
