(** Host-CPU cycle model.

    Models a scalar/SIMD MCU core running TVM-style generated C kernels.
    Per-operator costs are expressed in cycles per MAC (for compute-bound
    kernels) or cycles per element (for memory-bound elementwise ones),
    plus a per-kernel call overhead. Instances for DIANA's RISC-V and the
    Table II rival platforms live in {!Diana} and {!Rivals}. *)

type t = {
  cpu_name : string;
  conv_cycles_per_mac : float;
  dense_cycles_per_mac : float;
  depthwise_cycles_per_mac : float;
  elementwise_cycles_per_elt : float;  (** add/relu/requant chains *)
  pool_cycles_per_elt : float;         (** per input element visited *)
  softmax_cycles_per_elt : float;
  data_move_cycles_per_byte : float;   (** reshape/layout copies *)
  kernel_call_overhead : int;          (** prologue + dispatch per kernel *)
}

val op_cycles : t -> Ir.Op.t -> Ir.Infer.ty list -> Ir.Infer.ty -> int
(** Cycles for one operator application given argument and result types
    (excluding the per-kernel call overhead, which is charged once per
    fused kernel). *)

val layer_cycles : t -> Ir.Layer.t -> int
(** Cycles for a whole fused layer run on the CPU (used for rival-platform
    estimates), including one call overhead. *)
