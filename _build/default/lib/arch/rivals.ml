let stm32_tvm =
  {
    Cpu_model.cpu_name = "stm32l4r5-tvm";
    conv_cycles_per_mac = 3.7;
    dense_cycles_per_mac = 6.0;
    depthwise_cycles_per_mac = 7.0;
    elementwise_cycles_per_elt = 3.0;
    pool_cycles_per_elt = 3.0;
    softmax_cycles_per_elt = 60.0;
    data_move_cycles_per_byte = 1.5;
    kernel_call_overhead = 600;
  }

let stm32_cmsis =
  {
    Cpu_model.cpu_name = "stm32l4r5-cmsis-nn";
    conv_cycles_per_mac = 3.7;
    dense_cycles_per_mac = 4.4;
    depthwise_cycles_per_mac = 5.0;
    elementwise_cycles_per_elt = 2.0;
    pool_cycles_per_elt = 2.0;
    softmax_cycles_per_elt = 50.0;
    data_move_cycles_per_byte = 1.0;
    kernel_call_overhead = 600;
  }

let gap9_gapflow =
  {
    Cpu_model.cpu_name = "gap9-gapflow";
    conv_cycles_per_mac = 0.014;
    dense_cycles_per_mac = 0.4;
    depthwise_cycles_per_mac = 0.12;
    elementwise_cycles_per_elt = 0.15;
    pool_cycles_per_elt = 0.2;
    softmax_cycles_per_elt = 10.0;
    data_move_cycles_per_byte = 0.1;
    kernel_call_overhead = 1200;
  }

let anchor_op = function
  | Ir.Op.Conv2d _ | Ir.Op.Dense | Ir.Op.Add | Ir.Op.Max_pool _ | Ir.Op.Avg_pool _
  | Ir.Op.Global_avg_pool | Ir.Op.Softmax | Ir.Op.Concat ->
      true
  | Ir.Op.Bias_add | Ir.Op.Right_shift | Ir.Op.Clip _ | Ir.Op.Cast _ | Ir.Op.Relu
  | Ir.Op.Reshape _ ->
      false

let estimate_graph_cycles model g =
  let tys = Ir.Infer.infer g in
  List.fold_left
    (fun acc id ->
      match Ir.Graph.node g id with
      | Ir.Graph.App { op; args } ->
          let arg_tys = List.map (fun a -> tys.(a)) args in
          let base = Cpu_model.op_cycles model op arg_tys tys.(id) in
          let call = if anchor_op op then model.Cpu_model.kernel_call_overhead else 0 in
          acc + base + call
      | Ir.Graph.Input _ | Ir.Graph.Const _ -> acc)
    0 (Ir.Graph.node_ids g)

let estimate_graph_ms ?(freq_mhz = 260) model g =
  float_of_int (estimate_graph_cycles model g) /. (float_of_int freq_mhz *. 1000.0)
