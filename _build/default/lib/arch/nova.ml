module L = Ir.Layer

let cd = Util.Ints.ceil_div
let array_dim = 16

let supports (l : L.t) =
  match l.L.kind with
  | L.Conv p ->
      let fy, fx = L.kernel_dims l in
      L.weight_dtype l = Some Tensor.Dtype.I8
      && l.L.fused_pool = None
      && p.Nn.Kernels.groups = 1
      && p.Nn.Kernels.stride = (1, 1)
      && fy <= 3 && fx <= 3
  | L.Dense -> L.weight_dtype l = Some Tensor.Dtype.I8
  | L.Add | L.Pool _ -> false

(* Systolic GEMM: C and K unroll over the array; spatial positions and
   filter taps stream through. *)
let compute_cycles (l : L.t) (t : Tile.t) =
  let fy, fx = L.kernel_dims l in
  match l.L.kind with
  | L.Conv _ ->
      let cy, cx = Tile.conv_extent l t.Tile.oy t.Tile.ox in
      cy * cx * fy * fx * cd t.Tile.c array_dim * cd t.Tile.k array_dim
  | L.Dense -> cd t.Tile.c array_dim * cd t.Tile.k array_dim
  | L.Add | L.Pool _ -> 0

(* Weights stream from L1 with the activations: loading is one pass over
   the tile's weight bytes at the array's ingest width. *)
let weight_load_cycles (l : L.t) (t : Tile.t) =
  match l.L.weights with
  | None -> 0
  | Some _ -> 16 + cd (Tile.bytes_weights l t) 8

let h_k_align =
  {
    Accel.h_name = "gemm_k_align";
    beta = 1.0;
    score = (fun _ t -> float_of_int ((t.Tile.k - 1) mod array_dim) /. 15.0);
  }

let h_c_align =
  {
    Accel.h_name = "gemm_c_align";
    beta = 1.0;
    score = (fun _ t -> float_of_int ((t.Tile.c - 1) mod array_dim) /. 15.0);
  }

let gemm16 =
  {
    Accel.accel_name = "nova_gemm16";
    weight_mem_bytes = None;
    supports;
    tile_ok =
      (fun l t ->
        match l.L.kind with
        | L.Conv _ | L.Dense -> t.Tile.c = l.L.in_shape.(0)
        | L.Add | L.Pool _ -> true);
    compute_cycles;
    weight_load_cycles;
    setup_cycles = 1200;
    tile_overhead_cycles = 60;
    heuristics = [ h_k_align; h_c_align ];
  }

let cpu =
  {
    Cpu_model.cpu_name = "cortex-m7-class";
    conv_cycles_per_mac = 2.0;
    dense_cycles_per_mac = 2.4;
    depthwise_cycles_per_mac = 4.0;
    elementwise_cycles_per_elt = 1.2;
    pool_cycles_per_elt = 1.5;
    softmax_cycles_per_elt = 35.0;
    data_move_cycles_per_byte = 0.5;
    kernel_call_overhead = 300;
  }

let platform =
  {
    Platform.platform_name = "nova";
    freq_mhz = 400;
    l1 = { Memory.level_name = "L1"; size_bytes = Util.Ints.kib 96 };
    l2 = { Memory.level_name = "L2"; size_bytes = Util.Ints.kib 1024 };
    dma = { Memory.setup_cycles = 48; per_chunk_cycles = 6; bytes_per_cycle = 16 };
    cpu;
    accels = [ gemm16 ];
    size_model =
      {
        Platform.runtime_base_bytes = 30_000;
        cpu_kernel_bytes = 1_600;
        cpu_op_bytes = 280;
        accel_call_bytes = 420;
        accel_tile_loop_bytes = 560;
      };
  }
