(** A second, hypothetical target platform ("NOVA") demonstrating the
    paper's portability claim (Sec. V: HTVM supports new off-the-shelf
    heterogeneous platforms given three ingredients — hardware specs +
    supported operations, utilization heuristics, and invocation costs).

    NOVA deliberately differs from DIANA on every axis that exercises a
    different code path:
    - a single 16x16 int8 systolic GEMM accelerator that unrolls C and K
      (so its alignment heuristic is on K, not on the spatial dims);
    - no dedicated weight memory: weight tiles share L1 with activations
      (DORY's original PULP-style Eq. 2 budget);
    - stride-1 3x3-or-smaller kernels only, no depthwise — strided and
      depthwise layers fall back to the host;
    - a Cortex-M-class host, 96 kB L1, 1 MB L2, narrower DMA. *)

val gemm16 : Accel.t
val cpu : Cpu_model.t
val platform : Platform.t
