(** The DIANA SoC (Ueyoshi et al., ISSCC 2022) as used in the paper.

    - RISC-V RV32IMCF-XpulpV2 host at 260 MHz
    - digital accelerator: 16x16 PE array, 256 8-bit MACs/cycle, 64 kB
      weight memory; supports (DW)Conv2D, FC, Add, with fused
      requantization/ReLU/pooling at the output stage
    - analog in-memory-compute accelerator: 1152x512 ternary SRAM macro,
      7-bit activations, 144 kB weight buffer; supports Conv2D (and
      residual add) with fused post-processing
    - 256 kB shared L1 activation memory, 512 kB L2, DMA between them.

    Cycle-model calibration targets the paper's published latencies (see
    EXPERIMENTS.md); geometry-dependent utilization follows the paper's
    heuristics: the digital array wants C and ix tiles aligned to 16
    (Eqs. 3-4) and tall tiles to coalesce DMA chunks (Eq. 5). *)

val digital : Accel.t
val analog : Accel.t
val cpu : Cpu_model.t

val platform : Platform.t
(** Full SoC with both accelerators. *)

val digital_only : Platform.t
val analog_only : Platform.t
val cpu_only : Platform.t

(** Cycle-model constants, exposed for benches and tests. *)

val pe_rows : int
(** Digital PE array rows (16). *)

val pe_cols : int
(** Digital PE array columns (16). *)

val dw_lanes : int
(** PE columns usable by depthwise kernels. *)

val imc_rows : int
(** Analog macro rows (1152). *)

val imc_cols : int
(** Analog macro columns (512). *)

val analog_cycles_per_activation : int
(** DAC + array + ADC latency of one analog activation. *)

val analog_weight_cycles_per_cell_x10 : int
(** Macro programming cost, tenths of a cycle per cell. *)
