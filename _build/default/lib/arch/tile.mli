(** Tile geometry.

    A tile is the unit of work DORY schedules onto an accelerator: a slice
    of the layer's output (k x oy x ox) together with the input slice
    (c x iy x ix, halo included) needed to produce it. Cycle models and
    the L1 constraint are both functions of this record. *)

type t = {
  c : int;   (** input channels in the tile *)
  k : int;   (** output channels in the tile *)
  oy : int;  (** output rows *)
  ox : int;  (** output columns *)
  iy : int;  (** input rows incl. convolution halo *)
  ix : int;  (** input columns incl. halo *)
}

val for_layer : Ir.Layer.t -> c:int -> k:int -> oy:int -> ox:int -> t
(** Derive the full tile record for an output slice of the given layer;
    [iy]/[ix] account for kernel size, stride, halo and any fused output
    pooling ([oy]/[ox] are in the layer's pooled output space). For layers
    without spatial extent (dense) pass [oy = ox = 1]. *)

val conv_extent : Ir.Layer.t -> int -> int -> int * int
(** Pre-pool rows/columns the accelerator computes for a pooled-space tile
    span — identity for layers without a fused pool. *)

val full : Ir.Layer.t -> t
(** The untiled layer as a single tile. *)

val is_full : Ir.Layer.t -> t -> bool

val bytes_in : Ir.Layer.t -> t -> int
(** L1 bytes of the input slice (doubled for [Add], which streams two
    operands). *)

val bytes_out : Ir.Layer.t -> t -> int
val bytes_weights : Ir.Layer.t -> t -> int
(** Weight-memory bytes for the tile's weight slice plus per-channel bias,
    in simulator (unpacked) storage. Zero for weight-less layers. *)

val macs : Ir.Layer.t -> t -> int
(** Multiply-accumulates the tile performs. *)

val count : Ir.Layer.t -> t -> int
(** Number of such tiles needed to cover the whole layer (ceil in every
    tiled dimension). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
