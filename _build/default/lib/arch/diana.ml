module L = Ir.Layer

let pe_rows = 16
let pe_cols = 16
let dw_lanes = 4
let imc_rows = 1152
let imc_cols = 512
let analog_cycles_per_activation = 25
let analog_weight_cycles_per_cell_x10 = 12

let cd = Util.Ints.ceil_div

let stride_supported p =
  match p.Nn.Kernels.stride with (1, 1) | (2, 2) -> true | _ -> false

let kernel_small l =
  let fy, fx = L.kernel_dims l in
  fy <= 8 && fx <= 8

(* ---------- Digital accelerator (16x16 8-bit PE array) ---------- *)

(* The output stage pools only in non-overlapping windows. *)
let fused_pool_supported (l : L.t) =
  match l.L.fused_pool with
  | None -> true
  | Some { Ir.Op.pool; pool_stride } ->
      pool = pool_stride && fst pool <= 3 && snd pool <= 3

let digital_supports (l : L.t) =
  match l.L.kind with
  | L.Conv p ->
      L.weight_dtype l = Some Tensor.Dtype.I8
      && stride_supported p && kernel_small l && fused_pool_supported l
      && (p.Nn.Kernels.groups = 1 || L.is_depthwise l)
  | L.Dense -> L.weight_dtype l = Some Tensor.Dtype.I8
  | L.Add -> true
  | L.Pool _ -> false

(* Convolutions unroll input channels and output columns over the array
   (the paper's Eqs. 3-4 reward 16-aligned C and ix tiles); depthwise
   kernels can only use a few lanes of one row. *)
let digital_compute (l : L.t) (t : Tile.t) =
  let fy, fx = L.kernel_dims l in
  match l.L.kind with
  | L.Conv _ when L.is_depthwise l ->
      let cy, cx = Tile.conv_extent l t.Tile.oy t.Tile.ox in
      t.Tile.k * cy * fy * fx * cd cx dw_lanes
  | L.Conv _ ->
      let cy, cx = Tile.conv_extent l t.Tile.oy t.Tile.ox in
      t.Tile.k * cy * fy * fx * cd t.Tile.c pe_rows * cd cx pe_cols
  | L.Dense -> cd t.Tile.c pe_rows * cd t.Tile.k pe_cols
  | L.Add -> cd (t.Tile.c * t.Tile.oy * t.Tile.ox) pe_rows
  | L.Pool _ -> 0

(* Weight transfer is part of the accelerator instruction (paper
   Sec. IV-B). Convolution weights stream tap-serial at one byte per
   cycle; fully-connected weights feed all 16 PE rows in parallel. *)
let digital_weight_load (l : L.t) (t : Tile.t) =
  match (l.L.weights, l.L.kind) with
  | None, _ -> 0
  | Some _, L.Dense -> 32 + cd (Tile.bytes_weights l t) 4
  | Some _, _ -> 32 + Tile.bytes_weights l t

(* No input-channel (or dense input) tiling: the array has no partial-sum
   path back through L1. [Tile.for_layer] already locks depthwise c = k. *)
let no_input_tiling (l : L.t) (t : Tile.t) =
  match l.L.kind with
  | L.Conv _ when not (L.is_depthwise l) -> t.Tile.c = l.L.in_shape.(0)
  | L.Dense -> t.Tile.c = l.L.in_shape.(0)
  | L.Conv _ | L.Add | L.Pool _ -> true

(* Eq. 3: full PE rows want 16-aligned input-channel tiles. *)
let h_pe_digital_c =
  {
    Accel.h_name = "pe_digital_C";
    beta = 1.0;
    score = (fun _ t -> float_of_int ((t.Tile.c - 1) mod 16) /. 15.0);
  }

(* Eq. 4: 16-aligned width tiles keep all PE columns busy. The paper
   anchors the term on i_x^t; we anchor it on the output width the cycle
   model actually quantizes (for stride 1 the two differ by the constant
   fx - 1). *)
let h_pe_digital_ix =
  {
    Accel.h_name = "pe_digital_ix";
    beta = 1.0;
    score = (fun _ t -> float_of_int ((t.Tile.ox - 1) mod 16) /. 15.0);
  }

(* The input window is re-fetched from L2 once per output-channel block,
   and K is one of the two array unroll dimensions (paper Sec. II-A), so
   covering more output channels per spatial pass both cuts input traffic
   and feeds more PE columns. *)
let h_k_reuse =
  {
    Accel.h_name = "k_reuse";
    beta = 0.6;
    score = (fun l t -> float_of_int t.Tile.k /. float_of_int (max 1 l.L.out_shape.(0)));
  }

(* Eq. 5: under the C-y-x layout only full-width slabs coalesce into one
   DMA chunk per channel, and taller slabs amortize more rows per call —
   so the term rewards height of full-width tiles. *)
let h_dma =
  {
    Accel.h_name = "dma_iy";
    beta = 0.15;
    score =
      (fun l t ->
        match l.L.kind with
        | L.Dense -> 0.0
        | L.Conv _ | L.Add | L.Pool _ ->
            if t.Tile.ox >= l.L.out_shape.(2) then
              float_of_int t.Tile.iy /. float_of_int (max 1 l.L.in_shape.(1))
            else 0.0);
  }

let digital =
  {
    Accel.accel_name = "diana_digital";
    weight_mem_bytes = Some (Util.Ints.kib 64);
    supports = digital_supports;
    tile_ok = no_input_tiling;
    compute_cycles = digital_compute;
    weight_load_cycles = digital_weight_load;
    setup_cycles = 2500;
    tile_overhead_cycles = 80;
    heuristics = [ h_pe_digital_c; h_pe_digital_ix; h_k_reuse; h_dma ];
  }

(* ---------- Analog in-memory-compute accelerator (1152x512) ---------- *)

let analog_rows (l : L.t) =
  let fy, fx = L.kernel_dims l in
  l.L.in_shape.(0) * fy * fx

let analog_supports (l : L.t) =
  match l.L.kind with
  | L.Conv p ->
      L.weight_dtype l = Some Tensor.Dtype.Ternary
      && (not (L.is_depthwise l))
      && p.Nn.Kernels.groups = 1 && stride_supported p && fused_pool_supported l
      && analog_rows l <= imc_rows
  | L.Add -> true
  | L.Dense | L.Pool _ -> false

let analog_tile_ok (l : L.t) (t : Tile.t) =
  match l.L.kind with
  | L.Conv _ ->
      let fy, fx = L.kernel_dims l in
      t.Tile.c = l.L.in_shape.(0)
      && t.Tile.c * fy * fx <= imc_rows
      && t.Tile.k <= imc_cols
  | L.Add | L.Dense | L.Pool _ -> true

(* One macro activation per output position computes every mapped output
   channel at once; DAC + array + ADC latency dominates. *)
let analog_compute (l : L.t) (t : Tile.t) =
  match l.L.kind with
  | L.Conv _ ->
      let cy, cx = Tile.conv_extent l t.Tile.oy t.Tile.ox in
      cy * cx * analog_cycles_per_activation
  | L.Add -> cd (t.Tile.c * t.Tile.oy * t.Tile.ox) 8
  | L.Dense | L.Pool _ -> 0

(* Programming the SRAM macro is the analog core's big fixed cost (the
   paper attributes the analog configuration's losses to it). *)
let analog_weight_load (l : L.t) (t : Tile.t) =
  match l.L.weights with
  | None -> 0
  | Some _ ->
      let fy, fx = L.kernel_dims l in
      let cells = t.Tile.c * fy * fx * t.Tile.k in
      1500 + (cells * analog_weight_cycles_per_cell_x10 / 10)

let h_imc_rows =
  {
    Accel.h_name = "imc_rows";
    beta = 0.3;
    score = (fun l t -> let fy, fx = L.kernel_dims l in
                        float_of_int (t.Tile.c * fy * fx) /. float_of_int imc_rows);
  }

let h_imc_cols =
  {
    Accel.h_name = "imc_cols";
    beta = 0.3;
    score = (fun _ t -> float_of_int (min t.Tile.k imc_cols) /. float_of_int imc_cols);
  }

let analog =
  {
    Accel.accel_name = "diana_analog";
    weight_mem_bytes = Some (Util.Ints.kib 144);
    supports = analog_supports;
    tile_ok = analog_tile_ok;
    compute_cycles = analog_compute;
    weight_load_cycles = analog_weight_load;
    setup_cycles = 3000;
    tile_overhead_cycles = 100;
    heuristics = [ h_imc_rows; h_imc_cols ];
  }

(* ---------- Host CPU (RV32IMCF-XpulpV2) ---------- *)

let cpu =
  {
    Cpu_model.cpu_name = "riscv-xpulpv2";
    conv_cycles_per_mac = 2.8;
    dense_cycles_per_mac = 4.5;
    depthwise_cycles_per_mac = 8.0;
    elementwise_cycles_per_elt = 1.5;
    pool_cycles_per_elt = 2.0;
    softmax_cycles_per_elt = 40.0;
    data_move_cycles_per_byte = 0.75;
    kernel_call_overhead = 400;
  }

let size_model =
  {
    Platform.runtime_base_bytes = 22_000;
    cpu_kernel_bytes = 1_400;
    cpu_op_bytes = 250;
    accel_call_bytes = 350;
    accel_tile_loop_bytes = 500;
  }

let platform =
  {
    Platform.platform_name = "diana";
    freq_mhz = 260;
    l1 = { Memory.level_name = "L1"; size_bytes = Util.Ints.kib 256 };
    l2 = { Memory.level_name = "L2"; size_bytes = Util.Ints.kib 512 };
    dma = { Memory.setup_cycles = 32; per_chunk_cycles = 4; bytes_per_cycle = 32 };
    cpu;
    accels = [ digital; analog ];
    size_model;
  }

let digital_only = Platform.with_accels platform [ "diana_digital" ]
let analog_only = Platform.with_accels platform [ "diana_analog" ]
let cpu_only = Platform.with_accels platform []
