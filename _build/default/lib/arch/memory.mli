(** Memory levels and the DMA cost model.

    DIANA's RISC-V host owns a 512 kB L2; the accelerators share a 256 kB
    L1 activation memory filled by DMA (paper Fig. 3). A DMA transfer of a
    3-D tile is a sequence of contiguous row chunks, so its cost has a
    per-call setup, a per-chunk overhead (descriptor + address setup for
    every non-contiguous row) and a per-byte streaming term. The per-chunk
    term is what the paper's H_DMA heuristic (Eq. 5) reduces by preferring
    tall tiles. *)

type level = { level_name : string; size_bytes : int }

type dma = {
  setup_cycles : int;       (** fixed cost of issuing one transfer *)
  per_chunk_cycles : int;   (** cost of each non-contiguous chunk *)
  bytes_per_cycle : int;    (** streaming bandwidth *)
}

val transfer_cycles : dma -> chunks:int -> bytes:int -> int
(** Cost of one DMA call moving [bytes] in [chunks] contiguous pieces. *)

val tile_chunks : Ir.Layer.t -> Tile.t -> input:bool -> int
(** Number of contiguous chunks needed to move a tile's input (or output)
    slice under the C-y-x layout: one chunk per (channel, row) unless the
    tile spans full rows of the layer, in which case rows coalesce. *)
