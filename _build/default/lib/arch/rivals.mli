(** Rival platforms of Table II, as calibrated host-CPU cycle models.

    The paper compares HTVM-on-DIANA against MLPerf Tiny submissions on an
    STM32L4R5 (TVM kernels, and TVM + CMSIS-NN kernels) and on GreenWaves
    GAP9 (GAPFlow), all normalized to 260 MHz. We model each rival as a
    per-MAC/per-element cycle model calibrated against the published
    latencies; the Table II bench prints both the published numbers and
    the model's estimate so the calibration error is visible. *)

val stm32_tvm : Cpu_model.t
(** Cortex-M4 running plain TVM-generated int8 kernels (no SIMD). *)

val stm32_cmsis : Cpu_model.t
(** Cortex-M4 with CMSIS-NN hand-optimized kernels. *)

val gap9_gapflow : Cpu_model.t
(** GAP9 cluster (8+1 cores + NE16) driven by GAPFlow; modeled as a very
    high-throughput "CPU" since we do not simulate its accelerator. *)

val estimate_graph_cycles : Cpu_model.t -> Ir.Graph.t -> int
(** Whole-network cycle estimate: each operator application costs its
    {!Cpu_model.op_cycles} plus one kernel-call overhead per anchor op. *)

val estimate_graph_ms : ?freq_mhz:int -> Cpu_model.t -> Ir.Graph.t -> float
(** Milliseconds at the (default 260 MHz) normalized clock. *)
