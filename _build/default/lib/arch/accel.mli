(** Accelerator descriptions.

    An accelerator is characterized by (paper Sec. III-C): the operations
    it supports (capability rules judged on normalized layers), its
    dedicated weight memory, cycle models for compute and weight loading,
    fixed per-call and per-tile overheads, and the DORY heuristics that
    steer the tiler towards well-utilized tiles. *)

type heuristic = {
  h_name : string;
  beta : float;  (** weight of this term in the Eq. (1) objective *)
  score : Ir.Layer.t -> Tile.t -> float;  (** larger is better *)
}

type t = {
  accel_name : string;
  weight_mem_bytes : int option;
      (** dedicated weight memory; [None] means weights share L1 *)
  supports : Ir.Layer.t -> bool;
      (** accelerator-aware rules: bit-widths, kinds, geometry limits *)
  tile_ok : Ir.Layer.t -> Tile.t -> bool;
      (** per-tile hardware constraints beyond memory capacity (e.g. the
          analog macro's row/column geometry) *)
  compute_cycles : Ir.Layer.t -> Tile.t -> int;
      (** array busy cycles to execute one tile, weights already loaded *)
  weight_load_cycles : Ir.Layer.t -> Tile.t -> int;
      (** cycles to bring the tile's weight slice into the weight memory *)
  setup_cycles : int;  (** host-side runtime overhead per kernel call *)
  tile_overhead_cycles : int;  (** host-side overhead per tile iteration *)
  heuristics : heuristic list;
}

val utilization : t -> Ir.Layer.t -> Tile.t -> float
(** MACs per busy cycle of the tile divided by the accelerator's best MACs
    per cycle across full tiles of this layer — a [0..1] efficiency proxy
    used in reports. *)

val peak_macs_per_cycle : t -> Ir.Layer.t -> float
(** Best-case throughput the cycle model allows for this layer shape
    (probed on the untiled layer). *)
