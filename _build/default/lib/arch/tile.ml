type t = { c : int; k : int; oy : int; ox : int; iy : int; ix : int }

(* Pre-pool spatial extent of a (pooled-space) tile span. *)
let conv_extent (l : Ir.Layer.t) n_y n_x =
  match l.Ir.Layer.fused_pool with
  | None -> (n_y, n_x)
  | Some { Ir.Op.pool = pwy, pwx; pool_stride = psy, psx } ->
      (((n_y - 1) * psy) + pwy, ((n_x - 1) * psx) + pwx)

let for_layer (l : Ir.Layer.t) ~c ~k ~oy ~ox =
  if c <= 0 || k <= 0 || oy <= 0 || ox <= 0 then invalid_arg "Tile.for_layer: bad dims";
  match l.Ir.Layer.kind with
  | Ir.Layer.Conv p ->
      let fy, fx = Ir.Layer.kernel_dims l in
      let sy, sx = p.Nn.Kernels.stride in
      let cy, cx = conv_extent l oy ox in
      let iy = ((cy - 1) * sy) + fy and ix = ((cx - 1) * sx) + fx in
      let c = if Ir.Layer.is_depthwise l then k else c in
      { c; k; oy; ox; iy; ix }
  | Ir.Layer.Dense -> { c; k; oy = 1; ox = 1; iy = 1; ix = 1 }
  | Ir.Layer.Add -> { c; k = c; oy; ox; iy = oy; ix = ox }
  | Ir.Layer.Pool { attrs = { Ir.Op.pool = py, px; pool_stride = sy, sx }; _ } ->
      let iy = ((oy - 1) * sy) + py and ix = ((ox - 1) * sx) + px in
      { c; k = c; oy; ox; iy; ix }

let full (l : Ir.Layer.t) =
  match l.Ir.Layer.kind with
  | Ir.Layer.Conv _ | Ir.Layer.Pool _ ->
      for_layer l ~c:l.in_shape.(0) ~k:l.out_shape.(0) ~oy:l.out_shape.(1)
        ~ox:l.out_shape.(2)
  | Ir.Layer.Dense -> for_layer l ~c:l.in_shape.(0) ~k:l.out_shape.(0) ~oy:1 ~ox:1
  | Ir.Layer.Add ->
      for_layer l ~c:l.in_shape.(0) ~k:l.in_shape.(0) ~oy:l.in_shape.(1)
        ~ox:l.in_shape.(2)

let is_full l t = t = full l

let dtype_bytes dt = Tensor.Dtype.sim_bytes dt

let bytes_in (l : Ir.Layer.t) t =
  let per = dtype_bytes l.in_dtype in
  match l.Ir.Layer.kind with
  | Ir.Layer.Conv _ | Ir.Layer.Pool _ -> t.c * t.iy * t.ix * per
  | Ir.Layer.Dense -> t.c * per
  | Ir.Layer.Add -> 2 * t.c * t.oy * t.ox * per

let bytes_out (l : Ir.Layer.t) t =
  let per = dtype_bytes l.out_dtype in
  match l.Ir.Layer.kind with
  | Ir.Layer.Conv _ | Ir.Layer.Pool _ | Ir.Layer.Add -> t.k * t.oy * t.ox * per
  | Ir.Layer.Dense -> t.k * per

let bytes_weights (l : Ir.Layer.t) t =
  match l.Ir.Layer.weights with
  | None -> 0
  | Some w ->
      let fy, fx = Ir.Layer.kernel_dims l in
      let per = dtype_bytes (Tensor.dtype w) in
      let per_out_channel =
        match l.Ir.Layer.kind with
        | Ir.Layer.Conv _ when Ir.Layer.is_depthwise l -> fy * fx * per
        | Ir.Layer.Conv _ -> t.c * fy * fx * per
        | Ir.Layer.Dense -> t.c * per
        | Ir.Layer.Add | Ir.Layer.Pool _ -> 0
      in
      let bias = if l.Ir.Layer.bias = None then 0 else 4 in
      t.k * (per_out_channel + bias)

let macs (l : Ir.Layer.t) t =
  let fy, fx = Ir.Layer.kernel_dims l in
  match l.Ir.Layer.kind with
  | Ir.Layer.Conv _ when Ir.Layer.is_depthwise l ->
      let cy, cx = conv_extent l t.oy t.ox in
      t.k * cy * cx * fy * fx
  | Ir.Layer.Conv _ ->
      let cy, cx = conv_extent l t.oy t.ox in
      t.k * cy * cx * t.c * fy * fx
  | Ir.Layer.Dense -> t.c * t.k
  | Ir.Layer.Add -> t.c * t.oy * t.ox
  | Ir.Layer.Pool { attrs = { Ir.Op.pool = py, px; _ }; _ } -> t.k * t.oy * t.ox * py * px

let count (l : Ir.Layer.t) t =
  let f = full l in
  let cd = Util.Ints.ceil_div in
  match l.Ir.Layer.kind with
  | Ir.Layer.Conv _ when Ir.Layer.is_depthwise l -> cd f.k t.k * cd f.oy t.oy * cd f.ox t.ox
  | Ir.Layer.Conv _ | Ir.Layer.Pool _ ->
      cd f.c t.c * cd f.k t.k * cd f.oy t.oy * cd f.ox t.ox
  | Ir.Layer.Dense -> cd f.c t.c * cd f.k t.k
  | Ir.Layer.Add -> cd f.c t.c * cd f.oy t.oy * cd f.ox t.ox

let pp fmt t =
  Format.fprintf fmt "tile{c=%d k=%d oy=%d ox=%d iy=%d ix=%d}" t.c t.k t.oy t.ox t.iy t.ix

let to_string t = Format.asprintf "%a" pp t
