type heuristic = {
  h_name : string;
  beta : float;
  score : Ir.Layer.t -> Tile.t -> float;
}

type t = {
  accel_name : string;
  weight_mem_bytes : int option;
  supports : Ir.Layer.t -> bool;
  tile_ok : Ir.Layer.t -> Tile.t -> bool;
  compute_cycles : Ir.Layer.t -> Tile.t -> int;
  weight_load_cycles : Ir.Layer.t -> Tile.t -> int;
  setup_cycles : int;
  tile_overhead_cycles : int;
  heuristics : heuristic list;
}

let macs_per_cycle a l tile =
  let cycles = a.compute_cycles l tile in
  if cycles <= 0 then 0.0 else float_of_int (Tile.macs l tile) /. float_of_int cycles

let peak_macs_per_cycle a l = macs_per_cycle a l (Tile.full l)

let utilization a l tile =
  let peak = peak_macs_per_cycle a l in
  if peak <= 0.0 then 0.0 else macs_per_cycle a l tile /. peak
