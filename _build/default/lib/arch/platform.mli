(** Whole-platform description: host CPU + memory hierarchy + DMA +
    accelerators, and the code/binary size model parameters. *)

type size_model = {
  runtime_base_bytes : int;       (** runtime, startup, allocator, drivers *)
  cpu_kernel_bytes : int;         (** generated C code per fused CPU kernel *)
  cpu_op_bytes : int;             (** extra code per additional fused op *)
  accel_call_bytes : int;         (** driver sequence per offloaded layer *)
  accel_tile_loop_bytes : int;    (** extra code when the layer is tiled *)
}

type t = {
  platform_name : string;
  freq_mhz : int;
  l1 : Memory.level;   (** shared accelerator activation memory *)
  l2 : Memory.level;   (** main on-chip memory: code + weights + activations *)
  dma : Memory.dma;
  cpu : Cpu_model.t;
  accels : Accel.t list;
  size_model : size_model;
}

val find_accel : t -> string -> Accel.t
(** @raise Not_found if no accelerator has that name. *)

val with_accels : t -> string list -> t
(** Restrict the platform to the named accelerators (Table I's CPU-only /
    CPU+Digital / CPU+Analog / CPU+Both configurations).
    @raise Not_found if a name does not exist. *)

val ms_of_cycles : t -> int -> float
(** Convert a cycle count to milliseconds at the platform frequency. *)
