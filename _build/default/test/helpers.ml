(* Shared helpers for the test suites. *)

let rng () = Util.Rng.create 0x5eed

let check_tensor msg expected actual =
  if not (Tensor.equal expected actual) then
    if Tensor.shape expected <> Tensor.shape actual then
      Alcotest.failf "%s: shape mismatch: expected %s, got %s" msg
        (Tensor.to_string expected) (Tensor.to_string actual)
    else
      Alcotest.failf "%s: expected %s, got %s (max abs diff %d)" msg
        (Tensor.to_string expected) (Tensor.to_string actual)
        (Tensor.max_abs_diff expected actual)

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  n = 0 || go 0

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest ~speed_level:`Quick (QCheck.Test.make ~count ~name gen prop)

(* QCheck generator for small activation tensors [|c;h;w|] of a dtype. *)
let small_chw dtype =
  let open QCheck.Gen in
  let dim = int_range 1 6 in
  triple dim dim dim >>= fun (c, h, w) ->
  int >|= fun seed ->
  Tensor.random (Util.Rng.create seed) dtype [| c; h; w |]

let arbitrary_chw dtype =
  QCheck.make ~print:Tensor.to_string (small_chw dtype)
