(* Tests for lib/pattern (library name: byoc): the pattern DSL, layer
   extraction, and the BYOC partitioner. *)

module Dtype = Tensor.Dtype
module G = Ir.Graph
module B = Ir.Graph.Builder

let rng () = Util.Rng.create 17

(* conv(3x3, pad1) -> bias -> requant(+relu) *)
let conv_net ?(relu = true) () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 4; 8; 8 |] in
  let w = B.const b (Tensor.random (rng ()) Dtype.I8 [| 8; 4; 3; 3 |]) in
  let bias = B.const b (Tensor.random (rng ()) Dtype.I32 [| 8 |]) in
  let conv = B.conv2d b ~padding:(1, 1) x ~weights:w in
  let biased = B.bias_add b conv ~bias in
  let out = B.requantize b ~relu ~shift:9 ~out_dtype:Dtype.I8 biased in
  B.finish b ~output:out

let accept_all = (fun (_ : Ir.Layer.t) -> true)

let digital_target ?(priority = 1) ?(accept = accept_all) () =
  {
    Byoc.Partition.name = "diana_digital";
    patterns = Byoc.Library.all;
    accept;
    priority;
    estimate = None;
  }

let test_conv_pattern_matches () =
  let g = conv_net () in
  let found = Byoc.Pattern.find_all g Byoc.Library.conv2d_pattern in
  Alcotest.(check int) "exactly one match" 1 (List.length found);
  let m = List.hd found in
  Alcotest.(check int) "rooted at the cast" (G.output g) m.Byoc.Pattern.root;
  Alcotest.(check int) "five fused ops" 5 (List.length m.Byoc.Pattern.matched);
  Alcotest.(check int) "one data input" 1 (List.length m.Byoc.Pattern.inputs);
  Alcotest.(check int) "three consts: w, bias, shift" 3
    (List.length m.Byoc.Pattern.consts)

let test_pattern_rejects_wrong_root () =
  let g = conv_net () in
  (* Rooted at the conv itself, the full pattern cannot match. *)
  Alcotest.(check bool) "no match at conv" true
    (Byoc.Pattern.matches g Byoc.Library.conv2d_pattern ~at:3 = None)

let test_has_attr_filters () =
  let g = conv_net () in
  let strided_only =
    Byoc.Pattern.has_attr
      (function Ir.Op.Conv2d { stride = (2, 2); _ } -> true | _ -> false)
      (Byoc.Pattern.is_op "nn.conv2d" [ Byoc.Pattern.wildcard; Byoc.Pattern.is_constant ])
  in
  Alcotest.(check int) "stride-2 pattern finds nothing" 0
    (List.length (Byoc.Pattern.find_all g strided_only));
  let any_conv =
    Byoc.Pattern.is_op "nn.conv2d" [ Byoc.Pattern.wildcard; Byoc.Pattern.is_constant ]
  in
  Alcotest.(check int) "plain conv found" 1 (List.length (Byoc.Pattern.find_all g any_conv))

let test_has_attr_requires_op () =
  Alcotest.check_raises "wildcard refuses attr"
    (Invalid_argument "Pattern.has_attr: expected an operator pattern") (fun () ->
      ignore (Byoc.Pattern.has_attr (fun _ -> true) Byoc.Pattern.wildcard))

let test_optional_combinator () =
  (* optional relu wrap: matches both bare add and relu(add). *)
  let base = Byoc.Pattern.is_op "add" [ Byoc.Pattern.wildcard; Byoc.Pattern.wildcard ] in
  let pat = Byoc.Pattern.optional (fun p -> Byoc.Pattern.is_op "nn.relu" [ p ]) base in
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2 |] in
  let s = B.add b x x in
  let r = B.relu b s in
  let g = B.finish b ~output:r in
  (match Byoc.Pattern.matches g pat ~at:r with
  | Some m -> Alcotest.(check int) "extended form takes both ops" 2 (List.length m.matched)
  | None -> Alcotest.fail "expected relu(add) match");
  match Byoc.Pattern.matches g pat ~at:s with
  | Some m -> Alcotest.(check int) "base form takes one op" 1 (List.length m.matched)
  | None -> Alcotest.fail "expected bare add match"

let test_extract_conv_layer () =
  let g = conv_net () in
  let tys = Ir.Infer.infer g in
  let m = List.hd (Byoc.Pattern.find_all g Byoc.Library.conv2d_pattern) in
  match Byoc.Extract.to_layer g tys m with
  | Error e -> Alcotest.failf "extraction failed: %s" e
  | Ok l ->
      Alcotest.(check bool) "relu" true l.Ir.Layer.relu;
      Alcotest.(check (option int)) "shift" (Some 9) l.Ir.Layer.shift;
      Alcotest.(check bool) "weights present" true (l.Ir.Layer.weights <> None);
      Alcotest.(check bool) "bias present" true (l.Ir.Layer.bias <> None);
      Alcotest.(check (list int)) "in" [ 4; 8; 8 ] (Array.to_list l.Ir.Layer.in_shape);
      Alcotest.(check (list int)) "out" [ 8; 8; 8 ] (Array.to_list l.Ir.Layer.out_shape)

let test_extract_no_relu () =
  let g = conv_net ~relu:false () in
  let tys = Ir.Infer.infer g in
  let m = List.hd (Byoc.Pattern.find_all g Byoc.Library.conv2d_pattern) in
  match Byoc.Extract.to_layer g tys m with
  | Error e -> Alcotest.failf "extraction failed: %s" e
  | Ok l -> Alcotest.(check bool) "no relu" false l.Ir.Layer.relu

let test_extract_execute_equals_eval () =
  (* The extracted layer must compute exactly what the matched subgraph
     computes — the key soundness property of extraction. *)
  let g = conv_net () in
  let tys = Ir.Infer.infer g in
  let m = List.hd (Byoc.Pattern.find_all g Byoc.Library.conv2d_pattern) in
  let l = Result.get_ok (Byoc.Extract.to_layer g tys m) in
  let x = Tensor.random (Util.Rng.create 23) Dtype.I8 [| 4; 8; 8 |] in
  Helpers.check_tensor "layer semantics"
    (Ir.Eval.run g ~inputs:[ ("x", x) ])
    (Ir.Layer.execute l x)

(* Multi-layer net: conv block -> maxpool (host) -> flatten -> dense block
   -> softmax (host). *)
let mixed_net () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2; 8; 8 |] in
  let w1 = B.const b (Tensor.random (rng ()) Dtype.I8 [| 4; 2; 3; 3 |]) in
  let bias1 = B.const b (Tensor.random (rng ()) Dtype.I32 [| 4 |]) in
  let conv = B.conv2d b ~padding:(1, 1) x ~weights:w1 in
  let biased = B.bias_add b conv ~bias:bias1 in
  let q1 = B.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 biased in
  let pooled = B.max_pool b ~pool:(2, 2) ~stride:(2, 2) q1 in
  let flat = B.reshape b [| 4 * 4 * 4 |] pooled in
  let w2 = B.const b (Tensor.random (rng ()) Dtype.I8 [| 10; 64 |]) in
  let bias2 = B.const b (Tensor.random (rng ()) Dtype.I32 [| 10 |]) in
  let fc = B.dense b flat ~weights:w2 in
  let biased2 = B.bias_add b fc ~bias:bias2 in
  let q2 = B.requantize b ~shift:7 ~out_dtype:Dtype.I8 biased2 in
  let out = B.softmax b q2 in
  B.finish b ~output:out

let test_partition_mixed_net () =
  let g = mixed_net () in
  let plan = Byoc.Partition.run g ~targets:[ digital_target () ] in
  (* The maxpool fuses into the conv region (output-stage pooling), so two
     offloaded segments remain: conv+pool and dense. *)
  Alcotest.(check int) "conv+pool and dense offloaded" 2
    (Byoc.Partition.offload_count plan);
  (* reshape and softmax remain on the host. *)
  Alcotest.(check int) "two host ops" 2 (Byoc.Partition.host_count plan);
  let kinds =
    List.map
      (function
        | Byoc.Partition.Offload { target; _ } -> target
        | Byoc.Partition.Host _ -> "cpu")
      plan.Byoc.Partition.segments
  in
  Alcotest.(check (list string)) "order"
    [ "diana_digital"; "cpu"; "diana_digital"; "cpu" ]
    kinds;
  (* The fused segment's layer carries the pool. *)
  match plan.Byoc.Partition.segments with
  | Byoc.Partition.Offload { layer; _ } :: _ ->
      Alcotest.(check bool) "pool fused" true (layer.Ir.Layer.fused_pool <> None);
      Alcotest.(check (list int)) "pooled output" [ 4; 4; 4 ]
        (Array.to_list layer.Ir.Layer.out_shape)
  | _ -> Alcotest.fail "expected the fused conv first"

let test_partition_respects_accept () =
  let g = mixed_net () in
  let no_dense =
    digital_target
      ~accept:(fun l -> match l.Ir.Layer.kind with Ir.Layer.Dense -> false | _ -> true)
      ()
  in
  let plan = Byoc.Partition.run g ~targets:[ no_dense ] in
  Alcotest.(check int) "only conv+pool offloaded" 1 (Byoc.Partition.offload_count plan);
  (* The dense block's five ops, reshape and softmax fall back to the host. *)
  Alcotest.(check int) "hosts absorb the dense chain" 7 (Byoc.Partition.host_count plan)

let test_partition_priority () =
  let g = conv_net () in
  let low = { (digital_target ()) with Byoc.Partition.name = "slow_accel"; priority = 1 } in
  let high = { (digital_target ()) with Byoc.Partition.name = "fast_accel"; priority = 9 } in
  let plan = Byoc.Partition.run g ~targets:[ low; high ] in
  match plan.Byoc.Partition.segments with
  | [ Byoc.Partition.Offload { target; _ } ] ->
      Alcotest.(check string) "high priority wins" "fast_accel" target
  | _ -> Alcotest.fail "expected a single offloaded segment"

let test_partition_cost_based_dispatch () =
  (* Two accelerators accept the same conv; the one claiming fewer cycles
     is selected regardless of priority order (paper Sec. III-A: "the flow
     selects the one best optimized for that given operation"). *)
  let g = conv_net () in
  let fast =
    { (digital_target ()) with
      Byoc.Partition.name = "fast_for_this"; priority = 1; estimate = Some (fun _ -> 100) }
  in
  let slow =
    { (digital_target ()) with
      Byoc.Partition.name = "slow_for_this"; priority = 9; estimate = Some (fun _ -> 10_000) }
  in
  let plan = Byoc.Partition.run g ~targets:[ slow; fast ] in
  (match plan.Byoc.Partition.segments with
  | [ Byoc.Partition.Offload { target; _ } ] ->
      Alcotest.(check string) "lowest estimate wins" "fast_for_this" target
  | _ -> Alcotest.fail "expected a single offloaded segment");
  (* Estimates can depend on the layer: a geometry-sensitive rule flips
     the winner per layer. *)
  let by_size name cheap_when_small =
    { (digital_target ()) with
      Byoc.Partition.name = name;
      estimate =
        Some
          (fun l ->
            let big = Ir.Layer.macs l > 100_000 in
            if big = cheap_when_small then 10_000 else 100);
    }
  in
  let plan =
    Byoc.Partition.run g ~targets:[ by_size "small_accel" true; by_size "big_accel" false ]
  in
  match plan.Byoc.Partition.segments with
  | [ Byoc.Partition.Offload { target; _ } ] ->
      (* conv_net's conv is 4x8x8 -> 8x8x8 k3x3 = 18.4k MACs: small. *)
      Alcotest.(check string) "geometry-dependent choice" "small_accel" target
  | _ -> Alcotest.fail "expected a single offloaded segment"

let test_partition_interior_reuse_blocks_fusion () =
  (* The conv result feeds both the requant chain and a second consumer, so
     the region cannot be fused away. *)
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2; 4; 4 |] in
  let w = B.const b (Tensor.random (rng ()) Dtype.I8 [| 2; 2; 1; 1 |]) in
  let conv = B.conv2d b x ~weights:w in
  let q = B.requantize b ~shift:7 ~out_dtype:Dtype.I8 conv in
  let leak = B.requantize b ~shift:3 ~out_dtype:Dtype.I8 conv in
  let out = B.add b q leak in
  let g = B.finish b ~output:out in
  let plan = Byoc.Partition.run g ~targets:[ digital_target () ] in
  (* Neither conv-requant chain may claim the shared conv. *)
  List.iter
    (function
      | Byoc.Partition.Offload { layer; _ } -> (
          match layer.Ir.Layer.kind with
          | Ir.Layer.Conv _ -> Alcotest.fail "shared conv must not be fused"
          | _ -> ())
      | Byoc.Partition.Host _ -> ())
    plan.Byoc.Partition.segments

let test_partition_segment_inputs () =
  let g = mixed_net () in
  let plan = Byoc.Partition.run g ~targets:[ digital_target () ] in
  let seg = List.hd plan.Byoc.Partition.segments in
  Alcotest.(check (list int)) "conv block reads the graph input" [ 0 ]
    (Byoc.Partition.segment_inputs g seg)

let test_partition_plan_printer () =
  let g = mixed_net () in
  let plan = Byoc.Partition.run g ~targets:[ digital_target () ] in
  let s = Format.asprintf "%a" Byoc.Partition.pp plan in
  Alcotest.(check bool) "mentions accelerator" true (Helpers.contains s "diana_digital");
  Alcotest.(check bool) "mentions cpu" true (Helpers.contains s "[cpu]")

let prop_partition_covers_all_apps =
  (* Every operator application lands in exactly one segment. *)
  Helpers.qtest ~count:20 "partition covers all ops exactly once" QCheck.bool (fun relu ->
      let g = if relu then mixed_net () else conv_net () in
      let plan = Byoc.Partition.run g ~targets:[ digital_target () ] in
      let covered =
        List.concat_map
          (function
            | Byoc.Partition.Host { id } -> [ id ]
            | Byoc.Partition.Offload { output; _ } ->
                (* Count the whole matched region via re-matching. *)
                (match
                   List.find_map
                     (fun p -> Byoc.Pattern.matches g p ~at:output)
                     Byoc.Library.all
                 with
                | Some m -> m.Byoc.Pattern.matched
                | None -> []))
          plan.Byoc.Partition.segments
        |> List.sort compare
      in
      let apps =
        List.filter
          (fun id -> match G.node g id with G.App _ -> true | _ -> false)
          (G.node_ids g)
      in
      covered = apps)

let suites =
  [ ( "byoc",
      [ Alcotest.test_case "conv pattern matches" `Quick test_conv_pattern_matches;
        Alcotest.test_case "wrong root" `Quick test_pattern_rejects_wrong_root;
        Alcotest.test_case "has_attr filters" `Quick test_has_attr_filters;
        Alcotest.test_case "has_attr requires op" `Quick test_has_attr_requires_op;
        Alcotest.test_case "optional combinator" `Quick test_optional_combinator;
        Alcotest.test_case "extract conv layer" `Quick test_extract_conv_layer;
        Alcotest.test_case "extract no relu" `Quick test_extract_no_relu;
        Alcotest.test_case "extract semantics" `Quick test_extract_execute_equals_eval;
        Alcotest.test_case "partition mixed net" `Quick test_partition_mixed_net;
        Alcotest.test_case "partition accept rules" `Quick test_partition_respects_accept;
        Alcotest.test_case "partition priority" `Quick test_partition_priority;
        Alcotest.test_case "cost-based dispatch" `Quick test_partition_cost_based_dispatch;
        Alcotest.test_case "interior reuse blocks fusion" `Quick
          test_partition_interior_reuse_blocks_fusion;
        Alcotest.test_case "segment inputs" `Quick test_partition_segment_inputs;
        Alcotest.test_case "plan printer" `Quick test_partition_plan_printer;
        prop_partition_covers_all_apps;
      ] )
  ]
