(* Failure injection: corrupted programs, broken buffer plans and
   malformed inputs must be diagnosed loudly (Mem.Fault / Invalid_argument
   / validation errors), never silently tolerated. *)

module Dtype = Tensor.Dtype
module P = Sim.Program
module T = Tiling_fixtures

(* A small valid program to mutate: one digital conv step. *)
let base_program () =
  let g =
    let b = Ir.Graph.Builder.create () in
    let rng = Util.Rng.create 8 in
    let x = Ir.Graph.Builder.input b ~name:"x" Dtype.I8 [| 4; 8; 8 |] in
    let w = Ir.Graph.Builder.const b (Tensor.random rng Dtype.I8 [| 8; 4; 3; 3 |]) in
    let conv = Ir.Graph.Builder.conv2d b ~padding:(1, 1) x ~weights:w in
    let q = Ir.Graph.Builder.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 conv in
    Ir.Graph.Builder.finish b ~output:q
  in
  let artifact =
    Result.get_ok (Htvm.Compile.compile (Htvm.Compile.default_config Arch.Diana.digital_only) g)
  in
  (g, artifact)

let run_program prog =
  Sim.Machine.run ~platform:Arch.Diana.digital_only prog
    ~inputs:[ ("x", Tensor.random (Util.Rng.create 9) Dtype.I8 [| 4; 8; 8 |]) ]

let test_weights_offset_out_of_bounds () =
  let _, artifact = base_program () in
  let prog = artifact.Htvm.Compile.program in
  let corrupt =
    {
      prog with
      P.steps =
        List.map
          (function
            | P.Accel a -> P.Accel { a with weights_offset = Util.Ints.kib 512 - 2 }
            | s -> s)
          prog.P.steps;
    }
  in
  match run_program corrupt with
  | exception Sim.Mem.Fault _ -> ()
  | _ -> Alcotest.fail "expected a memory fault for out-of-bounds weights"

let test_buffer_beyond_l2 () =
  let _, artifact = base_program () in
  let prog = artifact.Htvm.Compile.program in
  let corrupt =
    {
      prog with
      P.buffers =
        List.map
          (fun (b : P.buffer) ->
            if b.P.buf_id = prog.P.output_buffer then
              { b with P.l2_offset = Util.Ints.kib 512 - 16 }
            else b)
          prog.P.buffers;
    }
  in
  match run_program corrupt with
  | exception Sim.Mem.Fault _ -> ()
  | _ -> Alcotest.fail "expected a memory fault for a buffer past the end of L2"

let test_corrupted_weight_offset_changes_output () =
  (* A wrong-but-in-bounds weight pointer must corrupt the result — the
     differential tests' ability to catch planner bugs depends on it. *)
  let g, artifact = base_program () in
  let prog = artifact.Htvm.Compile.program in
  let corrupt =
    {
      prog with
      P.steps =
        List.map
          (function
            | P.Accel a -> P.Accel { a with weights_offset = a.weights_offset + 9 }
            | s -> s)
          prog.P.steps;
    }
  in
  let inputs = [ ("x", Tensor.random (Util.Rng.create 10) Dtype.I8 [| 4; 8; 8 |]) ] in
  let reference = Ir.Eval.run g ~inputs in
  let out, _ = Sim.Machine.run ~platform:Arch.Diana.digital_only corrupt ~inputs in
  Alcotest.(check bool) "shifted weights corrupt the output" false
    (Tensor.equal reference out)

let test_program_validation_duplicate_buffers () =
  let _, artifact = base_program () in
  let prog = artifact.Htvm.Compile.program in
  let dup = { prog with P.buffers = prog.P.buffers @ [ List.hd prog.P.buffers ] } in
  (match P.validate dup with
  | Error e -> Alcotest.(check bool) "diagnosed" true (Helpers.contains e "duplicate")
  | Ok () -> Alcotest.fail "duplicate buffer ids accepted");
  match run_program dup with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "machine ran an invalid program"

let test_program_validation_unknown_buffer () =
  let _, artifact = base_program () in
  let prog = artifact.Htvm.Compile.program in
  let broken = { prog with P.output_buffer = 999 } in
  match P.validate broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown output buffer accepted"

let test_machine_rejects_wrong_input_shape () =
  let _, artifact = base_program () in
  match
    Sim.Machine.run ~platform:Arch.Diana.digital_only artifact.Htvm.Compile.program
      ~inputs:[ ("x", Tensor.create Dtype.I8 [| 4; 9; 9 |]) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong input shape accepted"

let test_machine_rejects_wrong_input_dtype () =
  let _, artifact = base_program () in
  match
    Sim.Machine.run ~platform:Arch.Diana.digital_only artifact.Htvm.Compile.program
      ~inputs:[ ("x", Tensor.create Dtype.I32 [| 4; 8; 8 |]) ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong input dtype accepted"

let test_exec_rejects_missing_weight_buffer () =
  let layer = T.conv_layer ~c:4 ~k:4 ~hw:8 () in
  let schedule =
    Dory.Schedule.build layer ~accel_name:"diana_digital"
      ~tile:(Arch.Tile.full layer) ~double_buffer:false
  in
  let l2 = Sim.Mem.create "L2" (Util.Ints.kib 64) in
  let l1 = Sim.Mem.create "L1" (Util.Ints.kib 64) in
  match
    Sim.Exec_accel.run ~platform:Arch.Diana.platform ~accel:Arch.Diana.digital ~l2 ~l1
      ~buffers:
        { Sim.Exec_accel.in_offsets = [ 0 ]; out_offset = 1024; weights_offset = -1;
          bias_offset = -1 }
      schedule
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "missing weight buffer accepted"

let test_exec_rejects_oversized_l1_demand () =
  let layer = T.conv_layer ~c:16 ~k:16 ~hw:32 () in
  let schedule =
    Dory.Schedule.build layer ~accel_name:"diana_digital"
      ~tile:(Arch.Tile.full layer) ~double_buffer:false
  in
  let l2 = Sim.Mem.create "L2" (Util.Ints.kib 512) in
  let tiny_l1 = Sim.Mem.create "L1" 512 in
  match
    Sim.Exec_accel.run ~platform:Arch.Diana.platform ~accel:Arch.Diana.digital ~l2
      ~l1:tiny_l1
      ~buffers:
        { Sim.Exec_accel.in_offsets = [ 0 ]; out_offset = 65536; weights_offset = 131072;
          bias_offset = 135000 }
      schedule
  with
  | exception Sim.Mem.Fault _ -> ()
  | _ -> Alcotest.fail "schedule exceeding L1 accepted"

let test_tvm_text_fuzz_never_crashes () =
  (* Mutated serialized models must parse or error, never raise. *)
  let g = (Models.Zoo.find "ds_cnn").Models.Zoo.build Models.Policy.All_int8 in
  let src = Ir.Text.to_string g in
  let rng = Util.Rng.create 77 in
  for _ = 1 to 200 do
    let b = Bytes.of_string src in
    for _ = 0 to Util.Rng.int rng 4 do
      let pos = Util.Rng.int rng (Bytes.length b) in
      Bytes.set b pos (Char.chr (Util.Rng.int rng 128))
    done;
    match Ir.Text.of_string (Bytes.to_string b) with
    | Ok _ | Error _ -> ()
  done

let suites =
  [ ( "faults",
      [ Alcotest.test_case "weights offset OOB" `Quick test_weights_offset_out_of_bounds;
        Alcotest.test_case "buffer beyond L2" `Quick test_buffer_beyond_l2;
        Alcotest.test_case "corrupted weights corrupt output" `Quick
          test_corrupted_weight_offset_changes_output;
        Alcotest.test_case "duplicate buffers rejected" `Quick
          test_program_validation_duplicate_buffers;
        Alcotest.test_case "unknown buffer rejected" `Quick
          test_program_validation_unknown_buffer;
        Alcotest.test_case "wrong input shape" `Quick test_machine_rejects_wrong_input_shape;
        Alcotest.test_case "wrong input dtype" `Quick test_machine_rejects_wrong_input_dtype;
        Alcotest.test_case "missing weight buffer" `Quick
          test_exec_rejects_missing_weight_buffer;
        Alcotest.test_case "oversized L1 demand" `Quick test_exec_rejects_oversized_l1_demand;
        Alcotest.test_case "text mutation fuzz" `Quick test_tvm_text_fuzz_never_crashes;
      ] )
  ]
