(* Tests for lib/tune: schedule space, device cost model and the tuner,
   plus the compile-pipeline integration. *)

module S = Tune.Sched
module D = Tune.Device
module T = Tiling_fixtures

let conv = T.conv_layer ~c:32 ~k:32 ~hw:16 ()
let dense = T.dense_layer ~c:256 ~k:64 ()

let test_sched_random_valid () =
  let rng = Util.Rng.create 4 in
  for _ = 1 to 200 do
    let s = S.random rng conv in
    Alcotest.(check bool) "tiles within extents" true
      (s.S.tile_k >= 1 && s.S.tile_k <= 32 && s.S.tile_x >= 1 && s.S.tile_x <= 16);
    Alcotest.(check bool) "vector legal" true (List.mem s.S.vector [ 1; 2; 4 ]);
    Alcotest.(check bool) "unroll legal" true (List.mem s.S.unroll [ 1; 2; 4; 8 ])
  done

let test_sched_neighbours_differ () =
  let n = S.neighbours conv S.default in
  Alcotest.(check bool) "several neighbours" true (List.length n >= 5);
  List.iter
    (fun s -> Alcotest.(check bool) "neighbour differs" true (s <> S.default))
    n

let test_device_deterministic () =
  Alcotest.(check int) "same schedule, same cycles"
    (D.kernel_cycles D.xpulpv2 conv S.default)
    (D.kernel_cycles D.xpulpv2 conv S.default)

let test_device_vector_helps () =
  let slow = D.kernel_cycles D.xpulpv2 conv { S.default with S.vector = 1 } in
  let fast = D.kernel_cycles D.xpulpv2 conv { S.default with S.vector = 4 } in
  Alcotest.(check bool) "simd faster" true (fast < slow)

let test_device_reduction_outer_pathological () =
  let normal = D.kernel_cycles D.xpulpv2 conv S.default in
  let bad = D.kernel_cycles D.xpulpv2 conv { S.default with S.order = S.C_khw } in
  Alcotest.(check bool) "accumulator spills cost" true (bad > normal)

let test_device_default_matches_cpu_model_scale () =
  (* The default schedule must land near the coarse Cpu_model rate the
     rest of the system uses (~2-4 cycles/MAC), or the tuned/untuned
     comparison would be apples to oranges. *)
  let cycles = D.kernel_cycles D.xpulpv2 conv S.default in
  let per_mac = float_of_int cycles /. float_of_int (Ir.Layer.macs conv) in
  Alcotest.(check bool)
    (Printf.sprintf "%.2f cycles/MAC plausible" per_mac)
    true
    (per_mac > 1.0 && per_mac < 6.0)

let test_tuner_improves () =
  let r = Tune.Search.tune ~seed:1 ~budget:64 ~device:D.xpulpv2 conv in
  Alcotest.(check bool) "never worse than default" true
    (r.Tune.Search.best_cycles <= r.Tune.Search.default_cycles);
  Alcotest.(check bool) "finds a real improvement" true (Tune.Search.speedup r > 1.1);
  Alcotest.(check bool) "respects budget" true (r.Tune.Search.trials <= 64)

let test_tuner_deterministic () =
  let a = Tune.Search.tune ~seed:9 ~budget:48 ~device:D.xpulpv2 dense in
  let b = Tune.Search.tune ~seed:9 ~budget:48 ~device:D.xpulpv2 dense in
  Alcotest.(check bool) "same result" true (a = b)

let test_tuner_budget_one () =
  (* With a single trial only the default is measured. *)
  let r = Tune.Search.tune ~seed:2 ~budget:1 ~device:D.xpulpv2 conv in
  Alcotest.(check int) "only default measured" 1 r.Tune.Search.trials;
  Alcotest.(check int) "default is best" r.Tune.Search.default_cycles
    r.Tune.Search.best_cycles

let test_compile_with_autotuning () =
  (* ResNet on CPU only: tuning must reduce the simulated latency and
     report its measurement cost, without changing results. *)
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  let base_cfg = Htvm.Compile.default_config Arch.Diana.cpu_only in
  let tuned_cfg = { base_cfg with Htvm.Compile.autotune_budget = Some 64 } in
  let run cfg =
    let artifact = Result.get_ok (Htvm.Compile.compile cfg g) in
    let inputs = Models.Zoo.random_input g in
    let out, report = Htvm.Compile.run artifact ~inputs in
    (artifact, out, Htvm.Compile.full_cycles report)
  in
  let base_art, base_out, base_cycles = run base_cfg in
  let tuned_art, tuned_out, tuned_cycles = run tuned_cfg in
  Alcotest.(check int) "no trials without tuning" 0 base_art.Htvm.Compile.tuning_trials;
  Alcotest.(check bool) "trials reported" true (tuned_art.Htvm.Compile.tuning_trials > 100);
  Alcotest.(check bool) "tuning speeds the CPU path" true (tuned_cycles < base_cycles);
  Helpers.check_tensor "results identical" base_out tuned_out

let test_autotuning_leaves_accel_path_alone () =
  (* The paper's point: the accelerated path needs no tuning. With all
     heavy layers offloaded there is nothing to tune. *)
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  let cfg =
    { (Htvm.Compile.default_config Arch.Diana.digital_only) with
      Htvm.Compile.autotune_budget = Some 64 }
  in
  let artifact = Result.get_ok (Htvm.Compile.compile cfg g) in
  Alcotest.(check int) "nothing to tune" 0 artifact.Htvm.Compile.tuning_trials

let prop_tuner_never_worse =
  Helpers.qtest ~count:40 "tuned schedule never worse than default"
    QCheck.(pair (int_range 1 24) (int_range 1 24))
    (fun (c, k) ->
      let layer = T.conv_layer ~c ~k ~hw:12 () in
      let r = Tune.Search.tune ~seed:(c + (31 * k)) ~budget:32 ~device:D.xpulpv2 layer in
      r.Tune.Search.best_cycles <= r.Tune.Search.default_cycles)

let suites =
  [ ( "tune",
      [ Alcotest.test_case "random schedules valid" `Quick test_sched_random_valid;
        Alcotest.test_case "neighbours differ" `Quick test_sched_neighbours_differ;
        Alcotest.test_case "device deterministic" `Quick test_device_deterministic;
        Alcotest.test_case "vector helps" `Quick test_device_vector_helps;
        Alcotest.test_case "reduction-outer pathological" `Quick
          test_device_reduction_outer_pathological;
        Alcotest.test_case "default matches cpu model" `Quick
          test_device_default_matches_cpu_model_scale;
        Alcotest.test_case "tuner improves" `Quick test_tuner_improves;
        Alcotest.test_case "tuner deterministic" `Quick test_tuner_deterministic;
        Alcotest.test_case "budget one" `Quick test_tuner_budget_one;
        Alcotest.test_case "compile with autotuning" `Quick test_compile_with_autotuning;
        Alcotest.test_case "accel path untouched" `Quick
          test_autotuning_leaves_accel_path_alone;
        prop_tuner_never_worse;
      ] )
  ]
