(* Tests for the channel-concatenation operator across the stack. *)

module Dtype = Tensor.Dtype
module B = Ir.Graph.Builder
module K = Nn.Kernels

let i8 shape data = Tensor.of_array Dtype.I8 shape data

let test_kernel_hand_case () =
  let a = i8 [| 1; 1; 2 |] [| 1; 2 |] in
  let b = i8 [| 2; 1; 2 |] [| 3; 4; 5; 6 |] in
  Helpers.check_tensor "concat" (i8 [| 3; 1; 2 |] [| 1; 2; 3; 4; 5; 6 |])
    (K.concat_channels a b)

let test_kernel_rejects_mismatch () =
  let a = Tensor.create Dtype.I8 [| 1; 2; 2 |] in
  let b = Tensor.create Dtype.I8 [| 1; 3; 2 |] in
  Alcotest.check_raises "spatial mismatch"
    (Invalid_argument "concat_channels: CHW spatial dims must match") (fun () ->
      ignore (K.concat_channels a b));
  let c = Tensor.create Dtype.I32 [| 1; 2; 2 |] in
  Alcotest.check_raises "dtype mismatch"
    (Invalid_argument "concat_channels: dtype mismatch") (fun () ->
      ignore (K.concat_channels a c))

let concat_net () =
  let b = B.create () in
  let rng = Util.Rng.create 13 in
  let x = B.input b ~name:"x" Dtype.I8 [| 3; 8; 8 |] in
  let w1 = B.const b (Tensor.random rng Dtype.I8 [| 5; 3; 3; 3 |]) in
  let conv = B.conv2d b ~padding:(1, 1) x ~weights:w1 in
  let q = B.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 conv in
  (* Skip connection: concat the input with the conv output. *)
  let cat = B.app b Ir.Op.Concat [ q; x ] in
  let w2 = B.const b (Tensor.random rng Dtype.I8 [| 4; 8; 1; 1 |]) in
  let conv2 = B.conv2d b cat ~weights:w2 in
  let out = B.requantize b ~shift:8 ~out_dtype:Dtype.I8 conv2 in
  B.finish b ~output:out

let test_infer_concat () =
  let g = concat_net () in
  let tys = Ir.Infer.infer g in
  let cat_id =
    List.find
      (fun i ->
        match Ir.Graph.node g i with
        | Ir.Graph.App { op = Ir.Op.Concat; _ } -> true
        | _ -> false)
      (Ir.Graph.node_ids g)
  in
  Alcotest.(check (list int)) "5+3 channels" [ 8; 8; 8 ]
    (Array.to_list tys.(cat_id).Ir.Infer.shape)

let test_infer_rejects_spatial_mismatch () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 1; 4; 4 |] in
  let y = B.input b ~name:"y" Dtype.I8 [| 1; 5; 4 |] in
  let g = B.finish b ~output:(B.app b Ir.Op.Concat [ x; y ]) in
  try
    ignore (Ir.Infer.infer g);
    Alcotest.fail "expected type error"
  with Ir.Infer.Type_error _ -> ()

let test_compile_run_exact () =
  (* Concat is a CPU anchor; the convs around it still offload. *)
  let g = concat_net () in
  let cfg = Htvm.Compile.default_config Arch.Diana.digital_only in
  let artifact = Result.get_ok (Htvm.Compile.compile cfg g) in
  let on_cpu =
    List.filter (fun (li : Htvm.Compile.layer_info) -> li.Htvm.Compile.li_target = "cpu")
      artifact.Htvm.Compile.layers
  in
  Alcotest.(check bool) "concat on host" true
    (List.exists
       (fun (li : Htvm.Compile.layer_info) -> Helpers.contains li.Htvm.Compile.li_desc "concatenate")
       on_cpu);
  let offloaded =
    List.length
      (List.filter (fun (li : Htvm.Compile.layer_info) -> li.Htvm.Compile.li_target <> "cpu")
         artifact.Htvm.Compile.layers)
  in
  Alcotest.(check int) "both convs offloaded" 2 offloaded;
  let inputs = [ ("x", Tensor.random (Util.Rng.create 3) Dtype.I8 [| 3; 8; 8 |]) ] in
  let out, _ = Htvm.Compile.run artifact ~inputs in
  Helpers.check_tensor "exact" (Ir.Eval.run g ~inputs) out

let test_text_roundtrip () =
  let g = concat_net () in
  match Ir.Text.of_string (Ir.Text.to_string g) with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok g' ->
      let inputs = [ ("x", Tensor.random (Util.Rng.create 4) Dtype.I8 [| 3; 8; 8 |]) ] in
      Helpers.check_tensor "same semantics" (Ir.Eval.run g ~inputs) (Ir.Eval.run g' ~inputs)

let prop_concat_order_sensitive =
  Helpers.qtest ~count:30 "concat(a,b) mirrors concat(b,a)" QCheck.int (fun seed ->
      let rng = Util.Rng.create seed in
      let a = Tensor.random rng Dtype.I8 [| 2; 3; 3 |] in
      let b = Tensor.random rng Dtype.I8 [| 1; 3; 3 |] in
      let ab = K.concat_channels a b and ba = K.concat_channels b a in
      (* Channel c of ab equals channel (c+1 mod 3 mapping) of ba. *)
      let ok = ref true in
      for y = 0 to 2 do
        for x = 0 to 2 do
          for c = 0 to 1 do
            if Tensor.get ab [| c; y; x |] <> Tensor.get ba [| c + 1; y; x |] then ok := false
          done;
          if Tensor.get ab [| 2; y; x |] <> Tensor.get ba [| 0; y; x |] then ok := false
        done
      done;
      !ok)

let suites =
  [ ( "concat",
      [ Alcotest.test_case "kernel hand case" `Quick test_kernel_hand_case;
        Alcotest.test_case "kernel rejects mismatch" `Quick test_kernel_rejects_mismatch;
        Alcotest.test_case "infer" `Quick test_infer_concat;
        Alcotest.test_case "infer rejects mismatch" `Quick test_infer_rejects_spatial_mismatch;
        Alcotest.test_case "compile + run exact" `Quick test_compile_run_exact;
        Alcotest.test_case "text roundtrip" `Quick test_text_roundtrip;
        prop_concat_order_sensitive;
      ] )
  ]
