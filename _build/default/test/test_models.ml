(* Tests for lib/models: topology, typing, MAC counts, precision policies. *)

module Dtype = Tensor.Dtype

let policies = [ Models.Policy.All_int8; Models.Policy.All_ternary; Models.Policy.Mixed ]

let build (e : Models.Zoo.entry) policy = e.Models.Zoo.build ?seed:None policy

let test_all_models_build_and_typecheck () =
  List.iter
    (fun (e : Models.Zoo.entry) ->
      List.iter
        (fun policy ->
          let g = build e policy in
          (match Ir.Graph.validate g with
          | Ok () -> ()
          | Error err ->
              Alcotest.failf "%s/%s invalid: %s" e.Models.Zoo.model_name
                (Models.Policy.to_string policy) err);
          ignore (Ir.Infer.infer g))
        policies)
    Models.Zoo.all

let out_dims name policy =
  let e = Models.Zoo.find name in
  let ty = Ir.Infer.output_ty (build e policy) in
  Array.to_list ty.Ir.Infer.shape

let test_output_shapes () =
  Alcotest.(check (list int)) "resnet 10 classes" [ 10 ]
    (out_dims "resnet8" Models.Policy.All_int8);
  Alcotest.(check (list int)) "dscnn 12 keywords" [ 12 ]
    (out_dims "ds_cnn" Models.Policy.All_int8);
  Alcotest.(check (list int)) "mobilenet 2 classes" [ 2 ]
    (out_dims "mobilenet_v1_025" Models.Policy.All_int8);
  Alcotest.(check (list int)) "toyadmos reconstructs 640" [ 640 ]
    (out_dims "toyadmos_dae" Models.Policy.All_int8);
  (* Shapes are policy-invariant. *)
  Alcotest.(check (list int)) "resnet ternary same" [ 10 ]
    (out_dims "resnet8" Models.Policy.All_ternary)

let macs_of name =
  Models.Zoo.macs (build (Models.Zoo.find name) Models.Policy.All_int8)

let check_macs name lo hi =
  let m = macs_of name in
  if m < lo || m > hi then Alcotest.failf "%s: %d MACs outside [%d, %d]" name m lo hi

let test_mac_counts_match_paper_workloads () =
  (* Published workload sizes for the MLPerf Tiny models. *)
  check_macs "resnet8" 12_000_000 13_000_000;
  check_macs "mobilenet_v1_025" 7_000_000 8_500_000;
  check_macs "ds_cnn" 2_400_000 3_200_000;
  check_macs "toyadmos_dae" 230_000 280_000

let const_dtypes g =
  List.filter_map
    (fun id ->
      match Ir.Graph.node g id with
      | Ir.Graph.Const t when Tensor.rank t >= 2 -> Some (Tensor.dtype t)
      | _ -> None)
    (Ir.Graph.node_ids g)

let test_policy_dtypes () =
  let int8_g = build (Models.Zoo.find "resnet8") Models.Policy.All_int8 in
  Alcotest.(check bool) "int8: no ternary weights" false
    (List.exists (Dtype.equal Dtype.Ternary) (const_dtypes int8_g));
  let tern_g = build (Models.Zoo.find "resnet8") Models.Policy.All_ternary in
  Alcotest.(check bool) "ternary: has ternary weights" true
    (List.exists (Dtype.equal Dtype.Ternary) (const_dtypes tern_g));
  let mixed_g = build (Models.Zoo.find "resnet8") Models.Policy.Mixed in
  let ds = const_dtypes mixed_g in
  Alcotest.(check bool) "mixed: both precisions present" true
    (List.exists (Dtype.equal Dtype.Ternary) ds
    && List.exists (Dtype.equal Dtype.I8) ds)

let test_mobilenet_dw_stays_int8_under_ternary () =
  (* DW is unsupported on the analog core: even the all-ternary policy
     keeps depthwise weights in int8 for the CPU. *)
  let g = build (Models.Zoo.find "mobilenet_v1_025") Models.Policy.All_ternary in
  let ok = ref true in
  List.iter
    (fun id ->
      match Ir.Graph.node g id with
      | Ir.Graph.App { op = Ir.Op.Conv2d p; args } when p.Nn.Kernels.groups > 1 -> (
          match Ir.Graph.node g (List.nth args 1) with
          | Ir.Graph.Const t ->
              if Dtype.equal (Tensor.dtype t) Dtype.Ternary then ok := false
          | _ -> ok := false)
      | _ -> ())
    (Ir.Graph.node_ids g);
  Alcotest.(check bool) "dw weights int8" true !ok

let test_toyadmos_ternary_has_no_dense () =
  (* FC-as-conv: the ternary DAE must contain no dense ops at all. *)
  let g = build (Models.Zoo.find "toyadmos_dae") Models.Policy.All_ternary in
  let has_dense =
    List.exists
      (fun id ->
        match Ir.Graph.node g id with
        | Ir.Graph.App { op = Ir.Op.Dense; _ } -> true
        | _ -> false)
      (Ir.Graph.node_ids g)
  in
  Alcotest.(check bool) "all FC emitted as conv" false has_dense;
  (* And the int8 variant keeps them dense. *)
  let g8 = build (Models.Zoo.find "toyadmos_dae") Models.Policy.All_int8 in
  let dense_count =
    List.length
      (List.filter
         (fun id ->
           match Ir.Graph.node g8 id with
           | Ir.Graph.App { op = Ir.Op.Dense; _ } -> true
           | _ -> false)
         (Ir.Graph.node_ids g8))
  in
  Alcotest.(check int) "10 dense layers" 10 dense_count

let test_models_deterministic () =
  let e = Models.Zoo.find "ds_cnn" in
  let g1 = e.Models.Zoo.build ~seed:5 Models.Policy.All_int8 in
  let g2 = e.Models.Zoo.build ~seed:5 Models.Policy.All_int8 in
  let inputs = Models.Zoo.random_input g1 in
  Helpers.check_tensor "same seed, same network"
    (Ir.Eval.run g1 ~inputs) (Ir.Eval.run g2 ~inputs)

let test_random_input_binds_all () =
  let g = build (Models.Zoo.find "resnet8") Models.Policy.All_int8 in
  let inputs = Models.Zoo.random_input g in
  Alcotest.(check int) "one input" 1 (List.length inputs);
  ignore (Ir.Eval.run g ~inputs)

let suites =
  [ ( "models",
      [ Alcotest.test_case "all build and typecheck" `Quick test_all_models_build_and_typecheck;
        Alcotest.test_case "output shapes" `Quick test_output_shapes;
        Alcotest.test_case "mac counts" `Quick test_mac_counts_match_paper_workloads;
        Alcotest.test_case "policy dtypes" `Quick test_policy_dtypes;
        Alcotest.test_case "dw stays int8" `Quick test_mobilenet_dw_stays_int8_under_ternary;
        Alcotest.test_case "ternary DAE has no dense" `Quick test_toyadmos_ternary_has_no_dense;
        Alcotest.test_case "deterministic" `Quick test_models_deterministic;
        Alcotest.test_case "random input binds" `Quick test_random_input_binds_all;
      ] )
  ]
