(* Tests for lib/ir: builder/validation, type inference, interpreter,
   rewrites and the normalized layer abstraction. *)

module Dtype = Tensor.Dtype
module G = Ir.Graph
module B = Ir.Graph.Builder

(* A small conv block: input -> conv(3x3, pad 1) -> bias -> requant+relu. *)
let conv_block ?(relu = true) ?(c = 2) ?(k = 3) ?(hw = 6) () =
  let rng = Util.Rng.create 99 in
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| c; hw; hw |] in
  let w = B.const b (Tensor.random rng Dtype.I8 [| k; c; 3; 3 |]) in
  let bias = B.const b (Tensor.random (Util.Rng.create 7) Dtype.I32 [| k |]) in
  let conv = B.conv2d b ~padding:(1, 1) x ~weights:w in
  let biased = B.bias_add b conv ~bias in
  let out = B.requantize b ~relu ~shift:8 ~out_dtype:Dtype.I8 biased in
  B.finish b ~output:out

let test_builder_valid () =
  let g = conv_block () in
  (match G.validate g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid graph: %s" e);
  Alcotest.(check int) "app count: conv,bias,shift,clip,cast" 5 (G.app_count g)

let test_builder_rejects_forward_ref () =
  let b = B.create () in
  Alcotest.check_raises "undefined arg"
    (Invalid_argument "Builder.app: argument not yet defined") (fun () ->
      ignore (B.app b Ir.Op.Relu [ 3 ]))

let test_builder_rejects_arity () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 1 |] in
  Alcotest.check_raises "arity" (Invalid_argument "Builder.app: nn.relu arity mismatch")
    (fun () -> ignore (B.app b Ir.Op.Relu [ x; x ]))

let test_consumers () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2 |] in
  let r1 = B.relu b x in
  let r2 = B.relu b x in
  let s = B.add b r1 r2 in
  let g = B.finish b ~output:s in
  Alcotest.(check (list int)) "x feeds both relus" [ r1; r2 ] (G.consumers g x);
  Alcotest.(check (list int)) "r1 feeds add" [ s ] (G.consumers g r1)

let test_inputs_listing () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2 |] in
  let y = B.input b ~name:"y" Dtype.I8 [| 2 |] in
  let g = B.finish b ~output:(B.add b x y) in
  let names = List.map (fun (_, n, _, _) -> n) (G.inputs g) in
  Alcotest.(check (list string)) "both inputs" [ "x"; "y" ] names

let test_duplicate_input_names_invalid () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2 |] in
  let y = B.input b ~name:"x" Dtype.I8 [| 2 |] in
  let g = B.finish b ~output:(B.add b x y) in
  match G.validate g with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate input names must be rejected"

let test_infer_conv_block () =
  let g = conv_block ~c:2 ~k:3 ~hw:6 () in
  let ty = Ir.Infer.output_ty g in
  Alcotest.(check (list int)) "shape" [ 3; 6; 6 ] (Array.to_list ty.Ir.Infer.shape);
  Alcotest.(check string) "dtype" "i8" (Dtype.to_string ty.Ir.Infer.dtype)

let test_infer_strided_conv () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 8; 32; 32 |] in
  let w = B.const b (Tensor.create Dtype.I8 [| 16; 8; 3; 3 |]) in
  let conv = B.conv2d b ~stride:(2, 2) ~padding:(1, 1) x ~weights:w in
  let g = B.finish b ~output:conv in
  let ty = Ir.Infer.output_ty g in
  Alcotest.(check (list int)) "halved" [ 16; 16; 16 ] (Array.to_list ty.Ir.Infer.shape);
  Alcotest.(check string) "accumulates i32" "i32" (Dtype.to_string ty.Ir.Infer.dtype)

let test_infer_rejects_bad_dense () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 10 |] in
  let w = B.const b (Tensor.create Dtype.I8 [| 4; 9 |]) in
  let g = B.finish b ~output:(B.dense b x ~weights:w) in
  Alcotest.check_raises "dense mismatch"
    (Ir.Infer.Type_error "node 2: dense: weights expect 9 inputs, data has 10") (fun () ->
      ignore (Ir.Infer.infer g))

let test_infer_rejects_bad_bias () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I32 [| 4; 2; 2 |] in
  let bias = B.const b (Tensor.create Dtype.I32 [| 3 |]) in
  let g = B.finish b ~output:(B.bias_add b x ~bias) in
  (try
     ignore (Ir.Infer.infer g);
     Alcotest.fail "expected type error"
   with Ir.Infer.Type_error _ -> ())

let test_eval_matches_kernels () =
  let g = conv_block () in
  let rng = Util.Rng.create 5 in
  let x = Tensor.random rng Dtype.I8 [| 2; 6; 6 |] in
  let via_graph = Ir.Eval.run g ~inputs:[ ("x", x) ] in
  (* Recompute by hand with the same constants pulled out of the graph. *)
  let w = match G.node g 1 with G.Const t -> t | _ -> Alcotest.fail "const w" in
  let bias = match G.node g 2 with G.Const t -> t | _ -> Alcotest.fail "const b" in
  let conv =
    Nn.Kernels.conv2d ~input:x ~weights:w
      { Nn.Kernels.conv_default with padding = (1, 1) }
  in
  let manual =
    Nn.Kernels.requantize ~relu:true ~shift:8 ~out_dtype:Dtype.I8
      (Nn.Kernels.bias_add conv bias)
  in
  Helpers.check_tensor "graph == manual" manual via_graph

let test_eval_missing_input () =
  let g = conv_block () in
  Alcotest.check_raises "missing" (Invalid_argument "eval: missing input x") (fun () ->
      ignore (Ir.Eval.run g ~inputs:[]))

let test_eval_unknown_input () =
  let g = conv_block () in
  let x = Tensor.create Dtype.I8 [| 2; 6; 6 |] in
  Alcotest.check_raises "unknown" (Invalid_argument "eval: unknown input y") (fun () ->
      ignore (Ir.Eval.run g ~inputs:[ ("x", x); ("y", x) ]))

let test_eval_wrong_shape () =
  let g = conv_block () in
  let x = Tensor.create Dtype.I8 [| 2; 5; 5 |] in
  Alcotest.check_raises "shape" (Invalid_argument "eval: input x has wrong type") (fun () ->
      ignore (Ir.Eval.run g ~inputs:[ ("x", x) ]))

let test_constant_fold () =
  (* relu(const) collapses to a const; the input-dependent part stays. *)
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2 |] in
  let c = B.const b (Tensor.of_array Dtype.I8 [| 2 |] [| -3; 4 |]) in
  let folded = B.relu b c in
  let g = B.finish b ~output:(B.add b x folded) in
  let g' = Ir.Rewrite.constant_fold g in
  let is_const i = match G.node g' i with G.Const _ -> true | _ -> false in
  let folded_consts = List.filter is_const (G.node_ids g') in
  Alcotest.(check int) "relu(const) folded" 2 (List.length folded_consts);
  Alcotest.(check int) "one app left" 1 (G.app_count g')

let test_dce () =
  let b = B.create () in
  let x = B.input b ~name:"x" Dtype.I8 [| 2 |] in
  let _dead = B.relu b x in
  let live = B.relu b x in
  let g = B.finish b ~output:live in
  let g' = Ir.Rewrite.dead_code_elimination g in
  Alcotest.(check int) "dead op dropped" 1 (G.app_count g');
  Alcotest.(check int) "two nodes left" 2 (G.length g')

let test_simplify_preserves_semantics () =
  let g = conv_block () in
  let g' = Ir.Rewrite.simplify g in
  let x = Tensor.random (Util.Rng.create 21) Dtype.I8 [| 2; 6; 6 |] in
  Helpers.check_tensor "same output"
    (Ir.Eval.run g ~inputs:[ ("x", x) ])
    (Ir.Eval.run g' ~inputs:[ ("x", x) ])

(* --- Layer --- *)

let sample_conv_layer () =
  let rng = Util.Rng.create 1 in
  {
    Ir.Layer.kind = Ir.Layer.Conv { Nn.Kernels.conv_default with padding = (1, 1) };
    fused_pool = None;
    weights = Some (Tensor.random rng Dtype.I8 [| 4; 2; 3; 3 |]);
    bias = Some (Tiling_fixtures.bias_tensor rng 4);
    shift = Some 8;
    relu = true;
    in_shape = [| 2; 8; 8 |];
    in2_shape = None;
    out_shape = [| 4; 8; 8 |];
    in_dtype = Dtype.I8;
    out_dtype = Dtype.I8;
  }

let test_layer_macs () =
  let l = sample_conv_layer () in
  (* 4*8*8 outputs x 2 channels x 9 taps *)
  Alcotest.(check int) "macs" (4 * 8 * 8 * 2 * 9) (Ir.Layer.macs l)

let test_layer_describe () =
  let l = sample_conv_layer () in
  Alcotest.(check string) "describe" "conv2d 2x8x8 -> 4x8x8 k3x3 s1x1"
    (Ir.Layer.describe l)

let test_layer_validate () =
  let l = sample_conv_layer () in
  (match Ir.Layer.validate l with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid layer rejected: %s" e);
  let bad = { l with out_shape = [| 4; 9; 9 |] } in
  match Ir.Layer.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "inconsistent geometry accepted"

let test_layer_execute_matches_manual () =
  let l = sample_conv_layer () in
  let x = Tensor.random (Util.Rng.create 3) Dtype.I8 [| 2; 8; 8 |] in
  let manual =
    Nn.Kernels.requantize ~relu:true ~shift:8 ~out_dtype:Dtype.I8
      (Nn.Kernels.bias_add
         (Nn.Kernels.conv2d ~input:x ~weights:(Option.get l.Ir.Layer.weights)
            { Nn.Kernels.conv_default with padding = (1, 1) })
         (Option.get l.Ir.Layer.bias))
  in
  Helpers.check_tensor "layer == manual" manual (Ir.Layer.execute l x)

let test_layer_depthwise_flag () =
  let rng = Util.Rng.create 2 in
  let dw =
    {
      Ir.Layer.kind = Ir.Layer.Conv { Nn.Kernels.conv_default with groups = 4 };
      fused_pool = None;
      weights = Some (Tensor.random rng Dtype.I8 [| 4; 1; 3; 3 |]);
      bias = None;
      shift = Some 6;
      relu = false;
      in_shape = [| 4; 8; 8 |];
      in2_shape = None;
      out_shape = [| 4; 6; 6 |];
      in_dtype = Dtype.I8;
      out_dtype = Dtype.I8;
    }
  in
  Alcotest.(check bool) "dw" true (Ir.Layer.is_depthwise dw);
  Alcotest.(check bool) "plain conv not dw" false
    (Ir.Layer.is_depthwise (sample_conv_layer ()));
  Alcotest.(check string) "describe dw" "dwconv2d 4x8x8 -> 4x6x6 k3x3 s1x1"
    (Ir.Layer.describe dw)

let test_layer_add_execute () =
  let l =
    {
      Ir.Layer.kind = Ir.Layer.Add;
      fused_pool = None;
      weights = None;
      bias = None;
      shift = Some 1;
      relu = false;
      in_shape = [| 2; 2; 2 |];
      in2_shape = Some [| 2; 2; 2 |];
      out_shape = [| 2; 2; 2 |];
      in_dtype = Dtype.I8;
      out_dtype = Dtype.I8;
    }
  in
  let a = Tensor.random (Util.Rng.create 4) Dtype.I8 [| 2; 2; 2 |] in
  let b = Tensor.random (Util.Rng.create 5) Dtype.I8 [| 2; 2; 2 |] in
  let manual =
    Nn.Kernels.requantize ~shift:1 ~out_dtype:Dtype.I8 (Nn.Kernels.add a b)
  in
  Helpers.check_tensor "add layer" manual (Ir.Layer.execute l ~second:b a)

let test_op_names () =
  Alcotest.(check string) "conv" "nn.conv2d" (Ir.Op.name (Ir.Op.Conv2d Nn.Kernels.conv_default));
  Alcotest.(check string) "shift" "right_shift" (Ir.Op.name Ir.Op.Right_shift);
  Alcotest.(check string) "cast" "cast" (Ir.Op.name (Ir.Op.Cast Dtype.I8));
  Alcotest.(check int) "conv arity" 2 (Ir.Op.arity (Ir.Op.Conv2d Nn.Kernels.conv_default));
  Alcotest.(check int) "relu arity" 1 (Ir.Op.arity Ir.Op.Relu)

let test_graph_pp_roundtrip_mentions_ops () =
  let g = conv_block () in
  let s = G.to_string g in
  List.iter
    (fun needle ->
      if not (Helpers.contains s needle) then Alcotest.failf "printer lacks %s" needle)
    [ "nn.conv2d"; "nn.bias_add"; "right_shift"; "clip"; "cast"; "output" ]

let test_layer_pre_pool_dims () =
  let l = sample_conv_layer () in
  Alcotest.(check (pair int int)) "identity without pool" (8, 8)
    (Ir.Layer.pre_pool_dims l);
  let pooled =
    { l with
      Ir.Layer.fused_pool = Some { Ir.Op.pool = (2, 2); pool_stride = (2, 2) };
      out_shape = [| 4; 4; 4 |] }
  in
  Alcotest.(check (pair int int)) "pre-pool extent" (8, 8)
    (Ir.Layer.pre_pool_dims pooled)

let test_op_pp_attributes () =
  Alcotest.(check string) "conv attrs"
    "nn.conv2d{stride=2x2 pad=1x1 groups=4}"
    (Ir.Op.to_string
       (Ir.Op.Conv2d { stride = (2, 2); padding = (1, 1); groups = 4 }));
  Alcotest.(check string) "clip attrs" "clip{0,127}"
    (Ir.Op.to_string (Ir.Op.Clip { lo = 0; hi = 127 }));
  Alcotest.(check string) "concat" "concatenate" (Ir.Op.to_string Ir.Op.Concat)

let prop_eval_deterministic =
  Helpers.qtest ~count:30 "interpreter is deterministic" QCheck.int (fun seed ->
      let g = conv_block () in
      let x = Tensor.random (Util.Rng.create seed) Dtype.I8 [| 2; 6; 6 |] in
      Tensor.equal (Ir.Eval.run g ~inputs:[ ("x", x) ]) (Ir.Eval.run g ~inputs:[ ("x", x) ]))

let prop_simplify_preserves =
  Helpers.qtest ~count:30 "simplify preserves semantics" QCheck.int (fun seed ->
      let g = conv_block ~relu:(seed land 1 = 0) () in
      let g' = Ir.Rewrite.simplify g in
      let x = Tensor.random (Util.Rng.create seed) Dtype.I8 [| 2; 6; 6 |] in
      Tensor.equal (Ir.Eval.run g ~inputs:[ ("x", x) ]) (Ir.Eval.run g' ~inputs:[ ("x", x) ]))

let suites =
  [ ( "ir",
      [ Alcotest.test_case "builder valid" `Quick test_builder_valid;
        Alcotest.test_case "builder forward ref" `Quick test_builder_rejects_forward_ref;
        Alcotest.test_case "builder arity" `Quick test_builder_rejects_arity;
        Alcotest.test_case "consumers" `Quick test_consumers;
        Alcotest.test_case "inputs listing" `Quick test_inputs_listing;
        Alcotest.test_case "duplicate inputs invalid" `Quick test_duplicate_input_names_invalid;
        Alcotest.test_case "infer conv block" `Quick test_infer_conv_block;
        Alcotest.test_case "infer strided conv" `Quick test_infer_strided_conv;
        Alcotest.test_case "infer bad dense" `Quick test_infer_rejects_bad_dense;
        Alcotest.test_case "infer bad bias" `Quick test_infer_rejects_bad_bias;
        Alcotest.test_case "eval matches kernels" `Quick test_eval_matches_kernels;
        Alcotest.test_case "eval missing input" `Quick test_eval_missing_input;
        Alcotest.test_case "eval unknown input" `Quick test_eval_unknown_input;
        Alcotest.test_case "eval wrong shape" `Quick test_eval_wrong_shape;
        Alcotest.test_case "constant fold" `Quick test_constant_fold;
        Alcotest.test_case "dce" `Quick test_dce;
        Alcotest.test_case "simplify preserves" `Quick test_simplify_preserves_semantics;
        Alcotest.test_case "layer macs" `Quick test_layer_macs;
        Alcotest.test_case "layer describe" `Quick test_layer_describe;
        Alcotest.test_case "layer validate" `Quick test_layer_validate;
        Alcotest.test_case "layer execute" `Quick test_layer_execute_matches_manual;
        Alcotest.test_case "layer depthwise" `Quick test_layer_depthwise_flag;
        Alcotest.test_case "layer add" `Quick test_layer_add_execute;
        Alcotest.test_case "op names" `Quick test_op_names;
        Alcotest.test_case "op pp attributes" `Quick test_op_pp_attributes;
        Alcotest.test_case "layer pre-pool dims" `Quick test_layer_pre_pool_dims;
        Alcotest.test_case "graph printer" `Quick test_graph_pp_roundtrip_mentions_ops;
        prop_eval_deterministic;
        prop_simplify_preserves;
      ] )
  ]
