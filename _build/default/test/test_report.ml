(* Tests for the markdown deployment report and a few whole-pipeline
   corners: multi-input graphs and C emission coverage. *)

module B = Ir.Graph.Builder
module Dtype = Tensor.Dtype

let resnet_artifact () =
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  let artifact =
    Result.get_ok
      (Htvm.Compile.compile (Htvm.Compile.default_config Arch.Diana.digital_only) g)
  in
  let _, report = Htvm.Compile.run artifact ~inputs:(Models.Zoo.random_input g) in
  (artifact, report)

let test_report_sections () =
  let artifact, report = resnet_artifact () in
  let md = Htvm.Report.to_markdown artifact report in
  List.iter
    (fun needle ->
      if not (Helpers.contains md needle) then Alcotest.failf "report lacks %S" needle)
    [ "# HTVM deployment report"; "## Latency"; "## Steps"; "## Binary size";
      "## L2 memory"; "## Energy"; "diana_digital"; "dense 64 -> 10"; "ms" ]

let test_report_step_rows_match () =
  let artifact, report = resnet_artifact () in
  let md = Htvm.Report.to_markdown artifact report in
  let rows =
    List.filter
      (fun l -> String.length l > 2 && l.[0] = '|' && not (Helpers.contains l "---"))
      (String.split_on_char '\n' md)
  in
  (* steps table rows + header rows + size table rows *)
  Alcotest.(check bool) "one row per step" true
    (List.length rows
    >= List.length artifact.Htvm.Compile.layers
       + List.length artifact.Htvm.Compile.size.Codegen.Size.sections)

let test_multi_input_graph_end_to_end () =
  (* Two network inputs feeding a residual add, then a conv block: the
     buffer planner must bind both inputs. *)
  let b = B.create () in
  let rng = Util.Rng.create 12 in
  let x = B.input b ~name:"left" Dtype.I8 [| 4; 8; 8 |] in
  let y = B.input b ~name:"right" Dtype.I8 [| 4; 8; 8 |] in
  let s = B.add b x y in
  let q = B.requantize b ~shift:1 ~out_dtype:Dtype.I8 s in
  let w = B.const b (Tensor.random rng Dtype.I8 [| 8; 4; 3; 3 |]) in
  let conv = B.conv2d b ~padding:(1, 1) q ~weights:w in
  let out = B.requantize b ~relu:true ~shift:9 ~out_dtype:Dtype.I8 conv in
  let g = B.finish b ~output:out in
  let artifact =
    Result.get_ok
      (Htvm.Compile.compile (Htvm.Compile.default_config Arch.Diana.digital_only) g)
  in
  let inputs =
    [ ("left", Tensor.random (Util.Rng.create 1) Dtype.I8 [| 4; 8; 8 |]);
      ("right", Tensor.random (Util.Rng.create 2) Dtype.I8 [| 4; 8; 8 |]) ]
  in
  let out_t, _ = Htvm.Compile.run artifact ~inputs in
  Helpers.check_tensor "two-input graph exact" (Ir.Eval.run g ~inputs) out_t

let test_emit_c_covers_layer_kinds () =
  let emit layer =
    let s =
      Dory.Schedule.build layer ~accel_name:"diana_digital"
        ~tile:(Arch.Tile.full layer) ~double_buffer:false
    in
    Dory.Emit.emit_layer ~index:0 s
  in
  Alcotest.(check bool) "conv" true
    (Helpers.contains (emit (Tiling_fixtures.conv_layer ())) "conv2d");
  Alcotest.(check bool) "dw" true
    (Helpers.contains (emit (Tiling_fixtures.dw_layer ())) "dwconv2d");
  Alcotest.(check bool) "dense" true
    (Helpers.contains (emit (Tiling_fixtures.dense_layer ())) "dense");
  Alcotest.(check bool) "add" true
    (Helpers.contains (emit (Tiling_fixtures.add_layer ())) "add")

let test_plan_printer_mentions_fused_pool () =
  let g = (Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8 in
  let plan =
    Byoc.Partition.run (Ir.Rewrite.simplify g)
      ~targets:
        [
          {
            Byoc.Partition.name = "d";
            patterns = Byoc.Library.all;
            accept = (fun _ -> true);
            priority = 1;
            estimate = None;
          };
        ]
  in
  let s = Format.asprintf "%a" Byoc.Partition.pp plan in
  Alcotest.(check bool) "printer lists layers" true (Helpers.contains s "conv2d")

let suites =
  [ ( "report",
      [ Alcotest.test_case "sections present" `Quick test_report_sections;
        Alcotest.test_case "step rows" `Quick test_report_step_rows_match;
        Alcotest.test_case "multi-input graph" `Quick test_multi_input_graph_end_to_end;
        Alcotest.test_case "emit C kinds" `Quick test_emit_c_covers_layer_kinds;
        Alcotest.test_case "plan printer" `Quick test_plan_printer_mentions_fused_pool;
      ] )
  ]
