(* Differential fuzzing: random graphs x random deployment configurations.
   Every graph that compiles must execute bit-identically to the reference
   interpreter; compile errors must be real resource diagnoses, never
   crashes. This is the strongest whole-stack correctness check in the
   repository. *)

let run_one seed =
  let g = Gen_graphs.generate seed in
  (match Ir.Graph.validate g with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed %d: generator produced invalid graph: %s" seed e);
  let cfg = Gen_graphs.random_config seed in
  match Htvm.Compile.compile cfg g with
  | Error msg ->
      (* Resource exhaustion is a legitimate outcome on shrunken L1/L2;
         anything else indicates a compiler bug. *)
      if not (Helpers.contains msg "out of memory" || Helpers.contains msg "no feasible tile")
      then Alcotest.failf "seed %d: unexpected compile error: %s" seed msg
  | Ok artifact -> (
      let inputs = Models.Zoo.random_input ~seed g in
      let reference = Ir.Eval.run g ~inputs in
      match Htvm.Compile.run artifact ~inputs with
      | exception e ->
          Alcotest.failf "seed %d: execution crashed: %s" seed (Printexc.to_string e)
      | out, report ->
          if not (Tensor.equal reference out) then
            Alcotest.failf "seed %d: output differs (max diff %d, %d ops)" seed
              (Tensor.max_abs_diff reference out)
              (Ir.Graph.app_count g);
          let t = report.Sim.Machine.totals in
          if t.Sim.Counters.wall <= 0 then Alcotest.failf "seed %d: no cycles counted" seed)

let test_fuzz_range lo hi () =
  for seed = lo to hi do
    run_one seed
  done

let test_generator_diversity () =
  (* The generator must actually produce ternary layers, depthwise layers,
     residual adds and classifier heads across a seed range. *)
  let seen_ternary = ref false
  and seen_dw = ref false
  and seen_add = ref false
  and seen_dense = ref false in
  for seed = 0 to 80 do
    let g = Gen_graphs.generate seed in
    List.iter
      (fun id ->
        match Ir.Graph.node g id with
        | Ir.Graph.App { op = Ir.Op.Conv2d p; args } ->
            if p.Nn.Kernels.groups > 1 then seen_dw := true;
            (match Ir.Graph.node g (List.nth args 1) with
            | Ir.Graph.Const t ->
                if Tensor.dtype t = Tensor.Dtype.Ternary then seen_ternary := true
            | _ -> ())
        | Ir.Graph.App { op = Ir.Op.Add; _ } -> seen_add := true
        | Ir.Graph.App { op = Ir.Op.Dense; _ } -> seen_dense := true
        | _ -> ())
      (Ir.Graph.node_ids g)
  done;
  Alcotest.(check bool) "ternary layers generated" true !seen_ternary;
  Alcotest.(check bool) "depthwise generated" true !seen_dw;
  Alcotest.(check bool) "residual adds generated" true !seen_add;
  Alcotest.(check bool) "dense heads generated" true !seen_dense

let suites =
  [ ( "fuzz",
      [ Alcotest.test_case "generator diversity" `Quick test_generator_diversity;
        Alcotest.test_case "differential seeds 0-39" `Quick (test_fuzz_range 0 39);
        Alcotest.test_case "differential seeds 40-79" `Quick (test_fuzz_range 40 79);
        Alcotest.test_case "differential seeds 80-119" `Quick (test_fuzz_range 80 119);
        Alcotest.test_case "differential seeds 120-199" `Slow (test_fuzz_range 120 199);
      ] )
  ]
