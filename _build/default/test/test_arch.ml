(* Tests for lib/arch: tile geometry, DMA cost model, CPU model, the DIANA
   accelerator descriptions and rival-platform estimators. *)

module Dtype = Tensor.Dtype
module L = Ir.Layer
module Tile = Arch.Tile

module T = Tiling_fixtures

let conv_layer = T.conv_layer
let dw_layer = T.dw_layer
let dense_layer = T.dense_layer
let add_layer = T.add_layer

let test_tile_halo () =
  let l = conv_layer ~stride:2 ~f:3 () in
  let t = Tile.for_layer l ~c:16 ~k:8 ~oy:4 ~ox:4 in
  (* iy = (4-1)*2 + 3 = 9 *)
  Alcotest.(check int) "iy" 9 t.Tile.iy;
  Alcotest.(check int) "ix" 9 t.Tile.ix

let test_tile_full () =
  let l = conv_layer () in
  let t = Tile.full l in
  Alcotest.(check int) "k" 32 t.Tile.k;
  Alcotest.(check int) "oy" 32 t.Tile.oy;
  Alcotest.(check bool) "is_full" true (Tile.is_full l t);
  let smaller = Tile.for_layer l ~c:16 ~k:16 ~oy:32 ~ox:32 in
  Alcotest.(check bool) "partial not full" false (Tile.is_full l smaller)

let test_tile_depthwise_locks_c () =
  let l = dw_layer () in
  let t = Tile.for_layer l ~c:16 ~k:4 ~oy:8 ~ox:8 in
  Alcotest.(check int) "c follows k" 4 t.Tile.c

let test_tile_bytes () =
  let l = conv_layer ~c:16 ~k:32 ~f:3 () in
  let t = Tile.for_layer l ~c:16 ~k:8 ~oy:8 ~ox:8 in
  (* input 16 * 10 * 10, output 8 * 8 * 8, weights 8*(16*9 + 4 bias) *)
  Alcotest.(check int) "in" 1600 (Tile.bytes_in l t);
  Alcotest.(check int) "out" 512 (Tile.bytes_out l t);
  Alcotest.(check int) "weights" (8 * ((16 * 9) + 4)) (Tile.bytes_weights l t)

let test_tile_bytes_add_doubles_input () =
  let l = add_layer ~c:4 ~hw:8 () in
  let t = Tile.full l in
  Alcotest.(check int) "two operands" (2 * 4 * 8 * 8) (Tile.bytes_in l t)

let test_tile_count () =
  let l = conv_layer ~k:32 ~hw:32 () in
  let t = Tile.for_layer l ~c:16 ~k:8 ~oy:10 ~ox:32 in
  (* ceil(32/8) * ceil(32/10) * ceil(32/32) = 4 * 4 * 1 *)
  Alcotest.(check int) "count" 16 (Tile.count l t)

let test_tile_macs () =
  let l = conv_layer ~c:16 () in
  let t = Tile.for_layer l ~c:16 ~k:8 ~oy:4 ~ox:4 in
  Alcotest.(check int) "macs" (8 * 4 * 4 * 16 * 9) (Tile.macs l t);
  let dw = dw_layer () in
  let td = Tile.for_layer dw ~c:16 ~k:4 ~oy:4 ~ox:4 in
  Alcotest.(check int) "dw macs" (4 * 4 * 4 * 9) (Tile.macs dw td)

let test_dma_cost () =
  let dma = { Arch.Memory.setup_cycles = 40; per_chunk_cycles = 8; bytes_per_cycle = 8 } in
  Alcotest.(check int) "zero bytes free" 0 (Arch.Memory.transfer_cycles dma ~chunks:4 ~bytes:0);
  Alcotest.(check int) "formula" (40 + 32 + 128)
    (Arch.Memory.transfer_cycles dma ~chunks:4 ~bytes:1024)

let test_dma_chunks_coalesce () =
  let l = conv_layer ~hw:32 () in
  let full_width = Tile.for_layer l ~c:16 ~k:8 ~oy:8 ~ox:32 in
  (* Full-width tiles coalesce rows: one chunk per channel. *)
  Alcotest.(check int) "coalesced" 16 (Arch.Memory.tile_chunks l full_width ~input:true);
  let narrow = Tile.for_layer l ~c:16 ~k:8 ~oy:8 ~ox:8 in
  (* 16 channels x 10 halo rows *)
  Alcotest.(check int) "per-row" 160 (Arch.Memory.tile_chunks l narrow ~input:true)

let test_dma_chunks_add_doubles () =
  let l = add_layer ~c:4 ~hw:8 () in
  let t = Tile.full l in
  Alcotest.(check int) "two operand streams" 8 (Arch.Memory.tile_chunks l t ~input:true);
  Alcotest.(check int) "one output stream" 4 (Arch.Memory.tile_chunks l t ~input:false)

let test_cpu_layer_cycles_scale_with_macs () =
  let small = conv_layer ~c:8 ~k:8 () and big = conv_layer ~c:32 ~k:32 () in
  let cs = Arch.Cpu_model.layer_cycles Arch.Diana.cpu small in
  let cb = Arch.Cpu_model.layer_cycles Arch.Diana.cpu big in
  Alcotest.(check bool) "16x macs -> much slower" true (cb > 10 * cs)

let test_digital_supports () =
  let d = Arch.Diana.digital in
  Alcotest.(check bool) "i8 conv ok" true (d.Arch.Accel.supports (conv_layer ()));
  Alcotest.(check bool) "stride2 ok" true (d.Arch.Accel.supports (conv_layer ~stride:2 ()));
  Alcotest.(check bool) "ternary conv rejected" false
    (d.Arch.Accel.supports (conv_layer ~wdtype:Dtype.Ternary ()));
  Alcotest.(check bool) "dw ok" true (d.Arch.Accel.supports (dw_layer ()));
  Alcotest.(check bool) "dense ok" true (d.Arch.Accel.supports (dense_layer ()));
  Alcotest.(check bool) "add ok" true (d.Arch.Accel.supports (add_layer ()));
  let big_kernel = conv_layer ~f:9 ~pad:4 () in
  Alcotest.(check bool) "9x9 kernel rejected" false (d.Arch.Accel.supports big_kernel)

let test_analog_supports () =
  let a = Arch.Diana.analog in
  Alcotest.(check bool) "ternary conv ok" true
    (a.Arch.Accel.supports (conv_layer ~wdtype:Dtype.Ternary ()));
  Alcotest.(check bool) "i8 conv rejected" false (a.Arch.Accel.supports (conv_layer ()));
  Alcotest.(check bool) "dense rejected" false (a.Arch.Accel.supports (dense_layer ()));
  Alcotest.(check bool) "add ok" true (a.Arch.Accel.supports (add_layer ()));
  (* 256 channels x 3x3 = 2304 rows > 1152: too tall for the macro. *)
  let too_tall = conv_layer ~c:256 ~k:16 ~hw:8 ~wdtype:Dtype.Ternary () in
  Alcotest.(check bool) "row-capacity rule" false (a.Arch.Accel.supports too_tall)

let test_digital_peak_throughput () =
  let l = conv_layer ~c:16 ~k:16 ~hw:32 () in
  let t = Tile.for_layer l ~c:16 ~k:16 ~oy:32 ~ox:32 in
  let cycles = Arch.Diana.digital.Arch.Accel.compute_cycles l t in
  let rate = float_of_int (Tile.macs l t) /. float_of_int cycles in
  Alcotest.(check (float 0.01)) "256 MACs/cycle at full alignment" 256.0 rate

let test_digital_misaligned_utilization () =
  let l = conv_layer ~c:17 ~k:16 ~hw:31 ~pad:1 () in
  let t = Tile.full l in
  let cycles = Arch.Diana.digital.Arch.Accel.compute_cycles l t in
  let rate = float_of_int (Tile.macs l t) /. float_of_int cycles in
  Alcotest.(check bool) "misalignment hurts" true (rate < 200.0)

let test_digital_dw_slow () =
  let l = dw_layer () in
  let t = Tile.full l in
  let cycles = Arch.Diana.digital.Arch.Accel.compute_cycles l t in
  let rate = float_of_int (Tile.macs l t) /. float_of_int cycles in
  Alcotest.(check bool) "dw uses few lanes" true (rate <= 4.0 +. 0.01)

let test_analog_compute_independent_of_k () =
  let a = Arch.Diana.analog in
  let l1 = conv_layer ~c:16 ~k:16 ~wdtype:Dtype.Ternary () in
  let l2 = conv_layer ~c:16 ~k:64 ~wdtype:Dtype.Ternary () in
  Alcotest.(check int) "columns are parallel"
    (a.Arch.Accel.compute_cycles l1 (Tile.full l1))
    (a.Arch.Accel.compute_cycles l2 (Tile.full l2))

let test_analog_weight_load_expensive () =
  let a = Arch.Diana.analog in
  let l = conv_layer ~c:64 ~k:64 ~wdtype:Dtype.Ternary () in
  let t = Tile.full l in
  Alcotest.(check bool) "macro programming dominates" true
    (a.Arch.Accel.weight_load_cycles l t > a.Arch.Accel.compute_cycles l t)

let test_utilization_bounds () =
  let l = conv_layer () in
  let t = Tile.for_layer l ~c:16 ~k:8 ~oy:7 ~ox:13 in
  let u = Arch.Accel.utilization Arch.Diana.digital l t in
  Alcotest.(check bool) "in (0,1]" true (u > 0.0 && u <= 1.0)

let test_platform_with_accels () =
  Alcotest.(check int) "both" 2 (List.length Arch.Diana.platform.Arch.Platform.accels);
  Alcotest.(check int) "digital only" 1
    (List.length Arch.Diana.digital_only.Arch.Platform.accels);
  Alcotest.(check int) "cpu only" 0 (List.length Arch.Diana.cpu_only.Arch.Platform.accels);
  Alcotest.check_raises "unknown accel" Not_found (fun () ->
      ignore (Arch.Platform.with_accels Arch.Diana.platform [ "npu" ]))

let test_ms_of_cycles () =
  Alcotest.(check (float 1e-9)) "260k cycles at 260MHz = 1ms" 1.0
    (Arch.Platform.ms_of_cycles Arch.Diana.platform 260_000)

let resnetish_graph () =
  let b = Ir.Graph.Builder.create () in
  let rng = Util.Rng.create 9 in
  let x = Ir.Graph.Builder.input b ~name:"x" Dtype.I8 [| 3; 32; 32 |] in
  let w = Ir.Graph.Builder.const b (Tensor.random rng Dtype.I8 [| 16; 3; 3; 3 |]) in
  let conv = Ir.Graph.Builder.conv2d b ~padding:(1, 1) x ~weights:w in
  let q = Ir.Graph.Builder.requantize b ~relu:true ~shift:8 ~out_dtype:Dtype.I8 conv in
  Ir.Graph.Builder.finish b ~output:q

let test_rivals_ordering () =
  let g = resnetish_graph () in
  let stm = Arch.Rivals.estimate_graph_ms Arch.Rivals.stm32_tvm g in
  let cmsis = Arch.Rivals.estimate_graph_ms Arch.Rivals.stm32_cmsis g in
  let gap9 = Arch.Rivals.estimate_graph_ms Arch.Rivals.gap9_gapflow g in
  Alcotest.(check bool) "all positive" true (stm > 0.0 && cmsis > 0.0 && gap9 > 0.0);
  Alcotest.(check bool) "gap9 fastest" true (gap9 < cmsis && cmsis <= stm)

let prop_tile_count_covers =
  Helpers.qtest ~count:100 "tile grid covers output"
    QCheck.(quad (int_range 1 32) (int_range 1 32) (int_range 1 32) (int_range 1 32))
    (fun (k, oy, ox, kt) ->
      let l = conv_layer ~c:16 ~k:(max k 1) ~hw:32 () in
      let full = Tile.full l in
      let t =
        Tile.for_layer l ~c:16 ~k:(min kt full.Tile.k) ~oy:(min oy full.Tile.oy)
          ~ox:(min ox full.Tile.ox)
      in
      Tile.count l t
      = Util.Ints.ceil_div full.Tile.k t.Tile.k
        * Util.Ints.ceil_div full.Tile.oy t.Tile.oy
        * Util.Ints.ceil_div full.Tile.ox t.Tile.ox)

let suites =
  [ ( "arch",
      [ Alcotest.test_case "tile halo" `Quick test_tile_halo;
        Alcotest.test_case "tile full" `Quick test_tile_full;
        Alcotest.test_case "tile dw locks c" `Quick test_tile_depthwise_locks_c;
        Alcotest.test_case "tile bytes" `Quick test_tile_bytes;
        Alcotest.test_case "tile add doubles input" `Quick test_tile_bytes_add_doubles_input;
        Alcotest.test_case "tile count" `Quick test_tile_count;
        Alcotest.test_case "tile macs" `Quick test_tile_macs;
        Alcotest.test_case "dma cost" `Quick test_dma_cost;
        Alcotest.test_case "dma chunk coalescing" `Quick test_dma_chunks_coalesce;
        Alcotest.test_case "dma add chunks" `Quick test_dma_chunks_add_doubles;
        Alcotest.test_case "cpu cycles scale" `Quick test_cpu_layer_cycles_scale_with_macs;
        Alcotest.test_case "digital supports" `Quick test_digital_supports;
        Alcotest.test_case "analog supports" `Quick test_analog_supports;
        Alcotest.test_case "digital peak" `Quick test_digital_peak_throughput;
        Alcotest.test_case "digital misaligned" `Quick test_digital_misaligned_utilization;
        Alcotest.test_case "digital dw slow" `Quick test_digital_dw_slow;
        Alcotest.test_case "analog k-parallel" `Quick test_analog_compute_independent_of_k;
        Alcotest.test_case "analog weight load" `Quick test_analog_weight_load_expensive;
        Alcotest.test_case "utilization bounds" `Quick test_utilization_bounds;
        Alcotest.test_case "platform with_accels" `Quick test_platform_with_accels;
        Alcotest.test_case "ms_of_cycles" `Quick test_ms_of_cycles;
        Alcotest.test_case "rivals ordering" `Quick test_rivals_ordering;
        prop_tile_count_covers;
      ] )
  ]
