test/test_sim.ml: Alcotest Arch Array Byoc Dory Helpers Ir List Option QCheck Result Sim Tensor Tiling_fixtures Util
