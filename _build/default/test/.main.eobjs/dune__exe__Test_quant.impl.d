test/test_quant.ml: Alcotest Arch Array Byoc Float Helpers Htvm Ir List QCheck Quant Tensor Util
