test/main.mli:
