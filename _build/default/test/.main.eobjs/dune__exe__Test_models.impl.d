test/test_models.ml: Alcotest Array Helpers Ir List Models Nn Tensor
