test/test_dory.ml: Alcotest Arch Dory Float Helpers List QCheck Tensor Tiling_fixtures Util
