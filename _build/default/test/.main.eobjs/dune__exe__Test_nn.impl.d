test/test_nn.ml: Alcotest Array Helpers Nn QCheck Tensor Util
