test/test_byoc.ml: Alcotest Array Byoc Format Helpers Ir List QCheck Result Tensor Util
