test/test_fused_pool.ml: Alcotest Arch Array Byoc Dory Helpers Htvm Ir List Nn QCheck Result Tensor Tiling_fixtures Util
