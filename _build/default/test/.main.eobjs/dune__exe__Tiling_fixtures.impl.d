test/tiling_fixtures.ml: Ir Nn Tensor Util
