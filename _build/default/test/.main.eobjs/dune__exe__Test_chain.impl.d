test/test_chain.ml: Alcotest Arch Array Dory Helpers Ir Option QCheck Result Sim Tensor Tiling_fixtures Util
