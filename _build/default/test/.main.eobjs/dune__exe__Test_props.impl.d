test/test_props.ml: Arch Codegen Dory Gen_graphs Helpers Ir List QCheck Tiling_fixtures Tune Util
