test/test_faults.ml: Alcotest Arch Bytes Char Dory Helpers Htvm Ir List Models Result Sim Tensor Tiling_fixtures Util
