test/helpers.ml: Alcotest QCheck QCheck_alcotest String Tensor Util
