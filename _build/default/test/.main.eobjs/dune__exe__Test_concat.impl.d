test/test_concat.ml: Alcotest Arch Array Helpers Htvm Ir List Nn QCheck Result Tensor Util
