test/test_fuzz.ml: Alcotest Gen_graphs Helpers Htvm Ir List Models Nn Printexc Sim Tensor
