test/test_tune.ml: Alcotest Arch Helpers Htvm Ir List Models Printf QCheck Result Tiling_fixtures Tune Util
