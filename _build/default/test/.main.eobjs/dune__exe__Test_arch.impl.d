test/test_arch.ml: Alcotest Arch Helpers Ir List QCheck Tensor Tiling_fixtures Util
