test/test_tensor.ml: Alcotest Array Helpers Printf QCheck Tensor Util
