test/test_htvm.ml: Alcotest Arch Codegen Helpers Htvm Ir List Models Printf Sim Tensor Util
