test/test_rewrite.ml: Alcotest Array Gen_graphs Helpers Ir List Models QCheck Tensor Util
