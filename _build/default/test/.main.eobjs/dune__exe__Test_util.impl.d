test/test_util.ml: Alcotest Helpers List QCheck String Util
