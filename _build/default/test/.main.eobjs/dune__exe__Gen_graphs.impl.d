test/gen_graphs.ml: Arch Array Dory Htvm Ir List Tensor Util
