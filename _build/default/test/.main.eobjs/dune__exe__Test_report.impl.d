test/test_report.ml: Alcotest Arch Byoc Codegen Dory Format Helpers Htvm Ir List Models Result String Tensor Tiling_fixtures Util
