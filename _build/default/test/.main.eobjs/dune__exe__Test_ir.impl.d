test/test_ir.ml: Alcotest Array Helpers Ir List Nn Option QCheck Tensor Tiling_fixtures Util
