test/test_extensions.ml: Alcotest Arch Dory Helpers Htvm Ir List Models Result Sim String Tiling_fixtures Util
