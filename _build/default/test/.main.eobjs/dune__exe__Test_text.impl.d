test/test_text.ml: Alcotest Filename Fun Gen_graphs Helpers Ir List Models QCheck Sys Tensor Util
