test/test_misc.ml: Alcotest Arch Codegen Helpers Htvm Ir List Models Result Sim
