(* Tests for lib/nn reference kernels: hand-computed cases plus algebraic
   property tests (linearity, equivalence of formulations). *)

module Dtype = Tensor.Dtype
module K = Nn.Kernels

let i8 shape data = Tensor.of_array Dtype.I8 shape data
let i32 shape data = Tensor.of_array Dtype.I32 shape data

let test_conv_identity_kernel () =
  (* 1x1 kernel of value 1 on a single channel is the identity (as i32). *)
  let input = i8 [| 1; 2; 2 |] [| 1; -2; 3; 4 |] in
  let w = i8 [| 1; 1; 1; 1 |] [| 1 |] in
  let out = K.conv2d ~input ~weights:w K.conv_default in
  Helpers.check_tensor "identity" (i32 [| 1; 2; 2 |] [| 1; -2; 3; 4 |]) out

let test_conv_hand_case () =
  (* 2x2 input, 2x2 kernel, no padding: single dot product. *)
  let input = i8 [| 1; 2; 2 |] [| 1; 2; 3; 4 |] in
  let w = i8 [| 1; 1; 2; 2 |] [| 10; 20; 30; 40 |] in
  let out = K.conv2d ~input ~weights:w K.conv_default in
  Helpers.check_tensor "dot" (i32 [| 1; 1; 1 |] [| 300 |]) out

let test_conv_padding () =
  (* 1x1 input, 3x3 all-ones kernel, pad 1: only the center tap hits. *)
  let input = i8 [| 1; 1; 1 |] [| 5 |] in
  let w = Tensor.create Dtype.I8 [| 1; 1; 3; 3 |] in
  Tensor.fill w 1;
  let out = K.conv2d ~input ~weights:w { K.conv_default with padding = (1, 1) } in
  (* Only the center tap lands inside the image. *)
  Helpers.check_tensor "padded" (i32 [| 1; 1; 1 |] [| 5 |]) out;
  (* A 3x3 input with pad 1 keeps its spatial size and the corner output
     sums the 2x2 corner neighbourhood. *)
  let input = i8 [| 1; 3; 3 |] (Array.init 9 (fun i -> i + 1)) in
  let out = K.conv2d ~input ~weights:w { K.conv_default with padding = (1, 1) } in
  Alcotest.(check (list int)) "same-size output" [ 1; 3; 3 ]
    (Array.to_list (Tensor.shape out));
  Alcotest.(check int) "corner sum" (1 + 2 + 4 + 5) (Tensor.get out [| 0; 0; 0 |]);
  Alcotest.(check int) "center sum" 45 (Tensor.get out [| 0; 1; 1 |])

let test_conv_stride () =
  let input = i8 [| 1; 4; 4 |] (Array.init 16 (fun i -> i)) in
  let w = i8 [| 1; 1; 1; 1 |] [| 1 |] in
  let out = K.conv2d ~input ~weights:w { K.conv_default with stride = (2, 2) } in
  Helpers.check_tensor "strided" (i32 [| 1; 2; 2 |] [| 0; 2; 8; 10 |]) out

let test_conv_multi_channel () =
  (* Two input channels summed by a 1x1 kernel with weights (1, 2). *)
  let input = i8 [| 2; 1; 2 |] [| 1; 2; 10; 20 |] in
  let w = i8 [| 1; 2; 1; 1 |] [| 1; 2 |] in
  let out = K.conv2d ~input ~weights:w K.conv_default in
  Helpers.check_tensor "channels" (i32 [| 1; 1; 2 |] [| 21; 42 |]) out

let test_conv_out_dims () =
  let p = { K.stride = (2, 2); padding = (1, 1); groups = 1 } in
  Alcotest.(check (pair int int)) "32->16" (16, 16)
    (K.conv_out_dims ~in_dims:(32, 32) ~kernel:(3, 3) p)

let test_conv_rejects_bad_groups () =
  let input = Tensor.create Dtype.I8 [| 3; 4; 4 |] in
  let w = Tensor.create Dtype.I8 [| 4; 3; 1; 1 |] in
  Alcotest.check_raises "groups" (Invalid_argument "conv2d: bad group count") (fun () ->
      ignore (K.conv2d ~input ~weights:w { K.conv_default with groups = 2 }))

let test_depthwise_hand_case () =
  (* Each channel convolved with its own kernel. *)
  let input = i8 [| 2; 2; 2 |] [| 1; 1; 1; 1; 2; 2; 2; 2 |] in
  let w = i8 [| 2; 1; 2; 2 |] [| 1; 1; 1; 1; 3; 3; 3; 3 |] in
  let out = K.depthwise_conv2d ~input ~weights:w K.conv_default in
  Helpers.check_tensor "dw" (i32 [| 2; 1; 1 |] [| 4; 24 |]) out

let test_dense_hand_case () =
  let input = i8 [| 3 |] [| 1; 2; 3 |] in
  let w = i8 [| 2; 3 |] [| 1; 0; 0; 1; 1; 1 |] in
  let out = K.dense ~input ~weights:w in
  Helpers.check_tensor "dense" (i32 [| 2 |] [| 1; 6 |]) out

let test_bias_add_broadcast () =
  let acc = i32 [| 2; 1; 2 |] [| 1; 2; 3; 4 |] in
  let bias = i32 [| 2 |] [| 10; 20 |] in
  let out = K.bias_add acc bias in
  Helpers.check_tensor "bias" (i32 [| 2; 1; 2 |] [| 11; 12; 23; 24 |]) out

let test_requantize_shift_clip_cast () =
  let acc = i32 [| 4 |] [| 1024; -1024; 100000; -100000 |] in
  let out = K.requantize ~shift:4 ~out_dtype:Dtype.I8 acc in
  Helpers.check_tensor "requant" (i8 [| 4 |] [| 64; -64; 127; -128 |]) out

let test_requantize_relu () =
  let acc = i32 [| 3 |] [| -512; 0; 512 |] in
  let out = K.requantize ~relu:true ~shift:2 ~out_dtype:Dtype.I8 acc in
  Helpers.check_tensor "requant+relu" (i8 [| 3 |] [| 0; 0; 127 |]) out

let test_requantize_negative_shift_rounds_down () =
  (* Arithmetic shift of negative values rounds toward minus infinity,
     matching RISC-V sra semantics. *)
  let acc = i32 [| 2 |] [| -1; -3 |] in
  let out = K.requantize ~shift:1 ~out_dtype:Dtype.I8 acc in
  Helpers.check_tensor "asr semantics" (i8 [| 2 |] [| -1; -2 |]) out

let test_relu () =
  let t = i8 [| 4 |] [| -3; 0; 2; -128 |] in
  Helpers.check_tensor "relu" (i8 [| 4 |] [| 0; 0; 2; 0 |]) (K.relu t)

let test_add () =
  let a = i8 [| 2 |] [| 100; -100 |] and b = i8 [| 2 |] [| 100; -100 |] in
  Helpers.check_tensor "residual add widens" (i32 [| 2 |] [| 200; -200 |]) (K.add a b)

let test_max_pool () =
  let t = i8 [| 1; 2; 4 |] [| 1; 5; 2; 0; 3; 4; 8; -1 |] in
  let out = K.max_pool ~pool:(2, 2) ~stride:(2, 2) t in
  Helpers.check_tensor "maxpool" (i8 [| 1; 1; 2 |] [| 5; 8 |]) out

let test_avg_pool () =
  let t = i8 [| 1; 2; 2 |] [| 1; 3; 5; 7 |] in
  let out = K.avg_pool ~pool:(2, 2) ~stride:(2, 2) t in
  Helpers.check_tensor "avgpool" (i8 [| 1; 1; 1 |] [| 4 |]) out

let test_avg_pool_negative_truncation () =
  let t = i8 [| 1; 1; 2 |] [| -1; -2 |] in
  let out = K.avg_pool ~pool:(1, 2) ~stride:(1, 2) t in
  (* Sum -3 over 2 -> -2 when rounding toward minus infinity. *)
  Helpers.check_tensor "negative avg" (i8 [| 1; 1; 1 |] [| -2 |]) out

let test_global_avg_pool () =
  let t = i8 [| 2; 2; 2 |] [| 1; 1; 1; 1; 4; 4; 4; 4 |] in
  let out = K.global_avg_pool t in
  Helpers.check_tensor "gap" (i8 [| 2; 1; 1 |] [| 1; 4 |]) out

let test_softmax_preserves_argmax () =
  let t = i8 [| 4 |] [| -50; 10; 100; 3 |] in
  let out = K.softmax t in
  let best = ref 0 in
  for i = 1 to 3 do
    if Tensor.get out [| i |] > Tensor.get out [| !best |] then best := i
  done;
  Alcotest.(check int) "argmax kept" 2 !best;
  Tensor.iteri_flat (fun _ v -> Alcotest.(check bool) "range" true (v >= 0 && v <= 127)) out

let test_softmax_uniform () =
  let t = i8 [| 4 |] [| 7; 7; 7; 7 |] in
  let out = K.softmax t in
  let v0 = Tensor.get out [| 0 |] in
  Tensor.iteri_flat (fun _ v -> Alcotest.(check int) "uniform" v0 v) out

let test_flatten () =
  let t = Tensor.create Dtype.I8 [| 2; 3; 4 |] in
  Alcotest.(check int) "rank 1" 1 (Tensor.rank (K.flatten t));
  Alcotest.(check int) "numel kept" 24 (Tensor.numel (K.flatten t))

(* --- Property tests --- *)

let small_conv_case =
  let open QCheck.Gen in
  let gen =
    int_range 1 3 >>= fun c ->
    int_range 1 3 >>= fun k ->
    int_range 1 3 >>= fun f ->
    int_range f 7 >>= fun h ->
    int_range f 7 >>= fun w ->
    int_range 1 2 >>= fun s ->
    int_range 0 1 >>= fun pad ->
    int >|= fun seed ->
    let rng = Util.Rng.create seed in
    let input = Tensor.random rng Dtype.I8 [| c; h; w |] in
    let weights = Tensor.random rng Dtype.I8 [| k; c; f; f |] in
    (input, weights, { K.stride = (s, s); padding = (pad, pad); groups = 1 })
  in
  QCheck.make gen

let prop_conv_linear_in_weights =
  (* conv(x, w1 + w2) = conv(x, w1) + conv(x, w2) — accumulate in i32 with
     i8/4 inputs so sums stay in range. *)
  Helpers.qtest ~count:50 "conv linear in weights" small_conv_case
    (fun (input, weights, p) ->
      let half = Tensor.map (fun v -> v / 2) weights in
      let rest = Tensor.map2 Dtype.I8 ( - ) weights half in
      let whole = K.conv2d ~input ~weights p in
      let parts = K.add (K.conv2d ~input ~weights:half p) (K.conv2d ~input ~weights:rest p) in
      Tensor.max_abs_diff whole parts = 0)

let prop_conv_1x1_equals_dense_per_pixel =
  Helpers.qtest ~count:50 "1x1 conv == per-pixel dense"
    QCheck.(pair (int_range 1 4) int)
    (fun (c, seed) ->
      let rng = Util.Rng.create seed in
      let h = 3 and w = 3 and k = 2 in
      let input = Tensor.random rng Dtype.I8 [| c; h; w |] in
      let weights = Tensor.random rng Dtype.I8 [| k; c; 1; 1 |] in
      let conv = K.conv2d ~input ~weights K.conv_default in
      let wmat = Tensor.reshape weights [| k; c |] in
      let ok = ref true in
      for y = 0 to h - 1 do
        for x = 0 to w - 1 do
          let pixel = Tensor.create Dtype.I8 [| c |] in
          for ci = 0 to c - 1 do
            Tensor.set pixel [| ci |] (Tensor.get input [| ci; y; x |])
          done;
          let d = K.dense ~input:pixel ~weights:wmat in
          for ko = 0 to k - 1 do
            if Tensor.get d [| ko |] <> Tensor.get conv [| ko; y; x |] then ok := false
          done
        done
      done;
      !ok)

let prop_depthwise_equals_grouped_conv =
  Helpers.qtest ~count:50 "depthwise == conv groups=c"
    QCheck.(pair (int_range 1 4) int)
    (fun (c, seed) ->
      let rng = Util.Rng.create seed in
      let input = Tensor.random rng Dtype.I8 [| c; 5; 5 |] in
      let weights = Tensor.random rng Dtype.I8 [| c; 1; 3; 3 |] in
      let dw = K.depthwise_conv2d ~input ~weights K.conv_default in
      let grouped = K.conv2d ~input ~weights { K.conv_default with groups = c } in
      Tensor.equal dw grouped)

let prop_requantize_in_range =
  Helpers.qtest "requantize output in dtype range"
    QCheck.(pair (int_range 0 8) int)
    (fun (shift, seed) ->
      let t = Tensor.random (Util.Rng.create seed) Dtype.I32 [| 16 |] in
      let out = K.requantize ~shift ~out_dtype:Dtype.I8 t in
      Tensor.fold (fun ok v -> ok && Dtype.in_range Dtype.I8 v) true out)

let prop_requantize_monotone =
  Helpers.qtest "requantize is monotone" QCheck.(pair (int_range 0 8) (pair int int))
    (fun (shift, (a, b)) ->
      let a = a mod 1_000_000 and b = b mod 1_000_000 in
      let lo = min a b and hi = max a b in
      let t = Tensor.of_array Dtype.I32 [| 2 |] [| lo; hi |] in
      let out = K.requantize ~shift ~out_dtype:Dtype.I8 t in
      Tensor.get out [| 0 |] <= Tensor.get out [| 1 |])

let prop_ternary_conv_bounded =
  (* Ternary weights bound the accumulator by the receptive field size *
     max |activation|, the property the analog IMC range model relies on. *)
  Helpers.qtest ~count:50 "ternary conv bounded" QCheck.int (fun seed ->
      let rng = Util.Rng.create seed in
      let input = Tensor.random rng Dtype.U7 [| 3; 5; 5 |] in
      let weights = Tensor.random rng Dtype.Ternary [| 2; 3; 3; 3 |] in
      let out = K.conv2d ~input ~weights K.conv_default in
      let bound = 3 * 3 * 3 * 127 in
      Tensor.fold (fun ok v -> ok && abs v <= bound) true out)

let prop_max_pool_dominates_avg =
  Helpers.qtest ~count:50 "max pool >= avg pool" (Helpers.arbitrary_chw Dtype.I8)
    (fun t ->
      let h = Tensor.dim t 1 and w = Tensor.dim t 2 in
      if h < 2 || w < 2 then true
      else
        let m = K.max_pool ~pool:(2, 2) ~stride:(2, 2) t in
        let a = K.avg_pool ~pool:(2, 2) ~stride:(2, 2) t in
        let ok = ref true in
        Tensor.iteri_flat (fun i v -> if v < Tensor.get_flat a i then ok := false) m;
        !ok)

let suites =
  [ ( "nn-kernels",
      [ Alcotest.test_case "conv identity" `Quick test_conv_identity_kernel;
        Alcotest.test_case "conv hand case" `Quick test_conv_hand_case;
        Alcotest.test_case "conv padding" `Quick test_conv_padding;
        Alcotest.test_case "conv stride" `Quick test_conv_stride;
        Alcotest.test_case "conv multi-channel" `Quick test_conv_multi_channel;
        Alcotest.test_case "conv out dims" `Quick test_conv_out_dims;
        Alcotest.test_case "conv bad groups" `Quick test_conv_rejects_bad_groups;
        Alcotest.test_case "depthwise hand case" `Quick test_depthwise_hand_case;
        Alcotest.test_case "dense hand case" `Quick test_dense_hand_case;
        Alcotest.test_case "bias broadcast" `Quick test_bias_add_broadcast;
        Alcotest.test_case "requantize" `Quick test_requantize_shift_clip_cast;
        Alcotest.test_case "requantize relu" `Quick test_requantize_relu;
        Alcotest.test_case "requantize asr" `Quick test_requantize_negative_shift_rounds_down;
        Alcotest.test_case "relu" `Quick test_relu;
        Alcotest.test_case "add" `Quick test_add;
        Alcotest.test_case "max pool" `Quick test_max_pool;
        Alcotest.test_case "avg pool" `Quick test_avg_pool;
        Alcotest.test_case "avg pool negative" `Quick test_avg_pool_negative_truncation;
        Alcotest.test_case "global avg pool" `Quick test_global_avg_pool;
        Alcotest.test_case "softmax argmax" `Quick test_softmax_preserves_argmax;
        Alcotest.test_case "softmax uniform" `Quick test_softmax_uniform;
        Alcotest.test_case "flatten" `Quick test_flatten;
        prop_conv_linear_in_weights;
        prop_conv_1x1_equals_dense_per_pixel;
        prop_depthwise_equals_grouped_conv;
        prop_requantize_in_range;
        prop_requantize_monotone;
        prop_ternary_conv_bounded;
        prop_max_pool_dominates_avg;
      ] )
  ]
