(* Shared layer fixtures for arch/dory/sim tests. *)

module Dtype = Tensor.Dtype
module L = Ir.Layer

(* Bias values bounded well inside i32 so accumulator + bias cannot leave
   the i32 range for any test geometry. *)
let bias_tensor rng n =
  let t = Tensor.create Dtype.I32 [| n |] in
  for i = 0 to n - 1 do
    Tensor.set_flat t i (Util.Rng.int_in rng (-1_000_000) 1_000_000)
  done;
  t

let conv_layer ?(c = 16) ?(k = 32) ?(hw = 32) ?(f = 3) ?(stride = 1) ?(pad = 1)
    ?(wdtype = Dtype.I8) ?(relu = true) ?(shift = 8) ?(seed = 33) () =
  let rng = Util.Rng.create seed in
  let p = { Nn.Kernels.stride = (stride, stride); padding = (pad, pad); groups = 1 } in
  let oh, ow = Nn.Kernels.conv_out_dims ~in_dims:(hw, hw) ~kernel:(f, f) p in
  {
    L.kind = L.Conv p;
    fused_pool = None;
    weights = Some (Tensor.random rng wdtype [| k; c; f; f |]);
    bias = Some (bias_tensor rng k);
    shift = Some shift;
    relu;
    in_shape = [| c; hw; hw |];
    in2_shape = None;
    out_shape = [| k; oh; ow |];
    in_dtype = Dtype.I8;
    out_dtype = Dtype.I8;
  }

let dw_layer ?(c = 16) ?(hw = 16) ?(seed = 4) () =
  let rng = Util.Rng.create seed in
  let p = { Nn.Kernels.stride = (1, 1); padding = (1, 1); groups = c } in
  {
    L.kind = L.Conv p;
    fused_pool = None;
    weights = Some (Tensor.random rng Dtype.I8 [| c; 1; 3; 3 |]);
    bias = None;
    shift = Some 7;
    relu = true;
    in_shape = [| c; hw; hw |];
    in2_shape = None;
    out_shape = [| c; hw; hw |];
    in_dtype = Dtype.I8;
    out_dtype = Dtype.I8;
  }

let dense_layer ?(c = 640) ?(k = 128) ?(seed = 5) () =
  let rng = Util.Rng.create seed in
  {
    L.kind = L.Dense;
    fused_pool = None;
    weights = Some (Tensor.random rng Dtype.I8 [| k; c |]);
    bias = Some (bias_tensor rng k);
    shift = Some 8;
    relu = false;
    in_shape = [| c |];
    in2_shape = None;
    out_shape = [| k |];
    in_dtype = Dtype.I8;
    out_dtype = Dtype.I8;
  }

let add_layer ?(c = 16) ?(hw = 16) () =
  {
    L.kind = L.Add;
    fused_pool = None;
    weights = None;
    bias = None;
    shift = Some 1;
    relu = false;
    in_shape = [| c; hw; hw |];
    in2_shape = Some [| c; hw; hw |];
    out_shape = [| c; hw; hw |];
    in_dtype = Dtype.I8;
    out_dtype = Dtype.I8;
  }
