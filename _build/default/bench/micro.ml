(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure,
   timing the computational core each experiment leans on. *)

open Bechamel
open Toolkit

let resnet_graph = lazy ((Models.Zoo.find "resnet8").Models.Zoo.build Models.Policy.All_int8)

let tiling = Dory.Tiling.default_config ~l1_budget:(Util.Ints.kib 16)

let fig4_layer = Tiling_layers.conv ~c:32 ~k:32 ~hw:32 ()
let fig5_layer = Tiling_layers.conv ~c:16 ~k:16 ~hw:8 ()

let tests =
  Test.make_grouped ~name:"htvm"
    [
      Test.make ~name:"fig4/tiling_solve"
        (Staged.stage (fun () ->
             ignore (Dory.Tiling.solve tiling Arch.Diana.digital fig4_layer)));
      Test.make ~name:"fig5/single_layer_exec"
        (Staged.stage (fun () ->
             ignore
               (Htvm.Lab.run_single_layer ~accel:Arch.Diana.digital
                  ~tiling:(Dory.Tiling.default_config ~l1_budget:(Util.Ints.kib 256))
                  fig5_layer)));
      Test.make ~name:"table1/compile_resnet_digital"
        (Staged.stage (fun () ->
             ignore
               (Htvm.Compile.compile
                  (Htvm.Compile.default_config Arch.Diana.digital_only)
                  (Lazy.force resnet_graph))));
      Test.make ~name:"table2/rival_estimate"
        (Staged.stage (fun () ->
             ignore
               (Arch.Rivals.estimate_graph_cycles Arch.Rivals.stm32_tvm
                  (Lazy.force resnet_graph))));
      Test.make ~name:"common/pattern_match_resnet"
        (Staged.stage (fun () ->
             ignore
               (Byoc.Pattern.find_all (Lazy.force resnet_graph)
                  Byoc.Library.conv2d_pattern)));
    ]

let run () =
  print_endline "=== Micro-benchmarks (bechamel, one per experiment) ===";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~stabilize:true ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (v :: _) -> Printf.sprintf "%.0f" v
        | Some [] | None -> "-"
      in
      rows := [ name; ns ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  print_string
    (Util.Table.render
       ~align:[ Util.Table.Left; Right ]
       ~header:[ "benchmark"; "ns/run" ] rows);
  print_newline ()
