bench/table1.ml: Arch Codegen Htvm List Models Printf String Util
