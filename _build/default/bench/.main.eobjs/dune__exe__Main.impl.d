bench/main.ml: Ablation Array Energy Fig2 Fig4 Fig5 List Micro Printf Quantization String Sys Table1 Table2
