bench/fig4.ml: Arch Dory Htvm List Printf Sim Tiling_layers Util
