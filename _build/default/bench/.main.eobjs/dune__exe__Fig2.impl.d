bench/fig2.ml: Arch Htvm List Models Printf Sim String
