bench/table2.ml: Arch Htvm List Models Printf Util
