bench/main.mli:
