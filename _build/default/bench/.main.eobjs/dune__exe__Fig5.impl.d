bench/fig5.ml: Arch Dory Htvm Ir List Printf Tensor Tiling_layers Util
