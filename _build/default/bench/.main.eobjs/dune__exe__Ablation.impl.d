bench/ablation.ml: Arch Dory Float Htvm List Models Printf Sim Tiling_layers Util
