bench/tiling_layers.ml: Ir Nn Tensor Util
