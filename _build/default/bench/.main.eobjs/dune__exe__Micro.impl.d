bench/micro.ml: Analyze Arch Bechamel Benchmark Byoc Dory Hashtbl Htvm Instance Lazy List Measure Models Printf Staged Test Tiling_layers Time Toolkit Util
