bench/energy.ml: Arch Htvm List Models Printf Sim Util
