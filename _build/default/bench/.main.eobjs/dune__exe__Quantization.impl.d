bench/quantization.ml: Arch Htvm Ir List Printf Quant Util
