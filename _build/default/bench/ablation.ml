(* Ablations over HTVM's own design choices (DESIGN.md ABL1/ABL2):
   - DMA/compute double buffering on vs off,
   - tiling heuristics on vs off at network scale,
   - L2 activation planning with vs without buffer reuse. *)

module C = Htvm.Compile

let full_ms cfg g =
  match C.compile cfg g with
  | Error e -> Error e
  | Ok artifact ->
      let _, report = C.run artifact ~inputs:(Models.Zoo.random_input g) in
      Ok (C.latency_ms cfg (C.full_cycles report), artifact)

(* The MLPerf nets fit DIANA's 256 kB L1 untiled, so the tiling knobs only
   matter on a smaller-L1 variant of the SoC (8 kB forces every large
   layer through the tiler). *)
let constrained_digital =
  {
    Arch.Diana.digital_only with
    Arch.Platform.l1 = { Arch.Memory.level_name = "L1"; size_bytes = Util.Ints.kib 8 };
  }

let run () =
  print_endline "=== Ablations ===";
  print_endline
    "\n-- double buffering & tiling heuristics (CPU+Digital, 8 kB L1 variant) --";
  let rows =
    List.map
      (fun (e : Models.Zoo.entry) ->
        let g = e.Models.Zoo.build Models.Policy.All_int8 in
        let base = C.default_config constrained_digital in
        let ms cfg = match full_ms cfg g with Ok (v, _) -> Printf.sprintf "%.2f" v | Error _ -> "-" in
        [ e.Models.Zoo.display_name;
          ms base;
          ms { base with C.double_buffer = false };
          ms { base with C.use_pe_heuristics = false; use_dma_heuristic = false } ])
      Models.Zoo.all
  in
  print_string
    (Util.Table.render
       ~align:[ Util.Table.Left; Right; Right; Right ]
       ~header:[ "model"; "htvm ms"; "no double-buffer"; "no heuristics" ]
       rows);
  print_endline "\n-- L2 activation planner: liveness reuse vs plain-TVM no-reuse --";
  let rows =
    List.map
      (fun (e : Models.Zoo.entry) ->
        let g = e.Models.Zoo.build Models.Policy.All_int8 in
        let peak cfg =
          match C.compile cfg g with
          | Ok a -> Printf.sprintf "%d" a.C.program.Sim.Program.l2_activation_peak
          | Error _ -> "OoM"
        in
        [ e.Models.Zoo.display_name;
          peak (C.default_config Arch.Diana.cpu_only);
          peak (C.tvm_baseline_config Arch.Diana.cpu_only) ])
      Models.Zoo.all
  in
  print_string
    (Util.Table.render
       ~align:[ Util.Table.Left; Right; Right ]
       ~header:[ "model"; "reuse peak B"; "no-reuse peak B" ]
       rows);
  print_endline
    "\n-- TVM-style autotuning of CPU kernels vs HTVM's tuning-free accel path --";
  let rows =
    List.map
      (fun (e : Models.Zoo.entry) ->
        let g = e.Models.Zoo.build Models.Policy.All_int8 in
        let base = C.default_config Arch.Diana.cpu_only in
        let tuned = { base with C.autotune_budget = Some 64 } in
        let measure cfg =
          match full_ms cfg g with
          | Ok (ms, a) -> (ms, a.C.tuning_trials)
          | Error _ -> (Float.nan, 0)
        in
        let base_ms, _ = measure base in
        let tuned_ms, trials = measure tuned in
        let dig_ms, _ = measure (C.default_config Arch.Diana.digital_only) in
        [ e.Models.Zoo.display_name;
          (if Float.is_nan base_ms then "OoM" else Printf.sprintf "%.2f" base_ms);
          (if Float.is_nan tuned_ms then "OoM" else Printf.sprintf "%.2f" tuned_ms);
          string_of_int trials;
          Printf.sprintf "%.2f" dig_ms ])
      Models.Zoo.all
  in
  print_string
    (Util.Table.render
       ~align:[ Util.Table.Left; Right; Right; Right; Right ]
       ~header:
         [ "model"; "cpu ms"; "cpu tuned ms"; "device trials"; "htvm digital ms (0 trials)" ]
       rows);
  print_endline
    "\n-- depth-first fusion of conv pairs: peak L2 vs recompute (extension) --";
  let chain_row name first second budget_kib =
    match Dory.Chain.plan ~l1_budget:(Util.Ints.kib budget_kib) first second with
    | Error e -> [ name; "-"; "-"; "-"; "-"; e ]
    | Ok plan ->
        let seq = Dory.Chain.l2_peak_sequential plan in
        let fused = Dory.Chain.l2_peak_fused plan in
        [ name;
          string_of_int seq;
          string_of_int fused;
          Printf.sprintf "%.2fx" (float_of_int seq /. float_of_int fused);
          Printf.sprintf "%.2fx" (Dory.Chain.recompute_factor plan);
          Printf.sprintf "%d stripes" plan.Dory.Chain.stripes ]
  in
  let rows =
    [
      chain_row "resnet stem pair"
        (Tiling_layers.conv ~c:16 ~k:16 ~hw:32 ())
        (Tiling_layers.conv ~c:16 ~k:16 ~hw:32 ~seed:2026 ())
        16;
      chain_row "fat intermediate"
        (Tiling_layers.conv ~c:8 ~k:64 ~hw:32 ())
        (Tiling_layers.conv ~c:64 ~k:8 ~hw:32 ~seed:2027 ())
        32;
      chain_row "downscaling pair"
        (Tiling_layers.conv ~c:16 ~k:32 ~hw:48 ())
        (Tiling_layers.conv ~c:32 ~k:32 ~hw:48 ~stride:2 ~seed:2028 ())
        24;
    ]
  in
  print_string
    (Util.Table.render
       ~align:[ Util.Table.Left; Right; Right; Right; Right; Right ]
       ~header:[ "pair"; "seq peak B"; "fused peak B"; "saving"; "recompute"; "plan" ]
       rows);
  print_newline ()
