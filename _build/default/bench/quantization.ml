(* Quantization-quality experiment (extension): the paper consumes
   pre-quantized networks; this harness measures what our PTQ front end
   costs in accuracy (SQNR vs the float reference) and buys in latency
   when the result is deployed through HTVM. *)

module C = Htvm.Compile

let measure name model ~ternary =
  let rng = Util.Rng.create 1 in
  let calibration =
    List.init 8 (fun _ -> Quant.Ftensor.random rng model.Quant.Fmodel.f_input_shape)
  in
  match Quant.Quantize.quantize ~ternary ~calibration model with
  | Error e -> [ name; (if ternary then "ternary" else "int8"); "error: " ^ e; "-"; "-" ]
  | Ok (g, meta) ->
      let x = Quant.Ftensor.random (Util.Rng.create 42) model.Quant.Fmodel.f_input_shape in
      let reference = Quant.Fmodel.infer model x in
      let qx = Quant.Quantize.quantize_input meta x in
      let deq =
        Quant.Quantize.dequantize_output meta (Ir.Eval.run g ~inputs:[ ("input", qx) ])
      in
      let db = Quant.Ftensor.sqnr_db ~reference deq in
      let platform = if ternary then Arch.Diana.platform else Arch.Diana.digital_only in
      let cfg = C.default_config platform in
      let lat =
        match C.compile cfg g with
        | Error _ -> "-"
        | Ok artifact ->
            let _, report = C.run artifact ~inputs:[ ("input", qx) ] in
            Printf.sprintf "%.3f" (C.latency_ms cfg (C.full_cycles report))
      in
      [ name; (if ternary then "ternary" else "int8"); Printf.sprintf "%.1f dB" db;
        lat; string_of_int (Ir.Graph.app_count g) ]

let run () =
  print_endline "=== Quantization front end: SQNR and deployed latency ===";
  let rows =
    List.concat_map
      (fun (name, m) -> [ measure name m ~ternary:false; measure name m ~ternary:true ])
      [ ("small-cnn", Quant.Fmodel.random_cnn ()); ("dae-mlp", Quant.Fmodel.random_mlp ()) ]
  in
  print_string
    (Util.Table.render
       ~align:[ Util.Table.Left; Left; Right; Right; Right ]
       ~header:[ "model"; "weights"; "SQNR"; "latency ms"; "ops" ]
       rows);
  print_newline ()
