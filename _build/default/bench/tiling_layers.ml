(* Seeded single-layer fixtures for the figure benches. *)

module Dtype = Tensor.Dtype
module L = Ir.Layer

let bias rng n =
  let t = Tensor.create Dtype.I32 [| n |] in
  for i = 0 to n - 1 do
    Tensor.set_flat t i (Util.Rng.int_in rng (-16384) 16383)
  done;
  t

let conv ?(c = 16) ?(k = 32) ?(hw = 32) ?(f = 3) ?(stride = 1) ?(pad = 1)
    ?(wdtype = Dtype.I8) ?(seed = 2023) () =
  let rng = Util.Rng.create seed in
  let p = { Nn.Kernels.stride = (stride, stride); padding = (pad, pad); groups = 1 } in
  let oh, ow = Nn.Kernels.conv_out_dims ~in_dims:(hw, hw) ~kernel:(f, f) p in
  {
    L.kind = L.Conv p;
    fused_pool = None;
    weights = Some (Tensor.random rng wdtype [| k; c; f; f |]);
    bias = Some (bias rng k);
    shift = Some (Util.Ints.log2_ceil (c * f * f) + 6);
    relu = true;
    in_shape = [| c; hw; hw |];
    in2_shape = None;
    out_shape = [| k; oh; ow |];
    in_dtype = Dtype.I8;
    out_dtype = Dtype.I8;
  }

let depthwise ?(c = 64) ?(hw = 16) ?(seed = 2024) () =
  let rng = Util.Rng.create seed in
  let p = { Nn.Kernels.stride = (1, 1); padding = (1, 1); groups = c } in
  {
    L.kind = L.Conv p;
    fused_pool = None;
    weights = Some (Tensor.random rng Dtype.I8 [| c; 1; 3; 3 |]);
    bias = Some (bias rng c);
    shift = Some 9;
    relu = true;
    in_shape = [| c; hw; hw |];
    in2_shape = None;
    out_shape = [| c; hw; hw |];
    in_dtype = Dtype.I8;
    out_dtype = Dtype.I8;
  }

let dense ?(c = 256) ?(k = 256) ?(seed = 2025) () =
  let rng = Util.Rng.create seed in
  {
    L.kind = L.Dense;
    fused_pool = None;
    weights = Some (Tensor.random rng Dtype.I8 [| k; c |]);
    bias = Some (bias rng k);
    shift = Some (Util.Ints.log2_ceil c + 6);
    relu = false;
    in_shape = [| c |];
    in2_shape = None;
    out_shape = [| k |];
    in_dtype = Dtype.I8;
    out_dtype = Dtype.I8;
  }
