(* Fig. 4: latency of tiled convolution layers on the digital accelerator
   as the L1 budget shrinks, under three heuristic settings:
     none      - memory-utilization objective only (round markers)
     pe        - + PE-array alignment heuristics, Eqs. 3-4 (squares)
     pe+dma    - + the DMA-coalescing heuristic, Eq. 5 (diamonds)
   Points whose layer fits L1 untiled correspond to the paper's grey
   region. The paper reports up to 6.2x between 'none' and 'pe+dma'. *)

let layers =
  [
    ("conv 32x32x32 k3 K32", Tiling_layers.conv ~c:32 ~k:32 ~hw:32 ());
    ("conv 16x64x64 k3 K16", Tiling_layers.conv ~c:16 ~k:16 ~hw:64 ());
    ("conv 64x16x16 k3 K64", Tiling_layers.conv ~c:64 ~k:64 ~hw:16 ());
    ("conv 48x24x24 k3 K48", Tiling_layers.conv ~c:48 ~k:48 ~hw:24 ());
  ]

let budgets_kib = [ 256; 128; 64; 32; 16; 8; 4 ]

let settings = [ ("none", false, false); ("pe", true, false); ("pe+dma", true, true) ]

let run_point layer ~budget ~pe ~dma =
  let tiling =
    {
      Dory.Tiling.alpha = 1.0;
      use_pe_heuristics = pe;
      use_dma_heuristic = dma;
      double_buffer = true;
      l1_budget = budget;
    }
  in
  match Htvm.Lab.run_single_layer ~accel:Arch.Diana.digital ~tiling layer with
  | Error _ -> None
  | Ok r -> Some r

let run () =
  print_endline "=== Fig. 4: hardware-aware tiling vs shrinking L1 budget ===";
  print_endline "cycles per layer execution on the digital accelerator; '-' = infeasible;";
  print_endline "'*' marks untiled points (the paper's grey region)";
  let best_gain = ref 1.0 in
  List.iter
    (fun (name, layer) ->
      Printf.printf "\n%s\n" name;
      let rows =
        List.map
          (fun kib ->
            let budget = Util.Ints.kib kib in
            let cells =
              List.map
                (fun (_, pe, dma) ->
                  match run_point layer ~budget ~pe ~dma with
                  | None -> ("-", None)
                  | Some r ->
                      let cycles = r.Htvm.Lab.counters.Sim.Counters.wall in
                      let mark =
                        if r.Htvm.Lab.solution.Dory.Tiling.tiled then "" else "*"
                      in
                      (Printf.sprintf "%d%s" cycles mark, Some cycles))
                settings
            in
            (match (cells : (string * int option) list) with
            | [ (_, Some none_c); _; (_, Some both_c) ] when both_c > 0 ->
                best_gain := max !best_gain (float_of_int none_c /. float_of_int both_c)
            | _ -> ());
            Printf.sprintf "%d kB" kib :: List.map fst cells)
          budgets_kib
      in
      print_string
        (Util.Table.render
           ~align:[ Util.Table.Right; Right; Right; Right ]
           ~header:[ "L1 budget"; "none"; "pe (Eq3+4)"; "pe+dma (Eq3-5)" ]
           rows))
    layers;
  Printf.printf
    "\nmax speedup of pe+dma over no-heuristics tiling: %.1fx (paper: up to 6.2x)\n\n"
    !best_gain
