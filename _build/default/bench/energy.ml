(* Energy-per-inference estimates (the paper's motivating metric): fold
   the simulator's per-component cycle counters with DIANA's published
   efficiency class. Not a paper table — an extension experiment showing
   where each configuration's energy goes. *)

module C = Htvm.Compile

let configs =
  [
    ("CPU (TVM)", Arch.Diana.cpu_only, Models.Policy.All_int8);
    ("CPU+Digital", Arch.Diana.digital_only, Models.Policy.All_int8);
    ("CPU+Analog", Arch.Diana.analog_only, Models.Policy.All_ternary);
    ("CPU+Both", Arch.Diana.platform, Models.Policy.Mixed);
  ]

let run () =
  print_endline "=== Energy per inference (model, DIANA efficiency class) ===";
  List.iter
    (fun (e : Models.Zoo.entry) ->
      Printf.printf "\n%s\n" e.Models.Zoo.display_name;
      let rows =
        List.filter_map
          (fun (label, platform, policy) ->
            let g = e.Models.Zoo.build policy in
            match C.compile (C.default_config platform) g with
            | Error _ -> Some [ label; "OoM"; "-"; "-"; "-" ]
            | Ok artifact ->
                let _, report = C.run artifact ~inputs:(Models.Zoo.random_input g) in
                let b = Sim.Energy.of_report Sim.Energy.diana_defaults report in
                Some
                  [ label;
                    Printf.sprintf "%.1f" b.Sim.Energy.total_uj;
                    Printf.sprintf "%.1f" b.Sim.Energy.cpu_uj;
                    Printf.sprintf "%.1f" b.Sim.Energy.accel_uj;
                    Printf.sprintf "%.1f"
                      (b.Sim.Energy.dma_uj +. b.Sim.Energy.weight_load_uj) ])
          configs
      in
      print_string
        (Util.Table.render
           ~align:[ Util.Table.Left; Right; Right; Right; Right ]
           ~header:[ "config"; "total uJ"; "cpu"; "accel"; "mem" ]
           rows))
    Models.Zoo.all;
  print_newline ()
