#!/bin/sh
# Tier-1 verification: build + tests, plus a formatting check when the
# toolchain provides ocamlformat (skipped otherwise so CI images without
# it still pass).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (HTVM_JOBS=1) =="
HTVM_JOBS=1 dune runtest

# Same suite again with the engine's domain pool on: results must not
# depend on the job count. --force because the test binary is unchanged.
echo "== dune runtest (HTVM_JOBS=4) =="
HTVM_JOBS=4 dune runtest --force

echo "== bench smoke: parallel engine on one small model =="
dune exec bench/main.exe -- parallel-smoke

echo "== bench smoke: resilience (faulty run bit-exact, exact retry cost) =="
dune exec bench/main.exe -- resilience-smoke

echo "== bench smoke: serve (fleet throughput, tally invariance) =="
dune exec bench/main.exe -- serve-smoke

echo "== bench smoke: metrics (instrument cost, cycles-track determinism) =="
dune exec bench/main.exe -- metrics-smoke

echo "== bench smoke: mtserve (multi-tenant tally invariance, trace replay) =="
dune exec bench/main.exe -- mtserve-smoke

# The compiled-plan fast path: output digests and simulated cycles must
# be byte-identical to the slow oracle, and the memoize hit path must
# leave the serve tally untouched. Exits nonzero on any divergence.
echo "== bench smoke: simfast (plan fast path byte-identical to the oracle) =="
dune exec bench/main.exe -- simfast-smoke

# Serving smoke: the per-request tally of `htvmc serve` is a pure
# function of the seed — byte-identical at any fleet size and any host
# job count. Diff a 1-worker and a 4-worker run of the same stream.
echo "== htvmc serve smoke (workers 1 vs 4) =="
dune exec bin/htvmc.exe -- export resnet8 --policy mixed -o _build/serve-smoke.htvm
dune exec bin/htvmc.exe -- serve _build/serve-smoke.htvm --config both \
  --workers 1 --requests 16 --batch 4 --tally _build/serve-tally-w1.txt
dune exec bin/htvmc.exe -- serve _build/serve-smoke.htvm --config both \
  --workers 4 -j 4 --requests 16 --batch 4 --tally _build/serve-tally-w4.txt
if ! diff _build/serve-tally-w1.txt _build/serve-tally-w4.txt; then
  echo "verify: serve tallies differ between workers 1 and 4" >&2
  exit 1
fi

# The compiled execution plan is a pure fast path: disabling it
# (--no-plan forces the slow interpretive oracle) must leave the
# per-request tally byte-identical.
echo "== htvmc serve smoke (plan on vs --no-plan) =="
dune exec bin/htvmc.exe -- serve _build/serve-smoke.htvm --config both \
  --workers 1 --requests 16 --batch 4 --no-plan --tally _build/serve-tally-noplan.txt
if ! diff _build/serve-tally-w1.txt _build/serve-tally-noplan.txt; then
  echo "verify: serve tallies differ between plan on and --no-plan" >&2
  exit 1
fi

# Telemetry smoke: the cycles track of a serve metrics dump — admission
# counters, service and predicted-sojourn histograms, per-window series,
# SLO violation accounting, summed simulator counters — is byte-identical
# at any fleet size and job count. Only the sched track (scheduling
# metrics) and the wall track (host compile timings) may move, and they
# render after the `# track sched` marker, so stripping from that marker
# leaves the deterministic section.
echo "== htvmc serve metrics smoke (workers 1 vs 4, SLO accounting) =="
dune exec bin/htvmc.exe -- serve _build/serve-smoke.htvm --config both \
  --workers 1 -j 1 --requests 16 --batch 4 --arrival poisson --queue-depth 4 \
  --slo-sojourn 2000000 --metrics _build/serve-metrics-w1.prom
dune exec bin/htvmc.exe -- serve _build/serve-smoke.htvm --config both \
  --workers 4 -j 4 --requests 16 --batch 4 --arrival poisson --queue-depth 4 \
  --slo-sojourn 2000000 --metrics _build/serve-metrics-w4.prom
awk '/^# track sched/{exit} {print}' _build/serve-metrics-w1.prom \
  > _build/serve-metrics-w1.cycles
awk '/^# track sched/{exit} {print}' _build/serve-metrics-w4.prom \
  > _build/serve-metrics-w4.cycles
if ! diff _build/serve-metrics-w1.cycles _build/serve-metrics-w4.cycles; then
  echo "verify: metrics cycles tracks differ between workers 1 and 4" >&2
  exit 1
fi
if ! grep -q '^htvm_serve_slo_pred_violations_total ' _build/serve-metrics-w1.cycles; then
  echo "verify: metrics dump is missing SLO accounting" >&2
  exit 1
fi

# Multi-tenant serve smoke: two models, two SLO classes. The w1/j1 run
# records its arrival trace; the w4/j4 run replays it — so one diff
# enforces both invariants at once: the tally is byte-identical at any
# fleet shape AND a recorded trace reproduces the run that wrote it
# (the config header line legitimately describes replay mode, so the
# comparison starts at line 3). The metrics cycles track — per-class
# admission/outcome/SLO counters, service histograms, the window
# series — must also be byte-identical after stripping at the
# `# track sched` marker.
echo "== htvmc serve multi-tenant smoke (2 models, 2 classes, trace replay) =="
dune exec bin/htvmc.exe -- export ds_cnn --policy mixed -o _build/mtserve-a.htvm
dune exec bin/htvmc.exe -- serve _build/mtserve-a.htvm --config both \
  --model vision=_build/serve-smoke.htvm \
  --class keyword=main:2000000:2 --class vision=vision:0:1 \
  --arrival poisson --requests 16 --workers 1 -j 1 \
  --trace-out _build/mtserve.trace --tally _build/mtserve-tally-w1.txt \
  --metrics _build/mtserve-metrics-w1.prom
dune exec bin/htvmc.exe -- serve _build/mtserve-a.htvm --config both \
  --model vision=_build/serve-smoke.htvm \
  --class keyword=main:2000000:2 --class vision=vision:0:1 \
  --replay _build/mtserve.trace --workers 4 -j 4 \
  --tally _build/mtserve-tally-w4.txt --metrics _build/mtserve-metrics-w4.prom
tail -n +3 _build/mtserve-tally-w1.txt > _build/mtserve-tally-w1.body
tail -n +3 _build/mtserve-tally-w4.txt > _build/mtserve-tally-w4.body
if ! diff _build/mtserve-tally-w1.body _build/mtserve-tally-w4.body; then
  echo "verify: multi-tenant tallies differ between w1 and w4-replay" >&2
  exit 1
fi
awk '/^# track sched/{exit} {print}' _build/mtserve-metrics-w1.prom \
  > _build/mtserve-metrics-w1.cycles
awk '/^# track sched/{exit} {print}' _build/mtserve-metrics-w4.prom \
  > _build/mtserve-metrics-w4.cycles
if ! diff _build/mtserve-metrics-w1.cycles _build/mtserve-metrics-w4.cycles; then
  echo "verify: multi-tenant metrics cycles tracks differ" >&2
  exit 1
fi
if ! grep -q 'htvm_mtserve_class_slo_pred_violations_total{class="keyword"}' \
     _build/mtserve-metrics-w1.cycles; then
  echo "verify: multi-tenant metrics dump is missing per-class SLO accounting" >&2
  exit 1
fi

# Health-lifecycle smoke: a boot-degraded instance under fault injection
# walks probation -> readmission, and the functional tally — including
# the new health header and predicted-plane footer — stays byte-identical
# at any fleet shape / job count. The footer line proves the lifecycle
# actually ran (readmissions/relapses are recorded there).
echo "== htvmc serve health smoke (lifecycle, workers 2 vs 4) =="
dune exec bin/htvmc.exe -- serve _build/serve-smoke.htvm --config both \
  --workers 2 -j 1 --requests 16 --batch 4 --retry-budget 4 \
  --inject "seed=3,dma_in@p=0.3:flip" --health --degraded 0 \
  --tally _build/serve-health-w2.txt
dune exec bin/htvmc.exe -- serve _build/serve-smoke.htvm --config both \
  --workers 4 -j 4 --requests 16 --batch 4 --retry-budget 4 \
  --inject "seed=3,dma_in@p=0.3:flip" --health --degraded 0 \
  --tally _build/serve-health-w4.txt
if ! diff _build/serve-health-w2.txt _build/serve-health-w4.txt; then
  echo "verify: serve health tallies differ between workers 2 and 4" >&2
  exit 1
fi
if ! grep -q '^health pred-state=' _build/serve-health-w2.txt; then
  echo "verify: serve health tally is missing the lifecycle footer" >&2
  exit 1
fi

# Campaign smoke: sweep three fault-rate points under sustained load.
# The campaign tally (the SLO/shed/readmission curve) is built entirely
# from the predicted plane, so the w1/j1 and w4/j4 sweeps must be
# byte-identical; the rate lines carry the curve fields.
echo "== htvmc campaign smoke (3 rate points, w1/j1 vs w4/j4) =="
dune exec bin/htvmc.exe -- campaign _build/serve-smoke.htvm --config both \
  --workers 1 -j 1 --requests 12 --batch 4 --retry-budget 4 \
  --rates 0,0.01,0.2 --tally _build/campaign-tally-w1.txt
dune exec bin/htvmc.exe -- campaign _build/serve-smoke.htvm --config both \
  --workers 4 -j 4 --requests 12 --batch 4 --retry-budget 4 \
  --rates 0,0.01,0.2 --tally _build/campaign-tally-w4.txt
if ! diff _build/campaign-tally-w1.txt _build/campaign-tally-w4.txt; then
  echo "verify: campaign tallies differ between w1/j1 and w4/j4" >&2
  exit 1
fi
if [ "$(grep -c '^rate ' _build/campaign-tally-w1.txt)" != 3 ]; then
  echo "verify: campaign tally does not carry one line per rate point" >&2
  exit 1
fi
if ! grep -q 'readmissions=' _build/campaign-tally-w1.txt; then
  echo "verify: campaign tally is missing the health curve fields" >&2
  exit 1
fi

# Persistent-store smoke: compiling the same model twice into a fresh
# cache directory must (a) produce byte-identical artifact digests,
# (b) report zero hits cold and nonzero hits warm, and (c) leave a
# store that `htvmc cache` can inspect, verify, and gc — the tight
# --max-bytes cap forces the LRU eviction path to run.
echo "== htvmc store smoke (cold vs warm, cache stats/verify/gc) =="
rm -rf _build/store-cache
dune exec bin/htvmc.exe -- compile _build/serve-smoke.htvm --config both \
  --cache-dir _build/store-cache > _build/store-cold.out
dune exec bin/htvmc.exe -- compile _build/serve-smoke.htvm --config both \
  --cache-dir _build/store-cache > _build/store-warm.out
grep '^artifact digest: ' _build/store-cold.out > _build/store-cold.digest
grep '^artifact digest: ' _build/store-warm.out > _build/store-warm.digest
if ! diff _build/store-cold.digest _build/store-warm.digest; then
  echo "verify: warm compile artifact digest differs from cold" >&2
  exit 1
fi
cold_hits=$(sed -n 's/^store: hits=\([0-9]*\).*/\1/p' _build/store-cold.out)
warm_hits=$(sed -n 's/^store: hits=\([0-9]*\).*/\1/p' _build/store-warm.out)
if [ "$cold_hits" != 0 ]; then
  echo "verify: cold compile reported $cold_hits store hits (want 0)" >&2
  exit 1
fi
if [ "$warm_hits" = "" ] || [ "$warm_hits" = 0 ]; then
  echo "verify: warm compile reported no store hits" >&2
  exit 1
fi
dune exec bin/htvmc.exe -- cache stats --cache-dir _build/store-cache
dune exec bin/htvmc.exe -- cache verify --cache-dir _build/store-cache
dune exec bin/htvmc.exe -- cache gc --cache-dir _build/store-cache --max-bytes 2048
dune exec bin/htvmc.exe -- cache stats --cache-dir _build/store-cache

# Differential conformance smoke: compiled artifacts must agree with the
# reference interpreter over a fixed seed range. Any failure prints a
# minimized reproducer and exits nonzero.
echo "== htvmc check smoke (300 seeds) =="
dune exec bin/htvmc.exe -- check --seeds 300 -j 4

# Chaos smoke: the same fuzz under randomized fault-injection campaigns.
# Stock plans are recoverable by construction, so any failure verdict
# (detected_uncorrected, silent_corruption, mismatch, crash) exits
# nonzero with a minimized reproducer. The campaigns are a pure function
# of the seed, so the per-class tallies must be identical at any job
# count — checked by diffing the 1-job and 4-job runs.
echo "== htvmc chaos smoke (300 seeds, jobs 1 vs 4) =="
dune exec bin/htvmc.exe -- chaos --seeds 300 -j 1 > _build/chaos-j1.out
dune exec bin/htvmc.exe -- chaos --seeds 300 -j 4 > _build/chaos-j4.out
grep -E '^  [a-z]' _build/chaos-j1.out > _build/chaos-tally-j1.txt
grep -E '^  [a-z]' _build/chaos-j4.out > _build/chaos-tally-j4.txt
cat _build/chaos-tally-j1.txt
if ! diff _build/chaos-tally-j1.txt _build/chaos-tally-j4.txt; then
  echo "verify: chaos tallies differ between jobs 1 and 4" >&2
  exit 1
fi

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== dune build @fmt == (skipped: ocamlformat not installed)"
fi

echo "verify: OK"
