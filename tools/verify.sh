#!/bin/sh
# Tier-1 verification: build + tests, plus a formatting check when the
# toolchain provides ocamlformat (skipped otherwise so CI images without
# it still pass).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (HTVM_JOBS=1) =="
HTVM_JOBS=1 dune runtest

# Same suite again with the engine's domain pool on: results must not
# depend on the job count. --force because the test binary is unchanged.
echo "== dune runtest (HTVM_JOBS=4) =="
HTVM_JOBS=4 dune runtest --force

echo "== bench smoke: parallel engine on one small model =="
dune exec bench/main.exe -- parallel-smoke

# Differential conformance smoke: compiled artifacts must agree with the
# reference interpreter over a fixed seed range. Any failure prints a
# minimized reproducer and exits nonzero.
echo "== htvmc check smoke (300 seeds) =="
dune exec bin/htvmc.exe -- check --seeds 300 -j 4

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== dune build @fmt == (skipped: ocamlformat not installed)"
fi

echo "verify: OK"
