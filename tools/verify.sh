#!/bin/sh
# Tier-1 verification: build + tests, plus a formatting check when the
# toolchain provides ocamlformat (skipped otherwise so CI images without
# it still pass).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

if command -v ocamlformat >/dev/null 2>&1; then
  echo "== dune build @fmt =="
  dune build @fmt
else
  echo "== dune build @fmt == (skipped: ocamlformat not installed)"
fi

echo "verify: OK"
