(** Deterministic per-instance health lifecycle.

    Each serving instance owns one state machine walking

    {v healthy -> degraded -> probation -> readmitted v}

    Accumulated fault observations degrade an instance; after a cooldown
    (the {e probation window}) it enters probation, where seeded
    synthetic health-check probes run every [probe_interval] cycles,
    each costing [probe_cost] cycles on the probed instance. A streak of
    [pass_threshold] consecutive passes readmits it to the healthy
    rotation; a failed probe (or faults observed while on probation) is
    a {e relapse} that re-degrades it with an escalated cooldown — the
    capped exponential shape of {!Fault.Session.backoff_with}, base
    [probation_window], cap [backoff_cap].

    Everything is a pure function of [(config, instance, fault
    observations)]: probe outcomes come from a SplitMix64 stream seeded
    by [probe_seed] mixed with the instance id, and the machine only
    moves when {!advance} or {!observe_faults} is called with a caller
    clock. Equal observation sequences therefore produce byte-identical
    transition logs at any host job count — asserted by the qcheck
    suite via {!simulate}. *)

type state = Healthy | Degraded | Probation | Readmitted

type config = {
  fault_threshold : int;
      (** faults accumulated during one healthy tenure before the
          instance degrades; >= 1 *)
  probation_window : int;
      (** base cooldown in cycles between degrading and the first
          probe; >= 1. Escalates on relapse. *)
  probe_interval : int;
      (** idle gap in cycles between the end of one probe and the start
          of the next; >= 0 *)
  probe_cost : int;  (** cycles each probe occupies the instance; >= 1 *)
  pass_threshold : int;  (** consecutive passes to readmit; >= 1 *)
  backoff_cap : int;
      (** ceiling for the escalated probation window; >= probation_window *)
  probe_fail_prob : float;  (** per-probe Bernoulli failure; in [0, 1] *)
  probe_seed : int;  (** base seed for the probe-outcome streams *)
}

val default : config
(** threshold 3, window 50_000, interval 10_000, cost 2_000, passes 2,
    cap 400_000, fail probability 0, seed 9. *)

val validate : config -> (unit, string) result
(** [Error msg] when any field is out of range. *)

val probation_backoff : config -> relapse:int -> int
(** Cooldown before the [relapse]-th (1-based) probation:
    [Fault.Session.backoff_with ~base:probation_window ~cap:backoff_cap]. *)

type cause =
  | Boot  (** configured degraded from cycle 0 *)
  | Faults of int  (** fault count that crossed the threshold / relapsed *)
  | Window_elapsed  (** probation cooldown expired *)
  | Probe_pass  (** pass streak reached [pass_threshold] *)
  | Probe_fail  (** a probe failed *)

type transition = {
  tr_at : int;  (** cycle the transition took effect *)
  tr_from : state;
  tr_to : state;
  tr_cause : cause;
}

type t

val create : ?degraded_at_start:bool -> config -> instance:int -> t
(** A fresh machine for [instance], [Healthy] unless
    [degraded_at_start] (then [Degraded] from cycle 0 with one relapse
    on the books). [config] must already be validated; [create] raises
    [Invalid_argument] otherwise. *)

val instance : t -> int
val state : t -> state

val eligible : t -> bool
(** In the healthy rotation: [Healthy] or [Readmitted]. *)

val advance : t -> now:int -> int
(** Process everything scheduled up to and including cycle [now] —
    cooldown expiry, probes — and return the probe cycles consumed by
    this call (to be charged to the instance). The clock is monotone:
    [now] earlier than a previous call is clamped forward. *)

val observe_faults : t -> now:int -> int -> unit
(** Record [n] fault observations attributed to cycle [now]. While
    eligible they accumulate toward [fault_threshold]; on probation any
    fault is an immediate relapse; while degraded they are ignored (the
    cooldown is not extended). Call {!advance} first so pending probes
    land before the observation. *)

val transitions : t -> transition list
(** Chronological transition log (excludes the initial state). *)

val readmissions : t -> int
val relapses : t -> int
(** Times the machine entered [Degraded] (including [Boot]). *)

val probes_passed : t -> int
val probes_failed : t -> int

val probe_cycles : t -> int
(** Total cycles consumed by probes so far. *)

val faults_seen : t -> int
(** Total fault observations delivered via {!observe_faults}. *)

val state_label : state -> string
val cause_label : cause -> string

val transition_label : transition -> string
(** ["@<at> <from>-><to> (<cause>)"] — stable, used in logs/tallies. *)

val render_log : t -> string
(** One line: ["inst <id> <label>; <label>; ..."] (["inst <id> -"] when
    no transitions). *)

val legal_pairs : (state * state) list
(** Every (from, to) pair the machine can produce, in a stable order —
    the canonical enumeration for pre-registering transition counters. *)

val transition_counts : t -> ((state * state) * int) list
(** Count per legal pair, in [legal_pairs] order (zeros included). *)

val simulate :
  config ->
  plan:Fault.Plan.t ->
  instances:int ->
  windows:int ->
  window:int ->
  jobs:int ->
  string
(** Pure standalone driver for property tests: instance [i] draws fault
    occurrences from a {!Fault.Session} over [plan] reseeded per
    instance (mirroring the serve runtime's per-request reseeding), one
    batch of site draws per window, observed at each window close; the
    machine is advanced to each window close first. Returns the
    concatenated {!render_log} lines. Per-instance streams are
    independent, so instance [i]'s line is identical whatever
    [instances] or [jobs] is — the fan-out runs on {!Util.Pool}. *)
