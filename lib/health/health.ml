(* Deterministic per-instance health lifecycle (see health.mli). *)

type state = Healthy | Degraded | Probation | Readmitted

type config = {
  fault_threshold : int;
  probation_window : int;
  probe_interval : int;
  probe_cost : int;
  pass_threshold : int;
  backoff_cap : int;
  probe_fail_prob : float;
  probe_seed : int;
}

let default =
  {
    fault_threshold = 3;
    probation_window = 50_000;
    probe_interval = 10_000;
    probe_cost = 2_000;
    pass_threshold = 2;
    backoff_cap = 400_000;
    probe_fail_prob = 0.0;
    probe_seed = 9;
  }

let validate c =
  if c.fault_threshold < 1 then Error "health: fault_threshold must be >= 1"
  else if c.probation_window < 1 then
    Error "health: probation_window must be >= 1"
  else if c.probe_interval < 0 then
    Error "health: probe_interval must be >= 0"
  else if c.probe_cost < 1 then Error "health: probe_cost must be >= 1"
  else if c.pass_threshold < 1 then Error "health: pass_threshold must be >= 1"
  else if c.backoff_cap < c.probation_window then
    Error "health: backoff_cap must be >= probation_window"
  else if
    (not (Float.is_finite c.probe_fail_prob))
    || c.probe_fail_prob < 0.0
    || c.probe_fail_prob > 1.0
  then Error "health: probe_fail_prob must be in [0, 1]"
  else Ok ()

let probation_backoff c ~relapse =
  Fault.Session.backoff_with ~base:c.probation_window ~cap:c.backoff_cap
    relapse

type cause =
  | Boot
  | Faults of int
  | Window_elapsed
  | Probe_pass
  | Probe_fail

type transition = { tr_at : int; tr_from : state; tr_to : state; tr_cause : cause }

type t = {
  cfg : config;
  inst : int;
  rng : Util.Rng.t;
  fail_ppm : int;
  mutable st : state;
  mutable clock : int;
  mutable tenure_faults : int;  (* faults this healthy tenure *)
  mutable relapse : int;  (* times entered Degraded *)
  mutable probation_at : int;  (* when Degraded -> Probation *)
  mutable next_probe : int;  (* next probe start, while on probation *)
  mutable streak : int;  (* consecutive passes this probation *)
  mutable readmit : int;
  mutable passed : int;
  mutable failed : int;
  mutable probe_cyc : int;
  mutable seen : int;
  mutable log : transition list;  (* reverse chronological *)
}

let create ?(degraded_at_start = false) cfg ~instance =
  (match validate cfg with Ok () -> () | Error msg -> invalid_arg msg);
  let t =
    {
      cfg;
      inst = instance;
      (* Per-instance stream, mirroring the serve runtime's per-request
         fault-session reseeding. *)
      rng = Util.Rng.create (cfg.probe_seed + ((instance + 1) * 1_000_003));
      fail_ppm = int_of_float (cfg.probe_fail_prob *. 1_000_000.);
      st = Healthy;
      clock = 0;
      tenure_faults = 0;
      relapse = 0;
      probation_at = 0;
      next_probe = 0;
      streak = 0;
      readmit = 0;
      passed = 0;
      failed = 0;
      probe_cyc = 0;
      seen = 0;
      log = [];
    }
  in
  if degraded_at_start then begin
    t.relapse <- 1;
    t.st <- Degraded;
    t.probation_at <- probation_backoff cfg ~relapse:1;
    t.log <- [ { tr_at = 0; tr_from = Healthy; tr_to = Degraded; tr_cause = Boot } ]
  end;
  t

let instance t = t.inst
let state t = t.st
let eligible t = match t.st with Healthy | Readmitted -> true | Degraded | Probation -> false

let shift t ~at to_ cause =
  t.log <- { tr_at = at; tr_from = t.st; tr_to = to_; tr_cause = cause } :: t.log;
  t.st <- to_

let advance t ~now =
  let now = max now t.clock in
  let consumed = ref 0 in
  let continue = ref true in
  while !continue do
    match t.st with
    | Degraded when t.probation_at <= now ->
        shift t ~at:t.probation_at Probation Window_elapsed;
        t.streak <- 0;
        t.next_probe <- t.probation_at
    | Probation when t.next_probe + t.cfg.probe_cost <= now ->
        let finish = t.next_probe + t.cfg.probe_cost in
        t.probe_cyc <- t.probe_cyc + t.cfg.probe_cost;
        consumed := !consumed + t.cfg.probe_cost;
        let fail = Util.Rng.int t.rng 1_000_000 < t.fail_ppm in
        if fail then begin
          t.failed <- t.failed + 1;
          t.relapse <- t.relapse + 1;
          shift t ~at:finish Degraded Probe_fail;
          t.probation_at <- finish + probation_backoff t.cfg ~relapse:t.relapse
        end
        else begin
          t.passed <- t.passed + 1;
          t.streak <- t.streak + 1;
          if t.streak >= t.cfg.pass_threshold then begin
            t.readmit <- t.readmit + 1;
            t.tenure_faults <- 0;
            shift t ~at:finish Readmitted Probe_pass
          end
          else t.next_probe <- finish + t.cfg.probe_interval
        end
    | _ -> continue := false
  done;
  t.clock <- now;
  !consumed

let observe_faults t ~now n =
  let now = max now t.clock in
  t.clock <- now;
  if n > 0 then begin
    t.seen <- t.seen + n;
    match t.st with
    | Healthy | Readmitted ->
        t.tenure_faults <- t.tenure_faults + n;
        if t.tenure_faults >= t.cfg.fault_threshold then begin
          let crossed = t.tenure_faults in
          t.relapse <- t.relapse + 1;
          t.tenure_faults <- 0;
          shift t ~at:now Degraded (Faults crossed);
          t.probation_at <- now + probation_backoff t.cfg ~relapse:t.relapse
        end
    | Probation ->
        t.relapse <- t.relapse + 1;
        shift t ~at:now Degraded (Faults n);
        t.probation_at <- now + probation_backoff t.cfg ~relapse:t.relapse
    | Degraded -> ()
  end

let transitions t = List.rev t.log
let readmissions t = t.readmit
let relapses t = t.relapse
let probes_passed t = t.passed
let probes_failed t = t.failed
let probe_cycles t = t.probe_cyc
let faults_seen t = t.seen

let state_label = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Probation -> "probation"
  | Readmitted -> "readmitted"

let cause_label = function
  | Boot -> "boot"
  | Faults n -> Printf.sprintf "faults=%d" n
  | Window_elapsed -> "window"
  | Probe_pass -> "probe-pass"
  | Probe_fail -> "probe-fail"

let transition_label tr =
  Printf.sprintf "@%d %s->%s (%s)" tr.tr_at (state_label tr.tr_from)
    (state_label tr.tr_to) (cause_label tr.tr_cause)

let render_log t =
  match transitions t with
  | [] -> Printf.sprintf "inst %d -" t.inst
  | trs ->
      Printf.sprintf "inst %d %s" t.inst
        (String.concat "; " (List.map transition_label trs))

let legal_pairs =
  [
    (Healthy, Degraded);
    (Degraded, Probation);
    (Probation, Readmitted);
    (Probation, Degraded);
    (Readmitted, Degraded);
  ]

let transition_counts t =
  let trs = transitions t in
  List.map
    (fun pair ->
      ( pair,
        List.length
          (List.filter (fun tr -> (tr.tr_from, tr.tr_to) = pair) trs) ))
    legal_pairs

let simulate cfg ~plan ~instances ~windows ~window ~jobs =
  let sites = List.map (fun r -> r.Fault.Plan.site) plan.Fault.Plan.rules in
  let sim_one i =
    let t = create cfg ~instance:i in
    let plan_i =
      { plan with Fault.Plan.seed = plan.Fault.Plan.seed + ((i + 1) * 1_000_003) }
    in
    let session = Fault.Session.create plan_i in
    for w = 0 to windows - 1 do
      let close = (w + 1) * window in
      ignore (advance t ~now:close);
      let faults =
        List.fold_left
          (fun acc site -> acc + List.length (Fault.Session.draw session site))
          0 sites
      in
      observe_faults t ~now:close faults
    done;
    render_log t
  in
  let logs =
    Util.Pool.with_pool ~jobs (fun pool ->
        Util.Pool.map pool sim_one (List.init instances Fun.id))
  in
  String.concat "\n" logs
