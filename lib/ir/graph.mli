(** Dataflow graphs of quantized DNNs.

    A graph is an immutable array of nodes in topological order (every
    argument index precedes its user — the builder enforces this by
    construction) plus a single output node. This mirrors the role of a
    Relay function body in TVM's flow. *)

type id = int
(** Node identifier: index into the node array. *)

type node =
  | Input of { name : string; dtype : Tensor.Dtype.t; shape : int array }
  | Const of Tensor.t
  | App of { op : Op.t; args : id list }

type t

val valid_input_name : string -> bool
(** Input names must be non-empty and whitespace-free so every buildable
    graph serializes through {!Ir.Text} (names are single tokens there).
    Enforced by {!Builder.input} and re-checked by {!validate}. *)

val node : t -> id -> node
(** @raise Invalid_argument on an out-of-range id. *)

val length : t -> int
val output : t -> id

val node_ids : t -> id list
(** All ids in topological order. *)

val inputs : t -> (id * string * Tensor.Dtype.t * int array) list
(** The graph's [Input] nodes in declaration order. *)

val consumers : t -> id -> id list
(** Users of a node, ascending. *)

val app_count : t -> int
(** Number of operator applications (network "size"). *)

val validate : t -> (unit, string) result
(** Structural checks: argument ids in range and topologically ordered,
    arities match, output in range, input names unique. The builder can
    only produce valid graphs; [validate] guards hand-built ones and
    transformation outputs. *)

val pp : Format.formatter -> t -> unit
(** Multi-line listing, one node per line: [%3 = nn.conv2d(%0, %1)]. *)

val to_string : t -> string

(** Incremental graph construction. *)
module Builder : sig
  type graph := t
  type t

  val create : unit -> t

  val input : t -> name:string -> Tensor.Dtype.t -> int array -> id
  (** @raise Invalid_argument when the name fails {!valid_input_name}:
      such a graph could never be serialized. *)

  val const : t -> Tensor.t -> id

  val app : t -> Op.t -> id list -> id
  (** @raise Invalid_argument on arity mismatch or forward reference. *)

  (* Convenience wrappers over [app]: *)

  val conv2d :
    t -> ?stride:int * int -> ?padding:int * int -> ?groups:int -> id -> weights:id -> id

  val dense : t -> id -> weights:id -> id
  val bias_add : t -> id -> bias:id -> id

  val requantize : t -> ?relu:bool -> shift:int -> out_dtype:Tensor.Dtype.t -> id -> id
  (** Expands to the Listing-1 requant sequence:
      [right_shift -> clip -> cast], with the clip range narrowed to
      [\[0, max\]] when [relu] — exactly the composite the accelerator
      pattern expects to find. *)

  val relu : t -> id -> id
  val add : t -> id -> id -> id
  val max_pool : t -> pool:int * int -> stride:int * int -> id -> id
  val avg_pool : t -> pool:int * int -> stride:int * int -> id -> id
  val global_avg_pool : t -> id -> id
  val softmax : t -> id -> id
  val reshape : t -> int array -> id -> id
  val flatten_chw : t -> id -> int array -> id
  (** [flatten_chw b x shape] reshapes an activation of the given shape to
      rank 1 (helper for conv->dense transitions). *)

  val finish : t -> output:id -> graph
end
