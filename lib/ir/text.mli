(** Textual model format.

    HTVM's front end ingests serialized quantized networks (TFLite/ONNX in
    the paper); this module is our equivalent interchange format — a
    line-oriented, versioned, fully self-contained description of a graph
    including constant payloads (hex-encoded little-endian). Round-trip
    identity is property-tested over the random-graph corpus.

    Grammar (one node per line, ids must be topologically ordered):
    {v
    htvm-graph v1
    input %0 image i8 3x32x32
    const %1 i8 16x3x3x3 <hex>
    app %2 nn.conv2d stride 1 1 pad 1 1 groups 1 args %0 %1
    app %3 clip lo -128 hi 127 args %2
    output %3
    v}

    Lines whose first non-blank character is [#] are comments and may
    appear anywhere, including before the header — so the conformance
    checker's reproducer files (a [#]-commented preamble followed by the
    graph) parse directly. *)

val to_string : Graph.t -> string

val of_string : string -> (Graph.t, string) result
(** Errors carry the offending line number and a diagnosis. *)

val save : string -> Graph.t -> unit
(** Write to a file path. *)

val load : string -> (Graph.t, string) result
(** Read from a file path; I/O problems are reported as [Error]. *)
