module Dtype = Tensor.Dtype

let header = "htvm-graph v1"

(* --- encoding ----------------------------------------------------------- *)

let dims_to_string shape =
  if Array.length shape = 0 then "scalar"
  else Array.to_list shape |> List.map string_of_int |> String.concat "x"

let hex_digit = "0123456789abcdef"

let payload_to_hex t =
  let dt = Tensor.dtype t in
  let width = Dtype.sim_bytes dt in
  let buf = Buffer.create (Tensor.numel t * width * 2) in
  Tensor.iteri_flat
    (fun _ v ->
      for byte = 0 to width - 1 do
        let b = (v asr (8 * byte)) land 0xFF in
        Buffer.add_char buf hex_digit.[b lsr 4];
        Buffer.add_char buf hex_digit.[b land 0xF]
      done)
    t;
  Buffer.contents buf

let op_to_tokens (op : Op.t) =
  match op with
  | Op.Conv2d { stride = sy, sx; padding = py, px; groups } ->
      Printf.sprintf "nn.conv2d stride %d %d pad %d %d groups %d" sy sx py px groups
  | Op.Clip { lo; hi } -> Printf.sprintf "clip lo %d hi %d" lo hi
  | Op.Cast dt -> Printf.sprintf "cast %s" (Dtype.to_string dt)
  | Op.Max_pool { pool = ph, pw; pool_stride = sy, sx } ->
      Printf.sprintf "nn.max_pool2d pool %d %d stride %d %d" ph pw sy sx
  | Op.Avg_pool { pool = ph, pw; pool_stride = sy, sx } ->
      Printf.sprintf "nn.avg_pool2d pool %d %d stride %d %d" ph pw sy sx
  | Op.Reshape shape -> Printf.sprintf "reshape %s" (dims_to_string shape)
  | Op.Dense | Op.Bias_add | Op.Right_shift | Op.Relu | Op.Add | Op.Global_avg_pool
  | Op.Softmax | Op.Concat ->
      Op.name op

let to_string g =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun i ->
      (match Graph.node g i with
      | Graph.Input { name; dtype; shape } ->
          (* Unreachable for builder-made graphs — [Graph.Builder.input]
             rejects unserializable names at construction — but kept as a
             guard for any future bypass of the builder. *)
          if not (Graph.valid_input_name name) then
            invalid_arg
              (Printf.sprintf "Text.to_string: unserializable input name %S" name);
          Buffer.add_string buf
            (Printf.sprintf "input %%%d %s %s %s" i name (Dtype.to_string dtype)
               (dims_to_string shape))
      | Graph.Const t ->
          Buffer.add_string buf
            (Printf.sprintf "const %%%d %s %s %s" i
               (Dtype.to_string (Tensor.dtype t))
               (dims_to_string (Tensor.shape t))
               (payload_to_hex t))
      | Graph.App { op; args } ->
          Buffer.add_string buf
            (Printf.sprintf "app %%%d %s args %s" i (op_to_tokens op)
               (List.map (Printf.sprintf "%%%d") args |> String.concat " ")));
      Buffer.add_char buf '\n')
    (Graph.node_ids g);
  Buffer.add_string buf (Printf.sprintf "output %%%d\n" (Graph.output g));
  Buffer.contents buf

(* --- decoding ----------------------------------------------------------- *)

exception Parse of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

let dtype_of_string = function
  | "i8" -> Dtype.I8
  | "u7" -> Dtype.U7
  | "i16" -> Dtype.I16
  | "i32" -> Dtype.I32
  | "ternary" -> Dtype.Ternary
  | s -> fail "unknown dtype %S" s

let dims_of_string s =
  if s = "scalar" then [||]
  else
    String.split_on_char 'x' s
    |> List.map (fun d ->
           match int_of_string_opt d with
           | Some v when v > 0 -> v
           | _ -> fail "bad dimension %S" d)
    |> Array.of_list

let node_ref s =
  if String.length s < 2 || s.[0] <> '%' then fail "expected node reference, got %S" s
  else
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some v when v >= 0 -> v
    | _ -> fail "bad node reference %S" s

let int_tok s =
  match int_of_string_opt s with Some v -> v | None -> fail "expected integer, got %S" s

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail "bad hex digit %C" c

let payload_of_hex dt shape hex =
  let width = Dtype.sim_bytes dt in
  let n = Array.fold_left ( * ) 1 shape in
  if String.length hex <> n * width * 2 then
    fail "payload is %d hex digits, expected %d" (String.length hex) (n * width * 2);
  let sign_extend bits v =
    let shift = Sys.int_size - bits in
    (v lsl shift) asr shift
  in
  let t = Tensor.create dt shape in
  for i = 0 to n - 1 do
    let raw = ref 0 in
    for byte = 0 to width - 1 do
      let pos = ((i * width) + byte) * 2 in
      let b = (hex_val hex.[pos] lsl 4) lor hex_val hex.[pos + 1] in
      raw := !raw lor (b lsl (8 * byte))
    done;
    let v =
      match dt with
      | Dtype.U7 -> !raw land 0x7F
      | Dtype.I8 | Dtype.Ternary -> sign_extend 8 !raw
      | Dtype.I16 -> sign_extend 16 !raw
      | Dtype.I32 -> sign_extend 32 !raw
    in
    Tensor.set_flat t i v
  done;
  t

(* Parse the operator tokens between the node id and "args". *)
let op_of_tokens = function
  | "nn.conv2d" :: "stride" :: sy :: sx :: "pad" :: py :: px :: "groups" :: g :: [] ->
      Op.Conv2d
        {
          stride = (int_tok sy, int_tok sx);
          padding = (int_tok py, int_tok px);
          groups = int_tok g;
        }
  | [ "clip"; "lo"; lo; "hi"; hi ] -> Op.Clip { lo = int_tok lo; hi = int_tok hi }
  | [ "cast"; dt ] -> Op.Cast (dtype_of_string dt)
  | [ "nn.max_pool2d"; "pool"; ph; pw; "stride"; sy; sx ] ->
      Op.Max_pool { pool = (int_tok ph, int_tok pw); pool_stride = (int_tok sy, int_tok sx) }
  | [ "nn.avg_pool2d"; "pool"; ph; pw; "stride"; sy; sx ] ->
      Op.Avg_pool { pool = (int_tok ph, int_tok pw); pool_stride = (int_tok sy, int_tok sx) }
  | [ "reshape"; dims ] -> Op.Reshape (dims_of_string dims)
  | [ "nn.dense" ] -> Op.Dense
  | [ "nn.bias_add" ] -> Op.Bias_add
  | [ "right_shift" ] -> Op.Right_shift
  | [ "nn.relu" ] -> Op.Relu
  | [ "add" ] -> Op.Add
  | [ "nn.global_avg_pool2d" ] -> Op.Global_avg_pool
  | [ "nn.softmax" ] -> Op.Softmax
  | [ "concatenate" ] -> Op.Concat
  | toks -> fail "cannot parse operator %S" (String.concat " " toks)

let rec split_at_args acc = function
  | "args" :: rest -> (List.rev acc, rest)
  | tok :: rest -> split_at_args (tok :: acc) rest
  | [] -> fail "missing 'args' keyword"

let of_string s =
  let lines = String.split_on_char '\n' s in
  let builder = Graph.Builder.create () in
  (* Serialized ids may be sparse after transformations; remap. *)
  let remap = Hashtbl.create 64 in
  let resolve id =
    match Hashtbl.find_opt remap id with
    | Some v -> v
    | None -> fail "node %%%d used before its definition" id
  in
  let output = ref None in
  let parse_line line =
    let line = String.trim line in
    if String.length line > 0 && line.[0] = '#' then ()
    else
    match String.split_on_char ' ' line with
    | [ "" ] -> ()
    | "input" :: id :: name :: dt :: dims :: [] ->
        let id = node_ref id in
        Hashtbl.replace remap id
          (Graph.Builder.input builder ~name (dtype_of_string dt) (dims_of_string dims))
    | "const" :: id :: dt :: dims :: hex :: [] ->
        let id = node_ref id in
        let dt = dtype_of_string dt in
        Hashtbl.replace remap id
          (Graph.Builder.const builder (payload_of_hex dt (dims_of_string dims) hex))
    | "app" :: id :: rest ->
        let id = node_ref id in
        let op_toks, arg_toks = split_at_args [] rest in
        let op = op_of_tokens op_toks in
        let args = List.map (fun a -> resolve (node_ref a)) arg_toks in
        Hashtbl.replace remap id (Graph.Builder.app builder op args)
    | [ "output"; id ] -> output := Some (resolve (node_ref id))
    | tok :: _ -> fail "unknown directive %S" tok
    | [] -> ()
  in
  try
    (* Blank and [#]-comment lines may precede the header (reproducer
       files carry a commented preamble). *)
    let is_skippable l =
      let t = String.trim l in
      t = "" || t.[0] = '#'
    in
    let rec find_header lineno = function
      | first :: rest when String.trim first = header -> (lineno, rest)
      | first :: rest when is_skippable first -> find_header (lineno + 1) rest
      | _ -> fail "missing %S header" header
    in
    let skipped, rest = find_header 0 lines in
    List.iteri
      (fun lineno line ->
        try parse_line line
        with Parse msg -> fail "line %d: %s" (skipped + lineno + 2) msg)
      rest;
    match !output with
    | None -> Error "no output directive"
    | Some out -> (
        let g = Graph.Builder.finish builder ~output:out in
        match Graph.validate g with Ok () -> Ok g | Error e -> Error ("invalid graph: " ^ e))
  with
  | Parse msg -> Error msg
  | Invalid_argument msg -> Error msg

let save path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string g))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> of_string contents
