type id = int

type node =
  | Input of { name : string; dtype : Tensor.Dtype.t; shape : int array }
  | Const of Tensor.t
  | App of { op : Op.t; args : id list }

type t = { nodes : node array; output : id }

(* Input names become single whitespace-delimited tokens in the textual
   format (Ir.Text), so a name containing whitespace — or an empty one —
   would build a graph that cannot be serialized. Rejected here, at
   construction, rather than discovered at emit time. *)
let valid_input_name name =
  String.length name > 0
  && String.for_all (fun c -> c <> ' ' && c <> '\t' && c <> '\n' && c <> '\r') name

let node t i =
  if i < 0 || i >= Array.length t.nodes then invalid_arg "Graph.node: id out of range";
  t.nodes.(i)

let length t = Array.length t.nodes
let output t = t.output
let node_ids t = List.init (length t) (fun i -> i)

let inputs t =
  node_ids t
  |> List.filter_map (fun i ->
         match t.nodes.(i) with
         | Input { name; dtype; shape } -> Some (i, name, dtype, shape)
         | Const _ | App _ -> None)

let consumers t i =
  node_ids t
  |> List.filter (fun j ->
         match t.nodes.(j) with
         | App { args; _ } -> List.mem i args
         | Input _ | Const _ -> false)

let app_count t =
  Array.fold_left
    (fun n -> function App _ -> n + 1 | Input _ | Const _ -> n)
    0 t.nodes

let validate t =
  let n = Array.length t.nodes in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if n = 0 then err "empty graph"
  else if t.output < 0 || t.output >= n then err "output id %d out of range" t.output
  else
    let problem = ref None in
    let seen_names = Hashtbl.create 8 in
    Array.iteri
      (fun i nd ->
        if !problem = None then
          match nd with
          | Input { name; _ } ->
              if not (valid_input_name name) then
                problem :=
                  Some
                    (Printf.sprintf
                       "input name %S must be non-empty without whitespace" name)
              else if Hashtbl.mem seen_names name then
                problem := Some (Printf.sprintf "duplicate input name %S" name)
              else Hashtbl.add seen_names name ()
          | Const _ -> ()
          | App { op; args } ->
              if List.length args <> Op.arity op then
                problem :=
                  Some
                    (Printf.sprintf "node %d: %s expects %d args, got %d" i (Op.name op)
                       (Op.arity op) (List.length args))
              else
                List.iter
                  (fun a ->
                    if a < 0 || a >= i then
                      problem := Some (Printf.sprintf "node %d: argument %d not topological" i a))
                  args)
      t.nodes;
    match !problem with Some msg -> Error msg | None -> Ok ()

let pp fmt t =
  let pp_node i nd =
    match nd with
    | Input { name; dtype; shape } ->
        Format.fprintf fmt "%%%d = input %S : %s[%s]@," i name
          (Tensor.Dtype.to_string dtype)
          (Array.to_list shape |> List.map string_of_int |> String.concat "x")
    | Const c -> Format.fprintf fmt "%%%d = const %s@," i (Tensor.to_string c)
    | App { op; args } ->
        Format.fprintf fmt "%%%d = %a(%s)@," i Op.pp op
          (List.map (Printf.sprintf "%%%d") args |> String.concat ", ")
  in
  Format.fprintf fmt "@[<v>";
  Array.iteri pp_node t.nodes;
  Format.fprintf fmt "output %%%d@]" t.output

let to_string t = Format.asprintf "%a" pp t

module Builder = struct
  type t = { mutable rev_nodes : node list; mutable count : int }

  let create () = { rev_nodes = []; count = 0 }

  let push b nd =
    b.rev_nodes <- nd :: b.rev_nodes;
    b.count <- b.count + 1;
    b.count - 1

  let input b ~name dtype shape =
    if not (valid_input_name name) then
      invalid_arg
        (Printf.sprintf
           "Builder.input: invalid input name %S (must be non-empty without \
            whitespace)"
           name);
    push b (Input { name; dtype; shape = Array.copy shape })
  let const b tensor = push b (Const tensor)

  let app b op args =
    if List.length args <> Op.arity op then
      invalid_arg (Printf.sprintf "Builder.app: %s arity mismatch" (Op.name op));
    List.iter
      (fun a ->
        if a < 0 || a >= b.count then invalid_arg "Builder.app: argument not yet defined")
      args;
    push b (App { op; args })

  let conv2d b ?(stride = (1, 1)) ?(padding = (0, 0)) ?(groups = 1) data ~weights =
    app b (Op.Conv2d { stride; padding; groups }) [ data; weights ]

  let dense b data ~weights = app b Op.Dense [ data; weights ]
  let bias_add b data ~bias = app b Op.Bias_add [ data; bias ]

  let requantize b ?(relu = false) ~shift ~out_dtype data =
    let shift_const = const b (Tensor.scalar Tensor.Dtype.I32 shift) in
    let shifted = app b Op.Right_shift [ data; shift_const ] in
    let lo = if relu then 0 else Tensor.Dtype.min_value out_dtype in
    let hi = Tensor.Dtype.max_value out_dtype in
    let clipped = app b (Op.Clip { lo; hi }) [ shifted ] in
    app b (Op.Cast out_dtype) [ clipped ]

  let relu b data = app b Op.Relu [ data ]
  let add b x y = app b Op.Add [ x; y ]

  let max_pool b ~pool ~stride data =
    app b (Op.Max_pool { pool; pool_stride = stride }) [ data ]

  let avg_pool b ~pool ~stride data =
    app b (Op.Avg_pool { pool; pool_stride = stride }) [ data ]

  let global_avg_pool b data = app b Op.Global_avg_pool [ data ]
  let softmax b data = app b Op.Softmax [ data ]
  let reshape b shape data = app b (Op.Reshape (Array.copy shape)) [ data ]

  let flatten_chw b data shape =
    reshape b [| Array.fold_left ( * ) 1 shape |] data

  let finish b ~output =
    if output < 0 || output >= b.count then invalid_arg "Builder.finish: bad output id";
    { nodes = Array.of_list (List.rev b.rev_nodes); output }
end
