(** Shape-keyed memoization of {!Tiling.solve_stats} outcomes.

    Keys canonicalize everything the solver can observe — layer kind,
    dims, strides/pads, dtypes (never tensor contents), the target
    accelerator name and the solver config — so networks that repeat a
    layer signature (ResNet blocks, model families, repeated compiles)
    solve it once. Cached outcomes carry their search statistics, so a
    hit replays the exact trace payload of an uncached solve and cached
    compilations stay bit-identical to cold ones.

    Not domain-safe: coordinate lookups/insertions from one domain (the
    compile driver does) and fan only misses out to the pool. *)

type t

val create : unit -> t

val signature : Tiling.config -> accel:string -> Ir.Layer.t -> string
(** The canonical cache key for a (config, accelerator, layer) triple. *)

val find : t -> string -> Tiling.outcome option
val add : t -> string -> Tiling.outcome -> unit

val note : t -> hit:bool -> unit
(** Bump the cumulative hit/miss counters (callers decide what counts as
    a hit so intra-compile deduplication is attributed deterministically). *)

val hits : t -> int
val misses : t -> int
val length : t -> int
(** Distinct signatures stored. *)

val clear : t -> unit
(** Drop all entries and reset the counters. *)
