type request = { buffer_id : int; bytes : int; birth : int; death : int }
type placement = { p_buffer_id : int; offset : int; size : int }
type strategy = Reuse | No_reuse

type result = { placements : placement list; peak_bytes : int }

type error =
  | Out_of_memory of {
      oom_buffer_id : int;
      oom_bytes : int;
      oom_offset : int;
      oom_capacity : int;
    }
  | Never_fits of { nf_buffer_id : int; nf_bytes : int; nf_capacity : int }
  | Malformed_request of { bad_buffer_id : int }

let error_to_string = function
  | Out_of_memory { oom_buffer_id; oom_bytes; oom_offset; oom_capacity } ->
      Printf.sprintf
        "out of memory: buffer %d (%d B) needs [%d, %d) but capacity is %d B"
        oom_buffer_id oom_bytes oom_offset (oom_offset + oom_bytes) oom_capacity
  | Never_fits { nf_buffer_id; nf_bytes; nf_capacity } ->
      Printf.sprintf
        "buffer %d (%d B) can never fit: arena capacity is %d B" nf_buffer_id
        nf_bytes nf_capacity
  | Malformed_request { bad_buffer_id } ->
      Printf.sprintf "buffer %d: malformed request" bad_buffer_id

let overlap_in_time a b = a.birth <= b.death && b.birth <= a.death

(* First-fit: scan candidate offsets at the end of every time-overlapping
   placement (and offset 0), take the lowest that collides with none. *)
let place_reuse ~align placed req =
  let conflicting =
    List.filter_map
      (fun (r, p) -> if overlap_in_time r req then Some p else None)
      placed
  in
  let candidates =
    0
    :: List.map (fun p -> Util.Ints.round_up (p.offset + p.size) align) conflicting
    |> List.sort_uniq compare
  in
  let fits off =
    List.for_all
      (fun p -> off + req.bytes <= p.offset || p.offset + p.size <= off)
      conflicting
  in
  List.find fits candidates

let plan strategy ~capacity ~align requests =
  if align <= 0 then invalid_arg "Memplan.plan: align must be positive";
  let requests = List.sort (fun a b -> compare a.birth b.birth) requests in
  let rec go placed peak = function
    | [] -> Ok { placements = List.rev_map snd placed; peak_bytes = peak }
    | req :: rest ->
        if req.bytes < 0 || req.death < req.birth then
          Error (Malformed_request { bad_buffer_id = req.buffer_id })
        else if req.bytes > capacity then
          (* Not a packing failure: this buffer alone overflows an empty
             arena, so no schedule or strategy can ever place it. Callers
             use the distinction to demote the segment instead of
             rejecting the whole plan. *)
          Error
            (Never_fits
               {
                 nf_buffer_id = req.buffer_id;
                 nf_bytes = req.bytes;
                 nf_capacity = capacity;
               })
        else
          let offset =
            match strategy with
            | No_reuse -> (
                match placed with
                | [] -> 0
                | (_, p) :: _ -> Util.Ints.round_up (p.offset + p.size) align)
            | Reuse -> place_reuse ~align placed req
          in
          let top = offset + req.bytes in
          if top > capacity then
            Error
              (Out_of_memory
                 {
                   oom_buffer_id = req.buffer_id;
                   oom_bytes = req.bytes;
                   oom_offset = offset;
                   oom_capacity = capacity;
                 })
          else
            go
              ((req, { p_buffer_id = req.buffer_id; offset; size = req.bytes }) :: placed)
              (max peak top) rest
  in
  go [] 0 requests

let find r id =
  match List.find_opt (fun p -> p.p_buffer_id = id) r.placements with
  | Some p -> p
  | None -> raise Not_found
