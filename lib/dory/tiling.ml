module L = Ir.Layer
module Tile = Arch.Tile
module Accel = Arch.Accel

type config = {
  alpha : float;
  use_pe_heuristics : bool;
  use_dma_heuristic : bool;
  double_buffer : bool;
  l1_budget : int;
}

let default_config ~l1_budget =
  {
    alpha = 1.0;
    use_pe_heuristics = true;
    use_dma_heuristic = true;
    double_buffer = true;
    l1_budget;
  }

type solution = {
  tile : Tile.t;
  objective : float;
  mem_utilization : float;
  tiled : bool;
  tile_count : int;
}

let l1_bytes_needed cfg l tile =
  let per_buffer = Tile.bytes_in l tile + Tile.bytes_out l tile in
  (* A layer that runs as a single tile has nothing to overlap with, so
     double buffering only costs L1 when the layer is actually tiled. *)
  if cfg.double_buffer && not (Tile.is_full l tile) then 2 * per_buffer else per_buffer

let weight_mem_ok accel l tile =
  match accel.Accel.weight_mem_bytes with
  | None -> true (* charged against L1 below *)
  | Some cap -> Tile.bytes_weights l tile <= cap

let feasible cfg accel l tile =
  let act = l1_bytes_needed cfg l tile in
  let act =
    if accel.Accel.weight_mem_bytes = None then act + Tile.bytes_weights l tile else act
  in
  act <= cfg.l1_budget && weight_mem_ok accel l tile && accel.Accel.tile_ok l tile

let mem_utilization cfg accel l tile =
  let act = l1_bytes_needed cfg l tile in
  let act_frac = float_of_int act /. float_of_int cfg.l1_budget in
  match accel.Accel.weight_mem_bytes with
  | None -> act_frac
  | Some cap ->
      (* Weights have their own memory; give them a smaller say so the
         activation tiles dominate the Eq. 1 balance, as in DORY. *)
      act_frac +. (0.3 *. float_of_int (Tile.bytes_weights l tile) /. float_of_int cap)

(* "k_reuse" is part of the base objective (it compensates for weights
   living outside L1 in the Eq. 1 memory term), so it stays on in every
   Fig. 4 heuristic setting; "dma_iy" is Eq. 5; the rest are the
   PE-alignment terms of Eqs. 3-4. *)
let heuristic_enabled cfg (h : Accel.heuristic) =
  match h.Accel.h_name with
  | "dma_iy" -> cfg.use_dma_heuristic
  | "k_reuse" -> true
  | _ -> cfg.use_pe_heuristics

let objective cfg accel l tile =
  let mem = cfg.alpha *. mem_utilization cfg accel l tile in
  List.fold_left
    (fun acc h ->
      if heuristic_enabled cfg h then acc +. (h.Accel.beta *. h.Accel.score l tile)
      else acc)
    mem accel.Accel.heuristics

(* Search statistics surfaced through the trace: candidate tiles whose
   feasibility was tested, how many passed, and how many candidates the
   branch-and-bound column bound skipped without testing. *)
type stats = { explored : int; feasible : int; pruned : int }

type infeasible = { inf_layer : string; inf_accel : string; inf_l1_budget : int }

let infeasible_to_string { inf_layer; inf_accel; inf_l1_budget } =
  Printf.sprintf "no feasible tile for %s on %s within %d B of L1" inf_layer
    inf_accel inf_l1_budget

type outcome = { result : (solution, infeasible) result; stats : stats }

type counters = {
  mutable c_explored : int;
  mutable c_kept : int;
  mutable c_pruned : int;
}

(* Process-wide tally of feasibility tests actually performed — unlike the
   per-solve [stats] (which a cache replays verbatim on a hit), this only
   moves when the solver really runs, so benches can measure the work that
   pruning and caching avoid. Atomic: solves run on pool domains. *)
type work = { solves : int; tests : int }

let work_solves = Atomic.make 0
let work_tests = Atomic.make 0

let reset_solver_work () =
  Atomic.set work_solves 0;
  Atomic.set work_tests 0

let solver_work () =
  { solves = Atomic.get work_solves; tests = Atomic.get work_tests }

let tested counters cfg accel l tile =
  counters.c_explored <- counters.c_explored + 1;
  Atomic.incr work_tests;
  let ok = feasible cfg accel l tile in
  if ok then counters.c_kept <- counters.c_kept + 1;
  ok

(* Candidate tile extents for a dimension of size [n]: every value when the
   range is small, otherwise divisors, multiples of 16, and the extremes. *)
let candidates n =
  if n <= 96 then List.init n (fun i -> i + 1)
  else
    let div = Util.Ints.divisors n in
    let mult16 = List.init (n / 16) (fun i -> (i + 1) * 16) in
    List.sort_uniq compare (1 :: n :: (div @ mult16))

(* Largest feasible oy for fixed other dims; the objective is monotone in
   oy (memory use and H_DMA both grow, other terms constant), so the
   tallest feasible tile is optimal for that column of the search.

   Feasibility is monotone in oy below oy_max — activation bytes grow with
   the tile height and every registered [tile_ok] rule depends only on
   c/k/ox — so after probing the tallest candidate (which may enjoy the
   single-tile double-buffering exemption and must therefore be tested
   directly) the threshold is found by binary search instead of the
   exhaustive downward scan. *)
let best_oy ~exhaustive counters cfg accel l ~build ~oy_max =
  if exhaustive then
    let rec down oy =
      if oy < 1 then None
      else
        let tile = build oy in
        if tested counters cfg accel l tile then Some tile else down (oy - 1)
    in
    down oy_max
  else
    let top = build oy_max in
    if tested counters cfg accel l top then Some top
    else
      let rec bsearch lo hi best =
        if lo > hi then best
        else
          let mid = (lo + hi) / 2 in
          let tile = build mid in
          if tested counters cfg accel l tile then bsearch (mid + 1) hi (Some tile)
          else bsearch lo (mid - 1) best
      in
      bsearch 1 (oy_max - 1) None

(* Branch-and-bound: an upper bound on the objective any tile of a fixed
   (k, ox) column can reach. The memory term is evaluated at the tallest
   tile with double buffering charged unconditionally (>= the real cost of
   every tile in the column, including a full tile's single-buffer
   exemption); heuristic scores are constant or oy-monotone for every
   registered accelerator, so their value at the tallest tile dominates.
   The bound mirrors [objective]'s floating-point operation order so the
   comparison stays conservative under rounding. *)
let column_upper_bound cfg accel l tile =
  let per_buffer = Tile.bytes_in l tile + Tile.bytes_out l tile in
  let act = if cfg.double_buffer then 2 * per_buffer else per_buffer in
  let act =
    if accel.Accel.weight_mem_bytes = None then act + Tile.bytes_weights l tile else act
  in
  let act_frac = float_of_int act /. float_of_int cfg.l1_budget in
  let mem_ub =
    match accel.Accel.weight_mem_bytes with
    | None -> act_frac
    | Some cap ->
        act_frac +. (0.3 *. float_of_int (Tile.bytes_weights l tile) /. float_of_int cap)
  in
  List.fold_left
    (fun acc h ->
      if heuristic_enabled cfg h then acc +. (h.Accel.beta *. h.Accel.score l tile)
      else acc)
    (cfg.alpha *. mem_ub) accel.Accel.heuristics

let solution_of cfg accel l tile =
  {
    tile;
    objective = objective cfg accel l tile;
    mem_utilization = mem_utilization cfg accel l tile;
    tiled = not (Tile.is_full l tile);
    tile_count = Tile.count l tile;
  }

let search_counted ~exhaustive counters cfg accel l =
  let full = Tile.full l in
  let consider best tile =
    let obj = objective cfg accel l tile in
    match best with
    | Some (_, best_obj) when best_obj >= obj -> best
    | _ -> Some (tile, obj)
  in
  let best = ref None in
  let try_tile tile = best := consider !best tile in
  (match l.L.kind with
  | L.Dense ->
      List.iter
        (fun k ->
          let tile = Tile.for_layer l ~c:full.Tile.c ~k ~oy:1 ~ox:1 in
          if tested counters cfg accel l tile then try_tile tile)
        (candidates full.Tile.k)
  | L.Add ->
      List.iter
        (fun oy ->
          let tile = Tile.for_layer l ~c:full.Tile.c ~k:full.Tile.c ~oy ~ox:full.Tile.ox in
          if tested counters cfg accel l tile then try_tile tile)
        (candidates full.Tile.oy)
  | L.Conv _ | L.Pool _ ->
      let ks = candidates full.Tile.k in
      let oxs = candidates full.Tile.ox in
      List.iter
        (fun k ->
          List.iter
            (fun ox ->
              let build oy = Tile.for_layer l ~c:full.Tile.c ~k ~oy ~ox in
              (* A column whose bound cannot beat the incumbent would never
                 replace it (ties keep the earlier tile), so skip its
                 [oy_max] candidates without testing any of them. *)
              let dominated =
                (not exhaustive)
                &&
                match !best with
                | None -> false
                | Some (_, best_obj) ->
                    column_upper_bound cfg accel l (build full.Tile.oy) <= best_obj
              in
              if dominated then counters.c_pruned <- counters.c_pruned + full.Tile.oy
              else
                match
                  best_oy ~exhaustive counters cfg accel l ~build ~oy_max:full.Tile.oy
                with
                | Some tile -> try_tile tile
                | None -> ())
            oxs)
        ks);
  match !best with
  | None ->
      Error
        {
          inf_layer = L.describe l;
          inf_accel = accel.Accel.accel_name;
          inf_l1_budget = cfg.l1_budget;
        }
  | Some (tile, _) -> Ok (solution_of cfg accel l tile)

(* Tiling is only invoked when the whole layer does not fit (paper
   Sec. III-B / Fig. 4's grey region): a feasible full tile wins outright. *)
let solve_stats ?(exhaustive = false) cfg accel l =
  Atomic.incr work_solves;
  let counters = { c_explored = 0; c_kept = 0; c_pruned = 0 } in
  let result =
    let full = Tile.full l in
    if tested counters cfg accel l full then Ok (solution_of cfg accel l full)
    else search_counted ~exhaustive counters cfg accel l
  in
  {
    result;
    stats =
      {
        explored = counters.c_explored;
        feasible = counters.c_kept;
        pruned = counters.c_pruned;
      };
  }

let trace_solve_event trace accel l outcome =
  if Trace.enabled trace then begin
    let stats = outcome.stats in
    let common =
      [
        ("layer", Trace.Json.Str (L.describe l));
        ("accel", Trace.Json.Str accel.Accel.accel_name);
        ("explored", Trace.Json.Int stats.explored);
        ("feasible", Trace.Json.Int stats.feasible);
        ("infeasible", Trace.Json.Int (stats.explored - stats.feasible));
        ("pruned", Trace.Json.Int stats.pruned);
      ]
    in
    let args =
      match outcome.result with
      | Ok sol ->
          common
          @ [
              ("tile", Trace.Json.Str (Tile.to_string sol.tile));
              ("objective", Trace.Json.Float sol.objective);
              ("tiles", Trace.Json.Int sol.tile_count);
            ]
      | Error e -> common @ [ ("error", Trace.Json.Str (infeasible_to_string e)) ]
    in
    Trace.event trace ~cat:"dory" ~args "tiling.solve"
  end

let solve ?trace ?exhaustive cfg accel l =
  let outcome = solve_stats ?exhaustive cfg accel l in
  trace_solve_event trace accel l outcome;
  outcome.result
