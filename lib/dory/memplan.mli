(** L2 activation-memory planning.

    HTVM emits a static schedule for allocating and freeing intermediate
    activation tensors in main memory (paper Sec. III). Buffers are
    intervals over the segment index (birth = producing segment, death =
    last consuming segment); the planner packs them into a fixed-capacity
    arena. Two strategies:

    - [Reuse]: first-fit with liveness-based reuse — HTVM's planner.
    - [No_reuse]: every buffer gets a distinct region — models the plain
      TVM baseline whose MobileNet deployment runs out of memory in
      Table I. *)

type request = {
  buffer_id : int;
  bytes : int;
  birth : int;  (** index of the producing step *)
  death : int;  (** index of the last consuming step; >= birth *)
}

type placement = { p_buffer_id : int; offset : int; size : int }

type strategy = Reuse | No_reuse

type result = {
  placements : placement list;
  peak_bytes : int;  (** high-water mark of the arena *)
}

type error =
  | Out_of_memory of {
      oom_buffer_id : int;  (** first request that does not fit *)
      oom_bytes : int;      (** its size *)
      oom_offset : int;     (** offset it would have been placed at *)
      oom_capacity : int;   (** the arena capacity it overflows *)
    }
  | Never_fits of {
      nf_buffer_id : int;  (** request larger than the whole arena *)
      nf_bytes : int;
      nf_capacity : int;
    }
      (** The buffer alone overflows an empty arena: no packing, schedule
          or strategy can ever place it. Reported instead of
          [Out_of_memory] so the compiler's fallback ladder can demote
          the offending segment rather than reject the graph. *)
  | Malformed_request of { bad_buffer_id : int }
      (** negative size or death before birth *)
(** Typed planning failures: the conformance checker matches on these
    (never on message substrings) to tell a legitimate resource
    diagnosis from a planner bug. *)

val error_to_string : error -> string
(** Human-readable diagnosis, e.g.
    ["out of memory: buffer 3 (600 B) needs [512, 1112) but capacity is 1000 B"]. *)

val plan :
  strategy -> capacity:int -> align:int -> request list ->
  (result, error) Stdlib.result
(** Pack all requests into [capacity] bytes. [Error] describes the first
    buffer that does not fit (the out-of-memory diagnosis). Placements of
    overlapping lifetimes never overlap in space — tested property. *)

val find : result -> int -> placement
(** Placement of a buffer id.
    @raise Not_found if the id was not planned. *)
