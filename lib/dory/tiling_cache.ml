(* Shape-keyed memoization of tiling solves.

   ResNet-style networks re-solve identical convolution signatures many
   times, and repeated compiles (benches, autotuning sweeps, serving many
   requests for the same model family) re-solve whole networks. A solve's
   outcome depends only on the canonical layer signature (kind, dims,
   strides/pads, dtypes — never on tensor contents), the accelerator it
   targets and the solver configuration, so that triple is the key.

   The cached [Tiling.outcome] carries the search statistics alongside
   the solution: replaying a hit emits exactly the trace payload an
   uncached solve would have, keeping cached compilations bit-identical
   to cold ones.

   Not domain-safe by design: compile coordinates all lookups and
   insertions from the submitting domain and fans only the (pure) misses
   out to the pool. *)

type t = {
  table : (string, Tiling.outcome) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 64; hits = 0; misses = 0 }

let dims d = String.concat "x" (List.map string_of_int (Array.to_list d))

let tensor_sig = function
  | None -> "-"
  | Some t -> Tensor.Dtype.to_string (Tensor.dtype t) ^ ":" ^ dims (Tensor.shape t)

(* Everything [Tiling.solve_stats] can observe, except weight/bias tensor
   contents (cycle models, capacity rules and heuristics only read
   geometry and dtypes). Config floats are rendered in hex so distinct
   alphas can never collide.

   Fields are assembled with [Util.Key.encode] (length-prefixed), not
   concatenated with separators: the accelerator name is caller-supplied,
   so a name containing a separator could otherwise shift field
   boundaries and make two distinct (config, accel, layer) triples
   collide — and a persistent store would then serve the wrong tile. *)
let signature (cfg : Tiling.config) ~accel (l : Ir.Layer.t) =
  let kind =
    match l.Ir.Layer.kind with
    | Ir.Layer.Conv p ->
        let sy, sx = p.Nn.Kernels.stride and py, px = p.Nn.Kernels.padding in
        Printf.sprintf "conv:s%dx%d:p%dx%d:g%d" sy sx py px p.Nn.Kernels.groups
    | Ir.Layer.Dense -> "dense"
    | Ir.Layer.Add -> "add"
    | Ir.Layer.Pool { max; attrs } ->
        let py, px = attrs.Ir.Op.pool and sy, sx = attrs.Ir.Op.pool_stride in
        Printf.sprintf "pool:%b:%dx%d:s%dx%d" max py px sy sx
  in
  let fused_pool =
    match l.Ir.Layer.fused_pool with
    | None -> "-"
    | Some a ->
        let py, px = a.Ir.Op.pool and sy, sx = a.Ir.Op.pool_stride in
        Printf.sprintf "fp%dx%d:s%dx%d" py px sy sx
  in
  Util.Key.encode
    [
      accel;
      Printf.sprintf "%h;%b;%b;%b;%d" cfg.Tiling.alpha
        cfg.Tiling.use_pe_heuristics cfg.Tiling.use_dma_heuristic
        cfg.Tiling.double_buffer cfg.Tiling.l1_budget;
      kind;
      fused_pool;
      dims l.Ir.Layer.in_shape;
      (match l.Ir.Layer.in2_shape with None -> "-" | Some s -> dims s);
      dims l.Ir.Layer.out_shape;
      Tensor.Dtype.to_string l.Ir.Layer.in_dtype;
      Tensor.Dtype.to_string l.Ir.Layer.out_dtype;
      tensor_sig l.Ir.Layer.weights;
      tensor_sig l.Ir.Layer.bias;
      (match l.Ir.Layer.shift with None -> "-" | Some s -> string_of_int s);
      string_of_bool l.Ir.Layer.relu;
    ]

let find t key = Hashtbl.find_opt t.table key
let add t key outcome = Hashtbl.replace t.table key outcome

let note t ~hit = if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1
let hits t = t.hits
let misses t = t.misses
let length t = Hashtbl.length t.table

let clear t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0
