(* Shape-keyed memoization of tiling solves.

   ResNet-style networks re-solve identical convolution signatures many
   times, and repeated compiles (benches, autotuning sweeps, serving many
   requests for the same model family) re-solve whole networks. A solve's
   outcome depends only on the canonical layer signature (kind, dims,
   strides/pads, dtypes — never on tensor contents), the accelerator it
   targets and the solver configuration, so that triple is the key.

   The cached [Tiling.outcome] carries the search statistics alongside
   the solution: replaying a hit emits exactly the trace payload an
   uncached solve would have, keeping cached compilations bit-identical
   to cold ones.

   Not domain-safe by design: compile coordinates all lookups and
   insertions from the submitting domain and fans only the (pure) misses
   out to the pool. *)

type t = {
  table : (string, Tiling.outcome) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 64; hits = 0; misses = 0 }

let dims d = String.concat "x" (List.map string_of_int (Array.to_list d))

let tensor_sig = function
  | None -> "-"
  | Some t -> Tensor.Dtype.to_string (Tensor.dtype t) ^ ":" ^ dims (Tensor.shape t)

(* Everything [Tiling.solve_stats] can observe, except weight/bias tensor
   contents (cycle models, capacity rules and heuristics only read
   geometry and dtypes). Config floats are rendered in hex so distinct
   alphas can never collide. *)
let signature (cfg : Tiling.config) ~accel (l : Ir.Layer.t) =
  let b = Buffer.create 160 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "%s|%h;%b;%b;%b;%d|" accel cfg.Tiling.alpha cfg.Tiling.use_pe_heuristics
    cfg.Tiling.use_dma_heuristic cfg.Tiling.double_buffer cfg.Tiling.l1_budget;
  (match l.Ir.Layer.kind with
  | Ir.Layer.Conv p ->
      let sy, sx = p.Nn.Kernels.stride and py, px = p.Nn.Kernels.padding in
      add "conv:s%dx%d:p%dx%d:g%d" sy sx py px p.Nn.Kernels.groups
  | Ir.Layer.Dense -> add "dense"
  | Ir.Layer.Add -> add "add"
  | Ir.Layer.Pool { max; attrs } ->
      let py, px = attrs.Ir.Op.pool and sy, sx = attrs.Ir.Op.pool_stride in
      add "pool:%b:%dx%d:s%dx%d" max py px sy sx);
  (match l.Ir.Layer.fused_pool with
  | None -> add "|-"
  | Some a ->
      let py, px = a.Ir.Op.pool and sy, sx = a.Ir.Op.pool_stride in
      add "|fp%dx%d:s%dx%d" py px sy sx);
  add "|%s|%s|%s" (dims l.Ir.Layer.in_shape)
    (match l.Ir.Layer.in2_shape with None -> "-" | Some s -> dims s)
    (dims l.Ir.Layer.out_shape);
  add "|%s>%s"
    (Tensor.Dtype.to_string l.Ir.Layer.in_dtype)
    (Tensor.Dtype.to_string l.Ir.Layer.out_dtype);
  add "|w:%s|b:%s" (tensor_sig l.Ir.Layer.weights) (tensor_sig l.Ir.Layer.bias);
  add "|sh:%s|relu:%b"
    (match l.Ir.Layer.shift with None -> "-" | Some s -> string_of_int s)
    l.Ir.Layer.relu;
  Buffer.contents b

let find t key = Hashtbl.find_opt t.table key
let add t key outcome = Hashtbl.replace t.table key outcome

let note t ~hit = if hit then t.hits <- t.hits + 1 else t.misses <- t.misses + 1
let hits t = t.hits
let misses t = t.misses
let length t = Hashtbl.length t.table

let clear t =
  Hashtbl.reset t.table;
  t.hits <- 0;
  t.misses <- 0
