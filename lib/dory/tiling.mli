(** DORY's tiling solver (paper Sec. III-B, Eqs. 1-5).

    Given a layer and an accelerator, find the tile geometry that
    maximizes

    {v alpha * (L1_weight + L1_out + L1_in) + sum_i beta_i * H_i v}

    subject to the L1 capacity constraint (Eq. 2), the accelerator's
    weight-memory capacity and its per-tile hardware rules. The H_i are
    the accelerator's registered heuristics (for DIANA's digital core:
    Eqs. 3-5). The solver enumerates output-channel and output-column
    candidates and, for each, takes the tallest feasible tile — the
    objective is monotone in tile height, so this is exact. *)

type config = {
  alpha : float;  (** weight of the memory-utilization term *)
  use_pe_heuristics : bool;
      (** enable the PE-alignment terms (Eqs. 3-4); off = Fig. 4 round
          markers *)
  use_dma_heuristic : bool;  (** enable the DMA term (Eq. 5) *)
  double_buffer : bool;
      (** reserve two L1 slots per activation buffer so DMA can overlap
          compute *)
  l1_budget : int;  (** activation L1 bytes available to this layer *)
}

val default_config : l1_budget:int -> config
(** alpha = 1, all heuristics on, double buffering on. *)

type solution = {
  tile : Arch.Tile.t;
  objective : float;
  mem_utilization : float;  (** activation-memory fraction used, 0..1 *)
  tiled : bool;             (** false when the whole layer fits L1 *)
  tile_count : int;
}

val l1_bytes_needed : config -> Ir.Layer.t -> Arch.Tile.t -> int
(** Activation bytes the tile occupies in L1 under the configured
    buffering policy. *)

val feasible : config -> Arch.Accel.t -> Ir.Layer.t -> Arch.Tile.t -> bool
(** Does the tile satisfy Eq. 2, the weight-memory capacity and the
    accelerator's [tile_ok] rules? *)

val objective : config -> Arch.Accel.t -> Ir.Layer.t -> Arch.Tile.t -> float
(** The Eq. 1 objective for a candidate tile. *)

type stats = {
  explored : int;  (** candidate tiles whose feasibility was tested *)
  feasible : int;  (** of those, how many passed *)
  pruned : int;
      (** candidate tiles skipped without testing by the branch-and-bound
          column bound (the binary search over oy additionally shrinks
          [explored] itself) *)
}

type infeasible = {
  inf_layer : string;  (** {!Ir.Layer.describe} of the rejected layer *)
  inf_accel : string;  (** target accelerator name *)
  inf_l1_budget : int;  (** the L1 byte budget no tile fit in *)
}
(** Typed "no feasible tile" diagnosis: no candidate tile satisfied the
    L1 capacity, weight-memory and hardware-rule constraints. Callers
    (the compile driver, the conformance checker) match on this instead
    of on message substrings. *)

val infeasible_to_string : infeasible -> string
(** ["no feasible tile for <layer> on <accel> within <n> B of L1"]. *)

type outcome = { result : (solution, infeasible) result; stats : stats }

val solve_stats :
  ?exhaustive:bool -> config -> Arch.Accel.t -> Ir.Layer.t -> outcome
(** The solver proper: deterministic and side-effect free apart from the
    process-wide work counters, so calls may run on pool domains and
    outcomes may be memoized ({!Tiling_cache}). By default the search
    binary-searches the tallest feasible oy of each (k, ox) column
    (feasibility is monotone in oy) and skips columns whose objective
    upper bound cannot beat the incumbent; [~exhaustive:true] restores
    the full scan — same chosen tile and objective, more [explored]
    candidates (benches use it as the pruning baseline). *)

val trace_solve_event :
  Trace.t option -> Arch.Accel.t -> Ir.Layer.t -> outcome -> unit
(** Record the ["tiling.solve"] trace event for an outcome — emitted
    separately from {!solve_stats} so parallel compilation can replay
    events in deterministic order from the coordinating domain. *)

val solve :
  ?trace:Trace.t ->
  ?exhaustive:bool ->
  config ->
  Arch.Accel.t ->
  Ir.Layer.t ->
  (solution, infeasible) result
(** [solve_stats] + [trace_solve_event]: [Error] when no feasible tile
    exists (layer cannot run on this accelerator within the memory
    budget). When [trace] is given, one ["tiling.solve"] event is
    recorded per call with the candidates explored, the feasible /
    infeasible / pruned split, and the chosen tile and objective. *)

type work = { solves : int; tests : int }

val solver_work : unit -> work
(** Process-wide count of solver invocations and feasibility tests
    actually performed since the last reset — unlike the per-solve
    {!stats} (which caches replay verbatim), this measures real work, so
    benches can quantify what pruning and caching avoid. *)

val reset_solver_work : unit -> unit
