(** Dense integer tensors.

    A tensor couples a dtype, a shape, and a flat row-major [int] payload.
    Activations use CHW order ([|channels; height; width|]), convolution
    weights KCFyFx, fully-connected weights KC. Every write is
    range-checked against the dtype, so an out-of-range accumulator or a
    mis-quantized kernel fails loudly in tests instead of silently
    wrapping. *)

module Dtype : module type of Dtype
(** Re-export: element types (see {!module:Dtype}). *)

type t

val create : Dtype.t -> int array -> t
(** Zero-initialized tensor of the given shape. Dimensions must be
    positive; the shape array is copied. *)

val of_array : Dtype.t -> int array -> int array -> t
(** [of_array dtype shape data] wraps (a copy of) [data], validating length
    and element ranges.
    @raise Invalid_argument on shape/data mismatch or range violation. *)

val scalar : Dtype.t -> int -> t
(** Rank-0 tensor holding one value. *)

val dtype : t -> Dtype.t
val shape : t -> int array
(** The shape (a fresh copy). *)

val rank : t -> int
val numel : t -> int

val dim : t -> int -> int
(** [dim t i] is the size of axis [i].
    @raise Invalid_argument if [i] is out of bounds. *)

val sim_bytes : t -> int
(** Footprint of the tensor in the simulator's byte memories. *)

val packed_bytes : t -> int
(** Footprint in a deployed binary's constant section (ternary packs to
    2 bits/element, rounded up to whole bytes). *)

val get : t -> int array -> int
(** Multi-dimensional read. Indices are bounds-checked. *)

val set : t -> int array -> int -> unit
(** Multi-dimensional write; the value must be in the dtype's range. *)

val get_flat : t -> int -> int
val set_flat : t -> int -> int -> unit

val blit_data : t -> int array
(** A fresh copy of the flat payload. *)

val unsafe_data : t -> int array
(** The live flat payload itself, not a copy. Writing through it skips the
    dtype range check, so it is reserved for hot paths that re-establish
    the invariant themselves (the execution-plan kernels clamp every value
    before it lands). Aliases the tensor for its whole lifetime. *)

val fill : t -> int -> unit
(** Set every element to a (range-checked) value. *)

val reset : t -> unit
(** Zero every element in place — the arena-reuse path. Equivalent to
    [fill t 0] (zero is in range for every dtype) but spelled separately
    so reuse sites read as "make this scratch tensor fresh again". *)

val reshape : t -> int array -> t
(** Same payload viewed under a new shape with equal element count. The
    result shares storage with the argument. *)

val cast : Dtype.t -> t -> t
(** Element-wise saturating conversion into another dtype (fresh tensor). *)

val map : (int -> int) -> t -> t
(** Fresh tensor with [f] applied to every element (range-checked under the
    same dtype). *)

val map2 : Dtype.t -> (int -> int -> int) -> t -> t -> t
(** Pointwise combination of two same-shaped tensors into a fresh tensor of
    the given dtype. *)

val iteri_flat : (int -> int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val equal : t -> t -> bool
(** Structural equality: dtype, shape and every element. *)

val random : Util.Rng.t -> Dtype.t -> int array -> t
(** Tensor of uniform random values drawn from the dtype's full range
    (ternary uses the sparse ternary distribution of {!Util.Rng.ternary}). *)

val max_abs_diff : t -> t -> int
(** Largest absolute element-wise difference between two same-shaped
    tensors (ignores dtype). *)

val pp : Format.formatter -> t -> unit
(** Summary printer: dtype, shape, and a digest of the payload. *)

val to_string : t -> string
