module Dtype = Dtype

type t = { dtype : Dtype.t; shape : int array; data : int array }

let check_shape shape =
  if Array.exists (fun d -> d <= 0) shape then
    invalid_arg "Tensor: dimensions must be positive"

let product shape = Array.fold_left ( * ) 1 shape

let create dtype shape =
  check_shape shape;
  { dtype; shape = Array.copy shape; data = Array.make (product shape) 0 }

let check_value dtype v =
  if not (Dtype.in_range dtype v) then
    invalid_arg
      (Printf.sprintf "Tensor: value %d out of range for %s" v (Dtype.to_string dtype))

let of_array dtype shape data =
  check_shape shape;
  if Array.length data <> product shape then
    invalid_arg "Tensor.of_array: data length does not match shape";
  Array.iter (check_value dtype) data;
  { dtype; shape = Array.copy shape; data = Array.copy data }

let scalar dtype v =
  check_value dtype v;
  { dtype; shape = [||]; data = [| v |] }

let dtype t = t.dtype
let shape t = Array.copy t.shape
let rank t = Array.length t.shape
let numel t = Array.length t.data

let dim t i =
  if i < 0 || i >= Array.length t.shape then invalid_arg "Tensor.dim: axis out of bounds";
  t.shape.(i)

let sim_bytes t = numel t * Dtype.sim_bytes t.dtype
let packed_bytes t = Util.Ints.ceil_div (numel t * Dtype.packed_bits t.dtype) 8

let flat_index t idx =
  let n = Array.length t.shape in
  if Array.length idx <> n then invalid_arg "Tensor: index rank mismatch";
  let off = ref 0 in
  for i = 0 to n - 1 do
    let v = idx.(i) in
    if v < 0 || v >= t.shape.(i) then invalid_arg "Tensor: index out of bounds";
    off := (!off * t.shape.(i)) + v
  done;
  !off

let get t idx = t.data.(flat_index t idx)

let set t idx v =
  check_value t.dtype v;
  t.data.(flat_index t idx) <- v

let get_flat t i = t.data.(i)

let set_flat t i v =
  check_value t.dtype v;
  t.data.(i) <- v

let blit_data t = Array.copy t.data
let unsafe_data t = t.data

let fill t v =
  check_value t.dtype v;
  Array.fill t.data 0 (Array.length t.data) v

let reset t = Array.fill t.data 0 (Array.length t.data) 0

let reshape t shape =
  check_shape shape;
  if product shape <> numel t then invalid_arg "Tensor.reshape: element count mismatch";
  { t with shape = Array.copy shape }

let cast dtype t =
  { dtype; shape = Array.copy t.shape; data = Array.map (Dtype.clamp dtype) t.data }

let map f t =
  let data = Array.map f t.data in
  Array.iter (check_value t.dtype) data;
  { t with shape = Array.copy t.shape; data }

let map2 dtype f a b =
  if a.shape <> b.shape then invalid_arg "Tensor.map2: shape mismatch";
  let data = Array.map2 f a.data b.data in
  Array.iter (check_value dtype) data;
  { dtype; shape = Array.copy a.shape; data }

let iteri_flat f t = Array.iteri f t.data
let fold f acc t = Array.fold_left f acc t.data

let equal a b = Dtype.equal a.dtype b.dtype && a.shape = b.shape && a.data = b.data

let random rng dtype shape =
  check_shape shape;
  let draw () =
    match (dtype : Dtype.t) with
    | Ternary -> Util.Rng.ternary rng
    | I8 -> Util.Rng.int8 rng
    | d -> Util.Rng.int_in rng (Dtype.min_value d) (Dtype.max_value d)
  in
  { dtype; shape = Array.copy shape; data = Array.init (product shape) (fun _ -> draw ()) }

let max_abs_diff a b =
  if a.shape <> b.shape then invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let worst = ref 0 in
  Array.iteri (fun i v -> worst := max !worst (abs (v - b.data.(i)))) a.data;
  !worst

let pp fmt t =
  let dims = Array.to_list t.shape |> List.map string_of_int |> String.concat "x" in
  let digest = Array.fold_left (fun h v -> (h * 31) + v) 17 t.data land 0xFFFFFF in
  Format.fprintf fmt "tensor<%s>[%s]#%06x" (Dtype.to_string t.dtype)
    (if dims = "" then "scalar" else dims)
    digest

let to_string t = Format.asprintf "%a" pp t
