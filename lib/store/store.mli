(** Persistent, content-addressed compilation cache.

    A store is a directory of immutable entries shared across runs, CLI
    invocations, and serve fleets. Entries live in two tiers: the
    {e layer} tier maps a tiling-problem signature to a serialized
    solver outcome, the {e artifact} tier maps a graph+config+target
    digest to a full compiled artifact. The store itself is agnostic to
    the payload format — callers hand it opaque bytes under an opaque
    key; keys are hashed to sharded paths, so arbitrary key contents
    are safe.

    Every load is a {e verified replay}: an entry carries a
    format/version header, the payload length, and the payload's
    content digest. Any mismatch — truncation, bit rot, version skew,
    a foreign file — rejects the entry: it is deleted and reported as
    absent, so the caller recomputes and overwrites. A load never
    crashes the caller and never yields bytes that differ from what was
    stored.

    Writes are atomic (temp file + rename on the same filesystem), so
    concurrent writers racing the same key are safe: readers observe
    either no entry or a complete one, and same-key writers store
    identical bytes by construction (keys are content-addressed). *)

type t
(** A handle on one store root, accumulating hit/miss/reject/eviction
    counters across lookups made through it. *)

type tier = Layer | Artifact

type entry = {
  e_tier : tier;
  e_digest : string;  (** hex digest of the key; the entry's file name *)
  e_bytes : int;  (** on-disk size, header included *)
  e_mtime : float;  (** last hit or write; the LRU eviction ordering *)
}

val default_root : unit -> string
(** [$HTVM_CACHE_DIR], else [$XDG_CACHE_HOME/htvm], else
    [~/.cache/htvm], else a directory under the system temp dir. *)

val open_root : string -> t
(** Open (creating if needed) a store rooted at the given directory.
    Raises [Sys_error] if the directory cannot be created. *)

val root : t -> string

val find : t -> tier -> key:string -> string option
(** Verified lookup. [Some payload] only if an entry for [key] exists
    and its header, length, and content digest all check out; a valid
    hit also bumps the entry's mtime for LRU. Any invalid entry is
    deleted and counted as a reject; absence is counted as a miss. *)

val put : t -> tier -> key:string -> string -> unit
(** Atomically (over)write the entry for [key]. *)

val invalidate : t -> tier -> key:string -> unit
(** Delete the entry for [key] and count a reject. Used by callers
    whose own decode of a digest-valid payload fails (e.g. an
    unmarshal error): the entry must not be served again. *)

val hits : t -> int

val misses : t -> int

val rejects : t -> int

val evictions : t -> int

val entries : t -> entry list
(** Scan the store, in a deterministic (tier, digest) order. *)

val total_bytes : entry list -> int

val verify : t -> int * int
(** Re-check every entry's header and digest; delete the invalid ones
    (counting rejects). Returns [(ok, removed)] and refreshes the
    index file. *)

val gc : t -> max_bytes:int -> int
(** Evict least-recently-used entries (oldest mtime first) until the
    store fits in [max_bytes]. Returns the number evicted and
    refreshes the index file. *)

val write_index : t -> unit
(** Atomically rewrite the human-readable index file from a fresh scan.
    The index is advisory — lookups never trust it — but gives
    [htvmc cache stats] and outside tooling a cheap inventory. *)
