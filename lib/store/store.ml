(* Persistent, content-addressed compilation cache.

   Layout (version-prefixed so a future format bump is a clean miss,
   not a misread):

     <root>/v1/layer/<d0d1>/<digest>       one file per entry
     <root>/v1/artifact/<d0d1>/<digest>
     <root>/v1/index                       advisory inventory

   where <digest> is the hex digest of the caller's key and <d0d1> its
   first two hex chars (256-way sharding keeps directories small).

   Entry format: a single header line

     htvm-store v1 <tier> <payload-digest-hex> <payload-length>\n

   followed by exactly <payload-length> bytes of payload. A load
   re-derives every header field from the bytes actually read; any
   mismatch rejects the entry (delete + report absent) so the caller
   recomputes and overwrites. Rejection, not failure: a corrupt cache
   costs a recompute, never a crash and never a wrong artifact. *)

type tier = Layer | Artifact

type entry = {
  e_tier : tier;
  e_digest : string;
  e_bytes : int;
  e_mtime : float;
}

type t = {
  root : string;
  mutable hits : int;
  mutable misses : int;
  mutable rejects : int;
  mutable evictions : int;
}

let magic = "htvm-store"
let version = "v1"
let tier_name = function Layer -> "layer" | Artifact -> "artifact"

let default_root () =
  let non_empty = function Some d when d <> "" -> Some d | _ -> None in
  match non_empty (Sys.getenv_opt "HTVM_CACHE_DIR") with
  | Some d -> d
  | None -> (
      match non_empty (Sys.getenv_opt "XDG_CACHE_HOME") with
      | Some d -> Filename.concat d "htvm"
      | None -> (
          match non_empty (Sys.getenv_opt "HOME") with
          | Some h ->
              Filename.concat (Filename.concat h ".cache") "htvm"
          | None ->
              Filename.concat (Filename.get_temp_dir_name ()) "htvm-cache"))

(* mkdir -p, tolerant of another process creating the same component
   concurrently (EEXIST surfaces as Sys_error here). *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ -> if not (Sys.is_directory dir) then raise (Sys_error (dir ^ ": cannot create store directory"))
  end

let version_root t = Filename.concat t.root version
let tier_dir t tier = Filename.concat (version_root t) (tier_name tier)

let open_root root =
  let t = { root; hits = 0; misses = 0; rejects = 0; evictions = 0 } in
  mkdir_p (tier_dir t Layer);
  mkdir_p (tier_dir t Artifact);
  t

let root t = t.root
let hits t = t.hits
let misses t = t.misses
let rejects t = t.rejects
let evictions t = t.evictions

let digest_of_key key = Digest.to_hex (Digest.string key)

let path_of_digest t tier digest =
  Filename.concat
    (Filename.concat (tier_dir t tier) (String.sub digest 0 2))
    digest

let header tier payload =
  Printf.sprintf "%s %s %s %s %d\n" magic version (tier_name tier)
    (Digest.to_hex (Digest.string payload))
    (String.length payload)

(* Validate one raw entry file against the tier it was found under.
   Returns the payload only if the header parses, names this format
   version and tier, and the length and content digest both match the
   bytes present. *)
let payload_of_raw tier raw =
  match String.index_opt raw '\n' with
  | None -> None
  | Some nl -> (
      let header = String.sub raw 0 nl in
      match String.split_on_char ' ' header with
      | [ m; v; tn; dg; len ] -> (
          match int_of_string_opt len with
          | None -> None
          | Some len ->
              let body_start = nl + 1 in
              if
                m = magic && v = version
                && tn = tier_name tier
                && String.length raw = body_start + len
              then
                let payload = String.sub raw body_start len in
                if Digest.to_hex (Digest.string payload) = dg then
                  Some payload
                else None
              else None)
      | _ -> None)

let read_file path =
  if Sys.file_exists path then
    try Some (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error _ -> None
  else None

let remove_quiet path = try Sys.remove path with Sys_error _ -> ()

(* Bump mtime so GC's LRU ordering reflects last use, not last write. *)
let touch path = try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let find t tier ~key =
  let path = path_of_digest t tier (digest_of_key key) in
  match read_file path with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some raw -> (
      match payload_of_raw tier raw with
      | Some payload ->
          t.hits <- t.hits + 1;
          touch path;
          Some payload
      | None ->
          t.rejects <- t.rejects + 1;
          remove_quiet path;
          None)

let put t tier ~key payload =
  let path = path_of_digest t tier (digest_of_key key) in
  mkdir_p (Filename.dirname path);
  Util.File.write_atomic path (header tier payload ^ payload)

let invalidate t tier ~key =
  t.rejects <- t.rejects + 1;
  remove_quiet (path_of_digest t tier (digest_of_key key))

let is_hex_digest name =
  String.length name = 32
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       name

let readdir_sorted dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
      let l = Array.to_list names in
      List.sort compare l

let entries t =
  List.concat_map
    (fun tier ->
      let dir = tier_dir t tier in
      List.concat_map
        (fun shard ->
          let sdir = Filename.concat dir shard in
          if Sys.is_directory sdir then
            List.filter_map
              (fun name ->
                if is_hex_digest name then
                  let path = Filename.concat sdir name in
                  match Unix.stat path with
                  | exception Unix.Unix_error _ -> None
                  | st ->
                      Some
                        {
                          e_tier = tier;
                          e_digest = name;
                          e_bytes = st.Unix.st_size;
                          e_mtime = st.Unix.st_mtime;
                        }
                else None)
              (readdir_sorted sdir)
          else [])
        (readdir_sorted dir))
    [ Layer; Artifact ]

let total_bytes es = List.fold_left (fun acc e -> acc + e.e_bytes) 0 es

let index_path t = Filename.concat (version_root t) "index"

let write_index_of t es =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s-index %s\n" magic version);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %d %.0f\n" (tier_name e.e_tier) e.e_digest
           e.e_bytes e.e_mtime))
    es;
  Util.File.write_atomic (index_path t) (Buffer.contents buf)

let write_index t = write_index_of t (entries t)

let verify t =
  let ok = ref 0 and removed = ref 0 in
  List.iter
    (fun e ->
      let path = path_of_digest t e.e_tier e.e_digest in
      let valid =
        match read_file path with
        | None -> false
        | Some raw -> payload_of_raw e.e_tier raw <> None
      in
      if valid then incr ok
      else begin
        t.rejects <- t.rejects + 1;
        remove_quiet path;
        incr removed
      end)
    (entries t);
  write_index t;
  (!ok, !removed)

let gc t ~max_bytes =
  let es = entries t in
  (* Oldest mtime first; digest breaks ties so the order — hence the
     eviction set — is deterministic for any fixed on-disk state. *)
  let by_age =
    List.sort
      (fun a b ->
        match compare a.e_mtime b.e_mtime with
        | 0 -> compare (a.e_tier, a.e_digest) (b.e_tier, b.e_digest)
        | c -> c)
      es
  in
  let total = ref (total_bytes es) in
  let evicted = ref 0 in
  List.iter
    (fun e ->
      if !total > max_bytes then begin
        remove_quiet (path_of_digest t e.e_tier e.e_digest);
        total := !total - e.e_bytes;
        t.evictions <- t.evictions + 1;
        incr evicted
      end)
    by_age;
  write_index t;
  !evicted
