(* Greedy delta-debugging minimizer (see shrink.mli).

   Reductions are expressed as *edits* against the current graph and
   applied by rebuilding the graph from scratch through the Builder:
   constants are re-sliced and attribute-carried shapes re-derived as the
   rebuild walks the topological order, so a candidate either comes out
   well-typed or is rejected before the failure predicate ever sees it. *)

module G = Ir.Graph
module B = Ir.Graph.Builder
module C = Htvm.Compile

type outcome = {
  graph : Ir.Graph.t;
  config : Htvm.Compile.config;
  checks : int;
  accepted : int;
}

exception Reject

let numel_of = Array.fold_left ( * ) 1

(* Resize a constant to [shape], cycling through the source values so a
   shrunken weight keeps the original's value distribution. *)
let reslice t shape =
  let src_n = Tensor.numel t in
  if src_n = 0 || numel_of shape <= 0 then raise Reject;
  let t' = Tensor.create (Tensor.dtype t) shape in
  for i = 0 to numel_of shape - 1 do
    Tensor.set_flat t' i (Tensor.get_flat t (i mod src_n))
  done;
  t'

(* One candidate reduction, as a set of overrides on the original graph:
   - [e_output]: truncate the graph at an earlier application;
   - [e_redirect]: bypass an application, rerouting its consumers to one
     of its (same-typed) arguments;
   - [e_promote]: replace an application with a fresh graph input of its
     inferred type — the whole producer chain above it dies;
   - [e_input_shape]: replace an input declaration's shape;
   - [e_conv_k]: override a (non-depthwise) convolution's output-channel
     count; the weight constant is re-sliced to match. *)
type edit = {
  e_output : G.id option;
  e_redirect : (G.id * G.id) list;
  e_promote : G.id list;
  e_input_shape : (G.id * int array) list;
  e_conv_k : (G.id * int) list;
}

let no_edit =
  { e_output = None; e_redirect = []; e_promote = []; e_input_shape = []; e_conv_k = [] }

let rebuild g edit =
  try
    let n = G.length g in
    let redirect = Hashtbl.create 4 in
    List.iter (fun (a, b) -> Hashtbl.replace redirect a b) edit.e_redirect;
    let rec resolve fuel id =
      if fuel < 0 then raise Reject;
      match Hashtbl.find_opt redirect id with
      | Some id' -> resolve (fuel - 1) id'
      | None -> id
    in
    let resolve id = resolve n id in
    let out = resolve (Option.value edit.e_output ~default:(G.output g)) in
    (match G.node g out with G.App _ -> () | _ -> raise Reject);
    let promoted id = List.mem id edit.e_promote in
    let tys0 = if edit.e_promote = [] then [||] else Ir.Infer.infer g in
    (* Mark nodes reachable from the (possibly truncated) output through
       redirected arguments; promotion cuts reachability, so everything
       else — a bypassed op's private constant, a promoted value's whole
       producer chain — is dropped. *)
    let live = Array.make n false in
    let rec mark id =
      if not live.(id) then begin
        live.(id) <- true;
        if not (promoted id) then
          match G.node g id with
          | G.App { args; _ } -> List.iter (fun a -> mark (resolve a)) args
          | G.Input _ | G.Const _ -> ()
      end
    in
    mark out;
    let b = B.create () in
    let new_id = Array.make n (-1) in
    let tys : (int, Ir.Infer.ty) Hashtbl.t = Hashtbl.create n in
    let ty_of nid = Hashtbl.find tys nid in
    let push_const t =
      let id = B.const b t in
      Hashtbl.replace tys id
        { Ir.Infer.dtype = Tensor.dtype t; shape = Tensor.shape t };
      id
    in
    let const_tensor old_id =
      match G.node g old_id with G.Const t -> t | _ -> raise Reject
    in
    (* New id for an argument; constants are materialized on first use. *)
    let arg_id old_id =
      let old_id = resolve old_id in
      if new_id.(old_id) >= 0 then new_id.(old_id)
      else
        match G.node g old_id with
        | G.Const t ->
            let id = push_const t in
            new_id.(old_id) <- id;
            id
        | _ -> raise Reject
    in
    (* Push an application and type it by inferring the prefix built so
       far (Builder.finish is non-destructive). Type_error here means the
       candidate broke an operator's typing rule: rejected below. *)
    let push_app op args =
      let id = B.app b op args in
      let t = (Ir.Infer.infer (B.finish b ~output:id)).(id) in
      Hashtbl.replace tys id t;
      id
    in
    List.iter
      (fun old_id ->
        if live.(old_id) && new_id.(old_id) < 0 then
          match G.node g old_id with
          | G.Const _ -> () (* materialized lazily by its users *)
          | G.Input { name; dtype; shape } ->
              let shape =
                match List.assoc_opt old_id edit.e_input_shape with
                | Some s -> s
                | None -> shape
              in
              if Array.exists (fun d -> d <= 0) shape then raise Reject;
              let id = B.input b ~name dtype shape in
              Hashtbl.replace tys id { Ir.Infer.dtype; shape };
              new_id.(old_id) <- id
          | G.App _ when promoted old_id ->
              let t = tys0.(old_id) in
              let name = "s" ^ string_of_int old_id in
              let id = B.input b ~name t.Ir.Infer.dtype t.Ir.Infer.shape in
              Hashtbl.replace tys id t;
              new_id.(old_id) <- id
          | G.App { op; args } ->
              let id =
                match (op, args) with
                | Ir.Op.Conv2d { stride = sy, sx; padding = py, px; groups }, [ data; w ]
                  -> (
                    let d = arg_id data in
                    match (ty_of d).Ir.Infer.shape with
                    | [| c; h; wd |] ->
                        let wt = const_tensor (resolve w) in
                        let ws = Tensor.shape wt in
                        if Array.length ws <> 4 then raise Reject;
                        let fy = ws.(2) and fx = ws.(3) in
                        let dw = groups > 1 in
                        let k =
                          if dw then c
                          else
                            match List.assoc_opt old_id edit.e_conv_k with
                            | Some k -> k
                            | None -> ws.(0)
                        in
                        let oh = ((h + (2 * py) - fy) / sy) + 1
                        and ow = ((wd + (2 * px) - fx) / sx) + 1 in
                        if k <= 0 || oh <= 0 || ow <= 0
                           || h + (2 * py) < fy || wd + (2 * px) < fx
                        then raise Reject;
                        let ws' = [| k; (if dw then 1 else c); fy; fx |] in
                        let wt' = if ws' = ws then wt else reslice wt ws' in
                        push_app
                          (Ir.Op.Conv2d
                             {
                               stride = (sy, sx);
                               padding = (py, px);
                               groups = (if dw then c else 1);
                             })
                          [ d; push_const wt' ]
                    | _ -> raise Reject)
                | Ir.Op.Dense, [ data; w ] -> (
                    let d = arg_id data in
                    match (ty_of d).Ir.Infer.shape with
                    | [| features |] ->
                        let wt = const_tensor (resolve w) in
                        let ws = Tensor.shape wt in
                        if Array.length ws <> 2 then raise Reject;
                        let ws' = [| ws.(0); features |] in
                        let wt' = if ws' = ws then wt else reslice wt ws' in
                        push_app Ir.Op.Dense [ d; push_const wt' ]
                    | _ -> raise Reject)
                | Ir.Op.Bias_add, [ acc; bias ] ->
                    let a = arg_id acc in
                    let sh = (ty_of a).Ir.Infer.shape in
                    if Array.length sh = 0 then raise Reject;
                    let bt = const_tensor (resolve bias) in
                    let bt' =
                      if Tensor.shape bt = [| sh.(0) |] then bt
                      else reslice bt [| sh.(0) |]
                    in
                    push_app Ir.Op.Bias_add [ a; push_const bt' ]
                | Ir.Op.Reshape shape, [ a ] ->
                    let a = arg_id a in
                    let ne = numel_of (ty_of a).Ir.Infer.shape in
                    let shape' =
                      if numel_of shape = ne then shape
                      else if Array.length shape = 1 then [| ne |]
                      else raise Reject
                    in
                    push_app (Ir.Op.Reshape shape') [ a ]
                | op, args -> push_app op (List.map arg_id args)
              in
              new_id.(old_id) <- id)
      (G.node_ids g);
    if new_id.(out) < 0 then raise Reject;
    let g' = B.finish b ~output:new_id.(out) in
    (match G.validate g' with Ok () -> () | Error _ -> raise Reject);
    ignore (Ir.Infer.infer g');
    if G.inputs g' = [] then raise Reject;
    Some g'
  with
  | Reject | Ir.Infer.Type_error _ | Invalid_argument _ | Not_found -> None

(* ---------------------------------------------------------------- *)
(* Candidate generation.                                            *)

type cand = Edit of edit | Cfg of (C.config -> C.config)

let graph_cands g =
  let tys = Ir.Infer.infer g in
  let apps =
    List.filter (fun id -> match G.node g id with G.App _ -> true | _ -> false)
      (G.node_ids g)
  in
  (* Truncations first, smallest prefix first: the single biggest win. *)
  let truncations =
    List.filter_map
      (fun id -> if id <> G.output g then Some (Edit { no_edit with e_output = Some id }) else None)
      apps
  in
  (* Promote an interior value to a fresh input: kills the producer
     chain above it. Earliest (deepest) promotions would remove the
     least, so try latest first. *)
  let promotes =
    List.rev_map
      (fun id -> Edit { no_edit with e_promote = [ id ] })
      (List.filter (fun id -> id <> G.output g) apps)
  in
  let bypasses =
    List.concat_map
      (fun id ->
        match G.node g id with
        | G.App { args; _ } ->
            List.filter_map
              (fun a ->
                match G.node g a with
                | G.Const _ -> None
                | _ when Ir.Infer.ty_equal tys.(a) tys.(id) ->
                    Some (Edit { no_edit with e_redirect = [ (id, a) ] })
                | _ -> None)
              args
        | _ -> [])
      apps
  in
  let conv_shrinks =
    List.concat_map
      (fun id ->
        match G.node g id with
        | G.App { op = Ir.Op.Conv2d { groups = 1; _ }; args = [ _; w ] } -> (
            match G.node g w with
            | G.Const t ->
                let k = (Tensor.shape t).(0) in
                List.sort_uniq compare
                  (List.filter (fun k' -> k' >= 1 && k' < k) [ k / 2; k - 1 ])
                |> List.map (fun k' -> Edit { no_edit with e_conv_k = [ (id, k') ] })
            | _ -> [])
        | _ -> [])
      apps
  in
  let input_shrinks =
    List.concat_map
      (fun (id, _, _, shape) ->
        match shape with
        | [| c; h; w |] ->
            let cand s = Edit { no_edit with e_input_shape = [ (id, s) ] } in
            (if h > 1 || w > 1 then
               [ cand [| c; (h + 1) / 2; (w + 1) / 2 |];
                 cand [| c; max 1 (h - 1); max 1 (w - 1) |] ]
             else [])
            @ (if c > 1 then [ cand [| (c + 1) / 2; h; w |]; cand [| c - 1; h; w |] ]
               else [])
        | _ -> [])
      (G.inputs g)
  in
  truncations @ promotes @ bypasses @ conv_shrinks @ input_shrinks

let config_cands (cfg : C.config) (canon : C.config) =
  List.filter_map Fun.id
    [
      (if cfg.C.solver_cache <> None then
         Some (Cfg (fun c -> { c with C.solver_cache = None }))
       else None);
      (if cfg.C.jobs <> canon.C.jobs then
         Some (Cfg (fun c -> { c with C.jobs = canon.C.jobs }))
       else None);
      (if cfg.C.autotune_budget <> canon.C.autotune_budget then
         Some (Cfg (fun c -> { c with C.autotune_budget = canon.C.autotune_budget }))
       else None);
      (if cfg.C.exhaustive_tiling <> canon.C.exhaustive_tiling then
         Some (Cfg (fun c -> { c with C.exhaustive_tiling = canon.C.exhaustive_tiling }))
       else None);
      (if cfg.C.memory_strategy <> canon.C.memory_strategy then
         Some (Cfg (fun c -> { c with C.memory_strategy = canon.C.memory_strategy }))
       else None);
      (if cfg.C.double_buffer <> canon.C.double_buffer then
         Some (Cfg (fun c -> { c with C.double_buffer = canon.C.double_buffer }))
       else None);
      (if cfg.C.use_pe_heuristics <> canon.C.use_pe_heuristics then
         Some (Cfg (fun c -> { c with C.use_pe_heuristics = canon.C.use_pe_heuristics }))
       else None);
      (if cfg.C.use_dma_heuristic <> canon.C.use_dma_heuristic then
         Some (Cfg (fun c -> { c with C.use_dma_heuristic = canon.C.use_dma_heuristic }))
       else None);
      (if cfg.C.degraded_targets <> canon.C.degraded_targets then
         Some (Cfg (fun c -> { c with C.degraded_targets = canon.C.degraded_targets }))
       else None);
      (if cfg.C.segment_budget_cycles <> canon.C.segment_budget_cycles then
         Some
           (Cfg
              (fun c ->
                { c with C.segment_budget_cycles = canon.C.segment_budget_cycles }))
       else None);
    ]

(* ---------------------------------------------------------------- *)
(* Measure and loop.                                                *)

let total_elems g =
  List.fold_left
    (fun acc id ->
      match G.node g id with
      | G.Input { shape; _ } -> acc + numel_of shape
      | G.Const t -> acc + Tensor.numel t
      | G.App _ -> acc)
    0 (G.node_ids g)

let cfg_delta (c : C.config) (d : C.config) =
  let b x = if x then 1 else 0 in
  b (c.C.memory_strategy <> d.C.memory_strategy)
  + b (c.C.double_buffer <> d.C.double_buffer)
  + b (c.C.use_pe_heuristics <> d.C.use_pe_heuristics)
  + b (c.C.use_dma_heuristic <> d.C.use_dma_heuristic)
  + b (c.C.autotune_budget <> d.C.autotune_budget)
  + b (c.C.jobs <> d.C.jobs)
  + b ((c.C.solver_cache <> None) <> (d.C.solver_cache <> None))
  + b (c.C.exhaustive_tiling <> d.C.exhaustive_tiling)
  + b (c.C.degraded_targets <> d.C.degraded_targets)
  + b (c.C.segment_budget_cycles <> d.C.segment_budget_cycles)

let shrink ?(max_checks = 400) ~predicate cfg g =
  (* Simplification target: the stock deployment a human would debug
     with. The platform itself is never changed — an undersized L1 is
     usually part of the bug being reproduced. *)
  let canon =
    { (C.default_config cfg.C.platform) with C.jobs = 1; C.solver_cache = None }
  in
  let measure cfg g = (G.app_count g, total_elems g, cfg_delta cfg canon) in
  let checks = ref 0 and accepted = ref 0 in
  let state = ref (cfg, g) in
  let still_fails cfg' g' =
    if !checks >= max_checks then false
    else begin
      incr checks;
      match predicate cfg' g' with v -> v | exception _ -> false
    end
  in
  (* One greedy pass: accept the first candidate (in the deterministic
     truncate / bypass / channel-shrink / input-shrink / config order)
     that strictly decreases the measure and still fails; restart
     candidate generation from the reduced pair. *)
  let step () =
    let cfg, g = !state in
    let m = measure cfg g in
    let try_cand = function
      | Edit e -> (
          match rebuild g e with
          | None -> false
          | Some g' ->
              measure cfg g' < m && still_fails cfg g'
              && (state := (cfg, g');
                  true))
      | Cfg f ->
          let cfg' = f cfg in
          measure cfg' g < m && still_fails cfg' g
          && (state := (cfg', g);
              true)
    in
    List.exists try_cand (graph_cands g @ config_cands cfg canon)
  in
  let progress = ref true in
  while !progress && !checks < max_checks do
    if step () then incr accepted else progress := false
  done;
  let cfg, g = !state in
  { graph = g; config = cfg; checks = !checks; accepted = !accepted }

let shrink_failure ?max_checks ?(input_seed = 0) ?faults ?retry_budget cfg g
    verdict =
  let cls = Verdict.class_of verdict in
  let predicate cfg g =
    Verdict.class_of (Verdict.run_case ~input_seed ?faults ?retry_budget cfg g)
    = cls
  in
  shrink ?max_checks ~predicate cfg g
