(* Random quantized-network generator for differential testing (see
   gen.mli). Every choice flows through one SplitMix64 stream per seed, so
   cases replay exactly from the integer seed alone. *)

module B = Ir.Graph.Builder
module Dtype = Tensor.Dtype

type value = { id : Ir.Graph.id; shape : int array }

let bias_const b rng n =
  let t = Tensor.create Dtype.I32 [| n |] in
  for i = 0 to n - 1 do
    Tensor.set_flat t i (Util.Rng.int_in rng (-8192) 8191)
  done;
  B.const b t

let conv_block b rng v ~dw =
  let c = v.shape.(0) and h = v.shape.(1) and w = v.shape.(2) in
  let f = if dw then 3 else [| 1; 3; 3; 5 |].(Util.Rng.int rng 4) in
  let stride = if Util.Rng.int rng 3 = 0 && h > f && w > f then 2 else 1 in
  let pad = if f = 1 then 0 else Util.Rng.int rng ((f / 2) + 1) in
  let oh = ((h + (2 * pad) - f) / stride) + 1 and ow = ((w + (2 * pad) - f) / stride) + 1 in
  if oh <= 0 || ow <= 0 then None
  else
    let k = if dw then c else [| 4; 8; 12; 16; 24 |].(Util.Rng.int rng 5) in
    let wdtype = if (not dw) && Util.Rng.int rng 3 = 0 then Dtype.Ternary else Dtype.I8 in
    let weights =
      Tensor.random rng wdtype [| k; (if dw then 1 else c); f; f |]
    in
    let wconst = B.const b weights in
    let groups = if dw then c else 1 in
    let conv =
      B.app b
        (Ir.Op.Conv2d { stride = (stride, stride); padding = (pad, pad); groups })
        [ v.id; wconst ]
    in
    let conv =
      if Util.Rng.bool rng then B.bias_add b conv ~bias:(bias_const b rng k) else conv
    in
    let shift = Util.Ints.log2_ceil (max 2 (c * f * f)) + if wdtype = Dtype.Ternary then 2 else 6 in
    let q =
      B.requantize b ~relu:(Util.Rng.bool rng) ~shift ~out_dtype:Dtype.I8 conv
    in
    Some { id = q; shape = [| k; oh; ow |] }

let pool_block b rng v =
  let h = v.shape.(1) and w = v.shape.(2) in
  if h < 2 || w < 2 then None
  else
    let id =
      if Util.Rng.bool rng then B.max_pool b ~pool:(2, 2) ~stride:(2, 2) v.id
      else B.avg_pool b ~pool:(2, 2) ~stride:(2, 2) v.id
    in
    Some { id; shape = [| v.shape.(0); h / 2; w / 2 |] }

let concat_block b rng v older =
  (* Concatenate with an earlier activation that shares the spatial dims
     (keeps total channels modest). *)
  match
    List.find_opt
      (fun o ->
        Array.length o.shape = 3
        && o.shape.(1) = v.shape.(1) && o.shape.(2) = v.shape.(2)
        && o.shape.(0) + v.shape.(0) <= 32)
      older
  with
  | None -> None
  | Some o ->
      let id = B.app b Ir.Op.Concat [ v.id; o.id ] in
      ignore rng;
      Some { id; shape = [| v.shape.(0) + o.shape.(0); v.shape.(1); v.shape.(2) |] }

let residual_block b rng v older =
  (* Find an earlier value with the same shape to add to. *)
  match List.find_opt (fun o -> o.shape = v.shape && o.id <> v.id) older with
  | None -> None
  | Some o ->
      let s = B.add b v.id o.id in
      let q = B.requantize b ~relu:(Util.Rng.bool rng) ~shift:1 ~out_dtype:Dtype.I8 s in
      Some { id = q; shape = v.shape }

(* A random spatial trunk followed by an optional classifier head. *)
let generate seed =
  let rng = Util.Rng.create seed in
  let b = B.create () in
  let c0 = 1 + Util.Rng.int rng 4 in
  let hw = [| 8; 10; 12; 16 |].(Util.Rng.int rng 4) in
  let x = B.input b ~name:"x" Dtype.I8 [| c0; hw; hw |] in
  let v = ref { id = x; shape = [| c0; hw; hw |] } in
  let older = ref [ !v ] in
  let steps = 2 + Util.Rng.int rng 5 in
  for _ = 1 to steps do
    let choice = Util.Rng.int rng 10 in
    let next =
      if choice < 5 then conv_block b rng !v ~dw:false
      else if choice < 7 then conv_block b rng !v ~dw:true
      else if choice < 8 then pool_block b rng !v
      else if choice < 9 then concat_block b rng !v !older
      else residual_block b rng !v !older
    in
    match next with
    | Some nv ->
        v := nv;
        older := nv :: !older
    | None -> ()
  done;
  let out =
    (* Force the head when every trunk block aborted: a generated case
       must always contain at least one operator application. *)
    if Util.Rng.bool rng || !v.id = x then begin
      (* classifier head: flatten -> dense -> softmax *)
      let features = Array.fold_left ( * ) 1 !v.shape in
      let flat = B.reshape b [| features |] !v.id in
      let classes = 2 + Util.Rng.int rng 10 in
      let w = B.const b (Tensor.random rng Dtype.I8 [| classes; features |]) in
      let fc = B.dense b flat ~weights:w in
      let fc = if Util.Rng.bool rng then B.bias_add b fc ~bias:(bias_const b rng classes) else fc in
      let q =
        B.requantize b ~shift:(Util.Ints.log2_ceil features + 6) ~out_dtype:Dtype.I8 fc
      in
      if Util.Rng.bool rng then B.softmax b q else q
    end
    else !v.id
  in
  B.finish b ~output:out

let random_config seed =
  let rng = Util.Rng.create (seed * 31) in
  let platform =
    match Util.Rng.int rng 5 with
    | 0 -> Arch.Diana.cpu_only
    | 1 -> Arch.Diana.digital_only
    | 2 -> Arch.Diana.analog_only
    | 3 -> Arch.Nova.platform
    | _ -> Arch.Diana.platform
  in
  (* Shrink L1 sometimes so tiling paths get exercised end to end. *)
  let platform =
    if Util.Rng.bool rng then
      {
        platform with
        Arch.Platform.l1 =
          { Arch.Memory.level_name = "L1";
            size_bytes = Util.Ints.kib [| 2; 4; 8; 32 |].(Util.Rng.int rng 4) };
      }
    else platform
  in
  {
    Htvm.Compile.platform;
    memory_strategy =
      (if Util.Rng.int rng 4 = 0 then Dory.Memplan.No_reuse else Dory.Memplan.Reuse);
    double_buffer = Util.Rng.bool rng;
    use_pe_heuristics = Util.Rng.bool rng;
    use_dma_heuristic = Util.Rng.bool rng;
    autotune_budget = (if Util.Rng.int rng 4 = 0 then Some 32 else None);
    (* Exercise the parallel/memoized engine paths too: they must be
       behaviorally invisible (bit-identical artifacts at any setting). *)
    jobs = [| 1; 1; 2; 4 |].(Util.Rng.int rng 4);
    solver_cache =
      (if Util.Rng.int rng 3 = 0 then Some (Dory.Tiling_cache.create ()) else None);
    exhaustive_tiling = Util.Rng.int rng 4 = 0;
    degraded_targets = [];
    segment_budget_cycles = None;
  }

(* --- chaos campaigns ---------------------------------------------------- *)

(* Chaos plans are recoverable by construction: only detected kinds
   (transfer drop/flip, weight-load flip, compute drop) plus stalls, at
   most one rule per site, and sparse [every]/[nth] triggers (never
   [always] or [p=...]) — so a retried occurrence can never re-fire and
   the default retry budget always recovers. Silent kinds (compute or
   memory flips) are deliberately absent from the default campaign: a
   [silent_corruption] verdict under [htvmc chaos] therefore always
   means the harness itself leaked one, not that the dice were hot. *)
let random_fault_plan seed =
  let rng = Util.Rng.create ((seed * 131) + 17) in
  let sparse () =
    if Util.Rng.int rng 4 = 0 then Fault.Plan.Nth (1 + Util.Rng.int rng 4)
    else Fault.Plan.Every (3 + Util.Rng.int rng 7)
  in
  let templates =
    [|
      (Fault.Plan.Dma_in, Fault.Plan.Drop);
      (Fault.Plan.Dma_in, Fault.Plan.Flip 1);
      (Fault.Plan.Dma_out, Fault.Plan.Drop);
      (Fault.Plan.Dma_out, Fault.Plan.Flip 1);
      (Fault.Plan.Weight_load, Fault.Plan.Flip 1);
      (Fault.Plan.Weight_load, Fault.Plan.Drop);
      (Fault.Plan.Compute None, Fault.Plan.Drop);
      (Fault.Plan.Compute None, Fault.Plan.Stall (64 + Util.Rng.int rng 512));
    |]
  in
  let n_rules = 1 + Util.Rng.int rng 3 in
  let rules =
    List.init n_rules (fun _ ->
        let site, kind = templates.(Util.Rng.int rng (Array.length templates)) in
        { Fault.Plan.site; trigger = sparse (); kind })
  in
  (* One rule per site: two rules on one site could fail an operation on
     consecutive occurrences and outrun the retry budget. *)
  let seen = Hashtbl.create 4 in
  let rules =
    List.filter
      (fun (r : Fault.Plan.rule) ->
        let k = Fault.Plan.site_label r.Fault.Plan.site in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      rules
  in
  { Fault.Plan.seed; rules }

let chaos_config seed =
  let cfg = random_config seed in
  let rng = Util.Rng.create ((seed * 97) + 3) in
  (* A quarter of the campaigns also take an accelerator offline, driving
     segments down the compiler's fallback ladder. *)
  let accels = cfg.Htvm.Compile.platform.Arch.Platform.accels in
  if Util.Rng.int rng 4 = 0 && accels <> [] then
    let victim = List.nth accels (Util.Rng.int rng (List.length accels)) in
    {
      cfg with
      Htvm.Compile.degraded_targets = [ victim.Arch.Accel.accel_name ];
    }
  else cfg
