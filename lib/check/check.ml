(** Differential conformance subsystem.

    One library ties the pieces together: {!Gen} builds random valid
    (graph, deployment config) cases from an integer seed, {!Verdict}
    (included below) runs one case end to end — compile, execute on the
    simulated SoC, compare bit-for-bit against the reference interpreter
    — and classifies the outcome, {!Shrink} minimizes any failing case
    to a small reproducer, and {!Golden} snapshots the compiler's
    observable behaviour on the model zoo. [htvmc check] and the test
    suites are thin drivers over this module. *)

module Gen = Gen
module Shrink = Shrink
module Golden = Golden
include Verdict

type case = { seed : int; verdict : Verdict.t }
(** One fuzz case: the seed and what running it produced. *)

(** [fuzz ~start ~count ()] runs the seed range [[start, start+count)]
    and returns every case in ascending seed order — the result is
    identical at any [jobs] (the pool preserves order, and each case is
    a pure function of its seed). [progress] is called after each
    completed chunk from the submitting domain. [run] (default
    {!Verdict.run_seed}) maps a seed to its verdict — [htvmc chaos]
    passes {!Verdict.run_chaos_seed} and inherits the same
    seed-order-determinism guarantee, since a chaos case is as pure a
    function of its seed as a plain one. *)
let fuzz ?(jobs = 1) ?(chunk = 32) ?progress ?(run = Verdict.run_seed) ~start
    ~count () =
  Util.Pool.with_pool ~jobs (fun pool ->
      let acc = ref [] in
      let completed = ref 0 in
      let rec loop s remaining =
        if remaining > 0 then begin
          let n = min chunk remaining in
          let seeds = List.init n (fun i -> s + i) in
          let results =
            Util.Pool.map pool (fun seed -> { seed; verdict = run seed }) seeds
          in
          List.iter (fun c -> acc := c :: !acc) results;
          completed := !completed + n;
          (match progress with
          | Some f -> f ~completed:!completed ~total:count
          | None -> ());
          loop (s + n) (remaining - n)
        end
      in
      loop start count;
      List.rev !acc)

(** Per-class counts, sorted by class label — a stable one-line summary
    for reports and assertions. *)
let tally cases =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let k = Verdict.class_of c.verdict in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    cases;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(** First failing case of the range, if any (ascending seed order). *)
let first_failure cases = List.find_opt (fun c -> Verdict.is_failure c.verdict) cases
