(* Golden conformance snapshots (see golden.mli). *)

module C = Htvm.Compile

type entry = {
  ge_model : string;
  ge_config : string;
  ge_output_digest : string;
  ge_wall_cycles : int;
  ge_binary_bytes : int;
  ge_l2_static_bytes : int;
  ge_l2_arena_bytes : int;
}

let configurations =
  [
    ("cpu", Arch.Diana.cpu_only, Models.Policy.All_int8);
    ("digital", Arch.Diana.digital_only, Models.Policy.All_int8);
    ("analog", Arch.Diana.analog_only, Models.Policy.All_ternary);
    ("both", Arch.Diana.platform, Models.Policy.Mixed);
  ]

let cases =
  List.concat_map
    (fun (e : Models.Zoo.entry) ->
      List.map (fun (c, _, _) -> (e.Models.Zoo.model_name, c)) configurations)
    Models.Zoo.all

let filename ~model ~config = Printf.sprintf "%s.%s.golden" model config
let input_seed = 7

let digest_tensor t =
  let b = Buffer.create (16 + (Tensor.numel t * 4)) in
  Buffer.add_string b (Tensor.Dtype.to_string (Tensor.dtype t));
  Buffer.add_char b '|';
  Array.iter
    (fun d ->
      Buffer.add_string b (string_of_int d);
      Buffer.add_char b 'x')
    (Tensor.shape t);
  Buffer.add_char b '|';
  for i = 0 to Tensor.numel t - 1 do
    Buffer.add_string b (string_of_int (Tensor.get_flat t i));
    Buffer.add_char b ','
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))

let compute ~model ~config =
  match
    ( List.find_opt (fun (e : Models.Zoo.entry) -> e.Models.Zoo.model_name = model)
        Models.Zoo.all,
      List.find_opt (fun (c, _, _) -> c = config) configurations )
  with
  | None, _ -> Error (Printf.sprintf "unknown model %S" model)
  | _, None -> Error (Printf.sprintf "unknown config %S" config)
  | Some entry, Some (_, platform, policy) -> (
      let g = entry.Models.Zoo.build policy in
      (* Pinned to jobs = 1 / no cache so the snapshot is independent of
         HTVM_JOBS — the engine guarantees bit-identical artifacts at any
         job count, and the suite relies on exactly that. *)
      let cfg =
        { (C.default_config platform) with C.jobs = 1; C.solver_cache = None }
      in
      match C.compile cfg g with
      | Error e ->
          Error
            (Printf.sprintf "%s/%s failed to compile: %s" model config
               (C.error_to_string e))
      | Ok artifact ->
          let inputs = Models.Zoo.random_input ~seed:input_seed g in
          let out, report = C.run artifact ~inputs in
          Ok
            {
              ge_model = model;
              ge_config = config;
              ge_output_digest = digest_tensor out;
              ge_wall_cycles = C.full_cycles report;
              ge_binary_bytes = artifact.C.size.Codegen.Size.total_bytes;
              ge_l2_static_bytes = artifact.C.l2_static_bytes;
              ge_l2_arena_bytes = artifact.C.l2_arena_bytes;
            })

let to_string e =
  String.concat "\n"
    [
      "htvm-golden v1";
      "model: " ^ e.ge_model;
      "config: " ^ e.ge_config;
      "output_digest: " ^ e.ge_output_digest;
      "wall_cycles: " ^ string_of_int e.ge_wall_cycles;
      "binary_bytes: " ^ string_of_int e.ge_binary_bytes;
      "l2_static_bytes: " ^ string_of_int e.ge_l2_static_bytes;
      "l2_arena_bytes: " ^ string_of_int e.ge_l2_arena_bytes;
      "";
    ]

let of_string s =
  let lines =
    String.split_on_char '\n' s |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | "htvm-golden v1" :: fields -> (
      let kv =
        List.filter_map
          (fun l ->
            match String.index_opt l ':' with
            | Some i ->
                Some
                  ( String.sub l 0 i,
                    String.trim (String.sub l (i + 1) (String.length l - i - 1)) )
            | None -> None)
          fields
      in
      let str k = List.assoc_opt k kv in
      let int k = Option.bind (str k) int_of_string_opt in
      match
        ( str "model", str "config", str "output_digest",
          int "wall_cycles", int "binary_bytes",
          int "l2_static_bytes", int "l2_arena_bytes" )
      with
      | Some m, Some c, Some d, Some w, Some b, Some ls, Some la ->
          Ok
            {
              ge_model = m;
              ge_config = c;
              ge_output_digest = d;
              ge_wall_cycles = w;
              ge_binary_bytes = b;
              ge_l2_static_bytes = ls;
              ge_l2_arena_bytes = la;
            }
      | _ -> Error "missing or malformed golden field")
  | _ -> Error "not an htvm-golden v1 file"

let load ~dir ~model ~config =
  let path = Filename.concat dir (filename ~model ~config) in
  if not (Sys.file_exists path) then
    Error
      (Printf.sprintf "no golden snapshot %s — record it with: htvmc check --bless"
         path)
  else
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    match of_string s with
    | Ok e -> Ok e
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)

let bless ~dir e =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename ~model:e.ge_model ~config:e.ge_config) in
  let oc = open_out_bin path in
  output_string oc (to_string e);
  close_out oc

let diff ~expected ~actual =
  let field name render get =
    if get expected = get actual then None
    else
      Some
        (Printf.sprintf "%s: expected %s, got %s" name
           (render (get expected)) (render (get actual)))
  in
  List.filter_map Fun.id
    [
      field "output_digest" Fun.id (fun e -> e.ge_output_digest);
      field "wall_cycles" string_of_int (fun e -> e.ge_wall_cycles);
      field "binary_bytes" string_of_int (fun e -> e.ge_binary_bytes);
      field "l2_static_bytes" string_of_int (fun e -> e.ge_l2_static_bytes);
      field "l2_arena_bytes" string_of_int (fun e -> e.ge_l2_arena_bytes);
    ]
