(** Random quantized-network and deployment-configuration generator.

    The differential-conformance workhorse: builds arbitrary-but-valid
    graphs in the operator vocabulary the HTVM flow supports (conv /
    depthwise / dense blocks with random geometry, precision, stride and
    activation; residual adds; poolings; channel concatenations; softmax
    heads) and pairs them with random deployment configurations
    (platform choice, shrunken L1, planner strategy, engine knobs).
    Everything is a pure function of the integer seed, so any case — and
    any failure — replays from one number.

    Promoted out of [test/] so the library-level checker ({!Verdict},
    {!Shrink}, [htvmc check]) and the test suites share one generator. *)

val generate : int -> Ir.Graph.t
(** A random valid graph: a spatial trunk of 2–6 blocks followed by an
    optional flatten/dense/softmax classifier head (forced when every
    trunk block aborts, so the result always has at least one operator
    application). Deterministic per seed. *)

val random_config : int -> Htvm.Compile.config
(** A random deployment configuration for the same seed space: one of
    the five platforms (DIANA cpu/digital/analog/full, NOVA), sometimes
    with L1 shrunk to 2–32 KiB so tiling paths are exercised end to end,
    random planner strategy, buffering, heuristic and engine (jobs /
    cache / pruning) knobs. Never degrades a target or sets a segment
    budget — that is {!chaos_config}'s job. *)

val random_fault_plan : int -> Fault.Plan.t
(** A random {e recoverable} fault plan for [htvmc chaos]: 1–3 rules over
    distinct sites, detected kinds (transfer drop/flip, weight-load
    drop/flip, compute drop) and stalls only, sparse [every]/[nth]
    triggers. Under the default retry budget every injected fault is
    either retried successfully or merely stalls, so the only chaos
    verdicts on stock campaigns are pass / recovered / degraded — a
    [detected_uncorrected] or [silent_corruption] verdict indicts the
    resilience machinery, not the dice. Deterministic per seed; the
    plan's session seed is [seed] itself. *)

val chaos_config : int -> Htvm.Compile.config
(** {!random_config}, with roughly a quarter of the campaigns taking one
    of the platform's accelerators offline ([degraded_targets]) so the
    compiler's fallback ladder is exercised under chaos too. *)
