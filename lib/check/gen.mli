(** Random quantized-network and deployment-configuration generator.

    The differential-conformance workhorse: builds arbitrary-but-valid
    graphs in the operator vocabulary the HTVM flow supports (conv /
    depthwise / dense blocks with random geometry, precision, stride and
    activation; residual adds; poolings; channel concatenations; softmax
    heads) and pairs them with random deployment configurations
    (platform choice, shrunken L1, planner strategy, engine knobs).
    Everything is a pure function of the integer seed, so any case — and
    any failure — replays from one number.

    Promoted out of [test/] so the library-level checker ({!Verdict},
    {!Shrink}, [htvmc check]) and the test suites share one generator. *)

val generate : int -> Ir.Graph.t
(** A random valid graph: a spatial trunk of 2–6 blocks followed by an
    optional flatten/dense/softmax classifier head (forced when every
    trunk block aborts, so the result always has at least one operator
    application). Deterministic per seed. *)

val random_config : int -> Htvm.Compile.config
(** A random deployment configuration for the same seed space: one of
    the five platforms (DIANA cpu/digital/analog/full, NOVA), sometimes
    with L1 shrunk to 2–32 KiB so tiling paths are exercised end to end,
    random planner strategy, buffering, heuristic and engine (jobs /
    cache / pruning) knobs. *)
