(** Delta-debugging minimizer for failing (graph, config) pairs.

    A 40-op fuzz failure is undebuggable; the interesting bug is almost
    always reachable from a 1–3 op reproducer. [shrink] greedily applies
    semantic reductions — truncate the graph at an earlier node, promote
    an interior value to a fresh graph input (dropping its whole producer
    chain), bypass a shape-preserving op, halve convolution output
    channels, shrink input spatial/channel dims (re-slicing weight and
    bias constants and
    re-deriving reshape targets so the graph stays well-typed), and
    simplify the deployment config toward {!Htvm.Compile.default_config}
    — re-checking the failure predicate after each candidate and keeping
    only candidates that still fail. Every kept candidate strictly
    decreases the (op count, element count, config delta) measure, so
    the process terminates; [max_checks] bounds the total number of
    predicate evaluations regardless.

    Candidate generation, ordering and acceptance are fully
    deterministic: the same failing pair always minimizes to the same
    reproducer in the same number of re-checks. *)

type outcome = {
  graph : Ir.Graph.t;     (** the minimized graph (still failing) *)
  config : Htvm.Compile.config;  (** the simplified config *)
  checks : int;           (** predicate evaluations spent *)
  accepted : int;         (** reduction steps kept *)
}

val shrink :
  ?max_checks:int ->
  predicate:(Htvm.Compile.config -> Ir.Graph.t -> bool) ->
  Htvm.Compile.config ->
  Ir.Graph.t ->
  outcome
(** Minimize, assuming [predicate config graph] is [true] ("still
    failing") on the given pair. The predicate is never called on an
    invalid or ill-typed graph — candidates that break
    {!Ir.Graph.validate} or {!Ir.Infer.infer} are discarded before the
    re-check. A predicate that raises is treated as "no longer failing".
    [max_checks] defaults to 400. *)

val shrink_failure :
  ?max_checks:int ->
  ?input_seed:int ->
  ?faults:Fault.Plan.t ->
  ?retry_budget:int ->
  Htvm.Compile.config ->
  Ir.Graph.t ->
  Verdict.t ->
  outcome
(** [shrink] with the canonical predicate "running the case yields a
    verdict of the same {!Verdict.class_of} as the original failure".
    For chaos failures pass the campaign's [faults] plan (and
    [retry_budget], if overridden) so every re-check replays the same
    injection campaign the original failure ran under. *)
