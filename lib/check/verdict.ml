type stage = Compiling | Executing | Referencing

type t =
  | Pass of { wall_cycles : int }
  | Resource of Htvm.Compile.error
  | Reject of Htvm.Compile.error
  | Mismatch of { max_abs_diff : int }
  | Crash of { stage : stage; message : string }

let is_failure = function
  | Pass _ | Resource _ -> false
  | Reject _ | Mismatch _ | Crash _ -> true

let stage_name = function
  | Compiling -> "compiling"
  | Executing -> "executing"
  | Referencing -> "referencing"

let error_class (e : Htvm.Compile.error) =
  match e with
  | Htvm.Compile.Out_of_memory _ -> "out-of-memory"
  | Htvm.Compile.No_feasible_tile _ -> "no-feasible-tile"
  | Htvm.Compile.Empty_graph -> "empty-graph"
  | Htvm.Compile.Internal _ -> "internal"

(* The class deliberately drops volatile detail (byte counts, diff
   magnitudes, exception messages): the shrinker must treat "same kind of
   failure, smaller numbers" as the same bug while it cuts the graph
   down. *)
let class_of = function
  | Pass _ -> "pass"
  | Resource e -> "resource:" ^ error_class e
  | Reject e -> "reject:" ^ error_class e
  | Mismatch _ -> "mismatch"
  | Crash { stage; _ } -> "crash:" ^ stage_name stage

let describe = function
  | Pass { wall_cycles } -> Printf.sprintf "pass (%d cycles)" wall_cycles
  | Resource e -> "resource diagnosis: " ^ Htvm.Compile.error_to_string e
  | Reject e -> "compile reject: " ^ Htvm.Compile.error_to_string e
  | Mismatch { max_abs_diff } ->
      Printf.sprintf "output mismatch vs interpreter (max abs diff %d)" max_abs_diff
  | Crash { stage; message } ->
      Printf.sprintf "crash while %s: %s" (stage_name stage) message

let run_case ?(input_seed = 0) cfg g =
  match Htvm.Compile.compile cfg g with
  | exception e -> Crash { stage = Compiling; message = Printexc.to_string e }
  | Error e ->
      if Htvm.Compile.is_resource_error e then Resource e else Reject e
  | Ok artifact -> (
      let inputs = Models.Zoo.random_input ~seed:input_seed g in
      match Ir.Eval.run g ~inputs with
      | exception e -> Crash { stage = Referencing; message = Printexc.to_string e }
      | reference -> (
          match Htvm.Compile.run artifact ~inputs with
          | exception e ->
              Crash { stage = Executing; message = Printexc.to_string e }
          | out, report ->
              if not (Tensor.equal reference out) then
                Mismatch { max_abs_diff = Tensor.max_abs_diff reference out }
              else
                let wall = report.Sim.Machine.totals.Sim.Counters.wall in
                if wall <= 0 then
                  Crash { stage = Executing; message = "no cycles counted" }
                else Pass { wall_cycles = wall }))

let run_seed seed =
  run_case ~input_seed:seed (Gen.random_config seed) (Gen.generate seed)

let describe_config (cfg : Htvm.Compile.config) =
  let p = cfg.Htvm.Compile.platform in
  Printf.sprintf
    "platform=%s l1=%dB strategy=%s double_buffer=%b pe=%b dma=%b autotune=%s \
     jobs=%d cache=%b exhaustive=%b"
    p.Arch.Platform.platform_name p.Arch.Platform.l1.Arch.Memory.size_bytes
    (match cfg.Htvm.Compile.memory_strategy with
    | Dory.Memplan.Reuse -> "reuse"
    | Dory.Memplan.No_reuse -> "no_reuse")
    cfg.Htvm.Compile.double_buffer cfg.Htvm.Compile.use_pe_heuristics
    cfg.Htvm.Compile.use_dma_heuristic
    (match cfg.Htvm.Compile.autotune_budget with
    | None -> "none"
    | Some b -> string_of_int b)
    cfg.Htvm.Compile.jobs
    (cfg.Htvm.Compile.solver_cache <> None)
    cfg.Htvm.Compile.exhaustive_tiling

let reproducer ~seed ~config ~graph ~verdict =
  String.concat "\n"
    [
      "# htvm check reproducer";
      Printf.sprintf "# seed: %d" seed;
      Printf.sprintf "# verdict: %s" (describe verdict);
      Printf.sprintf "# class: %s" (class_of verdict);
      Printf.sprintf "# config: %s" (describe_config config);
      Printf.sprintf "# ops: %d" (Ir.Graph.app_count graph);
      Printf.sprintf "# replay: htvmc check --replay-seed %d" seed;
      Ir.Text.to_string graph;
    ]
