type stage = Compiling | Executing | Referencing

type t =
  | Pass of { wall_cycles : int }
  | Recovered of { wall_cycles : int; retries : int; detected : int }
  | Degraded of { wall_cycles : int; demotions : int }
  | Resource of Htvm.Compile.error
  | Reject of Htvm.Compile.error
  | Mismatch of { max_abs_diff : int }
  | Detected_uncorrected of { site : string; attempts : int }
  | Silent_corruption of { max_abs_diff : int; silent_faults : int }
  | Crash of { stage : stage; message : string }

let is_failure = function
  | Pass _ | Recovered _ | Degraded _ | Resource _ -> false
  | Reject _ | Mismatch _ | Detected_uncorrected _ | Silent_corruption _
  | Crash _ ->
      true

let stage_name = function
  | Compiling -> "compiling"
  | Executing -> "executing"
  | Referencing -> "referencing"

let error_class (e : Htvm.Compile.error) =
  match e with
  | Htvm.Compile.Out_of_memory _ -> "out-of-memory"
  | Htvm.Compile.No_feasible_tile _ -> "no-feasible-tile"
  | Htvm.Compile.Empty_graph -> "empty-graph"
  | Htvm.Compile.Internal _ -> "internal"

(* The class deliberately drops volatile detail (byte counts, diff
   magnitudes, exception messages): the shrinker must treat "same kind of
   failure, smaller numbers" as the same bug while it cuts the graph
   down. *)
let class_of = function
  | Pass _ -> "pass"
  | Recovered _ -> "recovered"
  | Degraded _ -> "degraded"
  | Resource e -> "resource:" ^ error_class e
  | Reject e -> "reject:" ^ error_class e
  | Mismatch _ -> "mismatch"
  | Detected_uncorrected _ -> "detected_uncorrected"
  | Silent_corruption _ -> "silent_corruption"
  | Crash { stage; _ } -> "crash:" ^ stage_name stage

let describe = function
  | Pass { wall_cycles } -> Printf.sprintf "pass (%d cycles)" wall_cycles
  | Recovered { wall_cycles; retries; detected } ->
      Printf.sprintf
        "recovered: output bit-identical after %d detected fault(s), %d \
         retry(ies) (%d cycles)"
        detected retries wall_cycles
  | Degraded { wall_cycles; demotions } ->
      Printf.sprintf
        "degraded: completed bit-identical with %d segment demotion(s) (%d \
         cycles)"
        demotions wall_cycles
  | Resource e -> "resource diagnosis: " ^ Htvm.Compile.error_to_string e
  | Reject e -> "compile reject: " ^ Htvm.Compile.error_to_string e
  | Mismatch { max_abs_diff } ->
      Printf.sprintf "output mismatch vs interpreter (max abs diff %d)" max_abs_diff
  | Detected_uncorrected { site; attempts } ->
      Printf.sprintf
        "detected but uncorrected: %s still failing after %d attempt(s)" site
        attempts
  | Silent_corruption { max_abs_diff; silent_faults } ->
      Printf.sprintf
        "silent corruption: %d silent fault(s) changed the output (max abs \
         diff %d)"
        silent_faults max_abs_diff
  | Crash { stage; message } ->
      Printf.sprintf "crash while %s: %s" (stage_name stage) message

let run_case ?(input_seed = 0) ?faults ?retry_budget cfg g =
  match Htvm.Compile.compile cfg g with
  | exception e -> Crash { stage = Compiling; message = Printexc.to_string e }
  | Error e ->
      if Htvm.Compile.is_resource_error e then Resource e else Reject e
  | Ok artifact -> (
      let inputs = Models.Zoo.random_input ~seed:input_seed g in
      match Ir.Eval.run g ~inputs with
      | exception e -> Crash { stage = Referencing; message = Printexc.to_string e }
      | reference -> (
          let session = Option.map Fault.Session.create faults in
          match Htvm.Compile.run artifact ?faults:session ?retry_budget ~inputs with
          | exception Fault.Session.Unrecovered { site; attempts } ->
              Detected_uncorrected { site; attempts }
          | exception e ->
              Crash { stage = Executing; message = Printexc.to_string e }
          | out, report ->
              let stats = Option.map Fault.Session.stats session in
              let injected =
                match stats with Some s -> s.Fault.Session.injected | None -> 0
              in
              let silent =
                match stats with Some s -> s.Fault.Session.silent | None -> 0
              in
              if not (Tensor.equal reference out) then
                let max_abs_diff = Tensor.max_abs_diff reference out in
                (* A mismatch with silent faults injected is the reliability
                   model's expected worst case; without any it is a plain
                   compiler bug, fault plan or not. *)
                if silent > 0 then
                  Silent_corruption { max_abs_diff; silent_faults = silent }
                else Mismatch { max_abs_diff }
              else
                let wall = report.Sim.Machine.totals.Sim.Counters.wall in
                if wall <= 0 then
                  Crash { stage = Executing; message = "no cycles counted" }
                else if
                  (* Chaos-only classifications: a campaign (even an empty
                     plan) must be requested for these; a plain run_case
                     keeps its historical pass verdict. *)
                  faults <> None && artifact.Htvm.Compile.demotions <> []
                then
                  Degraded
                    {
                      wall_cycles = wall;
                      demotions = List.length artifact.Htvm.Compile.demotions;
                    }
                else if injected > 0 then
                  Recovered
                    {
                      wall_cycles = wall;
                      retries =
                        (match stats with
                        | Some s -> s.Fault.Session.retries
                        | None -> 0);
                      detected =
                        (match stats with
                        | Some s -> s.Fault.Session.detected
                        | None -> 0);
                    }
                else Pass { wall_cycles = wall }))

let run_seed seed =
  run_case ~input_seed:seed (Gen.random_config seed) (Gen.generate seed)

let run_chaos_seed ?retry_budget seed =
  run_case ~input_seed:seed
    ~faults:(Gen.random_fault_plan seed)
    ?retry_budget (Gen.chaos_config seed) (Gen.generate seed)

let describe_config (cfg : Htvm.Compile.config) =
  let p = cfg.Htvm.Compile.platform in
  Printf.sprintf
    "platform=%s l1=%dB strategy=%s double_buffer=%b pe=%b dma=%b autotune=%s \
     jobs=%d cache=%b exhaustive=%b degraded=%s budget=%s"
    p.Arch.Platform.platform_name p.Arch.Platform.l1.Arch.Memory.size_bytes
    (match cfg.Htvm.Compile.memory_strategy with
    | Dory.Memplan.Reuse -> "reuse"
    | Dory.Memplan.No_reuse -> "no_reuse")
    cfg.Htvm.Compile.double_buffer cfg.Htvm.Compile.use_pe_heuristics
    cfg.Htvm.Compile.use_dma_heuristic
    (match cfg.Htvm.Compile.autotune_budget with
    | None -> "none"
    | Some b -> string_of_int b)
    cfg.Htvm.Compile.jobs
    (cfg.Htvm.Compile.solver_cache <> None)
    cfg.Htvm.Compile.exhaustive_tiling
    (match cfg.Htvm.Compile.degraded_targets with
    | [] -> "none"
    | ts -> String.concat "+" ts)
    (match cfg.Htvm.Compile.segment_budget_cycles with
    | None -> "none"
    | Some b -> string_of_int b)

let reproducer ?faults ~seed ~config ~graph ~verdict () =
  let fault_lines =
    match faults with
    | None -> []
    | Some plan -> [ Printf.sprintf "# faults: %s" (Fault.Plan.to_string plan) ]
  in
  let replay =
    match faults with
    | None -> Printf.sprintf "# replay: htvmc check --replay-seed %d" seed
    | Some _ -> Printf.sprintf "# replay: htvmc chaos --replay-seed %d" seed
  in
  String.concat "\n"
    ([
       "# htvm check reproducer";
       Printf.sprintf "# seed: %d" seed;
       Printf.sprintf "# verdict: %s" (describe verdict);
       Printf.sprintf "# class: %s" (class_of verdict);
       Printf.sprintf "# config: %s" (describe_config config);
     ]
    @ fault_lines
    @ [
        Printf.sprintf "# ops: %d" (Ir.Graph.app_count graph);
        replay;
        Ir.Text.to_string graph;
      ])
