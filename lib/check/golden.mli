(** Golden conformance snapshots.

    One snapshot per (zoo model × deployment configuration) records what
    the compiler produced last time anyone blessed the tree: an MD5
    digest of the inference output on a fixed input, end-to-end wall
    cycles, binary size and the L2 static/arena split. The snapshot
    suite ([test/golden/*.golden], checked by [test/test_golden.ml])
    turns any behavioural drift — a changed output bit, a cycle-count
    regression, a size change — into a test failure that names the
    field; intentional changes are re-recorded with
    [htvmc check --bless]. *)

type entry = {
  ge_model : string;
  ge_config : string;  (** ["cpu"], ["digital"], ["analog"] or ["both"] *)
  ge_output_digest : string;  (** MD5 hex of dtype + shape + elements *)
  ge_wall_cycles : int;
  ge_binary_bytes : int;
  ge_l2_static_bytes : int;
  ge_l2_arena_bytes : int;
}

val configurations : (string * Arch.Platform.t * Models.Policy.t) list
(** Table I's four columns: cpu / digital / analog / both, each with the
    weight-precision policy the paper deploys on it. *)

val cases : (string * string) list
(** All (model, config) pairs — the 4 zoo models × {!configurations}. *)

val filename : model:string -> config:string -> string
(** ["<model>.<config>.golden"]. *)

val input_seed : int
(** The fixed input binding seed every snapshot uses. *)

val digest_tensor : Tensor.t -> string
(** Canonical MD5 hex over dtype, shape and every element. *)

val compute : model:string -> config:string -> (entry, string) result
(** Build the model, compile it with the configuration's platform
    (stock {!Htvm.Compile.default_config} pinned to [jobs = 1], no
    cache), run it on the fixed input and measure. [Error] carries a
    rendered compile failure or an unknown model/config name. *)

val to_string : entry -> string
(** The [htvm-golden v1] file body (trailing newline included). *)

val of_string : string -> (entry, string) result

val load : dir:string -> model:string -> config:string -> (entry, string) result
(** Read and parse [dir/filename]. [Error] on a missing or malformed
    file (the message says how to bless). *)

val bless : dir:string -> entry -> unit
(** Write the snapshot file, creating [dir] if needed. *)

val diff : expected:entry -> actual:entry -> string list
(** Human-readable per-field mismatches; [[]] means the snapshot holds. *)
