(** Typed outcomes of one differential conformance case.

    A case is a (graph, deployment config) pair. The runner compiles it,
    executes the artifact on the simulated SoC and compares the output
    bit-for-bit against the reference interpreter. The verdict taxonomy
    replaces the substring matching the fuzz suite used to do on compile
    error messages: a {!Resource} rejection is a legitimate outcome on an
    undersized platform, everything else in the failure set is a compiler
    or simulator bug. *)

type stage =
  | Compiling  (** {!Htvm.Compile.compile} raised *)
  | Executing  (** {!Htvm.Compile.run} raised, or counted no cycles *)
  | Referencing  (** the interpreter itself raised — a generator bug *)

type t =
  | Pass of { wall_cycles : int }
      (** compiled, ran, bit-identical to the interpreter *)
  | Recovered of { wall_cycles : int; retries : int; detected : int }
      (** a fault campaign injected faults, every one was detected and
          retried, and the output is still bit-identical — the
          reliability model absorbed the chaos *)
  | Degraded of { wall_cycles : int; demotions : int }
      (** bit-identical output, but the compiler's fallback ladder
          demoted at least one segment off its first-choice target
          (chaos runs only: a campaign must be requested) *)
  | Resource of Htvm.Compile.error
      (** a typed resource diagnosis ({!Htvm.Compile.is_resource_error})
          — legitimate on shrunken L1/L2 *)
  | Reject of Htvm.Compile.error
      (** any other compile error on a valid graph: a compiler bug *)
  | Mismatch of { max_abs_diff : int }
      (** executed but differs from the interpreter, with no silent
          fault injected — a compiler/simulator bug even under chaos *)
  | Detected_uncorrected of { site : string; attempts : int }
      (** a detected fault outlived the retry budget and the run
          aborted: a failure for [htvmc chaos], whose stock campaigns
          are recoverable by construction *)
  | Silent_corruption of { max_abs_diff : int; silent_faults : int }
      (** silent faults were injected and the output differs — the
          worst case the resilience layer exists to keep out of stock
          campaigns *)
  | Crash of { stage : stage; message : string }

val is_failure : t -> bool
(** [true] for {!Reject}, {!Mismatch}, {!Detected_uncorrected},
    {!Silent_corruption} and {!Crash}; [false] for {!Pass},
    {!Recovered}, {!Degraded} and {!Resource}. *)

val class_of : t -> string
(** Stable machine-readable class label, e.g. ["pass"], ["resource"],
    ["reject:internal"], ["mismatch"], ["crash:executing"]. Used by the
    shrinker's failure predicate: two verdicts are "the same failure"
    when their classes agree. *)

val describe : t -> string
(** One-line human rendering. *)

val run_case :
  ?input_seed:int ->
  ?faults:Fault.Plan.t ->
  ?retry_budget:int ->
  Htvm.Compile.config ->
  Ir.Graph.t ->
  t
(** Run one case end to end. Never raises: exceptions at any stage
    become {!Crash} verdicts. [input_seed] (default 0) seeds the random
    input binding. When [faults] is given the execution runs as an
    injection campaign and the verdict may additionally be {!Recovered},
    {!Degraded}, {!Detected_uncorrected} or {!Silent_corruption};
    without it the historical taxonomy is unchanged (demotions and fault
    counters are ignored). *)

val run_seed : int -> t
(** [run_case (Gen.random_config seed) (Gen.generate seed)] with the
    seed also used for the input binding — the canonical fuzz case. *)

val run_chaos_seed : ?retry_budget:int -> int -> t
(** The canonical chaos case: {!Gen.chaos_config}, {!Gen.generate} and
    {!Gen.random_fault_plan} of the same seed. Stock campaigns are
    recoverable by construction, so any failure verdict here is a bug in
    the resilience machinery. *)

val describe_config : Htvm.Compile.config -> string
(** One-line rendering of the deployment knobs (platform, L1 bytes,
    planner strategy, buffering, heuristics, engine settings) for
    reproducer files and failure reports. *)

val reproducer :
  ?faults:Fault.Plan.t ->
  seed:int ->
  config:Htvm.Compile.config ->
  graph:Ir.Graph.t ->
  verdict:t ->
  unit ->
  string
(** The minimized-reproducer file: [#]-comment header (seed, verdict,
    config, replay command) followed by the graph in {!Ir.Text} form.
    The result is itself a loadable [.htvm] file. When [faults] is given
    the header embeds the fault plan ([# faults: <spec>], parseable by
    {!Fault.Plan.of_string}) and the replay command becomes
    [htvmc chaos --replay-seed N], so chaos failures reproduce
    byte-for-byte from the file alone. *)
