(** Typed outcomes of one differential conformance case.

    A case is a (graph, deployment config) pair. The runner compiles it,
    executes the artifact on the simulated SoC and compares the output
    bit-for-bit against the reference interpreter. The verdict taxonomy
    replaces the substring matching the fuzz suite used to do on compile
    error messages: a {!Resource} rejection is a legitimate outcome on an
    undersized platform, everything else in the failure set is a compiler
    or simulator bug. *)

type stage =
  | Compiling  (** {!Htvm.Compile.compile} raised *)
  | Executing  (** {!Htvm.Compile.run} raised, or counted no cycles *)
  | Referencing  (** the interpreter itself raised — a generator bug *)

type t =
  | Pass of { wall_cycles : int }
      (** compiled, ran, bit-identical to the interpreter *)
  | Resource of Htvm.Compile.error
      (** a typed resource diagnosis ({!Htvm.Compile.is_resource_error})
          — legitimate on shrunken L1/L2 *)
  | Reject of Htvm.Compile.error
      (** any other compile error on a valid graph: a compiler bug *)
  | Mismatch of { max_abs_diff : int }
      (** executed but differs from the interpreter *)
  | Crash of { stage : stage; message : string }

val is_failure : t -> bool
(** [true] for {!Reject}, {!Mismatch} and {!Crash}; [false] for {!Pass}
    and {!Resource}. *)

val class_of : t -> string
(** Stable machine-readable class label, e.g. ["pass"], ["resource"],
    ["reject:internal"], ["mismatch"], ["crash:executing"]. Used by the
    shrinker's failure predicate: two verdicts are "the same failure"
    when their classes agree. *)

val describe : t -> string
(** One-line human rendering. *)

val run_case : ?input_seed:int -> Htvm.Compile.config -> Ir.Graph.t -> t
(** Run one case end to end. Never raises: exceptions at any stage
    become {!Crash} verdicts. [input_seed] (default 0) seeds the random
    input binding. *)

val run_seed : int -> t
(** [run_case (Gen.random_config seed) (Gen.generate seed)] with the
    seed also used for the input binding — the canonical fuzz case. *)

val describe_config : Htvm.Compile.config -> string
(** One-line rendering of the deployment knobs (platform, L1 bytes,
    planner strategy, buffering, heuristics, engine settings) for
    reproducer files and failure reports. *)

val reproducer :
  seed:int -> config:Htvm.Compile.config -> graph:Ir.Graph.t -> verdict:t -> string
(** The minimized-reproducer file: [#]-comment header (seed, verdict,
    config, replay command) followed by the graph in {!Ir.Text} form.
    The result is itself a loadable [.htvm] file. *)
