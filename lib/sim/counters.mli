(** Performance counters.

    Mirrors the paper's measurement methodology (Sec. IV): "peak" is the
    accelerator busy time including the weight transfer orchestrated by
    the layer instruction; the "full kernel call" additionally includes
    activation DMA, per-tile host overhead and the runtime's per-call
    setup. CPU kernels accumulate separately. *)

type t = {
  mutable accel_compute : int;   (** array busy cycles *)
  mutable weight_load : int;     (** weight-memory fill cycles *)
  mutable dma_in : int;
  mutable dma_out : int;
  mutable host_overhead : int;   (** runtime setup + tile-loop bookkeeping *)
  mutable cpu_compute : int;     (** host-executed kernel cycles *)
  mutable stall : int;
      (** wall cycles where no engine was busy: exposed (non-overlapped)
          DMA time and pipeline bubbles *)
  mutable dma_bytes_in : int;    (** activation bytes moved L2 -> L1 *)
  mutable dma_bytes_out : int;   (** activation bytes moved L1 -> L2 *)
  mutable faults_detected : int;
      (** injected faults the modeled runtime caught (payload checksum
          mismatch or compute watchdog) and handled by retrying *)
  mutable faults_silent : int;
      (** injected corruptions nothing in the runtime can observe *)
  mutable retries : int;         (** operations re-issued after detection *)
  mutable retry_cycles : int;
      (** cycles spent on re-issues: back-off plus the repeated
          operation's modeled cost. Base counters ([dma_in],
          [accel_compute], ...) keep their fault-free values, so
          [wall = fault_free_wall + retry_cycles + fault_stall]. *)
  mutable fault_stall : int;     (** cycles injected by [Stall] fault kinds *)
  mutable wall : int;
      (** end-to-end cycles; with double buffering this is less than the
          sum of the parts because DMA hides behind compute *)
}

val create : unit -> t
val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] (all fields, including wall). *)

val fields : t -> (string * int) list
(** Every counter as a (name, value) pair, in declaration order — the
    canonical enumeration metrics exporters iterate so a new counter
    field shows up everywhere by updating one list. *)

val peak : t -> int
(** Accelerator busy cycles: compute + weight load. *)

val total_parts : t -> int
(** Sum of all component counters, including fault retry/stall cycles
    (an upper bound on [wall]). *)

val utilization : t -> float
(** Busy fraction of wall time: (accelerator busy + CPU compute) / wall,
    0 when no cycles were counted. *)

val pp : Format.formatter -> t -> unit
