(** Compiled execution plans: the simulator's per-request fast path.

    [build] resolves, once per artifact, everything {!Exec_accel} recomputes
    per request — tile instance dims, L1 slot layouts, DMA window geometry
    (flattened to coalesced blit lists), weight/bias slice extents (decoded
    to flat arrays straight from the L2 weight image), padded-input shapes,
    per-step counters and the trace timeline — so that the per-request loop
    is pure data movement and kernel math over preallocated scratch.

    Scratch lives in a per-domain {e arena} (keyed off the plan with
    [Domain.DLS]): reused L2/L1 memories plus per-tile padded-input,
    accumulator and output buffers, reset between requests instead of
    reallocated. A plan is therefore safe to share across domains.

    Byte-identity contract: for a {e fault-free} run of a well-formed
    program, the fast path produces exactly the slow path's output bytes,
    per-step cycle counters, trace events and memory high-water marks. The
    slow path remains the conformance oracle ([htvmc check], the golden
    snapshots and the plan differential tests enforce the contract). Plans
    must not be used under fault injection: faults mutate memory and
    timing per request, which is exactly what a plan precomputes away —
    {!Machine.run} falls back to the slow path when a fault session is
    active. *)

type t

type stats = {
  accel_steps : int;  (** accelerator steps covered by the plan *)
  tiles : int;  (** precomputed tile instances across all steps *)
  scratch_words : int;  (** per-arena scratch footprint, in [int] words *)
  image_bytes : int;  (** size of the captured L2 weight image *)
}

val build : platform:Arch.Platform.t -> Program.t -> t
(** Resolve the program against the platform. Performs the slow path's
    per-run validation eagerly; malformed steps are recorded and re-raised
    with the slow path's exception when the step is executed.
    @raise Invalid_argument when the program fails {!Program.validate}.
    @raise Mem.Fault when a weight or bias image lies outside L2. *)

val program : t -> Program.t
(** The program this plan was built for ({!Machine.run} enforces physical
    equality). *)

val stats : t -> stats

val checkout : ?fresh:bool -> t -> Mem.t * Mem.t
(** [(l2, l1)] of the calling domain's arena, rewound to the exact state a
    fresh {!Machine.run} would build: L2 holding the weight images with its
    post-load high-water mark, L1 poisoned with [0x5A]. The first call in a
    domain allocates the arena; [~fresh:true] discards any cached arena and
    allocates anew (benchmarks use it to measure the no-reuse path). *)

val run_accel_step :
  t ->
  step_index:int ->
  l2:Mem.t ->
  l1:Mem.t ->
  ?trace:Trace.t ->
  t0:int ->
  unit ->
  Counters.t
(** Execute the accelerator step at [step_index] of the plan's program: re-
    play the precomputed DMA blits, run the flat kernels over the domain
    arena's scratch, encode the result, replay the recorded trace timeline
    shifted to cycle [t0], and return a fresh copy of the step's counters.
    @raise Invalid_argument when the step is a CPU step.
    @raise Mem.Fault / [Invalid_argument] with the slow path's exception
    when the step was recorded as malformed at build time. *)
