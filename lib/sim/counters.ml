type t = {
  mutable accel_compute : int;
  mutable weight_load : int;
  mutable dma_in : int;
  mutable dma_out : int;
  mutable host_overhead : int;
  mutable cpu_compute : int;
  mutable stall : int;
  mutable dma_bytes_in : int;
  mutable dma_bytes_out : int;
  mutable faults_detected : int;
  mutable faults_silent : int;
  mutable retries : int;
  mutable retry_cycles : int;
  mutable fault_stall : int;
  mutable wall : int;
}

let create () =
  {
    accel_compute = 0;
    weight_load = 0;
    dma_in = 0;
    dma_out = 0;
    host_overhead = 0;
    cpu_compute = 0;
    stall = 0;
    dma_bytes_in = 0;
    dma_bytes_out = 0;
    faults_detected = 0;
    faults_silent = 0;
    retries = 0;
    retry_cycles = 0;
    fault_stall = 0;
    wall = 0;
  }

let add acc x =
  acc.accel_compute <- acc.accel_compute + x.accel_compute;
  acc.weight_load <- acc.weight_load + x.weight_load;
  acc.dma_in <- acc.dma_in + x.dma_in;
  acc.dma_out <- acc.dma_out + x.dma_out;
  acc.host_overhead <- acc.host_overhead + x.host_overhead;
  acc.cpu_compute <- acc.cpu_compute + x.cpu_compute;
  acc.stall <- acc.stall + x.stall;
  acc.dma_bytes_in <- acc.dma_bytes_in + x.dma_bytes_in;
  acc.dma_bytes_out <- acc.dma_bytes_out + x.dma_bytes_out;
  acc.faults_detected <- acc.faults_detected + x.faults_detected;
  acc.faults_silent <- acc.faults_silent + x.faults_silent;
  acc.retries <- acc.retries + x.retries;
  acc.retry_cycles <- acc.retry_cycles + x.retry_cycles;
  acc.fault_stall <- acc.fault_stall + x.fault_stall;
  acc.wall <- acc.wall + x.wall

(* Canonical field enumeration for exporters (metrics, tables): keep in
   sync with the record — the order here is the exposition order. *)
let fields t =
  [
    ("accel_compute", t.accel_compute);
    ("weight_load", t.weight_load);
    ("dma_in", t.dma_in);
    ("dma_out", t.dma_out);
    ("host_overhead", t.host_overhead);
    ("cpu_compute", t.cpu_compute);
    ("stall", t.stall);
    ("dma_bytes_in", t.dma_bytes_in);
    ("dma_bytes_out", t.dma_bytes_out);
    ("faults_detected", t.faults_detected);
    ("faults_silent", t.faults_silent);
    ("retries", t.retries);
    ("retry_cycles", t.retry_cycles);
    ("fault_stall", t.fault_stall);
    ("wall", t.wall);
  ]

let peak t = t.accel_compute + t.weight_load

let total_parts t =
  t.accel_compute + t.weight_load + t.dma_in + t.dma_out + t.host_overhead
  + t.cpu_compute + t.retry_cycles + t.fault_stall

let utilization t =
  if t.wall <= 0 then 0.0
  else float_of_int (peak t + t.cpu_compute) /. float_of_int t.wall

let pp fmt t =
  Format.fprintf fmt
    "wall=%d (accel=%d wload=%d dma=%d+%d host=%d cpu=%d)" t.wall t.accel_compute
    t.weight_load t.dma_in t.dma_out t.host_overhead t.cpu_compute;
  if t.faults_detected > 0 || t.faults_silent > 0 || t.retries > 0 || t.fault_stall > 0
  then
    Format.fprintf fmt " faults(detected=%d silent=%d retries=%d retry_cycles=%d stall=%d)"
      t.faults_detected t.faults_silent t.retries t.retry_cycles t.fault_stall
