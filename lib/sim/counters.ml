type t = {
  mutable accel_compute : int;
  mutable weight_load : int;
  mutable dma_in : int;
  mutable dma_out : int;
  mutable host_overhead : int;
  mutable cpu_compute : int;
  mutable stall : int;
  mutable dma_bytes_in : int;
  mutable dma_bytes_out : int;
  mutable wall : int;
}

let create () =
  {
    accel_compute = 0;
    weight_load = 0;
    dma_in = 0;
    dma_out = 0;
    host_overhead = 0;
    cpu_compute = 0;
    stall = 0;
    dma_bytes_in = 0;
    dma_bytes_out = 0;
    wall = 0;
  }

let add acc x =
  acc.accel_compute <- acc.accel_compute + x.accel_compute;
  acc.weight_load <- acc.weight_load + x.weight_load;
  acc.dma_in <- acc.dma_in + x.dma_in;
  acc.dma_out <- acc.dma_out + x.dma_out;
  acc.host_overhead <- acc.host_overhead + x.host_overhead;
  acc.cpu_compute <- acc.cpu_compute + x.cpu_compute;
  acc.stall <- acc.stall + x.stall;
  acc.dma_bytes_in <- acc.dma_bytes_in + x.dma_bytes_in;
  acc.dma_bytes_out <- acc.dma_bytes_out + x.dma_bytes_out;
  acc.wall <- acc.wall + x.wall

let peak t = t.accel_compute + t.weight_load

let total_parts t =
  t.accel_compute + t.weight_load + t.dma_in + t.dma_out + t.host_overhead
  + t.cpu_compute

let utilization t =
  if t.wall <= 0 then 0.0
  else float_of_int (peak t + t.cpu_compute) /. float_of_int t.wall

let pp fmt t =
  Format.fprintf fmt
    "wall=%d (accel=%d wload=%d dma=%d+%d host=%d cpu=%d)" t.wall t.accel_compute
    t.weight_load t.dma_in t.dma_out t.host_overhead t.cpu_compute
