(* Shared fault-consultation logic for the executors (see resilience.mli).

   Design invariant: detected faults never mutate simulated memory. The
   modeled runtime checksums DMA/weight payloads and only commits them
   once verified (and a watchdog-killed compute is simply re-run), so the
   functional execution already performed by the caller stands for the
   final successful attempt; a detected fault costs cycles, nothing else.
   Only silent faults corrupt state, through the [corrupt] callback. *)

module Plan = Fault.Plan
module Session = Fault.Session

type t = {
  fs : Session.t option;
  budget : int;
  counters : Counters.t;
  events : (string * int) list ref; (* reverse chronological *)
}

let make ?faults ~retry_budget counters =
  let fs =
    match faults with Some fs when Session.active fs -> Some fs | _ -> None
  in
  { fs; budget = retry_budget; counters; events = ref [] }

let events t = List.rev !(t.events)
let note t name cycles = t.events := (name, cycles) :: !(t.events)

let guard t ~site ~cycles ?(corrupt = fun _ _ -> ()) ~flip_detected () =
  match t.fs with
  | None -> ()
  | Some fs ->
      let label = Plan.site_label site in
      let rec attempt n =
        let kinds = Session.draw fs site in
        let detected = ref false in
        List.iter
          (fun k ->
            match (k : Plan.kind) with
            | Plan.Stall cyc ->
                Session.note_stall fs ~cycles:cyc;
                t.counters.Counters.fault_stall <-
                  t.counters.Counters.fault_stall + cyc;
                note t ("stall:" ^ label) cyc
            | Plan.Drop -> detected := true
            | Plan.Flip bits ->
                if flip_detected then detected := true
                else begin
                  corrupt fs bits;
                  Session.note_silent fs;
                  t.counters.Counters.faults_silent <-
                    t.counters.Counters.faults_silent + 1;
                  note t ("fault:" ^ label ^ " silent flip") 0
                end)
          kinds;
        if !detected then begin
          Session.note_detected fs;
          t.counters.Counters.faults_detected <-
            t.counters.Counters.faults_detected + 1;
          if n > t.budget then
            raise (Session.Unrecovered { site = label; attempts = n });
          let cost = Session.backoff n + cycles in
          Session.note_retry fs ~cycles:cost;
          t.counters.Counters.retries <- t.counters.Counters.retries + 1;
          t.counters.Counters.retry_cycles <-
            t.counters.Counters.retry_cycles + cost;
          note t ("retry:" ^ label) cost;
          attempt (n + 1)
        end
      in
      attempt 1

let mem_rot t ~site ~mem =
  match t.fs with
  | None -> ()
  | Some fs ->
      let label = Plan.site_label site in
      List.iter
        (fun k ->
          match (k : Plan.kind) with
          | Plan.Stall cyc ->
              Session.note_stall fs ~cycles:cyc;
              t.counters.Counters.fault_stall <-
                t.counters.Counters.fault_stall + cyc;
              note t ("stall:" ^ label) cyc
          | Plan.Drop -> () (* meaningless on a memory site *)
          | Plan.Flip bits ->
              let hwm = Mem.high_water mem in
              if hwm > 0 then begin
                for _ = 1 to max 1 bits do
                  Mem.flip_bit mem ~off:(Session.rand_int fs hwm)
                    ~bit:(Session.rand_int fs 8)
                done;
                Session.note_silent fs;
                t.counters.Counters.faults_silent <-
                  t.counters.Counters.faults_silent + 1;
                note t ("fault:" ^ label ^ " bit rot") 0
              end)
        (Session.draw fs site)

let emit_events t trace ~ts =
  if Trace.enabled trace then begin
    let cur = ref ts in
    List.iter
      (fun (name, cycles) ->
        Trace.interval trace ~track:"fault" ~ts:!cur ~dur:cycles name;
        cur := !cur + cycles)
      (events t)
  end

let flip_in_mem fs mem ~base ~bytes bits =
  if bytes > 0 then
    for _ = 1 to max 1 bits do
      Mem.flip_bit mem
        ~off:(base + Session.rand_int fs bytes)
        ~bit:(Session.rand_int fs 8)
    done
