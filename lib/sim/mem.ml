type t = { mem_name : string; data : Bytes.t; mutable hwm : int }

exception Fault of string

let create mem_name size =
  if size <= 0 then invalid_arg "Mem.create: size must be positive";
  { mem_name; data = Bytes.make size '\000'; hwm = 0 }

let name t = t.mem_name
let size t = Bytes.length t.data
let high_water t = t.hwm
let reset_high_water t = t.hwm <- 0

(* Writes (not [fill]'s poison pattern) advance the occupancy high-water
   mark: the trace's memory timeline samples it per step. *)
let touch t off len = if off + len > t.hwm then t.hwm <- off + len

let check t off len =
  if off < 0 || off + len > Bytes.length t.data then
    raise
      (Fault
         (Printf.sprintf "%s: access of %d byte(s) at offset %d outside [0, %d)"
            t.mem_name len off (Bytes.length t.data)))

let read_byte t off =
  check t off 1;
  Char.code (Bytes.get t.data off)

let write_byte t off v =
  check t off 1;
  touch t off 1;
  Bytes.set t.data off (Char.chr (v land 0xFF))

let sign_extend bits v =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let read_elt t (dt : Tensor.Dtype.t) off =
  match dt with
  | Tensor.Dtype.I8 -> sign_extend 8 (read_byte t off)
  | Tensor.Dtype.Ternary ->
      (* Ternary occupies a full byte but only {-1,0,1} is valid, so bit
         rot ([flip_bit]) can leave a byte no fault-free flow ever stores.
         Fold it back into range deterministically: silent corruption must
         stay silent, not crash tensor validation on the read path. *)
      let v = sign_extend 8 (read_byte t off) in
      if v >= -1 && v <= 1 then v else (((v mod 3) + 3) mod 3) - 1
  | Tensor.Dtype.U7 -> read_byte t off land 0x7F
  | Tensor.Dtype.I16 ->
      check t off 2;
      sign_extend 16 (read_byte t off lor (read_byte t (off + 1) lsl 8))
  | Tensor.Dtype.I32 ->
      check t off 4;
      sign_extend 32
        (read_byte t off
        lor (read_byte t (off + 1) lsl 8)
        lor (read_byte t (off + 2) lsl 16)
        lor (read_byte t (off + 3) lsl 24))

let write_elt t (dt : Tensor.Dtype.t) off v =
  if not (Tensor.Dtype.in_range dt v) then
    raise
      (Fault
         (Printf.sprintf "%s: value %d out of range for %s at offset %d" t.mem_name v
            (Tensor.Dtype.to_string dt) off));
  match dt with
  | Tensor.Dtype.I8 | Tensor.Dtype.Ternary | Tensor.Dtype.U7 -> write_byte t off v
  | Tensor.Dtype.I16 ->
      check t off 2;
      write_byte t off v;
      write_byte t (off + 1) (v asr 8)
  | Tensor.Dtype.I32 ->
      check t off 4;
      write_byte t off v;
      write_byte t (off + 1) (v asr 8);
      write_byte t (off + 2) (v asr 16);
      write_byte t (off + 3) (v asr 24)

let blit ~src ~src_off ~dst ~dst_off ~len =
  check src src_off len;
  check dst dst_off len;
  touch dst dst_off len;
  Bytes.blit src.data src_off dst.data dst_off len

let write_tensor t off tensor =
  let dt = Tensor.dtype tensor in
  let w = Tensor.Dtype.sim_bytes dt in
  check t off (Tensor.numel tensor * w);
  Tensor.iteri_flat (fun i v -> write_elt t dt (off + (i * w)) v) tensor

let read_tensor t off dt shape =
  let w = Tensor.Dtype.sim_bytes dt in
  let n = Array.fold_left ( * ) 1 shape in
  check t off (n * w);
  let out = Tensor.create dt shape in
  for i = 0 to n - 1 do
    Tensor.set_flat out i (read_elt t dt (off + (i * w)))
  done;
  out

(* Bulk flat-array codecs for the execution-plan fast path. Semantics are
   element-for-element those of [read_elt]/[write_elt] (same sign
   extension, same ternary rot fold, same range Fault on writes), but the
   bounds check happens once per call and bytes are accessed unsafely, so
   a whole padded window or output slab moves in one tight loop. *)

let read_flat_into t (dt : Tensor.Dtype.t) off dst ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length dst then
    invalid_arg "Mem.read_flat_into: destination range out of bounds";
  let w = Tensor.Dtype.sim_bytes dt in
  check t off (len * w);
  let data = t.data in
  (match dt with
  | Tensor.Dtype.I8 ->
      for i = 0 to len - 1 do
        Array.unsafe_set dst (pos + i)
          (sign_extend 8 (Char.code (Bytes.unsafe_get data (off + i))))
      done
  | Tensor.Dtype.Ternary ->
      for i = 0 to len - 1 do
        let v = sign_extend 8 (Char.code (Bytes.unsafe_get data (off + i))) in
        let v = if v >= -1 && v <= 1 then v else (((v mod 3) + 3) mod 3) - 1 in
        Array.unsafe_set dst (pos + i) v
      done
  | Tensor.Dtype.U7 ->
      for i = 0 to len - 1 do
        Array.unsafe_set dst (pos + i) (Char.code (Bytes.unsafe_get data (off + i)) land 0x7F)
      done
  | Tensor.Dtype.I16 ->
      for i = 0 to len - 1 do
        let o = off + (i * 2) in
        Array.unsafe_set dst (pos + i)
          (sign_extend 16
             (Char.code (Bytes.unsafe_get data o)
             lor (Char.code (Bytes.unsafe_get data (o + 1)) lsl 8)))
      done
  | Tensor.Dtype.I32 ->
      for i = 0 to len - 1 do
        let o = off + (i * 4) in
        Array.unsafe_set dst (pos + i)
          (sign_extend 32
             (Char.code (Bytes.unsafe_get data o)
             lor (Char.code (Bytes.unsafe_get data (o + 1)) lsl 8)
             lor (Char.code (Bytes.unsafe_get data (o + 2)) lsl 16)
             lor (Char.code (Bytes.unsafe_get data (o + 3)) lsl 24)))
      done)

let write_flat_from t (dt : Tensor.Dtype.t) off src ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Array.length src then
    invalid_arg "Mem.write_flat_from: source range out of bounds";
  let w = Tensor.Dtype.sim_bytes dt in
  check t off (len * w);
  let data = t.data in
  let range_fault v i =
    raise
      (Fault
         (Printf.sprintf "%s: value %d out of range for %s at offset %d" t.mem_name v
            (Tensor.Dtype.to_string dt)
            (off + (i * w))))
  in
  (match dt with
  | Tensor.Dtype.I8 | Tensor.Dtype.Ternary | Tensor.Dtype.U7 ->
      for i = 0 to len - 1 do
        let v = Array.unsafe_get src (pos + i) in
        if not (Tensor.Dtype.in_range dt v) then range_fault v i;
        Bytes.unsafe_set data (off + i) (Char.unsafe_chr (v land 0xFF))
      done
  | Tensor.Dtype.I16 ->
      for i = 0 to len - 1 do
        let v = Array.unsafe_get src (pos + i) in
        if not (Tensor.Dtype.in_range dt v) then range_fault v i;
        let o = off + (i * 2) in
        Bytes.unsafe_set data o (Char.unsafe_chr (v land 0xFF));
        Bytes.unsafe_set data (o + 1) (Char.unsafe_chr ((v asr 8) land 0xFF))
      done
  | Tensor.Dtype.I32 ->
      for i = 0 to len - 1 do
        let v = Array.unsafe_get src (pos + i) in
        if not (Tensor.Dtype.in_range dt v) then range_fault v i;
        let o = off + (i * 4) in
        Bytes.unsafe_set data o (Char.unsafe_chr (v land 0xFF));
        Bytes.unsafe_set data (o + 1) (Char.unsafe_chr ((v asr 8) land 0xFF));
        Bytes.unsafe_set data (o + 2) (Char.unsafe_chr ((v asr 16) land 0xFF));
        Bytes.unsafe_set data (o + 3) (Char.unsafe_chr ((v asr 24) land 0xFF))
      done);
  touch t off (len * w)

let fill t v = Bytes.fill t.data 0 (Bytes.length t.data) (Char.chr (v land 0xFF))

(* Arena snapshot/restore: the execution plan captures the post-load L2
   image once at build time and rewinds the reused memory to it between
   requests, instead of re-serializing every weight tensor. *)
let image t = Bytes.copy t.data

let restore t img ~hwm =
  if Bytes.length img <> Bytes.length t.data then
    invalid_arg "Mem.restore: image size mismatch";
  Bytes.blit img 0 t.data 0 (Bytes.length img);
  t.hwm <- hwm

(* Fault injection's corruption primitive: toggles one bit without moving
   the high-water mark, so an injected flip is indistinguishable from bit
   rot in already-occupied storage. *)
let flip_bit t ~off ~bit =
  check t off 1;
  Bytes.set t.data off
    (Char.chr (Char.code (Bytes.get t.data off) lxor (1 lsl (bit land 7))))
