(** The executors' fault-consultation layer.

    Wraps a {!Fault.Session} with the reliability model the simulator
    implements (DESIGN.md "Fault model"): DMA and weight-load payloads
    are checksummed and compute runs under a watchdog, so [Drop]
    everywhere and [Flip] on transfer sites are {e detected} — the
    operation is re-issued with exponential back-off, each attempt
    charging [Session.backoff n + cycles] to [retry_cycles], until the
    retry budget is exhausted and {!Fault.Session.Unrecovered} aborts
    the run. [Flip] on compute and memory sites is {e silent}: the
    [corrupt] callback (or {!mem_rot}'s bit flips) really corrupts the
    simulated bytes and only [faults_silent] records it.

    Detected faults never mutate memory: payloads commit only once
    verified, so the caller's functional execution stands for the final
    successful attempt. Base counters keep fault-free values; callers
    add [retry_cycles + fault_stall] to their modeled wall. An inactive
    session (or [?faults:None]) makes every call here a strict no-op. *)

type t

val make : ?faults:Fault.Session.t -> retry_budget:int -> Counters.t -> t
(** A per-invocation context accounting into the given counters. *)

val guard :
  t ->
  site:Fault.Plan.site ->
  cycles:int ->
  ?corrupt:(Fault.Session.t -> int -> unit) ->
  flip_detected:bool ->
  unit ->
  unit
(** Consult the plan for one operation of modeled cost [cycles].
    [flip_detected] says whether [Flip] is caught by a payload checksum
    (DMA, weight load) or silently corrupts ([corrupt session bits] is
    then invoked — default does nothing).
    @raise Fault.Session.Unrecovered past the retry budget. *)

val mem_rot : t -> site:Fault.Plan.site -> mem:Mem.t -> unit
(** One L1/L2 bit-rot occurrence: [Flip] toggles random bits inside the
    occupied region [\[0, high_water)] (silent), [Stall] injects cycles,
    [Drop] is meaningless on a memory site and ignored. *)

val events : t -> (string * int) list
(** Chronological [(name, cycles)] log of injected effects — empty when
    nothing fired. *)

val emit_events : t -> Trace.t option -> ts:int -> unit
(** Record {!events} as back-to-back intervals on the ["fault"] track
    starting at [ts]. Emits nothing when tracing is off or no fault
    fired, preserving the empty-plan trace-identity guarantee. *)

val flip_in_mem :
  Fault.Session.t -> Mem.t -> base:int -> bytes:int -> int -> unit
(** [flip_in_mem fs mem ~base ~bytes n] toggles [max 1 n] random bits
    inside [\[base, base+bytes)] — the building block for [corrupt]
    callbacks. No-op when [bytes <= 0]. *)
