(** The SoC machine: runs a {!Program.t} on a platform.

    Instantiates byte-level L1/L2 memories, preloads weight images, binds
    the network inputs, executes every step (accelerator schedules through
    {!Exec_accel}, fused CPU kernels through the reference interpreter
    with modeled cycles), and reads the output buffer back. The returned
    report carries per-step and aggregate counters for the latency tables. *)

type report = {
  per_step : (string * Counters.t) list;  (** in execution order *)
  totals : Counters.t;
}

val accel_steps_peak : report -> int
(** Sum of accelerator busy cycles (compute + weight load) over all
    offloaded steps — the paper's "peak" number. *)

val run :
  platform:Arch.Platform.t ->
  ?trace:Trace.t ->
  ?faults:Fault.Session.t ->
  ?retry_budget:int ->
  Program.t ->
  inputs:(string * Tensor.t) list ->
  Tensor.t * report
(** Execute the program on fresh memories. When [trace] is given, each
    step contributes one interval on the ["steps"] track (whose summed
    durations equal [totals.wall]), per-tile engine/DMA intervals via
    {!Exec_accel}, and L1/L2 occupancy high-water samples on the ["mem"]
    track. Tracing never changes the computation: outputs and counters
    are bit-identical with and without it.

    When [faults] is given, the run becomes an injection campaign: every
    DMA transfer, weight load and tile compute consults the plan (see
    {!Resilience}), and once per step each memory may suffer bit rot in
    its occupied region. A session backed by {!Fault.Plan.empty} — or
    omitting [faults] — is a strict no-op: identical outputs, counters
    and trace events. [retry_budget] (default 3) bounds re-issues per
    operation.
    @raise Fault.Session.Unrecovered when a detected fault exhausts the
    retry budget (the modeled runtime aborts rather than return corrupt
    data). @raise Invalid_argument on missing/mistyped inputs or a
    malformed program. @raise Mem.Fault on memory corruption (a compiler
    bug). *)
