(** The SoC machine: runs a {!Program.t} on a platform.

    Instantiates byte-level L1/L2 memories, preloads weight images, binds
    the network inputs, executes every step (accelerator schedules through
    {!Exec_accel}, fused CPU kernels through the reference interpreter
    with modeled cycles), and reads the output buffer back. The returned
    report carries per-step and aggregate counters for the latency tables. *)

type report = {
  per_step : (string * Counters.t) list;  (** in execution order *)
  totals : Counters.t;
}

val accel_steps_peak : report -> int
(** Sum of accelerator busy cycles (compute + weight load) over all
    offloaded steps — the paper's "peak" number. *)

val run :
  platform:Arch.Platform.t ->
  ?trace:Trace.t ->
  ?faults:Fault.Session.t ->
  ?retry_budget:int ->
  ?plan:Plan.t ->
  ?plan_fresh_arena:bool ->
  Program.t ->
  inputs:(string * Tensor.t) list ->
  Tensor.t * report
(** Execute the program on fresh memories — or, when [plan] is given (it
    must have been built for this very program, physical equality) and no
    fault session is active, on the calling domain's reused plan arena via
    the compiled fast path, with byte-identical outputs, counters, traces
    and high-water marks. A [plan] passed alongside [faults] is ignored:
    fault injection always runs the slow oracle path.
    [plan_fresh_arena] (default false) discards the domain's cached arena
    first — benchmarks use it to measure the no-reuse path.

    When [trace] is given, each
    step contributes one interval on the ["steps"] track (whose summed
    durations equal [totals.wall]), per-tile engine/DMA intervals via
    {!Exec_accel}, and L1/L2 occupancy high-water samples on the ["mem"]
    track. Tracing never changes the computation: outputs and counters
    are bit-identical with and without it.

    When [faults] is given, the run becomes an injection campaign: every
    DMA transfer, weight load and tile compute consults the plan (see
    {!Resilience}), and once per step each memory may suffer bit rot in
    its occupied region. A session backed by {!Fault.Plan.empty} — or
    omitting [faults] — is a strict no-op: identical outputs, counters
    and trace events. [retry_budget] (default 3) bounds re-issues per
    operation.
    @raise Fault.Session.Unrecovered when a detected fault exhausts the
    retry budget (the modeled runtime aborts rather than return corrupt
    data). @raise Invalid_argument on missing/mistyped inputs or a
    malformed program. @raise Mem.Fault on memory corruption (a compiler
    bug). *)
