module L = Ir.Layer
module Tile = Arch.Tile
module S = Dory.Schedule
module Dtype = Tensor.Dtype

type buffers = {
  in_offsets : int list;
  out_offset : int;
  weights_offset : int;
  bias_offset : int;
}

let l1_bytes_required (s : S.t) =
  let l = s.S.layer in
  let per = Tile.bytes_in l s.S.nominal + Tile.bytes_out l s.S.nominal in
  if s.S.double_buffer && S.is_tiled s then 2 * per else per

(* --- L1 scratch layout -------------------------------------------------- *)

type l1_layout = { in_size : int; out_size : int; slots : int }

let layout_of (s : S.t) =
  let l = s.S.layer in
  {
    in_size = Tile.bytes_in l s.S.nominal;
    out_size = Tile.bytes_out l s.S.nominal;
    slots = (if s.S.double_buffer && S.is_tiled s then 2 else 1);
  }

let in_base layout slot = (slot mod layout.slots) * layout.in_size
let out_base layout slot =
  (layout.slots * layout.in_size) + ((slot mod layout.slots) * layout.out_size)

(* --- DMA of 3-D slices --------------------------------------------------- *)

(* Copy a [chans x rows x cols] window at (ch0, y0, x0) of a CHW tensor of
   dims (full_c, full_h, full_w) living at [l2_off], into a dense block at
   [l1_off]. Returns (chunks, bytes) for the cost model. Direction picks
   source and destination. *)
let copy_window ~l2 ~l1 ~to_l1 ~elt_bytes ~l2_off ~l1_off ~full_h ~full_w ~ch0 ~y0 ~x0
    ~chans ~rows ~cols =
  let bytes_per_row = cols * elt_bytes in
  for ch = 0 to chans - 1 do
    for row = 0 to rows - 1 do
      let l2_pos =
        l2_off + (((((ch0 + ch) * full_h) + (y0 + row)) * full_w + x0) * elt_bytes)
      in
      let l1_pos = l1_off + (((ch * rows) + row) * bytes_per_row) in
      if to_l1 then Mem.blit ~src:l2 ~src_off:l2_pos ~dst:l1 ~dst_off:l1_pos ~len:bytes_per_row
      else Mem.blit ~src:l1 ~src_off:l1_pos ~dst:l2 ~dst_off:l2_pos ~len:bytes_per_row
    done
  done;
  let chunks = if cols = full_w then chans else chans * rows in
  (chunks, chans * rows * bytes_per_row)

(* --- Tile computation ---------------------------------------------------- *)

(* Decode the dense L1 input block into a zero-padded tensor. *)
let padded_input ~l1 ~l1_off ~dtype ~chans ~rows ~cols ~pt ~pl ~pb ~pr =
  let h = pt + rows + pb and w = pl + cols + pr in
  let t = Tensor.create dtype [| chans; h; w |] in
  let elt_bytes = Dtype.sim_bytes dtype in
  for ch = 0 to chans - 1 do
    for row = 0 to rows - 1 do
      for col = 0 to cols - 1 do
        let v = Mem.read_elt l1 dtype (l1_off + ((((ch * rows) + row) * cols + col) * elt_bytes)) in
        Tensor.set t [| ch; pt + row; pl + col |] v
      done
    done
  done;
  t

let weight_slice ~l2 ~(l : L.t) ~weights_offset ~k0 ~kd =
  match l.L.weights with
  | None -> None
  | Some w ->
      let dt = Tensor.dtype w in
      let per_k =
        Tensor.numel w / Tensor.dim w 0 * Dtype.sim_bytes dt
      in
      let shape = Tensor.shape w in
      shape.(0) <- kd;
      Some (Mem.read_tensor l2 (weights_offset + (k0 * per_k)) dt shape)

let bias_slice ~l2 ~(l : L.t) ~bias_offset ~k0 ~kd =
  match l.L.bias with
  | None -> None
  | Some _ -> Some (Mem.read_tensor l2 (bias_offset + (4 * k0)) Dtype.I32 [| kd |])

(* Execute one tile instance functionally: L1 bytes -> L1 bytes. *)
let compute_instance ~l2 ~l1 ~buffers ~(s : S.t) ~layout ~slot
    (inst : S.instance) =
  let l = s.S.layer in
  let d = inst.S.dims in
  let in_off = in_base layout slot and out_off = out_base layout slot in
  let out_tensor =
    match l.L.kind with
    | L.Conv p ->
        let chans, rows, cols = S.input_slice_dims s inst in
        let input =
          padded_input ~l1 ~l1_off:in_off ~dtype:l.L.in_dtype ~chans ~rows ~cols
            ~pt:inst.S.pad_top ~pl:inst.S.pad_left ~pb:inst.S.pad_bottom
            ~pr:inst.S.pad_right
        in
        let dw = L.is_depthwise l in
        let weights =
          weight_slice ~l2 ~l ~weights_offset:buffers.weights_offset ~k0:inst.S.k0
            ~kd:d.Tile.k
        in
        let bias = bias_slice ~l2 ~l ~bias_offset:buffers.bias_offset ~k0:inst.S.k0 ~kd:d.Tile.k in
        let sliced =
          {
            l with
            L.kind =
              L.Conv
                {
                  p with
                  Nn.Kernels.padding = (0, 0);
                  groups = (if dw then d.Tile.k else p.Nn.Kernels.groups);
                };
            weights;
            bias;
            in_shape = Tensor.shape input;
            out_shape = [| d.Tile.k; d.Tile.oy; d.Tile.ox |];
          }
        in
        (* [L.execute] applies any fused output pooling after the requant,
           so the tile written back is already in pooled space. *)
        L.execute sliced input
    | L.Dense ->
        (* The input vector was DMA-ed to L1; read it from there. *)
        let input =
          let elt = Dtype.sim_bytes l.L.in_dtype in
          let t = Tensor.create l.L.in_dtype [| d.Tile.c |] in
          for i = 0 to d.Tile.c - 1 do
            Tensor.set_flat t i (Mem.read_elt l1 l.L.in_dtype (in_off + (i * elt)))
          done;
          t
        in
        let weights =
          weight_slice ~l2 ~l ~weights_offset:buffers.weights_offset ~k0:inst.S.k0
            ~kd:d.Tile.k
        in
        let bias = bias_slice ~l2 ~l ~bias_offset:buffers.bias_offset ~k0:inst.S.k0 ~kd:d.Tile.k in
        let sliced = { l with L.weights = weights; bias; out_shape = [| d.Tile.k |] } in
        L.execute sliced input
    | L.Add ->
        let chans = d.Tile.c and rows = d.Tile.oy and cols = d.Tile.ox in
        let elt = Dtype.sim_bytes l.L.in_dtype in
        let slab which =
          let t = Tensor.create l.L.in_dtype [| chans; rows; cols |] in
          let base = in_off + (which * chans * rows * cols * elt) in
          for i = 0 to (chans * rows * cols) - 1 do
            Tensor.set_flat t i (Mem.read_elt l1 l.L.in_dtype (base + (i * elt)))
          done;
          t
        in
        let a = slab 0 and b = slab 1 in
        let sliced =
          {
            l with
            L.in_shape = [| chans; rows; cols |];
            in2_shape = Some [| chans; rows; cols |];
            out_shape = [| chans; rows; cols |];
          }
        in
        L.execute sliced ~second:b a
    | L.Pool _ ->
        let chans, rows, cols = S.input_slice_dims s inst in
        let input =
          padded_input ~l1 ~l1_off:in_off ~dtype:l.L.in_dtype ~chans ~rows ~cols
            ~pt:inst.S.pad_top ~pl:inst.S.pad_left ~pb:inst.S.pad_bottom
            ~pr:inst.S.pad_right
        in
        let sliced =
          {
            l with
            L.in_shape = Tensor.shape input;
            out_shape = [| d.Tile.k; d.Tile.oy; d.Tile.ox |];
          }
        in
        L.execute sliced input
  in
  (* Encode the tile's output densely into the L1 out slot. *)
  let dt = l.L.out_dtype in
  let elt = Dtype.sim_bytes dt in
  Tensor.iteri_flat (fun i v -> Mem.write_elt l1 dt (out_off + (i * elt)) v) out_tensor

(* --- Whole-schedule execution -------------------------------------------- *)

let dma_in ~l2 ~l1 ~buffers ~(s : S.t) ~layout ~slot (inst : S.instance) =
  let l = s.S.layer in
  let elt = Dtype.sim_bytes l.L.in_dtype in
  let base = in_base layout slot in
  match l.L.kind with
  | L.Dense ->
      let bytes = inst.S.dims.Tile.c * elt in
      Mem.blit ~src:l2 ~src_off:(List.hd buffers.in_offsets) ~dst:l1 ~dst_off:base
        ~len:bytes;
      (1, bytes)
  | L.Conv _ | L.Pool _ ->
      let chans, rows, cols = S.input_slice_dims s inst in
      let dw = L.is_depthwise l in
      let ch0 = if dw then inst.S.k0 else 0 in
      copy_window ~l2 ~l1 ~to_l1:true ~elt_bytes:elt
        ~l2_off:(List.hd buffers.in_offsets) ~l1_off:base ~full_h:l.L.in_shape.(1)
        ~full_w:l.L.in_shape.(2) ~ch0 ~y0:inst.S.iy0 ~x0:inst.S.ix0 ~chans ~rows ~cols
  | L.Add ->
      let chans = inst.S.dims.Tile.c
      and rows = inst.S.dims.Tile.oy
      and cols = inst.S.dims.Tile.ox in
      let slab_bytes = chans * rows * cols * elt in
      let copy which l2_off =
        copy_window ~l2 ~l1 ~to_l1:true ~elt_bytes:elt ~l2_off
          ~l1_off:(base + (which * slab_bytes)) ~full_h:l.L.in_shape.(1)
          ~full_w:l.L.in_shape.(2) ~ch0:0 ~y0:inst.S.oy0 ~x0:0 ~chans ~rows ~cols
      in
      let offs =
        match buffers.in_offsets with
        | [ a; b ] -> [ (0, a); (1, b) ]
        | _ -> invalid_arg "Exec_accel: add layer needs two input buffers"
      in
      List.fold_left
        (fun (c, b) (which, off) ->
          let c', b' = copy which off in
          (c + c', b + b'))
        (0, 0) offs

let dma_out ~l2 ~l1 ~buffers ~(s : S.t) ~layout ~slot (inst : S.instance) =
  let l = s.S.layer in
  let elt = Dtype.sim_bytes l.L.out_dtype in
  let base = out_base layout slot in
  match l.L.kind with
  | L.Dense ->
      let bytes = inst.S.dims.Tile.k * elt in
      Mem.blit ~src:l1 ~src_off:base ~dst:l2
        ~dst_off:(buffers.out_offset + (inst.S.k0 * elt))
        ~len:bytes;
      (1, bytes)
  | L.Conv _ | L.Pool _ | L.Add ->
      let chans = inst.S.dims.Tile.k
      and rows = inst.S.dims.Tile.oy
      and cols = inst.S.dims.Tile.ox in
      copy_window ~l2 ~l1 ~to_l1:false ~elt_bytes:elt ~l2_off:buffers.out_offset
        ~l1_off:base ~full_h:l.L.out_shape.(1) ~full_w:l.L.out_shape.(2)
        ~ch0:inst.S.k0 ~y0:inst.S.oy0 ~x0:inst.S.ox0 ~chans ~rows ~cols

(* Wall-clock reconstruction, shared by the per-request slow path and the
   execution plan's build step (Plan records the emitted intervals once and
   replays them per request). Each engine interval is placed where the cost
   model says it runs; returns the fault-free wall. *)
let timeline ~double_buffer ~engine ~overhead ~t0 ~din ~wls ~ccs ~dout ~bin ~bout
    ~emit =
  let n = Array.length din in
  let tile_args i bytes = [ ("tile", Trace.Json.Int i); ("bytes", Trace.Json.Int bytes) ] in
  emit ~track:"host" ~ts:t0 ~dur:overhead
    ~args:[ ("tiles", Trace.Json.Int n) ]
    (engine ^ " setup");
  if double_buffer && n > 1 then begin
    (* Two-stage pipeline: while tile i computes, tile i+1 prefetches and
       tile i-1 writes back. *)
    let cur = ref (t0 + overhead) in
    emit ~track:"dma" ~ts:!cur ~dur:din.(0) ~args:(tile_args 0 bin.(0)) "dma_in";
    cur := !cur + din.(0);
    for i = 0 to n - 1 do
      let prefetch = if i + 1 < n then din.(i + 1) else 0 in
      let writeback = if i > 0 then dout.(i - 1) else 0 in
      emit ~track:engine ~ts:!cur ~dur:wls.(i) ~args:(tile_args i 0) "weight_load";
      emit ~track:engine ~ts:(!cur + wls.(i)) ~dur:ccs.(i) ~args:(tile_args i 0)
        "compute";
      if prefetch > 0 then
        emit ~track:"dma" ~ts:!cur ~dur:prefetch ~args:(tile_args (i + 1) bin.(i + 1))
          "dma_in";
      if writeback > 0 then
        emit ~track:"dma" ~ts:(!cur + prefetch) ~dur:writeback
          ~args:(tile_args (i - 1) bout.(i - 1))
          "dma_out";
      cur := !cur + max (wls.(i) + ccs.(i)) (prefetch + writeback)
    done;
    emit ~track:"dma" ~ts:!cur ~dur:dout.(n - 1)
      ~args:(tile_args (n - 1) bout.(n - 1))
      "dma_out";
    cur := !cur + dout.(n - 1);
    !cur - t0
  end
  else begin
    (* Sequential tiles; the weight-memory port is separate from L1, so
       each tile's weight fill still overlaps its input DMA. *)
    let cur = ref (t0 + overhead) in
    for i = 0 to n - 1 do
      emit ~track:"dma" ~ts:!cur ~dur:din.(i) ~args:(tile_args i bin.(i)) "dma_in";
      emit ~track:engine ~ts:!cur ~dur:wls.(i) ~args:(tile_args i 0) "weight_load";
      cur := !cur + max din.(i) wls.(i);
      emit ~track:engine ~ts:!cur ~dur:ccs.(i) ~args:(tile_args i 0) "compute";
      cur := !cur + ccs.(i);
      emit ~track:"dma" ~ts:!cur ~dur:dout.(i) ~args:(tile_args i bout.(i)) "dma_out";
      cur := !cur + dout.(i)
    done;
    !cur - t0
  end

let run ~platform ~accel ~l2 ~l1 ~buffers ?trace ?(t0 = 0) ?faults
    ?(retry_budget = 3) (s : S.t) =
  let l = s.S.layer in
  (match (l.L.kind, buffers.in_offsets) with
  | L.Add, [ _; _ ] | (L.Conv _ | L.Dense | L.Pool _), [ _ ] -> ()
  | _ -> invalid_arg "Exec_accel.run: wrong number of input buffers");
  if l.L.weights <> None && buffers.weights_offset < 0 then
    invalid_arg "Exec_accel.run: layer has weights but no weight buffer";
  let layout = layout_of s in
  if layout.slots * (layout.in_size + layout.out_size) > Mem.size l1 then
    raise (Mem.Fault "L1 scratch exceeds L1 size");
  let dma = platform.Arch.Platform.dma in
  let c = Counters.create () in
  let rc = Resilience.make ?faults ~retry_budget c in
  let engine_site = Fault.Plan.Compute (Some accel.Arch.Accel.accel_name) in
  let n = List.length s.S.instances in
  let wls = Array.make n 0 in
  let ccs = Array.make n 0 in
  let din = Array.make n 0 in
  let dout = Array.make n 0 in
  let bin = Array.make n 0 in
  let bout = Array.make n 0 in
  List.iteri
    (fun i (inst : S.instance) ->
      let chunks_in, bytes_in = dma_in ~l2 ~l1 ~buffers ~s ~layout ~slot:i inst in
      din.(i) <- Arch.Memory.transfer_cycles dma ~chunks:chunks_in ~bytes:bytes_in;
      bin.(i) <- bytes_in;
      Resilience.guard rc ~site:Fault.Plan.Dma_in ~cycles:din.(i)
        ~flip_detected:true ();
      let wl =
        if inst.S.load_weights then accel.Arch.Accel.weight_load_cycles l inst.S.dims
        else 0
      in
      if inst.S.load_weights && l.L.weights <> None then
        Resilience.guard rc ~site:Fault.Plan.Weight_load ~cycles:wl
          ~flip_detected:true ();
      compute_instance ~l2 ~l1 ~buffers ~s ~layout ~slot:i inst;
      let cc = accel.Arch.Accel.compute_cycles l inst.S.dims in
      (* A silent compute flip corrupts the tile's dense L1 output slot
         just before it is DMA-ed back; a watchdog-caught [Drop] re-runs
         the tile (the clean result already in the slot stands for the
         successful re-run). *)
      Resilience.guard rc ~site:engine_site ~cycles:cc
        ~corrupt:(fun fs bits ->
          Resilience.flip_in_mem fs l1 ~base:(out_base layout i)
            ~bytes:(Tile.bytes_out l inst.S.dims) bits)
        ~flip_detected:false ();
      wls.(i) <- wl;
      ccs.(i) <- cc;
      c.Counters.accel_compute <- c.Counters.accel_compute + cc;
      c.Counters.weight_load <- c.Counters.weight_load + wl;
      let chunks_out, bytes_out = dma_out ~l2 ~l1 ~buffers ~s ~layout ~slot:i inst in
      dout.(i) <- Arch.Memory.transfer_cycles dma ~chunks:chunks_out ~bytes:bytes_out;
      bout.(i) <- bytes_out;
      Resilience.guard rc ~site:Fault.Plan.Dma_out ~cycles:dout.(i)
        ~flip_detected:true ();
      c.Counters.dma_in <- c.Counters.dma_in + din.(i);
      c.Counters.dma_out <- c.Counters.dma_out + dout.(i);
      c.Counters.dma_bytes_in <- c.Counters.dma_bytes_in + bytes_in;
      c.Counters.dma_bytes_out <- c.Counters.dma_bytes_out + bytes_out)
    s.S.instances;
  let overhead =
    accel.Arch.Accel.setup_cycles + (n * accel.Arch.Accel.tile_overhead_cycles)
  in
  c.Counters.host_overhead <- overhead;
  (* The wall-clock reconstruction doubles as the trace timeline: each
     engine interval is placed where the cost model says it runs. *)
  let engine = accel.Arch.Accel.accel_name in
  let on = Trace.enabled trace in
  let emit ~track ~ts ~dur ~args name =
    if on && dur > 0 then Trace.interval trace ~track ~ts ~dur ~args name
  in
  let wall =
    timeline ~double_buffer:s.S.double_buffer ~engine ~overhead ~t0 ~din ~wls ~ccs
      ~dout ~bin ~bout ~emit
  in
  (* Fault effects extend the step past its fault-free wall; the base
     counters (and the stall derived from them) keep clean values so
     [wall = fault_free_wall + retry_cycles + fault_stall]. *)
  Resilience.emit_events rc trace ~ts:(t0 + wall);
  c.Counters.stall <-
    max 0 (wall - overhead - c.Counters.accel_compute - c.Counters.weight_load);
  c.Counters.wall <- wall + c.Counters.retry_cycles + c.Counters.fault_stall;
  c
