(** Byte-addressable simulated memories.

    L1, L2 and the accelerator weight memories are real byte arrays in the
    simulator: every activation, weight and bias round-trips through them,
    so planner or codegen bugs (overlapping buffers, wrong offsets, bad
    strides) corrupt data and fail the differential tests instead of going
    unnoticed. Multi-byte values are little-endian; ternary elements are
    stored one signed byte each (see DESIGN.md). *)

type t

val create : string -> int -> t
(** [create name size_bytes] returns a zero-filled memory. *)

val name : t -> string
val size : t -> int

val high_water : t -> int
(** Highest byte offset ever written past (element writes and DMA blits;
    {!fill}'s poison pattern does not count) — the occupancy high-water
    mark sampled by the trace's memory timeline. *)

val reset_high_water : t -> unit

exception Fault of string
(** Raised on any out-of-bounds access, with the memory name, offset and
    access size. *)

val read_byte : t -> int -> int
(** Unsigned byte at an offset. *)

val write_byte : t -> int -> int -> unit
(** Write the low 8 bits of the value. *)

val read_elt : t -> Tensor.Dtype.t -> int -> int
(** Decode one element of the dtype at a byte offset. *)

val write_elt : t -> Tensor.Dtype.t -> int -> int -> unit
(** Encode one (range-checked) element at a byte offset. *)

val blit : src:t -> src_off:int -> dst:t -> dst_off:int -> len:int -> unit
(** Raw byte copy (the DMA's contiguous-chunk primitive). *)

val write_tensor : t -> int -> Tensor.t -> unit
(** Serialize a whole tensor row-major at a byte offset. *)

val read_tensor : t -> int -> Tensor.Dtype.t -> int array -> Tensor.t
(** Deserialize a tensor of the given dtype/shape from a byte offset. *)

val read_flat_into : t -> Tensor.Dtype.t -> int -> int array -> pos:int -> len:int -> unit
(** [read_flat_into t dt off dst ~pos ~len] decodes [len] consecutive
    elements of dtype [dt] starting at byte offset [off] into
    [dst.(pos..pos+len-1)]. Element-for-element equivalent to [read_elt]
    in a loop (same sign extension and ternary rot fold) with a single
    up-front bounds check — the execution plan's bulk decode primitive. *)

val write_flat_from : t -> Tensor.Dtype.t -> int -> int array -> pos:int -> len:int -> unit
(** [write_flat_from t dt off src ~pos ~len] encodes
    [src.(pos..pos+len-1)] as [len] consecutive elements of dtype [dt] at
    byte offset [off]. Element-for-element equivalent to [write_elt] in a
    loop: each value is range-checked ({!Fault} on violation) and the
    high-water mark advances over the written range. *)

val fill : t -> int -> unit
(** Fill the whole memory with a byte value (tests use a poison pattern). *)

val image : t -> Bytes.t
(** A fresh copy of the full contents — an arena snapshot. *)

val restore : t -> Bytes.t -> hwm:int -> unit
(** Overwrite the contents with a snapshot from {!image} (sizes must
    match) and set the high-water mark to [hwm] — rewinds a reused memory
    to a known state between requests. *)

val flip_bit : t -> off:int -> bit:int -> unit
(** Toggle bit [bit land 7] of the byte at [off] without advancing the
    high-water mark — the fault injector's corruption primitive.
    @raise Fault when [off] is out of bounds. *)
