module L = Ir.Layer
module C = Dory.Chain
module Dtype = Tensor.Dtype

type buffers = {
  in_offset : int;
  out_offset : int;
  w1_offset : int;
  b1_offset : int;
  w2_offset : int;
  b2_offset : int;
}

let conv_params (l : L.t) =
  match l.L.kind with
  | L.Conv p -> p
  | _ -> invalid_arg "Exec_chain: chain layers must be convolutions"

let read_weights l2 (l : L.t) off =
  let w = Option.get l.L.weights in
  Mem.read_tensor l2 off (Tensor.dtype w) (Tensor.shape w)

let read_bias l2 (l : L.t) off =
  match l.L.bias with
  | None -> None
  | Some b -> Some (Mem.read_tensor l2 off Dtype.I32 (Tensor.shape b))

type prep = {
  pr_chain : C.t;
  pr_w1 : Tensor.t;
  pr_b1 : Tensor.t option;
  pr_w2 : Tensor.t;
  pr_b2 : Tensor.t option;
  pr_scratch : (Dtype.t * int array, Tensor.t) Hashtbl.t;
}

let prepare ~l2 ~buffers (t : C.t) =
  let first = t.C.first and second = t.C.second in
  {
    pr_chain = t;
    pr_w1 = read_weights l2 first buffers.w1_offset;
    pr_b1 = read_bias l2 first buffers.b1_offset;
    pr_w2 = read_weights l2 second buffers.w2_offset;
    pr_b2 = read_bias l2 second buffers.b2_offset;
    pr_scratch = Hashtbl.create 8;
  }

(* Stripe scratch: fresh zeroed tensors on the slow path, reset-for-reuse
   tensors from the prep cache on the prepared path. Lifetimes within a
   stripe never overlap between same-shaped requests, so shape-keyed reuse
   is sound. *)
let scratch prep dtype shape =
  match prep with
  | None -> Tensor.create dtype shape
  | Some p -> (
      let key = (dtype, shape) in
      match Hashtbl.find_opt p.pr_scratch key with
      | Some t ->
          Tensor.reset t;
          t
      | None ->
          let t = Tensor.create dtype shape in
          Hashtbl.add p.pr_scratch key t;
          t)

(* Read [rows] full-width rows starting at [row_lo] of a CHW activation at
   [l2_off] into a fresh tensor with [pt]/[pb] zero rows around them. *)
let load_rows_padded ~alloc ~l2 ~l2_off ~dtype ~chans ~height ~width ~row_lo ~rows ~pt
    ~pb =
  let t = alloc dtype [| chans; pt + rows + pb; width |] in
  let elt = Dtype.sim_bytes dtype in
  for ch = 0 to chans - 1 do
    for r = 0 to rows - 1 do
      for col = 0 to width - 1 do
        let v =
          Mem.read_elt l2 dtype
            (l2_off + ((((ch * height) + row_lo + r) * width + col) * elt))
        in
        Tensor.set t [| ch; pt + r; col |] v
      done
    done
  done;
  t

(* Write a full-width stripe of rows to its place in the L2 output. *)
let store_rows ~l2 ~l2_off ~height ~row_lo (t : Tensor.t) =
  let dtype = Tensor.dtype t in
  let elt = Dtype.sim_bytes dtype in
  let chans = Tensor.dim t 0 and rows = Tensor.dim t 1 and width = Tensor.dim t 2 in
  for ch = 0 to chans - 1 do
    for r = 0 to rows - 1 do
      for col = 0 to width - 1 do
        Mem.write_elt l2 dtype
          (l2_off + ((((ch * height) + row_lo + r) * width + col) * elt))
          (Tensor.get t [| ch; r; col |])
      done
    done
  done

let stripe_layer (l : L.t) ~in_rows ~out_rows =
  let p = conv_params l in
  {
    l with
    L.kind = L.Conv { p with Nn.Kernels.padding = (0, snd p.Nn.Kernels.padding) };
    in_shape = [| l.L.in_shape.(0); in_rows; l.L.in_shape.(2) |];
    out_shape = [| l.L.out_shape.(0); out_rows; l.L.out_shape.(2) |];
  }

let run ~platform ~accel ~l2 ~l1 ~buffers ?trace ?(t0 = 0) ?faults
    ?(retry_budget = 3) ?prep (t : C.t) =
  (match (prep, faults) with
  | Some _, Some _ ->
      invalid_arg "Exec_chain: prep cannot be combined with fault injection"
  | Some p, None ->
      if not (p.pr_chain == t) then
        invalid_arg "Exec_chain: prep was built for a different chain"
  | None, _ -> ());
  let c = Counters.create () in
  let rc = Resilience.make ?faults ~retry_budget c in
  let engine_site = Fault.Plan.Compute (Some accel.Arch.Accel.accel_name) in
  let dma = platform.Arch.Platform.dma in
  let first = t.C.first and second = t.C.second in
  let alloc = scratch prep in
  let w1, b1, w2, b2 =
    match prep with
    | Some p -> (p.pr_w1, p.pr_b1, p.pr_w2, p.pr_b2)
    | None ->
        ( read_weights l2 first buffers.w1_offset,
          read_bias l2 first buffers.b1_offset,
          read_weights l2 second buffers.w2_offset,
          read_bias l2 second buffers.b2_offset )
  in
  (* Weight memories are loaded once for the whole fused pair. *)
  let wl =
    accel.Arch.Accel.weight_load_cycles first (Arch.Tile.full first)
    + accel.Arch.Accel.weight_load_cycles second (Arch.Tile.full second)
  in
  c.Counters.weight_load <- wl;
  Resilience.guard rc ~site:Fault.Plan.Weight_load ~cycles:wl ~flip_detected:true ();
  let engine = accel.Arch.Accel.accel_name in
  let on = Trace.enabled trace in
  let emit ~track ~ts ~dur ?(args = []) name =
    if on && dur > 0 then Trace.interval trace ~track ~ts ~dur ~args name
  in
  emit ~track:"host" ~ts:t0 ~dur:(2 * accel.Arch.Accel.setup_cycles) (engine ^ " setup");
  emit ~track:engine ~ts:(t0 + (2 * accel.Arch.Accel.setup_cycles)) ~dur:wl
    "weight_load";
  let oh2 = second.L.out_shape.(1) in
  let o0 = ref 0 in
  let wall = ref ((2 * accel.Arch.Accel.setup_cycles) + wl) in
  while !o0 < oh2 do
    let n = min t.C.stripe_rows (oh2 - !o0) in
    let _mid_lo, mid_n, mid_pt, mid_pb = C.mid_rows_for t !o0 in
    let in_lo, in_n, in_pt, in_pb = C.in_rows_for t !o0 in
    (* 1. input stripe L2 -> L1 (modeled: we read rows directly and push
       the intermediate through L1 below; costs use the DMA model). *)
    let input =
      load_rows_padded ~alloc ~l2 ~l2_off:buffers.in_offset ~dtype:first.L.in_dtype
        ~chans:first.L.in_shape.(0) ~height:first.L.in_shape.(1)
        ~width:first.L.in_shape.(2) ~row_lo:in_lo ~rows:in_n ~pt:in_pt ~pb:in_pb
    in
    let in_bytes = first.L.in_shape.(0) * in_n * first.L.in_shape.(2) in
    let din =
      Arch.Memory.transfer_cycles dma ~chunks:first.L.in_shape.(0) ~bytes:in_bytes
    in
    Resilience.guard rc ~site:Fault.Plan.Dma_in ~cycles:din ~flip_detected:true ();
    (* 2. first conv on the stripe; intermediate lives in L1 only. *)
    let l1_first = stripe_layer { first with L.weights = Some w1; bias = b1 }
        ~in_rows:(in_pt + in_n + in_pb) ~out_rows:mid_n
    in
    let cc1 =
      accel.Arch.Accel.compute_cycles first
        (Arch.Tile.for_layer first ~c:first.L.in_shape.(0) ~k:first.L.out_shape.(0)
           ~oy:mid_n ~ox:first.L.out_shape.(2))
    in
    let mid = L.execute l1_first input in
    (* The intermediate stripe lives in L1 between the two convolutions;
       a silent flip on the first compute corrupts it there. *)
    Mem.write_tensor l1 0 mid;
    Resilience.guard rc ~site:engine_site ~cycles:cc1
      ~corrupt:(fun fs bits ->
        Resilience.flip_in_mem fs l1 ~base:0 ~bytes:(Tensor.sim_bytes mid) bits)
      ~flip_detected:false ();
    let mid = Mem.read_tensor l1 0 (Tensor.dtype mid) (Tensor.shape mid) in
    (* 3. second conv consumes the intermediate stripe. *)
    let mid_padded =
      let k1 = Tensor.dim mid 0 and w1d = Tensor.dim mid 2 in
      let padded = alloc (Tensor.dtype mid) [| k1; mid_pt + mid_n + mid_pb; w1d |] in
      Tensor.iteri_flat
        (fun i v ->
          let per_ch = mid_n * w1d in
          let ch = i / per_ch and rest = i mod per_ch in
          let r = rest / w1d and col = rest mod w1d in
          Tensor.set padded [| ch; mid_pt + r; col |] v)
        mid;
      padded
    in
    let l2_second = stripe_layer { second with L.weights = Some w2; bias = b2 }
        ~in_rows:(mid_pt + mid_n + mid_pb) ~out_rows:n
    in
    let out = L.execute l2_second mid_padded in
    let cc2 =
      accel.Arch.Accel.compute_cycles second
        (Arch.Tile.for_layer second ~c:second.L.in_shape.(0) ~k:second.L.out_shape.(0)
           ~oy:n ~ox:second.L.out_shape.(2))
    in
    (* 4. final stripe L1 -> L2. *)
    Mem.write_tensor l1 (Tensor.sim_bytes mid) out;
    Resilience.guard rc ~site:engine_site ~cycles:cc2
      ~corrupt:(fun fs bits ->
        Resilience.flip_in_mem fs l1 ~base:(Tensor.sim_bytes mid)
          ~bytes:(Tensor.sim_bytes out) bits)
      ~flip_detected:false ();
    let out =
      Mem.read_tensor l1 (Tensor.sim_bytes mid) (Tensor.dtype out)
        (Tensor.shape out)
    in
    store_rows ~l2 ~l2_off:buffers.out_offset ~height:oh2 ~row_lo:!o0 out;
    let out_bytes = second.L.out_shape.(0) * n * second.L.out_shape.(2) in
    let dout =
      Arch.Memory.transfer_cycles dma ~chunks:second.L.out_shape.(0) ~bytes:out_bytes
    in
    Resilience.guard rc ~site:Fault.Plan.Dma_out ~cycles:dout ~flip_detected:true ();
    c.Counters.accel_compute <- c.Counters.accel_compute + cc1 + cc2;
    c.Counters.dma_in <- c.Counters.dma_in + din;
    c.Counters.dma_out <- c.Counters.dma_out + dout;
    c.Counters.dma_bytes_in <- c.Counters.dma_bytes_in + in_bytes;
    c.Counters.dma_bytes_out <- c.Counters.dma_bytes_out + out_bytes;
    c.Counters.host_overhead <-
      c.Counters.host_overhead + (2 * accel.Arch.Accel.tile_overhead_cycles);
    let stripe_args = [ ("stripe_row", Trace.Json.Int !o0) ] in
    let cur = t0 + !wall in
    emit ~track:"dma" ~ts:cur ~dur:din
      ~args:(("bytes", Trace.Json.Int in_bytes) :: stripe_args)
      "dma_in";
    emit ~track:engine ~ts:(cur + din) ~dur:cc1 ~args:stripe_args "compute (first)";
    emit ~track:engine ~ts:(cur + din + cc1) ~dur:cc2 ~args:stripe_args
      "compute (second)";
    emit ~track:"dma" ~ts:(cur + din + cc1 + cc2) ~dur:dout
      ~args:(("bytes", Trace.Json.Int out_bytes) :: stripe_args)
      "dma_out";
    emit ~track:"host" ~ts:(cur + din + cc1 + cc2 + dout)
      ~dur:(2 * accel.Arch.Accel.tile_overhead_cycles)
      ~args:stripe_args "tile overhead";
    wall :=
      !wall + din + cc1 + cc2 + dout + (2 * accel.Arch.Accel.tile_overhead_cycles);
    o0 := !o0 + t.C.stripe_rows
  done;
  c.Counters.host_overhead <- c.Counters.host_overhead + (2 * accel.Arch.Accel.setup_cycles);
  Resilience.emit_events rc trace ~ts:(t0 + !wall);
  c.Counters.stall <-
    max 0
      (!wall - c.Counters.host_overhead - c.Counters.accel_compute
     - c.Counters.weight_load);
  c.Counters.wall <- !wall + c.Counters.retry_cycles + c.Counters.fault_stall;
  c
