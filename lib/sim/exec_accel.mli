(** Functional + timed execution of a DORY schedule on an accelerator.

    Every tile instance really moves bytes: input windows are DMA-copied
    from the L2 activation arena into L1, the tile is computed from the L1
    bytes and the L2-resident weight/bias bytes, and the output slice is
    DMA-copied back — so the produced activations are exactly what the
    hardware would produce, and any offset error corrupts the output.

    Timing follows the platform's DMA model and the accelerator's cycle
    models; with double buffering the wall clock overlaps each tile's
    compute with its neighbours' transfers. *)

type buffers = {
  in_offsets : int list;  (** L2 offsets of the data inputs (1, or 2 for Add) *)
  out_offset : int;       (** L2 offset of the output buffer *)
  weights_offset : int;   (** L2 offset of the packed weights; -1 when none *)
  bias_offset : int;      (** L2 offset of the i32 bias; -1 when none *)
}

val l1_bytes_required : Dory.Schedule.t -> int
(** L1 scratch the schedule needs under its buffering policy. *)

type l1_layout = { in_size : int; out_size : int; slots : int }
(** The schedule's L1 scratch layout: [slots] (1, or 2 under double
    buffering) input blocks of [in_size] bytes followed by [slots] output
    blocks of [out_size] bytes. *)

val layout_of : Dory.Schedule.t -> l1_layout

val in_base : l1_layout -> int -> int
(** L1 offset of the input block for a tile slot (slots alternate under
    double buffering). *)

val out_base : l1_layout -> int -> int
(** L1 offset of the output block for a tile slot. *)

val timeline :
  double_buffer:bool ->
  engine:string ->
  overhead:int ->
  t0:int ->
  din:int array ->
  wls:int array ->
  ccs:int array ->
  dout:int array ->
  bin:int array ->
  bout:int array ->
  emit:
    (track:string ->
    ts:int ->
    dur:int ->
    args:(string * Trace.Json.t) list ->
    string ->
    unit) ->
  int
(** Reconstruct the step's fault-free wall clock from per-tile DMA-in,
    weight-load, compute and DMA-out cycle arrays (and byte counts for the
    trace args), calling [emit] for every interval — the setup span on the
    ["host"] track, transfers on ["dma"], engine work on [engine] — exactly
    as {!run} places them. Shared by {!run} and the execution plan, which
    records the intervals once at build time and replays them per request. *)

val run :
  platform:Arch.Platform.t ->
  accel:Arch.Accel.t ->
  l2:Mem.t ->
  l1:Mem.t ->
  buffers:buffers ->
  ?trace:Trace.t ->
  ?t0:int ->
  ?faults:Fault.Session.t ->
  ?retry_budget:int ->
  Dory.Schedule.t ->
  Counters.t
(** Execute the layer in place (reads input buffers, writes the output
    buffer) and return its counters. When [trace] is given, per-tile
    [dma_in]/[weight_load]/[compute]/[dma_out] intervals are recorded on
    the DMA and engine tracks, placed on the simulated clock starting at
    cycle [t0] (default 0) exactly as the wall-clock model overlaps them.

    When [faults] is given, every tile's DMA transfers, weight load and
    computation consult the plan through {!Resilience}: detected faults
    are retried up to [retry_budget] (default 3) times per operation,
    extending [wall] by [retry_cycles + fault_stall] past the fault-free
    value; silent flips really corrupt the simulated bytes. Injected
    effects appear on the ["fault"] trace track.
    @raise Fault.Session.Unrecovered when a detected fault persists past
    the retry budget.
    @raise Mem.Fault on any out-of-bounds access.
    @raise Invalid_argument on malformed buffer descriptors. *)
